package window

import (
	"math"
	"sort"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

type tv struct {
	ts float64
	v  uint64
}

func genValues(seed uint64, n int, rate float64, u uint64) []tv {
	rng := core.NewRNG(seed)
	out := make([]tv, n)
	ts := 0.0
	for i := range out {
		ts += rng.ExpFloat64() / rate
		out[i] = tv{ts, uint64(rng.Intn(int(u)))}
	}
	return out
}

// exactWindowQuantile computes the φ-quantile of in-window values.
func exactWindowQuantile(items []tv, t, w, phi float64) uint64 {
	var vals []uint64
	for _, it := range items {
		if it.ts > t-w && it.ts <= t {
			vals = append(vals, it.v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if len(vals) == 0 {
		return 0
	}
	idx := int(phi * float64(len(vals)-1))
	return vals[idx]
}

func TestWindowQuantilesAccuracy(t *testing.T) {
	const u, W, eps = 1 << 10, 60.0, 0.05
	items := genValues(11, 50000, 200, u)
	q := NewQuantiles(W, u, eps)
	for _, it := range items {
		q.Observe(it.v, it.ts, 1)
	}
	now := items[len(items)-1].ts
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		got := q.Query(now, phi)
		want := exactWindowQuantile(items, now, W, phi)
		// Values are uniform over [0,u): rank error ε·W translates to a
		// value error of roughly ε·u plus block-boundary effects.
		if math.Abs(float64(got)-float64(want)) > 5*eps*float64(u) {
			t.Errorf("phi=%v: quantile %d, want %d ± %v", phi, got, want, 5*eps*float64(u))
		}
	}
}

func TestWindowQuantilesExpiry(t *testing.T) {
	const u, W = 1 << 8, 10.0
	q := NewQuantiles(W, u, 0.05)
	// First regime: small values; second regime: large values. After the
	// window passes, the quantiles must reflect only the second regime.
	for ts := 0.0; ts < 20; ts += 0.01 {
		q.Observe(10, ts, 1)
	}
	for ts := 20.0; ts < 40; ts += 0.01 {
		q.Observe(200, ts, 1)
	}
	med := q.Query(40, 0.5)
	if med < 150 {
		t.Errorf("median %d still reflects expired regime", med)
	}
}

func TestWindowQuantilesDecayedQuery(t *testing.T) {
	const u, W = 1 << 9, 60.0
	items := genValues(12, 40000, 150, u)
	q := NewQuantiles(W, u, 0.05)
	for _, it := range items {
		q.Observe(it.v, it.ts, 1)
	}
	now := items[len(items)-1].ts
	f := decay.NewAgeExp(0.05)
	got := q.DecayedQuery(f, now, 0.5)
	// Exact decayed median within the window horizon.
	type wv struct {
		v uint64
		w float64
	}
	var ws []wv
	var total float64
	for _, it := range items {
		a := now - it.ts
		if a >= W {
			continue
		}
		ws = append(ws, wv{it.v, f.Eval(a)})
		total += f.Eval(a)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i].v < ws[j].v })
	var cum float64
	var want uint64
	for _, x := range ws {
		cum += x.w
		if cum >= total/2 {
			want = x.v
			break
		}
	}
	if math.Abs(float64(got)-float64(want)) > 0.15*float64(u) {
		t.Errorf("decayed median %d, want %d", got, want)
	}
}

func TestWindowQuantilesCostStructure(t *testing.T) {
	const u, W = 1 << 10, 60.0
	q := NewQuantiles(W, u, 0.02)
	items := genValues(13, 30000, 300, u)
	for _, it := range items {
		q.Observe(it.v, it.ts, 1)
	}
	if q.Blocks() < q.levels {
		t.Errorf("only %d blocks for %d levels", q.Blocks(), q.levels)
	}
	// The block hierarchy must dwarf a single forward-decay digest.
	if q.SizeBytes() < 50_000 {
		t.Errorf("windowed quantile state %d B suspiciously small", q.SizeBytes())
	}
}

func TestWindowQuantilesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"window": func() { NewQuantiles(0, 16, 0.1) },
		"eps":    func() { NewQuantiles(10, 16, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	q := NewQuantiles(10, 16, 0.1)
	q.Observe(1, 1, 0) // ignored
	if q.Blocks() != 0 {
		t.Error("zero-weight observe created blocks")
	}
}
