package window

import (
	"math"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

type ev struct {
	ts  float64
	key uint64
	v   float64
}

// genStream produces a skewed, timestamp-ordered keyed stream.
func genStream(seed uint64, n int, rate float64, universe int) []ev {
	rng := core.NewRNG(seed)
	out := make([]ev, n)
	ts := 0.0
	for i := range out {
		ts += rng.ExpFloat64() / rate
		k := 1 + int(math.Floor(1/math.Sqrt(rng.Float64())))
		if k > universe {
			k = universe
		}
		out[i] = ev{ts: ts, key: uint64(k), v: 40 + float64(rng.Intn(1460))}
	}
	return out
}

func TestBackwardSumMatchesExact(t *testing.T) {
	evs := genStream(1, 40000, 100, 500)
	bs := NewBackwardSum(0.05, 0)
	for _, e := range evs {
		bs.Observe(e.ts, e.v)
	}
	now := evs[len(evs)-1].ts
	for _, f := range []decay.AgeFunc{
		decay.NewAgePoly(1),
		decay.NewAgeExp(0.05),
		decay.NewSlidingWindow(60),
	} {
		var want float64
		f0 := f.Eval(0)
		for _, e := range evs {
			want += e.v * f.Eval(now-e.ts) / f0
		}
		got := bs.Value(f, now)
		if math.Abs(got-want) > 0.15*want {
			t.Errorf("%v: decayed sum %v, want %v ± 15%%", f, got, want)
		}
	}
}

func TestBackwardCountWindowed(t *testing.T) {
	evs := genStream(2, 30000, 200, 500)
	bc := NewBackwardCount(0.05, 120)
	for _, e := range evs {
		bc.Observe(e.ts)
	}
	now := evs[len(evs)-1].ts
	w := decay.NewSlidingWindow(60)
	var want float64
	for _, e := range evs {
		if now-e.ts < 60 {
			want++
		}
	}
	got := bc.Value(w, now)
	if math.Abs(got-want) > 0.15*want {
		t.Errorf("window count %v, want %v", got, want)
	}
	if bc.Buckets() == 0 || bc.SizeBytes() <= 0 {
		t.Error("bucket/size accounting broken")
	}
}

// TestBackwardSumSpaceGap documents the core claim of Figure 2(d): the
// backward-decay state is orders of magnitude larger than the 8 bytes a
// forward-decayed sum needs.
func TestBackwardSumSpaceGap(t *testing.T) {
	evs := genStream(3, 50000, 400, 500)
	bs := NewBackwardSum(0.01, 60)
	for _, e := range evs {
		bs.Observe(e.ts, e.v)
	}
	if bs.SizeBytes() < 100*8 {
		t.Errorf("backward sum uses %d bytes; expected ≫ 8 (kilobytes)", bs.SizeBytes())
	}
}

func exactWindowCounts(evs []ev, t, w float64) (map[uint64]float64, float64) {
	m := make(map[uint64]float64)
	var total float64
	for _, e := range evs {
		if e.ts > t-w && e.ts <= t {
			m[e.key]++
			total++
		}
	}
	return m, total
}

func TestWindowHeavyHittersGuarantee(t *testing.T) {
	evs := genStream(4, 60000, 300, 2000)
	const W, eps, phi = 60.0, 0.02, 0.05
	h := NewHeavyHitters(W, eps)
	for _, e := range evs {
		h.Observe(e.key, e.ts, 1)
	}
	now := evs[len(evs)-1].ts
	exact, total := exactWindowCounts(evs, now, W)
	if got := h.WindowTotal(now); math.Abs(got-total) > 0.1*total {
		t.Fatalf("window total %v, want %v", got, total)
	}
	got := h.Query(now, phi)
	gotSet := map[uint64]bool{}
	for _, ic := range got {
		gotSet[ic.Key] = true
	}
	for k, c := range exact {
		if c >= phi*total && !gotSet[k] {
			t.Errorf("missed window heavy hitter %d (count %v ≥ %v)", k, c, phi*total)
		}
	}
	for _, ic := range got {
		if exact[ic.Key] < (phi-3*eps)*total {
			t.Errorf("false positive %d: true %v < %v", ic.Key, exact[ic.Key], (phi-3*eps)*total)
		}
	}
}

func TestWindowHHExpiresOldItems(t *testing.T) {
	h := NewHeavyHitters(10, 0.1)
	// Key 7 dominates early, then disappears; after a window passes it must
	// not be reported.
	for ts := 0.0; ts < 10; ts += 0.01 {
		h.Observe(7, ts, 1)
	}
	for ts := 10.0; ts < 25; ts += 0.01 {
		h.Observe(9, ts, 1)
	}
	got := h.Query(25, 0.2)
	for _, ic := range got {
		if ic.Key == 7 {
			t.Errorf("expired key 7 still reported: %+v", got)
		}
	}
	if len(got) == 0 || got[0].Key != 9 {
		t.Errorf("expected key 9 as the window heavy hitter, got %+v", got)
	}
}

func TestWindowHHDecayedQuery(t *testing.T) {
	evs := genStream(5, 50000, 250, 1500)
	const W = 120.0
	h := NewHeavyHitters(W, 0.02)
	for _, e := range evs {
		h.Observe(e.key, e.ts, 1)
	}
	now := evs[len(evs)-1].ts
	f := decay.NewAgeExp(0.05)
	// Exact decayed counts (restricted to the window horizon, where the
	// structure retains data; weight beyond it is e^{-6} ≈ negligible).
	exact := make(map[uint64]float64)
	var total float64
	for _, e := range evs {
		a := now - e.ts
		if a >= W {
			continue
		}
		w := f.Eval(a)
		exact[e.key] += w
		total += w
	}
	const phi = 0.05
	got := h.DecayedQuery(f, now, phi)
	gotSet := map[uint64]bool{}
	for _, ic := range got {
		gotSet[ic.Key] = true
		if math.Abs(ic.Count-exact[ic.Key]) > 0.25*exact[ic.Key]+total*0.02 {
			t.Errorf("key %d decayed count %v, want %v", ic.Key, ic.Count, exact[ic.Key])
		}
	}
	for k, c := range exact {
		if c >= phi*total && !gotSet[k] {
			t.Errorf("missed decayed heavy hitter %d (%v ≥ %v)", k, c, phi*total)
		}
	}
}

func TestWindowHHSpaceAndUpdateCost(t *testing.T) {
	evs := genStream(6, 30000, 300, 2000)
	h := NewHeavyHitters(60, 0.01)
	for _, e := range evs {
		h.Observe(e.key, e.ts, 1)
	}
	// The block hierarchy must be kilobytes-to-megabytes — vastly more than
	// a SpaceSaving with 1/eps = 100 counters (~10 KB).
	if h.SizeBytes() < 50_000 {
		t.Errorf("window HH uses %d bytes; expected a large multi-block structure", h.SizeBytes())
	}
	if h.Blocks() == 0 || h.Levels() < 2 {
		t.Errorf("blocks=%d levels=%d", h.Blocks(), h.Levels())
	}
}

func TestWindowHHByteWeighted(t *testing.T) {
	evs := genStream(7, 40000, 200, 800)
	const W, phi = 60.0, 0.05
	h := NewHeavyHitters(W, 0.02)
	exact := make(map[uint64]float64)
	var total float64
	now := evs[len(evs)-1].ts
	for _, e := range evs {
		h.Observe(e.key, e.ts, e.v)
	}
	for _, e := range evs {
		if e.ts > now-W {
			exact[e.key] += e.v
			total += e.v
		}
	}
	got := h.Query(now, phi)
	gotSet := map[uint64]bool{}
	for _, ic := range got {
		gotSet[ic.Key] = true
	}
	for k, c := range exact {
		if c >= phi*total && !gotSet[k] {
			t.Errorf("missed byte-weighted heavy hitter %d", k)
		}
	}
}

func TestWindowHHPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"window": func() { NewHeavyHitters(0, 0.1) },
		"eps0":   func() { NewHeavyHitters(10, 0) },
		"eps1":   func() { NewHeavyHitters(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	h := NewHeavyHitters(10, 0.1)
	h.Observe(1, 5, 0)  // ignored
	h.Observe(1, 5, -1) // ignored
	if h.WindowTotal(5) != 0 {
		t.Error("non-positive weights must be ignored")
	}
}
