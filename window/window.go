// Package window implements the backward-decay competitors that the
// forward-decay paper evaluates against (Section VIII):
//
//   - BackwardSum / BackwardCount: sums and counts decayed by an arbitrary
//     backward (age-based) function, maintained over an Exponential
//     Histogram following Cohen and Strauss — the "EH" series of Figure 2.
//     The decay function is chosen at query time, which is exactly the
//     flexibility that costs kilobytes of state per group versus the 8
//     bytes of a forward-decayed sum.
//
//   - HeavyHitters: sliding-window heavy hitters over a hierarchy of dyadic
//     time blocks, each summarized by a Misra–Gries sketch (in the style of
//     Arasu and Manku; see DESIGN.md for the substitution note). Every
//     arrival updates one block per level, and queries combine blocks — far
//     heavier than a single SpaceSaving update, reproducing the cost gap of
//     Figures 4 and 5.
//
//   - HeavyHitters.DecayedQuery: heavy hitters under an arbitrary backward
//     decay function, obtained by combining the per-block summaries
//     weighted by the decay function evaluated at each block's age — the
//     general backward-decay HH competitor of the paper's experiments.
//
// These structures require timestamps to be non-decreasing (they clamp
// earlier arrivals), unlike the forward-decay algorithms, which are
// order-insensitive. None are safe for concurrent use.
package window
