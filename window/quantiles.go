package window

import (
	"math"

	"forwarddecay/decay"
	"forwarddecay/sketch"
)

// Quantiles answers sliding-window and backward-decayed quantile queries
// over the same dyadic block hierarchy as HeavyHitters, with a weighted
// q-digest per block (the Arasu–Manku recipe instantiated with q-digests).
// Each arrival updates one digest per level; queries merge a cover of the
// window — the per-update and per-space multiplicative factors over the
// single-digest forward-decay approach (agg.Quantiles) that §VII of the
// paper describes.
//
// Timestamps must be non-decreasing (clamped otherwise). Not safe for
// concurrent use.
type Quantiles struct {
	window float64
	levels int
	u      uint64
	eps    float64
	blks   [][]qtBlock
	last   float64
}

type qtBlock struct {
	idx        int64
	start, end float64
	qd         *sketch.QDigest
}

// NewQuantiles returns a windowed quantile structure over the value domain
// [0, u) with rank error epsilon·W per window query. It panics unless
// window > 0, u ≥ 2 and 0 < epsilon < 1.
func NewQuantiles(window float64, u uint64, epsilon float64) *Quantiles {
	if window <= 0 {
		panic("window: Quantiles needs a positive window")
	}
	if !(epsilon > 0 && epsilon < 1) {
		panic("window: Quantiles epsilon must be in (0,1)")
	}
	levels := int(math.Ceil(math.Log2(1/epsilon))) + 1
	if levels < 1 {
		levels = 1
	}
	return &Quantiles{window: window, levels: levels, u: u, eps: epsilon,
		blks: make([][]qtBlock, levels)}
}

// Observe records value v at timestamp ts with the given positive weight.
func (q *Quantiles) Observe(v uint64, ts, weight float64) {
	// Reject non-finite inputs outright: a NaN timestamp would stick in
	// q.last and clamp every later arrival, and a non-finite weight would
	// poison every digest the value touches.
	if !(weight > 0) || math.IsInf(weight, 0) || math.IsNaN(ts) || math.IsInf(ts, 0) {
		return
	}
	if ts < q.last {
		ts = q.last
	}
	q.last = ts
	for l := 0; l < q.levels; l++ {
		d := q.window / float64(uint64(1)<<uint(l))
		idx := int64(math.Floor(ts / d))
		lv := q.blks[l]
		if n := len(lv); n == 0 || lv[n-1].idx != idx {
			q.expireLevel(l, ts)
			q.blks[l] = append(q.blks[l], qtBlock{
				idx:   idx,
				start: float64(idx) * d,
				end:   float64(idx+1) * d,
				qd:    sketch.NewQDigest(q.u, q.eps/2),
			})
			lv = q.blks[l]
		}
		lv[len(lv)-1].qd.Update(v, weight)
	}
}

func (q *Quantiles) expireLevel(l int, ts float64) {
	cutoff := ts - 2*q.window
	lv := q.blks[l]
	i := 0
	for i < len(lv) && lv[i].end < cutoff {
		i++
	}
	if i > 0 {
		q.blks[l] = append(lv[:0], lv[i:]...)
	}
}

// Query returns the φ-quantile of the values in (t − window, t], covering
// the window greedily with the coarsest aligned blocks.
func (q *Quantiles) Query(t, phi float64) uint64 {
	merged := sketch.NewQDigest(q.u, q.eps/2)
	fine := q.window / float64(uint64(1)<<uint(q.levels-1))
	p := t - q.window
	for p < t-1e-9 {
		placed := false
		for l := 0; l < q.levels; l++ {
			d := q.window / float64(uint64(1)<<uint(l))
			idx := int64(math.Ceil((p - 1e-9) / d))
			start := float64(idx) * d
			if start-p < fine && start+d <= t+1e-9 {
				if b := q.findBlock(l, idx); b != nil {
					merged.Merge(b.qd)
				}
				p = start + d
				placed = true
				break
			}
		}
		if !placed {
			idx := int64(math.Floor((p + 1e-9) / fine))
			if b := q.findBlock(q.levels-1, idx); b != nil {
				merged.Merge(b.qd)
			}
			p = float64(idx+1) * fine
		}
	}
	return merged.Quantile(phi)
}

// DecayedQuery returns the φ-quantile under an arbitrary backward decay
// function f at time t, scaling each finest block's digest by f at the
// block's age midpoint before merging (the Cohen–Strauss combination).
func (q *Quantiles) DecayedQuery(f decay.AgeFunc, t, phi float64) uint64 {
	merged := sketch.NewQDigest(q.u, q.eps/2)
	f0 := f.Eval(0)
	fine := q.blks[q.levels-1]
	for i := range fine {
		b := &fine[i]
		if b.end <= t-q.window || b.start > t {
			continue
		}
		aNew, aOld := t-b.end, t-b.start
		if aNew < 0 {
			aNew = 0
		}
		w := (f.Eval(aNew) + f.Eval(aOld)) / 2 / f0
		if w == 0 {
			continue
		}
		cp := b.qd.Clone()
		if err := cp.Scale(w); err != nil {
			// w is finite and positive here (zero weights were skipped
			// above, and age functions are positive), so this cannot fail.
			panic(err)
		}
		merged.Merge(cp)
	}
	return merged.Quantile(phi)
}

func (q *Quantiles) findBlock(l int, idx int64) *qtBlock {
	lv := q.blks[l]
	for i := range lv {
		if lv[i].idx == idx {
			return &lv[i]
		}
	}
	return nil
}

// Blocks returns the number of retained blocks.
func (q *Quantiles) Blocks() int {
	n := 0
	for _, lv := range q.blks {
		n += len(lv)
	}
	return n
}

// SizeBytes reports the total footprint of all retained digests.
func (q *Quantiles) SizeBytes() int {
	s := 48
	for _, lv := range q.blks {
		for i := range lv {
			lv[i].qd.Compress()
			s += 48 + lv[i].qd.SizeBytes()
		}
	}
	return s
}
