package window

import (
	"math"
	"sort"

	"forwarddecay/decay"
	"forwarddecay/sketch"
)

// HeavyHitters answers sliding-window heavy-hitter queries over a hierarchy
// of dyadic time blocks: level l partitions time into blocks of duration
// window/2^l, and every block carries a Misra–Gries summary with
// k = ⌈2/ε⌉ counters. An arrival updates one block per level — O(levels)
// sketch updates, versus the single O(log 1/ε) SpaceSaving update of the
// forward-decay approach — and a window query combines a dyadic cover of
// the window (at most two blocks per level). The retained blocks total
// O((1/ε)² ) counters, the orders-of-magnitude space gap of Figure 4.
//
// Timestamps must be non-decreasing (clamped otherwise).
type HeavyHitters struct {
	window  float64
	levels  int
	k       int
	blks    [][]hhBlock // per level, ascending block index
	last    float64
	totalEH *sketch.ExpHistogram // window total weight, for thresholds
}

type hhBlock struct {
	idx        int64
	start, end float64
	mg         *sketch.MisraGries
}

// NewHeavyHitters returns a sliding-window heavy-hitter structure over a
// window of the given duration with error parameter epsilon: a window query
// with threshold φ returns every item of window weight ≥ φ·W and no item
// below (φ−ε)·W, up to the block-boundary granularity εW. It panics unless
// window > 0 and 0 < epsilon < 1.
func NewHeavyHitters(window, epsilon float64) *HeavyHitters {
	if window <= 0 {
		panic("window: HeavyHitters needs a positive window")
	}
	if !(epsilon > 0 && epsilon < 1) {
		panic("window: HeavyHitters epsilon must be in (0,1)")
	}
	levels := int(math.Ceil(math.Log2(1/epsilon))) + 1
	if levels < 1 {
		levels = 1
	}
	k := int(math.Ceil(2 / epsilon))
	return &HeavyHitters{
		window:  window,
		levels:  levels,
		k:       k,
		blks:    make([][]hhBlock, levels),
		totalEH: sketch.NewExpHistogram(epsilon/2, window),
	}
}

// Levels returns the number of block levels.
func (h *HeavyHitters) Levels() int { return h.levels }

// Observe records one occurrence of key at timestamp ts with the given
// positive weight (1 for counting, bytes for volume queries).
func (h *HeavyHitters) Observe(key uint64, ts, weight float64) {
	// Reject non-finite inputs outright: a NaN timestamp would stick in
	// h.last and clamp every later arrival, and a non-finite weight would
	// poison the block summaries and the window total.
	if !(weight > 0) || math.IsInf(weight, 0) || math.IsNaN(ts) || math.IsInf(ts, 0) {
		return
	}
	if ts < h.last {
		ts = h.last
	}
	h.last = ts
	for l := 0; l < h.levels; l++ {
		d := h.window / float64(uint64(1)<<uint(l))
		idx := int64(math.Floor(ts / d))
		lv := h.blks[l]
		if n := len(lv); n == 0 || lv[n-1].idx != idx {
			h.expireLevel(l, ts)
			h.blks[l] = append(h.blks[l], hhBlock{
				idx:   idx,
				start: float64(idx) * d,
				end:   float64(idx+1) * d,
				mg:    sketch.NewMisraGries(h.k),
			})
			lv = h.blks[l]
		}
		lv[len(lv)-1].mg.Update(key, weight)
	}
	h.totalEH.Insert(ts, weight)
}

// expireLevel drops blocks that ended before the window reachable from ts.
func (h *HeavyHitters) expireLevel(l int, ts float64) {
	cutoff := ts - 2*h.window // keep one extra window for straddling queries
	lv := h.blks[l]
	i := 0
	for i < len(lv) && lv[i].end < cutoff {
		i++
	}
	if i > 0 {
		h.blks[l] = append(lv[:0], lv[i:]...)
	}
}

// cover returns the blocks of a dyadic cover of (from, to]: greedy
// coarsest-first, at most two blocks per level, plus (possibly) one finest
// block straddling each boundary, counted fully.
func (h *HeavyHitters) cover(from, to float64) []*hhBlock {
	var out []*hhBlock
	fine := h.window / float64(uint64(1)<<uint(h.levels-1))
	p := from
	for p < to-1e-9 {
		placed := false
		for l := 0; l < h.levels; l++ {
			d := h.window / float64(uint64(1)<<uint(l))
			idx := int64(math.Ceil((p - 1e-9) / d))
			start := float64(idx) * d
			if start-p < fine && start+d <= to+1e-9 {
				if b := h.findBlock(l, idx); b != nil {
					out = append(out, b)
				}
				p = start + d
				placed = true
				break
			}
		}
		if !placed {
			// Residual span shorter than the finest block: include the
			// finest block containing p (over-counting its prefix).
			idx := int64(math.Floor((p + 1e-9) / fine))
			if b := h.findBlock(h.levels-1, idx); b != nil {
				out = append(out, b)
			}
			p = float64(idx+1) * fine
		}
	}
	return out
}

// findBlock locates the block with the given index at level l, or nil.
func (h *HeavyHitters) findBlock(l int, idx int64) *hhBlock {
	lv := h.blks[l]
	i := sort.Search(len(lv), func(i int) bool { return lv[i].idx >= idx })
	if i < len(lv) && lv[i].idx == idx {
		return &lv[i]
	}
	return nil
}

// WindowTotal estimates the total weight in (t−window, t].
func (h *HeavyHitters) WindowTotal(t float64) float64 {
	return h.totalEH.WindowSum(t)
}

// Query returns the items whose estimated weight within (t−window, t] is at
// least phi times the window total, in decreasing order of estimate.
func (h *HeavyHitters) Query(t, phi float64) []sketch.ItemCount {
	blocks := h.cover(t-h.window, t)
	merged := sketch.NewMisraGries(h.k)
	for _, b := range blocks {
		merged.Merge(b.mg)
	}
	total := h.WindowTotal(t)
	// Misra–Gries underestimates by at most total/(k+1); compensate when
	// thresholding so that no true heavy hitter is missed.
	slack := merged.Total() / float64(merged.K()+1)
	thresh := phi*total - slack
	var out []sketch.ItemCount
	for _, ic := range merged.Items() {
		if ic.Count >= thresh {
			ic.Err = slack
			out = append(out, ic)
		}
	}
	return out
}

// DecayedQuery returns heavy hitters under an arbitrary backward decay
// function f at query time t: candidates are drawn from the finest-level
// blocks, each block's contribution weighted by f at the block's age span
// midpoint (the same Cohen–Strauss combination BackwardSum uses). It
// returns items whose estimated decayed count reaches phi times the total
// decayed count.
func (h *HeavyHitters) DecayedQuery(f decay.AgeFunc, t, phi float64) []sketch.ItemCount {
	f0 := f.Eval(0)
	fine := h.blks[h.levels-1]
	counts := make(map[uint64]float64)
	var total float64
	var slack float64
	for i := range fine {
		b := &fine[i]
		if b.end <= t-h.window || b.start > t {
			continue
		}
		aNew, aOld := t-b.end, t-b.start
		if aNew < 0 {
			aNew = 0
		}
		w := (f.Eval(aNew) + f.Eval(aOld)) / 2 / f0
		if w == 0 {
			continue
		}
		for _, ic := range b.mg.Items() {
			counts[ic.Key] += ic.Count * w
		}
		total += b.mg.Total() * w
		slack += b.mg.Total() / float64(h.k+1) * w
	}
	thresh := phi*total - slack
	var out []sketch.ItemCount
	for k, c := range counts {
		if c >= thresh {
			out = append(out, sketch.ItemCount{Key: k, Count: c, Err: slack})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// SizeBytes reports the total memory footprint of all retained blocks —
// the space series of Figures 4(c) and 4(d).
func (h *HeavyHitters) SizeBytes() int {
	s := 64 + h.totalEH.SizeBytes()
	for _, lv := range h.blks {
		for i := range lv {
			s += 48 + lv[i].mg.SizeBytes()
		}
	}
	return s
}

// Blocks returns the total number of retained blocks (diagnostics).
func (h *HeavyHitters) Blocks() int {
	n := 0
	for _, lv := range h.blks {
		n += len(lv)
	}
	return n
}
