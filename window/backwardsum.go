package window

import (
	"math"

	"forwarddecay/decay"
	"forwarddecay/sketch"
)

// BackwardSum maintains a sum that can be decayed at query time by any
// backward decay function whose support lies within the configured horizon.
// It is the Cohen–Strauss construction over an Exponential Histogram: the
// histogram's buckets partition the recent past, and a decayed sum is the
// bucket sums weighted by the decay function at the buckets' ages.
//
// Contrast with agg.Sum: the forward-decay aggregate stores one number and
// fixes the decay function up front; BackwardSum stores an entire histogram
// (see SizeBytes) but the function — sliding window, backward polynomial,
// exponential, … — may vary per query.
type BackwardSum struct {
	eh *sketch.ExpHistogram
}

// NewBackwardSum returns a decayable sum with relative accuracy epsilon.
// horizon bounds how far back queries may reach (items older than the
// horizon are discarded); pass 0 to keep everything.
func NewBackwardSum(epsilon, horizon float64) *BackwardSum {
	return &BackwardSum{eh: sketch.NewExpHistogram(epsilon, horizon)}
}

// Observe records an item with timestamp ts (non-decreasing) and positive
// value v. Non-finite timestamps and values are rejected (dropped): either
// would permanently corrupt the histogram's bucket bounds or sums.
func (b *BackwardSum) Observe(ts, v float64) {
	if math.IsNaN(ts) || math.IsInf(ts, 0) || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	b.eh.Insert(ts, v)
}

// Value returns the sum decayed by f at query time t:
// ≈ Σᵢ vᵢ·f(t−tᵢ)/f(0).
func (b *BackwardSum) Value(f decay.AgeFunc, t float64) float64 {
	return b.eh.DecayedSum(f, t)
}

// WindowValue returns the sharp sliding-window sum over (t−w, t] for any
// w within the horizon, using the histogram's native window estimate when
// w equals the horizon and the Cohen–Strauss weighting otherwise.
func (b *BackwardSum) WindowValue(w, t float64) float64 {
	return b.eh.DecayedSum(decay.NewSlidingWindow(w), t)
}

// Buckets returns the number of histogram buckets currently held.
func (b *BackwardSum) Buckets() int { return b.eh.Len() }

// SizeBytes reports the memory footprint — the kilobytes-per-group cost of
// query-time decay flexibility (Figure 2(d) of the paper).
func (b *BackwardSum) SizeBytes() int { return b.eh.SizeBytes() }

// BackwardCount is BackwardSum over unit values.
type BackwardCount struct {
	eh *sketch.ExpHistogram
}

// NewBackwardCount returns a decayable count with relative accuracy
// epsilon over the given horizon (0 keeps everything).
func NewBackwardCount(epsilon, horizon float64) *BackwardCount {
	return &BackwardCount{eh: sketch.NewExpHistogram(epsilon, horizon)}
}

// Observe records an item with timestamp ts (non-decreasing). Non-finite
// timestamps are rejected (dropped).
func (b *BackwardCount) Observe(ts float64) {
	if math.IsNaN(ts) || math.IsInf(ts, 0) {
		return
	}
	b.eh.Insert(ts, 1)
}

// Value returns the count decayed by f at query time t.
func (b *BackwardCount) Value(f decay.AgeFunc, t float64) float64 {
	return b.eh.DecayedCount(f, t)
}

// Buckets returns the number of histogram buckets currently held.
func (b *BackwardCount) Buckets() int { return b.eh.Len() }

// SizeBytes reports the memory footprint.
func (b *BackwardCount) SizeBytes() int { return b.eh.SizeBytes() }
