package netgen

import "forwarddecay/gsql"

// Tuple converts a packet to a gsql tuple matching gsql.PacketSchema:
// (time, ftime, srcIP, dstIP, srcPort, destPort, proto, len).
func Tuple(p Packet) gsql.Tuple {
	return gsql.Tuple{
		gsql.Int(int64(p.Time)),
		gsql.Float(p.Time),
		gsql.Int(int64(p.SrcIP)),
		gsql.Int(int64(p.DstIP)),
		gsql.Int(int64(p.SrcPort)),
		gsql.Int(int64(p.DstPort)),
		gsql.Int(int64(p.Proto)),
		gsql.Int(int64(p.Len)),
	}
}

// AppendTuple writes the packet's tuple into dst (which must have length 8),
// avoiding allocation on hot paths.
func AppendTuple(dst gsql.Tuple, p Packet) {
	dst[0] = gsql.Int(int64(p.Time))
	dst[1] = gsql.Float(p.Time)
	dst[2] = gsql.Int(int64(p.SrcIP))
	dst[3] = gsql.Int(int64(p.DstIP))
	dst[4] = gsql.Int(int64(p.SrcPort))
	dst[5] = gsql.Int(int64(p.DstPort))
	dst[6] = gsql.Int(int64(p.Proto))
	dst[7] = gsql.Int(int64(p.Len))
}

// FillBatch loads pkts into the batch as columns, equivalent to appending
// Tuple(p) for each packet but without materializing any per-tuple Values.
// The batch's sorted flag is set from the packets' actual time order, which
// lets the engine's epoch scan and decay-weight memo use their
// run-per-distinct-timestamp fast path. The batch must use
// gsql.PacketSchema (or a structurally identical schema).
func FillBatch(b *gsql.Batch, pkts []Packet) {
	b.Resize(len(pkts))
	times := b.Ints(0)
	ftimes := b.Floats(1)
	src := b.Ints(2)
	dst := b.Ints(3)
	sport := b.Ints(4)
	dport := b.Ints(5)
	proto := b.Ints(6)
	plen := b.Ints(7)
	sorted := true
	for i, p := range pkts {
		times[i] = int64(p.Time)
		ftimes[i] = p.Time
		src[i] = int64(p.SrcIP)
		dst[i] = int64(p.DstIP)
		sport[i] = int64(p.SrcPort)
		dport[i] = int64(p.DstPort)
		proto[i] = int64(p.Proto)
		plen[i] = int64(p.Len)
		if i > 0 && ftimes[i-1] > ftimes[i] {
			sorted = false
		}
	}
	b.SetSorted(sorted)
}
