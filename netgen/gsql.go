package netgen

import "forwarddecay/gsql"

// Tuple converts a packet to a gsql tuple matching gsql.PacketSchema:
// (time, ftime, srcIP, dstIP, srcPort, destPort, proto, len).
func Tuple(p Packet) gsql.Tuple {
	return gsql.Tuple{
		gsql.Int(int64(p.Time)),
		gsql.Float(p.Time),
		gsql.Int(int64(p.SrcIP)),
		gsql.Int(int64(p.DstIP)),
		gsql.Int(int64(p.SrcPort)),
		gsql.Int(int64(p.DstPort)),
		gsql.Int(int64(p.Proto)),
		gsql.Int(int64(p.Len)),
	}
}

// AppendTuple writes the packet's tuple into dst (which must have length 8),
// avoiding allocation on hot paths.
func AppendTuple(dst gsql.Tuple, p Packet) {
	dst[0] = gsql.Int(int64(p.Time))
	dst[1] = gsql.Float(p.Time)
	dst[2] = gsql.Int(int64(p.SrcIP))
	dst[3] = gsql.Int(int64(p.DstIP))
	dst[4] = gsql.Int(int64(p.SrcPort))
	dst[5] = gsql.Int(int64(p.DstPort))
	dst[6] = gsql.Int(int64(p.Proto))
	dst[7] = gsql.Int(int64(p.Len))
}
