// Package netgen synthesizes network packet streams with the
// characteristics the forward-decay paper's evaluation depends on: Zipfian
// destination popularity (tens of thousands of active groups per minute),
// realistic packet-size mixtures, a TCP/UDP split, flow structure, Poisson
// arrivals at a configurable rate, NIC-style flow sampling to vary the
// effective stream rate, and optional out-of-order delivery.
//
// It stands in for the live 400,000 packet/s (≈1.8 Gbit/s) tap of the
// paper's §VIII (see DESIGN.md, substitution 1). Generation is
// deterministic given the seed, so every experiment and test in this
// repository is reproducible.
package netgen

import (
	"math"
	"sort"

	"forwarddecay/internal/core"
)

// Protocol numbers used in generated packets.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Packet is one synthesized network packet.
type Packet struct {
	// Time is the capture timestamp in seconds.
	Time float64
	// SrcIP and DstIP are IPv4 addresses as big-endian uint32s.
	SrcIP, DstIP uint32
	// SrcPort and DstPort are transport ports.
	SrcPort, DstPort uint16
	// Proto is ProtoTCP or ProtoUDP.
	Proto uint8
	// Len is the packet length in bytes.
	Len uint16
}

// FlowKey returns a 64-bit key identifying the packet's 5-tuple flow.
func (p Packet) FlowKey() uint64 {
	h := uint64(p.SrcIP)<<32 | uint64(p.DstIP)
	h = core.Hash2(h, uint64(p.SrcPort)<<24|uint64(p.DstPort)<<8|uint64(p.Proto))
	return h
}

// DestKey returns a 64-bit key identifying the (DstIP, DstPort) pair — the
// grouping key of the paper's count/sum queries.
func (p Packet) DestKey() uint64 {
	return uint64(p.DstIP)<<16 | uint64(p.DstPort)
}

// Config parameterizes a Generator. The zero value is not useful; use
// DefaultConfig and adjust.
type Config struct {
	// Rate is the mean packet arrival rate in packets per second.
	Rate float64
	// Seed makes generation deterministic.
	Seed uint64
	// Hosts is the number of distinct destination hosts.
	Hosts int
	// ZipfS is the Zipf skew of destination popularity (1.0–1.3 is
	// typical of aggregated internet traffic).
	ZipfS float64
	// PortsPerHost is the number of destination service ports per host.
	PortsPerHost int
	// TCPFraction is the fraction of TCP flows; the rest are UDP.
	TCPFraction float64
	// FlowMeanPackets is the mean number of packets per flow.
	FlowMeanPackets float64
	// ActiveFlows is the size of the concurrent flow pool.
	ActiveFlows int
	// OutOfOrder, if positive, shuffles delivery through a buffer of this
	// size: packets keep their true timestamps but arrive late, exercising
	// the out-of-order handling of §VI-B.
	OutOfOrder int
	// Start is the timestamp of the first packet.
	Start float64
}

// DefaultConfig returns a configuration resembling the paper's monitored
// link at the given packet rate.
func DefaultConfig(rate float64, seed uint64) Config {
	return Config{
		Rate:            rate,
		Seed:            seed,
		Hosts:           20000,
		ZipfS:           1.1,
		PortsPerHost:    4,
		TCPFraction:     0.85,
		FlowMeanPackets: 12,
		ActiveFlows:     4096,
	}
}

// flow is one active 5-tuple.
type flow struct {
	src, dst     uint32
	sport, dport uint16
	proto        uint8
}

// Generator produces an endless packet stream. It is not safe for
// concurrent use.
type Generator struct {
	cfg   Config
	rng   *core.RNG
	cdf   []float64 // Zipf CDF over hosts
	flows []flow
	now   float64
	n     uint64
	buf   []Packet // out-of-order shuffle buffer
}

// New returns a generator for the given configuration. It panics on
// non-positive Rate, Hosts, PortsPerHost, FlowMeanPackets or ActiveFlows.
func New(cfg Config) *Generator {
	if cfg.Rate <= 0 || cfg.Hosts <= 0 || cfg.PortsPerHost <= 0 ||
		cfg.FlowMeanPackets <= 0 || cfg.ActiveFlows <= 0 {
		panic("netgen: invalid configuration")
	}
	g := &Generator{cfg: cfg, rng: core.NewRNG(cfg.Seed), now: cfg.Start}
	g.cdf = zipfCDF(cfg.Hosts, cfg.ZipfS)
	g.flows = make([]flow, cfg.ActiveFlows)
	for i := range g.flows {
		g.flows[i] = g.newFlow()
	}
	return g
}

// zipfCDF precomputes the cumulative Zipf(s) distribution over n ranks.
func zipfCDF(n int, s float64) []float64 {
	cdf := make([]float64, n)
	var z float64
	for i := 1; i <= n; i++ {
		z += math.Pow(float64(i), -s)
		cdf[i-1] = z
	}
	for i := range cdf {
		cdf[i] /= z
	}
	return cdf
}

// newFlow draws a fresh flow: destination host by Zipf rank, service port,
// protocol, and a random client source.
func (g *Generator) newFlow() flow {
	rank := sort.SearchFloat64s(g.cdf, g.rng.Float64())
	dst := 0x0a000000 | uint32(rank) // 10.x.x.x server space
	proto := uint8(ProtoUDP)
	if g.rng.Float64() < g.cfg.TCPFraction {
		proto = ProtoTCP
	}
	dport := wellKnownPort(g.rng, rank, g.cfg.PortsPerHost, proto)
	return flow{
		src:   0xc0a80000 | uint32(g.rng.Uint64()&0xffff), // 192.168.x.x clients
		dst:   dst,
		sport: uint16(1024 + g.rng.Intn(64000)),
		dport: dport,
		proto: proto,
	}
}

// wellKnownPort picks one of the host's service ports, biased toward the
// first (primary) service.
func wellKnownPort(rng *core.RNG, rank, perHost int, proto uint8) uint16 {
	base := uint16(80)
	if proto == ProtoUDP {
		base = 53
	}
	if rng.Float64() < 0.7 {
		return base
	}
	return base + uint16(1+rng.Intn(perHost))
}

// next produces the next in-timestamp-order packet.
func (g *Generator) next() Packet {
	g.now += g.rng.ExpFloat64() / g.cfg.Rate
	g.n++
	// Flow churn: a packet belongs to a new flow with probability
	// 1/FlowMeanPackets, replacing a random pool slot.
	i := g.rng.Intn(len(g.flows))
	if g.rng.Float64() < 1/g.cfg.FlowMeanPackets {
		g.flows[i] = g.newFlow()
	}
	f := &g.flows[i]
	return Packet{
		Time:    g.now,
		SrcIP:   f.src,
		DstIP:   f.dst,
		SrcPort: f.sport,
		DstPort: f.dport,
		Proto:   f.proto,
		Len:     g.pktLen(f.proto),
	}
}

// pktLen draws a packet length: the classic bimodal internet mix of small
// control packets and near-MTU data packets (UDP skews small).
func (g *Generator) pktLen(proto uint8) uint16 {
	u := g.rng.Float64()
	switch {
	case proto == ProtoUDP:
		if u < 0.8 {
			return uint16(64 + g.rng.Intn(450))
		}
		return uint16(512 + g.rng.Intn(988))
	case u < 0.45:
		return uint16(40 + g.rng.Intn(60)) // ACKs and control
	case u < 0.6:
		return uint16(100 + g.rng.Intn(500))
	default:
		return uint16(1000 + g.rng.Intn(500)) // bulk data
	}
}

// Next returns the next packet. With OutOfOrder > 0, packets pass through a
// shuffle buffer: timestamps remain the true capture times but delivery
// order is locally permuted.
func (g *Generator) Next() Packet {
	if g.cfg.OutOfOrder <= 0 {
		return g.next()
	}
	for len(g.buf) < g.cfg.OutOfOrder {
		g.buf = append(g.buf, g.next())
	}
	i := g.rng.Intn(len(g.buf))
	p := g.buf[i]
	g.buf[i] = g.next()
	return p
}

// Take appends the next n packets to dst and returns it.
func (g *Generator) Take(dst []Packet, n int) []Packet {
	for i := 0; i < n; i++ {
		dst = append(dst, g.Next())
	}
	return dst
}

// N returns the number of packets generated so far.
func (g *Generator) N() uint64 { return g.n }

// Now returns the timestamp of the most recently generated packet.
func (g *Generator) Now() float64 { return g.now }

// FlowSampler deterministically samples whole flows, the hardware
// flow-sampling mechanism the paper used to vary the effective stream rate:
// a packet passes iff its flow key hashes below the sampling threshold, so
// either every packet of a flow is observed or none is.
type FlowSampler struct {
	thresh uint64
}

// NewFlowSampler returns a sampler passing approximately the given fraction
// of flows. It panics unless 0 < fraction <= 1.
func NewFlowSampler(fraction float64) *FlowSampler {
	if !(fraction > 0 && fraction <= 1) {
		panic("netgen: flow sampling fraction must be in (0,1]")
	}
	if fraction == 1 {
		return &FlowSampler{thresh: math.MaxUint64}
	}
	return &FlowSampler{thresh: uint64(fraction * float64(math.MaxUint64))}
}

// Keep reports whether the packet's flow is in the sample.
func (s *FlowSampler) Keep(p Packet) bool {
	return core.Mix64(p.FlowKey()^0x9e3779b97f4a7c15) <= s.thresh
}
