package netgen

import (
	"bytes"
	"fmt"
	"math"
	"sort"
	"testing"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := New(DefaultConfig(1000, 42))
	b := New(DefaultConfig(1000, 42))
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed must generate the same stream")
		}
	}
	c := New(DefaultConfig(1000, 43))
	if a.Next() == c.Next() {
		t.Error("different seeds should diverge")
	}
}

func TestGeneratorRate(t *testing.T) {
	g := New(DefaultConfig(100000, 1))
	const n = 200000
	var last float64
	for i := 0; i < n; i++ {
		last = g.Next().Time
	}
	// 200k packets at 100k pkt/s should span ≈ 2 seconds.
	if math.Abs(last-2) > 0.1 {
		t.Errorf("200k packets span %v s at 100k pkt/s, want ≈ 2", last)
	}
	if g.N() != n {
		t.Errorf("N = %d", g.N())
	}
}

func TestGeneratorTimestampsMonotone(t *testing.T) {
	g := New(DefaultConfig(5000, 2))
	prev := -1.0
	for i := 0; i < 10000; i++ {
		p := g.Next()
		if p.Time <= prev {
			t.Fatalf("timestamps not strictly increasing at %d", i)
		}
		prev = p.Time
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	cfg := DefaultConfig(10000, 3)
	cfg.Hosts = 1000
	g := New(cfg)
	counts := map[uint32]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[g.Next().DstIP]++
	}
	// Skewed: the single most popular host should carry several percent of
	// traffic, and thousands of hosts should appear overall.
	var max int
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if float64(max)/n < 0.02 {
		t.Errorf("top host carries %v of traffic; expected Zipf head ≥ 2%%", float64(max)/n)
	}
	if len(counts) < 300 {
		t.Errorf("only %d distinct hosts seen; expected a long tail", len(counts))
	}
	// Head ranks must dominate tail ranks.
	var cs []int
	for _, c := range counts {
		cs = append(cs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(cs)))
	top10 := 0
	for _, c := range cs[:10] {
		top10 += c
	}
	if float64(top10)/n < 0.15 {
		t.Errorf("top-10 hosts carry %v; expected ≥ 15%%", float64(top10)/n)
	}
}

func TestGeneratorProtocolMixAndSizes(t *testing.T) {
	cfg := DefaultConfig(10000, 4)
	cfg.TCPFraction = 0.85
	g := New(cfg)
	const n = 100000
	tcp := 0
	var bytesTotal float64
	for i := 0; i < n; i++ {
		p := g.Next()
		if p.Proto == ProtoTCP {
			tcp++
		} else if p.Proto != ProtoUDP {
			t.Fatalf("unexpected protocol %d", p.Proto)
		}
		if p.Len < 40 || p.Len > 1500 {
			t.Fatalf("packet length %d outside [40,1500]", p.Len)
		}
		bytesTotal += float64(p.Len)
	}
	frac := float64(tcp) / n
	if math.Abs(frac-0.85) > 0.05 {
		t.Errorf("TCP fraction %v, want ≈ 0.85", frac)
	}
	mean := bytesTotal / n
	if mean < 300 || mean > 900 {
		t.Errorf("mean packet size %v outside the plausible internet mix", mean)
	}
}

func TestOutOfOrderDelivery(t *testing.T) {
	cfg := DefaultConfig(1000, 5)
	cfg.OutOfOrder = 64
	g := New(cfg)
	inversions := 0
	prev := -1.0
	const n = 20000
	minTS, maxTS := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		p := g.Next()
		if p.Time < prev {
			inversions++
		}
		prev = p.Time
		minTS = math.Min(minTS, p.Time)
		maxTS = math.Max(maxTS, p.Time)
	}
	if inversions == 0 {
		t.Error("OutOfOrder produced a perfectly ordered stream")
	}
	if inversions > n/2 {
		t.Errorf("%d/%d inversions; reordering should be local", inversions, n)
	}
	if maxTS <= minTS {
		t.Error("degenerate timestamps")
	}
}

func TestFlowSamplerFractionAndFlowCoherence(t *testing.T) {
	g := New(DefaultConfig(10000, 6))
	s := NewFlowSampler(0.25)
	const n = 200000
	kept := 0
	decisions := map[uint64]bool{}
	for i := 0; i < n; i++ {
		p := g.Next()
		k := s.Keep(p)
		if k {
			kept++
		}
		if prev, seen := decisions[p.FlowKey()]; seen && prev != k {
			t.Fatal("flow sampling split a flow")
		}
		decisions[p.FlowKey()] = k
	}
	frac := float64(kept) / n
	if math.Abs(frac-0.25) > 0.05 {
		t.Errorf("kept fraction %v, want ≈ 0.25", frac)
	}
	full := NewFlowSampler(1)
	if !full.Keep(g.Next()) {
		t.Error("fraction 1 must keep everything")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	g := New(DefaultConfig(1000, 7))
	pkts := g.Take(nil, 5000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pkts) {
		t.Fatalf("read %d packets, wrote %d", len(got), len(pkts))
	}
	for i := range pkts {
		if got[i] != pkts[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, got[i], pkts[i])
		}
	}
}

func TestStreamTraceMatchesReadTrace(t *testing.T) {
	g := New(DefaultConfig(1000, 14))
	pkts := g.Take(nil, 3000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, pkts); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	var streamed []Packet
	if err := StreamTrace(bytes.NewReader(data), func(p Packet) error {
		streamed = append(streamed, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(pkts) {
		t.Fatalf("streamed %d, want %d", len(streamed), len(pkts))
	}
	for i := range pkts {
		if streamed[i] != pkts[i] {
			t.Fatalf("packet %d differs", i)
		}
	}
	// Early stop propagates the callback's error.
	stop := fmt.Errorf("stop")
	n := 0
	err := StreamTrace(bytes.NewReader(data), func(Packet) error {
		n++
		if n == 10 {
			return stop
		}
		return nil
	})
	if err != stop || n != 10 {
		t.Errorf("early stop: err=%v n=%d", err, n)
	}
	if err := StreamTrace(bytes.NewReader([]byte("garbage")), func(Packet) error { return nil }); err == nil {
		t.Error("expected error for bad magic")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestFormatIP(t *testing.T) {
	if got := FormatIP(0x0a000001); got != "10.0.0.1" {
		t.Errorf("FormatIP = %q", got)
	}
	if got := FormatIP(0xc0a80164); got != "192.168.1.100" {
		t.Errorf("FormatIP = %q", got)
	}
}

func TestDestKeyDistinguishesPorts(t *testing.T) {
	a := Packet{DstIP: 1, DstPort: 80}
	b := Packet{DstIP: 1, DstPort: 443}
	c := Packet{DstIP: 2, DstPort: 80}
	if a.DestKey() == b.DestKey() || a.DestKey() == c.DestKey() {
		t.Error("DestKey collisions across distinct destinations")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	cfg := DefaultConfig(1000, 1)
	cfg.Rate = 0
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero rate")
		}
	}()
	New(cfg)
}

func TestGroupCardinalityPerMinute(t *testing.T) {
	// The paper's queries generate "tens of thousands of groups" per
	// minute; at full rate our generator must produce a comparable
	// destination cardinality.
	g := New(DefaultConfig(100000, 8))
	groups := map[uint64]struct{}{}
	for g.Now() < 60 {
		groups[g.Next().DestKey()] = struct{}{}
	}
	if len(groups) < 5000 {
		t.Errorf("only %d distinct destination groups in a minute; expected thousands", len(groups))
	}
}
