package netgen

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// traceMagic identifies the binary trace format written by WriteTrace.
const traceMagic = 0x46445452 // "FDTR"

// PacketRecordSize is the encoded size of one packet record — the unit
// shared by the trace format and the ingest wire protocol.
const PacketRecordSize = 8 + 4 + 4 + 2 + 2 + 1 + 2

// AppendPacketRecord appends the little-endian fixed-size encoding of p
// (PacketRecordSize bytes) to dst and returns the extended slice.
func AppendPacketRecord(dst []byte, p Packet) []byte {
	var rec [PacketRecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:8], math.Float64bits(p.Time))
	binary.LittleEndian.PutUint32(rec[8:12], p.SrcIP)
	binary.LittleEndian.PutUint32(rec[12:16], p.DstIP)
	binary.LittleEndian.PutUint16(rec[16:18], p.SrcPort)
	binary.LittleEndian.PutUint16(rec[18:20], p.DstPort)
	rec[20] = p.Proto
	binary.LittleEndian.PutUint16(rec[21:23], p.Len)
	return append(dst, rec[:]...)
}

// DecodePacketRecord decodes one packet record. b must hold at least
// PacketRecordSize bytes (the caller owns framing).
func DecodePacketRecord(b []byte) Packet {
	return Packet{
		Time:    math.Float64frombits(binary.LittleEndian.Uint64(b[0:8])),
		SrcIP:   binary.LittleEndian.Uint32(b[8:12]),
		DstIP:   binary.LittleEndian.Uint32(b[12:16]),
		SrcPort: binary.LittleEndian.Uint16(b[16:18]),
		DstPort: binary.LittleEndian.Uint16(b[18:20]),
		Proto:   b[20],
		Len:     binary.LittleEndian.Uint16(b[21:23]),
	}
}

// WriteTrace writes packets to w in the repository's compact binary trace
// format (little-endian fixed-size records behind a magic/count header).
func WriteTrace(w io.Writer, pkts []Packet) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(pkts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("netgen: writing trace header: %w", err)
	}
	rec := make([]byte, 0, PacketRecordSize)
	for _, p := range pkts {
		rec = AppendPacketRecord(rec[:0], p)
		if _, err := bw.Write(rec); err != nil {
			return fmt.Errorf("netgen: writing trace record: %w", err)
		}
	}
	return bw.Flush()
}

// ReadTrace reads a trace written by WriteTrace.
func ReadTrace(r io.Reader) ([]Packet, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("netgen: reading trace header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != traceMagic {
		return nil, fmt.Errorf("netgen: not a trace file (bad magic)")
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	if n > 1<<32 {
		return nil, fmt.Errorf("netgen: implausible trace length %d", n)
	}
	pkts := make([]Packet, 0, n)
	var rec [PacketRecordSize]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("netgen: reading trace record %d: %w", i, err)
		}
		pkts = append(pkts, DecodePacketRecord(rec[:]))
	}
	return pkts, nil
}

// StreamTrace reads a trace written by WriteTrace incrementally, invoking
// fn for every packet without materializing the whole trace — the path for
// replaying large captures. fn may return an error to stop early, which
// StreamTrace returns unchanged.
func StreamTrace(r io.Reader, fn func(Packet) error) error {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return fmt.Errorf("netgen: reading trace header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != traceMagic {
		return fmt.Errorf("netgen: not a trace file (bad magic)")
	}
	n := binary.LittleEndian.Uint64(hdr[4:12])
	var rec [PacketRecordSize]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return fmt.Errorf("netgen: reading trace record %d: %w", i, err)
		}
		if err := fn(DecodePacketRecord(rec[:])); err != nil {
			return err
		}
	}
	return nil
}

// FormatIP renders a uint32 IPv4 address in dotted-quad form.
func FormatIP(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}
