package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"forwarddecay/internal/core"
)

func qconf(seed int64, n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(seed))}
}

// TestQuickSpaceSavingInvariants property-tests the structural invariants
// of the weighted SpaceSaving summary on random weighted streams: total
// conservation, the lazy-min candidate invariants, estimate ≥ truth for
// monitored keys, and the W/k error bound.
func TestQuickSpaceSavingInvariants(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := 2 + int(kRaw)%30
		rng := core.NewRNG(seed)
		ss := NewSpaceSavingK(k)
		exact := map[uint64]float64{}
		var total float64
		for i := 0; i < 500; i++ {
			key := uint64(rng.Intn(80))
			w := 0.1 + 3*rng.Float64()
			ss.Update(key, w)
			exact[key] += w
			total += w
		}
		if !almostEqF(ss.Total(), total, 1e-9) {
			return false
		}
		// Min-window invariants: the candidate heap (once built) satisfies
		// the heap order on recorded counts with recorded ≤ live, holds no
		// duplicate entry, and every entry outside the window has live
		// count ≥ thresh.
		if ss.winOK {
			seen := make(map[int32]bool, len(ss.win))
			for i, c := range ss.win {
				if seen[c.idx] || c.count > ss.entries[c.idx].count+1e-12 {
					return false
				}
				seen[c.idx] = true
				if i > 0 && ss.win[(i-1)/4].count > c.count {
					return false
				}
			}
			for i := range ss.entries {
				if !seen[int32(i)] && ss.entries[i].count < ss.thresh-1e-12 {
					return false
				}
			}
		}
		// minPos must return a true minimum.
		if len(ss.entries) > 0 {
			min := ss.entries[0].count
			for _, e := range ss.entries {
				if e.count < min {
					min = e.count
				}
			}
			if got := ss.entries[ss.minPos()].count; got != min {
				return false
			}
		}
		bound := total / float64(k)
		for key, truth := range exact {
			est, err := ss.Estimate(key)
			if est+1e-9 < truth || est > truth+bound+1e-9 || err > bound+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qconf(21, 300)); err != nil {
		t.Error(err)
	}
}

func almostEqF(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// TestQuickSpaceSavingMergeBound: merged summaries keep a (conservative)
// additive bound of 3(W₁+W₂)/k.
func TestQuickSpaceSavingMergeBound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := core.NewRNG(seed)
		const k = 20
		a, b := NewSpaceSavingK(k), NewSpaceSavingK(k)
		exact := map[uint64]float64{}
		var total float64
		for i := 0; i < 400; i++ {
			key := uint64(rng.Intn(60))
			w := 0.1 + rng.Float64()
			if i%2 == 0 {
				a.Update(key, w)
			} else {
				b.Update(key, w)
			}
			exact[key] += w
			total += w
		}
		a.Merge(b)
		if !almostEqF(a.Total(), total, 1e-9) {
			return false
		}
		for key, truth := range exact {
			est, _ := a.Estimate(key)
			if est+1e-9 < truth || est > truth+3*total/k+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qconf(22, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickQDigestConservation: compression and merging never change the
// total weight, and ranks stay within the error bound.
func TestQuickQDigestConservation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := core.NewRNG(seed)
		const u = 1 << 8
		q := NewQDigest(u, 0.1)
		vals := make([]uint64, 0, 300)
		ws := make([]float64, 0, 300)
		var total float64
		for i := 0; i < 300; i++ {
			v := uint64(rng.Intn(u))
			w := 0.5 + rng.Float64()
			q.Update(v, w)
			vals = append(vals, v)
			ws = append(ws, w)
			total += w
		}
		q.Compress()
		if !almostEqF(q.Total(), total, 1e-9) {
			return false
		}
		// Rank at a random point within bound.
		probe := uint64(rng.Intn(u))
		var want float64
		for i, v := range vals {
			if v < probe {
				want += ws[i]
			}
		}
		return math.Abs(q.Rank(probe)-want) <= 0.1*total+1e-9
	}
	if err := quick.Check(f, qconf(23, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickQDigestScaleLinearity: Scale(c) multiplies every rank by c.
func TestQuickQDigestScaleLinearity(t *testing.T) {
	f := func(seed uint64, cRaw float64) bool {
		c := 0.1 + math.Mod(math.Abs(cRaw), 5)
		if math.IsNaN(c) {
			c = 1
		}
		rng := core.NewRNG(seed)
		q := NewQDigest(256, 0.1)
		for i := 0; i < 200; i++ {
			q.Update(uint64(rng.Intn(256)), 1+rng.Float64())
		}
		before := q.Rank(123)
		totalBefore := q.Total()
		q.Scale(c)
		return almostEqF(q.Rank(123), c*before, 1e-9) && almostEqF(q.Total(), c*totalBefore, 1e-9)
	}
	if err := quick.Check(f, qconf(24, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickKMVMergeCommutative: A∪B and B∪A produce identical estimates.
func TestQuickKMVMergeCommutative(t *testing.T) {
	f := func(seedA, seedB uint64) bool {
		build := func(seed uint64) *KMV {
			rng := core.NewRNG(seed)
			k := NewKMV(64)
			for i := 0; i < 500; i++ {
				k.Insert(uint64(rng.Intn(2000)))
			}
			return k
		}
		ab := build(seedA)
		ab.Merge(build(seedB))
		ba := build(seedB)
		ba.Merge(build(seedA))
		return ab.Estimate() == ba.Estimate()
	}
	if err := quick.Check(f, qconf(25, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickMisraGriesUnderestimates: MG estimates never exceed the truth
// and the deficit is bounded by W/(k+1).
func TestQuickMisraGriesUnderestimates(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := 2 + int(kRaw)%20
		rng := core.NewRNG(seed)
		mg := NewMisraGries(k)
		exact := map[uint64]float64{}
		var total float64
		for i := 0; i < 400; i++ {
			key := uint64(rng.Intn(50))
			w := 0.1 + 2*rng.Float64()
			mg.Update(key, w)
			exact[key] += w
			total += w
		}
		if mg.Len() > k {
			return false
		}
		for key, truth := range exact {
			est := mg.Estimate(key)
			if est > truth+1e-9 || est < truth-total/float64(k+1)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, qconf(26, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickEHWindowBound: the EH window count stays within the relative
// error bound on random in-order streams.
func TestQuickEHWindowBound(t *testing.T) {
	f := func(seed uint64) bool {
		rng := core.NewRNG(seed)
		const eps, W = 0.1, 30.0
		h := NewExpHistogram(eps, W)
		var items []float64
		ts := 0.0
		for i := 0; i < 2000; i++ {
			ts += rng.ExpFloat64() / 50
			h.Insert(ts, 1)
			items = append(items, ts)
		}
		var want float64
		for _, x := range items {
			if x > ts-W {
				want++
			}
		}
		got := h.WindowCount(ts)
		return math.Abs(got-want) <= 3*eps*want+2
	}
	if err := quick.Check(f, qconf(27, 100)); err != nil {
		t.Error(err)
	}
}

// TestQuickDominanceUpperSensible: the estimate never collapses to zero for
// non-empty input and is within a wide multiplicative band of the exact
// dominance norm (tight accuracy is covered by the deterministic tests).
func TestQuickDominanceSane(t *testing.T) {
	f := func(seed uint64) bool {
		rng := core.NewRNG(seed)
		d := NewDominance(256, 1.1, 256)
		exact := map[uint64]float64{}
		for i := 0; i < 400; i++ {
			key := uint64(rng.Intn(100))
			lw := 5 * rng.Float64()
			d.Update(key, lw)
			if m, ok := exact[key]; !ok || lw > m {
				exact[key] = lw
			}
		}
		var want float64
		for _, lw := range exact {
			want += math.Exp(lw)
		}
		got := math.Exp(d.LogEstimate())
		return got > want/2 && got < want*2
	}
	if err := quick.Check(f, qconf(28, 150)); err != nil {
		t.Error(err)
	}
}
