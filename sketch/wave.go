package sketch

// Wave is the Deterministic Wave window-count summary of Gibbons and
// Tirthapura: level l records the timestamp of every 2^l-th arrival, keeping
// the most recent entries per level, so the number of items younger than any
// age within the window is recovered with relative error at most 1/k in
// O(k·log(εN)) space. It is provided as the alternative window-count
// substrate mentioned in the paper's related-work section and compared to
// the Exponential Histogram in the ablation benchmarks.
//
// Timestamps must be non-decreasing. Wave is not safe for concurrent use.
type Wave struct {
	k      int
	window float64
	n      uint64        // arrivals so far
	levels [][]waveEntry // levels[l] holds positions ≡ 0 mod 2^l, oldest first
	last   float64
}

type waveEntry struct {
	pos uint64
	ts  float64
}

// NewWave returns a wave with relative error 1/k over a sliding window of
// the given length. It panics if k < 1 or window <= 0.
func NewWave(k int, window float64) *Wave {
	if k < 1 {
		panic("sketch: Wave needs k >= 1")
	}
	if window <= 0 {
		panic("sketch: Wave needs a positive window")
	}
	return &Wave{k: k, window: window}
}

// perLevel is the number of entries retained at each level.
func (w *Wave) perLevel() int { return w.k + 2 }

// Insert records an arrival at the given timestamp.
func (w *Wave) Insert(ts float64) {
	if ts < w.last {
		ts = w.last
	}
	w.last = ts
	w.n++
	pos := w.n
	for l := 0; ; l++ {
		if pos&((1<<uint(l))-1) != 0 {
			break
		}
		for len(w.levels) <= l {
			w.levels = append(w.levels, nil)
		}
		lv := append(w.levels[l], waveEntry{pos: pos, ts: ts})
		if len(lv) > w.perLevel() {
			copy(lv, lv[1:])
			lv = lv[:len(lv)-1]
		}
		w.levels[l] = lv
	}
	w.expire(ts)
}

// expire drops entries older than the window (they can never be needed).
func (w *Wave) expire(now float64) {
	cutoff := now - w.window
	for l := range w.levels {
		lv := w.levels[l]
		i := 0
		// Keep one expired entry per level as the "boundary witness".
		for i < len(lv)-1 && lv[i+1].ts < cutoff {
			i++
		}
		if i > 0 {
			w.levels[l] = append(lv[:0], lv[i:]...)
		}
	}
}

// CountSince estimates the number of items with timestamp ≥ since (which
// must be within the window), with relative error at most 1/k.
func (w *Wave) CountSince(since float64) float64 {
	// Find the lowest level that still covers `since`: its oldest retained
	// entry must be at or before the boundary.
	for l := 0; l < len(w.levels); l++ {
		lv := w.levels[l]
		if len(lv) == 0 {
			continue
		}
		if lv[0].ts >= since && w.n >= uint64(len(lv))<<uint(l) {
			// This level's history does not reach back to `since`; a higher
			// (coarser) level must.
			continue
		}
		// Binary search the first entry with ts >= since.
		lo, hi := 0, len(lv)
		for lo < hi {
			mid := (lo + hi) / 2
			if lv[mid].ts < since {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo == len(lv) {
			return 0 // everything at this level is older than `since`
		}
		// Items since position lv[lo].pos, plus up to 2^l − 1 uncounted
		// items between the boundary and that position (estimate half).
		est := float64(w.n-lv[lo].pos) + 1
		if l > 0 {
			est += float64(uint64(1)<<uint(l)) / 2
		}
		return est
	}
	return float64(w.n)
}

// WindowCount estimates the number of items in (t − window, t].
func (w *Wave) WindowCount(t float64) float64 {
	w.expire(t)
	return w.CountSince(t - w.window)
}

// N returns the total number of arrivals observed.
func (w *Wave) N() uint64 { return w.n }

// SizeBytes estimates the in-memory footprint: 16 bytes per entry.
func (w *Wave) SizeBytes() int {
	s := 64
	for _, lv := range w.levels {
		s += 24 + cap(lv)*16
	}
	return s
}

// MaxLevels returns the number of levels currently maintained (for tests).
func (w *Wave) MaxLevels() int { return len(w.levels) }
