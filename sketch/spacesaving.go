package sketch

import (
	"math"
	"math/bits"
	"slices"
	"sort"
)

// SpaceSaving is the deterministic heavy-hitters summary of Metwally,
// Agrawal and El Abbadi, in its weighted form (as analysed by Cormode, Korn
// and Tirthapura for decayed streams): each update carries an arbitrary
// positive weight, fixed at arrival. With k counters it guarantees, for
// total weight W:
//
//	true(v) ≤ Estimate(v) ≤ true(v) + W/k
//
// so with k = ⌈1/ε⌉ all items of weight ≥ φW are reported and no item of
// weight < (φ−ε)W is (Theorem 2 of the forward-decay paper).
//
// The hot path is O(1) amortised — the weighted generalisation of the
// Stream-Summary idea. Counters live in a flat slice; the only ordering the
// algorithm ever needs is the exact minimum, which is tracked by a small
// sorted window of min-candidates plus a threshold: every entry outside the
// window is known to hold at least the threshold, and counts only grow, so
// the window head (validated against its live count) is a true minimum.
// The window is recomputed by a single O(k) scan once per eviction epoch —
// when its candidates are exhausted — and between scans an eviction costs a
// couple of comparisons and at most a window-sized shift. A monitored-key
// update is a probe of the open-addressing key index and one float add;
// there is no heap, no O(log k) sift, and no per-update map maintenance.
//
// SpaceSaving is not safe for concurrent use.
type SpaceSaving struct {
	k       int
	entries []ssEntry // flat, unordered
	idx     ssIndex   // key → index in entries
	total   float64   // total weight observed

	// win is a small binary min-heap of min-candidates keyed by the count
	// recorded when each was positioned; recorded ≤ live always (counts
	// only grow). Every entry outside the window has live count ≥ thresh,
	// so the validated root is a true minimum while it stays ≤ thresh.
	// winOK marks the window usable; it is rebuilt lazily after bulk
	// rewrites (growth phase, Merge, decode) and whenever the candidates
	// run out.
	win    []minCand
	thresh float64
	winOK  bool

	mergeScratch []ssEntry // reusable union buffer for Merge
}

type ssEntry struct {
	key   uint64
	count float64 // estimated weight (upper bound on true weight)
	err   float64 // overestimation bound
}

// minCand is one min-window candidate: an entry index and the count it had
// when it was last positioned.
type minCand struct {
	idx   int32
	count float64
}

// NewSpaceSaving returns a summary with k = ⌈1/epsilon⌉ counters.
// It panics unless 0 < epsilon < 1.
func NewSpaceSaving(epsilon float64) *SpaceSaving {
	if !(epsilon > 0 && epsilon < 1) {
		panic("sketch: SpaceSaving epsilon must be in (0,1)")
	}
	return NewSpaceSavingK(int(math.Ceil(1 / epsilon)))
}

// NewSpaceSavingK returns a summary with exactly k counters. It panics if
// k < 1.
func NewSpaceSavingK(k int) *SpaceSaving {
	if k < 1 {
		panic("sketch: SpaceSaving needs at least one counter")
	}
	s := &SpaceSaving{
		k:       k,
		entries: make([]ssEntry, 0, k),
	}
	s.idx.init(k)
	return s
}

// K returns the number of counters.
func (s *SpaceSaving) K() int { return s.k }

// Total returns the total weight of all updates observed.
func (s *SpaceSaving) Total() float64 { return s.total }

// Len returns the number of monitored items.
func (s *SpaceSaving) Len() int { return len(s.entries) }

// Update adds weight w for the given key. Non-positive weights are ignored.
func (s *SpaceSaving) Update(key uint64, w float64) {
	if w <= 0 {
		return
	}
	s.total += w
	if i, ok := s.idx.get(key); ok {
		// Monitored key: counts only grow, so the window's recorded counts
		// stay sound (stale-low at worst) — no maintenance needed.
		s.entries[i].count += w
		return
	}
	if len(s.entries) < s.k {
		s.entries = append(s.entries, ssEntry{key: key, count: w})
		s.idx.put(key, int32(len(s.entries)-1))
		s.winOK = false // growth phase; window built at first eviction
		return
	}
	// Evict the minimum-count item: the newcomer inherits its count as the
	// overestimation error.
	m := s.minPos()
	e := &s.entries[m]
	s.idx.del(e.key)
	e.err = e.count
	e.count += w
	e.key = key
	s.idx.put(key, int32(m))
	// The window root records this entry at its pre-eviction (minimum)
	// count; reposition it under the inherited-plus-w count, or retire it
	// to the threshold-covered set if it has outgrown the window.
	if e.count >= s.thresh {
		s.popRoot()
	} else {
		s.win[0].count = e.count
		s.siftDownRoot()
	}
}

// minPos returns the index in entries of an exact minimum-count entry,
// normalizing the window root as needed. It must only be called with at
// least one entry present.
func (s *SpaceSaving) minPos() int {
	if !s.winOK {
		s.rebuildWindow()
	}
	for {
		if len(s.win) == 0 {
			s.rebuildWindow()
		}
		c := &s.win[0]
		live := s.entries[c.idx].count
		if live != c.count {
			// The root was incremented since it was recorded. Every other
			// window record is at least the root's and counts only grow, so
			// refresh the root's record (or retire it past the threshold)
			// and re-examine the new root.
			if live >= s.thresh {
				s.popRoot()
			} else {
				c.count = live
				s.siftDownRoot()
			}
			continue
		}
		if c.count <= s.thresh {
			return int(c.idx)
		}
		// Validated root above the threshold: an excluded entry could be
		// smaller, so this epoch is over.
		s.rebuildWindow()
	}
}

func (s *SpaceSaving) popRoot() {
	n := len(s.win) - 1
	s.win[0] = s.win[n]
	s.win = s.win[:n]
	if n > 1 {
		s.siftDownRoot()
	}
}

func (s *SpaceSaving) siftDownRoot() { siftDownMinCand(s.win, 0) }

// winTarget is the window size the rebuild scan aims for: big enough to
// amortise the O(k) scan over an epoch of evictions, small enough that the
// candidate heap stays a few levels deep.
func (s *SpaceSaving) winTarget() int {
	t := s.k / 4
	if t < 8 {
		t = 8
	}
	if t > 64 {
		t = 64
	}
	return t
}

// rebuildWindow starts a new eviction epoch: one pass finds the extremes of
// the live counts, a second collects every entry under an adaptive
// threshold (sized so roughly winTarget entries qualify under a uniform
// spread) into the candidate heap. The threshold records the floor that
// every excluded entry is known to hold.
func (s *SpaceSaving) rebuildWindow() {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range s.entries {
		c := s.entries[i].count
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	thresh := lo + (hi-lo)*float64(s.winTarget())/float64(len(s.entries))
	if !(thresh > lo) {
		thresh = math.Inf(1) // degenerate spread: take everything
	}
	if cap(s.win) < len(s.entries) {
		s.win = make([]minCand, 0, len(s.entries))
	}
	s.win = s.win[:0]
	for i := range s.entries {
		if c := s.entries[i].count; c < thresh {
			s.win = append(s.win, minCand{idx: int32(i), count: c})
		}
	}
	heapifyMinCand(s.win)
	s.thresh = thresh
	s.winOK = true
}

// The candidate heap is 4-ary: all four children of a node share one cache
// line (4 × 16 bytes), so a sift touches half the levels of a binary heap
// for the same fan-in of comparisons.

// heapifyMinCand builds the 4-ary min-heap on recorded counts in place.
func heapifyMinCand(w []minCand) {
	for i := (len(w) - 2) / 4; i >= 0; i-- {
		siftDownMinCand(w, i)
	}
}

func siftDownMinCand(w []minCand, i int) {
	n := len(w)
	for {
		base := 4*i + 1
		if base >= n {
			return
		}
		m := base
		end := base + 4
		if end > n {
			end = n
		}
		for j := base + 1; j < end; j++ {
			if w[j].count < w[m].count {
				m = j
			}
		}
		if w[m].count >= w[i].count {
			return
		}
		w[i], w[m] = w[m], w[i]
		i = m
	}
}

// minCount returns the exact minimum counter value.
func (s *SpaceSaving) minCount() float64 {
	return s.entries[s.minPos()].count
}

// Estimate returns the estimated weight of key and the overestimation
// bound. For a monitored key, true ∈ [count−err, count]. For an unmonitored
// key the estimate is the minimum counter value (an upper bound on its true
// weight), with err equal to the same value.
func (s *SpaceSaving) Estimate(key uint64) (count, err float64) {
	if i, ok := s.idx.get(key); ok {
		return s.entries[i].count, s.entries[i].err
	}
	if len(s.entries) < s.k || len(s.entries) == 0 {
		return 0, 0
	}
	m := s.minCount()
	return m, m
}

// ErrorBound returns the maximum possible overestimation across all items,
// i.e. the minimum counter value when the summary is full (at most W/k).
func (s *SpaceSaving) ErrorBound() float64 {
	if len(s.entries) < s.k || len(s.entries) == 0 {
		return 0
	}
	return s.minCount()
}

// HeavyHitters returns all monitored items whose estimated weight is at
// least phi times the total weight, in decreasing order of estimate. Every
// item of true weight ≥ phi·Total is included; no item of true weight
// < (phi − 1/k)·Total is.
func (s *SpaceSaving) HeavyHitters(phi float64) []ItemCount {
	thresh := phi * s.total
	var out []ItemCount
	for _, e := range s.entries {
		if e.count >= thresh {
			out = append(out, ItemCount{Key: e.key, Count: e.count, Err: e.err})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Top returns the n monitored items with the largest estimates, in
// decreasing order.
func (s *SpaceSaving) Top(n int) []ItemCount {
	out := make([]ItemCount, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, ItemCount{Key: e.key, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Scale multiplies every counter, error bound and the total by f. It is
// the linear rescaling pass of §VI-A of the paper, used when rebasing
// exponential forward decay onto a new landmark. The factor must be finite
// and positive: NaN or ±Inf would poison every counter at once, and a
// non-positive factor erases the summary, so both return *ScaleError and
// leave the state untouched.
func (s *SpaceSaving) Scale(f float64) error {
	if err := checkScale("SpaceSaving", f); err != nil {
		return err
	}
	for i := range s.entries {
		s.entries[i].count *= f
		s.entries[i].err *= f
	}
	if s.winOK {
		// Uniform scaling preserves the heap order, the recorded ≤ live
		// invariant and the threshold floor, so the epoch survives.
		for i := range s.win {
			s.win[i].count *= f
		}
		s.thresh *= f
	}
	s.total *= f
	return nil
}

// Merge folds another summary into this one (the other is left unchanged).
// Following the mergeable-summaries construction, counts and error bounds
// of shared keys add, the union is truncated to the k largest counters, and
// the guarantee degrades to the sum of the two errors: the merged estimates
// satisfy true(v) ≤ est(v) ≤ true(v) + (W₁+W₂)/k. Merge reuses the
// receiver's scratch storage, so repeated merges (the distributed
// coordinator path) stop allocating once warm.
func (s *SpaceSaving) Merge(o *SpaceSaving) {
	if o == nil || len(o.entries) == 0 {
		return
	}
	// Unmonitored keys in one summary could have weight up to its minimum
	// counter there; fold that in as additional error on the other side's
	// entries for a sound (if conservative) bound.
	sMin, oMin := 0.0, 0.0
	if len(s.entries) == s.k {
		sMin = s.minCount()
	}
	if len(o.entries) == o.k {
		oMin = o.entries[o.minPos()].count
	}
	union := s.mergeScratch[:0]
	if cap(union) < len(s.entries)+len(o.entries) {
		union = make([]ssEntry, 0, len(s.entries)+len(o.entries))
	}
	for _, e := range s.entries {
		if j, shared := o.idx.get(e.key); shared {
			oe := o.entries[j]
			union = append(union, ssEntry{key: e.key, count: e.count + oe.count, err: e.err + oe.err})
		} else {
			union = append(union, ssEntry{key: e.key, count: e.count + oMin, err: e.err + oMin})
		}
	}
	for _, e := range o.entries {
		if _, shared := s.idx.get(e.key); shared {
			continue // already folded above
		}
		union = append(union, ssEntry{key: e.key, count: e.count + sMin, err: e.err + sMin})
	}
	slices.SortFunc(union, func(a, b ssEntry) int {
		switch {
		case a.count > b.count:
			return -1
		case a.count < b.count:
			return 1
		case a.key < b.key:
			return -1
		case a.key > b.key:
			return 1
		default:
			return 0
		}
	})
	keep := union
	if len(keep) > s.k {
		keep = keep[:s.k]
	}
	s.entries = append(s.entries[:0], keep...)
	s.mergeScratch = union[:0]
	s.rebuildIndex()
	s.total += o.total
}

// Clone returns a deep copy of the summary.
func (s *SpaceSaving) Clone() *SpaceSaving {
	c := &SpaceSaving{
		k:       s.k,
		entries: append([]ssEntry(nil), s.entries...),
		total:   s.total,
	}
	c.idx.clone(&s.idx)
	return c
}

// Reset clears the summary for reuse, retaining its capacity.
func (s *SpaceSaving) Reset() {
	s.entries = s.entries[:0]
	s.idx.clear()
	s.total = 0
	s.winOK = false
}

// SizeBytes estimates the in-memory footprint: 24 bytes per entry, 12 per
// key-index slot, 16 per min-window candidate, plus the merge scratch and
// the fixed header.
func (s *SpaceSaving) SizeBytes() int {
	return 96 + cap(s.entries)*24 + len(s.idx.vals)*12 + cap(s.win)*16 + cap(s.mergeScratch)*24
}

// rebuildIndex refills the key index after a bulk entry rewrite (Merge,
// decode) and invalidates the min-window.
func (s *SpaceSaving) rebuildIndex() {
	s.idx.init(s.k)
	for i := range s.entries {
		s.idx.put(s.entries[i].key, int32(i))
	}
	s.winOK = false
}

// ssIndex is a linear-probing open-addressing index from key to entry slot,
// with backward-shift deletion so probe chains stay dense without
// tombstones. At four slots per counter the load factor never exceeds ~1/4,
// keeping probes short on the eviction-heavy path where every miss costs a
// delete plus an insert.
type ssIndex struct {
	keys []uint64
	vals []int32 // entry index, or -1 for an empty slot
	mask uint64
}

// init (re)allocates for capacity k, clearing any existing contents.
func (t *ssIndex) init(k int) {
	n := 1 << bits.Len(uint(k)*4-1)
	if n < 16 {
		n = 16
	}
	if len(t.vals) == n {
		t.clear()
		return
	}
	t.keys = make([]uint64, n)
	t.vals = make([]int32, n)
	t.mask = uint64(n - 1)
	for i := range t.vals {
		t.vals[i] = -1
	}
}

func (t *ssIndex) clear() {
	for i := range t.vals {
		t.vals[i] = -1
	}
}

func (t *ssIndex) clone(o *ssIndex) {
	t.keys = append([]uint64(nil), o.keys...)
	t.vals = append([]int32(nil), o.vals...)
	t.mask = o.mask
}

// ssHash is a 64-bit finalizer (splitmix-style) spreading keys across slots.
func ssHash(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func (t *ssIndex) get(key uint64) (int32, bool) {
	i := ssHash(key) & t.mask
	for {
		v := t.vals[i]
		if v < 0 {
			return 0, false
		}
		if t.keys[i] == key {
			return v, true
		}
		i = (i + 1) & t.mask
	}
}

func (t *ssIndex) put(key uint64, val int32) {
	i := ssHash(key) & t.mask
	for t.vals[i] >= 0 {
		if t.keys[i] == key {
			t.vals[i] = val
			return
		}
		i = (i + 1) & t.mask
	}
	t.keys[i] = key
	t.vals[i] = val
}

func (t *ssIndex) del(key uint64) {
	i := ssHash(key) & t.mask
	for {
		if t.vals[i] < 0 {
			return
		}
		if t.keys[i] == key {
			break
		}
		i = (i + 1) & t.mask
	}
	// Backward-shift: pull each displaced follower over the hole unless the
	// hole sits before its home slot in probe order.
	j := i
	for {
		j = (j + 1) & t.mask
		if t.vals[j] < 0 {
			break
		}
		h := ssHash(t.keys[j]) & t.mask
		if (j-h)&t.mask >= (j-i)&t.mask {
			t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
			i = j
		}
	}
	t.vals[i] = -1
}
