package sketch

import (
	"math"
	"sort"
)

// SpaceSaving is the deterministic heavy-hitters summary of Metwally,
// Agrawal and El Abbadi, in its weighted form (as analysed by Cormode, Korn
// and Tirthapura for decayed streams): each update carries an arbitrary
// positive weight, fixed at arrival. With k counters it guarantees, for
// total weight W:
//
//	true(v) ≤ Estimate(v) ≤ true(v) + W/k
//
// so with k = ⌈1/ε⌉ all items of weight ≥ φW are reported and no item of
// weight < (φ−ε)W is (Theorem 2 of the forward-decay paper).
//
// The implementation keeps the monitored items in a min-heap ordered by
// count, giving O(log k) worst-case updates. For unweighted (unary) streams
// the StreamSummary type is the O(1)-amortised alternative.
//
// SpaceSaving is not safe for concurrent use.
type SpaceSaving struct {
	k       int
	entries []ssEntry      // min-heap on count
	pos     map[uint64]int // key → index in entries
	total   float64        // total weight observed
}

type ssEntry struct {
	key   uint64
	count float64 // estimated weight (upper bound on true weight)
	err   float64 // overestimation bound
}

// NewSpaceSaving returns a summary with k = ⌈1/epsilon⌉ counters.
// It panics unless 0 < epsilon < 1.
func NewSpaceSaving(epsilon float64) *SpaceSaving {
	if !(epsilon > 0 && epsilon < 1) {
		panic("sketch: SpaceSaving epsilon must be in (0,1)")
	}
	return NewSpaceSavingK(int(math.Ceil(1 / epsilon)))
}

// NewSpaceSavingK returns a summary with exactly k counters. It panics if
// k < 1.
func NewSpaceSavingK(k int) *SpaceSaving {
	if k < 1 {
		panic("sketch: SpaceSaving needs at least one counter")
	}
	return &SpaceSaving{
		k:       k,
		entries: make([]ssEntry, 0, k),
		pos:     make(map[uint64]int, k),
	}
}

// K returns the number of counters.
func (s *SpaceSaving) K() int { return s.k }

// Total returns the total weight of all updates observed.
func (s *SpaceSaving) Total() float64 { return s.total }

// Len returns the number of monitored items.
func (s *SpaceSaving) Len() int { return len(s.entries) }

// Update adds weight w for the given key. Non-positive weights are ignored.
func (s *SpaceSaving) Update(key uint64, w float64) {
	if w <= 0 {
		return
	}
	s.total += w
	if i, ok := s.pos[key]; ok {
		s.entries[i].count += w
		s.siftDown(i)
		return
	}
	if len(s.entries) < s.k {
		s.entries = append(s.entries, ssEntry{key: key, count: w})
		s.pos[key] = len(s.entries) - 1
		s.siftUp(len(s.entries) - 1)
		return
	}
	// Evict the minimum-count item: the newcomer inherits its count as the
	// overestimation error.
	min := &s.entries[0]
	delete(s.pos, min.key)
	min.err = min.count
	min.count += w
	min.key = key
	s.pos[key] = 0
	s.siftDown(0)
}

// Estimate returns the estimated weight of key and the overestimation
// bound. For a monitored key, true ∈ [count−err, count]. For an unmonitored
// key the estimate is the minimum counter value (an upper bound on its true
// weight), with err equal to the same value.
func (s *SpaceSaving) Estimate(key uint64) (count, err float64) {
	if i, ok := s.pos[key]; ok {
		return s.entries[i].count, s.entries[i].err
	}
	if len(s.entries) < s.k || len(s.entries) == 0 {
		return 0, 0
	}
	m := s.entries[0].count
	return m, m
}

// ErrorBound returns the maximum possible overestimation across all items,
// i.e. the minimum counter value when the summary is full (at most W/k).
func (s *SpaceSaving) ErrorBound() float64 {
	if len(s.entries) < s.k || len(s.entries) == 0 {
		return 0
	}
	return s.entries[0].count
}

// HeavyHitters returns all monitored items whose estimated weight is at
// least phi times the total weight, in decreasing order of estimate. Every
// item of true weight ≥ phi·Total is included; no item of true weight
// < (phi − 1/k)·Total is.
func (s *SpaceSaving) HeavyHitters(phi float64) []ItemCount {
	thresh := phi * s.total
	var out []ItemCount
	for _, e := range s.entries {
		if e.count >= thresh {
			out = append(out, ItemCount{Key: e.key, Count: e.count, Err: e.err})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Top returns the n monitored items with the largest estimates, in
// decreasing order.
func (s *SpaceSaving) Top(n int) []ItemCount {
	out := make([]ItemCount, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, ItemCount{Key: e.key, Count: e.count, Err: e.err})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// Scale multiplies every counter, error bound and the total by f ≥ 0. It is
// the linear rescaling pass of §VI-A of the paper, used when rebasing
// exponential forward decay onto a new landmark.
func (s *SpaceSaving) Scale(f float64) {
	if f < 0 {
		panic("sketch: negative scale")
	}
	for i := range s.entries {
		s.entries[i].count *= f
		s.entries[i].err *= f
	}
	s.total *= f
}

// Merge folds another summary into this one (the other is left unchanged).
// Following the mergeable-summaries construction, counts and error bounds
// of shared keys add, the union is truncated to the k largest counters, and
// the guarantee degrades to the sum of the two errors: the merged estimates
// satisfy true(v) ≤ est(v) ≤ true(v) + (W₁+W₂)/k.
func (s *SpaceSaving) Merge(o *SpaceSaving) {
	if o == nil || len(o.entries) == 0 {
		return
	}
	type ce struct{ count, err float64 }
	union := make(map[uint64]ce, len(s.entries)+len(o.entries))
	// Unmonitored keys in one summary could have weight up to its minimum
	// counter there; fold that in as additional error on the other side's
	// entries for a sound (if conservative) bound.
	sMin, oMin := 0.0, 0.0
	if len(s.entries) == s.k {
		sMin = s.entries[0].count
	}
	if len(o.entries) == o.k {
		oMin = o.entries[0].count
	}
	for _, e := range s.entries {
		union[e.key] = ce{e.count, e.err}
	}
	for _, e := range o.entries {
		if c, ok := union[e.key]; ok {
			union[e.key] = ce{c.count + e.count, c.err + e.err}
		} else {
			union[e.key] = ce{e.count + sMin, e.err + sMin}
		}
	}
	for k, c := range union {
		if _, inO := o.pos[k]; !inO {
			union[k] = ce{c.count + oMin, c.err + oMin}
		}
	}
	all := make([]ssEntry, 0, len(union))
	for k, c := range union {
		all = append(all, ssEntry{key: k, count: c.count, err: c.err})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].count > all[j].count })
	if len(all) > s.k {
		all = all[:s.k]
	}
	s.entries = all
	s.pos = make(map[uint64]int, len(all))
	s.heapify()
	s.total += o.total
}

// Clone returns a deep copy of the summary.
func (s *SpaceSaving) Clone() *SpaceSaving {
	c := &SpaceSaving{
		k:       s.k,
		entries: append([]ssEntry(nil), s.entries...),
		pos:     make(map[uint64]int, len(s.pos)),
		total:   s.total,
	}
	for k, v := range s.pos {
		c.pos[k] = v
	}
	return c
}

// Reset clears the summary for reuse, retaining its capacity.
func (s *SpaceSaving) Reset() {
	s.entries = s.entries[:0]
	for k := range s.pos {
		delete(s.pos, k)
	}
	s.total = 0
}

// SizeBytes estimates the in-memory footprint: 24 bytes per heap entry plus
// roughly 48 bytes per map slot, plus the fixed header.
func (s *SpaceSaving) SizeBytes() int {
	return 48 + cap(s.entries)*24 + len(s.pos)*48
}

func (s *SpaceSaving) heapify() {
	for i := range s.entries {
		s.pos[s.entries[i].key] = i
	}
	for i := len(s.entries)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

func (s *SpaceSaving) siftUp(i int) {
	e := s.entries
	for i > 0 {
		p := (i - 1) / 2
		if e[p].count <= e[i].count {
			break
		}
		s.swap(i, p)
		i = p
	}
}

func (s *SpaceSaving) siftDown(i int) {
	e := s.entries
	n := len(e)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && e[l].count < e[m].count {
			m = l
		}
		if r < n && e[r].count < e[m].count {
			m = r
		}
		if m == i {
			return
		}
		s.swap(i, m)
		i = m
	}
}

func (s *SpaceSaving) swap(i, j int) {
	e := s.entries
	e[i], e[j] = e[j], e[i]
	s.pos[e[i].key] = i
	s.pos[e[j].key] = j
}
