package sketch

import (
	"fmt"
	"math"
)

// ScaleError reports a rejected rescale factor. SpaceSaving.Scale and
// QDigest.Scale refuse NaN, ±Inf and non-positive factors: a non-finite
// factor would poison every counter in one call, and a non-positive one
// erases the summary — neither is ever a meaningful landmark rebase, so both
// indicate a bug (or overflowed arithmetic) in the caller.
type ScaleError struct {
	// Sketch names the summary type whose Scale was called.
	Sketch string
	// Factor is the rejected value.
	Factor float64
}

func (e *ScaleError) Error() string {
	return fmt.Sprintf("sketch: %s.Scale factor %g is not a finite positive number", e.Sketch, e.Factor)
}

// checkScale validates a rescale factor, returning *ScaleError when it is
// unusable.
func checkScale(sketch string, f float64) error {
	if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
		return &ScaleError{Sketch: sketch, Factor: f}
	}
	return nil
}
