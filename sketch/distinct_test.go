package sketch

import (
	"math"
	"testing"

	"forwarddecay/internal/core"
)

func TestKMVEstimate(t *testing.T) {
	for _, d := range []int{100, 1000, 50000} {
		kmv := NewKMV(1024)
		for i := 0; i < d; i++ {
			// Insert each key several times: duplicates must not matter.
			kmv.Insert(uint64(i))
			kmv.Insert(uint64(i))
		}
		got := kmv.Estimate()
		tol := 0.15 * float64(d)
		if d <= 1024 {
			tol = 0 // below k the sketch is exact
		}
		if math.Abs(got-float64(d)) > tol {
			t.Errorf("d=%d: estimate %v, want within %v", d, got, tol)
		}
	}
}

func TestKMVMergeIsUnion(t *testing.T) {
	a, b, u := NewKMV(512), NewKMV(512), NewKMV(512)
	for i := 0; i < 20000; i++ {
		a.Insert(uint64(i))
		u.Insert(uint64(i))
	}
	for i := 10000; i < 30000; i++ {
		b.Insert(uint64(i))
		u.Insert(uint64(i))
	}
	a.Merge(b)
	// a now estimates |union| = 30000, and must equal the directly-built
	// union sketch exactly (same retained hashes).
	if got, want := a.Estimate(), u.Estimate(); got != want {
		t.Errorf("merged estimate %v != direct union estimate %v", got, want)
	}
	if math.Abs(a.Estimate()-30000) > 0.15*30000 {
		t.Errorf("union estimate %v, want ≈ 30000", a.Estimate())
	}
}

func TestKMVSmall(t *testing.T) {
	kmv := NewKMV(8)
	if kmv.Estimate() != 0 {
		t.Errorf("empty estimate = %v", kmv.Estimate())
	}
	kmv.Insert(1)
	kmv.Insert(1)
	kmv.Insert(2)
	if got := kmv.Estimate(); got != 2 {
		t.Errorf("below-k estimate = %v, want exact 2", got)
	}
	if kmv.K() != 8 || kmv.Len() != 2 {
		t.Errorf("K=%d Len=%d", kmv.K(), kmv.Len())
	}
}

// exactDominance computes Σ_v max w_v for reference.
func exactDominance(keys []uint64, logws []float64) float64 {
	max := make(map[uint64]float64)
	for i, k := range keys {
		if m, ok := max[k]; !ok || logws[i] > m {
			max[k] = logws[i]
		}
	}
	var s float64
	for _, lw := range max {
		s += math.Exp(lw)
	}
	return s
}

func TestDominanceAccuracy(t *testing.T) {
	rng := core.NewRNG(31)
	const n = 60000
	keys := make([]uint64, n)
	logws := make([]float64, n)
	for i := range keys {
		keys[i] = uint64(rng.Intn(5000))
		// Weights spread over ~4 decades, like polynomial forward decay.
		logws[i] = 9 * rng.Float64()
	}
	d := NewDominance(1024, 1.05, 1024)
	for i := range keys {
		d.Update(keys[i], logws[i])
	}
	want := exactDominance(keys, logws)
	got := math.Exp(d.LogEstimate())
	if math.Abs(got-want) > 0.2*want {
		t.Errorf("dominance estimate %v, want %v ± 20%%", got, want)
	}
}

func TestDominanceSkewedWeights(t *testing.T) {
	// A few recent keys dominate the norm — the regime of exponential
	// forward decay, where level layering matters.
	const n = 10000
	keys := make([]uint64, n)
	logws := make([]float64, n)
	for i := range keys {
		keys[i] = uint64(i % 1500)
		logws[i] = float64(i) * 0.003 // latest items are e^30 ≈ 10^13 heavier
	}
	d := NewDominance(2048, 1.05, 1024)
	for i := range keys {
		d.Update(keys[i], logws[i])
	}
	// Exact log-domain dominance: every key's max is its last occurrence.
	max := make(map[uint64]float64)
	for i, k := range keys {
		if m, ok := max[k]; !ok || logws[i] > m {
			max[k] = logws[i]
		}
	}
	logWant := math.Inf(-1)
	for _, lw := range max {
		logWant = core.LogSumExp(logWant, lw)
	}
	logGot := d.LogEstimate()
	if math.Abs(logGot-logWant) > math.Log(1.25) {
		t.Errorf("log dominance %v, want %v (ratio %v)", logGot, logWant, math.Exp(logGot-logWant))
	}
}

func TestDominanceHugeLogWeightsNoOverflow(t *testing.T) {
	// Exponential decay over a long stream: log-weights in the thousands.
	d := NewDominance(256, 1.1, 512)
	for i := 0; i < 10000; i++ {
		d.Update(uint64(i%100), float64(i)) // up to e^9999
	}
	lg := d.LogEstimate()
	if math.IsInf(lg, 0) || math.IsNaN(lg) {
		t.Fatalf("log estimate not finite: %v", lg)
	}
	// The norm is dominated by the largest max-weight (≈ e^9999) times up
	// to 100 keys; ln of it must be within a few units of 9999+ln(100)'s
	// neighbourhood.
	want := 9999 + math.Log(100)
	if math.Abs(lg-want) > 5 {
		t.Errorf("log estimate %v, want ≈ %v", lg, want)
	}
	if math.IsInf(d.Estimate(), 1) == false {
		t.Errorf("linear-domain estimate should overflow to +Inf here")
	}
}

// TestDominanceDescendingWeights is a regression test: when the heaviest
// item arrives FIRST, later lighter items open lower levels, and the
// telescoping estimate must still credit the early item its full weight
// (the lower levels are seeded with clones of the old lowest level).
func TestDominanceDescendingWeights(t *testing.T) {
	d := NewDominance(256, 1.1, 512)
	exact := map[uint64]float64{}
	for i := 0; i < 300; i++ {
		lw := 5 - 5*float64(i)/300 // strictly decreasing log-weights
		key := uint64(i)
		d.Update(key, lw)
		exact[key] = lw
	}
	var want float64
	for _, lw := range exact {
		want += math.Exp(lw)
	}
	got := math.Exp(d.LogEstimate())
	if math.Abs(got-want) > 0.15*want {
		t.Errorf("descending-weight dominance %v, want %v", got, want)
	}
}

// TestDominanceMergeAsymmetricRanges merges sketches whose level ranges do
// not overlap; the combined estimate must still track the exact norm.
func TestDominanceMergeAsymmetricRanges(t *testing.T) {
	a := NewDominance(512, 1.1, 512)
	b := NewDominance(512, 1.1, 512)
	exact := map[uint64]float64{}
	for i := 0; i < 200; i++ {
		lwA := 8 + 2*float64(i)/200 // heavy keys at site A
		lwB := 1 * float64(i) / 200 // light keys at site B
		a.Update(uint64(i), lwA)
		b.Update(uint64(1000+i), lwB)
		exact[uint64(i)] = lwA
		exact[uint64(1000+i)] = lwB
	}
	a.Merge(b)
	var want float64
	for _, lw := range exact {
		want += math.Exp(lw)
	}
	got := math.Exp(a.LogEstimate())
	if math.Abs(got-want) > 0.15*want {
		t.Errorf("asymmetric merge dominance %v, want %v", got, want)
	}
}

func TestDominanceLevelPruning(t *testing.T) {
	d := NewDominance(64, 2, 8)
	for i := 0; i < 1000; i++ {
		d.Update(uint64(i), float64(i)) // levels keep climbing
	}
	if d.Levels() > 8 {
		t.Errorf("retained %d levels, cap is 8", d.Levels())
	}
}

func TestDominanceMerge(t *testing.T) {
	rng := core.NewRNG(33)
	mk := func(seed int) ([]uint64, []float64) {
		keys := make([]uint64, 20000)
		lws := make([]float64, 20000)
		for i := range keys {
			keys[i] = uint64(rng.Intn(4000))
			lws[i] = 6 * rng.Float64()
		}
		return keys, lws
	}
	ka, la := mk(1)
	kb, lb := mk(2)
	a := NewDominance(1024, 1.05, 1024)
	b := NewDominance(1024, 1.05, 1024)
	for i := range ka {
		a.Update(ka[i], la[i])
	}
	for i := range kb {
		b.Update(kb[i], lb[i])
	}
	a.Merge(b)
	want := exactDominance(append(append([]uint64{}, ka...), kb...), append(append([]float64{}, la...), lb...))
	got := math.Exp(a.LogEstimate())
	if math.Abs(got-want) > 0.25*want {
		t.Errorf("merged dominance %v, want %v ± 25%%", got, want)
	}
}

func TestDominanceEmptyAndIgnores(t *testing.T) {
	d := NewDominance(16, 2, 8)
	if !math.IsInf(d.LogEstimate(), -1) {
		t.Errorf("empty LogEstimate = %v, want -Inf", d.LogEstimate())
	}
	d.Update(1, math.Inf(-1)) // zero weight: ignored
	d.Update(2, math.NaN())   // ignored
	if !math.IsInf(d.LogEstimate(), -1) {
		t.Errorf("after ignored updates LogEstimate = %v, want -Inf", d.LogEstimate())
	}
	d.Merge(nil) // no-op
}

func TestMisraGriesErrorBound(t *testing.T) {
	keys, ws, exact := zipfStream(34, 40000, 1500, 1.3, true)
	const k = 100
	mg := NewMisraGries(k)
	var total float64
	for i := range keys {
		mg.Update(keys[i], ws[i])
		total += ws[i]
	}
	bound := total / float64(k+1)
	for key, true_ := range exact {
		est := mg.Estimate(key)
		if est > true_+1e-9 {
			t.Fatalf("key %d: MG estimate %v above true %v", key, est, true_)
		}
		if est < true_-bound-1e-9 {
			t.Fatalf("key %d: MG estimate %v below true−W/(k+1) = %v", key, est, true_-bound)
		}
	}
	if mg.Len() > k {
		t.Fatalf("MG holds %d counters, cap %d", mg.Len(), k)
	}
}

func TestMisraGriesMerge(t *testing.T) {
	ka, wa, ea := zipfStream(35, 20000, 800, 1.4, true)
	kb, wb, eb := zipfStream(36, 20000, 800, 1.4, true)
	const k = 80
	a, b := NewMisraGries(k), NewMisraGries(k)
	var total float64
	for i := range ka {
		a.Update(ka[i], wa[i])
		total += wa[i]
	}
	for i := range kb {
		b.Update(kb[i], wb[i])
		total += wb[i]
	}
	a.Merge(b)
	if a.Len() > k {
		t.Fatalf("merged MG holds %d counters, cap %d", a.Len(), k)
	}
	bound := total / float64(k+1)
	for key := range ea {
		true_ := ea[key] + eb[key]
		est := a.Estimate(key)
		if est > true_+1e-9 {
			t.Fatalf("key %d: merged estimate %v above true %v", key, est, true_)
		}
		if est < true_-2*bound-1e-9 {
			t.Fatalf("key %d: merged estimate %v below true−2W/(k+1) = %v", key, est, true_-2*bound)
		}
	}
}

func TestMisraGriesItemsSorted(t *testing.T) {
	mg := NewMisraGries(10)
	mg.Update(1, 5)
	mg.Update(2, 9)
	mg.Update(3, 1)
	items := mg.Items()
	if len(items) != 3 || items[0].Key != 2 || items[2].Key != 3 {
		t.Errorf("Items() = %v", items)
	}
	if mg.Total() != 15 {
		t.Errorf("Total = %v", mg.Total())
	}
}
