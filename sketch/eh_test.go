package sketch

import (
	"math"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

// timedItem is a timestamped value for reference computations.
type timedItem struct {
	ts float64
	v  float64
}

// genTimed generates n items with Poisson-ish spacing and packet-like values.
func genTimed(seed uint64, n int, rate float64) []timedItem {
	rng := core.NewRNG(seed)
	items := make([]timedItem, n)
	ts := 0.0
	for i := range items {
		ts += rng.ExpFloat64() / rate
		v := 40 + float64(rng.Intn(1460))
		items[i] = timedItem{ts, v}
	}
	return items
}

func exactWindowSum(items []timedItem, t, w float64) (sum, count float64) {
	for _, it := range items {
		if it.ts > t-w && it.ts <= t {
			sum += it.v
			count++
		}
	}
	return
}

func exactDecayedSum(items []timedItem, f decay.AgeFunc, t float64) (sum, count float64) {
	f0 := f.Eval(0)
	for _, it := range items {
		a := t - it.ts
		if a < 0 {
			a = 0
		}
		w := f.Eval(a) / f0
		sum += it.v * w
		count += w
	}
	return
}

func TestEHWindowSumAndCount(t *testing.T) {
	const eps, window = 0.05, 60.0
	items := genTimed(21, 50000, 100) // ~500s of stream
	h := NewExpHistogram(eps, window)
	for _, it := range items {
		h.Insert(it.ts, it.v)
	}
	now := items[len(items)-1].ts
	for _, back := range []float64{0, 5, 20} {
		tq := now + back
		wantS, wantC := exactWindowSum(items, tq, window)
		gotS, gotC := h.WindowSum(tq), h.WindowCount(tq)
		if wantS > 0 && math.Abs(gotS-wantS) > 3*eps*wantS {
			t.Errorf("t=%v: WindowSum %v, want %v ± %v%%", tq, gotS, wantS, 300*eps)
		}
		if wantC > 0 && math.Abs(gotC-wantC) > 3*eps*wantC {
			t.Errorf("t=%v: WindowCount %v, want %v", tq, gotC, wantC)
		}
	}
}

func TestEHSpaceIsLogarithmic(t *testing.T) {
	const eps, window = 0.1, 60.0
	items := genTimed(22, 200000, 400)
	h := NewExpHistogram(eps, window)
	for _, it := range items {
		h.Insert(it.ts, it.v)
	}
	// Window holds ~24000 items; the histogram must compress that to
	// O((1/eps)·log(sum)) buckets — far fewer than the item count.
	if h.Len() > 1000 {
		t.Errorf("EH holds %d buckets; expected logarithmic compression", h.Len())
	}
	if h.Len() < 10 {
		t.Errorf("EH holds only %d buckets; compression suspiciously aggressive", h.Len())
	}
}

func TestEHDecayedSumPolyAndExp(t *testing.T) {
	// The Cohen–Strauss style decayed query should track the exact decayed
	// sum within a modest relative error for smooth decay functions.
	items := genTimed(23, 30000, 100)
	now := items[len(items)-1].ts
	for _, f := range []decay.AgeFunc{
		decay.NewAgePoly(1.5),
		decay.NewAgeExp(0.05),
		decay.AgeSubPoly{},
	} {
		h := NewExpHistogram(0.05, 0) // unbounded: decay never truly expires
		for _, it := range items {
			h.Insert(it.ts, it.v)
		}
		wantS, wantC := exactDecayedSum(items, f, now)
		gotS, gotC := h.DecayedSum(f, now), h.DecayedCount(f, now)
		if math.Abs(gotS-wantS) > 0.15*wantS {
			t.Errorf("%v: DecayedSum %v, want %v ± 15%%", f, gotS, wantS)
		}
		if math.Abs(gotC-wantC) > 0.15*wantC {
			t.Errorf("%v: DecayedCount %v, want %v ± 15%%", f, gotC, wantC)
		}
	}
}

func TestEHUnboundedIsExactTotal(t *testing.T) {
	items := genTimed(24, 5000, 50)
	h := NewExpHistogram(0.1, 0)
	var total float64
	for _, it := range items {
		h.Insert(it.ts, it.v)
		total += it.v
	}
	now := items[len(items)-1].ts
	if got := h.WindowSum(now); math.Abs(got-total) > 1e-6*total {
		t.Errorf("unbounded WindowSum = %v, want exact total %v", got, total)
	}
}

func TestEHExpiry(t *testing.T) {
	h := NewExpHistogram(0.1, 10)
	for ts := 0.0; ts < 100; ts++ {
		h.Insert(ts, 1)
	}
	// Everything older than t−10 must be gone.
	got := h.WindowCount(99)
	if math.Abs(got-10) > 3 {
		t.Errorf("WindowCount = %v, want ≈ 10", got)
	}
	// Far in the future everything expires.
	if got := h.WindowCount(1000); got != 0 {
		t.Errorf("all-expired WindowCount = %v, want 0", got)
	}
	if h.Len() != 0 {
		t.Errorf("all-expired Len = %d, want 0", h.Len())
	}
}

func TestEHClampsTimestampsAndIgnoresNonPositive(t *testing.T) {
	h := NewExpHistogram(0.1, 60)
	h.Insert(10, 5)
	h.Insert(5, 3) // out of order: clamped to ts=10
	h.Insert(10, 0)
	h.Insert(10, -2)
	if got := h.WindowSum(10); math.Abs(got-8) > 1e-9 {
		t.Errorf("WindowSum = %v, want 8", got)
	}
}

func TestWaveWindowCount(t *testing.T) {
	const window = 60.0
	items := genTimed(25, 80000, 200)
	w := NewWave(50, window)
	for _, it := range items {
		w.Insert(it.ts)
	}
	now := items[len(items)-1].ts
	_, want := exactWindowSum(items, now, window)
	got := w.WindowCount(now)
	if math.Abs(got-want) > 0.1*want {
		t.Errorf("Wave WindowCount = %v, want %v ± 10%%", got, want)
	}
}

func TestWaveCountSinceVariousAges(t *testing.T) {
	items := genTimed(26, 60000, 150)
	w := NewWave(64, 120)
	for _, it := range items {
		w.Insert(it.ts)
	}
	now := items[len(items)-1].ts
	for _, age := range []float64{1, 10, 30, 60, 100} {
		var want float64
		for _, it := range items {
			if it.ts >= now-age {
				want++
			}
		}
		got := w.CountSince(now - age)
		if want > 50 && math.Abs(got-want) > 0.1*want {
			t.Errorf("CountSince(age=%v) = %v, want %v ± 10%%", age, got, want)
		}
	}
}

func TestWaveSpaceIsBounded(t *testing.T) {
	w := NewWave(32, 60)
	items := genTimed(27, 200000, 500)
	for _, it := range items {
		w.Insert(it.ts)
	}
	// Entries per level are capped; total entries ≤ levels × (k+2).
	maxEntries := w.MaxLevels() * 34
	if got := w.SizeBytes(); got > 64+w.MaxLevels()*24+maxEntries*16*2 {
		t.Errorf("Wave size %d exceeds cap-based bound", got)
	}
	if w.N() != 200000 {
		t.Errorf("N = %d", w.N())
	}
}

func TestEHVsWaveAblation(t *testing.T) {
	// Both structures answer window counts; cross-validate on one stream.
	items := genTimed(28, 40000, 100)
	h := NewExpHistogram(0.05, 30)
	w := NewWave(40, 30)
	for _, it := range items {
		h.Insert(it.ts, 1)
		w.Insert(it.ts)
	}
	now := items[len(items)-1].ts
	_, want := exactWindowSum(items, now, 30)
	he, we := h.WindowCount(now), w.WindowCount(now)
	if math.Abs(he-want) > 0.1*want || math.Abs(we-want) > 0.1*want {
		t.Errorf("EH=%v Wave=%v, want %v ± 10%%", he, we, want)
	}
}
