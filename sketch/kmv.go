package sketch

import (
	"container/heap"

	"forwarddecay/internal/core"
)

// KMV is a k-minimum-values distinct-count sketch: it retains the k smallest
// 64-bit hash values of the keys inserted and estimates the number of
// distinct keys as (k−1)/v(k), where v(k) is the k-th smallest hash mapped
// to (0,1). The standard deviation of the estimate is about D/√(k−2).
//
// KMV is mergeable (union semantics) and is the building block of the
// Dominance estimator. It is not safe for concurrent use.
type KMV struct {
	k   int
	h   maxHeap             // the k smallest hashes, max at root
	mem map[uint64]struct{} // membership of retained hashes
}

type maxHeap []uint64

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i] > h[j] }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(uint64)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewKMV returns a sketch retaining k minimum hash values. Estimates are
// meaningful for k ≥ 3; it panics if k < 1.
func NewKMV(k int) *KMV {
	if k < 1 {
		panic("sketch: KMV needs k >= 1")
	}
	return &KMV{k: k, mem: make(map[uint64]struct{}, k)}
}

// K returns the sketch size parameter.
func (s *KMV) K() int { return s.k }

// Insert adds a key (hashed internally).
func (s *KMV) Insert(key uint64) { s.InsertHash(core.Mix64(key ^ 0x5bf03635ea3eddcb)) }

// InsertHash adds a pre-hashed value; used when merging sketches.
func (s *KMV) InsertHash(h uint64) {
	if _, ok := s.mem[h]; ok {
		return
	}
	if len(s.h) < s.k {
		s.mem[h] = struct{}{}
		heap.Push(&s.h, h)
		return
	}
	if h >= s.h[0] {
		return
	}
	delete(s.mem, s.h[0])
	s.mem[h] = struct{}{}
	s.h[0] = h
	heap.Fix(&s.h, 0)
}

// Estimate returns the estimated number of distinct keys inserted.
func (s *KMV) Estimate() float64 {
	if len(s.h) < s.k {
		return float64(len(s.h)) // fewer than k distinct hashes: exact
	}
	return float64(s.k-1) / core.U64ToUnit(s.h[0])
}

// Merge folds another sketch into this one (union of key sets); the other
// sketch is left unchanged. Sketches may have different k; the result keeps
// this sketch's k.
func (s *KMV) Merge(o *KMV) {
	if o == nil {
		return
	}
	for _, h := range o.h {
		s.InsertHash(h)
	}
}

// Clone returns a deep copy of the sketch.
func (s *KMV) Clone() *KMV {
	c := &KMV{k: s.k, h: append(maxHeap(nil), s.h...), mem: make(map[uint64]struct{}, len(s.mem))}
	for h := range s.mem {
		c.mem[h] = struct{}{}
	}
	return c
}

// Len returns the number of retained hashes.
func (s *KMV) Len() int { return len(s.h) }

// SizeBytes estimates the in-memory footprint.
func (s *KMV) SizeBytes() int { return 48 + cap(s.h)*8 + len(s.mem)*40 }
