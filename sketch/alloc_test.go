package sketch

import (
	"testing"

	"forwarddecay/internal/core"
)

// Allocation guards for the sketch hot paths. The O(1)-amortised kernels
// must not allocate in steady state: SpaceSaving reuses its entry array,
// open-addressing index and min-window candidate heap; QDigest reuses its
// node map and compaction scratch. These tests pin that property so a
// regression shows up as a test failure, not just a bench delta.

func TestSpaceSavingUpdateSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short harnesses")
	}
	const k, nKeys = 64, 4096
	rng := core.NewRNG(7)
	keys := make([]uint64, nKeys)
	ws := make([]float64, nKeys)
	for i := range keys {
		keys[i] = uint64(rng.Intn(10000))
		ws[i] = 0.5 + rng.Float64()
	}
	ss := NewSpaceSavingK(k)
	// Warm up over several full cycles: the entry array reaches capacity,
	// the index is sized, and the min-window hits its high-water capacity.
	for pass := 0; pass < 4; pass++ {
		for i := range keys {
			ss.Update(keys[i], ws[i])
		}
	}
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		ss.Update(keys[i&(nKeys-1)], ws[i&(nKeys-1)])
		i++
	})
	if avg != 0 {
		t.Errorf("steady-state SpaceSaving.Update allocates %.2f objects/op, want 0", avg)
	}
}

func TestQDigestUpdateSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short harnesses")
	}
	const nVals = 256
	rng := core.NewRNG(11)
	vals := make([]uint64, nVals)
	for i := range vals {
		vals[i] = uint64(rng.Intn(1 << 16))
	}
	q := NewQDigest(1<<16, 0.05)
	// Warm up: materialize every leaf and let the automatic compactions
	// settle the node map and scratch buffer at their working sizes.
	for pass := 0; pass < 4; pass++ {
		for i := range vals {
			q.Update(vals[i], 1+float64(i&7))
		}
	}
	q.Compress()
	i := 0
	avg := testing.AllocsPerRun(5000, func() {
		q.Update(vals[i&(nVals-1)], 1+float64(i&7))
		i++
	})
	if avg != 0 {
		t.Errorf("steady-state QDigest.Update allocates %.2f objects/op, want 0", avg)
	}
}

func TestQDigestCompressWarmAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is noisy under -short harnesses")
	}
	rng := core.NewRNG(13)
	q := NewQDigest(1<<12, 0.1)
	for i := 0; i < 4000; i++ {
		q.Update(uint64(rng.Intn(1<<12)), 0.5+rng.Float64())
	}
	q.Compress() // warm the scratch buffer
	avg := testing.AllocsPerRun(200, func() { q.Compress() })
	if avg != 0 {
		t.Errorf("warm QDigest.Compress allocates %.2f objects/op, want 0", avg)
	}
}
