package sketch

import (
	"math"
	"sort"

	"forwarddecay/internal/core"
)

// Dominance estimates the dominance norm Σ_v max_{vᵢ=v} wᵢ of a stream of
// (key, weight) pairs — exactly the quantity that count-distinct under
// forward decay reduces to (Definition 9 / Theorem 4 of the paper, via the
// reduction of Cormode and Muthukrishnan).
//
// The paper cites the range-efficient F₀ algorithm of Pavan and Tirthapura;
// this implementation substitutes a layered-KMV construction (see DESIGN.md):
// weights are bucketed into geometric levels of ratio base, and a KMV
// distinct sketch per retained level estimates D_l, the number of distinct
// keys whose maximum weight reaches level l. The norm is recovered as
//
//	Σ_l (base^l − base^{l−1}) · D̂_l  (+ base^lo · D̂_lo for the lowest level)
//
// which is accurate to the product of the discretization factor (≈ base)
// and the KMV error (≈ 1/√k). Only the top maxLevels levels are retained;
// levels far below the current maximum carry a vanishing fraction of the
// norm, so pruning them preserves the estimate. Weights are supplied in the
// log domain, so exponential forward decay never overflows.
//
// Dominance is not safe for concurrent use.
type Dominance struct {
	logBase   float64
	k         int
	maxLevels int
	levels    map[int]*KMV
	lo, hi    int
	empty     bool
	// logShift is the frame offset between external log weights and the
	// internal (birth-frame) weights the levels are bucketed by: an update
	// with external weight w is stored at level floor((w−logShift)/logBase),
	// and LogEstimate adds logShift back. ShiftLog moves only this offset,
	// so landmark shifts under exponential decay never re-bucket anything —
	// the shift is exact no matter how many times it is applied.
	logShift float64
}

// NewDominance returns an estimator with per-level KMV size k, level ratio
// base > 1, and at most maxLevels retained levels. Good defaults are
// k = 1024, base = 1.05, maxLevels = 1024. It panics on invalid parameters.
func NewDominance(k int, base float64, maxLevels int) *Dominance {
	if k < 3 {
		panic("sketch: Dominance needs KMV size k >= 3")
	}
	if base <= 1 {
		panic("sketch: Dominance base must exceed 1")
	}
	if maxLevels < 2 {
		panic("sketch: Dominance needs at least two levels")
	}
	return &Dominance{
		logBase:   math.Log(base),
		k:         k,
		maxLevels: maxLevels,
		levels:    make(map[int]*KMV),
		empty:     true,
	}
}

// Update records key with the given log-domain weight (ln w). Items of zero
// weight (logW = −Inf) are ignored.
func (d *Dominance) Update(key uint64, logW float64) {
	if math.IsInf(logW, -1) || math.IsNaN(logW) {
		return
	}
	l := int(math.Floor((logW - d.logShift) / d.logBase))
	if d.empty {
		d.lo, d.hi = l, l
		d.empty = false
	}
	if l > d.hi {
		d.hi = l
	}
	if l < d.lo && d.hi-l+1 <= d.maxLevels {
		d.extendDown(l)
	}
	if nlo := d.hi - d.maxLevels + 1; nlo > d.lo {
		for j := d.lo; j < nlo; j++ {
			delete(d.levels, j)
		}
		d.lo = nlo
	}
	if l < d.lo {
		l = d.lo // clamp pruned weights into the lowest retained level
	}
	h := core.Mix64(key ^ 0x5bf03635ea3eddcb)
	for j := d.lo; j <= l; j++ {
		kmv := d.levels[j]
		if kmv == nil {
			kmv = NewKMV(d.k)
			d.levels[j] = kmv
		}
		kmv.InsertHash(h)
	}
}

// extendDown opens levels [newLo, lo) while the budget allows. Every key
// seen so far was inserted into the current lowest level, so D_j for any
// lower level j equals that level's key set: the new levels start as clones
// of it, preserving the telescoping estimate for past items.
func (d *Dominance) extendDown(newLo int) {
	base := d.levels[d.lo]
	for j := newLo; j < d.lo; j++ {
		if base != nil {
			d.levels[j] = base.Clone()
		} else {
			d.levels[j] = NewKMV(d.k)
		}
	}
	d.lo = newLo
}

// LogEstimate returns ln of the estimated dominance norm, or −Inf for an
// empty stream. Working in the log domain keeps exponential-decay weights
// representable.
func (d *Dominance) LogEstimate() float64 {
	if d.empty {
		return math.Inf(-1)
	}
	// ln Σ_l coeff_l · D_l via log-sum-exp. Iterating the populated levels
	// (not the [lo,hi] span) keeps this O(stored levels) even when the
	// span is sparse; sorting keeps the float accumulation order — and so
	// the estimate — bit-stable across encode/decode round trips.
	ls := make([]int, 0, len(d.levels))
	for l, kmv := range d.levels {
		if kmv == nil || kmv.Len() == 0 || l < d.lo || l > d.hi {
			continue
		}
		ls = append(ls, l)
	}
	sort.Ints(ls)
	acc := math.Inf(-1)
	for _, l := range ls {
		kmv := d.levels[l]
		est := kmv.Estimate()
		var logCoeff float64
		if l == d.lo {
			logCoeff = float64(l) * d.logBase
		} else {
			// base^l − base^{l−1} = base^l · (1 − 1/base)
			logCoeff = float64(l)*d.logBase + math.Log(1-math.Exp(-d.logBase))
		}
		acc = core.LogSumExp(acc, logCoeff+math.Log(est))
	}
	// Center the discretization bias: the layered sum underestimates by a
	// factor between 1 and base; multiply by √base. logShift converts the
	// internal birth-frame estimate back to the external frame.
	return acc + d.logBase/2 + d.logShift
}

// ShiftLog adds a constant to every stored log weight — the landmark-shift
// rebase for exponential forward decay. Only the frame offset moves; level
// contents are untouched, so the operation is O(1) and exact.
func (d *Dominance) ShiftLog(delta float64) {
	d.logShift += delta
}

// Estimate returns the estimated dominance norm in the linear domain.
// It may overflow to +Inf if weights were supplied with very large log
// values; prefer LogEstimate in that case.
func (d *Dominance) Estimate() float64 { return math.Exp(d.LogEstimate()) }

// Merge folds another estimator (with identical parameters) into this one.
// It panics if the level ratios differ.
func (d *Dominance) Merge(o *Dominance) {
	if o == nil || o.empty {
		return
	}
	if math.Abs(o.logBase-d.logBase) > 1e-12 {
		panic("sketch: merging Dominance sketches with different bases")
	}
	// When the two sketches were landmark-shifted by different amounts their
	// birth frames differ; translate o's levels into this sketch's frame by
	// the rounded whole-level offset. After a uniform rollover both sides
	// carry the same logShift and off is 0; a fractional residue (shifts that
	// are not whole levels) costs at most half a level of discretization —
	// within the sketch's existing base-factor error.
	off := 0
	if o.logShift != d.logShift {
		off = int(math.Round((o.logShift - d.logShift) / d.logBase))
	}
	olo, ohi := o.lo+off, o.hi+off
	if d.empty {
		d.lo, d.hi, d.empty = olo, ohi, false
	}
	if ohi > d.hi {
		d.hi = ohi
	}
	if olo < d.lo && d.hi-olo+1 <= d.maxLevels {
		d.extendDown(olo)
	}
	if nlo := d.hi - d.maxLevels + 1; nlo > d.lo {
		for j := d.lo; j < nlo; j++ {
			delete(d.levels, j)
		}
		d.lo = nlo
	}
	// Every key of o qualifies for all levels at or below o's lowest level
	// (which, by the update invariant, holds o's full key set).
	oLowest := o.levels[o.lo]
	for j := d.lo; j <= d.hi; j++ {
		var src *KMV
		switch {
		case j < olo:
			src = oLowest
		case j > ohi:
			src = nil
		default:
			src = o.levels[j-off]
		}
		if src == nil || src.Len() == 0 {
			continue
		}
		dst := d.levels[j]
		if dst == nil {
			dst = NewKMV(d.k)
			d.levels[j] = dst
		}
		dst.Merge(src)
	}
}

// Levels returns the number of retained levels (for tests and size probes).
func (d *Dominance) Levels() int { return len(d.levels) }

// SizeBytes estimates the in-memory footprint.
func (d *Dominance) SizeBytes() int {
	s := 96
	for _, kmv := range d.levels {
		s += 48 + kmv.SizeBytes()
	}
	return s
}
