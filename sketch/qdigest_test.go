package sketch

import (
	"math"
	"testing"

	"forwarddecay/internal/core"
)

// exactRank returns the total weight of values < v in the reference stream.
func exactRank(vals []uint64, ws []float64, v uint64) float64 {
	var r float64
	for i, x := range vals {
		if x < v {
			r += ws[i]
		}
	}
	return r
}

func makeWeightedValues(seed uint64, n int, u uint64) ([]uint64, []float64, float64) {
	rng := core.NewRNG(seed)
	vals := make([]uint64, n)
	ws := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		// Mixture: clustered lows plus a heavy tail, to stress the tree.
		var v uint64
		if rng.Float64() < 0.7 {
			v = uint64(rng.Intn(int(u / 8)))
		} else {
			v = uint64(rng.Intn(int(u)))
		}
		w := 0.1 + 3*rng.Float64()
		vals[i], ws[i] = v, w
		total += w
	}
	return vals, ws, total
}

func TestQDigestRankError(t *testing.T) {
	const u, eps = 1 << 12, 0.05
	vals, ws, total := makeWeightedValues(11, 30000, u)
	q := NewQDigest(u, eps)
	for i, v := range vals {
		q.Update(v, ws[i])
	}
	q.Compress()
	if math.Abs(q.Total()-total) > 1e-6*total {
		t.Fatalf("Total = %v, want %v", q.Total(), total)
	}
	for _, v := range []uint64{1, 10, 100, 500, 1000, 2048, 4000, 4095} {
		got := q.Rank(v)
		want := exactRank(vals, ws, v)
		if math.Abs(got-want) > eps*total {
			t.Errorf("Rank(%d) = %v, want %v ± %v", v, got, want, eps*total)
		}
	}
}

func TestQDigestQuantileError(t *testing.T) {
	const u, eps = 1 << 12, 0.05
	vals, ws, total := makeWeightedValues(12, 30000, u)
	q := NewQDigest(u, eps)
	for i, v := range vals {
		q.Update(v, ws[i])
	}
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := q.Quantile(phi)
		// The returned value's exact rank must be within eps·W of phi·W.
		// Rank of values <= got includes got itself; check the bracket
		// [rank(got), rank(got+1)] overlaps [phi·W − εW, phi·W + εW].
		lo := exactRank(vals, ws, got)
		hi := exactRank(vals, ws, got+1)
		if hi < (phi-eps)*total || lo > (phi+eps)*total {
			t.Errorf("Quantile(%v) = %d with rank bracket [%v,%v], want overlap with %v ± %v",
				phi, got, lo, hi, phi*total, eps*total)
		}
	}
}

func TestQDigestSpaceBound(t *testing.T) {
	const u, eps = 1 << 16, 0.02
	q := NewQDigest(u, eps)
	rng := core.NewRNG(13)
	for i := 0; i < 200000; i++ {
		q.Update(uint64(rng.Intn(u)), 1)
	}
	q.Compress()
	// After compression the digest must hold O(k log U) nodes; use the
	// documented bound of 3k(logU+1).
	logU := 16
	k := int(math.Ceil(float64(logU) / eps))
	if q.Len() > 3*k*(logU+1) {
		t.Errorf("digest holds %d nodes, above bound %d", q.Len(), 3*k*(logU+1))
	}
}

func TestQDigestMerge(t *testing.T) {
	const u, eps = 1 << 10, 0.05
	valsA, wsA, totalA := makeWeightedValues(14, 15000, u)
	valsB, wsB, totalB := makeWeightedValues(15, 15000, u)
	a := NewQDigest(u, eps)
	b := NewQDigest(u, eps)
	for i := range valsA {
		a.Update(valsA[i], wsA[i])
	}
	for i := range valsB {
		b.Update(valsB[i], wsB[i])
	}
	a.Merge(b)
	total := totalA + totalB
	all := append(append([]uint64{}, valsA...), valsB...)
	allW := append(append([]float64{}, wsA...), wsB...)
	for _, v := range []uint64{16, 64, 256, 512, 1000} {
		got := a.Rank(v)
		want := exactRank(all, allW, v)
		if math.Abs(got-want) > 2*eps*total {
			t.Errorf("merged Rank(%d) = %v, want %v ± %v", v, got, want, 2*eps*total)
		}
	}
}

func TestQDigestScale(t *testing.T) {
	q := NewQDigest(16, 0.1)
	q.Update(3, 10)
	q.Update(12, 6)
	q.Scale(0.5)
	if q.Total() != 8 {
		t.Errorf("scaled total = %v, want 8", q.Total())
	}
	if got := q.Rank(12); math.Abs(got-5) > 1e-9 {
		t.Errorf("scaled Rank(12) = %v, want 5", got)
	}
}

func TestQDigestClampsAndIgnores(t *testing.T) {
	q := NewQDigest(16, 0.1)
	q.Update(100, 2) // clamped to 15
	q.Update(5, -1)  // ignored
	q.Update(5, 0)   // ignored
	if q.Total() != 2 {
		t.Fatalf("Total = %v, want 2", q.Total())
	}
	if got := q.Quantile(1); got != 15 {
		t.Errorf("Quantile(1) = %d, want clamped 15", got)
	}
}

func TestQDigestQuantileMonotoneInPhi(t *testing.T) {
	const u = 1 << 10
	q := NewQDigest(u, 0.05)
	rng := core.NewRNG(16)
	for i := 0; i < 20000; i++ {
		q.Update(uint64(rng.Intn(u)), 1+rng.Float64())
	}
	q.Compress()
	prev := uint64(0)
	for _, phi := range []float64{0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9, 1} {
		v := q.Quantile(phi)
		if v < prev {
			t.Errorf("Quantile(%v) = %d below previous %d", phi, v, prev)
		}
		prev = v
	}
}

func TestQDigestMedianUniform(t *testing.T) {
	const u = 1 << 14
	q := NewQDigest(u, 0.01)
	for v := uint64(0); v < u; v++ {
		q.Update(v, 1)
	}
	med := q.Quantile(0.5)
	if math.Abs(float64(med)-float64(u)/2) > 0.02*float64(u) {
		t.Errorf("median of uniform = %d, want ≈ %d", med, u/2)
	}
}

func TestQDigestDomainRounding(t *testing.T) {
	q := NewQDigest(1000, 0.1) // rounds up to 1024
	if q.U() != 1024 {
		t.Errorf("U = %d, want 1024", q.U())
	}
}

func TestQDigestMergePanicsOnDomainMismatch(t *testing.T) {
	a := NewQDigest(16, 0.1)
	b := NewQDigest(32, 0.1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on domain mismatch")
		}
	}()
	a.Merge(b)
}

func TestQDigestOrderInsensitive(t *testing.T) {
	const u = 1 << 10
	vals, ws, _ := makeWeightedValues(17, 5000, u)
	a := NewQDigest(u, 0.05)
	b := NewQDigest(u, 0.05)
	for i := range vals {
		a.Update(vals[i], ws[i])
	}
	perm := core.NewRNG(18).Perm(len(vals))
	for _, i := range perm {
		b.Update(vals[i], ws[i])
	}
	a.Compress()
	b.Compress()
	// Results need not be identical (compression points differ), but ranks
	// must agree within the error bound of each.
	for _, v := range []uint64{32, 128, 512, 900} {
		ra, rb := a.Rank(v), b.Rank(v)
		if math.Abs(ra-rb) > 2*0.05*a.Total() {
			t.Errorf("order sensitivity at Rank(%d): %v vs %v", v, ra, rb)
		}
	}
}

func TestQDigestSortedNodesOrdering(t *testing.T) {
	q := NewQDigest(16, 0.3)
	for v := uint64(0); v < 16; v++ {
		q.Update(v, float64(v+1))
	}
	q.Compress()
	ns := q.sortedNodes()
	for i := 1; i < len(ns); i++ {
		if ns[i].hi < ns[i-1].hi {
			t.Fatalf("nodes not sorted by hi: %+v", ns)
		}
		if ns[i].hi == ns[i-1].hi && ns[i].lo > ns[i-1].lo {
			t.Fatalf("ties not broken by smaller range first: %+v", ns)
		}
	}
	// Node weights must sum to the total.
	var s float64
	for _, n := range ns {
		s += n.w
	}
	if math.Abs(s-q.Total()) > 1e-9 {
		t.Errorf("node weights sum to %v, total is %v", s, q.Total())
	}
}
