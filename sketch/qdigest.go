package sketch

import (
	"math"
	"math/bits"
	"sort"
)

// QDigest is the quantile summary of Shrivastava, Buragohain, Agrawal and
// Suri, in its weighted form: values come from the integer domain
// [0, U) (U a power of two) and each update carries an arbitrary positive
// weight, fixed at arrival — exactly what forward decay needs (Theorem 3 of
// the paper). With compression factor k it uses O(k·log U) nodes and answers
// rank and quantile queries with additive error at most (log₂U / k)·W,
// where W is the total weight; choosing k = ⌈log₂U / ε⌉ gives εW error.
//
// The digest is mergeable and supports linear Scale rescaling for landmark
// shifts. It is not safe for concurrent use.
type QDigest struct {
	logU  uint               // tree depth: domain is [0, 2^logU)
	k     int                // compression factor
	nodes map[uint64]float64 // heap-numbered tree node → weight
	total float64
	dirty float64 // weight added since the last compression

	scratch []uint64 // reusable id buffer for Compress
}

// NewQDigest returns a digest over the value domain [0, u) with target rank
// error epsilon. u is rounded up to the next power of two. It panics unless
// u ≥ 2 and 0 < epsilon < 1.
func NewQDigest(u uint64, epsilon float64) *QDigest {
	if u < 2 {
		panic("sketch: QDigest domain must have at least two values")
	}
	if !(epsilon > 0 && epsilon < 1) {
		panic("sketch: QDigest epsilon must be in (0,1)")
	}
	logU := uint(0)
	for uint64(1)<<logU < u {
		logU++
	}
	k := int(math.Ceil(float64(logU) / epsilon))
	if k < 1 {
		k = 1
	}
	return &QDigest{logU: logU, k: k, nodes: make(map[uint64]float64)}
}

// U returns the (rounded) domain size.
func (q *QDigest) U() uint64 { return 1 << q.logU }

// Total returns the total weight observed.
func (q *QDigest) Total() float64 { return q.total }

// Len returns the number of stored tree nodes.
func (q *QDigest) Len() int { return len(q.nodes) }

// Update adds weight w for value v. Values ≥ U are clamped to U−1;
// non-positive weights are ignored.
func (q *QDigest) Update(v uint64, w float64) {
	if w <= 0 {
		return
	}
	if v >= q.U() {
		v = q.U() - 1
	}
	leaf := q.U() + v // heap numbering: root = 1, leaves = U..2U-1
	q.nodes[leaf] += w
	q.total += w
	q.dirty += w
	// Compress once a constant fraction of new weight has accumulated, so
	// the amortised update cost stays low while the size bound holds.
	if q.dirty > q.total/4 && len(q.nodes) > 3*q.sizeBound()/2 {
		q.Compress()
	}
}

// sizeBound is the O(k log U) node bound the compression restores.
func (q *QDigest) sizeBound() int { return 3 * q.k * int(q.logU+1) }

// Compress restores the q-digest invariant, merging under-full sibling
// pairs into their parents bottom-up. It runs in time linear in the number
// of stored nodes — the bottom-up order comes from a counting sort over the
// 64 possible tree levels into a reusable scratch buffer, not a comparison
// sort — and allocates nothing once the scratch is warm. It is called
// automatically; callers only need it directly before serializing or
// measuring size.
func (q *QDigest) Compress() {
	if len(q.nodes) == 0 {
		q.dirty = 0
		return
	}
	thresh := q.total / float64(q.k)
	// A merge decision touches only a sibling pair and their parent, so
	// decisions within one level are independent: any child-before-parent
	// order yields the same node set as the old full descending-id sort.
	// Bucket the ids by level (= bit length), deepest level first.
	if cap(q.scratch) < len(q.nodes) {
		q.scratch = make([]uint64, 0, 2*len(q.nodes))
	}
	ids := q.scratch[:len(q.nodes)]
	var start [65]int
	for id := range q.nodes {
		start[bits.Len64(id)]++
	}
	pos := 0
	for l := 64; l >= 1; l-- {
		c := start[l]
		start[l] = pos
		pos += c
	}
	for id := range q.nodes {
		l := bits.Len64(id)
		ids[start[l]] = id
		start[l]++
	}
	for _, id := range ids {
		if id <= 1 {
			continue
		}
		c, ok := q.nodes[id]
		if !ok {
			continue
		}
		sib := q.nodes[id^1]
		par := q.nodes[id>>1]
		if c+sib+par <= thresh {
			q.nodes[id>>1] = par + c + sib
			delete(q.nodes, id)
			delete(q.nodes, id^1)
		}
	}
	q.scratch = ids[:0]
	q.dirty = 0
}

// Rank returns the estimated total weight of values strictly less than v.
// The true rank is within an additive (log₂U/k)·Total of the estimate.
func (q *QDigest) Rank(v uint64) float64 {
	if v >= q.U() {
		v = q.U() - 1
	}
	var r float64
	for id, w := range q.nodes {
		_, hi := q.span(id)
		if hi < v {
			r += w
		}
	}
	return r
}

// Quantile returns the smallest value whose estimated rank reaches
// phi·Total: the φ-quantile under the stored weights. phi is clamped to
// [0, 1].
func (q *QDigest) Quantile(phi float64) uint64 {
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := phi * q.total
	nodes := q.sortedNodes()
	var cum float64
	for _, n := range nodes {
		cum += n.w
		if cum >= target {
			return n.hi
		}
	}
	if len(nodes) == 0 {
		return 0
	}
	return nodes[len(nodes)-1].hi
}

type qdNode struct {
	lo, hi uint64
	w      float64
}

// sortedNodes returns the stored nodes in q-digest query order: increasing
// upper endpoint, ties broken by smaller range (larger lower endpoint)
// first.
func (q *QDigest) sortedNodes() []qdNode {
	out := make([]qdNode, 0, len(q.nodes))
	for id, w := range q.nodes {
		lo, hi := q.span(id)
		out = append(out, qdNode{lo, hi, w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].hi != out[j].hi {
			return out[i].hi < out[j].hi
		}
		return out[i].lo > out[j].lo
	})
	return out
}

// span returns the value interval [lo, hi] covered by heap node id.
func (q *QDigest) span(id uint64) (lo, hi uint64) {
	level := uint(bits.Len64(id)) - 1
	below := q.logU - level
	lo = (id - (1 << level)) << below
	hi = lo + (1 << below) - 1
	return lo, hi
}

// Scale multiplies every stored weight and the total by f (landmark
// rescaling, §VI-A of the paper). The factor must be finite and positive;
// anything else returns *ScaleError and leaves the digest untouched.
func (q *QDigest) Scale(f float64) error {
	if err := checkScale("QDigest", f); err != nil {
		return err
	}
	for id := range q.nodes {
		q.nodes[id] *= f
	}
	q.total *= f
	q.dirty *= f
	return nil
}

// Merge folds another digest over the same domain into this one by adding
// node weights and recompressing. It panics if the domains differ. Errors
// add: the merged digest has additive rank error (log₂U/k)·(W₁+W₂).
func (q *QDigest) Merge(o *QDigest) {
	if o == nil {
		return
	}
	if o.logU != q.logU {
		panic("sketch: merging QDigests over different domains")
	}
	for id, w := range o.nodes {
		q.nodes[id] += w
	}
	q.total += o.total
	q.Compress()
}

// Clone returns a deep copy of the digest.
func (q *QDigest) Clone() *QDigest {
	c := &QDigest{logU: q.logU, k: q.k, total: q.total, dirty: q.dirty,
		nodes: make(map[uint64]float64, len(q.nodes))}
	for id, w := range q.nodes {
		c.nodes[id] = w
	}
	return c
}

// SizeBytes estimates the in-memory footprint after compression
// (~48 B per map slot plus the compaction scratch buffer).
func (q *QDigest) SizeBytes() int { return 64 + len(q.nodes)*48 + cap(q.scratch)*8 }
