package sketch

import "sort"

// heapSpaceSaving is the pre-optimisation min-heap implementation of the
// weighted SpaceSaving summary, preserved verbatim as a differential oracle:
// the O(1)-amortised lazy-min kernel must agree with it on every stream
// whose eviction choices are deterministic (no count ties at eviction time),
// and must satisfy the same Def. 7 / Theorem 2 invariants everywhere else.
type heapSpaceSaving struct {
	k       int
	entries []ssEntry      // min-heap on count
	pos     map[uint64]int // key → index in entries
	total   float64
}

func newHeapSpaceSavingK(k int) *heapSpaceSaving {
	if k < 1 {
		panic("sketch: SpaceSaving needs at least one counter")
	}
	return &heapSpaceSaving{
		k:       k,
		entries: make([]ssEntry, 0, k),
		pos:     make(map[uint64]int, k),
	}
}

func (s *heapSpaceSaving) Total() float64 { return s.total }
func (s *heapSpaceSaving) Len() int       { return len(s.entries) }

func (s *heapSpaceSaving) Update(key uint64, w float64) {
	if w <= 0 {
		return
	}
	s.total += w
	if i, ok := s.pos[key]; ok {
		s.entries[i].count += w
		s.siftDown(i)
		return
	}
	if len(s.entries) < s.k {
		s.entries = append(s.entries, ssEntry{key: key, count: w})
		s.pos[key] = len(s.entries) - 1
		s.siftUp(len(s.entries) - 1)
		return
	}
	min := &s.entries[0]
	delete(s.pos, min.key)
	min.err = min.count
	min.count += w
	min.key = key
	s.pos[key] = 0
	s.siftDown(0)
}

func (s *heapSpaceSaving) Estimate(key uint64) (count, err float64) {
	if i, ok := s.pos[key]; ok {
		return s.entries[i].count, s.entries[i].err
	}
	if len(s.entries) < s.k || len(s.entries) == 0 {
		return 0, 0
	}
	m := s.entries[0].count
	return m, m
}

func (s *heapSpaceSaving) ErrorBound() float64 {
	if len(s.entries) < s.k || len(s.entries) == 0 {
		return 0
	}
	return s.entries[0].count
}

func (s *heapSpaceSaving) HeavyHitters(phi float64) []ItemCount {
	thresh := phi * s.total
	var out []ItemCount
	for _, e := range s.entries {
		if e.count >= thresh {
			out = append(out, ItemCount{Key: e.key, Count: e.count, Err: e.err})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

func (s *heapSpaceSaving) Scale(f float64) {
	if f < 0 {
		panic("sketch: negative scale")
	}
	for i := range s.entries {
		s.entries[i].count *= f
		s.entries[i].err *= f
	}
	s.total *= f
}

func (s *heapSpaceSaving) Merge(o *heapSpaceSaving) {
	if o == nil || len(o.entries) == 0 {
		return
	}
	type ce struct{ count, err float64 }
	union := make(map[uint64]ce, len(s.entries)+len(o.entries))
	sMin, oMin := 0.0, 0.0
	if len(s.entries) == s.k {
		sMin = s.entries[0].count
	}
	if len(o.entries) == o.k {
		oMin = o.entries[0].count
	}
	for _, e := range s.entries {
		union[e.key] = ce{e.count, e.err}
	}
	for _, e := range o.entries {
		if c, ok := union[e.key]; ok {
			union[e.key] = ce{c.count + e.count, c.err + e.err}
		} else {
			union[e.key] = ce{e.count + sMin, e.err + sMin}
		}
	}
	for k, c := range union {
		if _, inO := o.pos[k]; !inO {
			union[k] = ce{c.count + oMin, c.err + oMin}
		}
	}
	all := make([]ssEntry, 0, len(union))
	for k, c := range union {
		all = append(all, ssEntry{key: k, count: c.count, err: c.err})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].count > all[j].count })
	if len(all) > s.k {
		all = all[:s.k]
	}
	s.entries = all
	s.pos = make(map[uint64]int, len(all))
	s.heapify()
	s.total += o.total
}

func (s *heapSpaceSaving) Clone() *heapSpaceSaving {
	c := &heapSpaceSaving{
		k:       s.k,
		entries: append([]ssEntry(nil), s.entries...),
		pos:     make(map[uint64]int, len(s.pos)),
		total:   s.total,
	}
	for k, v := range s.pos {
		c.pos[k] = v
	}
	return c
}

func (s *heapSpaceSaving) heapify() {
	for i := range s.entries {
		s.pos[s.entries[i].key] = i
	}
	for i := len(s.entries)/2 - 1; i >= 0; i-- {
		s.siftDown(i)
	}
}

func (s *heapSpaceSaving) siftUp(i int) {
	e := s.entries
	for i > 0 {
		p := (i - 1) / 2
		if e[p].count <= e[i].count {
			break
		}
		s.swap(i, p)
		i = p
	}
}

func (s *heapSpaceSaving) siftDown(i int) {
	e := s.entries
	n := len(e)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && e[l].count < e[m].count {
			m = l
		}
		if r < n && e[r].count < e[m].count {
			m = r
		}
		if m == i {
			return
		}
		s.swap(i, m)
		i = m
	}
}

func (s *heapSpaceSaving) swap(i, j int) {
	e := s.entries
	e[i], e[j] = e[j], e[i]
	s.pos[e[i].key] = i
	s.pos[e[j].key] = j
}
