package sketch

import (
	"sort"
	"testing"

	"forwarddecay/internal/core"
)

// Differential tests: the O(1)-amortised lazy-min SpaceSaving kernel against
// the preserved heap implementation (ssheap_oracle_test.go), and the
// counting-sort q-digest compaction against the old comparison-sort order.
//
// On streams with continuous random weights, count ties (and therefore
// ambiguous eviction choices) occur with probability zero, so the two
// SpaceSaving implementations must agree bit-for-bit: same monitored keys,
// same counts, same error terms, same totals. Streams engineered to tie are
// checked against the Def. 7 / Theorem 2 bounds instead, which both
// implementations must satisfy regardless of tie-breaking.

// assertSSEqualOracle compares the kernel and the oracle key-for-key over
// the probe space and on the derived queries.
func assertSSEqualOracle(t *testing.T, tag string, ss *SpaceSaving, h *heapSpaceSaving, keySpace uint64) {
	t.Helper()
	if ss.Total() != h.Total() {
		t.Fatalf("%s: Total %v != oracle %v", tag, ss.Total(), h.Total())
	}
	if ss.Len() != h.Len() {
		t.Fatalf("%s: Len %d != oracle %d", tag, ss.Len(), h.Len())
	}
	if ss.ErrorBound() != h.ErrorBound() {
		t.Fatalf("%s: ErrorBound %v != oracle %v", tag, ss.ErrorBound(), h.ErrorBound())
	}
	for key := uint64(0); key < keySpace; key++ {
		c1, e1 := ss.Estimate(key)
		c2, e2 := h.Estimate(key)
		if c1 != c2 || e1 != e2 {
			t.Fatalf("%s: Estimate(%d) = (%v,%v), oracle (%v,%v)", tag, key, c1, e1, c2, e2)
		}
	}
	hh1 := ss.HeavyHitters(0.01)
	hh2 := h.HeavyHitters(0.01)
	if len(hh1) != len(hh2) {
		t.Fatalf("%s: HeavyHitters %d items, oracle %d", tag, len(hh1), len(hh2))
	}
	for i := range hh1 {
		if hh1[i] != hh2[i] {
			t.Fatalf("%s: HeavyHitters[%d] = %+v, oracle %+v", tag, i, hh1[i], hh2[i])
		}
	}
}

// TestSpaceSavingDifferentialStreams drives both implementations through
// adversarial weighted streams — constant eviction churn, skew, revival of
// evicted keys, growing weights — asserting exact agreement throughout.
func TestSpaceSavingDifferentialStreams(t *testing.T) {
	cases := []struct {
		name string
		k    int
		keys uint64
		n    int
		gen  func(rng *core.RNG, i int) (uint64, float64)
	}{
		{"churn", 16, 400, 4000, func(rng *core.RNG, i int) (uint64, float64) {
			// Key space ≫ k: nearly every update beyond warmup evicts.
			return uint64(rng.Intn(400)), 0.5 + rng.Float64()
		}},
		{"skew", 16, 200, 4000, func(rng *core.RNG, i int) (uint64, float64) {
			// Favor small keys: heavy hitters emerge while the tail churns.
			a, b := rng.Intn(200), rng.Intn(200)
			if b < a {
				a = b
			}
			return uint64(a), 0.5 + rng.Float64()
		}},
		{"revive", 8, 64, 3000, func(rng *core.RNG, i int) (uint64, float64) {
			// Alternate between disjoint key ranges so evicted keys return,
			// stressing the revived-entry path of the lazy min-window.
			base := uint64(0)
			if (i/200)%2 == 1 {
				base = 32
			}
			return base + uint64(rng.Intn(32)), 0.5 + rng.Float64()
		}},
		{"growing", 32, 300, 3000, func(rng *core.RNG, i int) (uint64, float64) {
			// Weights grow over time (forward decay's g(t) shape): late
			// arrivals always displace, keeping the min-window hot.
			return uint64(rng.Intn(300)), (0.5 + rng.Float64()) * (1 + float64(i)/200)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := core.NewRNG(0xD1FF + uint64(tc.k))
			ss := NewSpaceSavingK(tc.k)
			h := newHeapSpaceSavingK(tc.k)
			for i := 0; i < tc.n; i++ {
				key, w := tc.gen(rng, i)
				ss.Update(key, w)
				h.Update(key, w)
				if (i+1)%500 == 0 {
					assertSSEqualOracle(t, tc.name, ss, h, tc.keys)
				}
			}
			assertSSEqualOracle(t, tc.name, ss, h, tc.keys)
		})
	}
}

// TestSpaceSavingDifferentialScaleMerge interleaves updates with Scale and
// repeated Merge calls (exercising the reused merge scratch), asserting
// exact agreement with the oracle after every phase.
func TestSpaceSavingDifferentialScaleMerge(t *testing.T) {
	const k, keys = 12, 150
	rng := core.NewRNG(0x5CA1E)
	ssA, ssB := NewSpaceSavingK(k), NewSpaceSavingK(k)
	hA, hB := newHeapSpaceSavingK(k), newHeapSpaceSavingK(k)
	feed := func(ss *SpaceSaving, h *heapSpaceSaving, n int) {
		for i := 0; i < n; i++ {
			key := uint64(rng.Intn(keys))
			w := 0.5 + rng.Float64()
			ss.Update(key, w)
			h.Update(key, w)
		}
	}
	for round := 0; round < 6; round++ {
		feed(ssA, hA, 300)
		feed(ssB, hB, 300)
		// Landmark rescale on A (§VI-A of the paper).
		f := 0.5 + rng.Float64()/2
		ssA.Scale(f)
		hA.Scale(f)
		assertSSEqualOracle(t, "post-scale", ssA, hA, keys)
		// Merge B into A; B keeps streaming afterwards.
		ssA.Merge(ssB)
		hA.Merge(hB)
		assertSSEqualOracle(t, "post-merge", ssA, hA, keys)
		// Updates after a merge exercise the rebuilt index and window.
		feed(ssA, hA, 200)
		assertSSEqualOracle(t, "post-merge-update", ssA, hA, keys)
	}
}

// TestSpaceSavingTiedStreamBounds uses unit weights (maximal count ties, so
// eviction choices are ambiguous and the implementations may diverge) and
// checks that the kernel and the oracle each independently satisfy the
// Def. 7 / Theorem 2 guarantees: truth ≤ estimate ≤ truth + W/k, with the
// reported per-key error and the global bound never exceeding W/k.
func TestSpaceSavingTiedStreamBounds(t *testing.T) {
	const k, keys, n = 10, 120, 5000
	rng := core.NewRNG(0x71E5)
	ss := NewSpaceSavingK(k)
	h := newHeapSpaceSavingK(k)
	exact := map[uint64]float64{}
	var total float64
	for i := 0; i < n; i++ {
		key := uint64(rng.Intn(keys))
		ss.Update(key, 1)
		h.Update(key, 1)
		exact[key]++
		total++
	}
	if ss.Total() != h.Total() || ss.Total() != total {
		t.Fatalf("totals: kernel %v, oracle %v, exact %v", ss.Total(), h.Total(), total)
	}
	bound := total/float64(k) + 1e-9
	for key, truth := range exact {
		for _, impl := range []struct {
			name     string
			est, err float64
		}{
			{"kernel", firstOf(ss.Estimate(key)), secondOf(ss.Estimate(key))},
			{"oracle", firstOf(h.Estimate(key)), secondOf(h.Estimate(key))},
		} {
			if impl.est+1e-9 < truth || impl.est > truth+bound {
				t.Fatalf("%s Estimate(%d) = %v outside [%v, %v]", impl.name, key, impl.est, truth, truth+bound)
			}
			if impl.err > bound {
				t.Fatalf("%s err(%d) = %v > W/k = %v", impl.name, key, impl.err, bound)
			}
		}
	}
	if ss.ErrorBound() > bound || h.ErrorBound() > bound {
		t.Fatalf("ErrorBound kernel %v / oracle %v exceed W/k %v", ss.ErrorBound(), h.ErrorBound(), bound)
	}
}

func firstOf(a, _ float64) float64  { return a }
func secondOf(_, b float64) float64 { return b }

// oracleCompress is the pre-optimisation q-digest compaction: ids sorted
// descending with a comparison sort, then the same bottom-up sibling-merge
// loop. Kept as the differential oracle for the counting-sort compaction.
func oracleCompress(q *QDigest) {
	if len(q.nodes) == 0 {
		q.dirty = 0
		return
	}
	thresh := q.total / float64(q.k)
	ids := make([]uint64, 0, len(q.nodes))
	for id := range q.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] > ids[j] })
	for _, id := range ids {
		if id <= 1 {
			continue
		}
		c, ok := q.nodes[id]
		if !ok {
			continue
		}
		sib := q.nodes[id^1]
		par := q.nodes[id>>1]
		if c+sib+par <= thresh {
			q.nodes[id>>1] = par + c + sib
			delete(q.nodes, id)
			delete(q.nodes, id^1)
		}
	}
	q.dirty = 0
}

// TestQDigestCompressMatchesOracle: on identical digests, the counting-sort
// compaction and the old descending-id compaction must produce the same node
// set with the same weights (within-level merge decisions are independent,
// so every child-before-parent order converges to one result).
func TestQDigestCompressMatchesOracle(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		rng := core.NewRNG(seed)
		q := NewQDigest(1<<12, 0.08)
		for i := 0; i < 4000; i++ {
			q.Update(uint64(rng.Intn(1<<12)), 0.5+rng.Float64())
			if (i+1)%800 == 0 {
				a, b := q.Clone(), q.Clone()
				a.Compress()
				oracleCompress(b)
				if len(a.nodes) != len(b.nodes) {
					t.Fatalf("seed %d step %d: %d nodes vs oracle %d", seed, i, len(a.nodes), len(b.nodes))
				}
				for id, w := range a.nodes {
					if bw, ok := b.nodes[id]; !ok || bw != w {
						t.Fatalf("seed %d step %d: node %d = %v, oracle %v (present=%v)", seed, i, id, w, bw, ok)
					}
				}
				if a.Total() != b.Total() {
					t.Fatalf("seed %d: totals diverge %v vs %v", seed, a.Total(), b.Total())
				}
			}
		}
	}
}
