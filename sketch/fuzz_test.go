package sketch_test

import (
	"encoding"
	"testing"

	"forwarddecay/sketch"
)

// sketchDecoders returns one fresh instance of every sketch with a binary
// codec. Each fuzz iteration decodes into fresh receivers so no state leaks
// between inputs.
func sketchDecoders() map[string]encoding.BinaryUnmarshaler {
	return map[string]encoding.BinaryUnmarshaler{
		"spacesaving": sketch.NewSpaceSavingK(16),
		"qdigest":     sketch.NewQDigest(1<<16, 0.05),
		"kmv":         sketch.NewKMV(32),
		"misragries":  sketch.NewMisraGries(16),
		"dominance":   sketch.NewDominance(16, 1.05, 64),
	}
}

// FuzzSketchDecode drives every sketch decoder with arbitrary bytes. The
// contract under test: malformed input returns an error — it never panics
// (slice bounds, division by zero) and never allocates proportionally to a
// forged length field rather than to the actual input size.
func FuzzSketchDecode(f *testing.F) {
	f.Add([]byte{})
	// Seed with valid encodings of populated sketches so the mutator
	// explores the interesting deep-decode paths, not just magic-byte
	// rejections.
	for name, enc := range map[string]encoding.BinaryMarshaler{
		"spacesaving": func() encoding.BinaryMarshaler {
			s := sketch.NewSpaceSavingK(16)
			for i := uint64(0); i < 100; i++ {
				s.Update(i%23, float64(1+i%5))
			}
			return s
		}(),
		"qdigest": func() encoding.BinaryMarshaler {
			q := sketch.NewQDigest(1<<16, 0.05)
			for i := uint64(0); i < 100; i++ {
				q.Update(i*37%1000, 1)
			}
			return q
		}(),
		"kmv": func() encoding.BinaryMarshaler {
			s := sketch.NewKMV(32)
			for i := uint64(0); i < 200; i++ {
				s.Insert(i * 2654435761)
			}
			return s
		}(),
		"misragries": func() encoding.BinaryMarshaler {
			m := sketch.NewMisraGries(16)
			for i := uint64(0); i < 100; i++ {
				m.Update(i%31, 1)
			}
			return m
		}(),
		"dominance": func() encoding.BinaryMarshaler {
			d := sketch.NewDominance(16, 1.05, 64)
			for i := uint64(0); i < 100; i++ {
				d.Update(i%29, float64(i))
			}
			return d
		}(),
	} {
		b, err := enc.MarshalBinary()
		if err != nil {
			f.Fatalf("seeding %s: %v", name, err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		for name, dec := range sketchDecoders() {
			if err := dec.UnmarshalBinary(data); err != nil {
				continue // rejected cleanly: that is the contract
			}
			// Accepted input must leave a usable sketch: exercise a few
			// reads so a silently corrupt decode that breaks invariants
			// (heap order, level bounds) surfaces as a panic here.
			switch s := dec.(type) {
			case *sketch.SpaceSaving:
				s.Top(4)
				s.Estimate(1)
			case *sketch.QDigest:
				s.Quantile(0.5)
			case *sketch.KMV:
				s.Estimate()
			case *sketch.MisraGries:
				s.Estimate(1)
			case *sketch.Dominance:
				s.Estimate()
			default:
				t.Fatalf("unhandled decoder %s", name)
			}
		}
	})
}
