package sketch

import (
	"math"

	"forwarddecay/decay"
)

// ExpHistogram is the sliding-window summary of Datar, Gionis, Indyk and
// Motwani, generalized to sums of positive values: it maintains a sequence
// of buckets whose sums are kept in geometric size classes, at most
// maxPerClass per class, so that the window sum (and count) is recovered
// with relative error at most epsilon using O((1/ε)·log(εW)) buckets.
//
// Following the observation of Cohen and Strauss — which the paper's
// evaluation uses as the general backward-decay competitor — the same bucket
// structure answers a sum decayed by an arbitrary non-increasing age
// function f: each bucket's sum is weighted by f evaluated at the bucket's
// age (DecayedSum). This flexibility is what makes the structure so much
// more expensive than forward decay in Figure 2: per group it stores
// kilobytes of buckets versus a single 8-byte scaled sum.
//
// Timestamps must be non-decreasing (the classical EH requirement); earlier
// timestamps are clamped. ExpHistogram is not safe for concurrent use.
type ExpHistogram struct {
	maxPerClass int
	window      float64    // expiry horizon; <= 0 means unbounded
	buckets     []ehBucket // oldest first
	last        float64    // newest timestamp observed
	count       int64      // items currently represented (approx., for stats)
	classCount  map[int]int
}

type ehBucket struct {
	sum            float64
	count          float64
	oldest, newest float64 // timestamps of the bucket's extreme items
}

// NewExpHistogram returns a histogram with relative error epsilon over a
// sliding window of the given length (in time units); window <= 0 keeps all
// buckets forever (landmark mode). It panics unless 0 < epsilon < 1.
func NewExpHistogram(epsilon float64, window float64) *ExpHistogram {
	if !(epsilon > 0 && epsilon < 1) {
		panic("sketch: ExpHistogram epsilon must be in (0,1)")
	}
	// ceil(1/eps)/2+2 buckets per class bounds the half-oldest-bucket error
	// by epsilon of the window sum.
	m := int(math.Ceil(1/epsilon))/2 + 2
	return &ExpHistogram{maxPerClass: m, window: window, classCount: make(map[int]int, 24)}
}

// Window returns the expiry horizon (0 for unbounded).
func (h *ExpHistogram) Window() float64 { return h.window }

// Len returns the current number of buckets.
func (h *ExpHistogram) Len() int { return len(h.buckets) }

// Insert adds an item with the given timestamp and positive value (use 1
// for counting). Non-positive values are ignored.
func (h *ExpHistogram) Insert(ts float64, value float64) {
	if value <= 0 {
		return
	}
	if ts < h.last {
		ts = h.last
	}
	h.last = ts
	h.buckets = append(h.buckets, ehBucket{sum: value, count: 1, oldest: ts, newest: ts})
	h.count++
	c := sizeClass(value)
	h.classCount[c]++
	h.cascade(c)
	h.expire(ts)
}

// sizeClass buckets sums geometrically: class j holds sums in [2^j, 2^(j+1)).
func sizeClass(sum float64) int {
	return int(math.Floor(math.Log2(sum)))
}

// cascade restores the per-class bucket bound after class c gained a
// bucket, merging the two oldest buckets of an over-full class; the merged
// bucket lands in a higher class, which may cascade upward.
func (h *ExpHistogram) cascade(c int) {
	for h.classCount[c] > h.maxPerClass {
		// Merge the two oldest buckets of class c.
		first := -1
		merged := -1
		for i := range h.buckets {
			if sizeClass(h.buckets[i].sum) != c {
				continue
			}
			if first < 0 {
				first = i
				continue
			}
			b := &h.buckets[first]
			b.sum += h.buckets[i].sum
			b.count += h.buckets[i].count
			if h.buckets[i].newest > b.newest {
				b.newest = h.buckets[i].newest
			}
			if h.buckets[i].oldest < b.oldest {
				b.oldest = h.buckets[i].oldest
			}
			h.buckets = append(h.buckets[:i], h.buckets[i+1:]...)
			merged = sizeClass(b.sum)
			break
		}
		if merged < 0 { // bookkeeping drift; recount defensively
			h.recount()
			return
		}
		h.classCount[c] -= 2
		if h.classCount[c] == 0 {
			delete(h.classCount, c)
		}
		h.classCount[merged]++
		c = merged
	}
}

// recount rebuilds the class counts from scratch.
func (h *ExpHistogram) recount() {
	for k := range h.classCount {
		delete(h.classCount, k)
	}
	for _, b := range h.buckets {
		h.classCount[sizeClass(b.sum)]++
	}
}

// expire drops buckets whose newest item has left the window.
func (h *ExpHistogram) expire(now float64) {
	if h.window <= 0 {
		return
	}
	cutoff := now - h.window
	i := 0
	for i < len(h.buckets) && h.buckets[i].newest < cutoff {
		h.count -= int64(h.buckets[i].count)
		c := sizeClass(h.buckets[i].sum)
		h.classCount[c]--
		if h.classCount[c] == 0 {
			delete(h.classCount, c)
		}
		i++
	}
	if i > 0 {
		h.buckets = h.buckets[i:]
	}
}

// WindowSum estimates the sum of values of items with timestamp in
// (t − window, t], with relative error at most epsilon. With unbounded
// window it returns the total sum (exactly).
func (h *ExpHistogram) WindowSum(t float64) float64 {
	h.expire(t)
	var s float64
	for _, b := range h.buckets {
		s += b.sum
	}
	if h.window > 0 && len(h.buckets) > 0 && h.buckets[0].oldest < t-h.window {
		// The oldest bucket straddles the window boundary: count half of it,
		// the classical EH estimate.
		s -= h.buckets[0].sum / 2
	}
	return s
}

// WindowCount estimates the number of items in the window, with the same
// guarantee (relative error bounds apply when items have unit values).
func (h *ExpHistogram) WindowCount(t float64) float64 {
	h.expire(t)
	var c float64
	for _, b := range h.buckets {
		c += b.count
	}
	if h.window > 0 && len(h.buckets) > 0 && h.buckets[0].oldest < t-h.window {
		c -= h.buckets[0].count / 2
	}
	return c
}

// DecayedSum estimates the backward-decayed sum Σᵢ vᵢ·f(t−tᵢ)/f(0) for an
// arbitrary non-increasing age function f, by weighting each bucket with f
// at the midpoint of its age span (Cohen–Strauss). Accuracy degrades with
// the variation of f across a bucket; the bucket structure keeps old
// buckets' relative mass small, so the overall relative error stays
// O(epsilon) for smooth decay functions.
func (h *ExpHistogram) DecayedSum(f decay.AgeFunc, t float64) float64 {
	h.expire(t)
	f0 := f.Eval(0)
	var s float64
	for _, b := range h.buckets {
		aNew, aOld := t-b.newest, t-b.oldest
		if aNew < 0 {
			aNew = 0
		}
		if aOld < 0 {
			aOld = 0
		}
		w := (f.Eval(aNew) + f.Eval(aOld)) / 2 / f0
		s += b.sum * w
	}
	return s
}

// DecayedCount is DecayedSum over unit values.
func (h *ExpHistogram) DecayedCount(f decay.AgeFunc, t float64) float64 {
	h.expire(t)
	f0 := f.Eval(0)
	var s float64
	for _, b := range h.buckets {
		aNew, aOld := t-b.newest, t-b.oldest
		if aNew < 0 {
			aNew = 0
		}
		if aOld < 0 {
			aOld = 0
		}
		w := (f.Eval(aNew) + f.Eval(aOld)) / 2 / f0
		s += b.count * w
	}
	return s
}

// SizeBytes estimates the in-memory footprint: 32 bytes per bucket plus the
// header.
func (h *ExpHistogram) SizeBytes() int { return 48 + cap(h.buckets)*32 }
