package sketch

import "sort"

// MisraGries is the classic deterministic frequent-items summary with k
// counters: for a stream of total weight W it estimates every item's weight
// with underestimation at most W/(k+1). It accepts weighted updates and
// merges (by counter addition followed by an offset-truncation step), and is
// the per-block building block of the sliding-window heavy-hitters baseline
// in the window package.
//
// MisraGries is not safe for concurrent use.
type MisraGries struct {
	k        int
	counters map[uint64]float64
	total    float64
}

// NewMisraGries returns a summary with k counters. It panics if k < 1.
func NewMisraGries(k int) *MisraGries {
	if k < 1 {
		panic("sketch: MisraGries needs at least one counter")
	}
	return &MisraGries{k: k, counters: make(map[uint64]float64, k+1)}
}

// K returns the number of counters.
func (m *MisraGries) K() int { return m.k }

// Total returns the total weight observed.
func (m *MisraGries) Total() float64 { return m.total }

// Len returns the number of live counters.
func (m *MisraGries) Len() int { return len(m.counters) }

// Update adds weight w for key. Non-positive weights are ignored.
func (m *MisraGries) Update(key uint64, w float64) {
	if w <= 0 {
		return
	}
	m.total += w
	if c, ok := m.counters[key]; ok || len(m.counters) < m.k {
		m.counters[key] = c + w
		return
	}
	// Decrement all counters by the weight of the smallest "absorbable"
	// amount: the weighted generalization decrements by min(w, min counter),
	// repeating until the newcomer is either installed or exhausted.
	for w > 0 {
		min := w
		for _, c := range m.counters {
			if c < min {
				min = c
			}
		}
		for k2, c := range m.counters {
			if c <= min {
				delete(m.counters, k2)
			} else {
				m.counters[k2] = c - min
			}
		}
		w -= min
		if w > 0 {
			if len(m.counters) < m.k {
				m.counters[key] = w
				return
			}
		}
	}
}

// Estimate returns the (under)estimate of key's weight; the true weight is
// within [estimate, estimate + Total/(k+1)].
func (m *MisraGries) Estimate(key uint64) float64 { return m.counters[key] }

// Merge folds another summary into this one by adding counters and then
// truncating back to k counters, subtracting the (k+1)-st largest value —
// the mergeable-summaries construction, which preserves the additive error
// bound (W₁+W₂)/(k+1).
func (m *MisraGries) Merge(o *MisraGries) {
	if o == nil {
		return
	}
	for k2, c := range o.counters {
		m.counters[k2] += c
	}
	m.total += o.total
	if len(m.counters) <= m.k {
		return
	}
	vals := make([]float64, 0, len(m.counters))
	for _, c := range m.counters {
		vals = append(vals, c)
	}
	sort.Float64s(vals)
	// Subtract the (k+1)-st largest counter value from everything.
	off := vals[len(vals)-m.k-1]
	for k2, c := range m.counters {
		if c <= off {
			delete(m.counters, k2)
		} else {
			m.counters[k2] = c - off
		}
	}
}

// Items returns the live counters in decreasing order of estimate.
func (m *MisraGries) Items() []ItemCount {
	out := make([]ItemCount, 0, len(m.counters))
	for k2, c := range m.counters {
		out = append(out, ItemCount{Key: k2, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// SizeBytes estimates the in-memory footprint (~48 B per map slot).
func (m *MisraGries) SizeBytes() int { return 32 + len(m.counters)*48 }
