package sketch

import (
	"math"
	"sort"
	"testing"

	"forwarddecay/internal/core"
)

// zipfStream generates n weighted updates with Zipf(s)-distributed keys over
// a universe of u items, returning the stream and the exact weighted counts.
func zipfStream(seed uint64, n, u int, s float64, weighted bool) (keys []uint64, ws []float64, exact map[uint64]float64) {
	rng := core.NewRNG(seed)
	// Build the Zipf CDF.
	cdf := make([]float64, u)
	var z float64
	for i := 1; i <= u; i++ {
		z += 1 / math.Pow(float64(i), s)
		cdf[i-1] = z
	}
	for i := range cdf {
		cdf[i] /= z
	}
	exact = make(map[uint64]float64)
	keys = make([]uint64, n)
	ws = make([]float64, n)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		idx := sort.SearchFloat64s(cdf, r)
		k := uint64(idx + 1)
		w := 1.0
		if weighted {
			w = 0.5 + 2*rng.Float64()
		}
		keys[i] = k
		ws[i] = w
		exact[k] += w
	}
	return keys, ws, exact
}

func TestSpaceSavingErrorBound(t *testing.T) {
	keys, ws, exact := zipfStream(1, 50000, 2000, 1.2, true)
	ss := NewSpaceSavingK(100)
	var total float64
	for i, k := range keys {
		ss.Update(k, ws[i])
		total += ws[i]
	}
	if math.Abs(ss.Total()-total) > 1e-6*total {
		t.Fatalf("Total = %v, want %v", ss.Total(), total)
	}
	bound := total / 100
	if eb := ss.ErrorBound(); eb > bound+1e-9 {
		t.Fatalf("ErrorBound %v exceeds W/k = %v", eb, bound)
	}
	for k, true_ := range exact {
		est, err := ss.Estimate(k)
		if est < true_-1e-9 {
			t.Fatalf("key %d: estimate %v below true %v", k, est, true_)
		}
		if est > true_+bound+1e-9 {
			t.Fatalf("key %d: estimate %v exceeds true+W/k = %v", k, est, true_+bound)
		}
		if err > bound+1e-9 {
			t.Fatalf("key %d: err %v exceeds W/k", k, err)
		}
	}
}

func TestSpaceSavingHeavyHittersGuarantee(t *testing.T) {
	keys, ws, exact := zipfStream(2, 40000, 1000, 1.5, true)
	const eps = 0.01
	ss := NewSpaceSaving(eps)
	for i, k := range keys {
		ss.Update(k, ws[i])
	}
	const phi = 0.05
	got := ss.HeavyHitters(phi)
	gotSet := make(map[uint64]bool)
	for _, ic := range got {
		gotSet[ic.Key] = true
	}
	W := ss.Total()
	for k, c := range exact {
		if c >= phi*W && !gotSet[k] {
			t.Errorf("true heavy hitter %d (weight %v ≥ %v) missing", k, c, phi*W)
		}
	}
	for _, ic := range got {
		if exact[ic.Key] < (phi-eps)*W {
			t.Errorf("false positive %d: true weight %v < (phi-eps)W = %v", ic.Key, exact[ic.Key], (phi-eps)*W)
		}
	}
	// Results must be sorted in decreasing order of estimate.
	for i := 1; i < len(got); i++ {
		if got[i].Count > got[i-1].Count {
			t.Errorf("HeavyHitters not sorted at %d", i)
		}
	}
}

// TestExample3HeavyHitters reproduces Example 3 of the paper: the decayed
// counts of the Example 1 stream are d₃=0.09, d₄=0.41, d₆=0.64, d₈=0.49 and
// with φ=0.2 the heavy hitters are items 4, 6 and 8. We run the weighted
// SpaceSaving with enough counters to be exact.
func TestExample3HeavyHitters(t *testing.T) {
	// (ti, vi) with weights g(ti−100)/g(110−100), g(n)=n².
	items := []struct {
		v  uint64
		ti float64
	}{{4, 105}, {8, 107}, {3, 103}, {6, 108}, {4, 104}}
	ss := NewSpaceSavingK(10)
	for _, it := range items {
		n := it.ti - 100
		ss.Update(it.v, n*n/100)
	}
	if got, want := ss.Total(), 1.63; math.Abs(got-want) > 1e-9 {
		t.Fatalf("decayed count C = %v, want %v", got, want)
	}
	hh := ss.HeavyHitters(0.2)
	want := map[uint64]float64{6: 0.64, 8: 0.49, 4: 0.41}
	if len(hh) != len(want) {
		t.Fatalf("got %d heavy hitters %v, want %d", len(hh), hh, len(want))
	}
	for _, ic := range hh {
		w, ok := want[ic.Key]
		if !ok {
			t.Errorf("unexpected heavy hitter %d", ic.Key)
			continue
		}
		if math.Abs(ic.Count-w) > 1e-9 {
			t.Errorf("item %d: decayed count %v, want %v", ic.Key, ic.Count, w)
		}
	}
	// d₃ = 0.09 < 0.326 must not be reported.
	if _, err := ss.Estimate(3); err != 0 {
		t.Errorf("item 3 should be tracked exactly (err=0), got err %v", err)
	}
}

func TestSpaceSavingMerge(t *testing.T) {
	keysA, wsA, exactA := zipfStream(3, 20000, 500, 1.3, true)
	keysB, wsB, exactB := zipfStream(4, 20000, 500, 1.3, true)
	a := NewSpaceSavingK(200)
	b := NewSpaceSavingK(200)
	for i := range keysA {
		a.Update(keysA[i], wsA[i])
	}
	for i := range keysB {
		b.Update(keysB[i], wsB[i])
	}
	a.Merge(b)
	W := a.Total()
	exact := make(map[uint64]float64)
	for k, v := range exactA {
		exact[k] += v
	}
	for k, v := range exactB {
		exact[k] += v
	}
	var sumExact float64
	for _, v := range exact {
		sumExact += v
	}
	if math.Abs(W-sumExact) > 1e-6*sumExact {
		t.Fatalf("merged total %v, want %v", W, sumExact)
	}
	// Merged error must be within (W₁+W₂)·(1/k) plus the conservative
	// cross-min padding; allow 3×W/k slack.
	bound := 3 * W / 200
	for k, true_ := range exact {
		est, _ := a.Estimate(k)
		if est+1e-9 < true_ {
			t.Errorf("key %d: merged estimate %v below true %v", k, est, true_)
		}
		if est > true_+bound {
			t.Errorf("key %d: merged estimate %v exceeds true+3W/k = %v", k, est, true_+bound)
		}
	}
}

func TestSpaceSavingScale(t *testing.T) {
	ss := NewSpaceSavingK(10)
	ss.Update(1, 10)
	ss.Update(2, 20)
	ss.Scale(0.5)
	if got, _ := ss.Estimate(1); got != 5 {
		t.Errorf("scaled estimate = %v, want 5", got)
	}
	if ss.Total() != 15 {
		t.Errorf("scaled total = %v, want 15", ss.Total())
	}
}

func TestSpaceSavingResetAndSmall(t *testing.T) {
	ss := NewSpaceSavingK(4)
	for i := uint64(1); i <= 3; i++ {
		ss.Update(i, float64(i))
	}
	if ss.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ss.Len())
	}
	// Not full: absent keys estimate to zero.
	if est, err := ss.Estimate(99); est != 0 || err != 0 {
		t.Errorf("absent key estimate = (%v,%v), want (0,0)", est, err)
	}
	ss.Reset()
	if ss.Len() != 0 || ss.Total() != 0 {
		t.Errorf("Reset left Len=%d Total=%v", ss.Len(), ss.Total())
	}
	ss.Update(7, 1) // reusable after reset
	if est, _ := ss.Estimate(7); est != 1 {
		t.Errorf("post-reset estimate = %v", est)
	}
}

func TestSpaceSavingEviction(t *testing.T) {
	ss := NewSpaceSavingK(2)
	ss.Update(1, 5)
	ss.Update(2, 3)
	ss.Update(3, 1) // evicts key 2 (min): count = 3+1 = 4, err = 3
	est, err := ss.Estimate(3)
	if est != 4 || err != 3 {
		t.Errorf("evicting insert: (%v,%v), want (4,3)", est, err)
	}
	// Key 2 is unmonitored; its estimate is the min counter.
	est, err = ss.Estimate(2)
	if est != 4 || err != 4 {
		t.Errorf("absent key: (%v,%v), want (4,4)", est, err)
	}
	if ss.Update(9, 0); ss.Total() != 9 {
		t.Errorf("zero-weight update must be ignored; total %v", ss.Total())
	}
}

func TestSpaceSavingSizeBytesMonotone(t *testing.T) {
	small := NewSpaceSavingK(10)
	big := NewSpaceSavingK(1000)
	for i := uint64(0); i < 2000; i++ {
		small.Update(i, 1)
		big.Update(i, 1)
	}
	if small.SizeBytes() >= big.SizeBytes() {
		t.Errorf("size of k=10 (%d) should be below k=1000 (%d)", small.SizeBytes(), big.SizeBytes())
	}
}

func TestStreamSummaryMatchesExactOnSkewedStream(t *testing.T) {
	keys, _, exact := zipfStream(5, 60000, 3000, 1.4, false)
	s := NewStreamSummary(150)
	for _, k := range keys {
		s.Update(k)
	}
	if s.Total() != 60000 {
		t.Fatalf("Total = %d", s.Total())
	}
	bound := uint64(60000 / 150)
	for k, c := range exact {
		est, err := s.Estimate(k)
		if float64(est) < c {
			t.Fatalf("key %d: estimate %d below true %v", k, est, c)
		}
		if float64(est) > c+float64(bound)+1 {
			t.Fatalf("key %d: estimate %d exceeds true+W/k = %v", k, est, c+float64(bound))
		}
		if err > bound {
			t.Fatalf("key %d: err %d above bound %d", k, err, bound)
		}
	}
	// HH guarantee.
	const phi = 0.05
	hh := s.HeavyHitters(phi)
	got := make(map[uint64]bool)
	for _, ic := range hh {
		got[ic.Key] = true
	}
	for k, c := range exact {
		if c >= phi*60000 && !got[k] {
			t.Errorf("missing heavy hitter %d", k)
		}
	}
	for _, ic := range hh {
		if exact[ic.Key] < (phi-1.0/150)*60000 {
			t.Errorf("false positive %d (true %v)", ic.Key, exact[ic.Key])
		}
	}
}

func TestStreamSummaryAgreesWithSpaceSaving(t *testing.T) {
	// On a unary stream, the unary-optimised structure and the weighted
	// heap implement the same algorithm; their counters must agree exactly.
	keys, _, _ := zipfStream(6, 20000, 800, 1.2, false)
	a := NewStreamSummary(64)
	b := NewSpaceSavingK(64)
	for _, k := range keys {
		a.Update(k)
		b.Update(k, 1)
	}
	// Same multiset of counter values.
	var ca, cb []float64
	for _, ic := range a.HeavyHitters(0) {
		ca = append(ca, ic.Count)
	}
	for _, ic := range b.HeavyHitters(0) {
		cb = append(cb, ic.Count)
	}
	sort.Float64s(ca)
	sort.Float64s(cb)
	if len(ca) != len(cb) {
		t.Fatalf("different counter counts: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if math.Abs(ca[i]-cb[i]) > 1e-9 {
			t.Fatalf("counter multiset differs at %d: %v vs %v", i, ca[i], cb[i])
		}
	}
}

func TestStreamSummarySmallAndEviction(t *testing.T) {
	s := NewStreamSummary(2)
	s.Update(1)
	s.Update(1)
	s.Update(2)
	if est, err := s.Estimate(1); est != 2 || err != 0 {
		t.Errorf("key1: (%d,%d), want (2,0)", est, err)
	}
	s.Update(3) // evicts key 2 (count 1): key3 count 2, err 1
	est, err := s.Estimate(3)
	if est != 2 || err != 1 {
		t.Errorf("key3 after eviction: (%d,%d), want (2,1)", est, err)
	}
	if est, _ := s.Estimate(2); est != 2 {
		// min bucket is now count 2
		t.Errorf("absent key estimate = %d, want min bucket count 2", est)
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"SpaceSaving eps=0": func() { NewSpaceSaving(0) },
		"SpaceSaving eps=1": func() { NewSpaceSaving(1) },
		"SpaceSavingK k=0":  func() { NewSpaceSavingK(0) },
		"StreamSummary k=0": func() { NewStreamSummary(0) },
		"MisraGries k=0":    func() { NewMisraGries(0) },
		"QDigest u=1":       func() { NewQDigest(1, 0.1) },
		"QDigest eps=0":     func() { NewQDigest(16, 0) },
		"EH eps=0":          func() { NewExpHistogram(0, 60) },
		"Wave k=0":          func() { NewWave(0, 60) },
		"Wave window=0":     func() { NewWave(4, 0) },
		"KMV k=0":           func() { NewKMV(0) },
		"Dominance k":       func() { NewDominance(1, 2, 8) },
		"Dominance base":    func() { NewDominance(16, 1, 8) },
		"Dominance levels":  func() { NewDominance(16, 2, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
