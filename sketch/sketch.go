// Package sketch provides the streaming summaries that the forward-decay
// algorithms of this repository are built on, together with the summaries
// used by the backward-decay baselines of the paper's evaluation:
//
//   - SpaceSaving: the weighted heavy-hitters summary of Metwally et al.
//     (heap-based, O(log 1/ε) per weighted update), used for heavy hitters
//     under forward decay (Theorem 2 of the paper).
//   - StreamSummary: the unary-optimised SpaceSaving variant with O(1)
//     amortised updates — the "Unary HH" baseline of Figure 5.
//   - MisraGries: the classic deterministic frequent-items summary, the
//     building block of the windowed heavy-hitters baseline.
//   - QDigest: the weighted quantile summary of Shrivastava et al., used for
//     quantiles under forward decay (Theorem 3).
//   - ExpHistogram / ExpHistogramSum: the sliding-window count/sum summaries
//     of Datar et al., which (following Cohen and Strauss) also answer
//     arbitrary backward-decayed sums — the expensive competitor of Figure 2.
//   - Wave: the Deterministic Wave window-count summary of Gibbons and
//     Tirthapura, provided for the window-count ablation.
//   - KMV: a k-minimum-values distinct counter.
//   - Dominance: a layered-KMV estimator of the dominance norm
//     Σ_v max_{vᵢ=v} wᵢ, standing in for the range-efficient F₀ algorithm of
//     Pavan and Tirthapura in the count-distinct result (Theorem 4).
//
// All summaries identify items by uint64 keys (hash string keys first, e.g.
// with an FNV hash), are deterministic given their inputs (KMV and Dominance
// use hashing only), are mergeable, and report their memory footprint via
// SizeBytes for the space experiments.
package sketch

// ItemCount is one reported item: its key, an estimate of its (weighted)
// count, and a bound on the overestimation error (true count is within
// [Count−Err, Count]).
type ItemCount struct {
	Key   uint64
	Count float64
	Err   float64
}

// Sized is implemented by every summary in this package: SizeBytes returns
// an accounting estimate of the summary's in-memory footprint in bytes,
// including container overheads.
type Sized interface {
	SizeBytes() int
}
