package sketch

import (
	"errors"
	"math"
	"testing"
)

// Scale-guard tests: SpaceSaving.Scale and QDigest.Scale must refuse any
// factor that is not a finite positive number with the typed *ScaleError —
// a NaN or Inf factor poisons every counter in one call, and a non-positive
// one erases the summary, so both indicate caller arithmetic gone wrong
// (typically an overflowed linear-domain weight during a landmark rebase).

var badScaleFactors = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1), 0, -1, -math.SmallestNonzeroFloat64,
}

func TestSpaceSavingScaleGuard(t *testing.T) {
	s := NewSpaceSavingK(8)
	for k := uint64(0); k < 20; k++ {
		s.Update(k%5, 1)
	}
	before, _ := s.Estimate(2)
	for _, f := range badScaleFactors {
		err := s.Scale(f)
		var se *ScaleError
		if !errors.As(err, &se) {
			t.Fatalf("Scale(%v) returned %v, want *ScaleError", f, err)
		}
		if se.Sketch != "SpaceSaving" || se.Factor != f && !(math.IsNaN(se.Factor) && math.IsNaN(f)) {
			t.Fatalf("Scale(%v) error carries %q/%v", f, se.Sketch, se.Factor)
		}
		if after, _ := s.Estimate(2); after != before {
			t.Fatalf("rejected Scale(%v) still altered counts: %v -> %v", f, before, after)
		}
	}
	if err := s.Scale(0.5); err != nil {
		t.Fatalf("Scale(0.5) rejected: %v", err)
	}
	if after, _ := s.Estimate(2); after != before/2 {
		t.Fatalf("Scale(0.5) gave %v, want %v", after, before/2)
	}
}

func TestQDigestScaleGuard(t *testing.T) {
	q := NewQDigest(256, 0.05)
	for i := uint64(0); i < 100; i++ {
		q.Update(i%64, 1)
	}
	before := q.Total()
	for _, f := range badScaleFactors {
		err := q.Scale(f)
		var se *ScaleError
		if !errors.As(err, &se) {
			t.Fatalf("Scale(%v) returned %v, want *ScaleError", f, err)
		}
		if se.Sketch != "QDigest" {
			t.Fatalf("Scale(%v) error names sketch %q", f, se.Sketch)
		}
		if q.Total() != before {
			t.Fatalf("rejected Scale(%v) still altered total weight", f)
		}
	}
	if err := q.Scale(0.25); err != nil {
		t.Fatalf("Scale(0.25) rejected: %v", err)
	}
	if got := q.Total(); math.Abs(got-before/4) > 1e-9*before {
		t.Fatalf("Scale(0.25) gave weight %v, want %v", got, before/4)
	}
}

// TestDominanceShiftLogExact: the dominance sketch's landmark shift moves
// only its frame offset, so estimates translate exactly (multiplying by
// e^delta in the linear domain) and repeated shifts cancel bit-for-bit.
func TestDominanceShiftLogExact(t *testing.T) {
	d := NewDominance(64, 1.05, 256)
	for i := uint64(0); i < 500; i++ {
		d.Update(i%113, float64(i%50)/10)
	}
	before := d.LogEstimate()
	d.ShiftLog(3.25)
	if got := d.LogEstimate(); got != before+3.25 {
		t.Fatalf("LogEstimate after ShiftLog(3.25) = %v, want %v", got, before+3.25)
	}
	d.ShiftLog(-3.25)
	if got := d.LogEstimate(); got != before {
		t.Fatalf("round-trip shift drifted: %v vs %v", got, before)
	}
	// Shifts commute with merging: a sketch merged from shifted halves must
	// agree with shifting the merged whole.
	a, b := NewDominance(64, 1.05, 256), NewDominance(64, 1.05, 256)
	for i := uint64(0); i < 300; i++ {
		a.Update(i, float64(i%30)/10)
		b.Update(i+1000, float64(i%40)/10)
	}
	a.ShiftLog(1.5)
	b.ShiftLog(1.5)
	whole := NewDominance(64, 1.05, 256)
	for i := uint64(0); i < 300; i++ {
		whole.Update(i, float64(i%30)/10)
		whole.Update(i+1000, float64(i%40)/10)
	}
	whole.ShiftLog(1.5)
	a.Merge(b)
	if got, want := a.LogEstimate(), whole.LogEstimate(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("merge of shifted halves %v, shifted whole %v", got, want)
	}
}
