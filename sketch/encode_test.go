package sketch

import (
	"math"
	"testing"

	"forwarddecay/internal/core"
)

func TestSpaceSavingRoundTrip(t *testing.T) {
	keys, ws, _ := zipfStream(101, 20000, 500, 1.3, true)
	s := NewSpaceSavingK(64)
	for i := range keys {
		s.Update(keys[i], ws[i])
	}
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d SpaceSaving
	if err := d.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if d.Total() != s.Total() || d.K() != s.K() || d.Len() != s.Len() {
		t.Fatalf("header mismatch: %v/%v/%v vs %v/%v/%v",
			d.Total(), d.K(), d.Len(), s.Total(), s.K(), s.Len())
	}
	for _, ic := range s.HeavyHitters(0) {
		est, errB := d.Estimate(ic.Key)
		if est != ic.Count || errB != ic.Err {
			t.Fatalf("key %d: decoded (%v,%v), want (%v,%v)", ic.Key, est, errB, ic.Count, ic.Err)
		}
	}
	// Decoded sketches keep working.
	d.Update(999999, 5)
	if est, _ := d.Estimate(999999); est < 5 {
		t.Errorf("decoded sketch update broken: %v", est)
	}
}

func TestQDigestRoundTrip(t *testing.T) {
	rng := core.NewRNG(102)
	q := NewQDigest(1<<10, 0.05)
	for i := 0; i < 20000; i++ {
		q.Update(uint64(rng.Intn(1<<10)), 1+rng.Float64())
	}
	b, err := q.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d QDigest
	if err := d.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Total()-q.Total()) > 1e-9 || d.U() != q.U() {
		t.Fatalf("header mismatch")
	}
	for _, v := range []uint64{10, 100, 500, 1000} {
		// Rank sums node weights in map order; allow float-summation jitter.
		if math.Abs(d.Rank(v)-q.Rank(v)) > 1e-9*q.Total() {
			t.Errorf("Rank(%d): decoded %v, want %v", v, d.Rank(v), q.Rank(v))
		}
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if d.Quantile(phi) != q.Quantile(phi) {
			t.Errorf("Quantile(%v) mismatch", phi)
		}
	}
}

func TestKMVRoundTrip(t *testing.T) {
	s := NewKMV(128)
	for i := 0; i < 5000; i++ {
		s.Insert(uint64(i))
	}
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d KMV
	if err := d.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if d.Estimate() != s.Estimate() || d.Len() != s.Len() || d.K() != s.K() {
		t.Fatalf("decoded KMV differs: %v/%d vs %v/%d", d.Estimate(), d.Len(), s.Estimate(), s.Len())
	}
	// Continues to dedupe correctly after decoding.
	before := d.Len()
	d.Insert(42) // already present
	if d.Len() != before {
		t.Error("decoded KMV lost membership state")
	}
}

func TestMisraGriesRoundTrip(t *testing.T) {
	keys, ws, _ := zipfStream(103, 10000, 300, 1.2, true)
	m := NewMisraGries(40)
	for i := range keys {
		m.Update(keys[i], ws[i])
	}
	b, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d MisraGries
	if err := d.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if d.Total() != m.Total() || d.Len() != m.Len() {
		t.Fatalf("header mismatch")
	}
	for _, ic := range m.Items() {
		if d.Estimate(ic.Key) != ic.Count {
			t.Errorf("key %d: decoded %v, want %v", ic.Key, d.Estimate(ic.Key), ic.Count)
		}
	}
}

func TestDominanceRoundTrip(t *testing.T) {
	rng := core.NewRNG(104)
	s := NewDominance(128, 1.1, 256)
	for i := 0; i < 5000; i++ {
		s.Update(uint64(rng.Intn(500)), 8*rng.Float64())
	}
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d Dominance
	if err := d.UnmarshalBinary(b); err != nil {
		t.Fatal(err)
	}
	if d.LogEstimate() != s.LogEstimate() {
		t.Fatalf("decoded estimate %v, want %v", d.LogEstimate(), s.LogEstimate())
	}
	// Decoded estimators merge with live ones.
	d.Merge(s)
	if math.IsNaN(d.LogEstimate()) {
		t.Error("merge after decode produced NaN")
	}

	// Empty round trip.
	e := NewDominance(16, 2, 8)
	eb, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var de Dominance
	if err := de.UnmarshalBinary(eb); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(de.LogEstimate(), -1) {
		t.Errorf("decoded empty Dominance estimate = %v", de.LogEstimate())
	}
}

func TestEncodingsRejectGarbage(t *testing.T) {
	garbage := [][]byte{nil, {0x00}, {0xff, 1, 2, 3}, []byte("short"), {tagSpaceSaving, 1}}
	for _, b := range garbage {
		if err := (&SpaceSaving{}).UnmarshalBinary(b); err == nil {
			t.Errorf("SpaceSaving accepted %v", b)
		}
		if err := (&QDigest{}).UnmarshalBinary(b); err == nil {
			t.Errorf("QDigest accepted %v", b)
		}
		if err := (&KMV{}).UnmarshalBinary(b); err == nil {
			t.Errorf("KMV accepted %v", b)
		}
		if err := (&MisraGries{}).UnmarshalBinary(b); err == nil {
			t.Errorf("MisraGries accepted %v", b)
		}
		if err := (&Dominance{}).UnmarshalBinary(b); err == nil {
			t.Errorf("Dominance accepted %v", b)
		}
	}
	// Cross-type confusion rejected.
	k := NewKMV(8)
	k.Insert(1)
	kb, _ := k.MarshalBinary()
	if err := (&SpaceSaving{}).UnmarshalBinary(kb); err == nil {
		t.Error("SpaceSaving accepted a KMV encoding")
	}
	// Trailing bytes rejected.
	s := NewSpaceSavingK(4)
	s.Update(1, 1)
	sb, _ := s.MarshalBinary()
	if err := (&SpaceSaving{}).UnmarshalBinary(append(sb, 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}
