package sketch

import (
	"testing"

	"forwarddecay/internal/core"
)

// Baseline micro-benchmarks for the sketch hot paths.

func benchKeys(n int, space uint64) []uint64 {
	rng := core.NewRNG(7)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % space
	}
	return keys
}

func BenchmarkSpaceSavingUpdateUnary(b *testing.B) {
	s := NewSpaceSavingK(256)
	keys := benchKeys(4096, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(keys[i&4095], 1)
	}
}

func BenchmarkSpaceSavingUpdateWeighted(b *testing.B) {
	s := NewSpaceSavingK(256)
	keys := benchKeys(4096, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Update(keys[i&4095], 1+float64(i&15))
	}
}

func BenchmarkSpaceSavingMerge(b *testing.B) {
	mk := func(seed uint64) *SpaceSaving {
		s := NewSpaceSavingK(256)
		rng := core.NewRNG(seed)
		for i := 0; i < 50_000; i++ {
			s.Update(rng.Uint64()%10_000, 1)
		}
		return s
	}
	x, y := mk(1), mk(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Clone().Merge(y)
	}
}

func BenchmarkQDigestUpdate(b *testing.B) {
	q := NewQDigest(1<<16, 0.01)
	rng := core.NewRNG(9)
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = rng.Uint64() % (1 << 16)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Update(vals[i&4095], 1+float64(i&15))
	}
}

func BenchmarkQDigestCompress(b *testing.B) {
	q := NewQDigest(1<<16, 0.01)
	rng := core.NewRNG(10)
	for i := 0; i < 200_000; i++ {
		q.Update(rng.Uint64()%(1<<16), 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Compress()
	}
}

func BenchmarkKMVInsert(b *testing.B) {
	s := NewKMV(1024)
	keys := benchKeys(4096, 1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Insert(keys[i&4095])
	}
}
