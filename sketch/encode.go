package sketch

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encodings for the mergeable summaries, used when shipping partial
// state between distributed sites (§VI-B of the paper). All encodings are
// little-endian, versioned with a one-byte tag, and round-trip exactly.

const (
	tagSpaceSaving byte = 0x51
	tagQDigest     byte = 0x52
	tagKMV         byte = 0x53
	tagMisraGries  byte = 0x54
	tagDominance   byte = 0x55
)

// enc is a little-endian append-style writer.
type enc struct{ b []byte }

func (e *enc) u8(v byte)     { e.b = append(e.b, v) }
func (e *enc) u64(v uint64)  { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)   { e.u64(uint64(v)) }
func (e *enc) f64(v float64) { e.u64(math.Float64bits(v)) }

// dec is the matching reader.
type dec struct{ b []byte }

func (d *dec) u8() (byte, error) {
	if len(d.b) < 1 {
		return 0, fmt.Errorf("sketch: truncated encoding")
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *dec) u64() (uint64, error) {
	if len(d.b) < 8 {
		return 0, fmt.Errorf("sketch: truncated encoding")
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v, nil
}

func (d *dec) i64() (int64, error) { v, err := d.u64(); return int64(v), err }

func (d *dec) f64() (float64, error) {
	v, err := d.u64()
	return math.Float64frombits(v), err
}

func (d *dec) done() error {
	if len(d.b) != 0 {
		return fmt.Errorf("sketch: %d trailing bytes in encoding", len(d.b))
	}
	return nil
}

func expectTag(d *dec, want byte) error {
	got, err := d.u8()
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("sketch: wrong encoding tag 0x%02x, want 0x%02x", got, want)
	}
	return nil
}

// fits guards element counts against the bytes actually remaining: a
// decoder must never allocate for more elements than the input could hold,
// or a short corrupt prefix claiming 2³⁰ entries would over-allocate
// gigabytes before any per-element read fails.
func (d *dec) fits(n uint64, itemBytes int) error {
	if n > uint64(len(d.b))/uint64(itemBytes) {
		return fmt.Errorf("sketch: encoding claims %d elements but only %d bytes remain", n, len(d.b))
	}
	return nil
}

// MarshalBinary encodes the summary.
func (s *SpaceSaving) MarshalBinary() ([]byte, error) {
	e := &enc{}
	e.u8(tagSpaceSaving)
	e.u64(uint64(s.k))
	e.f64(s.total)
	e.u64(uint64(len(s.entries)))
	for _, en := range s.entries {
		e.u64(en.key)
		e.f64(en.count)
		e.f64(en.err)
	}
	return e.b, nil
}

// UnmarshalBinary decodes a summary produced by MarshalBinary, replacing
// the receiver's state.
func (s *SpaceSaving) UnmarshalBinary(b []byte) error {
	d := &dec{bytes.Clone(b)}
	if err := expectTag(d, tagSpaceSaving); err != nil {
		return err
	}
	k, err := d.u64()
	if err != nil {
		return err
	}
	if k == 0 || k > 1<<30 {
		return fmt.Errorf("sketch: implausible SpaceSaving k %d", k)
	}
	total, err := d.f64()
	if err != nil {
		return err
	}
	n, err := d.u64()
	if err != nil {
		return err
	}
	if n > k {
		return fmt.Errorf("sketch: SpaceSaving encoding has %d entries for k=%d", n, k)
	}
	if err := d.fits(n, 24); err != nil {
		return err
	}
	entries := make([]ssEntry, n)
	for i := range entries {
		if entries[i].key, err = d.u64(); err != nil {
			return err
		}
		if entries[i].count, err = d.f64(); err != nil {
			return err
		}
		if entries[i].err, err = d.f64(); err != nil {
			return err
		}
	}
	if err := d.done(); err != nil {
		return err
	}
	s.k = int(k)
	s.total = total
	s.entries = entries
	s.rebuildIndex()
	return nil
}

// MarshalBinary encodes the digest (compressing first).
func (q *QDigest) MarshalBinary() ([]byte, error) {
	q.Compress()
	e := &enc{}
	e.u8(tagQDigest)
	e.u64(uint64(q.logU))
	e.u64(uint64(q.k))
	e.f64(q.total)
	e.u64(uint64(len(q.nodes)))
	for id, w := range q.nodes {
		e.u64(id)
		e.f64(w)
	}
	return e.b, nil
}

// UnmarshalBinary decodes a digest produced by MarshalBinary.
func (q *QDigest) UnmarshalBinary(b []byte) error {
	d := &dec{bytes.Clone(b)}
	if err := expectTag(d, tagQDigest); err != nil {
		return err
	}
	logU, err := d.u64()
	if err != nil {
		return err
	}
	if logU == 0 || logU > 63 {
		return fmt.Errorf("sketch: implausible QDigest domain 2^%d", logU)
	}
	k, err := d.u64()
	if err != nil {
		return err
	}
	total, err := d.f64()
	if err != nil {
		return err
	}
	n, err := d.u64()
	if err != nil {
		return err
	}
	if n > 1<<28 {
		return fmt.Errorf("sketch: implausible QDigest node count %d", n)
	}
	if err := d.fits(n, 16); err != nil {
		return err
	}
	nodes := make(map[uint64]float64, n)
	maxID := uint64(2) << logU
	for i := uint64(0); i < n; i++ {
		id, err := d.u64()
		if err != nil {
			return err
		}
		if id == 0 || id >= maxID {
			return fmt.Errorf("sketch: QDigest node id %d out of range", id)
		}
		w, err := d.f64()
		if err != nil {
			return err
		}
		nodes[id] = w
	}
	if err := d.done(); err != nil {
		return err
	}
	q.logU = uint(logU)
	q.k = int(k)
	q.total = total
	q.dirty = 0
	q.nodes = nodes
	return nil
}

// MarshalBinary encodes the sketch.
func (s *KMV) MarshalBinary() ([]byte, error) {
	e := &enc{}
	e.u8(tagKMV)
	e.u64(uint64(s.k))
	e.u64(uint64(len(s.h)))
	for _, h := range s.h {
		e.u64(h)
	}
	return e.b, nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary.
func (s *KMV) UnmarshalBinary(b []byte) error {
	d := &dec{bytes.Clone(b)}
	if err := expectTag(d, tagKMV); err != nil {
		return err
	}
	k, err := d.u64()
	if err != nil {
		return err
	}
	if k == 0 || k > 1<<30 {
		return fmt.Errorf("sketch: implausible KMV k %d", k)
	}
	n, err := d.u64()
	if err != nil {
		return err
	}
	if n > k {
		return fmt.Errorf("sketch: KMV encoding holds %d hashes for k=%d", n, k)
	}
	if err := d.fits(n, 8); err != nil {
		return err
	}
	// Presize by n (bounded by the input length), not k: a forged k within
	// the plausibility bound could still demand a gigabyte map hint.
	fresh := &KMV{k: int(k), mem: make(map[uint64]struct{}, n)}
	for i := uint64(0); i < n; i++ {
		h, err := d.u64()
		if err != nil {
			return err
		}
		fresh.InsertHash(h)
	}
	if err := d.done(); err != nil {
		return err
	}
	*s = *fresh
	return nil
}

// MarshalBinary encodes the summary.
func (m *MisraGries) MarshalBinary() ([]byte, error) {
	e := &enc{}
	e.u8(tagMisraGries)
	e.u64(uint64(m.k))
	e.f64(m.total)
	e.u64(uint64(len(m.counters)))
	for k2, c := range m.counters {
		e.u64(k2)
		e.f64(c)
	}
	return e.b, nil
}

// UnmarshalBinary decodes a summary produced by MarshalBinary.
func (m *MisraGries) UnmarshalBinary(b []byte) error {
	d := &dec{bytes.Clone(b)}
	if err := expectTag(d, tagMisraGries); err != nil {
		return err
	}
	k, err := d.u64()
	if err != nil {
		return err
	}
	if k == 0 || k > 1<<30 {
		return fmt.Errorf("sketch: implausible MisraGries k %d", k)
	}
	total, err := d.f64()
	if err != nil {
		return err
	}
	n, err := d.u64()
	if err != nil {
		return err
	}
	if n > k {
		return fmt.Errorf("sketch: MisraGries encoding has %d counters for k=%d", n, k)
	}
	if err := d.fits(n, 16); err != nil {
		return err
	}
	counters := make(map[uint64]float64, n)
	for i := uint64(0); i < n; i++ {
		key, err := d.u64()
		if err != nil {
			return err
		}
		c, err := d.f64()
		if err != nil {
			return err
		}
		counters[key] = c
	}
	if err := d.done(); err != nil {
		return err
	}
	m.k = int(k)
	m.total = total
	m.counters = counters
	return nil
}

// MarshalBinary encodes the estimator.
func (d *Dominance) MarshalBinary() ([]byte, error) {
	e := &enc{}
	e.u8(tagDominance)
	e.f64(d.logBase)
	e.u64(uint64(d.k))
	e.u64(uint64(d.maxLevels))
	e.f64(d.logShift)
	if d.empty {
		e.u8(0)
		return e.b, nil
	}
	e.u8(1)
	e.i64(int64(d.lo))
	e.i64(int64(d.hi))
	e.u64(uint64(len(d.levels)))
	for l, kmv := range d.levels {
		e.i64(int64(l))
		kb, err := kmv.MarshalBinary()
		if err != nil {
			return nil, err
		}
		e.u64(uint64(len(kb)))
		e.b = append(e.b, kb...)
	}
	return e.b, nil
}

// UnmarshalBinary decodes an estimator produced by MarshalBinary.
func (d *Dominance) UnmarshalBinary(b []byte) error {
	r := &dec{bytes.Clone(b)}
	if err := expectTag(r, tagDominance); err != nil {
		return err
	}
	logBase, err := r.f64()
	if err != nil {
		return err
	}
	if !(logBase > 0) {
		return fmt.Errorf("sketch: implausible Dominance base")
	}
	k, err := r.u64()
	if err != nil {
		return err
	}
	maxLevels, err := r.u64()
	if err != nil {
		return err
	}
	if k < 3 || maxLevels < 2 || k > 1<<30 || maxLevels > 1<<24 {
		return fmt.Errorf("sketch: implausible Dominance parameters")
	}
	logShift, err := r.f64()
	if err != nil {
		return err
	}
	if math.IsNaN(logShift) || math.IsInf(logShift, 0) {
		return fmt.Errorf("sketch: non-finite Dominance frame offset")
	}
	nonEmpty, err := r.u8()
	if err != nil {
		return err
	}
	out := &Dominance{logBase: logBase, k: int(k), maxLevels: int(maxLevels),
		levels: make(map[int]*KMV), empty: true, logShift: logShift}
	if nonEmpty == 1 {
		lo, err := r.i64()
		if err != nil {
			return err
		}
		hi, err := r.i64()
		if err != nil {
			return err
		}
		n, err := r.u64()
		if err != nil {
			return err
		}
		// Update prunes so that hi-lo+1 ≤ maxLevels; a forged wider span
		// would make the LogEstimate level scan run for ~2^63 iterations.
		if hi < lo || uint64(hi-lo)+1 > maxLevels || n > maxLevels {
			return fmt.Errorf("sketch: inconsistent Dominance encoding")
		}
		if err := r.fits(n, 16); err != nil {
			return err
		}
		out.lo, out.hi, out.empty = int(lo), int(hi), false
		for i := uint64(0); i < n; i++ {
			l, err := r.i64()
			if err != nil {
				return err
			}
			if l < lo || l > hi {
				return fmt.Errorf("sketch: Dominance level %d out of range", l)
			}
			ln, err := r.u64()
			if err != nil {
				return err
			}
			if uint64(len(r.b)) < ln {
				return fmt.Errorf("sketch: truncated encoding")
			}
			kmv := &KMV{}
			if err := kmv.UnmarshalBinary(r.b[:ln]); err != nil {
				return err
			}
			r.b = r.b[ln:]
			out.levels[int(l)] = kmv
		}
	}
	if err := r.done(); err != nil {
		return err
	}
	*d = *out
	return nil
}
