package sketch

import "sort"

// StreamSummary is the unary-optimised SpaceSaving data structure of
// Metwally et al.: a doubly-linked list of count buckets, each holding the
// monitored items that share that count. Unweighted (unary) updates move an
// item to the adjacent bucket in O(1), which is why the paper's Figure 5
// uses it as the fast "Unary HH" baseline against the weighted, heap-based
// SpaceSaving.
//
// StreamSummary is not safe for concurrent use.
type StreamSummary struct {
	k     int
	items map[uint64]*ssNode
	head  *ssBucket // bucket with the minimum count
	total uint64
}

type ssBucket struct {
	count      uint64
	prev, next *ssBucket
	first      *ssNode // head of this bucket's item list
	n          int     // number of items in the bucket
}

type ssNode struct {
	key        uint64
	err        uint64
	b          *ssBucket
	prev, next *ssNode
}

// NewStreamSummary returns a summary with k counters. It panics if k < 1.
func NewStreamSummary(k int) *StreamSummary {
	if k < 1 {
		panic("sketch: StreamSummary needs at least one counter")
	}
	return &StreamSummary{k: k, items: make(map[uint64]*ssNode, k)}
}

// K returns the number of counters.
func (s *StreamSummary) K() int { return s.k }

// Total returns the number of updates observed.
func (s *StreamSummary) Total() uint64 { return s.total }

// Len returns the number of monitored items.
func (s *StreamSummary) Len() int { return len(s.items) }

// Update counts one occurrence of key, in O(1).
func (s *StreamSummary) Update(key uint64) {
	s.total++
	if n, ok := s.items[key]; ok {
		s.increment(n)
		return
	}
	if len(s.items) < s.k {
		n := &ssNode{key: key}
		s.items[key] = n
		s.attach(n, s.bucketWithCount(1, nil))
		return
	}
	// Evict one item from the minimum bucket and recycle its node.
	n := s.head.first
	delete(s.items, n.key)
	n.key = key
	n.err = s.head.count
	s.items[key] = n
	s.increment(n)
}

// increment moves node n from its bucket to the bucket with count+1.
func (s *StreamSummary) increment(n *ssNode) {
	b := n.b
	s.detach(n)
	next := b.next
	if next == nil || next.count != b.count+1 {
		next = s.insertAfter(b, b.count+1)
	}
	if b.n == 0 {
		s.removeBucket(b)
	}
	s.attach(n, next)
}

// bucketWithCount returns the bucket holding the given count, creating it
// after prev (or at the head when prev is nil) if needed. It is only used
// for count 1, which always belongs at the head.
func (s *StreamSummary) bucketWithCount(count uint64, prev *ssBucket) *ssBucket {
	if s.head != nil && s.head.count == count {
		return s.head
	}
	b := &ssBucket{count: count}
	b.next = s.head
	if s.head != nil {
		s.head.prev = b
	}
	s.head = b
	return b
}

func (s *StreamSummary) insertAfter(b *ssBucket, count uint64) *ssBucket {
	nb := &ssBucket{count: count, prev: b, next: b.next}
	if b.next != nil {
		b.next.prev = nb
	}
	b.next = nb
	return nb
}

func (s *StreamSummary) removeBucket(b *ssBucket) {
	if b.prev != nil {
		b.prev.next = b.next
	} else {
		s.head = b.next
	}
	if b.next != nil {
		b.next.prev = b.prev
	}
}

func (s *StreamSummary) attach(n *ssNode, b *ssBucket) {
	n.b = b
	n.prev = nil
	n.next = b.first
	if b.first != nil {
		b.first.prev = n
	}
	b.first = n
	b.n++
}

func (s *StreamSummary) detach(n *ssNode) {
	b := n.b
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		b.first = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	n.prev, n.next, n.b = nil, nil, nil
	b.n--
}

// Estimate returns the estimated count of key and its overestimation bound,
// with the same semantics as SpaceSaving.Estimate.
func (s *StreamSummary) Estimate(key uint64) (count, err uint64) {
	if n, ok := s.items[key]; ok {
		return n.b.count, n.err
	}
	if len(s.items) < s.k || s.head == nil {
		return 0, 0
	}
	return s.head.count, s.head.count
}

// HeavyHitters returns all monitored items with estimated count at least
// phi times the total, in decreasing order of estimate.
func (s *StreamSummary) HeavyHitters(phi float64) []ItemCount {
	thresh := phi * float64(s.total)
	var out []ItemCount
	for b := s.head; b != nil; b = b.next {
		if float64(b.count) < thresh {
			continue
		}
		for n := b.first; n != nil; n = n.next {
			out = append(out, ItemCount{Key: n.key, Count: float64(b.count), Err: float64(n.err)})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// SizeBytes estimates the in-memory footprint: one node (~48 B) and a map
// slot (~48 B) per monitored item, plus bucket headers.
func (s *StreamSummary) SizeBytes() int {
	buckets := 0
	for b := s.head; b != nil; b = b.next {
		buckets++
	}
	return 48 + len(s.items)*(48+48) + buckets*40
}
