package sketch

import (
	"math"
	"testing"
)

// TestAccessorsAndSizes covers the small accessors and size probes across
// the summaries.
func TestAccessorsAndSizes(t *testing.T) {
	ss := NewSpaceSavingK(4)
	ss.Update(1, 2)
	if ss.K() != 4 || ss.SizeBytes() <= 0 {
		t.Error("SpaceSaving accessors")
	}
	st := NewStreamSummary(4)
	st.Update(1)
	if st.K() != 4 || st.Len() != 1 || st.SizeBytes() <= 0 {
		t.Error("StreamSummary accessors")
	}
	mg := NewMisraGries(4)
	mg.Update(1, 2)
	if mg.K() != 4 || mg.SizeBytes() <= 0 {
		t.Error("MisraGries accessors")
	}
	kmv := NewKMV(4)
	kmv.Insert(1)
	if kmv.SizeBytes() <= 0 {
		t.Error("KMV size")
	}
	q := NewQDigest(16, 0.1)
	q.Update(3, 1)
	if q.SizeBytes() <= 0 {
		t.Error("QDigest size")
	}
	d := NewDominance(4, 2, 4)
	d.Update(1, 1)
	if d.SizeBytes() <= 0 {
		t.Error("Dominance size")
	}
	eh := NewExpHistogram(0.1, 30)
	if eh.Window() != 30 || eh.SizeBytes() <= 0 {
		t.Error("ExpHistogram accessors")
	}
}

// TestSpaceSavingTopAndClone covers Top ordering and Clone independence.
func TestSpaceSavingTopAndClone(t *testing.T) {
	ss := NewSpaceSavingK(8)
	for i := uint64(1); i <= 5; i++ {
		ss.Update(i, float64(i))
	}
	top := ss.Top(3)
	if len(top) != 3 || top[0].Key != 5 || top[1].Key != 4 || top[2].Key != 3 {
		t.Fatalf("Top = %+v", top)
	}
	all := ss.Top(100)
	if len(all) != 5 {
		t.Errorf("Top(100) = %d items", len(all))
	}
	cp := ss.Clone()
	cp.Update(9, 100)
	if _, ok := ss.idx.get(9); ok {
		t.Error("Clone shares state with original")
	}
	if est, _ := cp.Estimate(5); est != 5 {
		t.Errorf("clone estimate = %v", est)
	}
}

// TestQDigestCloneIndependence covers Clone.
func TestQDigestCloneIndependence(t *testing.T) {
	q := NewQDigest(16, 0.1)
	q.Update(3, 5)
	cp := q.Clone()
	cp.Update(3, 5)
	if q.Total() != 5 || cp.Total() != 10 {
		t.Errorf("totals: %v / %v", q.Total(), cp.Total())
	}
}

// TestErrorBoundStates covers ErrorBound before and after the summary
// fills.
func TestErrorBoundStates(t *testing.T) {
	ss := NewSpaceSavingK(2)
	if ss.ErrorBound() != 0 {
		t.Error("empty ErrorBound")
	}
	ss.Update(1, 3)
	if ss.ErrorBound() != 0 {
		t.Error("not-full ErrorBound must be 0")
	}
	ss.Update(2, 5)
	if ss.ErrorBound() != 3 {
		t.Errorf("full ErrorBound = %v, want min counter 3", ss.ErrorBound())
	}
}

// TestEHRecountRepairsDrift covers the defensive class-count rebuild.
func TestEHRecountRepairsDrift(t *testing.T) {
	h := NewExpHistogram(0.2, 0)
	for i := 0; i < 100; i++ {
		h.Insert(float64(i), 1+float64(i%7))
	}
	// Corrupt the bookkeeping, then force a cascade; recount must repair.
	h.classCount[12345] = 99
	h.recount()
	if _, ok := h.classCount[12345]; ok {
		t.Error("recount kept phantom class")
	}
	total := 0
	for _, c := range h.classCount {
		total += c
	}
	if total != h.Len() {
		t.Errorf("class counts sum to %d, have %d buckets", total, h.Len())
	}
}

// TestDominanceMergeEmptyIntoFull and full-into-empty branches.
func TestDominanceMergeEmptyBranches(t *testing.T) {
	full := NewDominance(16, 2, 8)
	for i := 0; i < 50; i++ {
		full.Update(uint64(i), float64(i%5))
	}
	empty := NewDominance(16, 2, 8)
	full.Merge(empty) // no-op
	if math.IsInf(full.LogEstimate(), -1) {
		t.Error("merge of empty destroyed estimate")
	}
	e2 := NewDominance(16, 2, 8)
	e2.Merge(full)
	if math.IsInf(e2.LogEstimate(), -1) {
		t.Error("merge into empty produced nothing")
	}
	// Base mismatch panics.
	defer func() {
		if recover() == nil {
			t.Error("expected panic on base mismatch")
		}
	}()
	other := NewDominance(16, 4, 8)
	other.Update(1, 1)
	full.Merge(other)
}

// TestKMVHeapPop covers the container/heap Pop path (exercised only via
// interface plumbing otherwise).
func TestKMVHeapPop(t *testing.T) {
	var h maxHeap
	h.Push(uint64(5))
	h.Push(uint64(2))
	if got := h.Pop().(uint64); got != 2 {
		t.Errorf("Pop = %v (pops last element)", got)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
}
