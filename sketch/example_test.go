package sketch_test

import (
	"fmt"

	"forwarddecay/sketch"
)

// Weighted SpaceSaving is the engine behind heavy hitters under forward
// decay: weights are fixed at arrival (the static weights g(tᵢ−L)).
func ExampleSpaceSaving() {
	ss := sketch.NewSpaceSavingK(4)
	// Example 3 of the paper: items weighted by quadratic forward decay.
	for _, it := range []struct {
		v uint64
		w float64
	}{
		{4, 0.25}, {8, 0.49}, {3, 0.09}, {6, 0.64}, {4, 0.16},
	} {
		ss.Update(it.v, it.w)
	}
	for _, ic := range ss.HeavyHitters(0.2) {
		fmt.Printf("%d:%.2f ", ic.Key, ic.Count)
	}
	fmt.Println()
	// Output: 6:0.64 8:0.49 4:0.41
}

// QDigest answers weighted quantile queries over an integer domain.
func ExampleQDigest() {
	q := sketch.NewQDigest(1024, 0.01)
	for v := uint64(0); v < 1000; v++ {
		q.Update(v, 1)
	}
	fmt.Println(q.Quantile(0.5) >= 450 && q.Quantile(0.5) <= 550)
	// Output: true
}

// KMV estimates distinct counts and merges by union.
func ExampleKMV() {
	a, b := sketch.NewKMV(256), sketch.NewKMV(256)
	for i := 0; i < 1000; i++ {
		a.Insert(uint64(i))
		b.Insert(uint64(i + 500)) // overlap 500..999
	}
	a.Merge(b)
	est := a.Estimate()
	fmt.Println(est > 1200 && est < 1800) // true union size is 1500
	// Output: true
}
