// Integration tests exercising the full stack the way the paper's
// deployment does: synthetic traffic → the gsql engine with forward-decay
// arithmetic and UDAFs → results validated against the agg library as
// ground truth; plus the distributed path: netgen → distrib cluster →
// merged summaries vs single-node aggregates.
package forwarddecay_test

import (
	"math"
	"strings"
	"testing"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/distrib"
	"forwarddecay/gsql"
	"forwarddecay/netgen"
	"forwarddecay/sketch"
	"forwarddecay/udaf"
)

// TestEndToEndDecayedSumThroughEngine runs the paper's §IV-A query over a
// generated minute of traffic and checks every output group against the
// decayed sums computed directly with the library.
func TestEndToEndDecayedSumThroughEngine(t *testing.T) {
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	if err := udaf.RegisterAll(e, udaf.Config{}); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(`
		select tb, dstIP, destPort,
		       sum(float(len)*(time % 60)*(time % 60))/3600
		from TCP group by time/60 as tb, dstIP, destPort`)
	if err != nil {
		t.Fatal(err)
	}

	gen := netgen.New(netgen.DefaultConfig(20_000, 77))
	var pkts []netgen.Packet
	for gen.Now() < 125 {
		pkts = append(pkts, gen.Next())
	}

	// Ground truth per (bucket, dst, port): forward decay with g(n)=n²,
	// landmark at the bucket start, normalizer 60² = 3600 — what the query
	// expresses arithmetically (integer-second timestamps).
	type gkey struct {
		tb   int64
		dst  uint32
		port uint16
	}
	truth := map[gkey]float64{}
	for _, p := range pkts {
		sec := int64(p.Time)
		k := gkey{sec / 60, p.DstIP, p.DstPort}
		n := float64(sec % 60)
		truth[k] += float64(p.Len) * n * n / 3600
	}

	rows, err := st.Execute(func() func() (gsql.Tuple, bool) {
		i := 0
		return func() (gsql.Tuple, bool) {
			if i >= len(pkts) {
				return nil, false
			}
			tu := netgen.Tuple(pkts[i])
			i++
			return tu, true
		}
	}(), gsql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(truth) {
		t.Fatalf("engine produced %d groups, truth has %d", len(rows), len(truth))
	}
	for _, r := range rows {
		k := gkey{r[0].AsInt(), uint32(r[1].AsInt()), uint16(r[2].AsInt())}
		want, ok := truth[k]
		if !ok {
			t.Fatalf("unexpected group %+v", k)
		}
		if got := r[3].AsFloat(); math.Abs(got-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("group %+v: engine %v, truth %v", k, got, want)
		}
	}
}

// TestEndToEndHeavyHittersEngineVsLibrary cross-checks the sshh UDAF
// against agg.HeavyHitters on identical traffic.
func TestEndToEndHeavyHittersEngineVsLibrary(t *testing.T) {
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	if err := udaf.RegisterAll(e, udaf.Config{Epsilon: 0.005, Phi: 0.05}); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(`select tb, sshh(dstIP, float((time%60)*(time%60))) from TCP group by time/60 as tb`)
	if err != nil {
		t.Fatal(err)
	}

	gen := netgen.New(netgen.DefaultConfig(10_000, 78))
	var pkts []netgen.Packet
	for gen.Now() < 59 {
		pkts = append(pkts, gen.Next())
	}
	// Library truth: the UDAF runs a weighted SpaceSaving over static
	// weights (sec % 60)²; run the identical reduction directly.
	lib := sketch.NewSpaceSaving(0.005)
	for _, p := range pkts {
		sec := float64(int64(p.Time) % 60)
		lib.Update(uint64(p.DstIP), sec*sec)
	}
	var row gsql.Tuple
	run := st.Start(func(r gsql.Tuple) error {
		if row == nil {
			row = r
		}
		return nil
	}, gsql.Options{})
	for _, p := range pkts {
		if err := run.Push(netgen.Tuple(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	if row == nil || row[1].S == "" {
		t.Fatal("engine produced no heavy hitters")
	}
	engineTop := strings.SplitN(strings.SplitN(row[1].S, ",", 2)[0], ":", 2)[0]
	libHH := lib.HeavyHitters(0.05)
	if len(libHH) == 0 {
		t.Fatal("library produced no heavy hitters")
	}
	libTop := libHH[0].Key
	if engineTop != intToString(int64(libTop)) {
		t.Errorf("engine top %s != library top %d", engineTop, libTop)
	}
}

func intToString(v int64) string { return gsql.Int(v).String() }

// TestEndToEndDistributedMatchesEngine runs the same traffic through the
// distrib cluster and through direct aggregation, confirming the decayed
// sums agree exactly.
func TestEndToEndDistributedMatchesEngine(t *testing.T) {
	model := decay.NewForward(decay.NewExp(0.05), 0)
	cl, err := distrib.New(distrib.Config{Sites: 5, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	direct := agg.NewSum(model)
	gen := netgen.New(netgen.DefaultConfig(5_000, 79))
	var now float64
	for gen.Now() < 30 {
		p := gen.Next()
		now = p.Time
		if err := cl.ObserveKeyed(distrib.Observation{
			Key: p.DestKey(), Value: float64(p.Len), Time: p.Time,
		}); err != nil {
			t.Fatal(err)
		}
		direct.Observe(p.Time, float64(p.Len))
	}
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if got, want := snap.Sum.Value(now), direct.Value(now); math.Abs(got-want) > 1e-9*want {
		t.Errorf("distributed decayed sum %v, direct %v", got, want)
	}
	if snap.Sum.N() != direct.N() {
		t.Errorf("distributed N %d, direct %d", snap.Sum.N(), direct.N())
	}
}

// TestEndToEndTraceReplayDeterminism writes a trace, replays it through a
// statement twice, and requires bit-identical outputs.
func TestEndToEndTraceReplayDeterminism(t *testing.T) {
	gen := netgen.New(netgen.DefaultConfig(5_000, 80))
	pkts := gen.Take(nil, 50_000)

	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(`select tb, dstIP, count(*), sum(len) from TCP group by time/10 as tb, dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() []gsql.Tuple {
		i := 0
		rows, err := st.Execute(func() (gsql.Tuple, bool) {
			if i >= len(pkts) {
				return nil, false
			}
			tu := netgen.Tuple(pkts[i])
			i++
			return tu, true
		}, gsql.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}
