package bench

import (
	"fmt"
	"runtime"
	"time"

	"forwarddecay/gsql"
)

// Catalog-churn harness: how long does attaching (and detaching) one
// standing query take as a function of how many queries are already
// attached? The incremental-rebuild invariant (gated in ci.sh) is that both
// are O(query) — parse, plan, intern and splice one member — not O(catalog).
// A runtime that recompiled its predicate classes or re-interned the shared
// expression slots on every catalog mutation would scale the per-attach
// cost with the catalog size and fail the ratio gate immediately: the
// 1000-query catalog must churn at a small constant multiple of the
// 10-query catalog's cost (map and interner bookkeeping grow slightly with
// occupancy, so the gate allows that constant; a recompile costs ~100x).

// ChurnPoint is one measured point of the churn sweep.
type ChurnPoint struct {
	Catalog  int     `json:"catalog"`
	Pairs    int     `json:"pairs"`
	AttachNs float64 `json:"attach_ns"`
	DetachNs float64 `json:"detach_ns"`
}

// RunChurn measures attach/detach latency at each catalog size, min-of-two
// laps per point (same philosophy as the scaling sweep: min-of-N estimates
// the code's true cost, GC spikes do not persist across laps).
func RunChurn(catalogs []int, pairs int, seed uint64) ([]ChurnPoint, error) {
	trace := multiScaleTrace(20_000, seed)
	out := make([]ChurnPoint, 0, len(catalogs))
	for _, n := range catalogs {
		p, err := measureChurn(n, pairs, trace)
		if err != nil {
			return nil, err
		}
		again, err := measureChurn(n, pairs, trace)
		if err != nil {
			return nil, err
		}
		if again.AttachNs+again.DetachNs < p.AttachNs+p.DetachNs {
			p = again
		}
		out = append(out, p)
	}
	return out, nil
}

func measureChurn(n, pairs int, trace []gsql.Tuple) (ChurnPoint, error) {
	nop := func(gsql.Tuple) error { return nil }
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		return ChurnPoint{}, err
	}
	// Measure the isolated runtime — the configuration the query service
	// runs — so admission estimation and attribution setup are on the
	// clock too.
	m, err := gsql.NewMultiRun(e, "TCP", gsql.Options{
		Isolate: &gsql.IsolateConfig{BreakerErrors: 16},
	})
	if err != nil {
		return ChurnPoint{}, err
	}
	for i := 0; i < n; i++ {
		if _, err := m.Attach(MultiScaleQuery(i), 0, nop); err != nil {
			return ChurnPoint{}, fmt.Errorf("attach query %d: %w", i, err)
		}
	}
	// Materialize live groups and interner occupancy before the timed
	// churn: an empty catalog would undersell the detach path.
	for _, t := range trace {
		if err := m.Push(t); err != nil {
			return ChurnPoint{}, err
		}
	}
	runtime.GC()
	var attachNs, detachNs int64
	for i := 0; i < pairs; i++ {
		// A fresh text each time (continuing the standing numbering), so
		// every attach pays parse+plan+intern, never the plan-dedup cache.
		q := MultiScaleQuery(n + i)
		t0 := time.Now()
		h, err := m.Attach(q, 0, nop)
		t1 := time.Now()
		if err != nil {
			return ChurnPoint{}, fmt.Errorf("churn attach %d: %w", i, err)
		}
		h.Detach()
		t2 := time.Now()
		attachNs += t1.Sub(t0).Nanoseconds()
		detachNs += t2.Sub(t1).Nanoseconds()
	}
	if err := m.CloseAll(); err != nil {
		return ChurnPoint{}, err
	}
	return ChurnPoint{
		Catalog:  n,
		Pairs:    pairs,
		AttachNs: float64(attachNs) / float64(pairs),
		DetachNs: float64(detachNs) / float64(pairs),
	}, nil
}
