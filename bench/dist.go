package bench

import (
	"fmt"
	"math"
	"time"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/distrib"
)

func init() {
	register(Experiment{
		ID:    "dist",
		Title: "Distributed sites: merged summaries vs single-node, and merge cost (§VI-B)",
		Run:   runDist,
	})
}

// runDist partitions one stream across increasing site counts, then
// measures (a) the error of the merged decayed sum against a single-node
// run — which must be zero, the §VI-B exactness claim — and (b) the
// wall-clock cost of a full snapshot+merge cycle, which grows only with the
// number of sites, not the stream length.
func runDist(cfg RunConfig) []Table {
	n := cfg.packets(200_000)
	model := decay.NewForward(decay.NewExp(0.02), 0)
	pkts := packetStream(20_000, cfg.Seed, n)
	now := pkts[len(pkts)-1].Time

	single := agg.NewSum(model)
	for _, p := range pkts {
		single.Observe(p.Time, float64(p.Len))
	}
	want := single.Value(now)

	t := Table{
		ID:      "dist",
		Title:   "merged decayed byte sum vs single node, by site count",
		Columns: []string{"sites", "merged sum err %", "snapshot+merge (µs)"},
	}
	for _, sites := range []int{1, 2, 4, 8, 16} {
		cl, err := distrib.New(distrib.Config{Sites: sites, Model: model, HHK: 100})
		if err != nil {
			panic(err)
		}
		for _, p := range pkts {
			cl.Observe(int(p.FlowKey()), distrib.Observation{
				Key: p.DestKey(), Value: float64(p.Len), Time: p.Time,
			})
		}
		start := time.Now()
		snap, err := cl.Snapshot()
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start)
		cl.Close()
		errPct := 100 * math.Abs(snap.Sum.Value(now)-want) / want
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", sites),
			fmt.Sprintf("%.9f", errPct),
			fmt.Sprintf("%.0f", float64(elapsed.Microseconds())),
		})
	}
	t.Notes = append(t.Notes,
		"the merged decayed sum equals the single-node value to float rounding at every site count;",
		"snapshot cost covers serializing, shipping and merging every site's partial state")
	return []Table{t}
}
