package bench

import (
	"fmt"
	"runtime"
	"time"

	"forwarddecay/gsql"
)

// Multi-query scaling harness: how does the per-tuple cost of the shared
// runtime grow with the number of standing queries? The workload is
// shared-heavy — the regime the MultiRun is built for: queries cluster into
// a handful of predicate classes (rare WHERE filters over a 4096-address
// space) and share group keys and temporal buckets, while every query still
// owns a distinct aggregate argument, so plans are not mere text duplicates.
// A non-matching tuple then costs one pass over the class predicates no
// matter how many queries are attached; only the ~1/1024 matching tuples
// fan out into per-query folds. The headline invariant (gated in ci.sh):
// 1000 standing queries run at <2x the per-tuple cost of 10.

// MultiScalePoint is one measured point of the scaling sweep.
type MultiScalePoint struct {
	Queries        int     `json:"queries"`
	Tuples         int     `json:"tuples"`
	NsPerTuple     float64 `json:"ns_per_tuple"`
	Classes        int     `json:"classes"`
	DistinctExprs  int     `json:"distinct_exprs"`
	SharedHitRatio float64 `json:"shared_hit_ratio"`
}

// multiScaleWheres are the predicate classes of the scaling workload. Each
// matches 1/4096 of the address cycle, so with all four in play ~1/1024 of
// the stream fans out to some class's members.
var multiScaleWheres = []string{
	"dstIP = 7",
	"dstIP = 19",
	"dstIP = 23",
	"dstIP = 42",
}

// MultiScaleQuery renders standing query i of the shared-heavy workload:
// the WHERE rotates over the predicate classes; the sum argument is unique
// per query so no two texts dedup to one plan.
func MultiScaleQuery(i int) string {
	return fmt.Sprintf(
		"select tb, dstIP, count(*), sum(len + %d) from TCP where %s group by time/60 as tb, dstIP",
		i, multiScaleWheres[i%len(multiScaleWheres)])
}

// multiScaleTrace synthesizes the scaling stream: 1000 packets/second with
// destinations scattered over a 4096-address space, so each predicate class
// matches ~1/4096 of the tuples.
func multiScaleTrace(n int, seed uint64) []gsql.Tuple {
	tuples := make([]gsql.Tuple, n)
	x := seed*2654435761 + 1
	for j := range tuples {
		x = x*6364136223846793005 + 1442695040888963407
		t := int64(j / 1000)
		tuples[j] = gsql.Tuple{
			gsql.Int(t), gsql.Float(float64(j) / 1000), gsql.Int(int64(x >> 33 & 0xffff)),
			gsql.Int(int64(x>>17) & 4095), gsql.Int(4242), gsql.Int(80),
			gsql.Int(6), gsql.Int(100 + int64(j%1400)),
		}
	}
	return tuples
}

// RunMultiScale measures the shared runtime's per-tuple cost at each query
// count, pushing the same trace through a freshly built MultiRun per point.
// Each point is measured twice and keeps the faster lap — min-of-N
// estimates the code's true cost, and a GC barrier before each timed lap
// keeps attach-time garbage from being billed to the push path (the same
// philosophy as the micro gate's regression retries).
func RunMultiScale(counts []int, tuples int, seed uint64) ([]MultiScalePoint, error) {
	trace := multiScaleTrace(tuples, seed)
	out := make([]MultiScalePoint, 0, len(counts))
	for _, n := range counts {
		p, err := measureMultiScale(n, trace)
		if err != nil {
			return nil, err
		}
		again, err := measureMultiScale(n, trace)
		if err != nil {
			return nil, err
		}
		if again.NsPerTuple < p.NsPerTuple {
			p = again
		}
		out = append(out, p)
	}
	return out, nil
}

func measureMultiScale(n int, trace []gsql.Tuple) (MultiScalePoint, error) {
	nop := func(gsql.Tuple) error { return nil }
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		return MultiScalePoint{}, err
	}
	m, err := gsql.NewMultiRun(e, "TCP", gsql.Options{})
	if err != nil {
		return MultiScalePoint{}, err
	}
	for i := 0; i < n; i++ {
		if _, err := m.Attach(MultiScaleQuery(i), 0, nop); err != nil {
			return MultiScalePoint{}, fmt.Errorf("attach query %d: %w", i, err)
		}
	}
	// Warm-up lap: materialize every group and fault the code paths in
	// before the timed lap.
	warm := len(trace) / 10
	if warm > 10000 {
		warm = 10000
	}
	for _, t := range trace[:warm] {
		if err := m.Push(t); err != nil {
			return MultiScalePoint{}, err
		}
	}
	runtime.GC()
	start := time.Now()
	for _, t := range trace {
		if err := m.Push(t); err != nil {
			return MultiScalePoint{}, err
		}
	}
	elapsed := time.Since(start)
	st := m.MultiStats()
	if err := m.CloseAll(); err != nil {
		return MultiScalePoint{}, err
	}
	return MultiScalePoint{
		Queries:        n,
		Tuples:         len(trace),
		NsPerTuple:     float64(elapsed.Nanoseconds()) / float64(len(trace)),
		Classes:        st.Classes,
		DistinctExprs:  st.DistinctExprs,
		SharedHitRatio: st.SharedHitRatio(),
	}, nil
}
