package bench

import (
	"fmt"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/netgen"
	"forwarddecay/sketch"
	"forwarddecay/window"
)

func init() {
	register(Experiment{ID: "fig5", Title: "Heavy-hitter CPU load vs stream rate (Figure 5)", Run: runFig5})
	register(Experiment{ID: "fig4a", Title: "Heavy-hitter CPU load vs ε, TCP at 200k pkt/s (Figure 4a)",
		Run: func(cfg RunConfig) []Table { return runFig4(cfg, "fig4a", "cpu", false) }})
	register(Experiment{ID: "fig4b", Title: "Heavy-hitter CPU load vs ε, UDP at 170k pkt/s (Figure 4b)",
		Run: func(cfg RunConfig) []Table { return runFig4(cfg, "fig4b", "cpu", true) }})
	register(Experiment{ID: "fig4c", Title: "Heavy-hitter space vs ε, TCP (Figure 4c)",
		Run: func(cfg RunConfig) []Table { return runFig4(cfg, "fig4c", "space", false) }})
	register(Experiment{ID: "fig4d", Title: "Heavy-hitter space vs ε, UDP (Figure 4d)",
		Run: func(cfg RunConfig) []Table { return runFig4(cfg, "fig4d", "space", true) }})
}

// hhCosts measures the per-packet maintenance cost (ns) of the four
// heavy-hitter methods of Figures 4 and 5 over the packets whose keep[i] is
// true (protocol filtering), and returns the structures for space probes.
type hhRun struct {
	unaryNs, expNs, polyNs, swNs float64
	unary                        *sketch.StreamSummary
	exp, poly                    *agg.HeavyHitters
	sw                           *window.HeavyHitters
}

func runHH(pkts []netgen.Packet, keep func(netgen.Packet) bool, eps float64) hhRun {
	var r hhRun
	k := int(1 / eps)

	r.unary = sketch.NewStreamSummary(k)
	r.unaryNs = MeasureNsPerOp(len(pkts), func(i int) {
		if keep(pkts[i]) {
			r.unary.Update(pkts[i].DestKey())
		}
	})

	r.exp = agg.NewHeavyHittersK(decay.NewForward(decay.NewExp(0.1), 0), k)
	r.expNs = MeasureNsPerOp(len(pkts), func(i int) {
		if keep(pkts[i]) {
			r.exp.Observe(pkts[i].DestKey(), pkts[i].Time)
		}
	})

	r.poly = agg.NewHeavyHittersK(decay.NewForward(decay.NewPoly(2), -1), k)
	r.polyNs = MeasureNsPerOp(len(pkts), func(i int) {
		if keep(pkts[i]) {
			r.poly.Observe(pkts[i].DestKey(), pkts[i].Time)
		}
	})

	r.sw = window.NewHeavyHitters(60, eps)
	r.swNs = MeasureNsPerOp(len(pkts), func(i int) {
		if keep(pkts[i]) {
			r.sw.Observe(pkts[i].DestKey(), pkts[i].Time, 1)
		}
	})
	return r
}

func keepAll(netgen.Packet) bool { return true }

func keepUDP(p netgen.Packet) bool { return p.Proto == netgen.ProtoUDP }

func runFig5(cfg RunConfig) []Table {
	rates := []float64{50_000, 100_000, 150_000, 200_000}
	const eps = 0.01
	n := cfg.packets(300_000)
	t := Table{
		ID:      "fig5",
		Title:   fmt.Sprintf("CPU load (%% of one core) of heavy-hitter maintenance, ε=%.2f", eps),
		Columns: []string{"rate (pkt/s)", "unary HH", "fwd exp (weighted SS)", "fwd poly (weighted SS)", "sliding window"},
	}
	for _, rate := range rates {
		pkts := packetStream(rate, cfg.Seed, n)
		r := runHH(pkts, keepAll, eps)
		t.Rows = append(t.Rows, []string{
			fmtRate(rate),
			fmtLoad(CPULoad(rate, r.unaryNs)),
			fmtLoad(CPULoad(rate, r.expNs)),
			fmtLoad(CPULoad(rate, r.polyNs)),
			fmtLoad(CPULoad(rate, r.swNs)),
		})
	}
	t.Notes = append(t.Notes,
		"the weighted SpaceSaving adds little over the unary-optimised version and varies little with the decay function;",
		"the sliding-window implementation of backward decay is far more expensive (§VIII)")
	return []Table{t}
}

func runFig4(cfg RunConfig, id, what string, udp bool) []Table {
	rate := 200_000.0
	keep := keepAll
	traffic := "TCP"
	if udp {
		rate = 170_000
		keep = keepUDP
		traffic = "UDP"
	}
	epss := []float64{0.01, 0.02, 0.05, 0.1}
	n := cfg.packets(300_000)
	pkts := packetStream(rate, cfg.Seed, n)
	if what == "space" {
		// Space must be probed after the structures have seen a full
		// window of time, or the sliding-window hierarchy is mostly empty.
		// Cover ~90 simulated seconds with the packet budget by lowering
		// the generation rate; the forward-decay structures are Θ(1/ε)
		// regardless, while the window structure fills all its blocks.
		n = cfg.packets(600_000)
		pkts = packetStream(float64(n)/90, cfg.Seed, n)
	}

	t := Table{
		ID:      id,
		Columns: []string{"epsilon", "unary HH", "fwd exp", "fwd poly", "sliding window"},
	}
	if what == "cpu" {
		t.Title = fmt.Sprintf("heavy-hitter CPU load (%% of one core), %s at %s pkt/s", traffic, fmtRate(rate))
	} else {
		t.Title = fmt.Sprintf("heavy-hitter space per query, %s traffic (log scale in the paper)", traffic)
	}
	for _, eps := range epss {
		r := runHH(pkts, keep, eps)
		row := []string{fmt.Sprintf("%.2f", eps)}
		if what == "cpu" {
			row = append(row,
				fmtLoad(CPULoad(rate, r.unaryNs)),
				fmtLoad(CPULoad(rate, r.expNs)),
				fmtLoad(CPULoad(rate, r.polyNs)),
				fmtLoad(CPULoad(rate, r.swNs)))
		} else {
			row = append(row,
				fmtBytes(r.unary.SizeBytes()),
				fmtBytes(r.exp.SizeBytes()),
				fmtBytes(r.poly.SizeBytes()),
				fmtBytes(r.sw.SizeBytes()))
		}
		t.Rows = append(t.Rows, row)
	}
	if what == "space" {
		t.Notes = append(t.Notes,
			"forward-decay space is Θ(1/ε) counters; the window structure stores blocks of Misra–Gries",
			"summaries and is orders of magnitude larger, and does not shrink with ε (§VIII)")
	}
	return []Table{t}
}
