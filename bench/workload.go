package bench

import (
	"math"

	"forwarddecay/gsql"
	"forwarddecay/netgen"
	"forwarddecay/udaf"
)

// packetStream materializes n packets at the given rate.
func packetStream(rate float64, seed uint64, n int) []netgen.Packet {
	g := netgen.New(netgen.DefaultConfig(rate, seed))
	return g.Take(make([]netgen.Packet, 0, n), n)
}

// tupleStream materializes n packet tuples at the given rate.
func tupleStream(rate float64, seed uint64, n int) []gsql.Tuple {
	g := netgen.New(netgen.DefaultConfig(rate, seed))
	out := make([]gsql.Tuple, n)
	for i := range out {
		out[i] = netgen.Tuple(g.Next())
	}
	return out
}

// newEngine builds an engine with the TCP packet stream and all UDAFs
// registered under the given configuration.
func newEngine(cfg udaf.Config) *gsql.Engine {
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		panic(err)
	}
	if err := udaf.RegisterAll(e, cfg); err != nil {
		panic(err)
	}
	return e
}

// runStatementNsPerTuple prepares and runs a query over the tuples,
// returning the measured cost per tuple in nanoseconds. Output rows are
// discarded (the experiments measure maintenance cost, as the paper does).
// The run is repeated and the minimum taken, so warm-up effects (map
// growth, page faults, GC debt from workload generation) do not inflate
// individual cells.
func runStatementNsPerTuple(e *gsql.Engine, query string, tuples []gsql.Tuple, opts gsql.Options) float64 {
	st, err := e.Prepare(query)
	if err != nil {
		panic(err)
	}
	best := math.Inf(1)
	for rep := 0; rep < 2; rep++ {
		run := st.Start(func(gsql.Tuple) error { return nil }, opts)
		ns := MeasureNsPerOp(len(tuples), func(i int) {
			if err := run.Push(tuples[i]); err != nil {
				panic(err)
			}
		})
		if err := run.Close(); err != nil {
			panic(err)
		}
		if ns < best {
			best = ns
		}
	}
	return best
}
