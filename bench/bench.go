// Package bench is the experiment harness that regenerates every table and
// figure of the forward-decay paper's evaluation (Section VIII) on the
// synthetic substrate: each experiment builds its workload with netgen,
// runs the competing methods (forward decay, undecayed, and the
// backward-decay baselines), and reports paper-style tables.
//
// CPU load is modelled as measured cost × offered rate: a method that
// spends c ns per packet at an offered rate of r packets/s would occupy
// c·r/10⁷ percent of one core; above 100% the system drops tuples, which
// the tables mark. Space figures are exact data-structure accounting.
// Absolute numbers differ from the paper's 2009-era Xeon, but the orderings
// and crossovers — which methods saturate, and where — are the
// reproduction targets (see EXPERIMENTS.md).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"
)

// RunConfig scales the experiments. Scale 1 reproduces the full workloads;
// tests use small fractions.
type RunConfig struct {
	// Scale multiplies workload sizes (packet counts); 1.0 is the full run.
	Scale float64
	// Seed makes every experiment deterministic.
	Seed uint64
	// Shards pins the parallel experiment to one shard count; 0 sweeps the
	// default ladder (1, 2, 4, 8).
	Shards int
}

// DefaultConfig is the full-scale deterministic configuration.
func DefaultConfig() RunConfig { return RunConfig{Scale: 1, Seed: 20090329} }

// shardList returns the shard counts the parallel experiment sweeps.
func (c RunConfig) shardList() []int {
	if c.Shards > 0 {
		return []int{c.Shards}
	}
	return []int{1, 2, 4, 8}
}

// packets returns n scaled by the config, with a floor to keep tiny scales
// meaningful.
func (c RunConfig) packets(n int) int {
	m := int(float64(n) * c.Scale)
	if m < 2000 {
		m = 2000
	}
	return m
}

// Table is one rendered result table (one per figure panel).
type Table struct {
	// ID is the experiment identifier, e.g. "fig2a".
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header cells.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes are appended under the table.
	Notes []string
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is one registered, runnable experiment.
type Experiment struct {
	// ID is the figure identifier ("fig1", "fig2a", … "examples").
	ID string
	// Title summarizes the experiment.
	Title string
	// Run executes the experiment and returns its tables.
	Run func(cfg RunConfig) []Table
}

// registry holds all experiments, populated by init functions.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID returns the experiment with the given ID, or nil.
func ByID(id string) *Experiment {
	for i := range registry {
		if registry[i].ID == id {
			return &registry[i]
		}
	}
	return nil
}

// MeasureNsPerOp times fn over n operations and returns nanoseconds per
// operation. fn is the per-item work; setup cost must be excluded by the
// caller. A garbage collection runs before the timer starts (as testing.B
// does), so allocation debt from previous experiments does not bleed into
// this measurement.
func MeasureNsPerOp(n int, fn func(i int)) float64 {
	runtime.GC()
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(n)
}

// CPULoad converts a per-packet cost into percent of one core at the given
// offered rate.
func CPULoad(ratePktPerSec, nsPerPkt float64) float64 {
	return ratePktPerSec * nsPerPkt / 1e7
}

// fmtLoad renders a CPU load, flagging saturation (tuple drops) past 100%.
func fmtLoad(pct float64) string {
	if pct > 100 {
		return fmt.Sprintf("%.1f (drops)", pct)
	}
	return fmt.Sprintf("%.1f", pct)
}

// fmtBytes renders a byte count compactly.
func fmtBytes(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// fmtRate renders a packet rate.
func fmtRate(r float64) string {
	if r >= 1000 {
		return fmt.Sprintf("%.0fk", r/1000)
	}
	return fmt.Sprintf("%.0f", r)
}
