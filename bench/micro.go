package bench

import (
	"bytes"
	"flag"
	"io"
	"testing"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/ingest"
	"forwarddecay/internal/core"
	"forwarddecay/netgen"
	"forwarddecay/sketch"
)

// Micro-benchmark suite for the per-tuple hot paths, runnable outside the
// test harness via testing.Benchmark so `fdbench -bench-json` can emit
// machine-readable numbers for the ci.sh regression gate. Each entry mirrors
// the workload of the same-named Benchmark* function in the package's
// _test.go file (the test-file versions remain the authoritative copies for
// `go test -bench`); names and shapes must stay in sync so results are
// comparable against the committed BENCH_*.json baselines.

// MicroResult is one benchmark measurement in the BENCH_*.json schema.
type MicroResult struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// MicroBench is one runnable hot-path benchmark.
type MicroBench struct {
	Package string
	Name    string
	F       func(b *testing.B)
}

func microModel() decay.Forward { return decay.NewForward(decay.NewPoly(2), 0) }

func microKeys(n int, space uint64, seed uint64) []uint64 {
	rng := core.NewRNG(seed)
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64() % space
	}
	return keys
}

func microPackets(n int, seed uint64) []netgen.Packet {
	cfg := netgen.DefaultConfig(5000, seed)
	cfg.Hosts = 50
	g := netgen.New(cfg)
	return g.Take(make([]netgen.Packet, 0, n), n)
}

// microTuples builds the benchmark packet-tuple cycle: 16 groups in one
// time bucket, matching benchTuples in gsql/bench_test.go.
func microTuples() []gsql.Tuple {
	tuples := make([]gsql.Tuple, 64)
	for i := range tuples {
		tuples[i] = gsql.Tuple{
			gsql.Int(30), gsql.Float(30), gsql.Int(100), gsql.Int(int64(i % 16)),
			gsql.Int(4242), gsql.Int(80), gsql.Int(6), gsql.Int(100 + int64(i)),
		}
	}
	return tuples
}

func microStatement(query string) *gsql.Statement {
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		panic(err)
	}
	st, err := e.Prepare(query)
	if err != nil {
		panic(err)
	}
	return st
}

// microMultiRun builds a shared runtime with the first n scaling-workload
// queries attached (see multiscale.go for the workload's shape).
func microMultiRun(b *testing.B, n int) *gsql.MultiRun {
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		b.Fatal(err)
	}
	m, err := gsql.NewMultiRun(e, "TCP", gsql.Options{})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := m.Attach(MultiScaleQuery(i), 0, func(gsql.Tuple) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
	return m
}

// MicroBenchmarks returns the hot-path suite the regression gate watches.
func MicroBenchmarks() []MicroBench {
	return []MicroBench{
		{"forwarddecay/agg", "BenchmarkCounterObserve", func(b *testing.B) {
			c := agg.NewCounter(microModel())
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Observe(1 + float64(i)*1e-6)
			}
			_ = c.Value(float64(b.N))
		}},
		{"forwarddecay/agg", "BenchmarkCounterObserveExp", func(b *testing.B) {
			c := agg.NewCounter(decay.NewForward(decay.NewExp(0.1), 0))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.Observe(float64(i) * 1e-3)
			}
			_ = c.Value(float64(b.N) * 1e-3)
		}},
		{"forwarddecay/agg", "BenchmarkSumObserve", func(b *testing.B) {
			s := agg.NewSum(microModel())
			rng := core.NewRNG(1)
			vals := make([]float64, 1024)
			for i := range vals {
				vals[i] = rng.Float64() * 100
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Observe(1+float64(i)*1e-6, vals[i&1023])
			}
			_ = s.Value(float64(b.N))
		}},
		{"forwarddecay/agg", "BenchmarkHeavyHittersObserve", func(b *testing.B) {
			h := agg.NewHeavyHittersK(microModel(), 256)
			keys := microKeys(4096, 10_000, 2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h.Observe(keys[i&4095], 1+float64(i)*1e-6)
			}
		}},
		{"forwarddecay/sketch", "BenchmarkSpaceSavingUpdateUnary", func(b *testing.B) {
			s := sketch.NewSpaceSavingK(256)
			keys := microKeys(4096, 10_000, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(keys[i&4095], 1)
			}
		}},
		{"forwarddecay/sketch", "BenchmarkSpaceSavingUpdateWeighted", func(b *testing.B) {
			s := sketch.NewSpaceSavingK(256)
			keys := microKeys(4096, 10_000, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(keys[i&4095], 1+float64(i&15))
			}
		}},
		{"forwarddecay/sketch", "BenchmarkSpaceSavingMerge", func(b *testing.B) {
			mk := func(seed uint64) *sketch.SpaceSaving {
				s := sketch.NewSpaceSavingK(256)
				rng := core.NewRNG(seed)
				for i := 0; i < 50_000; i++ {
					s.Update(rng.Uint64()%10_000, 1)
				}
				return s
			}
			x, y := mk(1), mk(2)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.Clone().Merge(y)
			}
		}},
		{"forwarddecay/sketch", "BenchmarkKMVInsert", func(b *testing.B) {
			s := sketch.NewKMV(1024)
			keys := microKeys(4096, 1_000_000, 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Insert(keys[i&4095])
			}
		}},
		{"forwarddecay/sketch", "BenchmarkQDigestUpdate", func(b *testing.B) {
			q := sketch.NewQDigest(1<<16, 0.01)
			vals := microKeys(4096, 1<<16, 9)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Update(vals[i&4095], 1+float64(i&15))
			}
		}},
		{"forwarddecay/sketch", "BenchmarkQDigestCompress", func(b *testing.B) {
			q := sketch.NewQDigest(1<<16, 0.01)
			rng := core.NewRNG(10)
			for i := 0; i < 200_000; i++ {
				q.Update(rng.Uint64()%(1<<16), 1)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Compress()
			}
		}},
		{"forwarddecay/gsql", "BenchmarkExecPush", func(b *testing.B) {
			st := microStatement(`select tb, dstIP, count(*), sum(len), avg(float(len))
				from TCP
				where len > 0 and destPort = 80
				group by time/60 as tb, dstIP`)
			run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
			tuples := microTuples()
			for _, t := range tuples { // materialize all groups
				if err := run.Push(t); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run.Push(tuples[i&63]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := run.Close(); err != nil {
				b.Fatal(err)
			}
		}},
		{"forwarddecay/gsql", "BenchmarkExecPushBatch", func(b *testing.B) {
			// One op = one 64-tuple columnar batch through the full compiled
			// pipeline: compare ns/op ÷ 64 against BenchmarkExecPush for the
			// batched-vs-scalar per-tuple cost.
			st := microStatement(`select tb, dstIP, count(*), sum(len), avg(float(len))
				from TCP
				where len > 0 and destPort = 80
				group by time/60 as tb, dstIP`)
			run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
			batch, err := gsql.NewBatch(gsql.PacketSchema("TCP"))
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range microTuples() {
				if err := batch.Append(t); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := run.PushBatch(batch); err != nil { // materialize all groups
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := run.PushBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := run.Close(); err != nil {
				b.Fatal(err)
			}
		}},
		{"forwarddecay/gsql", "BenchmarkExprPredicate", func(b *testing.B) {
			st := microStatement(`select tb, count(*) from TCP
				where len*8 > 256 and destPort = 80 and time % 60 < 59
				group by time/60 as tb`)
			where := st.WherePredicate()
			tuples := microTuples()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := where(tuples[i&63]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"forwarddecay/gsql", "BenchmarkPredicateBatch", func(b *testing.B) {
			// One op = the vectorized WHERE over a 64-row batch; the scalar
			// counterpart is 64 BenchmarkExprPredicate ops.
			st := microStatement(`select tb, count(*) from TCP
				where len*8 > 256 and destPort = 80 and time % 60 < 59
				group by time/60 as tb`)
			pred := st.BatchPredicate()
			if pred == nil {
				b.Fatal("WHERE did not compile to kernels")
			}
			batch, err := gsql.NewBatch(gsql.PacketSchema("TCP"))
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range microTuples() {
				if err := batch.Append(t); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pred(batch); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"forwarddecay/gsql", "BenchmarkMultiPushShared16", func(b *testing.B) {
			// One op = one tuple through the shared multi-query pass with 16
			// standing queries in 4 predicate classes. Compare against
			// BenchmarkExecPush: the shared pass amortizes predicate and
			// group-key evaluation across the whole catalog.
			m := microMultiRun(b, 16)
			tuples := multiScaleTrace(4096, 9)
			for _, t := range tuples {
				if err := m.Push(t); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Push(tuples[i&4095]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := m.CloseAll(); err != nil {
				b.Fatal(err)
			}
		}},
		{"forwarddecay/gsql", "BenchmarkMultiPushBatchShared16", func(b *testing.B) {
			// One op = one 64-tuple columnar batch through the shared pass
			// with 16 standing queries: class predicates run as vector
			// kernels over shared selection bitmaps, once per class per
			// batch.
			m := microMultiRun(b, 16)
			batch, err := gsql.NewBatch(gsql.PacketSchema("TCP"))
			if err != nil {
				b.Fatal(err)
			}
			for _, t := range multiScaleTrace(64, 9) {
				if err := batch.Append(t); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := m.PushBatch(batch); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.PushBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := m.CloseAll(); err != nil {
				b.Fatal(err)
			}
		}},
		{"forwarddecay/agg", "BenchmarkWeighBatch", func(b *testing.B) {
			// One op = a 64-observation equal-timestamp run under exponential
			// decay: the weight memo computes LogStaticWeight (and the scaled
			// sum its exponential) once per run instead of 64 times. The
			// scalar counterpart is 64 BenchmarkCounterObserveExp ops.
			c := agg.NewCounter(decay.NewForward(decay.NewExp(0.1), 0))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.ObserveRun(float64(i)*1e-3, 64)
			}
			b.StopTimer()
			_ = c.Value(float64(b.N) * 1e-3)
		}},
		{"forwarddecay/ingest", "BenchmarkFrameDecode", func(b *testing.B) {
			pkts := microPackets(256, 3)
			var wire []byte
			const frames = 16
			for i := 0; i < frames; i++ {
				wire = ingest.AppendData(wire, uint64(i+1), pkts)
			}
			r := bytes.NewReader(wire)
			fr := ingest.NewFrameReader(r, 0)
			b.ReportAllocs()
			b.SetBytes(int64(len(wire) / frames))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := fr.ReadFrame()
				if err == io.EOF {
					r.Reset(wire)
					fr = ingest.NewFrameReader(r, 0)
					continue
				}
				if err != nil {
					b.Fatal(err)
				}
				ingest.RecycleFrame(f)
			}
		}},
		{"forwarddecay/ingest", "BenchmarkFrameDecodeBuffer", func(b *testing.B) {
			pkts := microPackets(256, 5)
			wire := ingest.AppendData(nil, 1, pkts)
			b.ReportAllocs()
			b.SetBytes(int64(len(wire)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, _, err := ingest.DecodeFrame(wire, 0)
				if err != nil {
					b.Fatal(err)
				}
				ingest.RecycleFrame(f)
			}
		}},
	}
}

// RunMicro executes the suite and returns one result per benchmark.
// benchtime accepts the `go test -benchtime` syntax ("1s", "300ms", "100x");
// empty keeps the testing package default of 1s. progress, if non-nil, is
// called before each benchmark starts.
func RunMicro(benchtime string, progress func(pkg, name string)) ([]MicroResult, error) {
	testing.Init()
	if benchtime != "" {
		if err := flag.Set("test.benchtime", benchtime); err != nil {
			return nil, err
		}
	}
	var out []MicroResult
	for _, mb := range MicroBenchmarks() {
		if progress != nil {
			progress(mb.Package, mb.Name)
		}
		out = append(out, measure(mb))
	}
	return out, nil
}

// MeasureOne re-runs the named micro-benchmark and returns a fresh
// measurement, or false if no such benchmark exists. It reuses whatever
// benchtime the preceding RunMicro call configured. The regression gate uses
// it to retry apparent regressions: on a single-core box one 300ms window can
// double under a scheduler spike, and a real slowdown is distinguished from
// noise by persisting across re-measurements.
func MeasureOne(pkg, name string) (MicroResult, bool) {
	for _, mb := range MicroBenchmarks() {
		if mb.Package == pkg && mb.Name == name {
			return measure(mb), true
		}
	}
	return MicroResult{}, false
}

func measure(mb MicroBench) MicroResult {
	r := testing.Benchmark(mb.F)
	return MicroResult{
		Package:     mb.Package,
		Name:        mb.Name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
