package bench

import (
	"fmt"
	"math"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/window"
)

func init() {
	register(Experiment{
		ID:    "acc",
		Title: "Accuracy: exact forward decay vs EH-approximated backward decay (companion to Figure 2)",
		Run:   runAccuracy,
	})
}

// runAccuracy quantifies the other side of the Figure 2 tradeoff: the
// forward-decay sums are exact by construction, while the backward-decay
// competitor approximates the decayed sum from its bucket structure. It also
// measures the heavy-hitter recall/precision of the sliding-window baseline
// against exact decayed counts.
func runAccuracy(cfg RunConfig) []Table {
	n := cfg.packets(300_000)
	pkts := packetStream(2000, cfg.Seed, n) // long span so decay matters
	now := pkts[len(pkts)-1].Time

	sumTable := Table{
		ID:      "acc-sum",
		Title:   "decayed byte sums: exact vs forward aggregate vs backward EH (ε=0.05)",
		Columns: []string{"decay", "exact", "forward (agg.Sum)", "fwd err %", "backward EH", "EH err %"},
	}
	type pair struct {
		name string
		fm   decay.Forward
		bm   decay.AgeFunc
	}
	// Exponential decay exists in both models identically, so the same
	// target quantity can be computed all three ways. The sliding window
	// exists only backward; forward landmark decay only forward.
	alphas := []float64{0.01, 0.05}
	for _, a := range alphas {
		p := pair{
			name: fmt.Sprintf("exp(%g)", a),
			fm:   decay.NewForward(decay.NewExp(a), 0),
			bm:   decay.NewAgeExp(a),
		}
		fs := agg.NewSum(p.fm)
		bs := window.NewBackwardSum(0.05, 0)
		var exact float64
		for _, pk := range pkts {
			v := float64(pk.Len)
			fs.Observe(pk.Time, v)
			bs.Observe(pk.Time, v)
			exact += v * math.Exp(-a*(now-pk.Time))
		}
		fv := fs.Value(now)
		bv := bs.Value(p.bm, now)
		sumTable.Rows = append(sumTable.Rows, []string{
			p.name,
			fmt.Sprintf("%.4g", exact),
			fmt.Sprintf("%.4g", fv),
			fmt.Sprintf("%.3f", 100*math.Abs(fv-exact)/exact),
			fmt.Sprintf("%.4g", bv),
			fmt.Sprintf("%.3f", 100*math.Abs(bv-exact)/exact),
		})
	}
	sumTable.Notes = append(sumTable.Notes,
		"forward decay is exact up to float64 rounding; the EH approximates within its ε even though",
		"the decay function was only supplied at query time")

	// Heavy hitters: exact decayed counts vs the weighted SpaceSaving and
	// the sliding-window structure's decayed combination.
	hhTable := Table{
		ID:      "acc-hh",
		Title:   "φ=0.02 heavy hitters under exp(0.05) decay: recall/precision vs exact",
		Columns: []string{"method", "reported", "recall %", "precision %"},
	}
	const alpha, phi = 0.05, 0.02
	fm := decay.NewForward(decay.NewExp(alpha), 0)
	hh := agg.NewHeavyHitters(fm, 0.002)
	sw := window.NewHeavyHitters(200, 0.01)
	exactCounts := map[uint64]float64{}
	var total float64
	for _, pk := range pkts {
		k := pk.DestKey()
		hh.Observe(k, pk.Time)
		sw.Observe(k, pk.Time, 1)
		w := math.Exp(-alpha * (now - pk.Time))
		exactCounts[k] += w
		total += w
	}
	truth := map[uint64]bool{}
	for k, c := range exactCounts {
		if c >= phi*total {
			truth[k] = true
		}
	}
	score := func(keys []uint64) (recall, precision float64) {
		hit := 0
		for _, k := range keys {
			if truth[k] {
				hit++
			}
		}
		if len(truth) > 0 {
			recall = 100 * float64(hit) / float64(len(truth))
		}
		if len(keys) > 0 {
			precision = 100 * float64(hit) / float64(len(keys))
		}
		return
	}
	var fwdKeys []uint64
	for _, it := range hh.Query(now, phi) {
		fwdKeys = append(fwdKeys, it.Key)
	}
	var swKeys []uint64
	for _, ic := range sw.DecayedQuery(decay.NewAgeExp(alpha), now, phi) {
		swKeys = append(swKeys, ic.Key)
	}
	fr, fp := score(fwdKeys)
	sr, sp := score(swKeys)
	hhTable.Rows = append(hhTable.Rows,
		[]string{"forward weighted SS", fmt.Sprintf("%d", len(fwdKeys)), fmt.Sprintf("%.1f", fr), fmt.Sprintf("%.1f", fp)},
		[]string{"sliding-window blocks", fmt.Sprintf("%d", len(swKeys)), fmt.Sprintf("%.1f", sr), fmt.Sprintf("%.1f", sp)},
		[]string{"(exact heavy hitters)", fmt.Sprintf("%d", len(truth)), "100.0", "100.0"},
	)
	return []Table{sumTable, hhTable}
}
