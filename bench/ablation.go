package bench

import (
	"fmt"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/sketch"
	"forwarddecay/udaf"
	"forwarddecay/window"
)

func init() {
	register(Experiment{
		ID:    "ablations",
		Title: "Ablations of the design choices called out in DESIGN.md",
		Run:   runAblations,
	})
}

func runAblations(cfg RunConfig) []Table {
	n := cfg.packets(200_000)
	pkts := packetStream(200_000, cfg.Seed, n)

	// 1. Heap-based weighted SpaceSaving vs unary-optimised bucket list on
	//    the same unary stream.
	ssTable := Table{
		ID:      "ablation-ss",
		Title:   "SpaceSaving variants on a unary stream (k=100)",
		Columns: []string{"structure", "ns/update"},
	}
	heap := sketch.NewSpaceSavingK(100)
	hNs := MeasureNsPerOp(len(pkts), func(i int) { heap.Update(pkts[i].DestKey(), 1) })
	unary := sketch.NewStreamSummary(100)
	uNs := MeasureNsPerOp(len(pkts), func(i int) { unary.Update(pkts[i].DestKey()) })
	ssTable.Rows = [][]string{
		{"weighted heap (O(log k))", fmt.Sprintf("%.0f", hNs)},
		{"unary buckets (O(1))", fmt.Sprintf("%.0f", uNs)},
	}
	ssTable.Notes = append(ssTable.Notes,
		"the unary structure motivates Figure 5's separate 'Unary HH' series")

	// 2. Two-level split on/off across low-table sizes.
	tuples := tupleStream(200_000, cfg.Seed, n)
	const q = `select tb, dstIP, destPort, count(*), sum(len) from TCP group by time/60 as tb, dstIP, destPort`
	tlTable := Table{
		ID:      "ablation-twolevel",
		Title:   "two-level aggregate split (in-process)",
		Columns: []string{"configuration", "ns/tuple"},
	}
	for _, slots := range []int{4096, 65536} {
		e := newEngine(udaf.Config{})
		ns := runStatementNsPerTuple(e, q, tuples, gsql.Options{LowLevelSlots: slots})
		tlTable.Rows = append(tlTable.Rows, []string{
			fmt.Sprintf("split, %d slots", slots), fmt.Sprintf("%.0f", ns)})
	}
	e := newEngine(udaf.Config{})
	ns := runStatementNsPerTuple(e, q, tuples, gsql.Options{DisableTwoLevel: true})
	tlTable.Rows = append(tlTable.Rows, []string{"no split", fmt.Sprintf("%.0f", ns)})
	tlTable.Notes = append(tlTable.Notes,
		"in one process the split does not pay for itself; GS's benefit comes from",
		"running the low level in a separate lightweight process (see EXPERIMENTS.md)")

	// 3. EH vs Deterministic Wave for window counts.
	wcTable := Table{
		ID:      "ablation-windowcount",
		Title:   "window-count summaries over a 60 s window",
		Columns: []string{"structure", "ns/insert", "bytes"},
	}
	eh := sketch.NewExpHistogram(0.05, 60)
	ehNs := MeasureNsPerOp(len(pkts), func(i int) { eh.Insert(pkts[i].Time, 1) })
	wv := sketch.NewWave(20, 60)
	wvNs := MeasureNsPerOp(len(pkts), func(i int) { wv.Insert(pkts[i].Time) })
	wcTable.Rows = [][]string{
		{"Exponential Histogram", fmt.Sprintf("%.0f", ehNs), fmtBytes(eh.SizeBytes())},
		{"Deterministic Wave", fmt.Sprintf("%.0f", wvNs), fmtBytes(wv.SizeBytes())},
	}

	// 4. The cost of the §VI-A log-domain rebasing machinery.
	rsTable := Table{
		ID:      "ablation-rescale",
		Title:   "decayed-sum update cost by decay function (rebasing overhead)",
		Columns: []string{"decay", "ns/observe"},
	}
	for _, mm := range []struct {
		name string
		m    decay.Forward
	}{
		{"none", decay.NewForward(decay.None{}, 0)},
		{"poly(2), never rebases", decay.NewForward(decay.NewPoly(2), 0)},
		{"exp(10), rebases every ~30 s", decay.NewForward(decay.NewExp(10), 0)},
	} {
		s := agg.NewSum(mm.m)
		ns := MeasureNsPerOp(len(pkts), func(i int) { s.Observe(float64(i)*0.001, 1.5) })
		rsTable.Rows = append(rsTable.Rows, []string{mm.name, fmt.Sprintf("%.0f", ns)})
	}

	// 5. Forward quantile digest vs windowed block hierarchy.
	qTable := Table{
		ID:      "ablation-quantiles",
		Title:   "quantile maintenance: one weighted q-digest vs windowed blocks",
		Columns: []string{"structure", "ns/observe", "bytes"},
	}
	fq := agg.NewQuantiles(decay.NewForward(decay.NewPoly(2), -1), 2048, 0.05)
	fqNs := MeasureNsPerOp(len(pkts), func(i int) { fq.Observe(uint64(pkts[i].Len), pkts[i].Time) })
	wq := window.NewQuantiles(60, 2048, 0.05)
	wqNs := MeasureNsPerOp(len(pkts), func(i int) { wq.Observe(uint64(pkts[i].Len), pkts[i].Time, 1) })
	qTable.Rows = [][]string{
		{"forward decay (agg.Quantiles)", fmt.Sprintf("%.0f", fqNs), fmtBytes(fq.SizeBytes())},
		{"sliding window (window.Quantiles)", fmt.Sprintf("%.0f", wqNs), fmtBytes(wq.SizeBytes())},
	}

	return []Table{ssTable, tlTable, wcTable, rsTable, qTable}
}
