package bench

import (
	"fmt"
	"math"
	"runtime"

	"forwarddecay/gsql"
	"forwarddecay/netgen"
	"forwarddecay/udaf"
)

// The parallel experiment measures the sharded LFTA/HFTA runtime
// (gsql.StartParallel) against the serial executor on a forward-decay
// aggregation query, across shard counts and group cardinalities. Each
// shard is an independent low-level aggregator (the LFTA of the paper's
// Gigascope setup); window close merges shard partials through
// Aggregator.Merge (the HFTA combine). Scaling beyond one shard requires
// scheduler parallelism: with GOMAXPROCS=1 the sharded numbers show pure
// coordination overhead, which is itself worth tracking.

func init() {
	register(Experiment{
		ID:    "parallel",
		Title: "sharded LFTA/HFTA runtime: tuples/sec, serial vs N shards",
		Run:   runParallel,
	})
}

// parallelQuery is a multi-aggregate forward-decay query over a multi-column
// group key, the shape the sharded runtime targets.
const parallelQuery = `select tb, dstIP, destPort, count(*), sum(len),
       sum(float(len)*(time % 60)*(time % 60))/3600
  from TCP group by time/60 as tb, dstIP, destPort`

// parallelTuples materializes n tuples with the given destination
// cardinality (hosts) — the group-count knob.
func parallelTuples(seed uint64, n, hosts int) []gsql.Tuple {
	cfg := netgen.DefaultConfig(200_000, seed)
	cfg.Hosts = hosts
	g := netgen.New(cfg)
	out := make([]gsql.Tuple, n)
	for i := range out {
		out[i] = netgen.Tuple(g.Next())
	}
	return out
}

// serialTuplesPerSec measures the serial executor's throughput (best of 2).
func serialTuplesPerSec(st *gsql.Statement, tuples []gsql.Tuple) float64 {
	best := math.Inf(1)
	for rep := 0; rep < 2; rep++ {
		run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
		ns := MeasureNsPerOp(len(tuples), func(i int) {
			if err := run.Push(tuples[i]); err != nil {
				panic(err)
			}
		})
		if err := run.Close(); err != nil {
			panic(err)
		}
		if ns < best {
			best = ns
		}
	}
	return 1e9 / best
}

// parallelTuplesPerSec measures the sharded runtime's end-to-end throughput
// (best of 2), timing Push through Close so queued batches are paid for.
func parallelTuplesPerSec(st *gsql.Statement, tuples []gsql.Tuple, shards int) float64 {
	best := math.Inf(1)
	for rep := 0; rep < 2; rep++ {
		pr, err := st.StartParallel(func(gsql.Tuple) error { return nil },
			gsql.ParallelOptions{Shards: shards})
		if err != nil {
			panic(err)
		}
		ns := MeasureNsPerOp(len(tuples), func(i int) {
			if err := pr.Push(tuples[i]); err != nil {
				panic(err)
			}
		})
		closeNs := MeasureNsPerOp(1, func(int) {
			if err := pr.Close(); err != nil {
				panic(err)
			}
		})
		total := ns + closeNs/float64(len(tuples))
		if total < best {
			best = total
		}
	}
	return 1e9 / best
}

func runParallel(cfg RunConfig) []Table {
	n := cfg.packets(400_000)
	shardCounts := cfg.shardList()

	t := Table{
		ID:    "parallel",
		Title: "sharded LFTA/HFTA runtime throughput (Mtuples/sec)",
		Columns: append([]string{"groups/bucket", "serial"},
			func() []string {
				cols := make([]string, len(shardCounts))
				for i, s := range shardCounts {
					cols[i] = fmt.Sprintf("%d shards", s)
				}
				return cols
			}()...),
	}

	e := newEngine(udaf.Config{})
	st, err := e.Prepare(parallelQuery)
	if err != nil {
		panic(err)
	}

	for _, hosts := range []int{16, 1000, 20000} {
		tuples := parallelTuples(cfg.Seed, n, hosts)
		row := []string{fmt.Sprintf("~%d", hosts), fmt.Sprintf("%.2f", serialTuplesPerSec(st, tuples)/1e6)}
		for _, s := range shardCounts {
			row = append(row, fmt.Sprintf("%.2f", parallelTuplesPerSec(st, tuples, s)/1e6))
		}
		t.Rows = append(t.Rows, row)
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("%d tuples/cell, best of 2; GOMAXPROCS=%d, NumCPU=%d", n,
			runtime.GOMAXPROCS(0), runtime.NumCPU()),
		"each shard runs an independent low-level aggregator (LFTA); window close merges partials via Aggregator.Merge (HFTA)",
		"speedup over serial requires GOMAXPROCS > 1; on a single core the shard columns measure routing+channel overhead")
	return []Table{t}
}
