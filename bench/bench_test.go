package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny is a fast configuration for exercising every experiment in tests.
func tiny() RunConfig { return RunConfig{Scale: 0.02, Seed: 7} }

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablations", "acc", "dist", "examples", "fig1", "fig2a",
		"fig2b", "fig2c", "fig2d", "fig3a", "fig3b", "fig4a", "fig4b", "fig4c",
		"fig4d", "fig5", "ooo", "parallel"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if ByID("fig5") == nil || ByID("nope") != nil {
		t.Error("ByID lookup broken")
	}
}

// TestAllExperimentsRunAndRender executes every experiment at tiny scale
// and checks the tables are well-formed.
func TestAllExperimentsRunAndRender(t *testing.T) {
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(tiny())
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tb := range tables {
				if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Fatalf("table %s empty: %+v", tb.ID, tb)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Fatalf("table %s: row width %d != %d columns", tb.ID, len(row), len(tb.Columns))
					}
				}
				var buf bytes.Buffer
				tb.Render(&buf)
				if !strings.Contains(buf.String(), tb.ID) {
					t.Errorf("render of %s lacks its ID", tb.ID)
				}
			}
		})
	}
}

// TestFig1RelativeDecayColumnsEqual verifies the fig1 table's two
// query-time columns coincide (Lemma 1), directly from the rendered rows.
func TestFig1RelativeDecayColumnsEqual(t *testing.T) {
	tables := ByID("fig1").Run(tiny())
	fig1 := tables[0]
	for _, row := range fig1.Rows {
		if row[1] != row[2] || row[1] != row[3] {
			t.Errorf("relative decay violated in row %v", row)
		}
	}
	// The backward contrast table must NOT have equal columns everywhere.
	contrast := tables[1]
	same := true
	for _, row := range contrast.Rows {
		if row[1] != row[2] {
			same = false
		}
	}
	if same {
		t.Error("backward decay table should show drifting weights")
	}
}

// TestExamplesGolden checks the worked-example experiment reproduces the
// paper's numbers exactly.
func TestExamplesGolden(t *testing.T) {
	tables := ByID("examples").Run(tiny())
	if got := tables[0].Rows[0][1]; got != "0.25" {
		t.Errorf("example1 first weight = %s", got)
	}
	wantW := []string{"0.25", "0.49", "0.09", "0.64", "0.16"}
	for i, row := range tables[0].Rows {
		if row[1] != wantW[i] {
			t.Errorf("example1 weight %d = %s, want %s", i, row[1], wantW[i])
		}
	}
	r2 := tables[1].Rows
	if r2[0][1] != "1.63" || r2[1][1] != "9.67" || r2[2][1] != "5.93" {
		t.Errorf("example2 = %v", r2)
	}
	// Example 3: exactly items 6, 8, 4 (decreasing decayed count).
	r3 := tables[2].Rows
	if len(r3) != 3 || r3[0][0] != "6" || r3[1][0] != "8" || r3[2][0] != "4" {
		t.Errorf("example3 = %v", r3)
	}
}

// TestFig2dSpaceGap verifies the headline space result: EH per-group state
// is at least two orders of magnitude above the 8-byte forward-decay state.
func TestFig2dSpaceGap(t *testing.T) {
	tb := ByID("fig2d").Run(tiny())[0]
	for _, row := range tb.Rows {
		if row[1] != "4 B" || row[2] != "8 B" {
			t.Errorf("constant columns wrong: %v", row)
		}
		if !strings.Contains(row[3], "KB") && !strings.Contains(row[3], "MB") {
			t.Errorf("EH state %q should be kilobytes+", row[3])
		}
	}
}

// TestFig4cSpaceOrdering verifies the sliding-window structure dwarfs the
// forward-decay summaries at every ε.
func TestFig4cSpaceOrdering(t *testing.T) {
	tb := ByID("fig4c").Run(tiny())[0]
	for _, row := range tb.Rows {
		sw := parseBytes(t, row[4])
		fwd := parseBytes(t, row[2])
		if sw < 10*fwd {
			t.Errorf("ε=%s: sliding window %s not ≫ forward %s", row[0], row[4], row[2])
		}
	}
}

func parseBytes(t *testing.T, s string) float64 {
	t.Helper()
	fields := strings.Fields(s)
	if len(fields) != 2 {
		t.Fatalf("bad byte string %q", s)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		t.Fatalf("bad byte string %q: %v", s, err)
	}
	switch fields[1] {
	case "B":
		return v
	case "KB":
		return v * 1024
	case "MB":
		return v * 1024 * 1024
	default:
		t.Fatalf("bad unit in %q", s)
		return 0
	}
}

// TestCPULoadModel sanity-checks the load arithmetic and formatting.
func TestCPULoadModel(t *testing.T) {
	if got := CPULoad(100_000, 1000); got != 10 {
		t.Errorf("100k pkt/s at 1µs/pkt = %v%%, want 10", got)
	}
	if got := fmtLoad(123); !strings.Contains(got, "drops") {
		t.Errorf("overload should flag drops: %q", got)
	}
	if fmtBytes(512) != "512 B" || fmtBytes(2048) != "2.0 KB" || fmtBytes(3<<20) != "3.0 MB" {
		t.Error("fmtBytes wrong")
	}
	if fmtRate(50_000) != "50k" || fmtRate(500) != "500" {
		t.Error("fmtRate wrong")
	}
}
