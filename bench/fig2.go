package bench

import (
	"fmt"

	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/internal/core"
	"forwarddecay/sketch"
	"forwarddecay/udaf"
)

func init() {
	register(Experiment{ID: "fig2a", Title: "Count/Sum CPU load vs stream rate, two-level aggregation on (Figure 2a)",
		Run: func(cfg RunConfig) []Table { return []Table{runFig2Rates(cfg, "fig2a", gsql.Options{})} }})
	register(Experiment{ID: "fig2b", Title: "Count/Sum CPU load vs stream rate, aggregate splitting disabled (Figure 2b)",
		Run: func(cfg RunConfig) []Table {
			return []Table{runFig2Rates(cfg, "fig2b", gsql.Options{DisableTwoLevel: true})}
		}})
	register(Experiment{ID: "fig2c", Title: "Count/Sum throughput vs EH accuracy parameter ε (Figure 2c)", Run: runFig2c})
	register(Experiment{ID: "fig2d", Title: "Space per group vs ε (Figure 2d)", Run: runFig2d})
}

// The four methods of Figure 2, as GSQL queries: undecayed builtins,
// quadratic and exponential forward decay in pure arithmetic (§IV-A), and
// the backward-decay-capable Exponential Histogram UDAF.
const (
	qUndecayed = `select tb, dstIP, destPort, count(*), sum(len)
	              from TCP group by time/60 as tb, dstIP, destPort`
	qFwdPoly = `select tb, dstIP, destPort,
	              sum(float((time % 60)*(time % 60)))/3600,
	              sum(float(len)*(time % 60)*(time % 60))/3600
	            from TCP group by time/60 as tb, dstIP, destPort`
	qFwdExp = `select tb, dstIP, destPort,
	              sum(exp(float(time % 60)/10)),
	              sum(float(len)*exp(float(time % 60)/10))
	            from TCP group by time/60 as tb, dstIP, destPort`
	qBwdEH = `select tb, dstIP, destPort,
	              ehsum(ftime, float(1)), ehsum(ftime, float(len))
	            from TCP group by time/60 as tb, dstIP, destPort`
)

// fig2Methods pairs method names with their queries.
var fig2Methods = []struct {
	name  string
	query string
	eps   float64 // EH epsilon; 0 for ε-independent methods
}{
	{"no decay", qUndecayed, 0},
	{"fwd poly(2)", qFwdPoly, 0},
	{"fwd exp", qFwdExp, 0},
	{"bwd EH(0.1)", qBwdEH, 0.1},
}

// runFig2Rates measures per-tuple cost of each method at each stream rate
// and reports modelled CPU load.
func runFig2Rates(cfg RunConfig, id string, opts gsql.Options) Table {
	rates := []float64{100_000, 200_000, 300_000, 400_000}
	n := cfg.packets(250_000)
	t := Table{
		ID:      id,
		Title:   "CPU load (% of one core) of per-minute per-destination count+sum",
		Columns: []string{"rate (pkt/s)"},
	}
	for _, m := range fig2Methods {
		t.Columns = append(t.Columns, m.name)
	}
	for _, rate := range rates {
		tuples := tupleStream(rate, cfg.Seed, n)
		row := []string{fmtRate(rate)}
		for _, m := range fig2Methods {
			eps := m.eps
			if eps == 0 {
				eps = 0.1
			}
			e := newEngine(udaf.Config{Epsilon: eps, Window: 60, EHDecay: decay.NewSlidingWindow(60)})
			ns := runStatementNsPerTuple(e, m.query, tuples, opts)
			row = append(row, fmtLoad(CPULoad(rate, ns)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"load = measured ns/pkt × rate / 1e7; >100% means the method cannot keep up (tuple drops)")
	if opts.DisableTwoLevel {
		t.Notes = append(t.Notes, "two-level aggregate splitting disabled for all methods (the EH UDAF always runs high-level)")
	}
	return t
}

// runFig2c sweeps the EH accuracy parameter and reports sustainable
// throughput per method (the forward methods do not depend on ε).
func runFig2c(cfg RunConfig) []Table {
	const rate = 100_000
	epss := []float64{0.01, 0.02, 0.05, 0.1}
	n := cfg.packets(200_000)
	tuples := tupleStream(rate, cfg.Seed, n)

	t := Table{
		ID:      "fig2c",
		Title:   "max throughput (kpkt/s) vs ε at 100k pkt/s offered",
		Columns: []string{"epsilon", "no decay", "fwd poly(2)", "fwd exp", "bwd EH(ε)"},
	}
	// ε-independent methods: measure once.
	fixed := make([]float64, 3)
	for i, m := range fig2Methods[:3] {
		e := newEngine(udaf.Config{Epsilon: 0.1})
		ns := runStatementNsPerTuple(e, m.query, tuples, gsql.Options{})
		fixed[i] = 1e6 / ns // kpkt/s
	}
	for _, eps := range epss {
		e := newEngine(udaf.Config{Epsilon: eps, Window: 60})
		ns := runStatementNsPerTuple(e, qBwdEH, tuples, gsql.Options{})
		row := []string{fmt.Sprintf("%.2f", eps)}
		for _, f := range fixed {
			row = append(row, fmt.Sprintf("%.0f", f))
		}
		row = append(row, fmt.Sprintf("%.0f", 1e6/ns))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"undecayed and forward-decayed throughput is ε-independent; the EH baseline degrades as ε shrinks")
	return []Table{t}
}

// runFig2d reports per-group state: undecayed and forward decay store one
// machine word per aggregate; the EH baseline stores a bucket histogram.
func runFig2d(cfg RunConfig) []Table {
	epss := []float64{0.01, 0.02, 0.05, 0.1}
	t := Table{
		ID:      "fig2d",
		Title:   "space per group (log scale in the paper): one hot destination over a 60 s bucket",
		Columns: []string{"epsilon", "no decay", "fwd decay", "bwd EH(ε)"},
	}
	// A hot group receiving 100 pkt/s for one minute.
	rng := core.NewRNG(cfg.Seed)
	var arr []float64
	ts := 0.0
	for ts < 60 {
		ts += rng.ExpFloat64() / 100
		arr = append(arr, ts)
	}
	for _, eps := range epss {
		eh := sketch.NewExpHistogram(eps, 60)
		for _, a := range arr {
			eh.Insert(a, 40+float64(int(a*1e6)%1400))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.2f", eps),
			"4 B", // 32-bit counter, as the paper reports for GS
			"8 B", // one float64 scaled sum
			fmtBytes(eh.SizeBytes()),
		})
	}
	t.Notes = append(t.Notes,
		"queries generate tens of thousands of groups per minute, so KB-per-group is unsustainable (§VIII)")
	return []Table{t}
}
