package bench

import (
	"fmt"

	"forwarddecay/agg"
	"forwarddecay/decay"
)

func init() {
	register(Experiment{
		ID:    "examples",
		Title: "Worked Examples 1–3 of the paper (golden values)",
		Run:   runExamples,
	})
}

// runExamples recomputes the paper's worked examples through the public
// API: Example 1 (decayed weights), Example 2 (count, sum, average) and
// Example 3 (heavy hitters at φ=0.2).
func runExamples(cfg RunConfig) []Table {
	stream := []struct{ ti, v float64 }{
		{105, 4}, {107, 8}, {103, 3}, {108, 6}, {104, 4},
	}
	fd := decay.NewForward(decay.NewPoly(2), 100)
	const tq = 110

	t1 := Table{
		ID:      "example1",
		Title:   "decayed weights at t=110 under g(n)=n², L=100 (paper: .25 .49 .09 .64 .16)",
		Columns: []string{"(ti, vi)", "weight"},
	}
	for _, it := range stream {
		t1.Rows = append(t1.Rows, []string{
			fmt.Sprintf("(%g, %g)", it.ti, it.v),
			fmt.Sprintf("%.2f", fd.Weight(it.ti, tq)),
		})
	}

	s := agg.NewSum(fd)
	for _, it := range stream {
		s.Observe(it.ti, it.v)
	}
	t2 := Table{
		ID:      "example2",
		Title:   "decayed count/sum/average (paper: C=1.63, S=9.67, A=5.93)",
		Columns: []string{"aggregate", "value"},
		Rows: [][]string{
			{"C", fmt.Sprintf("%.2f", s.Count(tq))},
			{"S", fmt.Sprintf("%.2f", s.Value(tq))},
			{"A", fmt.Sprintf("%.2f", s.Mean())},
		},
	}

	hh := agg.NewHeavyHittersK(fd, 16)
	for _, it := range stream {
		hh.Observe(uint64(it.v), it.ti)
	}
	t3 := Table{
		ID:      "example3",
		Title:   "φ=0.2 heavy hitters (paper: items 4, 6, 8; threshold 0.326)",
		Columns: []string{"item", "decayed count"},
	}
	for _, ic := range hh.Query(tq, 0.2) {
		t3.Rows = append(t3.Rows, []string{
			fmt.Sprintf("%d", ic.Key),
			fmt.Sprintf("%.2f", ic.Count),
		})
	}
	t3.Notes = append(t3.Notes,
		fmt.Sprintf("threshold φC = %.3f; d3 = 0.09 is correctly excluded", 0.2*hh.DecayedCount(tq)))
	return []Table{t1, t2, t3}
}
