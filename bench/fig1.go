package bench

import (
	"fmt"

	"forwarddecay/decay"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Relative decay property of forward decay with g(n)=n² (Figure 1)",
		Run:   runFig1,
	})
}

// runFig1 evaluates the weights of items placed at fixed relative positions
// in [L, t] for two different query times: under monomial forward decay the
// columns must be identical (Lemma 1), demonstrating the relative-decay
// property Figure 1 illustrates.
func runFig1(cfg RunConfig) []Table {
	const L = 100.0
	times := []float64{200, 1100} // the paper's t and a much later t'
	gammas := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	fd := decay.NewForward(decay.NewPoly(2), L)

	t := Table{
		ID:      "fig1",
		Title:   "weight of the item at relative age γ between L and t (g(n)=n²)",
		Columns: []string{"gamma", fmt.Sprintf("weight @t=%g", times[0]), fmt.Sprintf("weight @t'=%g", times[1]), "gamma^2"},
	}
	for _, g := range gammas {
		row := []string{fmt.Sprintf("%.2f", g)}
		for _, tq := range times {
			ti := g*tq + (1-g)*L
			row = append(row, fmt.Sprintf("%.4f", fd.Weight(ti, tq)))
		}
		row = append(row, fmt.Sprintf("%.4f", g*g))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"both query-time columns equal γ² exactly: the weight depends only on relative age (Lemma 1)")

	// Contrast: backward polynomial decay has no such property.
	bd := decay.NewBackward(decay.NewAgePoly(2))
	t2 := Table{
		ID:      "fig1-contrast",
		Title:   "the same items under BACKWARD poly decay f(a)=(a+1)^-2: weights drift with t",
		Columns: []string{"gamma", fmt.Sprintf("weight @t=%g", times[0]), fmt.Sprintf("weight @t'=%g", times[1])},
	}
	for _, g := range gammas {
		row := []string{fmt.Sprintf("%.2f", g)}
		for _, tq := range times {
			ti := g*tq + (1-g)*L
			row = append(row, fmt.Sprintf("%.6f", bd.Weight(ti, tq)))
		}
		t2.Rows = append(t2.Rows, row)
	}
	return []Table{t, t2}
}
