package bench

import (
	"fmt"
	"math"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/netgen"
	"forwarddecay/window"
)

func init() {
	register(Experiment{
		ID:    "ooo",
		Title: "Out-of-order delivery: forward decay is exact, backward structures degrade (§VI-B)",
		Run:   runOOO,
	})
}

// runOOO delivers the same traffic with increasing reordering and compares
// each method's decayed sum against the exact value computed from true
// timestamps. Forward decay never looks at arrival order; the Exponential
// Histogram requires non-decreasing timestamps and clamps stragglers,
// accumulating error as reordering grows.
func runOOO(cfg RunConfig) []Table {
	n := cfg.packets(200_000)
	const alpha = 0.05
	fm := decay.NewForward(decay.NewExp(alpha), 0)
	bm := decay.NewAgeExp(alpha)

	t := Table{
		ID:    "ooo",
		Title: "decayed byte sum error vs delivery reordering (exp decay, α=0.05)",
		Columns: []string{"shuffle buffer", "timestamp inversions",
			"forward err %", "backward EH err %"},
	}
	for _, buf := range []int{0, 64, 1024, 16384} {
		gcfg := netgen.DefaultConfig(2000, cfg.Seed)
		gcfg.OutOfOrder = buf
		g := netgen.New(gcfg)

		fs := agg.NewSum(fm)
		bs := window.NewBackwardSum(0.05, 0)
		var exact float64
		var inversions int
		prev := math.Inf(-1)
		pkts := g.Take(make([]netgen.Packet, 0, n), n)
		var now float64
		for _, p := range pkts {
			if p.Time > now {
				now = p.Time
			}
		}
		for _, p := range pkts {
			if p.Time < prev {
				inversions++
			}
			prev = p.Time
			v := float64(p.Len)
			fs.Observe(p.Time, v)
			bs.Observe(p.Time, v) // EH clamps out-of-order timestamps
			exact += v * math.Exp(-alpha*(now-p.Time))
		}
		fErr := 100 * math.Abs(fs.Value(now)-exact) / exact
		bErr := 100 * math.Abs(bs.Value(bm, now)-exact) / exact
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", buf),
			fmt.Sprintf("%d", inversions),
			fmt.Sprintf("%.4f", fErr),
			fmt.Sprintf("%.4f", bErr),
		})
	}
	t.Notes = append(t.Notes,
		"forward decay stores static weights, so delivery order is irrelevant (error stays at float rounding);",
		"the EH must clamp late timestamps to stay well-formed, and its error grows with the reordering depth")
	return []Table{t}
}
