package bench

import (
	"fmt"

	"forwarddecay/netgen"
	"forwarddecay/sample"
)

func init() {
	register(Experiment{ID: "fig3a", Title: "Sampling CPU load vs stream rate (Figure 3a)", Run: runFig3a})
	register(Experiment{ID: "fig3b", Title: "Sampling cost vs sample size (Figure 3b)", Run: runFig3b})
}

// samplingMethods measures the per-packet maintenance cost of the three
// Figure 3 samplers: the undecayed reservoir baseline, priority sampling
// fed exponential forward-decay weights (the PRISAMP UDAF), and Aggarwal's
// biased reservoir (the prior exponential-decay method). Selection cost is
// excluded, as in the paper.
func samplingNs(pkts []netgen.Packet, k int, seed uint64) (res, pri, agg float64) {
	r := sample.NewReservoir[uint32](k, seed)
	res = MeasureNsPerOp(len(pkts), func(i int) { r.Add(pkts[i].SrcIP) })

	p := sample.NewPriority[uint32](k, seed)
	const alpha = 0.1
	pri = MeasureNsPerOp(len(pkts), func(i int) {
		// Exponential forward decay with the landmark at the start of the
		// minute: log-weight α·(t mod 60), exactly the paper's
		// PRISAMP(srcIP, exp(time % 60)) pattern.
		lw := alpha * float64(int64(pkts[i].Time)%60)
		p.Add(pkts[i].SrcIP, lw)
	})

	a := sample.NewAggarwal[uint32](k, seed)
	agg = MeasureNsPerOp(len(pkts), func(i int) { a.Add(pkts[i].SrcIP) })
	return
}

func runFig3a(cfg RunConfig) []Table {
	rates := []float64{100_000, 200_000, 300_000, 400_000}
	const k = 1000
	n := cfg.packets(400_000)
	t := Table{
		ID:      "fig3a",
		Title:   fmt.Sprintf("CPU load (%% of one core) of sample maintenance, k=%d", k),
		Columns: []string{"rate (pkt/s)", "reservoir (no decay)", "priority (fwd exp)", "Aggarwal (bwd exp)"},
	}
	for _, rate := range rates {
		pkts := packetStream(rate, cfg.Seed, n)
		res, pri, agg := samplingNs(pkts, k, cfg.Seed)
		t.Rows = append(t.Rows, []string{
			fmtRate(rate),
			fmtLoad(CPULoad(rate, res)),
			fmtLoad(CPULoad(rate, pri)),
			fmtLoad(CPULoad(rate, agg)),
		})
	}
	t.Notes = append(t.Notes,
		"all three scale to the full rate; forward decay adds arbitrary timestamps and arrival orders at no extra cost (§VIII)")
	return []Table{t}
}

func runFig3b(cfg RunConfig) []Table {
	const rate = 200_000
	sizes := []int{100, 1000, 10_000, 100_000}
	n := cfg.packets(400_000)
	pkts := packetStream(rate, cfg.Seed, n)
	t := Table{
		ID:      "fig3b",
		Title:   "per-packet cost (ns) vs sample size at 200k pkt/s",
		Columns: []string{"sample size", "reservoir (no decay)", "priority (fwd exp)", "Aggarwal (bwd exp)"},
	}
	for _, k := range sizes {
		res, pri, agg := samplingNs(pkts, k, cfg.Seed)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%.0f", res),
			fmt.Sprintf("%.0f", pri),
			fmt.Sprintf("%.0f", agg),
		})
	}
	t.Notes = append(t.Notes,
		"maintenance cost is essentially independent of the sample size for all three methods (Figure 3b)")
	return []Table{t}
}
