package metrics

import (
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	cs := NewCounterSet()
	if got := cs.Get("never"); got != 0 {
		t.Fatalf("Get on unknown counter = %d", got)
	}
	cs.Add("a", 3)
	cs.Counter("b").Inc()
	cs.Add("a", 2)
	if got := cs.Get("a"); got != 5 {
		t.Errorf("a = %d, want 5", got)
	}
	if got := cs.Get("b"); got != 1 {
		t.Errorf("b = %d, want 1", got)
	}
	snap := cs.Snapshot()
	if len(snap) != 2 || snap["a"] != 5 || snap["b"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
	names := cs.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v, want sorted [a b]", names)
	}
	// Interned handle and registry view stay the same counter.
	c := cs.Counter("a")
	c.Add(10)
	if got := cs.Get("a"); got != 15 {
		t.Errorf("interned handle diverged: %d", got)
	}
}

// TestCounterSetConcurrent hammers interning and bumping from many
// goroutines; run under -race this is the thread-safety contract.
func TestCounterSetConcurrent(t *testing.T) {
	cs := NewCounterSet()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				cs.Add("shared", 1)
				cs.Counter("own").Inc()
			}
		}()
	}
	wg.Wait()
	if got := cs.Get("shared"); got != workers*per {
		t.Errorf("shared = %d, want %d", got, workers*per)
	}
	if got := cs.Get("own"); got != workers*per {
		t.Errorf("own = %d, want %d", got, workers*per)
	}
}
