package metrics

// Gauges complement the monotonic counters: point-in-time levels (attached
// query count, distinct shared subexpressions, a hit ratio) that move both
// ways. Stored as float64 bits behind one atomic word so readers never see
// a torn value; the registry mirrors CounterSet so expositions can walk
// both with the same stable-keyed snapshot idiom.

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Gauge is one instantaneous float64 metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the current level.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeSet is a named registry of gauges, safe for concurrent use.
// The zero value is NOT ready; use NewGaugeSet.
type GaugeSet struct {
	mu sync.RWMutex
	m  map[string]*Gauge
}

// NewGaugeSet returns an empty registry.
func NewGaugeSet() *GaugeSet {
	return &GaugeSet{m: map[string]*Gauge{}}
}

// Gauge interns and returns the gauge for a name, creating it at zero on
// first use.
func (gs *GaugeSet) Gauge(name string) *Gauge {
	gs.mu.RLock()
	g := gs.m[name]
	gs.mu.RUnlock()
	if g != nil {
		return g
	}
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if g = gs.m[name]; g == nil {
		g = &Gauge{}
		gs.m[name] = g
	}
	return g
}

// Set stores a named gauge's level, interning it if needed.
func (gs *GaugeSet) Set(name string, v float64) { gs.Gauge(name).Set(v) }

// Delete removes a named gauge from the registry so short-lived series
// (per-query attribution under catalog churn) do not accumulate forever.
// Deleting an absent name is a no-op. Holders of the *Gauge pointer may
// keep using it; it is simply no longer exposed.
func (gs *GaugeSet) Delete(name string) {
	gs.mu.Lock()
	delete(gs.m, name)
	gs.mu.Unlock()
}

// Get returns a named gauge's level (0 for names never interned).
func (gs *GaugeSet) Get(name string) float64 {
	gs.mu.RLock()
	defer gs.mu.RUnlock()
	if g := gs.m[name]; g != nil {
		return g.Value()
	}
	return 0
}

// Snapshot returns every gauge's current level.
func (gs *GaugeSet) Snapshot() map[string]float64 {
	gs.mu.RLock()
	defer gs.mu.RUnlock()
	out := make(map[string]float64, len(gs.m))
	for k, g := range gs.m {
		out[k] = g.Value()
	}
	return out
}

// Names returns the registered gauge names, sorted, for stable exposition
// order.
func (gs *GaugeSet) Names() []string {
	gs.mu.RLock()
	defer gs.mu.RUnlock()
	out := make([]string, 0, len(gs.m))
	for k := range gs.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
