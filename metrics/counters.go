package metrics

// A minimal scrapeable counter registry, the operational companion to the
// decaying Reservoir: long-running components (the distrib elastic cluster,
// an ingest listener, a gsql service wrapper) register monotonically
// increasing health counters here so one scrape loop can export them
// alongside RuntimeStats. Counters are cheap enough to bump on hot-ish
// paths (one atomic add once interned) and the snapshot is a stable-keyed
// map ready for a text or JSON exposition.

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is one monotonically increasing uint64 metric.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.v.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// CounterSet is a named registry of counters, safe for concurrent use.
// The zero value is NOT ready; use NewCounterSet.
type CounterSet struct {
	mu sync.RWMutex
	m  map[string]*Counter
}

// NewCounterSet returns an empty registry.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: map[string]*Counter{}}
}

// Counter interns and returns the counter for a name, creating it at zero
// on first use. Callers that bump a counter repeatedly should hold on to
// the returned *Counter rather than re-interning per update.
func (cs *CounterSet) Counter(name string) *Counter {
	cs.mu.RLock()
	c := cs.m[name]
	cs.mu.RUnlock()
	if c != nil {
		return c
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if c = cs.m[name]; c == nil {
		c = &Counter{}
		cs.m[name] = c
	}
	return c
}

// Add bumps a named counter by delta, interning it if needed.
func (cs *CounterSet) Add(name string, delta uint64) { cs.Counter(name).Add(delta) }

// Get returns a named counter's value (0 for names never interned).
func (cs *CounterSet) Get(name string) uint64 {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	if c := cs.m[name]; c != nil {
		return c.Value()
	}
	return 0
}

// Snapshot returns every counter's current value.
func (cs *CounterSet) Snapshot() map[string]uint64 {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	out := make(map[string]uint64, len(cs.m))
	for k, c := range cs.m {
		out[k] = c.Value()
	}
	return out
}

// Names returns the registered counter names, sorted, for stable
// exposition order.
func (cs *CounterSet) Names() []string {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	out := make([]string, 0, len(cs.m))
	for k := range cs.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
