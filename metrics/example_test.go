package metrics_test

import (
	"fmt"
	"time"

	"forwarddecay/metrics"
)

// A decaying reservoir forgets old latency regimes within a few half-lives.
func ExampleReservoir() {
	clock := time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)
	r := metrics.NewReservoir(256, 10*time.Second,
		metrics.WithClock(func() time.Time { return clock }))

	for i := 0; i < 5000; i++ {
		r.Update(10) // healthy: 10 ms
		clock = clock.Add(10 * time.Millisecond)
	}
	for i := 0; i < 5000; i++ {
		r.Update(100) // degraded: 100 ms
		clock = clock.Add(10 * time.Millisecond)
	}
	s := r.Snapshot()
	fmt.Println(s.Count(), s.Median() > 90)
	// Output: 10000 true
}
