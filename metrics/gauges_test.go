package metrics

import (
	"sync"
	"testing"
)

func TestGaugeSetBasics(t *testing.T) {
	gs := NewGaugeSet()
	if gs.Get("missing") != 0 {
		t.Fatal("unseen gauge must read 0")
	}
	gs.Set("ratio", 0.75)
	gs.Set("queries", 1000)
	gs.Set("ratio", 0.5) // gauges move both ways
	if v := gs.Get("ratio"); v != 0.5 {
		t.Fatalf("ratio = %v, want 0.5", v)
	}
	if v := gs.Gauge("queries").Value(); v != 1000 {
		t.Fatalf("queries = %v, want 1000", v)
	}
	snap := gs.Snapshot()
	if len(snap) != 2 || snap["ratio"] != 0.5 || snap["queries"] != 1000 {
		t.Fatalf("snapshot = %v", snap)
	}
	names := gs.Names()
	if len(names) != 2 || names[0] != "queries" || names[1] != "ratio" {
		t.Fatalf("names = %v, want sorted [queries ratio]", names)
	}
}

func TestGaugeSetConcurrent(t *testing.T) {
	gs := NewGaugeSet()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				gs.Set("shared", float64(i))
				_ = gs.Get("shared")
				_ = gs.Snapshot()
			}
		}(w)
	}
	wg.Wait()
	if v := gs.Get("shared"); v != 999 {
		t.Fatalf("final level = %v, want 999", v)
	}
}
