package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a controllable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestReservoirTracksRecentRegime(t *testing.T) {
	clk := newFakeClock()
	r := NewReservoir(200, 30*time.Second, WithClock(clk.now), WithSeed(7))
	// Old regime: values near 10 for two minutes.
	for i := 0; i < 2000; i++ {
		r.Update(10 + float64(i%3))
		clk.advance(60 * time.Millisecond)
	}
	// New regime: values near 1000 for four half-lives.
	for i := 0; i < 2000; i++ {
		r.Update(1000 + float64(i%3))
		clk.advance(60 * time.Millisecond)
	}
	s := r.Snapshot()
	if s.Count() != 4000 {
		t.Fatalf("count = %d", s.Count())
	}
	if med := s.Median(); med < 900 {
		t.Errorf("median %v still dominated by the old regime", med)
	}
	// The 5th percentile may keep a little history, but the bulk is new.
	if q := s.Quantile(0.25); q < 900 {
		t.Errorf("p25 %v too old", q)
	}
	if s.Max() < 1000 || s.Min() > 1002 && s.Min() < 10 {
		t.Errorf("min/max bracket wrong: %v/%v", s.Min(), s.Max())
	}
}

func TestReservoirUndersizedStreamExact(t *testing.T) {
	clk := newFakeClock()
	r := NewReservoir(100, time.Minute, WithClock(clk.now))
	for _, v := range []float64{5, 1, 9, 3} {
		r.Update(v)
		clk.advance(time.Second)
	}
	s := r.Snapshot()
	if s.Size() != 4 {
		t.Fatalf("size = %d", s.Size())
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Mean(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
	if got := s.Median(); math.Abs(got-4) > 1e-12 {
		t.Errorf("median = %v (interpolated)", got)
	}
	if got := s.StdDev(); math.Abs(got-math.Sqrt((0.25+12.25+20.25+2.25)/3*4/4)) > 1 {
		t.Errorf("stddev = %v", got)
	}
	vals := s.Values()
	if len(vals) != 4 || vals[0] != 1 || vals[3] != 9 {
		t.Errorf("values = %v", vals)
	}
}

func TestReservoirEmptySnapshot(t *testing.T) {
	r := NewReservoir(10, time.Second)
	s := r.Snapshot()
	if s.Size() != 0 || s.Count() != 0 {
		t.Fatal("empty reservoir has content")
	}
	for _, v := range []float64{s.Median(), s.Min(), s.Max(), s.Mean(), s.StdDev(), s.Quantile(0.9)} {
		if !math.IsNaN(v) {
			t.Errorf("empty snapshot stat = %v, want NaN", v)
		}
	}
}

func TestReservoirLongRunNoOverflow(t *testing.T) {
	// A half-life of one second over a simulated day: raw static weights
	// span e^(86400·ln2) — far past float64 — but the log-domain sampler
	// never overflows.
	clk := newFakeClock()
	r := NewReservoir(50, time.Second, WithClock(clk.now))
	for i := 0; i < 86_400; i++ {
		r.Update(float64(i % 100))
		clk.advance(time.Second)
	}
	s := r.Snapshot()
	if s.Size() != 50 {
		t.Fatalf("size = %d", s.Size())
	}
	if math.IsNaN(s.Median()) || math.IsInf(s.Median(), 0) {
		t.Errorf("median = %v", s.Median())
	}
}

func TestReservoirConcurrent(t *testing.T) {
	r := NewReservoir(100, time.Minute)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				r.Update(float64(i))
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if r.Count() != 40000 {
		t.Errorf("count = %d", r.Count())
	}
}

func TestReservoirOutOfOrderUpdates(t *testing.T) {
	clk := newFakeClock()
	r := NewReservoir(100, 10*time.Second, WithClock(clk.now), WithSeed(3))
	base := clk.now()
	// Deliver timestamps shuffled: recent values (800+) must dominate.
	for i := 0; i < 3000; i++ {
		ts := base.Add(time.Duration((i*7919)%3000) * 100 * time.Millisecond) // 0..300 s scrambled
		v := float64((i * 7919) % 3000)
		r.UpdateAt(v/10, ts) // value correlates with timestamp: v = seconds·10⁻¹...
	}
	s := r.Snapshot()
	if med := s.Median(); med < 100 {
		t.Errorf("median %v; recent (high-valued) items should dominate", med)
	}
}

func TestReservoirQuantileEdges(t *testing.T) {
	clk := newFakeClock()
	r := NewReservoir(10, time.Minute, WithClock(clk.now))
	for i := 1; i <= 5; i++ {
		r.Update(float64(i))
	}
	s := r.Snapshot()
	if s.Quantile(0) != 1 || s.Quantile(1) != 5 {
		t.Errorf("edge quantiles: %v/%v", s.Quantile(0), s.Quantile(1))
	}
	if s.Quantile(-1) != 1 || s.Quantile(2) != 5 {
		t.Errorf("clamped quantiles: %v/%v", s.Quantile(-1), s.Quantile(2))
	}
}

func TestReservoirConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"size":     func() { NewReservoir(0, time.Second) },
		"halfLife": func() { NewReservoir(10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestReservoirModelAccessor(t *testing.T) {
	r := NewReservoir(10, 10*time.Second)
	m := r.Model()
	if m.Func == nil {
		t.Fatal("no model")
	}
	// α = ln2 / 10s.
	if got := m.Weight(0, 10); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("weight after one half-life = %v", got)
	}
}
