// Package metrics provides a production-style, thread-safe
// exponentially-decaying reservoir on top of the forward-decay sampling
// machinery — the construction popularized by metrics libraries (a decaying
// reservoir keeps a fixed-size sample whose inclusion probabilities decay
// exponentially with age, so percentile snapshots reflect roughly the last
// few half-lives of data).
//
// Internally this is exactly §V-B of the forward-decay paper: weighted
// reservoir sampling with static weights exp(α·(t−L)), maintained in the
// log domain so no periodic rescaling pass is ever needed — an improvement
// over landmark-rescaling implementations, which must stop the world to
// renormalize weights.
package metrics

import (
	"math"
	"sort"
	"sync"
	"time"

	"forwarddecay/decay"
	"forwarddecay/sample"
)

// Reservoir is a fixed-size, exponentially-decaying sample of float64
// observations. It is safe for concurrent use.
type Reservoir struct {
	mu    sync.Mutex
	model decay.Forward
	s     *sample.WRS[float64]
	now   func() time.Time
	start time.Time
	count uint64
	seed  uint64
}

// Option configures a Reservoir.
type Option func(*Reservoir)

// WithClock substitutes the time source (for tests and simulations).
func WithClock(now func() time.Time) Option {
	return func(r *Reservoir) { r.now = now }
}

// WithSeed fixes the sampling seed (defaults to 1; the sample distribution
// is the same for any seed, so a fixed default keeps behaviour
// reproducible).
func WithSeed(seed uint64) Option {
	return func(r *Reservoir) { r.seed = seed }
}

// NewReservoir returns a decaying reservoir holding up to size
// observations with the given half-life: an observation one half-life old
// is half as likely to be in the sample as a fresh one. It panics if
// size < 1 or halfLife <= 0.
func NewReservoir(size int, halfLife time.Duration, opts ...Option) *Reservoir {
	if size < 1 {
		panic("metrics: reservoir size must be positive")
	}
	if halfLife <= 0 {
		panic("metrics: half-life must be positive")
	}
	r := &Reservoir{now: time.Now, seed: 1}
	for _, o := range opts {
		o(r)
	}
	r.start = r.now()
	alpha := math.Ln2 / halfLife.Seconds()
	r.model = decay.NewForward(decay.Exp{Alpha: alpha}, 0)
	r.s = sample.NewWRS[float64](size, r.seed)
	return r
}

// Update records an observation at the current time.
func (r *Reservoir) Update(v float64) { r.UpdateAt(v, r.now()) }

// Model exposes the underlying forward decay model, letting advanced
// callers inspect the decay rate.
func (r *Reservoir) Model() decay.Forward { return r.model }

// UpdateAt records an observation with an explicit timestamp. Out-of-order
// timestamps are fine (§VI-B of the paper).
func (r *Reservoir) UpdateAt(v float64, t time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.count++
	r.s.Add(v, r.model.LogStaticWeight(t.Sub(r.start).Seconds()))
}

// Count returns the total number of observations recorded.
func (r *Reservoir) Count() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Snapshot returns an immutable view of the current sample for quantile
// and moment queries.
func (r *Reservoir) Snapshot() Snapshot {
	r.mu.Lock()
	vals := r.s.Sample() // copies
	count := r.count
	r.mu.Unlock()
	sort.Float64s(vals)
	return Snapshot{values: vals, count: count}
}

// Snapshot is a point-in-time view of a Reservoir's sample.
type Snapshot struct {
	values []float64 // sorted
	count  uint64
}

// Size returns the number of sampled observations in the snapshot.
func (s Snapshot) Size() int { return len(s.values) }

// Count returns the total observations recorded by the reservoir.
func (s Snapshot) Count() uint64 { return s.count }

// Quantile returns the φ-quantile of the sample (0 ≤ φ ≤ 1), or NaN when
// empty.
func (s Snapshot) Quantile(phi float64) float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	if phi <= 0 {
		return s.values[0]
	}
	if phi >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := phi * float64(len(s.values)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 < len(s.values) {
		return s.values[lo]*(1-frac) + s.values[lo+1]*frac
	}
	return s.values[lo]
}

// Median returns the 50th percentile.
func (s Snapshot) Median() float64 { return s.Quantile(0.5) }

// Min returns the smallest sampled value, or NaN when empty.
func (s Snapshot) Min() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	return s.values[0]
}

// Max returns the largest sampled value, or NaN when empty.
func (s Snapshot) Max() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	return s.values[len(s.values)-1]
}

// Mean returns the sample mean, or NaN when empty.
func (s Snapshot) Mean() float64 {
	if len(s.values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation, or NaN when empty.
func (s Snapshot) StdDev() float64 {
	n := len(s.values)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Values returns a copy of the sorted sampled values.
func (s Snapshot) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}
