package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"

	"forwarddecay/bench"
)

// benchReport is the BENCH_*.json envelope. BENCH_BASELINE.json set the
// schema; -bench-json emits the same shape so files are diffable across PRs.
type benchReport struct {
	Description string              `json:"description"`
	Command     string              `json:"command"`
	Environment benchEnvironment    `json:"environment"`
	Benchmarks  []bench.MicroResult `json:"benchmarks"`
}

type benchEnvironment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`
}

// regressionLimit is the ns/op ratio above which the gate fails: a hot-path
// benchmark may not run more than 25% slower than the committed baseline.
const regressionLimit = 1.25

// gateRetries is how many times an apparently-regressed benchmark is
// re-measured before the gate fails it. The gate keeps the best (minimum)
// ns/op across attempts: min-of-N estimates the true cost of the code, and a
// genuine regression stays above the limit on every attempt, while a one-off
// scheduler spike on the single-core CI box does not.
const gateRetries = 2

// runBenchJSON runs the micro suite, writes the JSON report to stdout, and
// (when a baseline file is given) fails on >25% ns/op regressions.
func runBenchJSON(baselinePath, benchtime, description string) error {
	results, err := bench.RunMicro(benchtime, func(pkg, name string) {
		fmt.Fprintf(os.Stderr, "bench %s %s\n", pkg, name)
	})
	if err != nil {
		return err
	}
	report := benchReport{
		Description: description,
		Command:     fmt.Sprintf("fdbench -bench-json -benchtime %s", benchtime),
		Environment: benchEnvironment{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPU:        cpuModel(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Note:       "single-core container: sharded variants measure routing+channel overhead, not parallel speedup",
		},
		Benchmarks: results,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if baselinePath == "" {
		return nil
	}
	return compareBaseline(baselinePath, results)
}

// compareBaseline checks every measured benchmark that also appears in the
// baseline file and reports the delta; any ns/op ratio above regressionLimit
// fails the gate. Benchmarks present only on one side are ignored — the
// baseline keeps entries (e.g. sharded sweeps) the micro suite does not
// re-measure.
func compareBaseline(path string, results []bench.MicroResult) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseline := make(map[string]bench.MicroResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Package+"."+b.Name] = b
	}
	var regressions []string
	fmt.Fprintf(os.Stderr, "\n%-24s %-36s %12s %12s %8s\n", "package", "benchmark", "base ns/op", "now ns/op", "delta")
	for _, r := range results {
		b, ok := baseline[r.Package+"."+r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		// Retry apparent regressions and keep the best observation: a real
		// slowdown persists across attempts, a scheduler spike does not.
		for retry := 0; r.NsPerOp/b.NsPerOp > regressionLimit && retry < gateRetries; retry++ {
			again, ok := bench.MeasureOne(r.Package, r.Name)
			if !ok {
				break
			}
			fmt.Fprintf(os.Stderr, "retry %s.%s: %.1f ns/op (was %.1f)\n",
				r.Package, r.Name, again.NsPerOp, r.NsPerOp)
			if again.NsPerOp < r.NsPerOp {
				r.NsPerOp = again.NsPerOp
			}
		}
		ratio := r.NsPerOp / b.NsPerOp
		mark := ""
		if ratio > regressionLimit {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s.%s: %.1f ns/op vs baseline %.1f (%+.0f%%)",
					r.Package, r.Name, r.NsPerOp, b.NsPerOp, (ratio-1)*100))
		}
		fmt.Fprintf(os.Stderr, "%-24s %-36s %12.1f %12.1f %+7.0f%%%s\n",
			r.Package, r.Name, b.NsPerOp, r.NsPerOp, (ratio-1)*100, mark)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("perf gate: %d benchmark(s) regressed >%d%% vs %s:\n  %s",
			len(regressions), int((regressionLimit-1)*100), path, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "\nperf gate: no benchmark regressed >%d%% vs %s\n", int((regressionLimit-1)*100), path)
	return nil
}

// cpuModel best-effort reads the CPU model string for the report header.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}
