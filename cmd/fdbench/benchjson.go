package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"forwarddecay/bench"
)

// benchReport is the BENCH_*.json envelope. BENCH_BASELINE.json set the
// schema; -bench-json emits the same shape so files are diffable across PRs.
type benchReport struct {
	Description string                  `json:"description"`
	Command     string                  `json:"command"`
	Environment benchEnvironment        `json:"environment"`
	Benchmarks  []bench.MicroResult     `json:"benchmarks,omitempty"`
	Scaling     []bench.MultiScalePoint `json:"scaling,omitempty"`
	Churn       []bench.ChurnPoint      `json:"churn,omitempty"`
}

type benchEnvironment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	CPU        string `json:"cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`
}

// regressionLimit is the ns/op ratio above which the gate fails: a hot-path
// benchmark may not run more than 25% slower than the committed baseline.
const regressionLimit = 1.25

// gateRetries is how many times an apparently-regressed benchmark is
// re-measured before the gate fails it. The gate keeps the best (minimum)
// ns/op across attempts: min-of-N estimates the true cost of the code, and a
// genuine regression stays above the limit on every attempt, while a one-off
// scheduler spike on the single-core CI box does not.
const gateRetries = 2

// runBenchJSON runs the micro suite, the multi-query scaling sweep, and/or
// the catalog-churn sweep, writes the JSON report to stdout, and fails on
// >25% ns/op regressions against a baseline or on a broken scaling or churn
// invariant.
func runBenchJSON(baselinePath, benchtime, description string, micro bool, queries string, scaleTuples int, maxRatio float64, churn string, churnPairs int, churnMaxRatio float64, seed uint64) error {
	command := "fdbench"
	if micro {
		command = fmt.Sprintf("fdbench -bench-json -benchtime %s", benchtime)
	}
	report := benchReport{
		Description: description,
		Command:     command,
		Environment: benchEnvironment{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			CPU:        cpuModel(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Note:       "single-core container: sharded variants measure routing+channel overhead, not parallel speedup",
		},
	}
	if micro {
		results, err := bench.RunMicro(benchtime, func(pkg, name string) {
			fmt.Fprintf(os.Stderr, "bench %s %s\n", pkg, name)
		})
		if err != nil {
			return err
		}
		report.Benchmarks = results
	}
	if queries != "" {
		counts, err := parseCounts(queries)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scaling sweep: %d tuples/point at query counts %v\n", scaleTuples, counts)
		points, err := bench.RunMultiScale(counts, scaleTuples, seed)
		if err != nil {
			return err
		}
		report.Scaling = points
		report.Command = fmt.Sprintf("%s -queries %s -scale-tuples %d", report.Command, queries, scaleTuples)
	}
	if churn != "" {
		catalogs, err := parseCounts(churn)
		if err != nil {
			return fmt.Errorf("bad -churn list: %w", err)
		}
		fmt.Fprintf(os.Stderr, "churn sweep: %d attach/detach pairs at catalog sizes %v\n", churnPairs, catalogs)
		points, err := bench.RunChurn(catalogs, churnPairs, seed)
		if err != nil {
			return err
		}
		report.Churn = points
		report.Command = fmt.Sprintf("%s -churn %s -churn-pairs %d", report.Command, churn, churnPairs)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	if err := checkScaling(report.Scaling, maxRatio); err != nil {
		// One retry before failing the gate: re-sweep and keep each point's
		// best lap. A genuine scaling break persists; a scheduler or GC
		// spike on the single-core CI box does not.
		counts := make([]int, len(report.Scaling))
		for i, p := range report.Scaling {
			counts[i] = p.Queries
		}
		fmt.Fprintf(os.Stderr, "retrying scaling sweep: %v\n", err)
		again, rerr := bench.RunMultiScale(counts, scaleTuples, seed)
		if rerr != nil {
			return rerr
		}
		for i := range report.Scaling {
			if again[i].NsPerTuple < report.Scaling[i].NsPerTuple {
				report.Scaling[i] = again[i]
			}
		}
		if err := checkScaling(report.Scaling, maxRatio); err != nil {
			return err
		}
	}
	if err := checkChurn(report.Churn, churnMaxRatio); err != nil {
		// Same retry-and-keep-best discipline as the scaling gate: an
		// O(catalog) recompile persists across laps, a scheduler spike on the
		// single-core CI box does not.
		catalogs := make([]int, len(report.Churn))
		for i, p := range report.Churn {
			catalogs[i] = p.Catalog
		}
		fmt.Fprintf(os.Stderr, "retrying churn sweep: %v\n", err)
		again, rerr := bench.RunChurn(catalogs, churnPairs, seed)
		if rerr != nil {
			return rerr
		}
		for i := range report.Churn {
			if again[i].AttachNs+again[i].DetachNs < report.Churn[i].AttachNs+report.Churn[i].DetachNs {
				report.Churn[i] = again[i]
			}
		}
		if err := checkChurn(report.Churn, churnMaxRatio); err != nil {
			return err
		}
	}
	if !micro || baselinePath == "" {
		return nil
	}
	return compareBaseline(baselinePath, report.Benchmarks)
}

// parseCounts parses the -queries list ("1,10,100,1000").
func parseCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -queries count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// checkScaling prints the sweep table and enforces the scaling invariant:
// the largest query count's per-tuple cost must stay under maxRatio times
// the count-10 point (falling back to the smallest measured count when 10
// was not swept). A shared runtime that degraded to per-query fan-out costs
// ~100x here, so the 2x ci.sh gate has a wide margin on both sides.
func checkScaling(points []bench.MultiScalePoint, maxRatio float64) error {
	if len(points) == 0 {
		return nil
	}
	fmt.Fprintf(os.Stderr, "\n%-10s %14s %10s %14s %12s\n", "queries", "ns/tuple", "classes", "shared exprs", "hit ratio")
	for _, p := range points {
		fmt.Fprintf(os.Stderr, "%-10d %14.1f %10d %14d %12.3f\n",
			p.Queries, p.NsPerTuple, p.Classes, p.DistinctExprs, p.SharedHitRatio)
	}
	if maxRatio <= 0 {
		return nil
	}
	base, top := points[0], points[0]
	for _, p := range points {
		if p.Queries == 10 || (base.Queries != 10 && p.Queries < base.Queries) {
			base = p
		}
		if p.Queries > top.Queries {
			top = p
		}
	}
	if top.Queries == base.Queries {
		return fmt.Errorf("scaling gate: need at least two distinct query counts, got %d", top.Queries)
	}
	ratio := top.NsPerTuple / base.NsPerTuple
	if ratio > maxRatio {
		return fmt.Errorf("scaling gate: %d queries cost %.1f ns/tuple = %.2fx the %d-query cost (%.1f); limit %.2fx",
			top.Queries, top.NsPerTuple, ratio, base.Queries, base.NsPerTuple, maxRatio)
	}
	fmt.Fprintf(os.Stderr, "\nscaling gate: %d queries at %.2fx the per-tuple cost of %d (limit %.2fx)\n",
		top.Queries, ratio, base.Queries, maxRatio)
	return nil
}

// checkChurn prints the churn table and enforces the incremental-rebuild
// invariant: the largest catalog's combined attach+detach cost must stay
// under maxRatio times the smallest catalog's. Attaching a query is parse +
// plan + intern + splice-one-member, none of which depends on how many
// queries are already standing; a runtime that recompiled its predicate
// classes per mutation would cost ~100x at the 1000-query point, so the
// 3x ci.sh gate has a wide margin on both sides.
func checkChurn(points []bench.ChurnPoint, maxRatio float64) error {
	if len(points) == 0 {
		return nil
	}
	fmt.Fprintf(os.Stderr, "\n%-10s %14s %14s\n", "catalog", "attach ns", "detach ns")
	for _, p := range points {
		fmt.Fprintf(os.Stderr, "%-10d %14.1f %14.1f\n", p.Catalog, p.AttachNs, p.DetachNs)
	}
	if maxRatio <= 0 {
		return nil
	}
	base, top := points[0], points[0]
	for _, p := range points {
		if p.Catalog < base.Catalog {
			base = p
		}
		if p.Catalog > top.Catalog {
			top = p
		}
	}
	if top.Catalog == base.Catalog {
		return fmt.Errorf("churn gate: need at least two distinct catalog sizes, got %d", top.Catalog)
	}
	ratio := (top.AttachNs + top.DetachNs) / (base.AttachNs + base.DetachNs)
	if ratio > maxRatio {
		return fmt.Errorf("churn gate: attach+detach at %d queries costs %.1f ns = %.2fx the %d-query cost (%.1f); limit %.2fx — catalog mutation is no longer O(query)",
			top.Catalog, top.AttachNs+top.DetachNs, ratio, base.Catalog, base.AttachNs+base.DetachNs, maxRatio)
	}
	fmt.Fprintf(os.Stderr, "\nchurn gate: attach+detach at %d queries is %.2fx the %d-query cost (limit %.2fx)\n",
		top.Catalog, ratio, base.Catalog, maxRatio)
	return nil
}

// compareBaseline checks every measured benchmark that also appears in the
// baseline file and reports the delta; any ns/op ratio above regressionLimit
// fails the gate. Benchmarks present only on one side are ignored — the
// baseline keeps entries (e.g. sharded sweeps) the micro suite does not
// re-measure.
func compareBaseline(path string, results []bench.MicroResult) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	baseline := make(map[string]bench.MicroResult, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseline[b.Package+"."+b.Name] = b
	}
	var regressions []string
	fmt.Fprintf(os.Stderr, "\n%-24s %-36s %12s %12s %8s\n", "package", "benchmark", "base ns/op", "now ns/op", "delta")
	for _, r := range results {
		b, ok := baseline[r.Package+"."+r.Name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		// Retry apparent regressions and keep the best observation: a real
		// slowdown persists across attempts, a scheduler spike does not.
		for retry := 0; r.NsPerOp/b.NsPerOp > regressionLimit && retry < gateRetries; retry++ {
			again, ok := bench.MeasureOne(r.Package, r.Name)
			if !ok {
				break
			}
			fmt.Fprintf(os.Stderr, "retry %s.%s: %.1f ns/op (was %.1f)\n",
				r.Package, r.Name, again.NsPerOp, r.NsPerOp)
			if again.NsPerOp < r.NsPerOp {
				r.NsPerOp = again.NsPerOp
			}
		}
		ratio := r.NsPerOp / b.NsPerOp
		mark := ""
		if ratio > regressionLimit {
			mark = "  REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s.%s: %.1f ns/op vs baseline %.1f (%+.0f%%)",
					r.Package, r.Name, r.NsPerOp, b.NsPerOp, (ratio-1)*100))
		}
		fmt.Fprintf(os.Stderr, "%-24s %-36s %12.1f %12.1f %+7.0f%%%s\n",
			r.Package, r.Name, b.NsPerOp, r.NsPerOp, (ratio-1)*100, mark)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("perf gate: %d benchmark(s) regressed >%d%% vs %s:\n  %s",
			len(regressions), int((regressionLimit-1)*100), path, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "\nperf gate: no benchmark regressed >%d%% vs %s\n", int((regressionLimit-1)*100), path)
	return nil
}

// cpuModel best-effort reads the CPU model string for the report header.
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}
