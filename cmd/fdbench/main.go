// Command fdbench regenerates the tables and figures of the forward-decay
// paper's evaluation on the synthetic substrate.
//
// Usage:
//
//	fdbench [-scale f] [-seed n] [-shards n] list
//	fdbench [-scale f] [-seed n] [-shards n] all
//	fdbench [-scale f] [-seed n] [-shards n] <experiment-id> [<experiment-id>...]
//
// Experiment ids are the paper's figure numbers (fig1, fig2a…fig2d,
// fig3a, fig3b, fig4a…fig4d, fig5) plus "examples" for the worked examples
// and "parallel" for the sharded-runtime throughput sweep.
// Scale 1.0 (the default) runs the full workloads; smaller values run
// proportionally smaller ones. -shards pins the parallel experiment to one
// shard count instead of sweeping 1, 2, 4, 8.
//
// A separate mode backs the ci.sh perf-regression gate:
//
//	fdbench -bench-json [-benchtime d] [-baseline BENCH_BASELINE.json]
//
// runs the hot-path micro-benchmark suite (bench.MicroBenchmarks), writes a
// BENCH_*.json report to stdout, and — when -baseline is given — exits
// non-zero if any shared benchmark runs >25% slower (ns/op) than the
// committed baseline.
//
// The multi-query scaling sweep measures the shared runtime's per-tuple
// cost against the number of standing queries:
//
//	fdbench -queries 1,10,100,1000 [-scale-tuples n] [-max-ratio 2.0]
//
// With -max-ratio it enforces the scaling invariant (the largest count's
// per-tuple cost must stay under that multiple of the count-10 point); ci.sh
// gates on 2.0. Combined with -bench-json the sweep lands in the same JSON
// report under "scaling".
//
// The catalog-churn sweep measures attach/detach latency against the number
// of standing queries already attached:
//
//	fdbench -churn 10,1000 [-churn-pairs n] [-churn-max-ratio 3.0]
//
// With -churn-max-ratio it enforces the incremental-rebuild invariant (the
// largest catalog's per-mutation cost must stay under that multiple of the
// smallest catalog's — O(query), not O(catalog)); ci.sh gates on 3.0 against
// the committed BENCH_PR10.json sweep.
package main

import (
	"flag"
	"fmt"
	"os"

	"forwarddecay/bench"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = full experiment)")
	seed := flag.Uint64("seed", 20090329, "deterministic workload seed")
	shards := flag.Int("shards", 0, "shard count for the parallel experiment (0 = sweep 1,2,4,8)")
	benchJSON := flag.Bool("bench-json", false, "run the hot-path micro-benchmark suite and emit BENCH_*.json on stdout")
	benchtime := flag.String("benchtime", "1s", "per-benchmark run time for -bench-json (go test -benchtime syntax)")
	baseline := flag.String("baseline", "", "baseline BENCH_*.json for -bench-json; exit non-zero on >25% ns/op regression")
	benchDesc := flag.String("bench-desc", "Hot-path micro-benchmarks emitted by fdbench -bench-json for the ci.sh perf-regression gate.", "description field for the -bench-json report")
	queries := flag.String("queries", "", "comma-separated standing-query counts for the multi-query scaling sweep (e.g. 1,10,100,1000)")
	scaleTuples := flag.Int("scale-tuples", 200000, "tuples per scaling-sweep point")
	maxRatio := flag.Float64("max-ratio", 0, "fail if the largest query count's ns/tuple exceeds this multiple of the count-10 (or smallest) point; 0 disables the check")
	churn := flag.String("churn", "", "comma-separated catalog sizes for the attach/detach churn sweep (e.g. 10,1000)")
	churnPairs := flag.Int("churn-pairs", 200, "attach/detach pairs per churn-sweep point")
	churnMaxRatio := flag.Float64("churn-max-ratio", 0, "fail if the largest catalog's attach+detach ns exceeds this multiple of the smallest catalog's; 0 disables the check")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if *benchJSON || *queries != "" || *churn != "" {
		if err := runBenchJSON(*baseline, *benchtime, *benchDesc, *benchJSON, *queries, *scaleTuples, *maxRatio, *churn, *churnPairs, *churnMaxRatio, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "fdbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cfg := bench.RunConfig{Scale: *scale, Seed: *seed, Shards: *shards}

	switch args[0] {
	case "list":
		for _, e := range bench.Experiments() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	case "all":
		for _, e := range bench.Experiments() {
			runOne(e, cfg)
		}
		return
	}
	for _, id := range args {
		e := bench.ByID(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "fdbench: unknown experiment %q (try 'fdbench list')\n", id)
			os.Exit(1)
		}
		runOne(*e, cfg)
	}
}

func runOne(e bench.Experiment, cfg bench.RunConfig) {
	fmt.Printf("# %s — %s (scale %g)\n\n", e.ID, e.Title, cfg.Scale)
	for _, t := range e.Run(cfg) {
		t.Render(os.Stdout)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fdbench [-scale f] [-seed n] <command>

commands:
  list            list experiment ids
  all             run every experiment
  <id> [...]      run specific experiments (e.g. fig2a fig5 examples)

modes:
  -bench-json     run the hot-path micro-benchmarks, print BENCH_*.json;
                  with -baseline, fail on >25%% ns/op regression
  -queries N,...  multi-query scaling sweep: per-tuple ns of the shared
                  runtime at each standing-query count; with -max-ratio,
                  fail if the largest count exceeds that multiple of the
                  count-10 point; combines with -bench-json into one report
  -churn N,...    attach/detach churn sweep: per-mutation ns at each catalog
                  size; with -churn-max-ratio, fail if the largest catalog
                  exceeds that multiple of the smallest (the incremental-
                  rebuild gate); combines with the other modes into one report

flags:
`)
	flag.PrintDefaults()
}
