// Command fdbench regenerates the tables and figures of the forward-decay
// paper's evaluation on the synthetic substrate.
//
// Usage:
//
//	fdbench [-scale f] [-seed n] [-shards n] list
//	fdbench [-scale f] [-seed n] [-shards n] all
//	fdbench [-scale f] [-seed n] [-shards n] <experiment-id> [<experiment-id>...]
//
// Experiment ids are the paper's figure numbers (fig1, fig2a…fig2d,
// fig3a, fig3b, fig4a…fig4d, fig5) plus "examples" for the worked examples
// and "parallel" for the sharded-runtime throughput sweep.
// Scale 1.0 (the default) runs the full workloads; smaller values run
// proportionally smaller ones. -shards pins the parallel experiment to one
// shard count instead of sweeping 1, 2, 4, 8.
package main

import (
	"flag"
	"fmt"
	"os"

	"forwarddecay/bench"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = full experiment)")
	seed := flag.Uint64("seed", 20090329, "deterministic workload seed")
	shards := flag.Int("shards", 0, "shard count for the parallel experiment (0 = sweep 1,2,4,8)")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cfg := bench.RunConfig{Scale: *scale, Seed: *seed, Shards: *shards}

	switch args[0] {
	case "list":
		for _, e := range bench.Experiments() {
			fmt.Printf("%-9s %s\n", e.ID, e.Title)
		}
		return
	case "all":
		for _, e := range bench.Experiments() {
			runOne(e, cfg)
		}
		return
	}
	for _, id := range args {
		e := bench.ByID(id)
		if e == nil {
			fmt.Fprintf(os.Stderr, "fdbench: unknown experiment %q (try 'fdbench list')\n", id)
			os.Exit(1)
		}
		runOne(*e, cfg)
	}
}

func runOne(e bench.Experiment, cfg bench.RunConfig) {
	fmt.Printf("# %s — %s (scale %g)\n\n", e.ID, e.Title, cfg.Scale)
	for _, t := range e.Run(cfg) {
		t.Render(os.Stdout)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: fdbench [-scale f] [-seed n] <command>

commands:
  list            list experiment ids
  all             run every experiment
  <id> [...]      run specific experiments (e.g. fig2a fig5 examples)

flags:
`)
	flag.PrintDefaults()
}
