// Command tracegen synthesizes network packet traces in the repository's
// binary trace format, for replay through cmd/gsql and offline analysis —
// or streams them live over the ingest wire protocol to a gsql -listen
// server, paced to the trace's own packet rate.
//
// Usage:
//
//	tracegen -out trace.bin [-rate 100000] [-packets 1000000] [-seed 1]
//	         [-hosts 20000] [-zipf 1.1] [-tcp 0.85] [-ooo 0]
//	tracegen -stream host:port [-rate 1000] [-packets 10000] ...
//
// Exactly one of -out and -stream is required. Streaming reconnects with
// backoff and resends unacknowledged frames, so killing and restarting the
// server mid-stream loses nothing.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"forwarddecay/ingest"
	"forwarddecay/netgen"
)

func main() {
	out := flag.String("out", "", "output trace file")
	stream := flag.String("stream", "", "stream to a gsql -listen address (host:port or unix:/path)")
	rate := flag.Float64("rate", 100_000, "packet rate (pkt/s)")
	packets := flag.Int("packets", 1_000_000, "number of packets")
	seed := flag.Uint64("seed", 1, "generator seed")
	hosts := flag.Int("hosts", 20_000, "distinct destination hosts")
	zipf := flag.Float64("zipf", 1.1, "destination popularity skew")
	tcp := flag.Float64("tcp", 0.85, "TCP fraction")
	ooo := flag.Int("ooo", 0, "out-of-order shuffle buffer size (0 = in order)")
	flag.Parse()

	if (*out == "") == (*stream == "") {
		fmt.Fprintln(os.Stderr, "tracegen: exactly one of -out and -stream is required")
		flag.Usage()
		os.Exit(2)
	}
	cfg := netgen.DefaultConfig(*rate, *seed)
	cfg.Hosts = *hosts
	cfg.ZipfS = *zipf
	cfg.TCPFraction = *tcp
	cfg.OutOfOrder = *ooo

	g := netgen.New(cfg)
	pkts := g.Take(make([]netgen.Packet, 0, *packets), *packets)

	if *stream != "" {
		streamTrace(pkts, *stream, *seed)
		return
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := netgen.WriteTrace(f, pkts); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	last := pkts[len(pkts)-1].Time
	fmt.Printf("wrote %d packets spanning %.1f s (%.0f pkt/s) to %s\n",
		len(pkts), last, float64(len(pkts))/last, *out)
}

// streamTrace replays pkts over the ingest protocol, pacing transmission
// so wall-clock time tracks stream time (the -rate flag therefore sets the
// live packets-per-second too). Flushes are time-driven so a slow trace
// still reaches the server promptly.
func streamTrace(pkts []netgen.Packet, addr string, seed uint64) {
	network, address := ingest.SplitAddr(addr)
	d := ingest.Dial(network, address, ingest.DialerConfig{
		Seed: seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	start := pkts[0].Time
	wall := time.Now()
	lastFlush := wall
	for i, p := range pkts {
		if err := d.Send(p); err != nil {
			fatal(err)
		}
		if i%512 == 511 {
			target := wall.Add(time.Duration((p.Time - start) * float64(time.Second)))
			if s := time.Until(target); s > 0 {
				time.Sleep(s)
			}
		}
		if time.Since(lastFlush) > 200*time.Millisecond {
			if err := d.Flush(); err != nil {
				fatal(err)
			}
			lastFlush = time.Now()
		}
	}
	if err := d.Close(); err != nil {
		fatal(err)
	}
	st := d.Stats()
	fmt.Printf("streamed %d packets in %d frames to %s (%d reconnects, %d frames resent)\n",
		st.PacketsSent, st.FramesSent, addr, st.Reconnects, st.FramesResent)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
