// Command tracegen synthesizes network packet traces in the repository's
// binary trace format, for replay through cmd/gsql and offline analysis.
//
// Usage:
//
//	tracegen -out trace.bin [-rate 100000] [-packets 1000000] [-seed 1]
//	         [-hosts 20000] [-zipf 1.1] [-tcp 0.85] [-ooo 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"forwarddecay/netgen"
)

func main() {
	out := flag.String("out", "", "output trace file (required)")
	rate := flag.Float64("rate", 100_000, "packet rate (pkt/s)")
	packets := flag.Int("packets", 1_000_000, "number of packets")
	seed := flag.Uint64("seed", 1, "generator seed")
	hosts := flag.Int("hosts", 20_000, "distinct destination hosts")
	zipf := flag.Float64("zipf", 1.1, "destination popularity skew")
	tcp := flag.Float64("tcp", 0.85, "TCP fraction")
	ooo := flag.Int("ooo", 0, "out-of-order shuffle buffer size (0 = in order)")
	flag.Parse()

	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	cfg := netgen.DefaultConfig(*rate, *seed)
	cfg.Hosts = *hosts
	cfg.ZipfS = *zipf
	cfg.TCPFraction = *tcp
	cfg.OutOfOrder = *ooo

	g := netgen.New(cfg)
	pkts := g.Take(make([]netgen.Packet, 0, *packets), *packets)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := netgen.WriteTrace(f, pkts); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	last := pkts[len(pkts)-1].Time
	fmt.Printf("wrote %d packets spanning %.1f s (%.0f pkt/s) to %s\n",
		len(pkts), last, float64(len(pkts))/last, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
