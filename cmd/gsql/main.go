// Command gsql executes GSQL queries over synthesized packet streams,
// saved traces, or live socket feeds, printing result rows as time buckets
// close — a miniature of the Gigascope workflow the forward-decay paper
// evaluates in.
//
// Usage:
//
//	gsql [flags] 'select tb, dstIP, destPort,
//	              sum(len*(time % 60)*(time % 60))/3600 from TCP
//	              group by time/60 as tb, dstIP, destPort'
//
// Flags:
//
//	-trace file     replay a trace written by tracegen (default: synthesize)
//	-listen addr    serve the ingest wire protocol on addr (host:port, or
//	                unix:/path) instead of reading packets locally; clients
//	                connect with tracegen -stream
//	-drain-timeout d
//	                bound on draining in-flight frames at shutdown (with
//	                -listen; default 5s)
//	-heartbeat d    synthesize a heartbeat after d of input silence so open
//	                time buckets still close while the source idles
//	                (both local and -listen input; 0 = off)
//	-batch          execute via the columnar batch path (default on); with
//	                -batch=false every tuple goes through the scalar Push
//	                path — the differential lever for batch-vs-scalar runs
//	-rate r         synthetic packet rate (default 100000)
//	-packets n      synthetic packet count (default 1000000)
//	-seed n         synthetic generator seed
//	-no-split       disable two-level aggregation
//	-limit n        print at most n rows (0 = all)
//	-checkpoint f   write checkpoints of the run's state to file f
//	-checkpoint-every n
//	                checkpoint every n input tuples (with -checkpoint;
//	                0 = only once, when the input ends)
//	-restore f      resume from a checkpoint file written by -checkpoint
//	                (same query and schema required); the stream replayed
//	                after restoring continues the interrupted run
//	-k, -eps, -phi, -window
//	                UDAF parameters (sample size, accuracy, HH threshold,
//	                window seconds)
//	-epoch-alpha a  exponential forward-decay rate: enables the fd* decayed
//	                aggregates (fdcount, fdsum, fdhh, ...) with landmark 0
//	-epoch-every s  roll the decay landmark forward every s stream seconds
//	                (requires -epoch-alpha); keeps week-long runs from
//	                overflowing by rebasing all decayed state in place
//	-epoch-max-logw w
//	                overflow-sentinel threshold on the log normalizer
//	                (default 250); crossing it forces an immediate rollover
//	-serve dir      run the long-lived supervised query service with state
//	                directory dir instead of executing one query: clients
//	                attach GSQL queries over the control protocol, stream
//	                packets over the ingest protocol (-listen, default
//	                127.0.0.1:9899) and subscribe to result rows; a watchdog
//	                restarts a failed runtime from its latest checkpoint and
//	                degrades to ingest-only (WAL) mode when restarts keep
//	                failing; an optional query argument is attached at start
//	-control addr   control-plane listen address (with -serve;
//	                default 127.0.0.1:9898)
//	-http addr      /healthz + /metrics HTTP address (with -serve; off by
//	                default)
//	-token t        control session token (with -serve; empty accepts any)
//	-shards n       run attached queries on n-way sharded parallel runs
//	                (with -serve; 0 = serial)
//
// A kill-and-restore cycle is: run with -checkpoint state.fdc
// -checkpoint-every 100000, interrupt it, then rerun the remaining input
// with -restore state.fdc. Forward decay makes the resumed results match
// an uninterrupted run over the tuples the checkpoint covered plus the
// replayed remainder (§III: weights are fixed at arrival, so saved
// partials never go stale).
//
// The live equivalent: `gsql -listen :9999 -checkpoint state.fdc` serves
// a reconnecting tracegen -stream client; SIGTERM drains in-flight frames
// and writes a final checkpoint, and restarting with the same flags plus
// -restore state.fdc resumes exactly where the drain left off — the client
// resends everything unacknowledged.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/ingest"
	"forwarddecay/internal/durable"
	"forwarddecay/netgen"
	"forwarddecay/udaf"
)

func main() {
	trace := flag.String("trace", "", "trace file to replay (default: synthesize)")
	listen := flag.String("listen", "", "serve the ingest protocol on this address (host:port or unix:/path)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "bound on draining in-flight frames at shutdown (with -listen)")
	heartbeat := flag.Duration("heartbeat", 0, "synthesize a heartbeat after this much input silence (0 = off)")
	batchMode := flag.Bool("batch", true, "execute via the columnar batch path (-batch=false forces scalar pushes)")
	rate := flag.Float64("rate", 100_000, "synthetic packet rate (pkt/s)")
	packets := flag.Int("packets", 1_000_000, "synthetic packet count")
	seed := flag.Uint64("seed", 1, "synthetic generator seed")
	noSplit := flag.Bool("no-split", false, "disable two-level aggregation")
	limit := flag.Int("limit", 0, "print at most n rows (0 = all)")
	ckptFile := flag.String("checkpoint", "", "write checkpoints to this file")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint every n tuples (0 = once at end)")
	restoreFile := flag.String("restore", "", "resume from this checkpoint file")
	k := flag.Int("k", 100, "UDAF sample size")
	eps := flag.Float64("eps", 0.01, "UDAF accuracy parameter")
	phi := flag.Float64("phi", 0.01, "UDAF heavy-hitter threshold")
	win := flag.Float64("window", 60, "UDAF window seconds")
	epochAlpha := flag.Float64("epoch-alpha", 0, "exponential decay rate for the fd* aggregates (0 = disabled)")
	epochEvery := flag.Float64("epoch-every", 0, "roll the decay landmark every n stream seconds (requires -epoch-alpha)")
	epochMaxLogW := flag.Float64("epoch-max-logw", 0, "overflow-sentinel threshold on the log normalizer (0 = default)")
	serveDir := flag.String("serve", "", "run the supervised query service with this state directory")
	controlAddr := flag.String("control", "127.0.0.1:9898", "control-plane listen address (with -serve)")
	httpAddr := flag.String("http", "", "health/metrics HTTP listen address (with -serve; empty = off)")
	token := flag.String("token", "", "control session token (with -serve; empty = unauthenticated)")
	shards := flag.Int("shards", 0, "parallel shards per attached query (with -serve; 0 = serial)")
	flag.Parse()

	if *listen != "" && *trace != "" {
		fatal(fmt.Errorf("-listen and -trace are mutually exclusive"))
	}
	if *serveDir != "" {
		// Service mode: the query argument is optional (queries normally
		// arrive over the control protocol).
		if flag.NArg() > 1 {
			fmt.Fprintln(os.Stderr, "usage: gsql -serve DIR [flags] ['<query>']")
			flag.Usage()
			os.Exit(2)
		}
		ingestAddr := *listen
		if ingestAddr == "" {
			ingestAddr = "127.0.0.1:9899"
		}
		runService(*serveDir, *controlAddr, ingestAddr, *httpAddr, *token,
			*shards, *ckptEvery, *heartbeat, *drainTimeout, flag.Arg(0))
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gsql [flags] '<query>'")
		flag.Usage()
		os.Exit(2)
	}
	query := flag.Arg(0)

	if *epochEvery > 0 && *epochAlpha <= 0 {
		fatal(fmt.Errorf("-epoch-every needs -epoch-alpha to define the decay model"))
	}
	ucfg := udaf.Config{SampleSize: *k, Epsilon: *eps, Phi: *phi, Window: *win, Seed: *seed}
	var epoch *gsql.EpochConfig
	if *epochAlpha > 0 {
		model := decay.NewForward(decay.NewExp(*epochAlpha), 0)
		ucfg.Decay = model
		if *epochEvery > 0 {
			epoch = &gsql.EpochConfig{
				Model:        model,
				Every:        *epochEvery,
				MaxLogWeight: *epochMaxLogW,
				// The packet schema's ftime column carries stream time; the
				// column name lets the batch path read it straight off the
				// column vector instead of materializing rows.
				Time:       func(t gsql.Tuple) (float64, bool) { return t[1].AsFloat(), true },
				TimeColumn: "ftime",
			}
		}
	}

	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		fatal(err)
	}
	if err := udaf.RegisterAll(e, ucfg); err != nil {
		fatal(err)
	}

	st, err := e.Prepare(query)
	if err != nil {
		fatal(err)
	}
	if *ckptFile != "" {
		if err := st.Checkpointable(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "plan: %s\n", st.Describe())
	fmt.Println(strings.Join(st.Columns(), "\t"))

	printed := 0
	sink := func(row gsql.Tuple) error {
		if *limit > 0 && printed >= *limit {
			return gsql.SinkStop()
		}
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
		printed++
		return nil
	}
	opts := gsql.Options{DisableTwoLevel: *noSplit, Epoch: epoch}

	var run *gsql.Run
	if *restoreFile != "" {
		ckpt, err := os.ReadFile(*restoreFile)
		if err != nil {
			fatal(err)
		}
		if run, err = st.Restore(ckpt, sink, opts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "restored %s (%d tuples already accounted)\n", *restoreFile, run.RuntimeStats().TuplesIn)
	} else {
		run = st.Start(sink, opts)
	}

	if *listen != "" {
		serve(run, *listen, *drainTimeout, *heartbeat, !*batchMode, *ckptFile, *ckptEvery, *restoreFile)
		return
	}

	sinceCkpt := 0
	maybeCkpt := func() error {
		if *ckptFile != "" && *ckptEvery > 0 && sinceCkpt >= *ckptEvery {
			sinceCkpt = 0
			return writeCheckpoint(run, *ckptFile)
		}
		return nil
	}
	var push func(p netgen.Packet) error
	flush := func() error { return nil }
	if *batchMode {
		// Columnar drive: buffer packets and push 256 at a time. Heartbeats,
		// checkpoints and the end of input all flush first, so stream time
		// never overtakes buffered data and checkpoint cuts land at batch
		// boundaries.
		bb, err := gsql.NewBatch(gsql.PacketSchema("TCP"))
		if err != nil {
			fatal(err)
		}
		buf := make([]netgen.Packet, 0, 256)
		flush = func() error {
			if len(buf) == 0 {
				return nil
			}
			netgen.FillBatch(bb, buf)
			n := len(buf)
			buf = buf[:0]
			if _, err := run.PushBatch(bb); err != nil {
				return err
			}
			sinceCkpt += n
			return maybeCkpt()
		}
		push = func(p netgen.Packet) error {
			buf = append(buf, p)
			if len(buf) == cap(buf) {
				return flush()
			}
			return nil
		}
	} else {
		push = func(p netgen.Packet) error {
			if err := run.Push(netgen.Tuple(p)); err != nil {
				return err
			}
			sinceCkpt++
			return maybeCkpt()
		}
	}

	var produce func(emit func(netgen.Packet) error) error
	if *trace != "" {
		produce = func(emit func(netgen.Packet) error) error {
			f, err := os.Open(*trace)
			if err != nil {
				return err
			}
			defer f.Close()
			return netgen.StreamTrace(f, emit)
		}
	} else {
		produce = func(emit func(netgen.Packet) error) error {
			g := netgen.New(netgen.DefaultConfig(*rate, *seed))
			for i := 0; i < *packets; i++ {
				if err := emit(g.Next()); err != nil {
					return err
				}
			}
			return nil
		}
	}
	finish(run, drive(run, push, flush, produce, *heartbeat), *ckptFile)
}

// drive feeds packets from produce into push, flushing any batch buffer at
// the end of input and before every heartbeat. With a positive heartbeat
// interval the producer runs on its own goroutine and input silence longer
// than the interval synthesizes a heartbeat — stream time advanced by the
// idle wall-clock span — so open time buckets close even when the source
// stalls.
func drive(run *gsql.Run, push func(netgen.Packet) error, flush func() error, produce func(func(netgen.Packet) error) error, heartbeat time.Duration) error {
	if heartbeat <= 0 {
		if err := produce(push); err != nil {
			return err
		}
		return flush()
	}
	pkts := make(chan netgen.Packet, 256)
	errc := make(chan error, 1)
	go func() {
		errc <- produce(func(p netgen.Packet) error {
			pkts <- p
			return nil
		})
		close(pkts)
	}()
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	var lastTS float64
	seen := false
	lastActivity := time.Now()
	for {
		select {
		case p, ok := <-pkts:
			if !ok {
				if err := <-errc; err != nil {
					return err
				}
				return flush()
			}
			if err := push(p); err != nil {
				go func() {
					for range pkts {
					}
				}()
				<-errc
				return err
			}
			if !seen || p.Time > lastTS {
				lastTS, seen = p.Time, true
			}
			lastActivity = time.Now()
		case <-ticker.C:
			if !seen || time.Since(lastActivity) < heartbeat {
				continue
			}
			ts := lastTS + time.Since(lastActivity).Seconds()
			// Buffered packets precede the heartbeat in stream order.
			if err := flush(); err != nil {
				return err
			}
			if err := run.Heartbeat(gsql.Int(int64(ts))); err != nil {
				return err
			}
		}
	}
}

// serve runs the socket ingest path: an ingest.Listener feeds the run
// until SIGINT/SIGTERM, then in-flight frames are drained and — when
// -checkpoint is set — a final checkpoint written. The run is deliberately
// NOT closed after a final checkpoint: closing would emit the open bucket,
// and a successor restored from the checkpoint would then emit it again.
func serve(run *gsql.Run, addr string, drainTimeout, heartbeat time.Duration, scalarPush bool, ckptFile string, ckptEvery int, restoreFile string) {
	network, address := ingest.SplitAddr(addr)
	// lref lets the checkpoint hook reach the listener's session table; the
	// hook can fire from the pump before Listen has returned the value.
	var lref atomic.Pointer[ingest.Listener]
	cfg := ingest.Config{
		Sink:              run,
		ScalarPush:        scalarPush,
		HeartbeatInterval: heartbeat,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if ckptFile != "" {
		cfg.Checkpoint = func() error {
			if err := writeCheckpoint(run, ckptFile); err != nil {
				return err
			}
			if l := lref.Load(); l != nil {
				return writeSessions(l, ckptFile+".sessions")
			}
			return nil
		}
		if ckptEvery > 0 {
			cfg.CheckpointEvery = uint64(ckptEvery)
		}
	}
	if restoreFile != "" {
		sess, err := readSessions(restoreFile + ".sessions")
		if err != nil {
			fatal(err)
		}
		cfg.Sessions = sess
	}
	l, err := ingest.Listen(network, address, cfg)
	if err != nil {
		fatal(err)
	}
	lref.Store(l)
	fmt.Fprintf(os.Stderr, "listening on %s %s\n", network, l.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintf(os.Stderr, "draining (timeout %v)...\n", drainTimeout)
	if err := l.Shutdown(drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "gsql:", err)
	}

	rs := l.RuntimeStats()
	if ckptFile != "" {
		if err := writeCheckpoint(run, ckptFile); err != nil {
			fatal(err)
		}
		if err := writeSessions(l, ckptFile+".sessions"); err != nil {
			fatal(err)
		}
	} else if err := run.Close(); err != nil && err.Error() != gsql.SinkStop().Error() {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"processed %d tuples, %d windows; ingest: %d frames, %d quarantined, %d duplicates dropped, %d reconnects, %d heartbeats synthesized; epoch: %d rollovers, %d sentinel trips\n",
		rs.TuplesIn, rs.WindowsClosed, rs.FramesAccepted, rs.FramesQuarantined,
		rs.DuplicatesDropped, rs.Reconnects, rs.HeartbeatsSynthesized,
		rs.EpochRollovers, rs.SentinelTrips)
}

// writeSessions persists the listener's session table (session id →
// applied sequence) next to the checkpoint, so a restored successor can
// recognize resent frames the drain already applied instead of
// double-counting them.
func writeSessions(l *ingest.Listener, file string) error {
	var sb strings.Builder
	for id, applied := range l.Sessions() {
		fmt.Fprintf(&sb, "%d %d\n", id, applied)
	}
	return durable.WriteFileAtomic(file, []byte(sb.String()), 0o644)
}

// readSessions loads a session table written by writeSessions; a missing
// file is an empty table, not an error (first run, or a file-input
// checkpoint).
func readSessions(file string) (map[uint64]uint64, error) {
	b, err := os.ReadFile(file)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := make(map[uint64]uint64)
	for _, line := range strings.Split(string(b), "\n") {
		if line == "" {
			continue
		}
		var id, applied uint64
		if _, err := fmt.Sscanf(line, "%d %d", &id, &applied); err != nil {
			return nil, fmt.Errorf("sessions file %s: bad line %q", file, line)
		}
		out[id] = applied
	}
	return out, nil
}

// writeCheckpoint serializes the run's state and durably replaces file:
// fsync-before-rename plus a directory sync, so neither an interrupt
// mid-write nor a power cut after the rename can corrupt or lose the last
// good checkpoint.
func writeCheckpoint(run *gsql.Run, file string) error {
	b, err := run.Checkpoint()
	if err != nil {
		return err
	}
	return durable.WriteFileAtomic(file, b, 0o644)
}

// finish takes a final checkpoint if requested, closes the run (tolerating
// the sink-stop sentinel) and reports the runtime counters.
func finish(run *gsql.Run, pushErr error, ckptFile string) {
	if pushErr != nil && pushErr.Error() != gsql.SinkStop().Error() {
		fatal(pushErr)
	}
	if ckptFile != "" && pushErr == nil {
		if err := writeCheckpoint(run, ckptFile); err != nil {
			fatal(err)
		}
	}
	if err := run.Close(); err != nil && err.Error() != gsql.SinkStop().Error() {
		fatal(err)
	}
	tuples, evictions := run.Stats()
	rs := run.RuntimeStats()
	fmt.Fprintf(os.Stderr, "processed %d tuples, %d low-level evictions, %d windows, %d checkpoints, %d epoch rollovers, %d sentinel trips\n",
		tuples, evictions, rs.WindowsClosed, rs.Checkpoints, rs.EpochRollovers, rs.SentinelTrips)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsql:", err)
	os.Exit(1)
}
