// Command gsql executes GSQL queries over synthesized packet streams or
// saved traces, printing result rows as time buckets close — a miniature of
// the Gigascope workflow the forward-decay paper evaluates in.
//
// Usage:
//
//	gsql [flags] 'select tb, dstIP, destPort,
//	              sum(len*(time % 60)*(time % 60))/3600 from TCP
//	              group by time/60 as tb, dstIP, destPort'
//
// Flags:
//
//	-trace file     replay a trace written by tracegen (default: synthesize)
//	-rate r         synthetic packet rate (default 100000)
//	-packets n      synthetic packet count (default 1000000)
//	-seed n         synthetic generator seed
//	-no-split       disable two-level aggregation
//	-limit n        print at most n rows (0 = all)
//	-checkpoint f   write checkpoints of the run's state to file f
//	-checkpoint-every n
//	                checkpoint every n input tuples (with -checkpoint;
//	                0 = only once, when the input ends)
//	-restore f      resume from a checkpoint file written by -checkpoint
//	                (same query and schema required); the stream replayed
//	                after restoring continues the interrupted run
//	-k, -eps, -phi, -window
//	                UDAF parameters (sample size, accuracy, HH threshold,
//	                window seconds)
//
// A kill-and-restore cycle is: run with -checkpoint state.fdc
// -checkpoint-every 100000, interrupt it, then rerun the remaining input
// with -restore state.fdc. Forward decay makes the resumed results match
// an uninterrupted run over the tuples the checkpoint covered plus the
// replayed remainder (§III: weights are fixed at arrival, so saved
// partials never go stale).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"forwarddecay/gsql"
	"forwarddecay/netgen"
	"forwarddecay/udaf"
)

func main() {
	trace := flag.String("trace", "", "trace file to replay (default: synthesize)")
	rate := flag.Float64("rate", 100_000, "synthetic packet rate (pkt/s)")
	packets := flag.Int("packets", 1_000_000, "synthetic packet count")
	seed := flag.Uint64("seed", 1, "synthetic generator seed")
	noSplit := flag.Bool("no-split", false, "disable two-level aggregation")
	limit := flag.Int("limit", 0, "print at most n rows (0 = all)")
	ckptFile := flag.String("checkpoint", "", "write checkpoints to this file")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint every n tuples (0 = once at end)")
	restoreFile := flag.String("restore", "", "resume from this checkpoint file")
	k := flag.Int("k", 100, "UDAF sample size")
	eps := flag.Float64("eps", 0.01, "UDAF accuracy parameter")
	phi := flag.Float64("phi", 0.01, "UDAF heavy-hitter threshold")
	win := flag.Float64("window", 60, "UDAF window seconds")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gsql [flags] '<query>'")
		flag.Usage()
		os.Exit(2)
	}
	query := flag.Arg(0)

	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		fatal(err)
	}
	if err := udaf.RegisterAll(e, udaf.Config{
		SampleSize: *k, Epsilon: *eps, Phi: *phi, Window: *win, Seed: *seed,
	}); err != nil {
		fatal(err)
	}

	st, err := e.Prepare(query)
	if err != nil {
		fatal(err)
	}
	if *ckptFile != "" {
		if err := st.Checkpointable(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "plan: %s\n", st.Describe())
	fmt.Println(strings.Join(st.Columns(), "\t"))

	printed := 0
	sink := func(row gsql.Tuple) error {
		if *limit > 0 && printed >= *limit {
			return gsql.SinkStop()
		}
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
		printed++
		return nil
	}
	opts := gsql.Options{DisableTwoLevel: *noSplit}

	var run *gsql.Run
	if *restoreFile != "" {
		ckpt, err := os.ReadFile(*restoreFile)
		if err != nil {
			fatal(err)
		}
		if run, err = st.Restore(ckpt, sink, opts); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "restored %s (%d tuples already accounted)\n", *restoreFile, run.RuntimeStats().TuplesIn)
	} else {
		run = st.Start(sink, opts)
	}

	pushed := 0
	push := func(p netgen.Packet) error {
		if err := run.Push(netgen.Tuple(p)); err != nil {
			return err
		}
		pushed++
		if *ckptFile != "" && *ckptEvery > 0 && pushed%*ckptEvery == 0 {
			if err := writeCheckpoint(run, *ckptFile); err != nil {
				return err
			}
		}
		return nil
	}

	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		err = netgen.StreamTrace(f, push)
		f.Close()
		if err != nil {
			finish(run, err, *ckptFile)
			return
		}
	} else {
		g := netgen.New(netgen.DefaultConfig(*rate, *seed))
		for i := 0; i < *packets; i++ {
			if err := push(g.Next()); err != nil {
				finish(run, err, *ckptFile)
				return
			}
		}
	}
	finish(run, nil, *ckptFile)
}

// writeCheckpoint serializes the run's state and replaces file atomically
// (write-then-rename), so an interrupt mid-write never corrupts the last
// good checkpoint.
func writeCheckpoint(run *gsql.Run, file string) error {
	b, err := run.Checkpoint()
	if err != nil {
		return err
	}
	tmp := file + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, file)
}

// finish takes a final checkpoint if requested, closes the run (tolerating
// the sink-stop sentinel) and reports the runtime counters.
func finish(run *gsql.Run, pushErr error, ckptFile string) {
	if pushErr != nil && pushErr.Error() != gsql.SinkStop().Error() {
		fatal(pushErr)
	}
	if ckptFile != "" && pushErr == nil {
		if err := writeCheckpoint(run, ckptFile); err != nil {
			fatal(err)
		}
	}
	if err := run.Close(); err != nil && err.Error() != gsql.SinkStop().Error() {
		fatal(err)
	}
	tuples, evictions := run.Stats()
	rs := run.RuntimeStats()
	fmt.Fprintf(os.Stderr, "processed %d tuples, %d low-level evictions, %d windows, %d checkpoints\n",
		tuples, evictions, rs.WindowsClosed, rs.Checkpoints)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsql:", err)
	os.Exit(1)
}
