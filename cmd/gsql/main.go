// Command gsql executes GSQL queries over synthesized packet streams or
// saved traces, printing result rows as time buckets close — a miniature of
// the Gigascope workflow the forward-decay paper evaluates in.
//
// Usage:
//
//	gsql [flags] 'select tb, dstIP, destPort,
//	              sum(len*(time % 60)*(time % 60))/3600 from TCP
//	              group by time/60 as tb, dstIP, destPort'
//
// Flags:
//
//	-trace file     replay a trace written by tracegen (default: synthesize)
//	-rate r         synthetic packet rate (default 100000)
//	-packets n      synthetic packet count (default 1000000)
//	-seed n         synthetic generator seed
//	-no-split       disable two-level aggregation
//	-limit n        print at most n rows (0 = all)
//	-k, -eps, -phi, -window
//	                UDAF parameters (sample size, accuracy, HH threshold,
//	                window seconds)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"forwarddecay/gsql"
	"forwarddecay/netgen"
	"forwarddecay/udaf"
)

func main() {
	trace := flag.String("trace", "", "trace file to replay (default: synthesize)")
	rate := flag.Float64("rate", 100_000, "synthetic packet rate (pkt/s)")
	packets := flag.Int("packets", 1_000_000, "synthetic packet count")
	seed := flag.Uint64("seed", 1, "synthetic generator seed")
	noSplit := flag.Bool("no-split", false, "disable two-level aggregation")
	limit := flag.Int("limit", 0, "print at most n rows (0 = all)")
	k := flag.Int("k", 100, "UDAF sample size")
	eps := flag.Float64("eps", 0.01, "UDAF accuracy parameter")
	phi := flag.Float64("phi", 0.01, "UDAF heavy-hitter threshold")
	win := flag.Float64("window", 60, "UDAF window seconds")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gsql [flags] '<query>'")
		flag.Usage()
		os.Exit(2)
	}
	query := flag.Arg(0)

	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		fatal(err)
	}
	if err := udaf.RegisterAll(e, udaf.Config{
		SampleSize: *k, Epsilon: *eps, Phi: *phi, Window: *win, Seed: *seed,
	}); err != nil {
		fatal(err)
	}

	st, err := e.Prepare(query)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "plan: %s\n", st.Describe())
	fmt.Println(strings.Join(st.Columns(), "\t"))

	printed := 0
	run := st.Start(func(row gsql.Tuple) error {
		if *limit > 0 && printed >= *limit {
			return gsql.SinkStop()
		}
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, "\t"))
		printed++
		return nil
	}, gsql.Options{DisableTwoLevel: *noSplit})

	push := func(p netgen.Packet) error { return run.Push(netgen.Tuple(p)) }

	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fatal(err)
		}
		err = netgen.StreamTrace(f, push)
		f.Close()
		if err != nil {
			finish(run, err)
			return
		}
	} else {
		g := netgen.New(netgen.DefaultConfig(*rate, *seed))
		for i := 0; i < *packets; i++ {
			if err := push(g.Next()); err != nil {
				finish(run, err)
				return
			}
		}
	}
	finish(run, nil)
}

// finish closes the run, tolerating the sink-stop sentinel.
func finish(run *gsql.Run, pushErr error) {
	if pushErr != nil && pushErr.Error() != gsql.SinkStop().Error() {
		fatal(pushErr)
	}
	if err := run.Close(); err != nil && err.Error() != gsql.SinkStop().Error() {
		fatal(err)
	}
	tuples, evictions := run.Stats()
	fmt.Fprintf(os.Stderr, "processed %d tuples, %d low-level evictions\n", tuples, evictions)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gsql:", err)
	os.Exit(1)
}
