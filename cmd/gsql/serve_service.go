package main

// The -serve mode: instead of executing one query over one input, gsql
// becomes a long-lived supervised query service (package server). Clients
// attach GSQL queries over the control protocol, stream packets over the
// ingest protocol, and subscribe to result rows with per-subscriber
// slow-consumer policies; a watchdog restarts the runtime from its latest
// checkpoint on failure and degrades to ingest-only (WAL) mode when
// restarts keep failing. SIGINT/SIGTERM drains to a final checkpoint.

import (
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"forwarddecay/server"
)

// runService blocks until the service is told to exit.
func runService(dir, controlAddr, ingestAddr, httpAddr, token string, shards int, ckptEvery int, heartbeat, drainTimeout time.Duration, query string) {
	cfg := server.Config{
		Dir:               dir,
		ControlAddr:       controlAddr,
		IngestAddr:        ingestAddr,
		HTTPAddr:          httpAddr,
		Shards:            shards,
		HeartbeatInterval: heartbeat,
		DrainTimeout:      drainTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if token != "" {
		cfg.Tokens = []string{token}
	}
	if ckptEvery > 0 {
		cfg.CheckpointEvery = uint64(ckptEvery)
	}
	svc, err := server.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "serving: control %s, ingest %s", controlAddr, svc.IngestAddr())
	if httpAddr != "" {
		fmt.Fprintf(os.Stderr, ", http %s", svc.HTTPAddr())
	}
	fmt.Fprintln(os.Stderr)

	// An optional query argument is attached at startup — handy for a
	// single-query deployment without a separate control client. On a warm
	// state directory the query may already be in the recovered catalog.
	if query != "" {
		id, err := svc.Attach(query, uint32(shards))
		if err != nil {
			fmt.Fprintf(os.Stderr, "gsql: startup attach: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "attached query %d: %s\n", id, query)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// The stats line: per-query cost attribution while the runs are still
	// live (Shutdown tears the incarnation down).
	if top := svc.TopExpensive(3); len(top) > 0 {
		fmt.Fprintln(os.Stderr, "most expensive queries (smoothed private ns/tuple):")
		for _, qc := range top {
			fenced := ""
			if qc.Quarantined {
				fenced = " [quarantined]"
			}
			fmt.Fprintf(os.Stderr, "  query %d: %.0f ns/tuple over %d tuples, %d errors%s — %s\n",
				qc.ID, qc.NsPerTuple, qc.Tuples, qc.Errors, fenced, qc.Text)
		}
	}
	fmt.Fprintf(os.Stderr, "draining to a final checkpoint (timeout %v)...\n", drainTimeout)
	if err := svc.Shutdown(); err != nil {
		fatal(err)
	}
}
