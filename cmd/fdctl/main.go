// Command fdctl demonstrates the elastic distributed tier end to end: it
// runs a scripted operational drill against a distrib.Cluster — steady
// keyed ingest, a mid-stream scale-out, a hard site kill, log-absorbed
// writes while the site is down, a rejoin-from-log, and a scale-in — and
// after every act compares the churned cluster's merged snapshot against a
// fault-free static-roster oracle cluster fed the identical stream. With
// the default dyadic decay rate and integer timestamps every handoff,
// checkpoint rebase and log replay is exact in float64, so the sums must
// agree bit-for-bit; any drift is reported and the drill exits non-zero.
//
// Usage:
//
//	fdctl [-sites 4] [-events 20000] [-keys 512] [-wal DIR] [-seed 1] [-v]
//
// The write-ahead log lands in -wal (a temporary directory by default) and
// is left behind for inspection with -v.
//
// With -serve-drill, fdctl instead drills the supervised query service
// (package server): a live subscriber follows a grouped aggregation while
// the drill kills the runtime mid-stream, drops and cursor-resumes the
// client, quarantines and revives a poison query without perturbing the
// healthy subscription, and cold-restarts the whole service from its state
// directory — asserting after every act that the rows received are
// bit-identical to an uninterrupted in-process oracle. -events doubles as
// the packet count.
package main

import (
	"flag"
	"fmt"
	"os"

	"forwarddecay/decay"
	"forwarddecay/distrib"
	"forwarddecay/internal/core"
	"forwarddecay/metrics"
)

func main() {
	sites := flag.Int("sites", 4, "initial site count")
	events := flag.Int("events", 20_000, "keyed observations per act")
	keys := flag.Int("keys", 512, "distinct keys")
	walDir := flag.String("wal", "", "write-ahead log directory (default: a temp dir)")
	seed := flag.Uint64("seed", 1, "stream seed")
	verbose := flag.Bool("v", false, "print per-act detail and keep the log directory")
	serveDrill := flag.Bool("serve-drill", false, "run the supervised-server crash drill instead of the cluster drill")
	flag.Parse()

	if *serveDrill {
		runServeDrill(*events, *seed, *verbose)
		return
	}

	dir := *walDir
	if dir == "" {
		d, err := os.MkdirTemp("", "fdctl-wal-*")
		if err != nil {
			fatal(err)
		}
		if !*verbose {
			defer os.RemoveAll(d)
		}
		dir = d
	}

	model := decay.NewForward(decay.NewExp(1.0/1024), 0)
	cfg := distrib.Config{
		Sites: *sites, Model: model, HHK: 64,
		WALDir: dir, Metrics: metrics.NewCounterSet(),
	}
	cl, err := distrib.New(cfg)
	if err != nil {
		fatal(err)
	}
	defer cl.Close()
	ocfg := cfg
	ocfg.WALDir, ocfg.Metrics = "", nil
	oracle, err := distrib.New(ocfg)
	if err != nil {
		fatal(err)
	}
	defer oracle.Close()

	var now float64
	var n uint64
	feed := func(count int) {
		for i := 0; i < count; i++ {
			n++
			now++
			h := core.Hash2(*seed, n)
			ob := distrib.Observation{
				Key:   h % uint64(*keys),
				Value: float64(1 + h%1000),
				Time:  now,
			}
			if err := cl.ObserveKeyed(ob); err != nil {
				fatal(fmt.Errorf("observation %d not acknowledged: %w", n, err))
			}
			if err := oracle.ObserveKeyed(ob); err != nil {
				fatal(fmt.Errorf("oracle rejected observation %d: %w", n, err))
			}
		}
	}
	check := func(act string) {
		snap, err := cl.Snapshot()
		if err != nil {
			fatal(fmt.Errorf("%s: snapshot: %w", act, err))
		}
		if len(snap.MissingSites) != 0 {
			fatal(fmt.Errorf("%s: snapshot missing sites %v", act, snap.MissingSites))
		}
		osnap, err := oracle.Snapshot()
		if err != nil {
			fatal(fmt.Errorf("%s: oracle snapshot: %w", act, err))
		}
		got, want := snap.Sum.Value(now), osnap.Sum.Value(now)
		if got != want || snap.Sum.N() != osnap.Sum.N() {
			fatal(fmt.Errorf("%s: cluster sum %v (N=%d) != oracle %v (N=%d)",
				act, got, snap.Sum.N(), want, osnap.Sum.N()))
		}
		fmt.Printf("%-34s sites=%d down=%d  N=%d  decayed-sum=%.6g  ✓ bit-identical\n",
			act, cl.Sites(), len(cl.DownSites()), snap.Sum.N(), got)
		if *verbose {
			h := cl.Health()
			fmt.Printf("    health: %+v\n", h)
		}
	}

	fmt.Printf("fdctl: elastic-cluster drill (%d sites, wal=%s)\n\n", *sites, dir)

	feed(*events)
	check("act 1: steady ingest")

	added, err := cl.AddSite()
	if err != nil {
		fatal(fmt.Errorf("scale-out: %w", err))
	}
	feed(*events)
	check(fmt.Sprintf("act 2: scale-out (+site %d)", added))

	if err := cl.Checkpoint(); err != nil {
		fatal(fmt.Errorf("checkpoint: %w", err))
	}
	victim := cl.LiveSites()[0]
	if err := cl.CrashSite(victim); err != nil {
		fatal(err)
	}
	feed(*events) // the victim's partitions are absorbed by the log
	check(fmt.Sprintf("act 3: site %d killed, log absorbs", victim))

	if err := cl.RecoverSite(victim); err != nil {
		fatal(fmt.Errorf("rejoin: %w", err))
	}
	feed(*events)
	check(fmt.Sprintf("act 4: site %d rejoined from log", victim))

	if err := cl.RemoveSite(added); err != nil {
		fatal(fmt.Errorf("scale-in: %w", err))
	}
	feed(*events)
	check(fmt.Sprintf("act 5: scale-in (-site %d)", added))

	fmt.Println("\ndrill complete: every act bit-identical to the static-roster oracle")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fdctl:", err)
	os.Exit(1)
}
