package main

// The -serve-drill mode: a scripted crash-recovery drill against a live
// server.Service, in the same acts-then-verdict shape as the cluster drill.
// One subscriber follows a grouped aggregation while the drill kills the
// runtime mid-stream (supervised restart), drops and resumes the client by
// cursor, fences a poison query into quarantine and revives it over the
// control protocol, and finally takes the whole process through a graceful
// shutdown and a cold restart in the same state directory. After every act
// the rows received so far are compared bit-for-bit against an in-process
// oracle run that was never interrupted; any drift exits non-zero.

import (
	"fmt"
	"os"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
	"forwarddecay/netgen"
	"forwarddecay/server"
)

const serveQuery = `select tb, dstIP, count(*), sum(len), avg(float(len))
	from TCP group by time/10 as tb, dstIP`

// servePoisonQuery divides by zero on every tuple it folds; the per-query
// breaker fences it into quarantine while the healthy subscription above
// must keep receiving bit-identical rows.
const servePoisonQuery = `select tb, sum(len / (len - len)) from TCP group by time/10 as tb`

const serveToken = "drill"

func runServeDrill(packets int, seed uint64, verbose bool) {
	dir, err := os.MkdirTemp("", "fdctl-serve-*")
	if err != nil {
		fatal(err)
	}
	if !verbose {
		defer os.RemoveAll(dir)
	}

	// The oracle: the same packets through one uninterrupted serial run.
	// Forward decay fixes weights at arrival, so nothing the drill does to
	// the server can excuse a diverging row. The run is never closed — the
	// server never closes live runs either, so the open bucket's rows are
	// not part of the observable stream on either side.
	cfg := netgen.DefaultConfig(50, seed)
	cfg.Hosts = 50
	g := netgen.New(cfg)
	pkts := g.Take(make([]netgen.Packet, 0, packets), packets)
	oracle := oracleRun(pkts)

	logf := func(string, ...any) {}
	if verbose {
		logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, "    "+format+"\n", args...) }
	}
	newService := func() *server.Service {
		svc, err := server.New(server.Config{
			Dir:         dir,
			ControlAddr: "127.0.0.1:0",
			IngestAddr:  "127.0.0.1:0",
			Tokens:      []string{serveToken},
			CheckpointEvery: 2048,
			ResultLog:       1 << 15,
			Logf:            logf,
		})
		if err != nil {
			fatal(err)
		}
		return svc
	}
	dial := func(svc *server.Service, session uint64) *ingest.Dialer {
		network, address := ingest.SplitAddr(svc.IngestAddr())
		return ingest.Dial(network, address, ingest.DialerConfig{
			Session: session, BatchSize: 64,
			MinBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
			AckTimeout: 500 * time.Millisecond, Seed: session,
		})
	}

	svc := newService()
	cl, err := server.DialClient(svc.ControlAddr().String(), serveToken, time.Second)
	if err != nil {
		fatal(err)
	}
	id, err := cl.Attach(serveQuery)
	if err != nil {
		fatal(fmt.Errorf("attach: %w", err))
	}
	ch, err := cl.Subscribe(id, 0, server.PolicyBlock, 0)
	if err != nil {
		fatal(fmt.Errorf("subscribe: %w", err))
	}

	var got []gsql.Tuple
	var cursor uint64
	collect := func(act string, n int) {
		deadline := time.After(60 * time.Second)
		for i := 0; i < n; i++ {
			select {
			case ev, ok := <-ch:
				if !ok || ev.Err != nil {
					fatal(fmt.Errorf("%s: subscription died after %d rows: %v", act, len(got), ev.Err))
				}
				if ev.Gap {
					fatal(fmt.Errorf("%s: unexpected gap [%d,%d)", act, ev.GapFrom, ev.GapTo))
				}
				if ev.Cursor != cursor+1 {
					fatal(fmt.Errorf("%s: cursor %d, want %d", act, ev.Cursor, cursor+1))
				}
				cursor = ev.Cursor
				got = append(got, append(gsql.Tuple(nil), ev.Row...))
			case <-deadline:
				fatal(fmt.Errorf("%s: timed out after %d/%d rows", act, i, n))
			}
		}
	}
	check := func(act string, cut int) {
		want := oracle(cut)
		collect(act, len(want)-len(got))
		if len(got) != len(want) {
			fatal(fmt.Errorf("%s: %d rows, oracle has %d", act, len(got), len(want)))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					fatal(fmt.Errorf("%s: row %d col %d: got %v, oracle %v", act, i, j, got[i][j], want[i][j]))
				}
			}
		}
		fmt.Printf("%-44s rows=%d cursor=%d  ✓ bit-identical\n", act, len(got), cursor)
	}
	stream := func(d *ingest.Dialer, from, to int, killAt ...int) {
		k := 0
		for i := from; i < to; i++ {
			if k < len(killAt) && i == killAt[k] {
				svc.Kill()
				k++
			}
			if err := d.Send(pkts[i]); err != nil {
				fatal(fmt.Errorf("send %d: %w", i, err))
			}
		}
		if err := d.Close(); err != nil {
			fatal(fmt.Errorf("drain acks: %w", err))
		}
	}

	q := packets / 4
	fmt.Printf("fdctl: supervised-server drill (%d packets, state=%s)\n\n", packets, dir)

	stream(dial(svc, 1), 0, q)
	check("act 1: steady stream", q)

	stream(dial(svc, 2), q, 2*q, q+q/3, q+2*q/3)
	if svc.Counters().Get("server_restarts") < 1 {
		fatal(fmt.Errorf("act 2: runtime killed twice but server_restarts = 0"))
	}
	check("act 2: runtime killed twice, supervised restart", 2*q)

	// A poison query joins the catalog before the next act: its div-by-zero
	// trips the per-query breaker mid-stream, and the healthy subscription's
	// bit-identical check below proves the blast radius stayed inside it.
	pid, err := cl.Attach(servePoisonQuery)
	if err != nil {
		fatal(fmt.Errorf("poison attach: %w", err))
	}

	// The client vanishes mid-conversation and a fresh one resumes from its
	// last-acked cursor.
	cl.Close()
	cl, err = server.DialClient(svc.ControlAddr().String(), serveToken, time.Second)
	if err != nil {
		fatal(err)
	}
	ch, err = cl.Subscribe(id, cursor+1, server.PolicyBlock, 0)
	if err != nil {
		fatal(fmt.Errorf("resume subscribe: %w", err))
	}
	stream(dial(svc, 3), 2*q, 3*q)
	check("act 3: client dropped, resumed by cursor", 3*q)

	// The poison query must be fenced by now; revive it over the control
	// protocol (the stream is idle, so the fence stays lifted) and detach it
	// like any other query.
	deadline := time.Now().Add(10 * time.Second)
	for svc.Counters().Get("server_quarantines") < 1 {
		if time.Now().After(deadline) {
			fatal(fmt.Errorf("act 3b: poison query never quarantined"))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := cl.Revive(pid); err != nil {
		fatal(fmt.Errorf("act 3b: revive: %w", err))
	}
	if err := cl.Detach(pid); err != nil {
		fatal(fmt.Errorf("act 3b: detach revived query: %w", err))
	}
	fmt.Printf("%-44s quarantines=%d revives=%d  ✓ healthy rows unperturbed\n",
		"act 3b: poison query fenced, revived, detached",
		svc.Counters().Get("server_quarantines"), svc.Counters().Get("server_revives"))

	// Full process restart: graceful shutdown (drains to a checkpoint), then
	// a cold start from the same directory.
	cl.Close()
	if err := svc.Shutdown(); err != nil {
		fatal(fmt.Errorf("graceful shutdown: %w", err))
	}
	svc = newService()
	defer svc.Shutdown()
	cl, err = server.DialClient(svc.ControlAddr().String(), serveToken, time.Second)
	if err != nil {
		fatal(err)
	}
	ch, err = cl.Subscribe(id, cursor+1, server.PolicyBlock, 0)
	if err != nil {
		fatal(fmt.Errorf("post-restart subscribe: %w", err))
	}
	stream(dial(svc, 4), 3*q, packets)
	check("act 4: graceful shutdown, cold restart, resumed", packets)

	fmt.Println("\ndrill complete: every act bit-identical to the uninterrupted oracle")
}

// oracleRun pushes the full packet trace through one serial run and returns
// a prefix view: oracle(cut) is the rows an uninterrupted run has emitted
// after consuming pkts[:cut]. Emission is deterministic and append-only, so
// prefixes of the input map to prefixes of the output.
func oracleRun(pkts []netgen.Packet) func(cut int) []gsql.Tuple {
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		fatal(err)
	}
	st, err := e.Prepare(serveQuery)
	if err != nil {
		fatal(err)
	}
	var rows []gsql.Tuple
	run := st.Start(func(row gsql.Tuple) error {
		rows = append(rows, append(gsql.Tuple(nil), row...))
		return nil
	}, gsql.Options{})
	counts := make([]int, len(pkts)+1)
	for i, p := range pkts {
		if err := run.Push(netgen.Tuple(p)); err != nil {
			fatal(err)
		}
		counts[i+1] = len(rows)
	}
	// Deliberately not closed: the open bucket must stay unobservable.
	return func(cut int) []gsql.Tuple { return rows[:counts[cut]] }
}
