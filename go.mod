module forwarddecay

go 1.22
