package distrib

// Segmented, checksummed, replayable ingest log. Every ring-routed
// observation is appended here — under the routing lock, so log order and
// site-apply order agree per partition — before it is delivered to a site.
// A crashed site's replacement therefore rebuilds its partitions from the
// last checkpoint slice plus a replay of the records after the slice's
// sequence watermark, instead of silently losing its window.
//
// Each record is sealed with the ingest package's length+checksum envelope
// (the exact codec the wire frames travel in), carries a per-partition
// sequence number, and lives in a size-rotated segment file:
//
//	segment file  =  8-byte magic "FDWAL\x01\x00\x00"  ·  sealed records
//	record body   =  u8 type(1) · u32 partition · u64 seq · u64 key ·
//	                 f64 value · f64 time        (little-endian, 37 bytes)
//
// Segments rotate at SegmentBytes and are trimmed at checkpoint boundaries:
// a segment whose every record is covered by the checkpoint watermarks is
// deleted. Replay deduplicates by sequence number, so duplicated or
// overlapping records (a crashed writer re-appending, an overlapping
// segment) apply exactly once, in sequence order. A torn final record in
// the newest segment — the signature of a crash mid-append — is tolerated
// on open and truncated away; torn bytes anywhere else are corruption and
// refuse to load.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"forwarddecay/ingest"
	"forwarddecay/internal/durable"
)

// walMagic opens every segment file: "FDWAL" + version 1 + two zero bytes.
var walMagic = [8]byte{'F', 'D', 'W', 'A', 'L', 1, 0, 0}

// walRecordType tags observation records inside a segment.
const walRecordType = 1

// walRecordLen is the encoded body length of one record.
const walRecordLen = 1 + 4 + 8 + 8 + 8 + 8

// walMaxRecord bounds the sealed-body length a segment reader accepts, so a
// corrupt length prefix can never trigger a giant allocation.
const walMaxRecord = 1 << 12

// Record is one logged observation with its partition and sequence number.
type Record struct {
	Part uint32
	Seq  uint64
	Key  uint64
	Val  float64
	Time float64
}

// LogError reports a structurally damaged log segment: a bad magic, a
// forged checksum, a mid-segment truncation, or a malformed record body.
type LogError struct {
	// Segment names the offending file (empty when decoding raw bytes).
	Segment string
	// Off is the byte offset of the damage within the segment.
	Off int
	// Cause details the defect.
	Cause error
}

func (e *LogError) Error() string {
	where := "segment"
	if e.Segment != "" {
		where = e.Segment
	}
	return fmt.Sprintf("distrib: wal %s: offset %d: %v", where, e.Off, e.Cause)
}

func (e *LogError) Unwrap() error { return e.Cause }

// encodeRecord appends a sealed record to dst.
func encodeRecord(dst []byte, r Record) []byte {
	body := make([]byte, 0, walRecordLen)
	body = append(body, walRecordType)
	body = binary.LittleEndian.AppendUint32(body, r.Part)
	body = binary.LittleEndian.AppendUint64(body, r.Seq)
	body = binary.LittleEndian.AppendUint64(body, r.Key)
	body = binary.LittleEndian.AppendUint64(body, math.Float64bits(r.Val))
	body = binary.LittleEndian.AppendUint64(body, math.Float64bits(r.Time))
	return ingest.AppendSealed(dst, body)
}

// decodeRecordBody parses a checksum-verified record body.
func decodeRecordBody(body []byte) (Record, error) {
	if len(body) != walRecordLen {
		return Record{}, fmt.Errorf("record body is %d bytes, want %d", len(body), walRecordLen)
	}
	if body[0] != walRecordType {
		return Record{}, fmt.Errorf("unknown record type 0x%02x", body[0])
	}
	r := Record{
		Part: binary.LittleEndian.Uint32(body[1:]),
		Seq:  binary.LittleEndian.Uint64(body[5:]),
		Key:  binary.LittleEndian.Uint64(body[13:]),
		Val:  math.Float64frombits(binary.LittleEndian.Uint64(body[21:])),
		Time: math.Float64frombits(binary.LittleEndian.Uint64(body[29:])),
	}
	if r.Seq == 0 {
		return Record{}, errors.New("record with sequence 0")
	}
	if math.IsNaN(r.Val) || math.IsInf(r.Val, 0) || math.IsNaN(r.Time) || math.IsInf(r.Time, 0) {
		return Record{}, fmt.Errorf("non-finite record value %v / time %v", r.Val, r.Time)
	}
	return r, nil
}

// scanSegment walks the sealed records of a segment image, calling fn for
// each. It returns clean=false with a nil error when the image ends inside
// a record (a torn tail: tolerable only on the newest segment) and a
// *LogError for structural damage — bad magic, forged checksum, malformed
// body. fn errors abort the scan.
func scanSegment(b []byte, fn func(Record) error) (clean bool, err error) {
	if len(b) < len(walMagic) {
		return false, nil // a header torn mid-write reads as an empty tail
	}
	if [8]byte(b[:8]) != walMagic {
		return false, &LogError{Off: 0, Cause: errors.New("bad segment magic")}
	}
	off := len(walMagic)
	for off < len(b) {
		body, n, err := ingest.DecodeSealed(b[off:], walMaxRecord)
		if errors.Is(err, ingest.ErrIncomplete) {
			return false, nil
		}
		if err != nil {
			return false, &LogError{Off: off, Cause: err}
		}
		rec, err := decodeRecordBody(body)
		if err != nil {
			return false, &LogError{Off: off, Cause: err}
		}
		if err := fn(rec); err != nil {
			return false, err
		}
		off += n
	}
	return true, nil
}

// segMeta summarizes one closed or active segment.
type segMeta struct {
	index int
	path  string
	// maxSeq is the highest sequence the segment holds per partition; a
	// segment is trimmable once a checkpoint covers every entry.
	maxSeq map[uint32]uint64
}

// covered reports whether every record of the segment is at or below the
// checkpoint watermarks.
func (m *segMeta) covered(watermark map[uint32]uint64) bool {
	for p, s := range m.maxSeq {
		if s > watermark[p] {
			return false
		}
	}
	return true
}

// LogConfig parameterizes a write-ahead log.
type LogConfig struct {
	// SegmentBytes rotates the active segment once it reaches this size
	// (default 1 MiB).
	SegmentBytes int
}

// Log is a segmented write-ahead log of ring-routed observations. Methods
// are not self-locking: the Cluster serializes access under its routing
// lock (append order must match delivery order anyway), and standalone
// users must do the same.
type Log struct {
	dir  string
	cfg  LogConfig
	segs []segMeta // closed + active, ascending index
	cur  *os.File  // active segment
	curN int       // bytes written to cur
	// seqs is the next-to-assign sequence number minus one, per partition.
	seqs map[uint32]uint64
}

// OpenLog opens (creating if needed) a log rooted at dir, scanning any
// existing segments to restore per-partition sequence counters. A torn
// final record in the newest segment is truncated away; damage anywhere
// else returns a *LogError.
func OpenLog(dir string, cfg LogConfig) (*Log, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("distrib: wal: %w", err)
	}
	l := &Log{dir: dir, cfg: cfg, seqs: map[uint32]uint64{}}
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		return nil, fmt.Errorf("distrib: wal: %w", err)
	}
	sort.Strings(names)
	for i, path := range names {
		var idx int
		if _, err := fmt.Sscanf(filepath.Base(path), "wal-%08d.seg", &idx); err != nil {
			return nil, fmt.Errorf("distrib: wal: unrecognized segment name %q", path)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("distrib: wal: %w", err)
		}
		meta := segMeta{index: idx, path: path, maxSeq: map[uint32]uint64{}}
		goodBytes := len(walMagic)
		clean, err := scanSegment(data, func(r Record) error {
			if r.Seq > meta.maxSeq[r.Part] {
				meta.maxSeq[r.Part] = r.Seq
			}
			if r.Seq > l.seqs[r.Part] {
				l.seqs[r.Part] = r.Seq
			}
			goodBytes += frameOverhead + walRecordLen
			return nil
		})
		if err != nil {
			if le, ok := err.(*LogError); ok {
				le.Segment = filepath.Base(path)
			}
			return nil, err
		}
		if !clean {
			if i != len(names)-1 {
				return nil, &LogError{Segment: filepath.Base(path), Off: goodBytes,
					Cause: errors.New("truncated record in a non-final segment")}
			}
			if len(data) < len(walMagic) {
				// The header itself never completed: the segment holds nothing.
				// Drop the file; rotation recreates it on the next append.
				if err := os.Remove(path); err != nil {
					return nil, fmt.Errorf("distrib: wal: removing torn segment: %w", err)
				}
				continue
			}
			// Torn tail of the newest segment: a crash mid-append. The record
			// was never acknowledged; truncate it away.
			if err := os.Truncate(path, int64(goodBytes)); err != nil {
				return nil, fmt.Errorf("distrib: wal: truncating torn tail: %w", err)
			}
		}
		l.segs = append(l.segs, meta)
	}
	return l, l.openActive()
}

// frameOverhead is the sealed-record envelope cost (mirrors the ingest
// header: u32 length + u64 checksum).
const frameOverhead = 4 + 8

// openActive ensures the newest segment is open for appending, creating
// segment 0 on a fresh log.
func (l *Log) openActive() error {
	if len(l.segs) == 0 {
		return l.rotate()
	}
	last := &l.segs[len(l.segs)-1]
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("distrib: wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("distrib: wal: %w", err)
	}
	l.cur, l.curN = f, int(st.Size())
	return nil
}

// rotate seals the active segment — fsync then close, so a sealed segment's
// records are durable before any successor can trim it — and starts the next
// one, syncing the directory so the new segment's name survives a power cut.
func (l *Log) rotate() error {
	if l.cur != nil {
		if err := durable.SyncFile(l.cur); err != nil {
			return fmt.Errorf("distrib: wal: sealing segment: %w", err)
		}
		if err := l.cur.Close(); err != nil {
			return fmt.Errorf("distrib: wal: %w", err)
		}
		l.cur = nil
	}
	next := 0
	if n := len(l.segs); n > 0 {
		next = l.segs[n-1].index + 1
	}
	path := filepath.Join(l.dir, fmt.Sprintf("wal-%08d.seg", next))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("distrib: wal: %w", err)
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return fmt.Errorf("distrib: wal: %w", err)
	}
	if err := durable.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("distrib: wal: %w", err)
	}
	l.segs = append(l.segs, segMeta{index: next, path: path, maxSeq: map[uint32]uint64{}})
	l.cur, l.curN = f, len(walMagic)
	return nil
}

// Append assigns the next sequence number for the observation's partition,
// writes the sealed record, and returns the sequence. The write lands in
// the file before Append returns, so an observation acknowledged to the
// caller is durable against a site crash (the process-crash story is the
// checkpoint; see OpenLog's torn-tail handling).
func (l *Log) Append(part uint32, key uint64, val, ts float64) (uint64, error) {
	if l.curN >= l.cfg.SegmentBytes {
		if err := l.rotate(); err != nil {
			return 0, err
		}
	}
	seq := l.seqs[part] + 1
	rec := Record{Part: part, Seq: seq, Key: key, Val: val, Time: ts}
	buf := encodeRecord(nil, rec)
	if _, err := l.cur.Write(buf); err != nil {
		return 0, fmt.Errorf("distrib: wal append: %w", err)
	}
	l.seqs[part] = seq
	l.curN += len(buf)
	active := &l.segs[len(l.segs)-1]
	if seq > active.maxSeq[part] {
		active.maxSeq[part] = seq
	}
	return seq, nil
}

// LastSeq returns the highest assigned sequence for a partition (0 if none).
func (l *Log) LastSeq(part uint32) uint64 { return l.seqs[part] }

// Replay streams the retained records for the selected partitions, in
// segment and record order, to fn — skipping records at or below the
// per-partition `after` watermark and deduplicating repeated sequence
// numbers. It returns the number of records delivered.
func (l *Log) Replay(parts map[uint32]bool, after map[uint32]uint64, fn func(Record) error) (int, error) {
	if err := l.sync(); err != nil {
		return 0, err
	}
	seen := map[uint32]uint64{}
	for p, s := range after {
		seen[p] = s
	}
	delivered := 0
	for i := range l.segs {
		data, err := os.ReadFile(l.segs[i].path)
		if err != nil {
			return delivered, fmt.Errorf("distrib: wal replay: %w", err)
		}
		clean, err := scanSegment(data, func(r Record) error {
			if parts != nil && !parts[r.Part] {
				return nil
			}
			if r.Seq <= seen[r.Part] {
				return nil // duplicate or checkpoint-covered
			}
			if err := fn(r); err != nil {
				return err
			}
			seen[r.Part] = r.Seq
			delivered++
			return nil
		})
		if err != nil {
			if le, ok := err.(*LogError); ok {
				le.Segment = filepath.Base(l.segs[i].path)
			}
			return delivered, err
		}
		if !clean && i != len(l.segs)-1 {
			return delivered, &LogError{Segment: filepath.Base(l.segs[i].path),
				Cause: errors.New("truncated record in a non-final segment")}
		}
	}
	return delivered, nil
}

// sync flushes the active segment to the file system (through the shared
// fault point, so the durability drills cover this path too).
func (l *Log) sync() error {
	if l.cur == nil {
		return nil
	}
	if err := durable.SyncFile(l.cur); err != nil {
		return fmt.Errorf("distrib: wal: %w", err)
	}
	return nil
}

// Trim deletes every closed segment whose records are all covered by the
// checkpoint watermarks (partition → highest checkpointed sequence). The
// active segment always survives. It returns the number of segments
// removed.
func (l *Log) Trim(watermark map[uint32]uint64) (int, error) {
	kept := l.segs[:0]
	removed := 0
	for i := range l.segs {
		m := l.segs[i]
		if i < len(l.segs)-1 && m.covered(watermark) {
			if err := os.Remove(m.path); err != nil {
				return removed, fmt.Errorf("distrib: wal trim: %w", err)
			}
			removed++
			continue
		}
		kept = append(kept, m)
	}
	l.segs = kept
	if removed > 0 {
		// Make the removals durable: without a directory sync a power cut
		// can resurrect trimmed segments, and replay would then re-deliver
		// records the checkpoint already covers (harmless for dedup, but the
		// segment count the operators monitor would lie).
		if err := durable.SyncDir(l.dir); err != nil {
			return removed, fmt.Errorf("distrib: wal trim: %w", err)
		}
	}
	return removed, nil
}

// Segments returns the number of retained segments (including the active
// one).
func (l *Log) Segments() int { return len(l.segs) }

// Close flushes (fsync) and closes the active segment.
func (l *Log) Close() error {
	if l.cur == nil {
		return nil
	}
	serr := durable.SyncFile(l.cur)
	err := l.cur.Close()
	l.cur = nil
	if serr != nil {
		return fmt.Errorf("distrib: wal: %w", serr)
	}
	if err != nil {
		return fmt.Errorf("distrib: wal: %w", err)
	}
	return nil
}
