package distrib

import (
	"errors"
	"strings"
	"testing"

	"forwarddecay/internal/faultinject"
)

// TestLogRotateSyncFailureSurfaced: a failed fsync while sealing the outgoing
// segment must abort the rotation with the injected error — the seal is what
// makes "this segment's records are durable" true before a checkpoint can
// ever cover (and Trim can ever delete) them.
func TestLogRotateSyncFailureSurfaced(t *testing.T) {
	defer faultinject.Reset()
	l, err := OpenLog(t.TempDir(), LogConfig{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Fill past the rotation threshold so the next Append must rotate.
	if _, err := l.Append(0, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(0, 2, 2, 2); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("simulated device failure at segment seal")
	faultinject.Set("durable.sync", faultinject.Fault{ErrEvery: 1, Err: injected})
	_, err = l.Append(0, 3, 3, 3)
	if !errors.Is(err, injected) {
		t.Fatalf("Append during poisoned rotation: err = %v, want wrapped %v", err, injected)
	}
	if !strings.Contains(err.Error(), "sealing segment") {
		t.Errorf("error does not name the seal step: %v", err)
	}
	// Healing the device lets the log resume: the deferred rotation happens
	// and the record lands in the fresh segment.
	faultinject.Reset()
	seq, err := l.Append(0, 3, 3, 3)
	if err != nil {
		t.Fatalf("Append after heal: %v", err)
	}
	if seq != 3 {
		t.Fatalf("post-heal seq = %d, want 3", seq)
	}
}

// TestLogTrimDirSyncFailureSurfaced: Trim reports a directory-sync failure
// instead of silently claiming the removals are durable.
func TestLogTrimDirSyncFailureSurfaced(t *testing.T) {
	defer faultinject.Reset()
	l, err := OpenLog(t.TempDir(), LogConfig{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	walAppendN(t, l, 12) // forces several rotations at 64-byte segments
	if l.Segments() < 2 {
		t.Fatalf("expected multiple segments, have %d", l.Segments())
	}
	injected := errors.New("simulated device failure at dir fsync")
	faultinject.Set("durable.dirsync", faultinject.Fault{ErrEvery: 1, Err: injected})
	watermark := map[uint32]uint64{0: 1 << 60, 1: 1 << 60, 2: 1 << 60}
	if _, err := l.Trim(watermark); !errors.Is(err, injected) {
		t.Fatalf("Trim: err = %v, want wrapped %v", err, injected)
	}
}

// TestLogCloseSyncFailureSurfaced: Close fsyncs the active segment and
// reports a failure rather than losing the tail silently.
func TestLogCloseSyncFailureSurfaced(t *testing.T) {
	defer faultinject.Reset()
	l, err := OpenLog(t.TempDir(), LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	walAppendN(t, l, 3)
	injected := errors.New("simulated device failure at close fsync")
	faultinject.Set("durable.sync", faultinject.Fault{ErrEvery: 1, Err: injected})
	if err := l.Close(); !errors.Is(err, injected) {
		t.Fatalf("Close: err = %v, want wrapped %v", err, injected)
	}
}
