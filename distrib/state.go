package distrib

// Per-partition aggregate state and the versioned "state slice" envelope it
// ships in. A slice is the unit of every state movement in the elastic
// cluster — snapshot answers, handoff transfers, checkpoint entries — and
// carries the partition id, the write-ahead-log sequence watermark the
// state covers, and a trailing integrity hash, mirroring the checkpoint-v2
// discipline of the gsql runtimes: state is verified before it is trusted,
// and a slice cut under an older landmark is rebased with an exact
// ShiftLandmark instead of being blended across frames.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

// sliceVersion stamps the state-slice envelope format.
const sliceVersion = 2

// partState is one partition's aggregates on a site (or in a rebuild).
type partState struct {
	sum *agg.Sum
	hh  *agg.HeavyHitters
	qd  *agg.Quantiles
	// lastSeq is the highest WAL sequence applied to this state; 0 until a
	// ring-routed observation lands.
	lastSeq uint64
}

// newPartState allocates empty aggregates for one partition under a model.
func (c *Cluster) newPartState(m decay.Forward) *partState {
	ps := &partState{sum: agg.NewSum(m)}
	if c.cfg.HHK > 0 {
		ps.hh = agg.NewHeavyHittersK(m, c.cfg.HHK)
	}
	if c.cfg.QuantileU > 0 {
		ps.qd = agg.NewQuantiles(m, c.cfg.QuantileU, c.cfg.QuantileEps)
	}
	return ps
}

// observe applies one observation. seq 0 marks a non-logged (explicitly
// routed) observation; logged observations at or below the applied
// watermark are duplicates and are dropped.
func (ps *partState) observe(ob Observation, seq uint64) bool {
	if seq != 0 {
		if seq <= ps.lastSeq {
			return false
		}
		ps.lastSeq = seq
	}
	ps.sum.Observe(ob.Time, ob.Value)
	if ps.hh != nil {
		ps.hh.Observe(ob.Key, ob.Time)
	}
	if ps.qd != nil {
		v := uint64(0)
		if ob.Value > 0 {
			v = uint64(ob.Value)
		}
		ps.qd.Observe(v, ob.Time)
	}
	return true
}

// shift rebases the partition onto a new landmark (exact; exponential decay
// only).
func (ps *partState) shift(newL float64) error {
	if err := ps.sum.ShiftLandmark(newL); err != nil {
		return err
	}
	if ps.hh != nil {
		if err := ps.hh.ShiftLandmark(newL); err != nil {
			return err
		}
	}
	if ps.qd != nil {
		if err := ps.qd.ShiftLandmark(newL); err != nil {
			return err
		}
	}
	return nil
}

// merge folds another partition state (same partition, same frame) in.
func (ps *partState) merge(o *partState) error {
	if err := ps.sum.Merge(o.sum); err != nil {
		return err
	}
	if ps.hh != nil && o.hh != nil {
		if err := ps.hh.Merge(o.hh); err != nil {
			return err
		}
	}
	if ps.qd != nil && o.qd != nil {
		if err := ps.qd.Merge(o.qd); err != nil {
			return err
		}
	}
	if o.lastSeq > ps.lastSeq {
		ps.lastSeq = o.lastSeq
	}
	return nil
}

// encodeSlice seals one partition's state into the versioned envelope:
//
//	u8 version(2) · u32 partition · u64 lastSeq · f64 landmark ·
//	u32 len(sum) · sum · u8 hasHH [· u32 len · hh] · u8 hasQD [· u32 len · qd] ·
//	u64 integrity hash of everything before it
func encodeSlice(part uint32, ps *partState) ([]byte, error) {
	sumB, err := ps.sum.MarshalBinary()
	if err != nil {
		return nil, err
	}
	b := make([]byte, 0, 64+len(sumB))
	b = append(b, sliceVersion)
	b = binary.LittleEndian.AppendUint32(b, part)
	b = binary.LittleEndian.AppendUint64(b, ps.lastSeq)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ps.sum.Model().Landmark))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(sumB)))
	b = append(b, sumB...)
	appendOpt := func(blob []byte, err error) error {
		if err != nil {
			return err
		}
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(blob)))
		b = append(b, blob...)
		return nil
	}
	if ps.hh == nil {
		b = append(b, 0)
	} else if err := appendOpt(ps.hh.MarshalBinary()); err != nil {
		return nil, err
	}
	if ps.qd == nil {
		b = append(b, 0)
	} else if err := appendOpt(ps.qd.MarshalBinary()); err != nil {
		return nil, err
	}
	return binary.LittleEndian.AppendUint64(b, core.HashBytes(b)), nil
}

// sliceHeader carries the envelope fields alongside the decoded state.
type sliceHeader struct {
	part     uint32
	lastSeq  uint64
	landmark float64
}

// decodeSlice verifies and decodes a state slice. The aggregates come back
// under the landmark the slice was cut at (stamped both in the envelope and
// inside every aggregate's own model); callers rebase with shift when the
// cluster has rolled past it.
func decodeSlice(b []byte) (sliceHeader, *partState, error) {
	var hdr sliceHeader
	if len(b) < 1+4+8+8+4+8 {
		return hdr, nil, errors.New("state slice too short")
	}
	payload, tail := b[:len(b)-8], b[len(b)-8:]
	if core.HashBytes(payload) != binary.LittleEndian.Uint64(tail) {
		return hdr, nil, errors.New("state slice integrity hash mismatch")
	}
	if payload[0] != sliceVersion {
		return hdr, nil, fmt.Errorf("state slice version %d, want %d", payload[0], sliceVersion)
	}
	hdr.part = binary.LittleEndian.Uint32(payload[1:])
	hdr.lastSeq = binary.LittleEndian.Uint64(payload[5:])
	hdr.landmark = math.Float64frombits(binary.LittleEndian.Uint64(payload[13:]))
	if math.IsNaN(hdr.landmark) || math.IsInf(hdr.landmark, 0) {
		return hdr, nil, fmt.Errorf("state slice with non-finite landmark %v", hdr.landmark)
	}
	rest := payload[21:]
	next := func(withLen bool) ([]byte, error) {
		if !withLen {
			return nil, nil
		}
		if len(rest) < 4 {
			return nil, errors.New("state slice truncated before a length prefix")
		}
		n := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if uint64(len(rest)) < uint64(n) {
			return nil, fmt.Errorf("state slice component claims %d bytes, %d remain", n, len(rest))
		}
		blob := rest[:n]
		rest = rest[n:]
		return blob, nil
	}
	sumB, err := next(true)
	if err != nil {
		return hdr, nil, err
	}
	ps := &partState{sum: &agg.Sum{}, lastSeq: hdr.lastSeq}
	if err := ps.sum.UnmarshalBinary(sumB); err != nil {
		return hdr, nil, fmt.Errorf("decoding sum: %w", err)
	}
	for i := 0; i < 2; i++ {
		if len(rest) < 1 {
			return hdr, nil, errors.New("state slice truncated before a presence flag")
		}
		present := rest[0]
		rest = rest[1:]
		if present > 1 {
			return hdr, nil, fmt.Errorf("state slice presence flag 0x%02x", present)
		}
		blob, err := next(present == 1)
		if err != nil {
			return hdr, nil, err
		}
		if blob == nil {
			continue
		}
		if i == 0 {
			ps.hh = &agg.HeavyHitters{}
			if err := ps.hh.UnmarshalBinary(blob); err != nil {
				return hdr, nil, fmt.Errorf("decoding heavy hitters: %w", err)
			}
		} else {
			ps.qd = &agg.Quantiles{}
			if err := ps.qd.UnmarshalBinary(blob); err != nil {
				return hdr, nil, fmt.Errorf("decoding quantiles: %w", err)
			}
		}
	}
	if len(rest) != 0 {
		return hdr, nil, fmt.Errorf("state slice has %d trailing bytes", len(rest))
	}
	return hdr, ps, nil
}
