package distrib

import (
	"math"
	"sync"
	"testing"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/netgen"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	return d <= tol || d <= tol*math.Max(math.Abs(a), math.Abs(b))
}

// TestClusterMatchesSingleNode partitions a packet stream across sites by
// flow hash and checks the merged snapshot equals a single-node run: sums
// exactly, heavy hitters and quantiles within their merge error.
func TestClusterMatchesSingleNode(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(2), 0)
	cl, err := New(Config{
		Sites: 4, Model: model, HHK: 400, QuantileU: 2048, QuantileEps: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	single := agg.NewSum(model)
	singleHH := agg.NewHeavyHittersK(model, 400)

	gen := netgen.New(netgen.DefaultConfig(5000, 17))
	var now float64
	for gen.Now() < 60 {
		p := gen.Next()
		now = p.Time
		ob := Observation{Key: p.DestKey(), Value: float64(p.Len), Time: p.Time}
		cl.ObserveKeyed(ob) // ring-routed by destination key
		single.Observe(p.Time, float64(p.Len))
		singleHH.Observe(p.DestKey(), p.Time)
	}
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()

	if !almostEq(snap.Sum.Value(now), single.Value(now), 1e-9) {
		t.Errorf("cluster sum %v, single-node %v", snap.Sum.Value(now), single.Value(now))
	}
	if !almostEq(snap.Sum.Mean(), single.Mean(), 1e-9) {
		t.Errorf("cluster mean %v, single-node %v", snap.Sum.Mean(), single.Mean())
	}
	if !almostEq(snap.Sum.Variance(), single.Variance(), 1e-6) {
		t.Errorf("cluster variance %v, single-node %v", snap.Sum.Variance(), single.Variance())
	}

	// Heavy hitters: the single-node φ-heavy hitters must all be reported
	// by the merged summary (merge widens error bounds but preserves the
	// guarantee superset-wise at slightly smaller φ).
	const phi = 0.03
	merged := map[uint64]bool{}
	for _, it := range snap.HH.Query(now, phi/2) {
		merged[it.Key] = true
	}
	for _, it := range singleHH.Query(now, phi) {
		if !merged[it.Key] {
			t.Errorf("cluster lost heavy hitter %d", it.Key)
		}
	}
	if snap.Quantiles == nil {
		t.Fatal("quantiles missing")
	}
	med := snap.Quantiles.Quantile(0.5)
	if med < 40 || med > 1500 {
		t.Errorf("merged median packet size %d implausible", med)
	}
}

// TestClusterConcurrentSnapshots exercises snapshots while ingestion is in
// flight from multiple producers.
func TestClusterConcurrentSnapshots(t *testing.T) {
	model := decay.NewForward(decay.NewExp(0.01), 0)
	cl, err := New(Config{Sites: 3, Model: model, HHK: 50})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 3; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20000; i++ {
				cl.Observe(p, Observation{Key: uint64(i % 100), Value: 1, Time: float64(i) * 0.001})
			}
		}()
	}
	snapsDone := make(chan struct{})
	go func() {
		defer close(snapsDone)
		for i := 0; i < 20; i++ {
			if _, err := cl.Snapshot(); err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
		}
	}()
	wg.Wait()
	<-snapsDone
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if snap.Sum.N() != 60000 {
		t.Errorf("cluster saw %d observations, want 60000", snap.Sum.N())
	}
}

// TestClusterSkewedPartitioning sends nearly everything to one site; the
// merged result is identical to balanced partitioning (merging is exact for
// the sums).
func TestClusterSkewedPartitioning(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(1), 0)
	mk := func(route func(i int) int) float64 {
		cl, err := New(Config{Sites: 4, Model: model})
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < 10000; i++ {
			cl.Observe(route(i), Observation{Key: 1, Value: 2, Time: 1 + float64(i)*0.01})
		}
		snap, err := cl.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap.Sum.Value(200)
	}
	balanced := mk(func(i int) int { return i % 4 })
	skewed := mk(func(i int) int {
		if i%100 == 0 {
			return i % 4
		}
		return 0
	})
	if !almostEq(balanced, skewed, 1e-9) {
		t.Errorf("partitioning changed the answer: %v vs %v", balanced, skewed)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(2), 0)
	if _, err := New(Config{Sites: 0, Model: model}); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := New(Config{Sites: 1}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := New(Config{Sites: 1, Model: model, QuantileU: 100}); err == nil {
		t.Error("quantiles without epsilon accepted")
	}
}

func TestClusterCloseIdempotentAndSnapshotAfterClose(t *testing.T) {
	model := decay.NewForward(decay.NewPoly(2), 0)
	cl, err := New(Config{Sites: 2, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	cl.Observe(0, Observation{Key: 1, Value: 1, Time: 1})
	cl.Close()
	cl.Close() // idempotent
	if _, err := cl.Snapshot(); err == nil {
		t.Error("snapshot after close should fail")
	}
}
