// Package distrib runs forward-decay aggregation across distributed sites,
// the deployment mode of §VI-B and the concluding remarks of the paper:
// because static weights are fixed at arrival and all summaries merge, any
// number of independent sites can aggregate their own partitions of a
// stream and a coordinator can combine their partial states into the
// summary of the union — with no coordination during ingestion and no
// sensitivity to arrival order or skew between sites.
//
// The cluster is elastic. The key space folds onto a fixed set of
// partitions, a consistent-hash ring (virtual nodes, deterministic seed)
// assigns partitions to sites, and every site keeps its aggregates per
// partition — so when the roster changes, only the partitions whose owner
// moved are handed off: the source quiesces, cuts a versioned, integrity-
// hashed state slice per partition, and the destination installs it,
// rebasing with an exact ShiftLandmark when the slice was cut in an older
// epoch. Because forward-decay state is mergeable and (for exponential
// decay) landmark-shiftable without approximation, a handoff is
// bit-identical to never having moved the partition at all.
//
// Ring-routed observations are appended to a segmented, checksummed
// write-ahead log before delivery, with per-partition sequence numbers. A
// crashed site therefore loses nothing acknowledged: its replacement
// rebuilds from the last checkpoint slice plus a replay of the records
// after the slice's watermark. Epoch rollovers run the same two-phase
// propose/commit protocol as before, but tolerate mid-roll churn: a site
// that fails its proposal is quarantined and the round re-proposed to the
// survivors, so the cluster always converges to a single landmark.
//
// Each site runs in its own goroutine, owns its aggregates exclusively, and
// ships *serialized* partial state to the coordinator on demand, modelling
// the network boundary: what crosses between goroutines is the same byte
// encoding that would cross between machines. The coordinator is
// fault-tolerant in the same spirit: per-site snapshot requests carry a
// timeout and a bounded retry budget, and up to Config.MaxFailedSites
// non-responsive or failing sites may be skipped, with the merged Summary
// reporting exactly which sites are missing.
package distrib

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/internal/core"
	"forwarddecay/internal/faultinject"
	"forwarddecay/metrics"
)

// Observation is one keyed, timestamped, valued stream event.
type Observation struct {
	// Key identifies the item (e.g. a destination); it also selects the
	// partition, and through the ring the site, for keyed routing.
	Key uint64
	// Value is the observation's numeric value (e.g. bytes); it feeds the
	// decayed sum and, clamped to the quantile domain, the quantile digest.
	Value float64
	// Time is the event timestamp.
	Time float64
}

// BadObservationError reports an observation rejected at the ingest
// boundary: a NaN or ±Inf value or timestamp would poison the decayed
// state of every later query on the site.
type BadObservationError struct {
	// Field names the offending Observation field ("Value" or "Time").
	Field string
	// X is the offending value.
	X float64
}

func (e *BadObservationError) Error() string {
	return fmt.Sprintf("distrib: non-finite observation %s %v rejected", e.Field, e.X)
}

// RouteError reports an observation that could not be routed: an explicit
// site target that is not in the live roster, or a keyed route to a downed
// site with no write-ahead log to absorb it. (Explicit out-of-range targets
// used to wrap silently around the roster; they are a hard, typed error
// now.)
type RouteError struct {
	// Site is the site id the route resolved to (or was aimed at).
	Site int
	// Reason says why the route failed.
	Reason string
}

func (e *RouteError) Error() string {
	return fmt.Sprintf("distrib: cannot route to site %d: %s", e.Site, e.Reason)
}

// Config describes a cluster.
type Config struct {
	// Sites is the number of initial ingestion sites (goroutines), ≥ 1.
	// Sites join and leave the live cluster through AddSite / RemoveSite.
	Sites int
	// Model is the shared forward decay model; all sites must agree on the
	// function and landmark for their summaries to merge.
	Model decay.Forward
	// HHK enables per-partition heavy-hitter summaries with HHK counters
	// when positive.
	HHK int
	// QuantileU enables per-partition quantile digests over [0, QuantileU)
	// with error QuantileEps when positive.
	QuantileU   uint64
	QuantileEps float64
	// Buffer is each site's input channel capacity (default 1024).
	Buffer int

	// Partitions is the number of key-space partitions — the granularity of
	// consistent-hash assignment, handoff, and log replay (default 32).
	Partitions int
	// VNodes is the number of virtual ring points per site (default 64).
	VNodes int
	// RingSeed makes ring placement deterministic across processes; any
	// agreed-upon value works (default 0).
	RingSeed uint64

	// WALDir, when non-empty, enables the segmented write-ahead log: every
	// ring-routed observation is logged before delivery, and crashed sites
	// rebuild from checkpoint + replay instead of losing their window.
	WALDir string
	// WALSegmentBytes rotates log segments at this size (default 1 MiB).
	WALSegmentBytes int

	// Metrics, when set, mirrors the cluster's health counters into the
	// registry under "distrib.*" names (see Health).
	Metrics *metrics.CounterSet

	// SnapshotTimeout bounds how long Snapshot waits for any single site's
	// reply (per attempt) before treating the site as failed; default 2s.
	// The same budget bounds epoch proposals and handoff cuts.
	SnapshotTimeout time.Duration
	// SnapshotRetries is how many additional attempts a failed site gets
	// before Snapshot gives up on it; default 1.
	SnapshotRetries int
	// MaxFailedSites is the number of sites Snapshot tolerates losing: up to
	// this many unresponsive or erroring sites are skipped, and the Summary
	// lists them in MissingSites. Default 0: any site failure fails the
	// snapshot.
	MaxFailedSites int
}

// Summary is a merged, queryable snapshot of the whole cluster.
type Summary struct {
	// Sum holds the decayed count/sum/mean/variance of all observations.
	Sum *agg.Sum
	// HH holds the merged heavy hitters (nil unless enabled).
	HH *agg.HeavyHitters
	// Quantiles holds the merged quantile digest (nil unless enabled).
	Quantiles *agg.Quantiles
	// MissingSites lists the live sites absent from the merge (each failed
	// its snapshot within the coordinator's timeout and retry budget), plus
	// any downed site that could not be reconstructed from the log. Empty on
	// a complete snapshot.
	MissingSites []int
}

// route is one delivery to a site: the observation, its partition, and its
// write-ahead-log sequence (0 for unlogged, explicitly-targeted routes).
type route struct {
	ob   Observation
	part uint32
	seq  uint64
}

// siteAnswer is a site's serialized per-partition state.
type siteAnswer struct {
	parts map[uint32][]byte // partition → encoded state slice
	err   error
}

// siteEpochReq is one leg of the two-phase epoch rollover. The site drains
// its queue, validates the shift, and answers prepared; it then pauses —
// ingesting nothing — until the coordinator's commit/abort decision, so no
// observation is ever aggregated while the cluster's sites straddle two
// landmarks. All three channels are buffered so neither side can deadlock
// the other on a timeout.
type siteEpochReq struct {
	newL     float64
	prepared chan error
	commit   chan bool
	done     chan error
}

// handoffReq asks a site to quiesce and cut the named partitions (nil =
// everything it holds) out of its state.
type handoffReq struct {
	parts []uint32
	reply chan siteAnswer
}

// installReq ships serialized partition slices into a running site, which
// decodes, rebases onto its own epoch if needed, and merges-or-installs.
type installReq struct {
	slices map[uint32][]byte
	reply  chan error
}

// site is one ingestion worker.
type site struct {
	id    int
	in    chan route
	snap  chan chan siteAnswer
	epoch chan *siteEpochReq
	cut   chan *handoffReq
	inst  chan *installReq
	kill  chan struct{}
	done  chan struct{}
}

// ckptEntry is one partition's latest checkpointed slice and its log
// watermark.
type ckptEntry struct {
	blob []byte
	seq  uint64
}

// Cluster is a running set of sites plus the coordinator-side routing,
// handoff and merge logic. ObserveKeyed routes events through the ring;
// Snapshot produces a merged Summary. Close must be called to release the
// workers.
type Cluster struct {
	cfg    Config
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	// opMu serializes coordinator operations (Snapshot, RollEpoch,
	// Checkpoint, membership changes) and guards model and ckpt: a snapshot
	// can never observe the cluster mid-rollover or mid-handoff.
	opMu  sync.Mutex
	model decay.Forward
	ckpt  map[uint32]ckptEntry

	// routeMu guards the ring, the roster, and the write-ahead log, and —
	// critically — is held across append+deliver, so per-partition log
	// order and site-apply order always agree.
	routeMu sync.Mutex
	ring    *Ring
	roster  map[int]*site
	downSet map[int]bool
	nextID  int
	wal     *Log

	health health
}

// New starts a cluster. It returns an error for invalid configurations.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("distrib: need at least one site")
	}
	if cfg.Model.Func == nil {
		return nil, fmt.Errorf("distrib: config needs a decay model")
	}
	if cfg.QuantileU > 0 && !(cfg.QuantileEps > 0 && cfg.QuantileEps < 1) {
		return nil, fmt.Errorf("distrib: quantiles enabled but QuantileEps invalid")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 32
	}
	if cfg.VNodes <= 0 {
		cfg.VNodes = 64
	}
	if cfg.SnapshotTimeout <= 0 {
		cfg.SnapshotTimeout = 2 * time.Second
	}
	if cfg.SnapshotRetries < 0 {
		cfg.SnapshotRetries = 0
	} else if cfg.SnapshotRetries == 0 {
		cfg.SnapshotRetries = 1
	}
	if cfg.MaxFailedSites < 0 {
		cfg.MaxFailedSites = 0
	}
	c := &Cluster{
		cfg:     cfg,
		model:   cfg.Model,
		ckpt:    map[uint32]ckptEntry{},
		ring:    NewRing(cfg.RingSeed, cfg.VNodes),
		roster:  map[int]*site{},
		downSet: map[int]bool{},
	}
	c.health.set = cfg.Metrics
	if cfg.WALDir != "" {
		wal, err := OpenLog(cfg.WALDir, LogConfig{SegmentBytes: cfg.WALSegmentBytes})
		if err != nil {
			return nil, err
		}
		c.wal = wal
	}
	for i := 0; i < cfg.Sites; i++ {
		id := c.nextID
		c.nextID++
		c.ring.Add(id)
		c.roster[id] = c.startSite(id, c.model, nil)
	}
	return c, nil
}

// startSite spawns a site goroutine with initial per-partition state.
func (c *Cluster) startSite(id int, m decay.Forward, init map[uint32]*partState) *site {
	s := &site{
		id:    id,
		in:    make(chan route, c.cfg.Buffer),
		snap:  make(chan chan siteAnswer),
		epoch: make(chan *siteEpochReq),
		cut:   make(chan *handoffReq),
		inst:  make(chan *installReq),
		kill:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	if init == nil {
		init = map[uint32]*partState{}
	}
	c.wg.Add(1)
	go c.runSite(s, m, init)
	return s
}

// runSite is the per-site event loop: it owns its per-partition aggregates
// exclusively, so no locking is needed on the hot path.
func (c *Cluster) runSite(s *site, model decay.Forward, parts map[uint32]*partState) {
	defer c.wg.Done()
	defer close(s.done)

	apply := func(rt route) {
		ps := parts[rt.part]
		if ps == nil {
			ps = c.newPartState(model)
			parts[rt.part] = ps
		}
		ps.observe(rt.ob, rt.seq)
	}
	// drain consumes everything already queued, so snapshots, handoffs and
	// epoch proposals observe every delivered observation. It reports false
	// when the input channel closed.
	drain := func() bool {
		for {
			select {
			case rt, ok := <-s.in:
				if !ok {
					return false
				}
				apply(rt)
			default:
				return true
			}
		}
	}
	marshalParts := func(sel []uint32, remove bool) siteAnswer {
		var ids []uint32
		if sel == nil {
			for p := range parts {
				ids = append(ids, p)
			}
		} else {
			ids = sel
		}
		out := map[uint32][]byte{}
		for _, p := range ids {
			ps := parts[p]
			if ps == nil {
				continue
			}
			blob, err := encodeSlice(p, ps)
			if err != nil {
				return siteAnswer{err: err}
			}
			out[p] = blob
		}
		if remove {
			for p := range out {
				delete(parts, p)
			}
		}
		return siteAnswer{parts: out}
	}
	answer := func() siteAnswer {
		// Fault-injection point for the failed-site experiments: an armed
		// error or delay here models a site that crashes or stalls while
		// serving a snapshot.
		if err := faultinject.Hit("distrib.site.snapshot"); err != nil {
			return siteAnswer{err: err}
		}
		return marshalParts(nil, false)
	}
	// zombie services the site's channels with errors after a failed epoch
	// commit left its frame indeterminate: it keeps consuming (so no sender
	// ever wedges on a full queue) but contributes nothing, until the
	// coordinator reaps it.
	zombie := func(siteErr error) {
		for {
			select {
			case _, ok := <-s.in:
				if !ok {
					return
				}
			case reply := <-s.snap:
				reply <- siteAnswer{err: siteErr}
			case req := <-s.epoch:
				req.prepared <- siteErr
			case req := <-s.cut:
				req.reply <- siteAnswer{err: siteErr}
			case req := <-s.inst:
				req.reply <- siteErr
			case <-s.kill:
				return
			}
		}
	}

	for {
		select {
		case rt, ok := <-s.in:
			if !ok {
				return
			}
			apply(rt)
		case <-s.kill:
			// Simulated process death: discard all in-memory state. Whatever
			// was acknowledged lives in the write-ahead log.
			return
		case reply := <-s.snap:
			if !drain() {
				reply <- answer()
				return
			}
			reply <- answer()
		case req := <-s.cut:
			// Shard handoff, source leg: quiesce, cut the requested slices
			// out of the local state, ship them serialized.
			if !drain() {
				req.reply <- siteAnswer{err: fmt.Errorf("distrib: site closed during handoff")}
				return
			}
			if err := faultinject.Hit("distrib.site.handoff"); err != nil {
				req.reply <- siteAnswer{err: err}
				zombie(fmt.Errorf("distrib: site crashed during handoff: %w", err))
				return
			}
			req.reply <- marshalParts(req.parts, true)
		case req := <-s.inst:
			// Shard handoff, destination leg: decode, rebase onto the local
			// epoch if the slice is older, merge-or-install.
			if !drain() {
				req.reply <- fmt.Errorf("distrib: site closed during install")
				return
			}
			req.reply <- installSlices(parts, req.slices, model, c)
		case req := <-s.epoch:
			// Phase 1: quiesce and validate, then pause for the decision.
			if !drain() {
				req.prepared <- fmt.Errorf("distrib: site closed during epoch prepare")
				return
			}
			if err := faultinject.Hit("distrib.site.epoch.prepare"); err != nil {
				req.prepared <- err
				break
			}
			if _, _, ok := model.Shifted(req.newL); !ok {
				req.prepared <- &decay.NotShiftableError{Func: model.Func.String()}
				break
			}
			req.prepared <- nil
			var doCommit bool
			select {
			case doCommit = <-req.commit:
			case <-s.kill:
				return
			}
			if !doCommit {
				break
			}
			// Phase 2: apply. A fault or shift failure here leaves the
			// site's frame indeterminate: report it and turn zombie until
			// the coordinator quarantines us.
			if err := faultinject.Hit("distrib.site.epoch.commit"); err != nil {
				err = fmt.Errorf("distrib: epoch commit fault: %w", err)
				req.done <- err
				zombie(err)
				return
			}
			var shiftErr error
			for _, ps := range parts {
				if shiftErr = ps.shift(req.newL); shiftErr != nil {
					break
				}
			}
			if shiftErr != nil {
				req.done <- shiftErr
				zombie(shiftErr)
				return
			}
			if m, _, ok := model.Shifted(req.newL); ok {
				model = m
			}
			req.done <- nil
		}
	}
}

// installSlices decodes serialized partition slices into a site's state,
// rebasing slices cut under an older landmark and merging into any state
// already present (exact for all the summaries here).
func installSlices(parts map[uint32]*partState, slices map[uint32][]byte, model decay.Forward, c *Cluster) error {
	for p, blob := range slices {
		hdr, ps, err := decodeSlice(blob)
		if err != nil {
			return fmt.Errorf("distrib: installing partition %d: %w", p, err)
		}
		if hdr.part != p {
			return fmt.Errorf("distrib: installing partition %d: slice is for partition %d", p, hdr.part)
		}
		if hdr.landmark != model.Landmark {
			if err := ps.shift(model.Landmark); err != nil {
				return fmt.Errorf("distrib: rebasing partition %d onto landmark %v: %w", p, model.Landmark, err)
			}
		}
		if cur := parts[p]; cur != nil {
			if err := cur.merge(ps); err != nil {
				return fmt.Errorf("distrib: merging partition %d: %w", p, err)
			}
		} else {
			parts[p] = ps
		}
	}
	return nil
}

// partitionOf folds a key onto the partition space.
func (c *Cluster) partitionOf(key uint64) uint32 {
	return uint32(core.Mix64(key) % uint64(c.cfg.Partitions))
}

// Partitions returns the configured partition count.
func (c *Cluster) Partitions() int { return c.cfg.Partitions }

// checkOb validates an observation at the ingest boundary.
func checkOb(ob Observation) error {
	if math.IsNaN(ob.Value) || math.IsInf(ob.Value, 0) {
		return &BadObservationError{Field: "Value", X: ob.Value}
	}
	if math.IsNaN(ob.Time) || math.IsInf(ob.Time, 0) {
		return &BadObservationError{Field: "Time", X: ob.Time}
	}
	return nil
}

// ObserveKeyed routes an observation to the site owning its key's
// partition, appending it to the write-ahead log (when configured) before
// delivery — so a nil return means the observation is durable against any
// single site crash. If the owning site is down, the observation is
// accepted into the log alone and re-applied when the site rejoins; with no
// log configured, a downed owner yields a *RouteError instead of silent
// loss. Observations carrying a NaN or ±Inf value or timestamp are rejected
// with a *BadObservationError.
func (c *Cluster) ObserveKeyed(ob Observation) error {
	if err := checkOb(ob); err != nil {
		return err
	}
	part := c.partitionOf(ob.Key)
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	owner, ok := c.ring.Owner(part)
	if !ok {
		return &RouteError{Site: -1, Reason: "ring has no members"}
	}
	seq := uint64(0)
	if c.wal != nil {
		var err error
		if seq, err = c.wal.Append(part, ob.Key, ob.Value, ob.Time); err != nil {
			return err
		}
		c.health.bump(&c.health.logged, cntLoggedRecords, 1)
	}
	s := c.roster[owner]
	if s == nil {
		if c.downSet[owner] && c.wal != nil {
			// Logged and acknowledged; the rejoining site replays it.
			return nil
		}
		return &RouteError{Site: owner, Reason: "site is down and no write-ahead log is configured"}
	}
	s.in <- route{ob: ob, part: part, seq: seq}
	return nil
}

// Observe delivers an observation to an explicitly targeted live site,
// bypassing the ring. The target must name a live roster site: anything
// else — an unknown id, a downed site — returns a *RouteError (indices no
// longer wrap). Explicitly targeted observations bypass the write-ahead log
// too, so they carry no crash-durability guarantee; keyed routing is the
// production path.
func (c *Cluster) Observe(siteID int, ob Observation) error {
	if err := checkOb(ob); err != nil {
		return err
	}
	part := c.partitionOf(ob.Key)
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	s := c.roster[siteID]
	if s == nil {
		reason := "no such site"
		if c.downSet[siteID] {
			reason = "site is down"
		}
		return &RouteError{Site: siteID, Reason: reason}
	}
	s.in <- route{ob: ob, part: part}
	return nil
}

// Sites returns the number of live sites.
func (c *Cluster) Sites() int {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	return len(c.roster)
}

// LiveSites returns the live site ids, ascending.
func (c *Cluster) LiveSites() []int {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	return sortedIDs(c.roster)
}

// DownSites returns the ids of crashed or quarantined sites that have not
// rejoined, ascending.
func (c *Cluster) DownSites() []int {
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	var out []int
	for id := range c.downSet {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Owner reports which site currently owns a key's partition.
func (c *Cluster) Owner(key uint64) (site int, ok bool) {
	part := c.partitionOf(key)
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	return c.ring.Owner(part)
}

func sortedIDs(m map[int]*site) []int {
	out := make([]int, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// snapshotSite requests one site's serialized state, bounding each attempt
// by the configured timeout and retrying failed attempts up to the retry
// budget. A timed-out attempt leaves the request outstanding; the buffered
// reply channel lets the site's late answer complete without blocking it.
func (c *Cluster) snapshotSite(s *site) siteAnswer {
	var last siteAnswer
	for attempt := 0; attempt <= c.cfg.SnapshotRetries; attempt++ {
		if attempt > 0 {
			c.health.bump(&c.health.snapshotRetries, cntSnapshotRetries, 1)
		}
		reply := make(chan siteAnswer, 1)
		timer := time.NewTimer(c.cfg.SnapshotTimeout)
		select {
		case s.snap <- reply:
		case <-s.done:
			timer.Stop()
			return siteAnswer{err: fmt.Errorf("distrib: site %d already closed", s.id)}
		case <-timer.C:
			last = siteAnswer{err: fmt.Errorf("distrib: site %d snapshot request timed out after %v", s.id, c.cfg.SnapshotTimeout)}
			continue
		}
		select {
		case st := <-reply:
			timer.Stop()
			if st.err == nil {
				return st
			}
			last = siteAnswer{err: fmt.Errorf("distrib: site %d snapshot: %w", s.id, st.err)}
		case <-timer.C:
			last = siteAnswer{err: fmt.Errorf("distrib: site %d snapshot reply timed out after %v", s.id, c.cfg.SnapshotTimeout)}
		}
	}
	return last
}

// newSummary allocates the coordinator-side merge target in the cluster's
// current decay frame (the caller holds opMu).
func (c *Cluster) newSummary() *Summary {
	out := &Summary{Sum: agg.NewSum(c.model)}
	if c.cfg.HHK > 0 {
		out.HH = agg.NewHeavyHittersK(c.model, c.cfg.HHK)
	}
	if c.cfg.QuantileU > 0 {
		out.Quantiles = agg.NewQuantiles(c.model, c.cfg.QuantileU, c.cfg.QuantileEps)
	}
	return out
}

// decodeAnswer decodes every slice of a site's answer before any of it is
// merged, validating each slice's frame against the cluster's — so a failed
// (skippable) site never leaves a partial contribution behind, and state
// from a different landmark is rejected naming the site, not blended in.
func (c *Cluster) decodeAnswer(siteID int, ans siteAnswer) (map[uint32]*partState, error) {
	out := make(map[uint32]*partState, len(ans.parts))
	for p, blob := range ans.parts {
		hdr, ps, err := decodeSlice(blob)
		if err != nil {
			return nil, fmt.Errorf("distrib: decoding site %d partition %d: %w", siteID, p, err)
		}
		if hdr.part != p {
			return nil, fmt.Errorf("distrib: site %d shipped partition %d labelled %d", siteID, p, hdr.part)
		}
		if hdr.landmark != c.model.Landmark {
			return nil, fmt.Errorf("distrib: site %d partition %d is in landmark-%v frame, cluster is at %v",
				siteID, p, hdr.landmark, c.model.Landmark)
		}
		out[p] = ps
	}
	return out, nil
}

// mergeState folds one partition's decoded state into the summary.
func mergeState(out *Summary, siteID int, part uint32, ps *partState) error {
	if err := out.Sum.Merge(ps.sum); err != nil {
		return fmt.Errorf("distrib: merging site %d partition %d sum: %w", siteID, part, err)
	}
	if out.HH != nil && ps.hh != nil {
		if err := out.HH.Merge(ps.hh); err != nil {
			return fmt.Errorf("distrib: merging site %d partition %d heavy hitters: %w", siteID, part, err)
		}
	}
	if out.Quantiles != nil && ps.qd != nil {
		if err := out.Quantiles.Merge(ps.qd); err != nil {
			return fmt.Errorf("distrib: merging site %d partition %d quantiles: %w", siteID, part, err)
		}
	}
	return nil
}

// Snapshot asks every live site for its serialized partial state, rebuilds
// any downed site's partitions from checkpoint + log replay, and merges the
// decoded partials into a fresh Summary — exactly the distributed pattern
// of §VI-B, made churn-proof. It is safe to call concurrently with
// ObserveKeyed/Observe; each site snapshots at an event boundary.
//
// A live site that fails to answer within the timeout and retry budget, or
// whose state fails to decode, is skipped when no more than
// Config.MaxFailedSites sites have failed — the Summary then covers the
// surviving partitions and MissingSites names the absent sites. Beyond that
// tolerance, Snapshot returns the first failing site's error. Merging
// happens in ascending (partition, site) order, so two clusters holding
// identical partition states produce bit-identical summaries regardless of
// roster history.
func (c *Cluster) Snapshot() (*Summary, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()

	type decoded struct {
		id    int
		parts map[uint32]*partState
	}
	var all []decoded
	var missing []int
	fail := func(id int, err error) error {
		if len(missing) >= c.cfg.MaxFailedSites {
			return err
		}
		missing = append(missing, id)
		c.health.bump(&c.health.failedSites, cntFailedSites, 1)
		return nil
	}

	c.routeMu.Lock()
	liveIDs := sortedIDs(c.roster)
	liveSites := make([]*site, 0, len(liveIDs))
	for _, id := range liveIDs {
		liveSites = append(liveSites, c.roster[id])
	}
	downIDs := make([]int, 0, len(c.downSet))
	for id := range c.downSet {
		downIDs = append(downIDs, id)
	}
	sort.Ints(downIDs)
	c.routeMu.Unlock()

	for i, id := range liveIDs {
		ans := c.snapshotSite(liveSites[i])
		if ans.err == nil {
			parts, err := c.decodeAnswer(id, ans)
			if err != nil {
				ans.err = err
			} else {
				all = append(all, decoded{id: id, parts: parts})
				continue
			}
		}
		if err := fail(id, ans.err); err != nil {
			return nil, err
		}
	}
	// Downed sites: their acknowledged observations are all in the log, so
	// reconstruct their owned partitions coordinator-side instead of
	// reporting a hole. Without a log there is nothing to rebuild from.
	for _, id := range downIDs {
		if c.wal == nil {
			if err := fail(id, fmt.Errorf("distrib: site %d is down", id)); err != nil {
				return nil, err
			}
			continue
		}
		c.routeMu.Lock()
		parts := c.ownedBy(id)
		states, err := c.rebuildParts(parts)
		c.routeMu.Unlock()
		if err != nil {
			if err := fail(id, fmt.Errorf("distrib: rebuilding down site %d: %w", id, err)); err != nil {
				return nil, err
			}
			continue
		}
		all = append(all, decoded{id: id, parts: states})
	}

	sort.Slice(all, func(i, j int) bool { return all[i].id < all[j].id })
	out := c.newSummary()
	for p := 0; p < c.cfg.Partitions; p++ {
		for _, d := range all {
			if ps, ok := d.parts[uint32(p)]; ok {
				if err := mergeState(out, d.id, uint32(p), ps); err != nil {
					return nil, err
				}
			}
		}
	}
	sort.Ints(missing)
	out.MissingSites = missing
	return out, nil
}

// ownedBy lists the partitions the ring assigns to a site (routeMu held).
func (c *Cluster) ownedBy(id int) []uint32 {
	var out []uint32
	for p := 0; p < c.cfg.Partitions; p++ {
		if owner, ok := c.ring.Owner(uint32(p)); ok && owner == id {
			out = append(out, uint32(p))
		}
	}
	return out
}

// rebuildParts reconstructs partitions from the last checkpoint slice plus
// a write-ahead-log replay past each slice's watermark, rebased onto the
// cluster's current landmark. Caller holds opMu and routeMu.
func (c *Cluster) rebuildParts(parts []uint32) (map[uint32]*partState, error) {
	states := make(map[uint32]*partState, len(parts))
	after := make(map[uint32]uint64, len(parts))
	sel := make(map[uint32]bool, len(parts))
	for _, p := range parts {
		sel[p] = true
		if e, ok := c.ckpt[p]; ok {
			hdr, ps, err := decodeSlice(e.blob)
			if err != nil {
				return nil, fmt.Errorf("distrib: checkpoint slice for partition %d: %w", p, err)
			}
			if hdr.landmark != c.model.Landmark {
				if err := ps.shift(c.model.Landmark); err != nil {
					return nil, fmt.Errorf("distrib: rebasing checkpoint partition %d: %w", p, err)
				}
			}
			states[p] = ps
			after[p] = hdr.lastSeq
		} else {
			states[p] = c.newPartState(c.model)
		}
	}
	if c.wal != nil && len(parts) > 0 {
		n, err := c.wal.Replay(sel, after, func(r Record) error {
			states[r.Part].observe(Observation{Key: r.Key, Value: r.Val, Time: r.Time}, r.Seq)
			return nil
		})
		c.health.bump(&c.health.replayed, cntReplayedRecords, uint64(n))
		if err != nil {
			return nil, err
		}
	}
	return states, nil
}

// Checkpoint cuts a fresh per-partition state slice from every live site
// and retires write-ahead-log segments wholly covered by the new
// watermarks. Sites that fail to answer keep their previous checkpoint
// entries, so their log records are retained until they recover. Calling it
// periodically bounds both replay time after a crash and log disk usage.
func (c *Cluster) Checkpoint() error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	c.routeMu.Lock()
	ids := sortedIDs(c.roster)
	sites := make([]*site, 0, len(ids))
	for _, id := range ids {
		sites = append(sites, c.roster[id])
	}
	c.routeMu.Unlock()

	var firstErr error
	for i, id := range ids {
		ans := c.snapshotSite(sites[i])
		if ans.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("distrib: checkpoint of site %d: %w", id, ans.err)
			}
			continue
		}
		for p, blob := range ans.parts {
			hdr, _, err := decodeSlice(blob)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("distrib: checkpoint slice from site %d partition %d: %w", id, p, err)
				}
				continue
			}
			c.ckpt[p] = ckptEntry{blob: blob, seq: hdr.lastSeq}
		}
	}
	if c.wal != nil {
		wm := make(map[uint32]uint64, len(c.ckpt))
		for p, e := range c.ckpt {
			wm[p] = e.seq
		}
		c.routeMu.Lock()
		n, err := c.wal.Trim(wm)
		c.routeMu.Unlock()
		c.health.bump(&c.health.trimmed, cntTrimmedSegments, uint64(n))
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Model returns the cluster's current decay model: the configured function
// on the landmark most recently committed by RollEpoch.
func (c *Cluster) Model() decay.Forward {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	return c.model
}

// cutParts asks a live site to quiesce and hand over partitions (nil = all
// it holds), bounded by the snapshot timeout.
func (c *Cluster) cutParts(s *site, parts []uint32) siteAnswer {
	req := &handoffReq{parts: parts, reply: make(chan siteAnswer, 1)}
	timer := time.NewTimer(c.cfg.SnapshotTimeout)
	defer timer.Stop()
	select {
	case s.cut <- req:
	case <-s.done:
		return siteAnswer{err: fmt.Errorf("distrib: site %d already closed", s.id)}
	case <-timer.C:
		return siteAnswer{err: fmt.Errorf("distrib: site %d handoff request timed out after %v", s.id, c.cfg.SnapshotTimeout)}
	}
	select {
	case ans := <-req.reply:
		return ans
	case <-timer.C:
		return siteAnswer{err: fmt.Errorf("distrib: site %d handoff reply timed out after %v", s.id, c.cfg.SnapshotTimeout)}
	}
}

// installAt ships serialized slices into a live site, bounded by the
// snapshot timeout.
func (c *Cluster) installAt(s *site, slices map[uint32][]byte) error {
	if len(slices) == 0 {
		return nil
	}
	req := &installReq{slices: slices, reply: make(chan error, 1)}
	timer := time.NewTimer(c.cfg.SnapshotTimeout)
	defer timer.Stop()
	select {
	case s.inst <- req:
	case <-s.done:
		return fmt.Errorf("distrib: site %d already closed", s.id)
	case <-timer.C:
		return fmt.Errorf("distrib: site %d install request timed out after %v", s.id, c.cfg.SnapshotTimeout)
	}
	select {
	case err := <-req.reply:
		return err
	case <-timer.C:
		return fmt.Errorf("distrib: site %d install reply timed out after %v", s.id, c.cfg.SnapshotTimeout)
	}
}

// crashSiteRouted tears a live site down as a crash: its goroutine exits,
// its in-memory state is discarded, and it is marked down for later
// recovery. Caller holds routeMu.
func (c *Cluster) crashSiteRouted(id int) {
	s := c.roster[id]
	if s == nil {
		return
	}
	close(s.kill)
	<-s.done
	delete(c.roster, id)
	c.downSet[id] = true
	c.health.bump(&c.health.crashes, cntSiteCrashes, 1)
}

// CrashSite simulates the process death of a live site: the worker is torn
// down and every in-memory aggregate it held is discarded. With a
// write-ahead log configured nothing acknowledged is lost — the site's
// partitions rebuild from checkpoint + replay on RecoverSite, and keyed
// observations routed to it meanwhile are absorbed by the log. It is the
// chaos-testing and operational-drill entry point.
func (c *Cluster) CrashSite(id int) error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	if c.roster[id] == nil {
		return &RouteError{Site: id, Reason: "no such live site"}
	}
	c.crashSiteRouted(id)
	return nil
}

// RecoverSite rebuilds a downed site from the last checkpoint plus a
// write-ahead-log replay and returns it to the live roster — the
// rejoin-from-log leg of crash recovery. The rebuilt state is rebased onto
// the cluster's current landmark, so a site that missed epoch rolls while
// down rejoins in the right frame.
func (c *Cluster) RecoverSite(id int) error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	c.routeMu.Lock()
	defer c.routeMu.Unlock()
	if !c.downSet[id] {
		return &RouteError{Site: id, Reason: "site is not down"}
	}
	if c.wal == nil && len(c.ckpt) == 0 {
		// Nothing to rebuild from; the site rejoins empty (its window is
		// lost, which is the best a log-less cluster can do).
		c.roster[id] = c.startSite(id, c.model, nil)
		delete(c.downSet, id)
		c.health.bump(&c.health.rejoins, cntSiteRejoins, 1)
		return nil
	}
	states, err := c.rebuildParts(c.ownedBy(id))
	if err != nil {
		return err
	}
	c.roster[id] = c.startSite(id, c.model, states)
	delete(c.downSet, id)
	c.health.bump(&c.health.rejoins, cntSiteRejoins, 1)
	return nil
}

// AddSite grows the live roster by one site and hands it exactly the
// partitions the ring reassigns to it (about P/N of them): each current
// owner quiesces, cuts checkpoint-v2 state slices, and the new site
// installs them — bit-identical to a cluster that always had the new
// roster. A source site that crashes mid-handoff is quarantined and the
// moved partitions are rebuilt from checkpoint + log replay instead; the
// returned site id is valid either way, alongside the error describing the
// casualty.
func (c *Cluster) AddSite() (int, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	c.routeMu.Lock()
	defer c.routeMu.Unlock()

	id := c.nextID
	c.nextID++
	newRing := c.ring.Clone()
	newRing.Add(id)
	moved := movedPartitions(c.ring, newRing, c.cfg.Partitions)

	bySrc := map[int][]uint32{}
	for _, p := range moved {
		owner, ok := c.ring.Owner(p)
		if !ok {
			owner = -1
		}
		bySrc[owner] = append(bySrc[owner], p)
	}
	srcs := make([]int, 0, len(bySrc))
	for src := range bySrc {
		srcs = append(srcs, src)
	}
	sort.Ints(srcs)

	states := map[uint32]*partState{}
	var firstErr error
	for _, src := range srcs {
		parts := bySrc[src]
		s := c.roster[src]
		if s != nil {
			ans := c.cutParts(s, parts)
			if ans.err == nil {
				if err := installSlices(states, ans.parts, c.model, c); err == nil {
					continue
				} else if firstErr == nil {
					firstErr = err
				}
			} else if firstErr == nil {
				firstErr = fmt.Errorf("distrib: handoff from site %d failed (site quarantined): %w", src, ans.err)
			}
			// The source failed mid-handoff: treat it as crashed and fall
			// back to the log.
			c.crashSiteRouted(src)
		} else if firstErr == nil && c.wal == nil {
			firstErr = fmt.Errorf("distrib: source site %d is down and no write-ahead log is configured; partitions rebuilt from last checkpoint only", src)
		}
		rebuilt, err := c.rebuildParts(parts)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for p, ps := range rebuilt {
			states[p] = ps
		}
	}

	c.roster[id] = c.startSite(id, c.model, states)
	c.ring = newRing
	c.health.bump(&c.health.handoffs, cntHandoffs, 1)
	c.health.bump(&c.health.handoffParts, cntHandoffPartitions, uint64(len(moved)))
	return id, firstErr
}

// RemoveSite retires a site from the roster, handing every partition it
// holds to the ring's new owners (live removal quiesces and cuts exact
// slices; removing a downed site rebuilds its partitions from checkpoint +
// log replay). The last live site cannot be removed.
func (c *Cluster) RemoveSite(id int) error {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	c.routeMu.Lock()
	defer c.routeMu.Unlock()

	s := c.roster[id]
	wasDown := c.downSet[id]
	if s == nil && !wasDown {
		return &RouteError{Site: id, Reason: "no such site"}
	}
	if s != nil && len(c.roster) == 1 {
		return fmt.Errorf("distrib: cannot remove the last live site")
	}
	ownedBefore := c.ownedBy(id)
	newRing := c.ring.Clone()
	newRing.Remove(id)
	if newRing.Size() == 0 {
		return fmt.Errorf("distrib: cannot remove the last ring member")
	}

	var slices map[uint32][]byte
	var firstErr error
	if s != nil {
		ans := c.cutParts(s, nil)
		if ans.err != nil {
			firstErr = fmt.Errorf("distrib: handoff from site %d failed (site quarantined): %w", id, ans.err)
			c.crashSiteRouted(id)
			wasDown = true
		} else {
			slices = ans.parts
			close(s.in)
			<-s.done
			delete(c.roster, id)
		}
	}
	if wasDown {
		// Rebuild what the departed site owned from the log; anything not
		// reconstructible is already reflected in firstErr.
		states, err := c.rebuildParts(ownedBefore)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
		} else {
			slices = map[uint32][]byte{}
			for p, ps := range states {
				blob, err := encodeSlice(p, ps)
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					continue
				}
				slices[p] = blob
			}
		}
		delete(c.downSet, id)
	}

	// Ship every cut or rebuilt partition to its new owner.
	byDst := map[int]map[uint32][]byte{}
	for p, blob := range slices {
		dst, ok := newRing.Owner(p)
		if !ok {
			continue
		}
		if byDst[dst] == nil {
			byDst[dst] = map[uint32][]byte{}
		}
		byDst[dst][p] = blob
	}
	dsts := make([]int, 0, len(byDst))
	for dst := range byDst {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	moved := 0
	for _, dst := range dsts {
		moved += len(byDst[dst])
		ds := c.roster[dst]
		if ds == nil {
			// New owner is itself down; its rebuild path will pick the
			// partitions up from checkpoint + log. Re-checkpoint the slices
			// so nothing depends on the departed site.
			for p, blob := range byDst[dst] {
				hdr, _, err := decodeSlice(blob)
				if err == nil {
					c.ckpt[p] = ckptEntry{blob: blob, seq: hdr.lastSeq}
				} else if firstErr == nil {
					firstErr = err
				}
			}
			continue
		}
		if err := c.installAt(ds, byDst[dst]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	c.ring = newRing
	c.health.bump(&c.health.handoffs, cntHandoffs, 1)
	c.health.bump(&c.health.handoffParts, cntHandoffPartitions, uint64(moved))
	return firstErr
}

// RollEpoch advances every live site's landmark to newL with the two-phase
// propose/commit protocol, tolerating mid-roll churn. Phase one (propose)
// asks each site to quiesce — drain its queued observations, validate the
// shift, and pause awaiting a decision; phase two (commit) applies the
// exact landmark shift at every site. A site that refuses or times out
// during the proposal is quarantined (treated as crashed) and the round is
// re-proposed to the survivors, so a joining or crashing site can never
// leave the cluster straddling two landmarks. A failure during commit
// quarantines that site while the rest of the cluster completes the roll;
// the error is returned (the landmark still advances, and the quarantined
// site rebuilds in the new frame from the log when it rejoins). Downed
// sites are skipped: their recovery rebases onto the current landmark.
//
// Safe to call concurrently with ObserveKeyed/Observe; serialized against
// Snapshot and membership changes.
func (c *Cluster) RollEpoch(newL float64) error {
	if math.IsNaN(newL) || math.IsInf(newL, 0) {
		return fmt.Errorf("distrib: non-finite landmark %v rejected", newL)
	}
	c.opMu.Lock()
	defer c.opMu.Unlock()
	if _, _, ok := c.model.Shifted(newL); !ok {
		return &decay.NotShiftableError{Func: c.model.Func.String()}
	}

	c.routeMu.Lock()
	maxRounds := len(c.roster) + 1
	c.routeMu.Unlock()

	var reqs map[int]*siteEpochReq
	var ids []int
	for round := 0; ; round++ {
		c.routeMu.Lock()
		ids = sortedIDs(c.roster)
		sites := make(map[int]*site, len(ids))
		for _, id := range ids {
			sites[id] = c.roster[id]
		}
		c.routeMu.Unlock()
		if len(ids) == 0 {
			// Every site is down or removed: the coordinator's frame still
			// advances; recoveries rebase onto it. Drop any previous round's
			// requests — those sites were already aborted.
			reqs, ids = nil, nil
			break
		}

		reqs = map[int]*siteEpochReq{}
		badSite := -1
		var badErr error
		for _, id := range ids {
			req := &siteEpochReq{
				newL:     newL,
				prepared: make(chan error, 1),
				commit:   make(chan bool, 1),
				done:     make(chan error, 1),
			}
			s := sites[id]
			timer := time.NewTimer(c.cfg.SnapshotTimeout)
			select {
			case s.epoch <- req:
			case <-s.done:
				timer.Stop()
				badSite, badErr = id, fmt.Errorf("distrib: site %d already closed", id)
			case <-timer.C:
				badSite, badErr = id, fmt.Errorf("distrib: site %d epoch proposal timed out after %v", id, c.cfg.SnapshotTimeout)
			}
			if badSite >= 0 {
				break
			}
			select {
			case err := <-req.prepared:
				timer.Stop()
				if err != nil {
					badSite, badErr = id, fmt.Errorf("distrib: site %d refused epoch: %w", id, err)
				} else {
					reqs[id] = req // prepared and paused, awaiting commit
				}
			case <-timer.C:
				badSite, badErr = id, fmt.Errorf("distrib: site %d epoch prepare timed out after %v", id, c.cfg.SnapshotTimeout)
			}
			if badSite >= 0 {
				break
			}
		}
		if badSite < 0 {
			break // every live site is prepared
		}
		// Release the prepared sites first (so any ingest blocked on their
		// queues drains), then quarantine the refuser and re-propose.
		for _, req := range reqs {
			req.commit <- false
		}
		c.routeMu.Lock()
		c.crashSiteRouted(badSite)
		c.routeMu.Unlock()
		if round+1 >= maxRounds {
			return fmt.Errorf("distrib: epoch roll gave up after %d rounds: %w", round+1, badErr)
		}
		c.health.bump(&c.health.reproposals, cntEpochReproposals, 1)
	}

	// Phase 2: commit everywhere. Every prepared site is paused at a
	// quiesced state, so the shifts apply to frozen frames.
	for _, req := range reqs {
		req.commit <- true
	}
	var firstErr error
	var casualties []int
	for _, id := range ids {
		req := reqs[id]
		if req == nil {
			continue
		}
		timer := time.NewTimer(c.cfg.SnapshotTimeout)
		select {
		case err := <-req.done:
			timer.Stop()
			if err != nil {
				casualties = append(casualties, id)
				if firstErr == nil {
					firstErr = fmt.Errorf("distrib: site %d epoch commit failed (site quarantined): %w", id, err)
				}
			}
		case <-timer.C:
			casualties = append(casualties, id)
			if firstErr == nil {
				firstErr = fmt.Errorf("distrib: site %d epoch commit timed out after %v", id, c.cfg.SnapshotTimeout)
			}
		}
	}
	// Reap commit casualties: they are zombies (consuming, contributing
	// nothing) until quarantined here.
	if len(casualties) > 0 {
		c.routeMu.Lock()
		for _, id := range casualties {
			c.crashSiteRouted(id)
		}
		c.routeMu.Unlock()
	}
	// The coordinator's frame advances with the committed sites; a failed
	// site is quarantined rather than left silently mergeable.
	if m, _, ok := c.model.Shifted(newL); ok {
		c.model = m
	}
	return firstErr
}

// Close drains and stops all sites and closes the write-ahead log.
// ObserveKeyed/Observe must not be called after (or concurrently with)
// Close. Close is idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.routeMu.Lock()
	for _, s := range c.roster {
		close(s.in)
	}
	c.routeMu.Unlock()
	c.wg.Wait()
	if c.wal != nil {
		c.wal.Close()
	}
}
