// Package distrib runs forward-decay aggregation across distributed sites,
// the deployment mode of §VI-B and the concluding remarks of the paper:
// because static weights are fixed at arrival and all summaries merge, any
// number of independent sites can aggregate their own partitions of a
// stream and a coordinator can combine their partial states into the
// summary of the union — with no coordination during ingestion and no
// sensitivity to arrival order or skew between sites.
//
// Each site runs in its own goroutine, owns its aggregates exclusively, and
// ships *serialized* partial state to the coordinator on demand, modelling
// the network boundary: what crosses between goroutines is the same byte
// encoding that would cross between machines.
package distrib

import (
	"fmt"
	"sync"

	"forwarddecay/agg"
	"forwarddecay/decay"
)

// Observation is one keyed, timestamped, valued stream event.
type Observation struct {
	// Key identifies the item (e.g. a destination).
	Key uint64
	// Value is the observation's numeric value (e.g. bytes); it feeds the
	// decayed sum and, clamped to the quantile domain, the quantile digest.
	Value float64
	// Time is the event timestamp.
	Time float64
}

// Config describes a cluster.
type Config struct {
	// Sites is the number of ingestion sites (goroutines), ≥ 1.
	Sites int
	// Model is the shared forward decay model; all sites must agree on the
	// function and landmark for their summaries to merge.
	Model decay.Forward
	// HHK enables per-site heavy-hitter summaries with HHK counters when
	// positive.
	HHK int
	// QuantileU enables per-site quantile digests over [0, QuantileU) with
	// error QuantileEps when positive.
	QuantileU   uint64
	QuantileEps float64
	// Buffer is each site's input channel capacity (default 1024).
	Buffer int
}

// Summary is a merged, queryable snapshot of the whole cluster.
type Summary struct {
	// Sum holds the decayed count/sum/mean/variance of all observations.
	Sum *agg.Sum
	// HH holds the merged heavy hitters (nil unless enabled).
	HH *agg.HeavyHitters
	// Quantiles holds the merged quantile digest (nil unless enabled).
	Quantiles *agg.Quantiles
}

// siteState is the serialized partial state a site ships on request.
type siteState struct {
	sum []byte
	hh  []byte
	qd  []byte
	err error
}

// site is one ingestion worker.
type site struct {
	in   chan Observation
	snap chan chan siteState
	done chan struct{}
}

// Cluster is a running set of sites plus the coordinator-side merge logic.
// Observe routes events to sites; Snapshot produces a merged Summary.
// Close must be called to release the workers.
type Cluster struct {
	cfg    Config
	sites  []*site
	wg     sync.WaitGroup
	closed bool
	mu     sync.Mutex
}

// New starts a cluster. It returns an error for invalid configurations.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("distrib: need at least one site")
	}
	if cfg.Model.Func == nil {
		return nil, fmt.Errorf("distrib: config needs a decay model")
	}
	if cfg.QuantileU > 0 && !(cfg.QuantileEps > 0 && cfg.QuantileEps < 1) {
		return nil, fmt.Errorf("distrib: quantiles enabled but QuantileEps invalid")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	c := &Cluster{cfg: cfg}
	for i := 0; i < cfg.Sites; i++ {
		s := &site{
			in:   make(chan Observation, cfg.Buffer),
			snap: make(chan chan siteState),
			done: make(chan struct{}),
		}
		c.sites = append(c.sites, s)
		c.wg.Add(1)
		go c.runSite(s)
	}
	return c, nil
}

// runSite is the per-site event loop: it owns its aggregates exclusively,
// so no locking is needed on the hot path.
func (c *Cluster) runSite(s *site) {
	defer c.wg.Done()
	sum := agg.NewSum(c.cfg.Model)
	var hh *agg.HeavyHitters
	if c.cfg.HHK > 0 {
		hh = agg.NewHeavyHittersK(c.cfg.Model, c.cfg.HHK)
	}
	var qd *agg.Quantiles
	if c.cfg.QuantileU > 0 {
		qd = agg.NewQuantiles(c.cfg.Model, c.cfg.QuantileU, c.cfg.QuantileEps)
	}
	process := func(ob Observation) {
		sum.Observe(ob.Time, ob.Value)
		if hh != nil {
			hh.Observe(ob.Key, ob.Time)
		}
		if qd != nil {
			v := uint64(0)
			if ob.Value > 0 {
				v = uint64(ob.Value)
			}
			qd.Observe(v, ob.Time)
		}
	}
	for {
		select {
		case ob, ok := <-s.in:
			if !ok {
				close(s.done)
				return
			}
			process(ob)
		case reply := <-s.snap:
			// Drain everything already queued before answering, so a
			// snapshot taken after ingestion quiesces reflects every
			// delivered observation.
			for drained := false; !drained; {
				select {
				case ob, ok := <-s.in:
					if !ok {
						reply <- marshalSite(sum, hh, qd)
						close(s.done)
						return
					}
					process(ob)
				default:
					drained = true
				}
			}
			reply <- marshalSite(sum, hh, qd)
		}
	}
}

// marshalSite serializes a site's current state.
func marshalSite(sum *agg.Sum, hh *agg.HeavyHitters, qd *agg.Quantiles) siteState {
	var st siteState
	st.sum, st.err = sum.MarshalBinary()
	if st.err != nil {
		return st
	}
	if hh != nil {
		st.hh, st.err = hh.MarshalBinary()
		if st.err != nil {
			return st
		}
	}
	if qd != nil {
		st.qd, st.err = qd.MarshalBinary()
	}
	return st
}

// Observe routes an observation to a site. Site indices wrap (negative
// values included), so callers may pass any routing value — a counter, a
// flow hash cast to int, etc.
func (c *Cluster) Observe(siteIdx int, ob Observation) {
	i := siteIdx % len(c.sites)
	if i < 0 {
		i += len(c.sites)
	}
	c.sites[i].in <- ob
}

// Sites returns the number of sites.
func (c *Cluster) Sites() int { return len(c.sites) }

// Snapshot asks every site for its serialized partial state and merges the
// decoded partials into a fresh Summary — exactly the distributed pattern
// of §VI-B. It is safe to call concurrently with Observe; each site
// snapshots at an event boundary.
func (c *Cluster) Snapshot() (*Summary, error) {
	states := make([]siteState, len(c.sites))
	replies := make([]chan siteState, len(c.sites))
	for i, s := range c.sites {
		replies[i] = make(chan siteState, 1)
		select {
		case s.snap <- replies[i]:
		case <-s.done:
			return nil, fmt.Errorf("distrib: site %d already closed", i)
		}
	}
	for i := range replies {
		states[i] = <-replies[i]
		if states[i].err != nil {
			return nil, fmt.Errorf("distrib: site %d snapshot: %w", i, states[i].err)
		}
	}

	out := &Summary{Sum: agg.NewSum(c.cfg.Model)}
	if c.cfg.HHK > 0 {
		out.HH = agg.NewHeavyHittersK(c.cfg.Model, c.cfg.HHK)
	}
	if c.cfg.QuantileU > 0 {
		out.Quantiles = agg.NewQuantiles(c.cfg.Model, c.cfg.QuantileU, c.cfg.QuantileEps)
	}
	for i, st := range states {
		var sum agg.Sum
		if err := sum.UnmarshalBinary(st.sum); err != nil {
			return nil, fmt.Errorf("distrib: decoding site %d sum: %w", i, err)
		}
		if err := out.Sum.Merge(&sum); err != nil {
			return nil, err
		}
		if out.HH != nil {
			var hh agg.HeavyHitters
			if err := hh.UnmarshalBinary(st.hh); err != nil {
				return nil, fmt.Errorf("distrib: decoding site %d heavy hitters: %w", i, err)
			}
			if err := out.HH.Merge(&hh); err != nil {
				return nil, err
			}
		}
		if out.Quantiles != nil {
			var qd agg.Quantiles
			if err := qd.UnmarshalBinary(st.qd); err != nil {
				return nil, fmt.Errorf("distrib: decoding site %d quantiles: %w", i, err)
			}
			if err := out.Quantiles.Merge(&qd); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Close drains and stops all sites. Observe must not be called after (or
// concurrently with) Close. Close is idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, s := range c.sites {
		close(s.in)
	}
	c.wg.Wait()
}
