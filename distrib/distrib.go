// Package distrib runs forward-decay aggregation across distributed sites,
// the deployment mode of §VI-B and the concluding remarks of the paper:
// because static weights are fixed at arrival and all summaries merge, any
// number of independent sites can aggregate their own partitions of a
// stream and a coordinator can combine their partial states into the
// summary of the union — with no coordination during ingestion and no
// sensitivity to arrival order or skew between sites.
//
// Each site runs in its own goroutine, owns its aggregates exclusively, and
// ships *serialized* partial state to the coordinator on demand, modelling
// the network boundary: what crosses between goroutines is the same byte
// encoding that would cross between machines. The coordinator is
// fault-tolerant in the same spirit: per-site snapshot requests carry a
// timeout and a bounded retry budget, and up to Config.MaxFailedSites
// non-responsive or failing sites may be skipped, with the merged Summary
// reporting exactly which partitions are missing.
package distrib

import (
	"fmt"
	"math"
	"sync"
	"time"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/internal/faultinject"
)

// Observation is one keyed, timestamped, valued stream event.
type Observation struct {
	// Key identifies the item (e.g. a destination).
	Key uint64
	// Value is the observation's numeric value (e.g. bytes); it feeds the
	// decayed sum and, clamped to the quantile domain, the quantile digest.
	Value float64
	// Time is the event timestamp.
	Time float64
}

// BadObservationError reports an observation rejected at the ingest
// boundary: a NaN or ±Inf value or timestamp would poison the decayed
// state of every later query on the site.
type BadObservationError struct {
	// Field names the offending Observation field ("Value" or "Time").
	Field string
	// X is the offending value.
	X float64
}

func (e *BadObservationError) Error() string {
	return fmt.Sprintf("distrib: non-finite observation %s %v rejected", e.Field, e.X)
}

// Config describes a cluster.
type Config struct {
	// Sites is the number of ingestion sites (goroutines), ≥ 1.
	Sites int
	// Model is the shared forward decay model; all sites must agree on the
	// function and landmark for their summaries to merge.
	Model decay.Forward
	// HHK enables per-site heavy-hitter summaries with HHK counters when
	// positive.
	HHK int
	// QuantileU enables per-site quantile digests over [0, QuantileU) with
	// error QuantileEps when positive.
	QuantileU   uint64
	QuantileEps float64
	// Buffer is each site's input channel capacity (default 1024).
	Buffer int

	// SnapshotTimeout bounds how long Snapshot waits for any single site's
	// reply (per attempt) before treating the site as failed; default 2s.
	SnapshotTimeout time.Duration
	// SnapshotRetries is how many additional attempts a failed site gets
	// before Snapshot gives up on it; default 1.
	SnapshotRetries int
	// MaxFailedSites is the number of sites Snapshot tolerates losing: up to
	// this many unresponsive or erroring sites are skipped, and the Summary
	// lists them in MissingSites. Default 0: any site failure fails the
	// snapshot.
	MaxFailedSites int
}

// Summary is a merged, queryable snapshot of the whole cluster.
type Summary struct {
	// Sum holds the decayed count/sum/mean/variance of all observations.
	Sum *agg.Sum
	// HH holds the merged heavy hitters (nil unless enabled).
	HH *agg.HeavyHitters
	// Quantiles holds the merged quantile digest (nil unless enabled).
	Quantiles *agg.Quantiles
	// MissingSites lists the sites whose partitions are absent from the
	// merge (each failed its snapshot within the coordinator's timeout and
	// retry budget). Empty on a complete snapshot; never holds more than
	// Config.MaxFailedSites entries.
	MissingSites []int
}

// siteState is the serialized partial state a site ships on request.
type siteState struct {
	sum []byte
	hh  []byte
	qd  []byte
	err error
}

// siteEpochReq is one leg of the two-phase epoch rollover. The site drains
// its queue, validates the shift, and answers prepared; it then pauses —
// ingesting nothing — until the coordinator's commit/abort decision, so no
// observation is ever aggregated while the cluster's sites straddle two
// landmarks. All three channels are buffered so neither side can deadlock
// the other on a timeout.
type siteEpochReq struct {
	newL     float64
	prepared chan error
	commit   chan bool
	done     chan error
}

// site is one ingestion worker.
type site struct {
	in    chan Observation
	snap  chan chan siteState
	epoch chan *siteEpochReq
	done  chan struct{}
}

// Cluster is a running set of sites plus the coordinator-side merge logic.
// Observe routes events to sites; Snapshot produces a merged Summary.
// Close must be called to release the workers.
type Cluster struct {
	cfg    Config
	sites  []*site
	wg     sync.WaitGroup
	closed bool
	mu     sync.Mutex

	// opMu serializes coordinator operations (Snapshot, RollEpoch) and
	// guards model, the cluster's current decay frame: a snapshot can never
	// observe the cluster mid-rollover, so merges are either entirely in the
	// old frame or entirely in the new one.
	opMu  sync.Mutex
	model decay.Forward
}

// New starts a cluster. It returns an error for invalid configurations.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites < 1 {
		return nil, fmt.Errorf("distrib: need at least one site")
	}
	if cfg.Model.Func == nil {
		return nil, fmt.Errorf("distrib: config needs a decay model")
	}
	if cfg.QuantileU > 0 && !(cfg.QuantileEps > 0 && cfg.QuantileEps < 1) {
		return nil, fmt.Errorf("distrib: quantiles enabled but QuantileEps invalid")
	}
	if cfg.Buffer <= 0 {
		cfg.Buffer = 1024
	}
	if cfg.SnapshotTimeout <= 0 {
		cfg.SnapshotTimeout = 2 * time.Second
	}
	if cfg.SnapshotRetries < 0 {
		cfg.SnapshotRetries = 0
	} else if cfg.SnapshotRetries == 0 {
		cfg.SnapshotRetries = 1
	}
	if cfg.MaxFailedSites < 0 {
		cfg.MaxFailedSites = 0
	}
	c := &Cluster{cfg: cfg, model: cfg.Model}
	for i := 0; i < cfg.Sites; i++ {
		s := &site{
			in:    make(chan Observation, cfg.Buffer),
			snap:  make(chan chan siteState),
			epoch: make(chan *siteEpochReq),
			done:  make(chan struct{}),
		}
		c.sites = append(c.sites, s)
		c.wg.Add(1)
		go c.runSite(s)
	}
	return c, nil
}

// runSite is the per-site event loop: it owns its aggregates exclusively,
// so no locking is needed on the hot path.
func (c *Cluster) runSite(s *site) {
	defer c.wg.Done()
	sum := agg.NewSum(c.cfg.Model)
	var hh *agg.HeavyHitters
	if c.cfg.HHK > 0 {
		hh = agg.NewHeavyHittersK(c.cfg.Model, c.cfg.HHK)
	}
	var qd *agg.Quantiles
	if c.cfg.QuantileU > 0 {
		qd = agg.NewQuantiles(c.cfg.Model, c.cfg.QuantileU, c.cfg.QuantileEps)
	}
	process := func(ob Observation) {
		sum.Observe(ob.Time, ob.Value)
		if hh != nil {
			hh.Observe(ob.Key, ob.Time)
		}
		if qd != nil {
			v := uint64(0)
			if ob.Value > 0 {
				v = uint64(ob.Value)
			}
			qd.Observe(v, ob.Time)
		}
	}
	// siteErr is the site's sticky failure: a failed or faulted epoch commit
	// leaves the site's frame indeterminate, so it refuses every later
	// snapshot rather than ship state that might straddle landmarks.
	var siteErr error
	answer := func() siteState {
		if siteErr != nil {
			return siteState{err: siteErr}
		}
		// Fault-injection point for the failed-site experiments: an armed
		// error or delay here models a site that crashes or stalls while
		// serving a snapshot.
		if err := faultinject.Hit("distrib.site.snapshot"); err != nil {
			return siteState{err: err}
		}
		return marshalSite(sum, hh, qd)
	}
	// drain consumes everything already queued, so snapshots and epoch
	// proposals observe every delivered observation. It reports false when
	// the input channel closed.
	drain := func() bool {
		for {
			select {
			case ob, ok := <-s.in:
				if !ok {
					return false
				}
				process(ob)
			default:
				return true
			}
		}
	}
	for {
		select {
		case ob, ok := <-s.in:
			if !ok {
				close(s.done)
				return
			}
			process(ob)
		case reply := <-s.snap:
			if !drain() {
				reply <- answer()
				close(s.done)
				return
			}
			reply <- answer()
		case req := <-s.epoch:
			// Phase 1: quiesce and validate, then pause for the decision.
			if !drain() {
				req.prepared <- fmt.Errorf("distrib: site closed during epoch prepare")
				close(s.done)
				return
			}
			if siteErr != nil {
				req.prepared <- siteErr
				break
			}
			if _, _, ok := sum.Model().Shifted(req.newL); !ok {
				req.prepared <- &decay.NotShiftableError{Func: sum.Model().Func.String()}
				break
			}
			req.prepared <- nil
			if !<-req.commit {
				break
			}
			// Phase 2: apply. A fault or shift failure here is sticky — the
			// site's state may straddle landmarks, so it quarantines itself.
			if err := faultinject.Hit("distrib.site.epoch.commit"); err != nil {
				siteErr = fmt.Errorf("distrib: epoch commit fault: %w", err)
				req.done <- siteErr
				break
			}
			err := sum.ShiftLandmark(req.newL)
			if err == nil && hh != nil {
				err = hh.ShiftLandmark(req.newL)
			}
			if err == nil && qd != nil {
				err = qd.ShiftLandmark(req.newL)
			}
			if err != nil {
				siteErr = err
			}
			req.done <- err
		}
	}
}

// marshalSite serializes a site's current state.
func marshalSite(sum *agg.Sum, hh *agg.HeavyHitters, qd *agg.Quantiles) siteState {
	var st siteState
	st.sum, st.err = sum.MarshalBinary()
	if st.err != nil {
		return st
	}
	if hh != nil {
		st.hh, st.err = hh.MarshalBinary()
		if st.err != nil {
			return st
		}
	}
	if qd != nil {
		st.qd, st.err = qd.MarshalBinary()
	}
	return st
}

// Observe routes an observation to a site. Site indices wrap (negative
// values included), so callers may pass any routing value — a counter, a
// flow hash cast to int, etc. Observations carrying a NaN or ±Inf value or
// timestamp are rejected with a *BadObservationError before reaching the
// site, since a single non-finite weight would poison the site's decayed
// state for every later snapshot.
func (c *Cluster) Observe(siteIdx int, ob Observation) error {
	if math.IsNaN(ob.Value) || math.IsInf(ob.Value, 0) {
		return &BadObservationError{Field: "Value", X: ob.Value}
	}
	if math.IsNaN(ob.Time) || math.IsInf(ob.Time, 0) {
		return &BadObservationError{Field: "Time", X: ob.Time}
	}
	i := siteIdx % len(c.sites)
	if i < 0 {
		i += len(c.sites)
	}
	c.sites[i].in <- ob
	return nil
}

// Sites returns the number of sites.
func (c *Cluster) Sites() int { return len(c.sites) }

// snapshotSite requests one site's serialized state, bounding each attempt
// by the configured timeout and retrying failed attempts up to the retry
// budget. A timed-out attempt leaves the request outstanding; the buffered
// reply channel lets the site's late answer complete without blocking it.
func (c *Cluster) snapshotSite(i int) siteState {
	var last siteState
	for attempt := 0; attempt <= c.cfg.SnapshotRetries; attempt++ {
		reply := make(chan siteState, 1)
		timer := time.NewTimer(c.cfg.SnapshotTimeout)
		select {
		case c.sites[i].snap <- reply:
		case <-c.sites[i].done:
			timer.Stop()
			return siteState{err: fmt.Errorf("distrib: site %d already closed", i)}
		case <-timer.C:
			last = siteState{err: fmt.Errorf("distrib: site %d snapshot request timed out after %v", i, c.cfg.SnapshotTimeout)}
			continue
		}
		select {
		case st := <-reply:
			timer.Stop()
			if st.err == nil {
				return st
			}
			last = siteState{err: fmt.Errorf("distrib: site %d snapshot: %w", i, st.err)}
		case <-timer.C:
			last = siteState{err: fmt.Errorf("distrib: site %d snapshot reply timed out after %v", i, c.cfg.SnapshotTimeout)}
		}
	}
	return last
}

// newSummary allocates the coordinator-side merge target in the cluster's
// current decay frame (the caller holds opMu).
func (c *Cluster) newSummary() *Summary {
	out := &Summary{Sum: agg.NewSum(c.model)}
	if c.cfg.HHK > 0 {
		out.HH = agg.NewHeavyHittersK(c.model, c.cfg.HHK)
	}
	if c.cfg.QuantileU > 0 {
		out.Quantiles = agg.NewQuantiles(c.model, c.cfg.QuantileU, c.cfg.QuantileEps)
	}
	return out
}

// mergeSite decodes one site's serialized state and folds it into the
// summary. Every decode and merge failure names the offending site: a site
// shipping state under a different decay model or landmark is rejected
// here, not silently blended in.
func mergeSite(out *Summary, i int, st siteState) error {
	// Decode every component before merging any, so a failed (skippable)
	// site never leaves a partial contribution behind.
	var sum agg.Sum
	if err := sum.UnmarshalBinary(st.sum); err != nil {
		return fmt.Errorf("distrib: decoding site %d sum: %w", i, err)
	}
	var hh agg.HeavyHitters
	if out.HH != nil {
		if err := hh.UnmarshalBinary(st.hh); err != nil {
			return fmt.Errorf("distrib: decoding site %d heavy hitters: %w", i, err)
		}
	}
	var qd agg.Quantiles
	if out.Quantiles != nil {
		if err := qd.UnmarshalBinary(st.qd); err != nil {
			return fmt.Errorf("distrib: decoding site %d quantiles: %w", i, err)
		}
	}
	if err := out.Sum.Merge(&sum); err != nil {
		return fmt.Errorf("distrib: merging site %d sum: %w", i, err)
	}
	if out.HH != nil {
		if err := out.HH.Merge(&hh); err != nil {
			return fmt.Errorf("distrib: merging site %d heavy hitters: %w", i, err)
		}
	}
	if out.Quantiles != nil {
		if err := out.Quantiles.Merge(&qd); err != nil {
			return fmt.Errorf("distrib: merging site %d quantiles: %w", i, err)
		}
	}
	return nil
}

// Snapshot asks every site for its serialized partial state and merges the
// decoded partials into a fresh Summary — exactly the distributed pattern
// of §VI-B. It is safe to call concurrently with Observe; each site
// snapshots at an event boundary.
//
// A site that fails to answer within the timeout and retry budget, or whose
// state fails to decode or merge, is skipped when no more than
// Config.MaxFailedSites sites have failed — the Summary then covers the
// surviving partitions and MissingSites names the absent ones. Beyond that
// tolerance, Snapshot returns the first failing site's error.
func (c *Cluster) Snapshot() (*Summary, error) {
	// Serialize against RollEpoch: a snapshot observes the cluster either
	// entirely before a rollover or entirely after it. A site whose commit
	// failed mid-roll reports a sticky error and is refused (or skipped
	// under MaxFailedSites) — mismatched landmarks are additionally caught
	// by the model check inside every Merge, so partial states from
	// different frames can never blend silently.
	c.opMu.Lock()
	defer c.opMu.Unlock()
	states := make([]siteState, len(c.sites))
	for i := range c.sites {
		states[i] = c.snapshotSite(i)
	}
	out := c.newSummary()
	var missing []int
	for i, st := range states {
		err := st.err
		if err == nil {
			err = mergeSite(out, i, st)
		}
		if err != nil {
			if len(missing) >= c.cfg.MaxFailedSites {
				return nil, err
			}
			missing = append(missing, i)
		}
	}
	out.MissingSites = missing
	return out, nil
}

// Model returns the cluster's current decay model: the configured function
// on the landmark most recently committed by RollEpoch.
func (c *Cluster) Model() decay.Forward {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	return c.model
}

// RollEpoch advances every site's landmark to newL in two phases, the
// distributed leg of the epoch-rollover protocol. Phase one (propose) asks
// each site to quiesce — drain its queued observations, validate the shift,
// and pause awaiting a decision; phase two (commit) applies the exact
// landmark shift at every site. If any site refuses or times out during the
// proposal, every prepared site is aborted and the cluster stays entirely in
// the old frame. A failure during commit leaves that site quarantined (it
// refuses all later snapshots) while the rest of the cluster completes the
// roll; the error is returned.
//
// Safe to call concurrently with Observe; serialized against Snapshot.
func (c *Cluster) RollEpoch(newL float64) error {
	if math.IsNaN(newL) || math.IsInf(newL, 0) {
		return fmt.Errorf("distrib: non-finite landmark %v rejected", newL)
	}
	c.opMu.Lock()
	defer c.opMu.Unlock()
	if _, _, ok := c.model.Shifted(newL); !ok {
		return &decay.NotShiftableError{Func: c.model.Func.String()}
	}
	reqs := make([]*siteEpochReq, len(c.sites))
	// abort releases every site that received the proposal; the buffered
	// commit channel means even a site that answers late unblocks cleanly.
	abort := func(cause error) error {
		for _, req := range reqs {
			if req != nil {
				req.commit <- false
			}
		}
		return cause
	}
	// Phase 1: propose to every site.
	for i, s := range c.sites {
		req := &siteEpochReq{
			newL:     newL,
			prepared: make(chan error, 1),
			commit:   make(chan bool, 1),
			done:     make(chan error, 1),
		}
		timer := time.NewTimer(c.cfg.SnapshotTimeout)
		select {
		case s.epoch <- req:
		case <-s.done:
			timer.Stop()
			return abort(fmt.Errorf("distrib: site %d already closed", i))
		case <-timer.C:
			return abort(fmt.Errorf("distrib: site %d epoch proposal timed out after %v", i, c.cfg.SnapshotTimeout))
		}
		reqs[i] = req
		select {
		case err := <-req.prepared:
			timer.Stop()
			if err != nil {
				return abort(fmt.Errorf("distrib: site %d refused epoch: %w", i, err))
			}
		case <-timer.C:
			return abort(fmt.Errorf("distrib: site %d epoch prepare timed out after %v", i, c.cfg.SnapshotTimeout))
		}
	}
	// Phase 2: commit everywhere. Every site is paused at a quiesced state,
	// so the shifts apply to frozen frames.
	for _, req := range reqs {
		req.commit <- true
	}
	var firstErr error
	for i, req := range reqs {
		timer := time.NewTimer(c.cfg.SnapshotTimeout)
		select {
		case err := <-req.done:
			timer.Stop()
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("distrib: site %d epoch commit failed (site quarantined): %w", i, err)
			}
		case <-timer.C:
			if firstErr == nil {
				firstErr = fmt.Errorf("distrib: site %d epoch commit timed out after %v", i, c.cfg.SnapshotTimeout)
			}
		}
	}
	// The coordinator's frame advances with the committed sites; a failed
	// site is quarantined rather than left silently mergeable.
	if m, _, ok := c.model.Shifted(newL); ok {
		c.model = m
	}
	return firstErr
}

// Close drains and stops all sites. Observe must not be called after (or
// concurrently with) Close. Close is idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, s := range c.sites {
		close(s.in)
	}
	c.wg.Wait()
}
