package distrib_test

import (
	"fmt"

	"forwarddecay/decay"
	"forwarddecay/distrib"
)

// Four sites ingest disjoint partitions of a stream; the merged snapshot is
// exactly the aggregate of the union — the distributed pattern of §VI-B.
func Example() {
	model := decay.NewForward(decay.NewPoly(2), 0)
	cluster, err := distrib.New(distrib.Config{Sites: 4, Model: model})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	for i := 0; i < 1000; i++ {
		cluster.Observe(i%4, distrib.Observation{ // round-robin routing
			Key:   uint64(i % 10),
			Value: 2,
			Time:  1 + float64(i)*0.01,
		})
	}
	snap, err := cluster.Snapshot()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(snap.Sum.N(), snap.Sum.Mean())
	// Output: 1000 2
}
