package distrib

import (
	"encoding/binary"
	"errors"
	"testing"

	"forwarddecay/internal/faultinject"
)

// FuzzLogSegmentDecode is the write-ahead-log reader's robustness contract:
// an arbitrary segment image either scans cleanly, ends in a tolerable torn
// tail, or fails with a typed *LogError — never a panic, never an
// over-read, and never a record whose invariants (non-zero sequence, finite
// value and time) are violated. Seeds cover a valid multi-record segment,
// forged checksums, truncations at every interesting boundary, duplicate
// sequence numbers, and oversized length prefixes.
func FuzzLogSegmentDecode(f *testing.F) {
	valid := append([]byte(nil), walMagic[:]...)
	for i := 0; i < 5; i++ {
		valid = encodeRecord(valid, Record{Part: uint32(i % 2), Seq: uint64(i + 1), Key: uint64(i), Val: float64(i), Time: float64(i)})
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-7])             // torn tail
	f.Add(valid[:len(walMagic)])            // header only
	f.Add(valid[:3])                        // torn header
	f.Add([]byte{})                         // empty image
	f.Add(faultinject.CorruptByte(valid, 1))  // forged checksum / bent body
	f.Add(faultinject.CorruptByte(valid, 99)) // another deterministic flip

	// Duplicate sequence numbers: structurally valid, dedup is replay's job.
	dup := append([]byte(nil), walMagic[:]...)
	dup = encodeRecord(dup, Record{Part: 1, Seq: 5, Key: 1, Val: 1, Time: 1})
	dup = encodeRecord(dup, Record{Part: 1, Seq: 5, Key: 2, Val: 2, Time: 2})
	f.Add(dup)

	// A sealed frame claiming a giant body: must be rejected, not allocated.
	huge := append([]byte(nil), walMagic[:]...)
	huge = binary.LittleEndian.AppendUint32(huge, 1<<30)
	huge = append(huge, make([]byte, 64)...)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var recs []Record
		clean, err := scanSegment(data, func(r Record) error {
			recs = append(recs, r)
			return nil
		})
		if err != nil {
			var le *LogError
			if !errors.As(err, &le) {
				t.Fatalf("scan error is %T (%v), want *LogError", err, err)
			}
			if clean {
				t.Fatal("clean=true alongside an error")
			}
			return
		}
		for i, r := range recs {
			if r.Seq == 0 {
				t.Fatalf("record %d with zero sequence survived the scan", i)
			}
			if r.Val != r.Val || r.Time != r.Time {
				t.Fatalf("record %d with NaN payload survived the scan", i)
			}
		}
		// A clean scan must account for every byte: re-encoding the records
		// after the magic reproduces the image exactly.
		if clean {
			re := append([]byte(nil), walMagic[:]...)
			for _, r := range recs {
				re = encodeRecord(re, r)
			}
			if len(re) != len(data) {
				t.Fatalf("clean scan of %d bytes re-encodes to %d", len(data), len(re))
			}
			for i := range re {
				if re[i] != data[i] {
					t.Fatalf("clean scan not byte-faithful at offset %d", i)
				}
			}
		}
	})
}

// FuzzSliceDecode hardens the state-slice envelope the same way: hostile
// bytes must never panic, and any accepted slice re-encodes faithfully.
func FuzzSliceDecode(f *testing.F) {
	c := &Cluster{cfg: Config{HHK: 8, QuantileU: 256, QuantileEps: 0.1}}
	ps := c.newPartState(elasticCfg(1).Model)
	ps.observe(Observation{Key: 3, Value: 5, Time: 7}, 1)
	blob, err := encodeSlice(9, ps)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(faultinject.CorruptByte(blob, 7))
	f.Add(blob[:len(blob)-9])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		hdr, ps, err := decodeSlice(data)
		if err != nil {
			return
		}
		if ps == nil || ps.sum == nil {
			t.Fatal("decoded slice without a sum")
		}
		if _, err := encodeSlice(hdr.part, ps); err != nil {
			t.Fatalf("accepted slice fails to re-encode: %v", err)
		}
	})
}
