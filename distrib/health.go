package distrib

// Cluster health counters. Every robustness event the elastic tier absorbs
// — a retried snapshot, a skipped site, a shard handoff, a replayed log
// record, a re-proposed epoch roll — increments a counter here, readable
// in-process via Cluster.Health and mirrored into an optional
// metrics.CounterSet (Config.Metrics) so operators scrape them alongside
// the runtimes' RuntimeStats.

import (
	"sync/atomic"

	"forwarddecay/metrics"
)

// Health is a point-in-time copy of a cluster's health counters.
type Health struct {
	// SnapshotRetries counts per-site snapshot attempts beyond the first.
	SnapshotRetries uint64
	// FailedSites counts sites skipped by snapshots under MaxFailedSites.
	FailedSites uint64
	// Handoffs counts completed membership changes that moved state
	// (AddSite, RemoveSite, RecoverSite).
	Handoffs uint64
	// HandoffPartitions counts partitions moved across sites by handoffs.
	HandoffPartitions uint64
	// ReplayedRecords counts write-ahead-log records re-applied during
	// rebuilds (site recovery, handoff fallback, down-site snapshots).
	ReplayedRecords uint64
	// EpochReproposals counts RollEpoch rounds restarted after quarantining
	// a site that failed its proposal.
	EpochReproposals uint64
	// SiteCrashes counts sites torn down by CrashSite or quarantined by a
	// mid-roll or mid-handoff failure.
	SiteCrashes uint64
	// SiteRejoins counts sites rebuilt from checkpoint + log replay.
	SiteRejoins uint64
	// LoggedRecords counts observations appended to the write-ahead log.
	LoggedRecords uint64
	// TrimmedSegments counts log segments retired at checkpoint boundaries.
	TrimmedSegments uint64
}

// counterNames mirror the Health fields into a CounterSet, namespaced so a
// shared registry can host several components.
const (
	cntSnapshotRetries   = "distrib.snapshot_retries"
	cntFailedSites       = "distrib.failed_sites"
	cntHandoffs          = "distrib.handoffs"
	cntHandoffPartitions = "distrib.handoff_partitions"
	cntReplayedRecords   = "distrib.replayed_records"
	cntEpochReproposals  = "distrib.epoch_reproposals"
	cntSiteCrashes       = "distrib.site_crashes"
	cntSiteRejoins       = "distrib.site_rejoins"
	cntLoggedRecords     = "distrib.logged_records"
	cntTrimmedSegments   = "distrib.trimmed_segments"
)

// health is the live counter block on a Cluster.
type health struct {
	snapshotRetries atomic.Uint64
	failedSites     atomic.Uint64
	handoffs        atomic.Uint64
	handoffParts    atomic.Uint64
	replayed        atomic.Uint64
	reproposals     atomic.Uint64
	crashes         atomic.Uint64
	rejoins         atomic.Uint64
	logged          atomic.Uint64
	trimmed         atomic.Uint64
	set             *metrics.CounterSet // optional mirror; nil when unset
}

// bump adds delta to a counter and its metrics mirror.
func (h *health) bump(c *atomic.Uint64, name string, delta uint64) {
	if delta == 0 {
		return
	}
	c.Add(delta)
	if h.set != nil {
		h.set.Add(name, delta)
	}
}

// Health returns a copy of the cluster's health counters.
func (c *Cluster) Health() Health {
	h := &c.health
	return Health{
		SnapshotRetries:   h.snapshotRetries.Load(),
		FailedSites:       h.failedSites.Load(),
		Handoffs:          h.handoffs.Load(),
		HandoffPartitions: h.handoffParts.Load(),
		ReplayedRecords:   h.replayed.Load(),
		EpochReproposals:  h.reproposals.Load(),
		SiteCrashes:       h.crashes.Load(),
		SiteRejoins:       h.rejoins.Load(),
		LoggedRecords:     h.logged.Load(),
		TrimmedSegments:   h.trimmed.Load(),
	}
}
