package distrib

import (
	"errors"
	"strings"
	"testing"
	"time"

	"forwarddecay/decay"
	"forwarddecay/internal/faultinject"
	"forwarddecay/metrics"
)

// elasticCfg uses a dyadic decay rate and will be fed integer timestamps,
// so landmark shifts and log replays are exact in float64 and bit-for-bit
// comparisons against an oracle are meaningful.
func elasticCfg(sites int) Config {
	return Config{
		Sites:       sites,
		Model:       decay.NewForward(decay.NewExp(1.0/1024), 0),
		HHK:         32,
		QuantileU:   1 << 11,
		QuantileEps: 0.05,
		Partitions:  32,
	}
}

// feedKeyed drives identical keyed observations into any number of
// clusters, failing on any rejected (unacknowledged) observation.
func feedKeyed(t *testing.T, lo, hi int, cls ...*Cluster) {
	t.Helper()
	for i := lo; i < hi; i++ {
		ob := Observation{Key: uint64(i % 23), Value: float64(1 + i%11), Time: float64(i)}
		for _, c := range cls {
			if err := c.ObserveKeyed(ob); err != nil {
				t.Fatalf("observation %d not acknowledged: %v", i, err)
			}
		}
	}
}

// requireBitIdentical compares a subject snapshot to the oracle's with ==:
// same per-partition observation order plus exact shifts must leave no
// float-level trace of the churn.
func requireBitIdentical(t *testing.T, subject, oracle *Cluster, now float64) {
	t.Helper()
	ss, err := subject.Snapshot()
	if err != nil {
		t.Fatalf("subject snapshot: %v", err)
	}
	if len(ss.MissingSites) != 0 {
		t.Fatalf("subject snapshot missing sites %v", ss.MissingSites)
	}
	os, err := oracle.Snapshot()
	if err != nil {
		t.Fatalf("oracle snapshot: %v", err)
	}
	if ss.Sum.N() != os.Sum.N() {
		t.Fatalf("subject N %d, oracle N %d: acknowledged observations lost", ss.Sum.N(), os.Sum.N())
	}
	if got, want := ss.Sum.Value(now), os.Sum.Value(now); got != want {
		t.Fatalf("subject sum %v, oracle %v (not bit-identical)", got, want)
	}
	if got, want := ss.Sum.Count(now), os.Sum.Count(now); got != want {
		t.Fatalf("subject count %v, oracle %v (not bit-identical)", got, want)
	}
	if got, want := ss.Sum.Mean(), os.Sum.Mean(); got != want {
		t.Fatalf("subject mean %v, oracle %v", got, want)
	}
	if got, want := ss.Sum.Variance(), os.Sum.Variance(); got != want {
		t.Fatalf("subject variance %v, oracle %v", got, want)
	}
}

// TestAddRemoveSiteHandoffExact grows and shrinks a live cluster mid-stream
// and requires the merged snapshot to stay bit-identical to a static-roster
// oracle fed the same stream: the quiesce→cut→ship→install handoff must be
// invisible at float level.
func TestAddRemoveSiteHandoffExact(t *testing.T) {
	subject, err := New(elasticCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	defer subject.Close()
	oracle, err := New(elasticCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	feedKeyed(t, 0, 2000, subject, oracle)
	added, err := subject.AddSite()
	if err != nil {
		t.Fatalf("AddSite: %v", err)
	}
	if subject.Sites() != 4 {
		t.Fatalf("Sites() = %d after add, want 4", subject.Sites())
	}
	feedKeyed(t, 2000, 4000, subject, oracle)
	requireBitIdentical(t, subject, oracle, 4000)

	if err := subject.RemoveSite(added); err != nil {
		t.Fatalf("RemoveSite: %v", err)
	}
	if subject.Sites() != 3 {
		t.Fatalf("Sites() = %d after remove, want 3", subject.Sites())
	}
	feedKeyed(t, 4000, 6000, subject, oracle)
	requireBitIdentical(t, subject, oracle, 6000)

	h := subject.Health()
	if h.Handoffs != 2 {
		t.Errorf("Handoffs = %d, want 2", h.Handoffs)
	}
	if h.HandoffPartitions == 0 {
		t.Error("handoffs moved zero partitions")
	}
}

// TestHandoffInterleavedWithRolls adds epoch rollovers between membership
// changes: a partition cut in one decay frame and installed after the
// cluster rolled must be rebased exactly.
func TestHandoffInterleavedWithRolls(t *testing.T) {
	subject, err := New(elasticCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer subject.Close()
	oracle, err := New(elasticCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	feedKeyed(t, 0, 1000, subject, oracle)
	for _, c := range []*Cluster{subject, oracle} {
		if err := c.RollEpoch(512); err != nil {
			t.Fatalf("roll: %v", err)
		}
	}
	if _, err := subject.AddSite(); err != nil {
		t.Fatalf("AddSite after roll: %v", err)
	}
	feedKeyed(t, 1000, 2000, subject, oracle)
	for _, c := range []*Cluster{subject, oracle} {
		if err := c.RollEpoch(1536); err != nil {
			t.Fatalf("second roll: %v", err)
		}
	}
	feedKeyed(t, 2000, 3000, subject, oracle)
	requireBitIdentical(t, subject, oracle, 3000)
	if lm := subject.Model().Landmark; lm != 1536 {
		t.Fatalf("landmark %v after rolls, want 1536", lm)
	}
}

// TestCrashRecoverFromLog kills a site mid-stream: keyed observations keep
// being acknowledged (absorbed by the write-ahead log), snapshots stay
// complete via coordinator-side rebuild, and RecoverSite returns the site
// bit-identical to the oracle that never crashed.
func TestCrashRecoverFromLog(t *testing.T) {
	ms := metrics.NewCounterSet()
	cfg := elasticCfg(3)
	cfg.WALDir = t.TempDir()
	cfg.WALSegmentBytes = 1 << 14
	cfg.Metrics = ms
	subject, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer subject.Close()
	oracle, err := New(elasticCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	feedKeyed(t, 0, 1500, subject, oracle)
	if err := subject.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	feedKeyed(t, 1500, 2500, subject, oracle)

	victim := subject.LiveSites()[1]
	if err := subject.CrashSite(victim); err != nil {
		t.Fatal(err)
	}
	if got := subject.DownSites(); len(got) != 1 || got[0] != victim {
		t.Fatalf("DownSites = %v, want [%d]", got, victim)
	}
	// Observations for the dead site's partitions are acknowledged into the
	// log; a snapshot while it is down rebuilds them coordinator-side.
	feedKeyed(t, 2500, 3500, subject, oracle)
	requireBitIdentical(t, subject, oracle, 3500)

	if err := subject.RecoverSite(victim); err != nil {
		t.Fatalf("RecoverSite: %v", err)
	}
	feedKeyed(t, 3500, 4500, subject, oracle)
	requireBitIdentical(t, subject, oracle, 4500)

	h := subject.Health()
	if h.SiteCrashes != 1 || h.SiteRejoins != 1 {
		t.Errorf("crashes/rejoins = %d/%d, want 1/1", h.SiteCrashes, h.SiteRejoins)
	}
	if h.ReplayedRecords == 0 {
		t.Error("recovery replayed zero log records")
	}
	if h.LoggedRecords != 4500 {
		t.Errorf("LoggedRecords = %d, want 4500", h.LoggedRecords)
	}
	// The same counters are mirrored into the metrics registry.
	if got := ms.Get("distrib.site_rejoins"); got != 1 {
		t.Errorf("metrics mirror distrib.site_rejoins = %d, want 1", got)
	}
	if got := ms.Get("distrib.logged_records"); got != 4500 {
		t.Errorf("metrics mirror distrib.logged_records = %d, want 4500", got)
	}
}

// TestCrashDuringHandoff arms the handoff fault point: the source site dies
// mid-cut, AddSite quarantines it and rebuilds the moved partitions from
// checkpoint + log — and the final state is still bit-identical.
func TestCrashDuringHandoff(t *testing.T) {
	defer faultinject.Reset()
	cfg := elasticCfg(2)
	cfg.WALDir = t.TempDir()
	subject, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer subject.Close()
	oracle, err := New(elasticCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	feedKeyed(t, 0, 2000, subject, oracle)
	if err := subject.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	feedKeyed(t, 2000, 3000, subject, oracle)

	faultinject.Set("distrib.site.handoff", faultinject.Fault{ErrAt: 1})
	_, err = subject.AddSite()
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("AddSite with handoff fault returned %v, want quarantine error", err)
	}
	faultinject.Reset()
	if h := subject.Health(); h.SiteCrashes == 0 {
		t.Error("handoff crash not recorded")
	}
	// The crashed source's partitions and the moved partitions both come
	// back from the log; ingest continues unharmed.
	feedKeyed(t, 3000, 4000, subject, oracle)
	requireBitIdentical(t, subject, oracle, 4000)
}

// TestRollEpochPrepareFaultReproposes arms the prepare fault point: the
// failing site is quarantined, the roll is re-proposed to the survivors and
// completes, and the cluster converges on the new landmark with the
// quarantined site rebuilt from the log.
func TestRollEpochPrepareFaultReproposes(t *testing.T) {
	defer faultinject.Reset()
	cfg := elasticCfg(3)
	cfg.WALDir = t.TempDir()
	subject, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer subject.Close()
	oracle, err := New(elasticCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	feedKeyed(t, 0, 2000, subject, oracle)
	faultinject.Set("distrib.site.epoch.prepare", faultinject.Fault{ErrAt: 1})
	if err := subject.RollEpoch(1024); err != nil {
		t.Fatalf("RollEpoch with prepare fault did not converge: %v", err)
	}
	faultinject.Reset()
	if err := oracle.RollEpoch(1024); err != nil {
		t.Fatal(err)
	}
	if lm := subject.Model().Landmark; lm != 1024 {
		t.Fatalf("landmark %v, want 1024", lm)
	}
	h := subject.Health()
	if h.EpochReproposals != 1 {
		t.Errorf("EpochReproposals = %d, want 1", h.EpochReproposals)
	}
	if h.SiteCrashes != 1 {
		t.Errorf("SiteCrashes = %d, want the one quarantined proposer", h.SiteCrashes)
	}
	// The quarantined site's window is in the log; snapshots and recovery
	// still reconcile bit-for-bit.
	feedKeyed(t, 2000, 3000, subject, oracle)
	requireBitIdentical(t, subject, oracle, 3000)
	down := subject.DownSites()
	if len(down) != 1 {
		t.Fatalf("DownSites = %v, want the quarantined site", down)
	}
	if err := subject.RecoverSite(down[0]); err != nil {
		t.Fatalf("recovering quarantined site: %v", err)
	}
	requireBitIdentical(t, subject, oracle, 3000)
}

// TestRouteErrors: explicit targeting of unknown or downed sites fails with
// a typed *RouteError instead of the old silent index wrapping, and keyed
// routing to a downed owner without a log is also a typed error.
func TestRouteErrors(t *testing.T) {
	c, err := New(elasticCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ob := Observation{Key: 5, Value: 1, Time: 1}

	var re *RouteError
	if err := c.Observe(99, ob); !errors.As(err, &re) || re.Site != 99 {
		t.Fatalf("Observe(99) = %v, want *RouteError for site 99", err)
	}
	if err := c.Observe(-1, ob); !errors.As(err, &re) {
		t.Fatalf("Observe(-1) = %v, want *RouteError (no wrapping)", err)
	}

	// Crash a keyed owner: with no WAL the route must fail loudly.
	owner, ok := c.Owner(ob.Key)
	if !ok {
		t.Fatal("no owner")
	}
	if err := c.CrashSite(owner); err != nil {
		t.Fatal(err)
	}
	if err := c.ObserveKeyed(ob); !errors.As(err, &re) || re.Site != owner {
		t.Fatalf("ObserveKeyed to downed owner = %v, want *RouteError for site %d", err, owner)
	}
	if err := c.Observe(owner, ob); !errors.As(err, &re) {
		t.Fatalf("Observe(downed) = %v, want *RouteError", err)
	}
	if err := c.CrashSite(owner); !errors.As(err, &re) {
		t.Fatalf("CrashSite(downed) = %v, want *RouteError", err)
	}
	if err := c.RecoverSite(99); !errors.As(err, &re) {
		t.Fatalf("RecoverSite(99) = %v, want *RouteError", err)
	}
}

// TestRemoveDownedSite: removing a crashed site reassigns its partitions to
// the survivors via log rebuild, after which it no longer counts as down.
func TestRemoveDownedSite(t *testing.T) {
	cfg := elasticCfg(3)
	cfg.WALDir = t.TempDir()
	subject, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer subject.Close()
	oracle, err := New(elasticCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	feedKeyed(t, 0, 2000, subject, oracle)
	victim := subject.LiveSites()[0]
	if err := subject.CrashSite(victim); err != nil {
		t.Fatal(err)
	}
	if err := subject.RemoveSite(victim); err != nil {
		t.Fatalf("removing downed site: %v", err)
	}
	if len(subject.DownSites()) != 0 {
		t.Fatalf("DownSites = %v after removal", subject.DownSites())
	}
	feedKeyed(t, 2000, 3000, subject, oracle)
	requireBitIdentical(t, subject, oracle, 3000)
}

// TestRemoveLastSiteRefused: the cluster refuses to shrink to zero.
func TestRemoveLastSiteRefused(t *testing.T) {
	c, err := New(elasticCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.RemoveSite(c.LiveSites()[0]); err == nil {
		t.Fatal("removed the last live site")
	}
}

// TestSnapshotRetryCountersExposed: the pre-existing retry machinery now
// feeds the health counters and the optional metrics registry.
func TestSnapshotRetryCountersExposed(t *testing.T) {
	defer faultinject.Reset()
	ms := metrics.NewCounterSet()
	cfg := elasticCfg(2)
	cfg.Metrics = ms
	cfg.MaxFailedSites = 1
	cfg.SnapshotTimeout = time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feedKeyed(t, 0, 100, c)
	// Hits 1 and 2 are the first site's attempt and retry; hit 3 is the
	// second site's attempt, which passes.
	faultinject.Set("distrib.site.snapshot", faultinject.Fault{ErrAt: 1, ErrEvery: 2})
	if _, err := c.Snapshot(); err != nil {
		t.Fatalf("snapshot within tolerance: %v", err)
	}
	h := c.Health()
	if h.SnapshotRetries == 0 {
		t.Error("retries not counted")
	}
	if h.FailedSites != 1 {
		t.Errorf("FailedSites = %d, want 1", h.FailedSites)
	}
	if ms.Get("distrib.snapshot_retries") != h.SnapshotRetries {
		t.Error("metrics mirror out of sync with Health")
	}
}
