package distrib

// Consistent-hash partition assignment. The key space is first folded onto a
// fixed set of partitions (Config.Partitions); the ring then assigns each
// partition to a site. Every site projects VNodes points onto the 64-bit
// ring from a deterministic seed, and a partition belongs to the site owning
// the first point at or after the partition's own hash (wrapping). Because
// points depend only on (seed, site id, vnode index), the assignment is a
// pure function of the member set: two processes that agree on the roster
// agree on every owner, regardless of join order. When one site joins or
// leaves, only the partitions whose successor point changed move — in
// expectation P/N of them — which is what lets AddSite/RemoveSite hand off a
// small state slice instead of reshuffling the world.

import (
	"sort"

	"forwarddecay/internal/core"
)

// ringPoint is one virtual node: a site's projection onto the hash circle.
type ringPoint struct {
	hash uint64
	site int
}

// Ring maps partitions to sites by consistent hashing with virtual nodes.
// It is a value-semantics helper (no locking); Cluster guards its ring with
// the routing lock.
type Ring struct {
	seed   uint64
	vnodes int
	points []ringPoint // sorted by (hash, site)
}

// NewRing returns an empty ring. vnodes <= 0 selects 64 virtual nodes per
// site; the seed makes every point placement deterministic.
func NewRing(seed uint64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{seed: seed, vnodes: vnodes}
}

// vnodeHash places virtual node v of a site: a double mix so neither
// adjacent site ids nor adjacent vnode indices cluster on the circle.
func (r *Ring) vnodeHash(site, v int) uint64 {
	return core.Hash2(core.Hash2(r.seed, uint64(int64(site))), uint64(v))
}

// partHash places a partition on the circle, domain-separated from vnode
// points by a distinct mixing constant.
func (r *Ring) partHash(part uint32) uint64 {
	return core.Hash2(r.seed^0x9e3779b97f4a7c15, uint64(part))
}

// Add inserts a site's virtual nodes. Adding a present site is a no-op.
func (r *Ring) Add(site int) {
	for _, p := range r.points {
		if p.site == site {
			return
		}
	}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hash: r.vnodeHash(site, v), site: site})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].site < r.points[j].site
	})
}

// Remove deletes a site's virtual nodes. Removing an absent site is a
// no-op.
func (r *Ring) Remove(site int) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.site != site {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the distinct site ids on the ring, ascending.
func (r *Ring) Members() []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range r.points {
		if !seen[p.site] {
			seen[p.site] = true
			out = append(out, p.site)
		}
	}
	sort.Ints(out)
	return out
}

// Size returns the number of distinct sites on the ring.
func (r *Ring) Size() int { return len(r.Members()) }

// Owner returns the site owning a partition, or ok=false on an empty ring.
func (r *Ring) Owner(part uint32) (site int, ok bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := r.partHash(part)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap to the first point
	}
	return r.points[i].site, true
}

// Clone returns an independent copy, so membership changes can be computed
// against the previous assignment before being swapped in.
func (r *Ring) Clone() *Ring {
	out := &Ring{seed: r.seed, vnodes: r.vnodes}
	out.points = append([]ringPoint(nil), r.points...)
	return out
}

// movedPartitions lists the partitions whose owner differs between two
// rings over the same partition count — exactly the handoff set of a
// membership change.
func movedPartitions(from, to *Ring, partitions int) []uint32 {
	var moved []uint32
	for p := 0; p < partitions; p++ {
		a, okA := from.Owner(uint32(p))
		b, okB := to.Owner(uint32(p))
		if okA != okB || (okA && a != b) {
			moved = append(moved, uint32(p))
		}
	}
	return moved
}
