package distrib

import (
	"testing"
)

// TestRingDeterministicAssignment: ring placement is a pure function of
// (seed, vnodes, membership) — independent of insertion order, clone
// history, or process — so every coordinator that agrees on the
// configuration routes identically.
func TestRingDeterministicAssignment(t *testing.T) {
	const parts = 256
	a := NewRing(42, 64)
	for _, id := range []int{0, 1, 2, 3, 4} {
		a.Add(id)
	}
	b := NewRing(42, 64)
	for _, id := range []int{3, 0, 4, 1, 2} { // different insertion order
		b.Add(id)
	}
	c := a.Clone()
	for p := uint32(0); p < parts; p++ {
		ao, aok := a.Owner(p)
		bo, bok := b.Owner(p)
		co, cok := c.Owner(p)
		if !aok || !bok || !cok {
			t.Fatalf("partition %d unowned on a populated ring", p)
		}
		if ao != bo || ao != co {
			t.Fatalf("partition %d: owners diverge (%d, %d, %d)", p, ao, bo, co)
		}
	}
	// Re-adding a member must be a no-op, not a double placement.
	a.Add(2)
	for p := uint32(0); p < parts; p++ {
		ao, _ := a.Owner(p)
		bo, _ := b.Owner(p)
		if ao != bo {
			t.Fatalf("re-adding a member changed partition %d's owner", p)
		}
	}
}

// TestRingGoldenAssignment pins a few concrete assignments so an
// accidental change to the hash inputs (which would strand every key on a
// live cluster) fails loudly rather than just reshuffling.
func TestRingGoldenAssignment(t *testing.T) {
	r := NewRing(0, 64)
	for id := 0; id < 4; id++ {
		r.Add(id)
	}
	golden := map[uint32]int{0: 0, 1: 2, 2: 1, 3: 3, 4: 0, 5: 2, 6: 3, 7: 0}
	for p, want := range golden {
		if got, ok := r.Owner(p); !ok || got != want {
			t.Errorf("Owner(%d) = %d, golden %d", p, got, want)
		}
	}
}

// TestRingMinimalMovement: a single join or leave moves only ~P/N
// partitions, and every move involves the changed site — the consistent-
// hashing property that makes membership change cheap.
func TestRingMinimalMovement(t *testing.T) {
	const parts = 1024
	for _, n := range []int{2, 4, 8} {
		old := NewRing(7, 64)
		for id := 0; id < n; id++ {
			old.Add(id)
		}

		// Join: site n enters.
		joined := old.Clone()
		joined.Add(n)
		moved := movedPartitions(old, joined, parts)
		// Expectation P/(n+1); vnode placement is random-ish, allow 3×.
		if limit := 3 * parts / (n + 1); len(moved) > limit {
			t.Errorf("join on %d sites moved %d/%d partitions, limit %d", n, len(moved), parts, limit)
		}
		for _, p := range moved {
			if dst, _ := joined.Owner(p); dst != n {
				t.Errorf("join moved partition %d to site %d, not the joiner", p, dst)
			}
		}

		// Leave: site 0 departs.
		left := old.Clone()
		left.Remove(0)
		moved = movedPartitions(old, left, parts)
		if limit := 3 * parts / n; len(moved) > limit {
			t.Errorf("leave on %d sites moved %d/%d partitions, limit %d", n, len(moved), parts, limit)
		}
		for _, p := range moved {
			if src, _ := old.Owner(p); src != 0 {
				t.Errorf("leave moved partition %d away from site %d, not the leaver", p, src)
			}
		}
		// Everything site 0 owned must have moved somewhere live.
		for p := uint32(0); p < parts; p++ {
			if dst, ok := left.Owner(p); !ok || dst == 0 {
				t.Fatalf("partition %d still assigned to departed site (owner %d)", p, dst)
			}
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate memberships.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(1, 8)
	if _, ok := r.Owner(0); ok {
		t.Error("empty ring claimed an owner")
	}
	r.Add(9)
	for p := uint32(0); p < 64; p++ {
		if got, ok := r.Owner(p); !ok || got != 9 {
			t.Fatalf("single-member ring routed partition %d to %d", p, got)
		}
	}
	r.Remove(9)
	if r.Size() != 0 {
		t.Error("remove left members behind")
	}
}
