package distrib

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/internal/faultinject"
)

// TestRollEpochExactAcrossSites rolls the cluster's landmark several times
// mid-stream and checks the merged snapshot still matches a single-node
// oracle that never rolled: the two-phase shift must be invisible to every
// decayed answer.
func TestRollEpochExactAcrossSites(t *testing.T) {
	model := decay.NewForward(decay.NewExp(0.05), 0)
	cl, err := New(Config{Sites: 3, Model: model, HHK: 64, QuantileU: 1024, QuantileEps: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	oracle := agg.NewSum(model)
	oracleHH := agg.NewHeavyHittersK(model, 64)

	feed := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ts := float64(i)
			ob := Observation{Key: uint64(i % 7), Value: float64(10 + i%13), Time: ts}
			if err := cl.Observe(i%3, ob); err != nil {
				t.Fatal(err)
			}
			oracle.Observe(ob.Time, ob.Value)
			oracleHH.Observe(ob.Key, ob.Time)
		}
	}
	feed(0, 400)
	if err := cl.RollEpoch(300); err != nil {
		t.Fatalf("first roll: %v", err)
	}
	feed(400, 800)
	if err := cl.RollEpoch(700); err != nil {
		t.Fatalf("second roll: %v", err)
	}
	feed(800, 1000)

	if got := cl.Model().Landmark; got != 700 {
		t.Fatalf("coordinator landmark = %v after rolls, want 700", got)
	}
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if lm := snap.Sum.Model().Landmark; lm != 700 {
		t.Fatalf("snapshot merged in landmark-%v frame, want 700", lm)
	}
	now := 1000.0
	if !almostEq(snap.Sum.Value(now), oracle.Value(now), 1e-9) {
		t.Errorf("rolled cluster sum %v, never-rolled oracle %v", snap.Sum.Value(now), oracle.Value(now))
	}
	if !almostEq(snap.Sum.Mean(), oracle.Mean(), 1e-9) {
		t.Errorf("rolled cluster mean %v, oracle %v", snap.Sum.Mean(), oracle.Mean())
	}
	if !almostEq(snap.Sum.Variance(), oracle.Variance(), 1e-6) {
		t.Errorf("rolled cluster variance %v, oracle %v", snap.Sum.Variance(), oracle.Variance())
	}
	merged := map[uint64]bool{}
	for _, it := range snap.HH.Query(now, 0.01) {
		merged[it.Key] = true
	}
	for _, it := range oracleHH.Query(now, 0.02) {
		if !merged[it.Key] {
			t.Errorf("rolled cluster lost heavy hitter %d", it.Key)
		}
	}
}

// TestRollEpochRejectsNonShiftable verifies a cluster on a polynomial decay
// model refuses to roll — before any site is disturbed — with the typed
// error, and stays fully serviceable afterwards.
func TestRollEpochRejectsNonShiftable(t *testing.T) {
	cl, err := New(Config{Sites: 2, Model: decay.NewForward(decay.NewPoly(2), 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 100; i++ {
		if err := cl.Observe(i%2, Observation{Value: 1, Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	err = cl.RollEpoch(50)
	var nse *decay.NotShiftableError
	if !errors.As(err, &nse) {
		t.Fatalf("RollEpoch on poly decay returned %v, want *decay.NotShiftableError", err)
	}
	if lm := cl.Model().Landmark; lm != 0 {
		t.Fatalf("refused roll moved the landmark to %v", lm)
	}
	if _, err := cl.Snapshot(); err != nil {
		t.Fatalf("snapshot after refused roll: %v", err)
	}
}

// TestRollEpochRejectsNonFinite checks NaN and ±Inf landmarks are refused
// at the coordinator boundary.
func TestRollEpochRejectsNonFinite(t *testing.T) {
	cl, err := New(Config{Sites: 1, Model: decay.NewForward(decay.NewExp(0.1), 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := cl.RollEpoch(bad); err == nil {
			t.Errorf("RollEpoch(%v) accepted", bad)
		}
	}
}

// TestRollEpochCommitFaultQuarantines arms the commit fault point on one
// site: the roll reports the failure, the faulted site refuses later
// snapshots (its frame is indeterminate, so merging it could silently mix
// landmarks), and a tolerance-configured snapshot lists it as missing while
// the committed sites answer in the new frame.
func TestRollEpochCommitFaultQuarantines(t *testing.T) {
	defer faultinject.Reset()
	cl, err := New(Config{
		Sites: 3, Model: decay.NewForward(decay.NewExp(0.05), 0),
		MaxFailedSites: 1, SnapshotTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 300; i++ {
		if err := cl.Observe(i%3, Observation{Value: 1, Time: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Set("distrib.site.epoch.commit", faultinject.Fault{ErrAt: 1})
	err = cl.RollEpoch(200)
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("RollEpoch with commit fault returned %v, want quarantine error", err)
	}
	if lm := cl.Model().Landmark; lm != 200 {
		t.Fatalf("committed sites rolled but coordinator landmark = %v", lm)
	}
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatalf("snapshot after quarantine (tolerance 1): %v", err)
	}
	if len(snap.MissingSites) != 1 {
		t.Fatalf("MissingSites = %v, want exactly the quarantined site", snap.MissingSites)
	}
	if lm := snap.Sum.Model().Landmark; lm != 200 {
		t.Fatalf("partial snapshot merged in landmark-%v frame, want 200", lm)
	}
}

// TestRollEpochConcurrentWithObserve hammers Observe from a writer while
// the coordinator rolls repeatedly: the quiesce protocol must never mix
// frames, so the final snapshot equals a single-node oracle over exactly
// the observations delivered.
func TestRollEpochConcurrentWithObserve(t *testing.T) {
	model := decay.NewForward(decay.NewExp(0.02), 0)
	cl, err := New(Config{Sites: 4, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	oracle := agg.NewSum(model)

	const n = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			ob := Observation{Value: float64(1 + i%9), Time: float64(i) / 10}
			if err := cl.Observe(i%4, ob); err != nil {
				t.Error(err)
				return
			}
			oracle.Observe(ob.Time, ob.Value)
		}
	}()
	for l := 50.0; l <= 400; l += 50 {
		if err := cl.RollEpoch(l); err != nil {
			t.Fatalf("RollEpoch(%v): %v", l, err)
		}
	}
	wg.Wait()
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	now := float64(n) / 10
	if !almostEq(snap.Sum.Value(now), oracle.Value(now), 1e-9) {
		t.Errorf("cluster sum %v after concurrent rolls, oracle %v", snap.Sum.Value(now), oracle.Value(now))
	}
	if c := snap.Sum.Count(now); !almostEq(c, oracle.Count(now), 1e-9) {
		t.Errorf("cluster count %v after concurrent rolls, oracle %v", c, oracle.Count(now))
	}
}
