package distrib

import (
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
	"forwarddecay/internal/faultinject"
	"forwarddecay/metrics"
)

// TestDistribChurnSoak replays a simulated multi-day tape against an
// elastic, write-ahead-logged cluster while churning its roster — crashes,
// rejoins-from-log, adds, removes, crashes mid-handoff and mid-roll — and
// requires the result to match a fault-free static-roster oracle
// bit-for-bit on the decayed sum/count/mean/variance, with zero lost
// acknowledged observations and the sketch summaries within their ε
// bounds. The decay rate is dyadic and every timestamp and landmark is an
// integer, so landmark shifts, checkpoint rebases and log replays are
// exact in float64: any single misrouted, double-applied, lost or
// frame-blended observation shows up as a float-level mismatch.
func TestDistribChurnSoak(t *testing.T) {
	days := 4.0
	if testing.Short() {
		days = 2
	}
	tape := faultinject.SoakSchedule(faultinject.SoakConfig{
		Seed:     0xd15c0,
		Duration: days * 86400,
		MeanGap:  25,
		Keys:     64,

		CheckpointEvery: 10800, // 3 h
		RollEvery:       21600, // 6 h

		SiteCrashEvery:    7200, // 2 h
		SiteRejoinAfter:   3600,
		SiteAddEvery:      28800, // 8 h
		SiteRemoveEvery:   43200, // 12 h
		HandoffCrashEvery: 86400, // daily
		RollCrashEvery:    46800, // 13 h: off-phase with RollEvery, so the
		// crashing roll is not pre-empted by a plain roll at the same instant
	})

	ms := metrics.NewCounterSet()
	cfg := Config{
		Sites:       4,
		Model:       decay.NewForward(decay.NewExp(1.0/1024), 0),
		HHK:         64,
		QuantileU:   1 << 10,
		QuantileEps: 0.05,
		Partitions:      64,
		WALDir:          t.TempDir(),
		WALSegmentBytes: 1 << 14, // small segments so checkpoints can trim
		Metrics:         ms,
	}
	subject, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer subject.Close()
	ocfg := cfg
	ocfg.WALDir, ocfg.Metrics = "", nil
	oracle, err := New(ocfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	var (
		churn       int // executed churn events
		fed         uint64
		lastL       float64
		now         float64
		checkpoints int
	)
	rollBoth := func(newL float64) {
		if newL <= lastL {
			return
		}
		if err := subject.RollEpoch(newL); err != nil {
			t.Fatalf("t=%v subject roll to %v: %v", now, newL, err)
		}
		if err := oracle.RollEpoch(newL); err != nil {
			t.Fatalf("t=%v oracle roll to %v: %v", now, newL, err)
		}
		lastL = newL
	}

	for idx, ev := range tape {
		now = ev.T
		draw := core.Hash2(0xd15c0, uint64(idx))
		live := subject.LiveSites()
		down := subject.DownSites()
		switch ev.Op {
		case faultinject.SoakTuple:
			ob := Observation{Key: ev.Key, Value: ev.Val, Time: ev.T}
			if err := subject.ObserveKeyed(ob); err != nil {
				t.Fatalf("t=%v subject rejected tuple: %v", now, err)
			}
			if err := oracle.ObserveKeyed(ob); err != nil {
				t.Fatalf("t=%v oracle rejected tuple: %v", now, err)
			}
			fed++
		case faultinject.SoakCheckpoint:
			if err := subject.Checkpoint(); err != nil {
				t.Fatalf("t=%v checkpoint: %v", now, err)
			}
			checkpoints++
			// Periodic mid-soak probe: the clusters must already agree,
			// including coordinator-side rebuilds of any down sites.
			if checkpoints%4 == 0 {
				requireBitIdentical(t, subject, oracle, now)
			}
		case faultinject.SoakRoll:
			rollBoth(ev.T - 3600)
		case faultinject.SoakSiteCrash:
			if len(live) < 2 {
				continue
			}
			if err := subject.CrashSite(live[int(draw%uint64(len(live)))]); err != nil {
				t.Fatalf("t=%v crash: %v", now, err)
			}
			churn++
		case faultinject.SoakSiteRejoin:
			if len(down) == 0 {
				continue
			}
			if err := subject.RecoverSite(down[0]); err != nil {
				t.Fatalf("t=%v rejoin site %d: %v", now, down[0], err)
			}
			churn++
		case faultinject.SoakSiteAdd:
			if len(live)+len(down) >= 10 {
				continue
			}
			if _, err := subject.AddSite(); err != nil {
				t.Fatalf("t=%v add: %v", now, err)
			}
			churn++
		case faultinject.SoakSiteRemove:
			// Alternate between retiring a downed site (rebuild path) and a
			// live one (quiesce-and-cut path).
			if len(down) > 0 && draw%2 == 0 {
				if err := subject.RemoveSite(down[0]); err != nil {
					t.Fatalf("t=%v remove down site %d: %v", now, down[0], err)
				}
				churn++
			} else if len(live) >= 2 {
				victim := live[int(draw%uint64(len(live)))]
				if err := subject.RemoveSite(victim); err != nil {
					t.Fatalf("t=%v remove live site %d: %v", now, victim, err)
				}
				churn++
			}
		case faultinject.SoakHandoffCrash:
			if len(live)+len(down) >= 10 || len(live) == 0 {
				continue
			}
			faultinject.Set("distrib.site.handoff", faultinject.Fault{ErrAt: 1})
			// The source dies mid-cut; AddSite reports the quarantine and
			// falls back to the log. The join itself must still happen. (If
			// every moved partition happened to come from an already-down
			// site, no live cut occurs and the fault point stays unhit.)
			_, err := subject.AddSite()
			hit := faultinject.Hits("distrib.site.handoff") > 0
			faultinject.Reset()
			if hit && err == nil {
				t.Fatalf("t=%v handoff fault did not surface", now)
			}
			churn++
		case faultinject.SoakRollCrash:
			newL := ev.T - 3600
			if newL <= lastL {
				continue
			}
			faultinject.Set("distrib.site.epoch.prepare", faultinject.Fault{ErrAt: 1})
			err := subject.RollEpoch(newL)
			faultinject.Reset()
			if err != nil {
				t.Fatalf("t=%v roll with mid-roll crash did not converge: %v", now, err)
			}
			if err := oracle.RollEpoch(newL); err != nil {
				t.Fatalf("t=%v oracle roll: %v", now, err)
			}
			lastL = newL
			churn++
		}
	}

	if churn < 50 {
		t.Fatalf("soak executed only %d churn events, want >= 50", churn)
	}
	if err := subject.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Bit-for-bit on the decayed moments; N equality is the zero-loss claim
	// (every acknowledged observation is in exactly one partition state).
	requireBitIdentical(t, subject, oracle, now)

	ss, err := subject.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	os, err := oracle.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if ss.Sum.N() != fed || os.Sum.N() != fed {
		t.Fatalf("subject/oracle N = %d/%d, fed %d", ss.Sum.N(), os.Sum.N(), fed)
	}
	// Heavy hitters: the oracle's φ-heavy hitters survive churn at φ/2 (the
	// standard merged-summary guarantee).
	const phi = 0.02
	got := map[uint64]bool{}
	for _, it := range ss.HH.Query(now, phi/2) {
		got[it.Key] = true
	}
	for _, it := range os.HH.Query(now, phi) {
		if !got[it.Key] {
			t.Errorf("churned cluster lost heavy hitter %d", it.Key)
		}
	}
	// Quantiles: both digests saw identical per-partition inputs, so the
	// merged answers agree within the digest's ε on the value scale.
	for _, q := range []float64{0.1, 0.5, 0.9} {
		sq, oq := ss.Quantiles.Quantile(q), os.Quantiles.Quantile(q)
		lo, hi := float64(oq)*0.8-8, float64(oq)*1.2+8
		if float64(sq) < lo || float64(sq) > hi {
			t.Errorf("quantile %.1f: subject %d, oracle %d", q, sq, oq)
		}
	}

	h := subject.Health()
	t.Logf("soak: %d tuples, %d churn events, health %+v", fed, churn, h)
	if h.SiteCrashes == 0 || h.SiteRejoins == 0 || h.Handoffs == 0 {
		t.Errorf("churn did not exercise crashes/rejoins/handoffs: %+v", h)
	}
	if h.ReplayedRecords == 0 {
		t.Error("no log records were replayed during recovery")
	}
	if h.EpochReproposals == 0 {
		t.Error("mid-roll crashes did not trigger a re-propose")
	}
	if h.TrimmedSegments == 0 {
		t.Error("checkpoints never trimmed the log")
	}
	if ms.Get("distrib.site_crashes") != h.SiteCrashes {
		t.Error("metrics mirror diverged from Health")
	}
}
