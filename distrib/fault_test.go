package distrib

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"forwarddecay/decay"
	"forwarddecay/internal/faultinject"
)

func faultCfg(sites int) Config {
	return Config{
		Sites:       sites,
		Model:       decay.NewForward(decay.NewExp(0.01), 0),
		HHK:         16,
		QuantileU:   1 << 16,
		QuantileEps: 0.05,
	}
}

func feed(t *testing.T, c *Cluster, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ob := Observation{Key: uint64(i % 17), Value: float64(1 + i%7), Time: float64(i % 100)}
		if err := c.Observe(i%c.Sites(), ob); err != nil {
			t.Fatal(err)
		}
	}
}

// TestObserveRejectsNonFinite: NaN/±Inf values and timestamps are rejected
// at the cluster ingest boundary with a typed error naming the field, and
// never reach a site.
func TestObserveRejectsNonFinite(t *testing.T) {
	c, err := New(faultCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var bad *BadObservationError
	err = c.Observe(0, Observation{Key: 1, Value: math.NaN(), Time: 1})
	if !errors.As(err, &bad) || bad.Field != "Value" {
		t.Fatalf("NaN value: %v", err)
	}
	err = c.Observe(0, Observation{Key: 1, Value: 1, Time: math.Inf(1)})
	if !errors.As(err, &bad) || bad.Field != "Time" {
		t.Fatalf("Inf time: %v", err)
	}
	// The cluster still snapshots cleanly with only good data merged.
	feed(t, c, 100)
	sum, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Sum.Count(100); got <= 0 || math.IsNaN(got) {
		t.Fatalf("poisoned decayed count: %v", got)
	}
}

// TestMergeRejectsMismatchedModel: a site shipping state cut under a
// different landmark must be rejected before anything is merged, with an
// error naming the offending site — silently blending incompatible decayed
// weights would corrupt the summary.
func TestMergeRejectsMismatchedModel(t *testing.T) {
	cfg := faultCfg(1)
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Forge a partition slice cut under a different landmark.
	forger := &Cluster{cfg: cfg}
	ps := forger.newPartState(decay.NewForward(decay.NewExp(0.01), 500))
	ps.observe(Observation{Key: 1, Value: 3, Time: 510}, 0)
	blob, err := encodeSlice(7, ps)
	if err != nil {
		t.Fatal(err)
	}

	// A good slice riding along must not be merged either: the whole site is
	// rejected atomically.
	good := c.newPartState(cfg.Model)
	good.observe(Observation{Key: 2, Value: 5, Time: 10}, 0)
	goodBlob, err := encodeSlice(3, good)
	if err != nil {
		t.Fatal(err)
	}

	parts, mergeErr := c.decodeAnswer(3, siteAnswer{parts: map[uint32][]byte{7: blob, 3: goodBlob}})
	if mergeErr == nil {
		t.Fatal("mismatched landmark decoded silently")
	}
	if !strings.Contains(mergeErr.Error(), "site 3") {
		t.Fatalf("error does not name the offending site: %v", mergeErr)
	}
	if parts != nil {
		t.Fatalf("rejected site still returned %d partitions", len(parts))
	}
}

// TestSnapshotRetriesTransientFailure: with the default retry budget, a
// site that fails exactly one snapshot attempt is retried and the snapshot
// completes with no missing sites.
func TestSnapshotRetriesTransientFailure(t *testing.T) {
	defer faultinject.Reset()
	c, err := New(faultCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feed(t, c, 300)
	faultinject.Set("distrib.site.snapshot", faultinject.Fault{ErrAt: 1})
	sum, err := c.Snapshot()
	if err != nil {
		t.Fatalf("transient failure not retried: %v", err)
	}
	if len(sum.MissingSites) != 0 {
		t.Fatalf("retry should have recovered the site, missing %v", sum.MissingSites)
	}
	if hits := faultinject.Hits("distrib.site.snapshot"); hits != 4 {
		t.Fatalf("expected 3 site answers + 1 retry = 4 hits, got %d", hits)
	}
}

// TestSnapshotSkipsFailedSiteWithinTolerance: a persistently failing site
// is skipped when MaxFailedSites allows, and the Summary names exactly the
// missing partition while covering the rest.
func TestSnapshotSkipsFailedSiteWithinTolerance(t *testing.T) {
	defer faultinject.Reset()
	cfg := faultCfg(3)
	cfg.SnapshotRetries = -1 // no retries: first failure is final
	cfg.MaxFailedSites = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feed(t, c, 300)
	// Site 0 answers first; make its every attempt fail.
	faultinject.Set("distrib.site.snapshot", faultinject.Fault{ErrAt: 1})
	sum, err := c.Snapshot()
	if err != nil {
		t.Fatalf("tolerated failure still failed snapshot: %v", err)
	}
	if len(sum.MissingSites) != 1 || sum.MissingSites[0] != 0 {
		t.Fatalf("MissingSites = %v, want [0]", sum.MissingSites)
	}
	// The surviving partitions are still merged and queryable.
	if got := sum.Sum.Count(100); got <= 0 {
		t.Fatalf("surviving sites not merged: count %v", got)
	}
}

// TestSnapshotFailsBeyondTolerance: more failing sites than MaxFailedSites
// fails the whole snapshot with the failing site's error rather than
// silently returning a hollow summary.
func TestSnapshotFailsBeyondTolerance(t *testing.T) {
	defer faultinject.Reset()
	cfg := faultCfg(3)
	cfg.SnapshotRetries = -1
	cfg.MaxFailedSites = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feed(t, c, 90)
	faultinject.Set("distrib.site.snapshot", faultinject.Fault{ErrEvery: 1}) // every attempt fails
	if _, err := c.Snapshot(); err == nil {
		t.Fatal("snapshot succeeded with every site failing")
	} else if !strings.Contains(err.Error(), "site") {
		t.Fatalf("error does not identify a site: %v", err)
	}
}

// TestSnapshotTimeoutSkipsStalledSite: a site that stalls while serving a
// snapshot is bounded by SnapshotTimeout per attempt and then skipped
// within the failure tolerance — the coordinator never hangs on a dead
// site.
func TestSnapshotTimeoutSkipsStalledSite(t *testing.T) {
	defer faultinject.Reset()
	cfg := faultCfg(2)
	cfg.SnapshotTimeout = 30 * time.Millisecond
	cfg.SnapshotRetries = -1
	cfg.MaxFailedSites = 1
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	feed(t, c, 100)
	faultinject.Set("distrib.site.snapshot", faultinject.Fault{DelayAt: 1, Delay: 300 * time.Millisecond})
	start := time.Now()
	sum, err := c.Snapshot()
	if err != nil {
		t.Fatalf("stalled site not skipped: %v", err)
	}
	if len(sum.MissingSites) != 1 {
		t.Fatalf("MissingSites = %v, want one stalled site", sum.MissingSites)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("coordinator hung on stalled site: %v", el)
	}
	// The stalled site's late answer must not wedge it: it still serves
	// the next snapshot (after its injected delay has elapsed).
	faultinject.Reset()
	time.Sleep(350 * time.Millisecond)
	sum2, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(sum2.MissingSites) != 0 {
		t.Fatalf("recovered site still missing: %v", sum2.MissingSites)
	}
}
