package distrib

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"forwarddecay/ingest"
)

func walAppendN(t *testing.T, l *Log, n int) []Record {
	t.Helper()
	var recs []Record
	for i := 0; i < n; i++ {
		part := uint32(i % 3)
		seq, err := l.Append(part, uint64(100+i), float64(i), float64(10*i))
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, Record{Part: part, Seq: seq, Key: uint64(100 + i), Val: float64(i), Time: float64(10 * i)})
	}
	return recs
}

func walReplayAll(t *testing.T, l *Log) []Record {
	t.Helper()
	var got []Record
	if _, err := l.Replay(nil, nil, func(r Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestLogRoundtrip: appended records replay identically, in order, with
// dense per-partition sequence numbers.
func TestLogRoundtrip(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := walAppendN(t, l, 30)
	got := walReplayAll(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, appended %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	for p := uint32(0); p < 3; p++ {
		if l.LastSeq(p) != 10 {
			t.Errorf("partition %d LastSeq = %d, want 10", p, l.LastSeq(p))
		}
	}
}

// TestLogRotationAndReopen: small segments force rotation; reopening the
// directory restores sequence counters and replays everything, and new
// appends continue the sequence instead of restarting it.
func TestLogRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	walAppendN(t, l, 40)
	if l.Segments() < 2 {
		t.Fatalf("128-byte segments held 40 records in %d segment(s)", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(dir, LogConfig{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.LastSeq(0); got != 14 {
		t.Fatalf("reopened LastSeq(0) = %d, want 14", got)
	}
	seq, err := l2.Append(0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 15 {
		t.Fatalf("append after reopen assigned seq %d, want 15", seq)
	}
	if got := walReplayAll(t, l2); len(got) != 41 {
		t.Fatalf("replayed %d records after reopen, want 41", len(got))
	}
}

// TestLogReplayWatermarksAndDedup: the `after` watermarks skip
// checkpoint-covered records, the partition filter selects, and repeated
// sequences apply once.
func TestLogReplayWatermarksAndDedup(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	walAppendN(t, l, 30) // 10 records in each of partitions 0,1,2

	var got []Record
	n, err := l.Replay(map[uint32]bool{1: true}, map[uint32]uint64{1: 7}, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || len(got) != 3 {
		t.Fatalf("replayed %d records past watermark 7, want 3", n)
	}
	for i, r := range got {
		if r.Part != 1 || r.Seq != uint64(8+i) {
			t.Fatalf("record %d: part %d seq %d, want part 1 seq %d", i, r.Part, r.Seq, 8+i)
		}
	}
}

// TestLogTrim: checkpoint watermarks covering the closed segments retire
// them; the active segment and uncovered segments survive, and replay past
// the watermarks still works.
func TestLogTrim(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	walAppendN(t, l, 40)
	before := l.Segments()
	if before < 3 {
		t.Fatalf("need ≥3 segments for a meaningful trim, got %d", before)
	}

	// Watermarks cover everything: all closed segments go, the active stays.
	wm := map[uint32]uint64{0: 14, 1: 13, 2: 13}
	removed, err := l.Trim(wm)
	if err != nil {
		t.Fatal(err)
	}
	if removed != before-1 || l.Segments() != 1 {
		t.Fatalf("trim removed %d of %d segments, %d left", removed, before, l.Segments())
	}
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) != 1 {
		t.Fatalf("%d segment files on disk after trim, want 1", len(files))
	}
	// New appends land in the surviving active segment and are exactly what
	// a replay past the watermarks yields.
	if _, err := l.Append(0, 9, 9, 9); err != nil {
		t.Fatal(err)
	}
	n, err := l.Replay(nil, wm, func(r Record) error {
		if r.Seq <= wm[r.Part] {
			t.Fatalf("replayed covered record %+v", r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replay past watermarks yielded %d records, want the 1 post-trim append", n)
	}
}

// TestLogTornTailRecovery: a crash mid-append leaves a half-written final
// record; OpenLog truncates it away and the log keeps working. The torn
// record was never acknowledged, so dropping it is correct.
func TestLogTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	walAppendN(t, l, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) != 1 {
		t.Fatalf("expected one segment, got %d", len(files))
	}
	st, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record in half.
	if err := os.Truncate(files[0], st.Size()-(frameOverhead+walRecordLen)/2); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	defer l2.Close()
	got := walReplayAll(t, l2)
	if len(got) != 9 {
		t.Fatalf("replayed %d records after torn tail, want 9", len(got))
	}
	// The torn record's sequence was never durable, so it is reassigned.
	part := got[len(got)-1].Part
	if seq, err := l2.Append(part, 1, 1, 1); err != nil || seq != l2.LastSeq(part) {
		t.Fatalf("append after torn-tail recovery: seq %d err %v", seq, err)
	}
}

// TestLogForgedChecksumRefused: flipping a byte inside a record makes the
// segment refuse to load with a *LogError that unwraps to the ingest
// checksum failure — corruption is never silently replayed.
func TestLogForgedChecksumRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	walAppendN(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(walMagic)+frameOverhead+3] ^= 0x40 // inside the first record body
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = OpenLog(dir, LogConfig{})
	var le *LogError
	if !errors.As(err, &le) {
		t.Fatalf("forged checksum loaded: %v", err)
	}
	var fe *ingest.FrameError
	if !errors.As(err, &fe) || fe.Kind != ingest.FrameBadChecksum {
		t.Fatalf("cause is %v, want an ingest bad-checksum frame error", err)
	}
}

// TestLogTruncatedMiddleSegmentRefused: a torn record is only tolerable in
// the newest segment; the same damage in an older segment is corruption.
func TestLogTruncatedMiddleSegmentRefused(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	walAppendN(t, l, 40)
	if l.Segments() < 2 {
		t.Fatalf("need multiple segments, got %d", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	st, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(files[0], st.Size()-5); err != nil {
		t.Fatal(err)
	}
	var le *LogError
	if _, err := OpenLog(dir, LogConfig{}); !errors.As(err, &le) {
		t.Fatalf("truncated middle segment loaded: %v", err)
	}
}
