package server

// The control plane: one goroutine per accepted connection reads sealed
// control frames (auth first), dispatches catalog requests, and spawns one
// writer goroutine per subscription. The writer is the per-subscriber
// bounded output queue made flesh: it pulls at most SubscriberBatch rows
// from the query's result ring, writes them to the socket, and only then
// advances its cursor — so a subscriber that stops reading stops advancing,
// and the ring's slow-consumer policy takes over from there.

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
)

// controlIOTimeout bounds individual control-plane writes and the auth
// handshake read; a peer that cannot absorb a frame in this long is dead.
// A variable so fault drills can compress (or suspend) the deadline.
var controlIOTimeout = 5 * time.Second

// acceptControl admits control connections until the listener closes.
func (s *Service) acceptControl() {
	for {
		c, err := s.ctl.Accept()
		if err != nil {
			return // Shutdown closed the listener
		}
		cc := &ctlConn{s: s, c: c, subs: map[uint32]*ctlSub{}}
		if !s.trackConn(cc, true) {
			c.Close()
			return
		}
		s.conns.Add(1)
		go func() {
			defer s.conns.Done()
			defer s.trackConn(cc, false)
			cc.serve()
		}()
	}
}

// trackConn registers (or removes) a live control connection so Shutdown
// can force-close them. Returns false when the service is already closing.
func (s *Service) trackConn(cc *ctlConn, add bool) bool {
	s.ctlMu.Lock()
	defer s.ctlMu.Unlock()
	if add {
		if s.ctlClosed {
			return false
		}
		s.ctlConns[cc] = struct{}{}
		return true
	}
	delete(s.ctlConns, cc)
	return true
}

// closeControlConns force-closes every control connection (Shutdown).
func (s *Service) closeControlConns() {
	s.ctlMu.Lock()
	s.ctlClosed = true
	conns := make([]*ctlConn, 0, len(s.ctlConns))
	for cc := range s.ctlConns {
		conns = append(conns, cc)
	}
	s.ctlMu.Unlock()
	for _, cc := range conns {
		cc.c.Close()
	}
}

// ctlSub is one live subscription on a connection.
type ctlSub struct {
	q   *Query
	sub *subscriber
	req uint32 // the subscribe request id; async StErr terminations echo it
	// stopped marks a client-requested unsubscribe, so the writer exits
	// silently instead of reporting a termination.
	stopped bool
	done    chan struct{}
}

// ctlConn is one control connection's state.
type ctlConn struct {
	s *Service
	c net.Conn

	wmu sync.Mutex // serializes frame writes (handler vs subscription writers)

	smu  sync.Mutex
	subs map[uint32]*ctlSub // by query id
}

// write seals and sends one frame; on failure the connection is torn down
// (the reader will notice the closed socket and clean up).
func (cc *ctlConn) write(m *Msg) error {
	buf := AppendMsg(nil, m)
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	cc.c.SetWriteDeadline(time.Now().Add(controlIOTimeout))
	_, err := cc.c.Write(buf)
	cc.c.SetWriteDeadline(time.Time{})
	if err != nil {
		cc.c.Close()
	}
	return err
}

func (cc *ctlConn) writeErr(req uint32, code uint16, text string) error {
	return cc.write(&Msg{Type: StErr, Req: req, Code: code, Text: text})
}

// readMsg reads one sealed control frame off the buffered reader.
func readMsg(r *bufio.Reader) (*Msg, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int(uint32(hdr[0]) | uint32(hdr[1])<<8 | uint32(hdr[2])<<16 | uint32(hdr[3])<<24)
	if n > MaxControlFrame {
		return nil, errors.New("server: control frame exceeds MaxControlFrame")
	}
	full := make([]byte, 4+8+n)
	copy(full, hdr[:])
	if _, err := io.ReadFull(r, full[4:]); err != nil {
		return nil, err
	}
	body, _, err := ingest.DecodeSealed(full, MaxControlFrame)
	if err != nil {
		return nil, err
	}
	return DecodeMsg(body)
}

// serve runs one control session: authenticate, dispatch, clean up.
func (cc *ctlConn) serve() {
	defer cc.c.Close()
	defer cc.dropAllSubs()
	r := bufio.NewReader(cc.c)

	// Auth handshake: the first frame must be a CtHello carrying a valid
	// token. Everything before a good hello gets exactly one typed error.
	cc.c.SetReadDeadline(time.Now().Add(controlIOTimeout))
	hello, err := readMsg(r)
	cc.c.SetReadDeadline(time.Time{})
	if err != nil {
		return
	}
	if hello.Type != CtHello || !cc.s.tokenOK(hello.Text) {
		cc.s.counters.Add("server_auth_failures", 1)
		cc.writeErr(hello.Req, CodeAuth, "authentication failed")
		return
	}
	if err := cc.write(&Msg{Type: StOK, Req: hello.Req}); err != nil {
		return
	}
	cc.s.counters.Add("server_control_sessions", 1)

	for {
		m, err := readMsg(r)
		if err != nil {
			return
		}
		switch m.Type {
		case CtAttach:
			cc.handleAttach(m)
		case CtDetach:
			cc.handleDetach(m)
		case CtRevive:
			cc.handleRevive(m)
		case CtSubscribe:
			cc.handleSubscribe(m)
		case CtUnsubscribe:
			cc.handleUnsubscribe(m)
		case CtStats:
			cc.handleStats(m)
		case CtBye:
			cc.write(&Msg{Type: StBye, Req: m.Req})
			return
		case CtHello:
			cc.writeErr(m.Req, CodeBadRequest, "session already authenticated")
		default:
			cc.writeErr(m.Req, CodeBadRequest, "frame type not valid on an authenticated session")
		}
	}
}

// tokenOK validates a session token; an empty Tokens list means open access.
func (s *Service) tokenOK(token string) bool {
	if len(s.cfg.Tokens) == 0 {
		return true
	}
	for _, t := range s.cfg.Tokens {
		if token == t {
			return true
		}
	}
	return false
}

// errCode maps a service error onto its wire code.
func errCode(err error) (uint16, string) {
	var se *serviceError
	if errors.As(err, &se) {
		return se.code, se.msg
	}
	return CodeBadRequest, err.Error()
}

func (cc *ctlConn) handleAttach(m *Msg) {
	if m.Text == "" {
		cc.writeErr(m.Req, CodeBadRequest, "empty query text")
		return
	}
	id, err := cc.s.Attach(m.Text, uint32(cc.s.cfg.Shards))
	if err != nil {
		code, msg := errCode(err)
		cc.writeErr(m.Req, code, msg)
		return
	}
	cc.write(&Msg{Type: StAttached, Req: m.Req, Query: id})
}

func (cc *ctlConn) handleDetach(m *Msg) {
	if err := cc.s.Detach(m.Query); err != nil {
		code, msg := errCode(err)
		cc.writeErr(m.Req, code, msg)
		return
	}
	cc.write(&Msg{Type: StOK, Req: m.Req})
}

func (cc *ctlConn) handleRevive(m *Msg) {
	if err := cc.s.Revive(m.Query); err != nil {
		code, msg := errCode(err)
		cc.writeErr(m.Req, code, msg)
		return
	}
	cc.write(&Msg{Type: StOK, Req: m.Req})
}

func (cc *ctlConn) handleSubscribe(m *Msg) {
	if cc.s.Mode() == ModeDegraded {
		cc.writeErr(m.Req, CodeDegraded, errDegraded.msg)
		return
	}
	q, err := cc.s.lookup(m.Query)
	if err != nil {
		code, msg := errCode(err)
		cc.writeErr(m.Req, code, msg)
		return
	}
	if m.Policy == PolicyDisconnect && m.Deadline == 0 {
		cc.writeErr(m.Req, CodeBadRequest, "disconnect policy requires a nonzero deadline")
		return
	}
	cc.smu.Lock()
	if _, dup := cc.subs[m.Query]; dup {
		cc.smu.Unlock()
		cc.writeErr(m.Req, CodeBadRequest, "already subscribed to this query on this connection")
		return
	}
	// Blocking policies promise a gapless stream; a start cursor already
	// evicted from the ring makes that promise unkeepable.
	if m.Policy != PolicyDropOldest && m.Cursor != 0 {
		if base, _ := q.log.snapshot(); m.Cursor < base {
			cc.smu.Unlock()
			cc.writeErr(m.Req, CodeCursorGap, "cursor predates the retained result log")
			return
		}
	}
	sub := &ctlSub{
		q:    q,
		sub:  q.log.subscribe(m.Cursor, m.Policy, time.Duration(m.Deadline)*time.Millisecond),
		req:  m.Req,
		done: make(chan struct{}),
	}
	cc.subs[m.Query] = sub
	cc.smu.Unlock()
	if cc.write(&Msg{Type: StOK, Req: m.Req}) != nil {
		return // teardown path unsubscribes
	}
	cc.s.counters.Add("server_subscribes", 1)
	go cc.runSub(sub)
}

func (cc *ctlConn) handleUnsubscribe(m *Msg) {
	cc.smu.Lock()
	sub := cc.subs[m.Query]
	if sub != nil {
		delete(cc.subs, m.Query)
		sub.stopped = true
	}
	cc.smu.Unlock()
	if sub == nil {
		cc.writeErr(m.Req, CodeUnknownQuery, "no subscription for that query on this connection")
		return
	}
	sub.q.log.unsubscribe(sub.sub)
	<-sub.done
	cc.write(&Msg{Type: StOK, Req: m.Req})
}

func (cc *ctlConn) handleStats(m *Msg) {
	cc.write(&Msg{Type: StStats, Req: m.Req, Text: cc.s.statsJSON()})
}

// dropAllSubs releases every subscription when the connection dies.
func (cc *ctlConn) dropAllSubs() {
	cc.smu.Lock()
	subs := make([]*ctlSub, 0, len(cc.subs))
	for id, sub := range cc.subs {
		sub.stopped = true
		subs = append(subs, sub)
		delete(cc.subs, id)
	}
	cc.smu.Unlock()
	for _, sub := range subs {
		sub.q.log.unsubscribe(sub.sub)
		<-sub.done
	}
}

// runSub is the subscription writer: fetch a bounded batch, write it, then
// advance the cursor. Between fetch and advance the rows are "in the output
// queue" — un-advanced — which is what lets PolicyBlock/PolicyDisconnect
// hold the emit path on this subscriber's behalf.
func (cc *ctlConn) runSub(sub *ctlSub) {
	defer close(sub.done)
	rl := sub.q.log
	for {
		rows, start, gapFrom, st := rl.fetch(sub.sub, cc.s.cfg.SubscriberBatch)
		switch st {
		case fetchRows:
			for i, row := range rows {
				if cc.write(&Msg{Type: StRow, Query: sub.q.ID, Cursor: start + uint64(i), Row: row}) != nil {
					return // socket dead; reader goroutine cleans up
				}
			}
			rl.advance(sub.sub, uint64(len(rows)))
			cc.s.counters.Add("server_rows_delivered", uint64(len(rows)))
		case fetchGap:
			if cc.write(&Msg{Type: StGap, Query: sub.q.ID, GapFrom: gapFrom, Cursor: start}) != nil {
				return
			}
			cc.s.counters.Add("server_gaps_reported", 1)
		case fetchRemoved:
			if !cc.subStopped(sub) {
				cc.writeErr(sub.req, CodeSlowConsumer, "subscription terminated: stalled past its deadline")
				cc.forgetSub(sub)
			}
			return
		case fetchClosed:
			if cc.subStopped(sub) {
				return
			}
			// Ring closed under us: either the query was detached or the
			// service is shutting down.
			if _, err := cc.s.lookup(sub.q.ID); err != nil {
				cc.writeErr(sub.req, CodeUnknownQuery, "query detached")
			} else {
				cc.writeErr(sub.req, CodeShutdown, "service shutting down")
			}
			cc.forgetSub(sub)
			return
		}
	}
}

func (cc *ctlConn) subStopped(sub *ctlSub) bool {
	cc.smu.Lock()
	defer cc.smu.Unlock()
	return sub.stopped
}

// forgetSub removes a self-terminated subscription from the conn map so a
// later resubscribe to the same query is not a duplicate.
func (cc *ctlConn) forgetSub(sub *ctlSub) {
	cc.smu.Lock()
	if cc.subs[sub.q.ID] == sub {
		delete(cc.subs, sub.q.ID)
	}
	cc.smu.Unlock()
}

// statsTopN bounds the "most expensive queries" section of the stats
// snapshot.
const statsTopN = 5

// QueryCost is one row of Service.TopExpensive: a query's attribution
// snapshot, ranked by the smoothed private-expression cost that admission
// control budgets against.
type QueryCost struct {
	ID          uint32
	Text        string
	NsPerTuple  float64
	Tuples      uint64
	Errors      uint64
	Quarantined bool
}

// TopExpensive returns the n most expensive queries of the live catalog,
// most expensive first, by the same ns/tuple attribution the stats verb
// surfaces. A degraded or empty catalog returns nil. cmd/gsql prints this
// as the drain-time stats line.
func (s *Service) TopExpensive(n int) []QueryCost {
	rt := s.rt.Load()
	if rt == nil || rt.degraded {
		return nil
	}
	// Same lock order as statsJSON: rt.mu for attribution, s.mu after (never
	// around) it for the catalog texts.
	perRun := map[uint32]gsql.QueryStats{}
	byMember := map[uint64]uint32{}
	rt.mu.Lock()
	for id, run := range rt.runs {
		qs := run.stats()
		perRun[id] = qs
		byMember[qs.ID] = id
	}
	rt.mu.Unlock()
	all := make([]gsql.QueryStats, 0, len(perRun))
	for _, qs := range perRun {
		all = append(all, qs)
	}
	var out []QueryCost
	s.mu.Lock()
	for _, qs := range gsql.TopExpensive(all, n) {
		id := byMember[qs.ID]
		qc := QueryCost{ID: id, NsPerTuple: qs.NsPerTuple, Tuples: qs.Tuples, Errors: qs.Errors}
		if q := s.queries[id]; q != nil {
			qc.Text = q.Text
			qc.Quarantined, _ = q.Quarantined()
		}
		out = append(out, qc)
	}
	s.mu.Unlock()
	return out
}

// statsJSON renders the service snapshot served by CtStats and /metrics.
func (s *Service) statsJSON() string {
	type queryStat struct {
		ID          uint32  `json:"id"`
		Text        string  `json:"text"`
		Base        uint64  `json:"base"`
		End         uint64  `json:"end"`
		Tuples      uint64  `json:"tuples,omitempty"`
		Errors      uint64  `json:"errors,omitempty"`
		NsPerTuple  float64 `json:"ns_per_tuple,omitempty"`
		Quarantined bool    `json:"quarantined,omitempty"`
		Reason      string  `json:"quarantine_reason,omitempty"`
	}
	type topStat struct {
		ID         uint32  `json:"id"`
		NsPerTuple float64 `json:"ns_per_tuple"`
		Tuples     uint64  `json:"tuples"`
	}
	s.refreshCatalogGauges()

	// Per-run attribution, collected under rt.mu only (lock order: s.mu is
	// taken after, never around, rt.mu here).
	perRun := map[uint32]gsql.QueryStats{}
	byMember := map[uint64]uint32{}
	if rt := s.rt.Load(); rt != nil && !rt.degraded {
		rt.mu.Lock()
		for id, run := range rt.runs {
			qs := run.stats()
			perRun[id] = qs
			byMember[qs.ID] = id
		}
		rt.mu.Unlock()
	}
	out := struct {
		Mode     string             `json:"mode"`
		Gen      uint64             `json:"gen"`
		Fails    int32              `json:"consecutive_failures"`
		Counters map[string]uint64  `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
		Queries  []queryStat        `json:"queries"`
		Top      []topStat          `json:"most_expensive,omitempty"`
	}{
		Mode:     s.Mode().String(),
		Gen:      s.gen.Load(),
		Fails:    s.fails.Load(),
		Counters: s.counters.Snapshot(),
		Gauges:   s.gauges.Snapshot(),
	}
	s.mu.Lock()
	for _, q := range s.queries {
		base, rows := q.log.snapshot()
		st := queryStat{
			ID: q.ID, Text: q.Text, Base: base, End: base + uint64(len(rows)) - 1,
		}
		if qs, ok := perRun[q.ID]; ok {
			st.Tuples, st.Errors, st.NsPerTuple = qs.Tuples, qs.Errors, qs.NsPerTuple
		}
		if fenced, why := q.Quarantined(); fenced {
			st.Quarantined, st.Reason = true, why
		}
		out.Queries = append(out.Queries, st)
	}
	s.mu.Unlock()
	all := make([]gsql.QueryStats, 0, len(perRun))
	for _, qs := range perRun {
		all = append(all, qs)
	}
	for _, qs := range gsql.TopExpensive(all, statsTopN) {
		out.Top = append(out.Top, topStat{ID: byMember[qs.ID], NsPerTuple: qs.NsPerTuple, Tuples: qs.Tuples})
	}
	b, err := json.Marshal(out)
	if err != nil {
		return `{"error":"stats marshal failed"}`
	}
	return string(b)
}
