package server

// Service-level tests: control wire codec, result-ring slow-consumer
// policies, WAL/state/journal persistence, and the end-to-end serve path
// (attach → stream → subscribe → bit-exact rows vs a closeless in-process
// oracle). Crash/fault drills live in fault_test.go.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
	"forwarddecay/internal/core"
	"forwarddecay/netgen"
)

// testQuery exercises grouped integer and float aggregation over 10-second
// buckets — enough state that a lost, duplicated, or reordered frame shows
// up in the rows.
const testQuery = `select tb, dstIP, count(*), sum(len), avg(float(len))
	from TCP group by time/10 as tb, dstIP`

const testToken = "sesame"

// genPackets synthesizes a deterministic trace. rate sets packets/second:
// lower rates spread the same packet count over more time buckets, which is
// how tests dial up the emitted-row volume.
func genPackets(t *testing.T, n int, rate float64, seed uint64) []netgen.Packet {
	t.Helper()
	cfg := netgen.DefaultConfig(rate, seed)
	cfg.Hosts = 50
	g := netgen.New(cfg)
	return g.Take(make([]netgen.Packet, 0, n), n)
}

// oracleRows is the reference output: the same packets pushed through an
// in-process serial run WITHOUT closing it. The service never closes live
// runs, so the open bucket's rows are not part of the observable stream —
// the oracle must not flush them either. Sharded service runs are compared
// against this same serial oracle: parallel emission is contractually
// bit-identical to serial.
func oracleRows(t *testing.T, pkts []netgen.Packet) []gsql.Tuple {
	t.Helper()
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	st, err := e.Prepare(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	var rows []gsql.Tuple
	done := false
	run := st.Start(func(row gsql.Tuple) error {
		if !done {
			rows = append(rows, append(gsql.Tuple(nil), row...))
		}
		return nil
	}, gsql.Options{})
	for _, p := range pkts {
		if err := run.Push(netgen.Tuple(p)); err != nil {
			t.Fatal(err)
		}
	}
	done = true // ignore Close's open-bucket flush; Close only to free the run
	run.Close()
	return rows
}

// requireIdentical asserts two result sets match bit-for-bit.
func requireIdentical(t *testing.T, want, got []gsql.Tuple, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: want %d rows, got %d", label, len(want), len(got))
	}
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s row %d: width %d vs %d", label, i, len(want[i]), len(got[i]))
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Fatalf("%s row %d col %d: want %v, got %v", label, i, j, want[i][j], got[i][j])
			}
		}
	}
}

// startService boots a service on dynamic ports with test-friendly timings.
func startService(t *testing.T, dir string, mut func(*Config)) *Service {
	t.Helper()
	cfg := Config{
		Dir:         dir,
		ControlAddr: "127.0.0.1:0",
		IngestAddr:  "127.0.0.1:0",
		Tokens:      []string{testToken},
		Backoff:     core.Backoff{Min: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Shutdown() })
	return s
}

// controlAddr renders the service's control address in the scheme-qualified
// form DialClient expects ("host:port" or "unix:/path").
func controlAddr(s *Service) string {
	a := s.ControlAddr()
	if a.Network() == "unix" {
		return "unix:" + a.String()
	}
	return a.String()
}

func dialControl(t *testing.T, s *Service) *Client {
	t.Helper()
	cl, err := DialClient(controlAddr(s), testToken, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func dialIngest(t *testing.T, s *Service, session uint64) *ingest.Dialer {
	t.Helper()
	network, address := ingest.SplitAddr(s.IngestAddr())
	return ingest.Dial(network, address, ingest.DialerConfig{
		Session:    session,
		BatchSize:  64,
		MinBackoff: 2 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		AckTimeout: 500 * time.Millisecond,
		Seed:       session,
	})
}

// streamAll sends every packet and closes the dialer, which waits for every
// ack — on return, the service has durably applied the whole trace.
func streamAll(t *testing.T, d *ingest.Dialer, pkts []netgen.Packet) {
	t.Helper()
	for _, p := range pkts {
		if err := d.Send(p); err != nil {
			t.Fatalf("send: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("dialer close: %v", err)
	}
}

// drainRows pulls n row events off a subscription, enforcing contiguous
// cursors (from start; 0 = accept any) and no gaps. Goroutine-safe: reports
// by error instead of t.Fatal.
func drainRows(ch <-chan SubEvent, start uint64, n int, timeout time.Duration) ([]gsql.Tuple, uint64, error) {
	deadline := time.After(timeout)
	rows := make([]gsql.Tuple, 0, n)
	next := start
	var last uint64
	for len(rows) < n {
		select {
		case ev, ok := <-ch:
			if !ok {
				return rows, last, fmt.Errorf("subscription closed after %d/%d rows", len(rows), n)
			}
			if ev.Err != nil {
				return rows, last, fmt.Errorf("after %d/%d rows: %w", len(rows), n, ev.Err)
			}
			if ev.Gap {
				return rows, last, fmt.Errorf("unexpected gap [%d,%d) after %d rows", ev.GapFrom, ev.GapTo, len(rows))
			}
			if next != 0 && ev.Cursor != next {
				return rows, last, fmt.Errorf("cursor %d, want %d", ev.Cursor, next)
			}
			next = ev.Cursor + 1
			last = ev.Cursor
			rows = append(rows, append(gsql.Tuple(nil), ev.Row...))
		case <-deadline:
			return rows, last, fmt.Errorf("timed out with %d/%d rows", len(rows), n)
		}
	}
	return rows, last, nil
}

func collectRows(t *testing.T, ch <-chan SubEvent, start uint64, n int, timeout time.Duration) ([]gsql.Tuple, uint64) {
	t.Helper()
	rows, last, err := drainRows(ch, start, n, timeout)
	if err != nil {
		t.Fatal(err)
	}
	return rows, last
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

type statsPayload struct {
	Mode     string             `json:"mode"`
	Gen      uint64             `json:"gen"`
	Fails    int32              `json:"consecutive_failures"`
	Counters map[string]uint64  `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
	Queries  []struct {
		ID   uint32 `json:"id"`
		Text string `json:"text"`
		Base uint64 `json:"base"`
		End  uint64 `json:"end"`
	} `json:"queries"`
}

func fetchStats(t *testing.T, cl *Client) statsPayload {
	t.Helper()
	raw, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	var sp statsPayload
	if err := json.Unmarshal([]byte(raw), &sp); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, raw)
	}
	return sp
}

// --- control wire codec ---

func TestControlWireRoundTrip(t *testing.T) {
	row := gsql.Tuple{
		{T: gsql.TInt, I: 42},
		{T: gsql.TFloat, F: 3.5},
		{T: gsql.TBool, I: 1},
		{T: gsql.TString, S: "dst"},
		{T: gsql.TNull},
	}
	msgs := []*Msg{
		{Type: CtHello, Req: 1, Sess: 0xfeed, Text: testToken},
		{Type: CtAttach, Req: 2, Text: testQuery},
		{Type: CtDetach, Req: 3, Query: 7},
		{Type: CtSubscribe, Req: 4, Query: 7, Cursor: 99, Policy: PolicyDisconnect, Deadline: 1500},
		{Type: CtUnsubscribe, Req: 5, Query: 7},
		{Type: CtStats, Req: 6},
		{Type: CtBye, Req: 7},
		{Type: StOK, Req: 8},
		{Type: StErr, Req: 9, Code: CodeDegraded, Text: "nope"},
		{Type: StAttached, Req: 10, Query: 12},
		{Type: StRow, Query: 12, Cursor: 1234, Row: row},
		{Type: StGap, Query: 12, GapFrom: 10, Cursor: 20},
		{Type: StStats, Req: 11, Text: `{"mode":"healthy"}`},
		{Type: StBye, Req: 12},
	}
	for _, m := range msgs {
		buf := AppendMsg(nil, m)
		body, n, err := ingest.DecodeSealed(buf, MaxControlFrame)
		if err != nil || n != len(buf) {
			t.Fatalf("type %d: seal decode: %v (consumed %d of %d)", m.Type, err, n, len(buf))
		}
		got, err := DecodeMsg(body)
		if err != nil {
			t.Fatalf("type %d: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("type %d round trip:\n want %+v\n got  %+v", m.Type, m, got)
		}
	}

	// Hostile input: every strict prefix must be rejected, never panic.
	body := appendMsgBody(nil, &Msg{Type: StRow, Query: 1, Cursor: 2, Row: row})
	for i := 0; i < len(body); i++ {
		if _, err := DecodeMsg(body[:i]); err == nil {
			t.Fatalf("truncated body (%d/%d bytes) decoded successfully", i, len(body))
		}
	}
	if _, err := DecodeMsg(append(append([]byte(nil), body...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeMsg([]byte{99, 0, 0, 0, 0}); err == nil {
		t.Fatal("unknown frame type accepted")
	}
	bad := appendMsgBody(nil, &Msg{Type: CtSubscribe, Req: 1, Query: 1})
	bad[len(bad)-5] = 77 // the policy byte
	if _, err := DecodeMsg(bad); err == nil {
		t.Fatal("invalid policy accepted")
	}
}

// --- result ring policies ---

func TestResultLogPolicies(t *testing.T) {
	row := func(i int) gsql.Tuple { return gsql.Tuple{{T: gsql.TInt, I: int64(i)}} }

	t.Run("drop-oldest-gap", func(t *testing.T) {
		var shed uint64
		rl := newResultLog(4)
		rl.onShed = func(n uint64) { shed += n }
		sub := rl.subscribe(0, PolicyDropOldest, 0)
		for i := 1; i <= 10; i++ {
			rl.append(row(i))
		}
		_, start, gapFrom, st := rl.fetch(sub, 100)
		if st != fetchGap || gapFrom != 1 || start != 7 {
			t.Fatalf("want gap [1,7), got st=%d gapFrom=%d start=%d", st, gapFrom, start)
		}
		if shed != 6 {
			t.Fatalf("shed %d rows, want 6", shed)
		}
		rows, start, _, st := rl.fetch(sub, 100)
		if st != fetchRows || start != 7 || len(rows) != 4 {
			t.Fatalf("want rows 7..10, got st=%d start=%d n=%d", st, start, len(rows))
		}
		if rows[0][0].I != 7 || rows[3][0].I != 10 {
			t.Fatalf("wrong rows after gap: %v", rows)
		}
	})

	t.Run("block-holds-appender", func(t *testing.T) {
		rl := newResultLog(2)
		sub := rl.subscribe(0, PolicyBlock, 0)
		rl.append(row(1))
		rl.append(row(2))
		done := make(chan struct{})
		go func() { rl.append(row(3)); close(done) }()
		select {
		case <-done:
			t.Fatal("append proceeded past a blocking subscriber")
		case <-time.After(50 * time.Millisecond):
		}
		rows, _, _, st := rl.fetch(sub, 1)
		if st != fetchRows || len(rows) != 1 {
			t.Fatalf("fetch: st=%d n=%d", st, len(rows))
		}
		rl.advance(sub, 1)
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatal("append still blocked after the subscriber advanced")
		}
	})

	t.Run("disconnect-after-budget", func(t *testing.T) {
		disc := 0
		rl := newResultLog(2)
		rl.onDisconnect = func() { disc++ }
		sub := rl.subscribe(0, PolicyDisconnect, 30*time.Millisecond)
		start := time.Now()
		for i := 1; i <= 5; i++ {
			rl.append(row(i))
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Fatalf("appends stalled %v past the 30ms budget", el)
		}
		if disc != 1 {
			t.Fatalf("onDisconnect fired %d times, want 1", disc)
		}
		if _, _, _, st := rl.fetch(sub, 1); st != fetchRemoved {
			t.Fatalf("fetch after disconnect: st=%d, want fetchRemoved", st)
		}
	})

	t.Run("unsubscribe-releases-parked-fetch", func(t *testing.T) {
		rl := newResultLog(2)
		sub := rl.subscribe(0, PolicyBlock, 0)
		got := make(chan fetchStatus, 1)
		go func() {
			_, _, _, st := rl.fetch(sub, 1)
			got <- st
		}()
		time.Sleep(20 * time.Millisecond)
		rl.unsubscribe(sub)
		select {
		case st := <-got:
			if st != fetchRemoved {
				t.Fatalf("st=%d, want fetchRemoved", st)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("fetch still parked after unsubscribe")
		}
	})

	t.Run("truncate-freeze-reemission", func(t *testing.T) {
		rl := newResultLog(10)
		for i := 1; i <= 6; i++ {
			rl.append(row(i))
		}
		sub := rl.subscribe(5, PolicyBlock, 0)
		rl.truncateTo(3)
		rl.freeze()
		rl.append(row(99)) // teardown flush: must not pollute the cursor space
		rl.thaw()
		for i := 4; i <= 6; i++ {
			rl.append(row(i))
		}
		rows, start, _, st := rl.fetch(sub, 10)
		if st != fetchRows || start != 5 || len(rows) != 2 {
			t.Fatalf("st=%d start=%d n=%d, want rows 5..6", st, start, len(rows))
		}
		if rows[0][0].I != 5 || rows[1][0].I != 6 {
			t.Fatalf("re-emitted rows differ: %v", rows)
		}
	})
}

// --- WAL persistence ---

func TestWALRoundTripAndTornTail(t *testing.T) {
	dir := t.TempDir()
	w, recs, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w.epoch != 1 || len(recs) != 0 {
		t.Fatalf("fresh dir: epoch=%d recs=%d", w.epoch, len(recs))
	}
	pkts := genPackets(t, 9, 100, 1)
	if err := w.LogFrame(7, 1, pkts[:4]); err != nil {
		t.Fatal(err)
	}
	if err := w.LogFrame(7, 2, pkts[4:]); err != nil {
		t.Fatal(err)
	}
	if err := w.LogHeartbeat(gsql.Value{T: gsql.TInt, I: 123}); err != nil {
		t.Fatal(err)
	}
	if err := w.LogHeartbeat(gsql.Value{T: gsql.TFloat, F: 4.5}); err != nil {
		t.Fatal(err)
	}
	w.close()

	w2, recs, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w2.epoch != 1 || w2.applied != 4 || len(recs) != 4 {
		t.Fatalf("reopen: epoch=%d applied=%d recs=%d", w2.epoch, w2.applied, len(recs))
	}
	if recs[0].kind != recFrame || recs[0].sess != 7 || recs[0].seq != 1 || !reflect.DeepEqual(recs[0].pkts, pkts[:4]) {
		t.Fatalf("frame record 0 mismatch: %+v", recs[0])
	}
	if !reflect.DeepEqual(recs[1].pkts, pkts[4:]) || recs[1].seq != 2 {
		t.Fatalf("frame record 1 mismatch: %+v", recs[1])
	}
	if recs[2].hb.T != gsql.TInt || recs[2].hb.I != 123 {
		t.Fatalf("int heartbeat mismatch: %+v", recs[2].hb)
	}
	if recs[3].hb.T != gsql.TFloat || recs[3].hb.F != 4.5 {
		t.Fatalf("float heartbeat mismatch: %+v", recs[3].hb)
	}
	w2.close()

	// A torn tail (crash mid-append) is truncated away and appends resume.
	f, err := os.OpenFile(walName(dir, 1), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 9, 9})
	f.Close()
	w3, recs, err := openWAL(dir)
	if err != nil {
		t.Fatalf("torn tail not repaired: %v", err)
	}
	if len(recs) != 4 {
		t.Fatalf("after torn-tail repair: %d recs, want 4", len(recs))
	}
	if err := w3.LogHeartbeat(gsql.Value{T: gsql.TInt, I: 5}); err != nil {
		t.Fatal(err)
	}
	w3.close()
	_, recs, err = openWAL(dir)
	if err != nil || len(recs) != 5 {
		t.Fatalf("append after repair: %v, %d recs", err, len(recs))
	}

	// Corruption in the interior is NOT a torn tail: refuse to load.
	dir2 := t.TempDir()
	wc, _, err := openWAL(dir2)
	if err != nil {
		t.Fatal(err)
	}
	wc.LogHeartbeat(gsql.Value{T: gsql.TInt, I: 1})
	wc.LogHeartbeat(gsql.Value{T: gsql.TInt, I: 2})
	wc.close()
	data, err := os.ReadFile(walName(dir2, 1))
	if err != nil {
		t.Fatal(err)
	}
	data[30] ^= 1 // inside the first record's sealed body
	if err := os.WriteFile(walName(dir2, 1), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := openWAL(dir2); err == nil {
		t.Fatal("corrupted WAL loaded without error")
	}
}

func TestWALRotation(t *testing.T) {
	dir := t.TempDir()
	w, _, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.LogHeartbeat(gsql.Value{T: gsql.TInt, I: 1})
	if err := w.rotate(); err != nil {
		t.Fatal(err)
	}
	if w.epoch != 2 || w.applied != 0 {
		t.Fatalf("after rotate: epoch=%d applied=%d", w.epoch, w.applied)
	}
	w.LogHeartbeat(gsql.Value{T: gsql.TInt, I: 2})
	w.close()

	w2, recs, err := openWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if w2.epoch != 2 || len(recs) != 1 || recs[0].hb.I != 2 {
		t.Fatalf("newest epoch: epoch=%d recs=%+v", w2.epoch, recs)
	}
	w2.close()
	names, _ := filepath.Glob(filepath.Join(dir, "ingest-*.wal"))
	if len(names) != 1 {
		t.Fatalf("rotation left %d WAL files: %v", len(names), names)
	}

	// A superseded epoch left by a crash mid-rotation is swept on open.
	dir2 := t.TempDir()
	f1, err := createWAL(dir2, 1)
	if err != nil {
		t.Fatal(err)
	}
	f1.Close()
	f2, err := createWAL(dir2, 2)
	if err != nil {
		t.Fatal(err)
	}
	f2.Close()
	w3, _, err := openWAL(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if w3.epoch != 2 {
		t.Fatalf("picked epoch %d, want 2", w3.epoch)
	}
	w3.close()
	if _, err := os.Stat(walName(dir2, 1)); !os.IsNotExist(err) {
		t.Fatalf("superseded epoch not removed: %v", err)
	}
}

// --- state file + journal ---

func TestStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := &serverState{
		walEpoch:    3,
		walApplied:  17,
		nextQueryID: 9,
		queries: []queryState{{
			id:     1,
			text:   testQuery,
			ckpt:   []byte{1, 2, 3, 4},
			base:   4,
			rows:   []gsql.Tuple{{{T: gsql.TInt, I: 10}, {T: gsql.TFloat, F: 2.5}}},
			end:    4,
			shards: 2,
		}},
		sessions: map[uint64]uint64{7: 42, 9: 1},
	}
	if err := writeState(dir, st); err != nil {
		t.Fatal(err)
	}
	got, err := loadState(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, got) {
		t.Fatalf("state round trip:\n want %+v\n got  %+v", st, got)
	}

	// A flipped byte anywhere must fail the checksum.
	path := filepath.Join(dir, stateFile)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 1
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadState(dir); err == nil {
		t.Fatal("corrupted state file loaded")
	}

	// Missing file is a fresh start, not an error.
	if st, err := loadState(t.TempDir()); err != nil || st != nil {
		t.Fatalf("missing state: %v %v", st, err)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	entries := []journalEntry{
		{op: jAttach, id: 1, text: testQuery, shards: 2, epoch: 1, at: 5},
		{op: jDetach, id: 1, epoch: 1, at: 9},
		{op: jAttach, id: 2, text: "select count(*) from TCP group by time as tb", epoch: 2, at: 0},
	}
	for _, e := range entries {
		if err := appendJournal(dir, e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := loadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entries, got) {
		t.Fatalf("journal round trip:\n want %+v\n got  %+v", entries, got)
	}

	// Torn tail tolerated: the un-acked attach simply vanishes.
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{44, 0, 0})
	f.Close()
	got, err = loadJournal(dir)
	if err != nil || len(got) != 3 {
		t.Fatalf("torn journal tail: %v, %d entries", err, len(got))
	}

	if err := resetJournal(dir); err != nil {
		t.Fatal(err)
	}
	got, err = loadJournal(dir)
	if err != nil || len(got) != 0 {
		t.Fatalf("after reset: %v, %d entries", err, len(got))
	}
}

// --- end-to-end serve path ---

func TestServeEndToEnd(t *testing.T) {
	pkts := genPackets(t, 4000, 50, 11)
	want := oracleRows(t, pkts)
	if len(want) < 50 {
		t.Fatalf("oracle too thin to be interesting: %d rows", len(want))
	}
	svc := startService(t, t.TempDir(), func(c *Config) { c.HTTPAddr = "127.0.0.1:0" })
	cl := dialControl(t, svc)

	id, err := cl.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cl.Subscribe(id, 0, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}

	d := dialIngest(t, svc, 3)
	streamAll(t, d, pkts)

	rows, last := collectRows(t, ch, 1, len(want), 30*time.Second)
	requireIdentical(t, want, rows, "live subscription")
	if last != uint64(len(want)) {
		t.Fatalf("last cursor %d, want %d", last, len(want))
	}

	sp := fetchStats(t, cl)
	if sp.Mode != "healthy" {
		t.Fatalf("stats mode %q", sp.Mode)
	}
	if len(sp.Queries) != 1 || sp.Queries[0].ID != id || sp.Queries[0].End != uint64(len(want)) {
		t.Fatalf("stats queries: %+v", sp.Queries)
	}
	if sp.Counters["server_rows_emitted"] < uint64(len(want)) {
		t.Fatalf("rows_emitted %d < %d", sp.Counters["server_rows_emitted"], len(want))
	}
	if sp.Gauges["server_catalog_queries"] != 1 {
		t.Fatalf("catalog queries gauge: %v", sp.Gauges)
	}
	if sp.Gauges["server_catalog_distinct_texts"] != 1 || sp.Gauges["server_catalog_shared_exprs"] <= 0 {
		t.Fatalf("catalog sharing gauges: %v", sp.Gauges)
	}

	code, body := httpGet(t, "http://"+svc.HTTPAddr()+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "healthy") {
		t.Fatalf("healthz: %d %q", code, body)
	}
	code, body = httpGet(t, "http://"+svc.HTTPAddr()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "server_rows_delivered") {
		t.Fatalf("metrics: %d %q", code, body)
	}
	if !strings.Contains(body, "server_catalog_queries 1") || !strings.Contains(body, "server_shared_hit_ratio") {
		t.Fatalf("metrics missing catalog gauges: %q", body)
	}
	code, body = httpGet(t, "http://"+svc.HTTPAddr()+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("metrics json: %d", code)
	}
	var js statsPayload
	if err := json.Unmarshal([]byte(body), &js); err != nil {
		t.Fatalf("metrics json: %v\n%s", err, body)
	}

	if err := cl.Unsubscribe(id); err != nil {
		t.Fatal(err)
	}
	for ev := range ch { // channel must close cleanly, without errors
		if ev.Err != nil {
			t.Fatalf("event after unsubscribe: %v", ev.Err)
		}
	}
	if err := cl.Bye(); err != nil {
		t.Fatal(err)
	}
}

func TestAuthAndBadRequests(t *testing.T) {
	svc := startService(t, t.TempDir(), nil)
	addr := svc.ControlAddr().String()

	if _, err := DialClient(addr, "wrong-token", time.Second); err == nil {
		t.Fatal("bad token accepted")
	} else {
		var ce *ClientError
		if !asClientError(err, &ce) || ce.Code != CodeAuth {
			t.Fatalf("bad token: %v, want CodeAuth", err)
		}
	}
	if got := svc.Counters().Get("server_auth_failures"); got != 1 {
		t.Fatalf("auth failure counter = %d, want 1", got)
	}

	cl := dialControl(t, svc)
	if _, err := cl.Attach("select utter nonsense ((("); err == nil {
		t.Fatal("unparseable query attached")
	} else if code := errClientCode(t, err); code != CodeParse {
		t.Fatalf("parse failure code %d, want %d", code, CodeParse)
	}
	if _, err := cl.Attach(""); err == nil {
		t.Fatal("empty query attached")
	} else if code := errClientCode(t, err); code != CodeBadRequest {
		t.Fatalf("empty attach code %d, want %d", code, CodeBadRequest)
	}
	if err := cl.Detach(42); err == nil {
		t.Fatal("detach of unknown query succeeded")
	} else if code := errClientCode(t, err); code != CodeUnknownQuery {
		t.Fatalf("unknown detach code %d, want %d", code, CodeUnknownQuery)
	}
	if _, err := cl.Subscribe(42, 0, PolicyDropOldest, 0); err == nil {
		t.Fatal("subscribe to unknown query succeeded")
	} else if code := errClientCode(t, err); code != CodeUnknownQuery {
		t.Fatalf("unknown subscribe code %d, want %d", code, CodeUnknownQuery)
	}

	id, err := cl.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe(id, 0, PolicyDisconnect, 0); err == nil {
		t.Fatal("disconnect policy without a deadline accepted")
	} else if code := errClientCode(t, err); code != CodeBadRequest {
		t.Fatalf("deadline-less disconnect code %d, want %d", code, CodeBadRequest)
	}
	if _, err := cl.Subscribe(id, 0, PolicyBlock, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Subscribe(id, 0, PolicyBlock, 0); err == nil {
		t.Fatal("duplicate subscription accepted")
	}
}

func asClientError(err error, out **ClientError) bool {
	ce, ok := err.(*ClientError)
	if ok {
		*out = ce
	}
	return ok
}

func errClientCode(t *testing.T, err error) uint16 {
	t.Helper()
	var ce *ClientError
	if !asClientError(err, &ce) {
		t.Fatalf("not a ClientError: %v", err)
	}
	return ce.Code
}

func TestDetachNotifiesSubscribers(t *testing.T) {
	pkts := genPackets(t, 2000, 50, 13)
	want := oracleRows(t, pkts)
	svc := startService(t, t.TempDir(), nil)
	cl := dialControl(t, svc)
	id, err := cl.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cl.Subscribe(id, 0, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	d := dialIngest(t, svc, 17)
	streamAll(t, d, pkts)
	collectRows(t, ch, 1, len(want), 20*time.Second)

	if err := cl.Detach(id); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("channel closed with no termination event")
		}
		if ev.Err == nil || ev.Code != CodeUnknownQuery {
			t.Fatalf("termination event: err=%v code=%d, want CodeUnknownQuery", ev.Err, ev.Code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no termination event after detach")
	}

	// The catalog is really gone, and a fresh attach gets a fresh id.
	if _, err := cl.Subscribe(id, 0, PolicyBlock, 0); err == nil {
		t.Fatal("subscribe to detached query succeeded")
	}
	id2, err := cl.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("detached id %d was reused", id)
	}
}

func TestShutdownRestartResume(t *testing.T) {
	dir := t.TempDir()
	pkts := genPackets(t, 6000, 50, 21)
	wantAll := oracleRows(t, pkts)
	cut := len(pkts) / 2
	wantFirst := oracleRows(t, pkts[:cut])
	if len(wantFirst) < 20 || len(wantAll) <= len(wantFirst) {
		t.Fatalf("degenerate split: %d / %d rows", len(wantFirst), len(wantAll))
	}

	svc1 := startService(t, dir, func(c *Config) { c.ResultLog = 1 << 14 })
	cl1 := dialControl(t, svc1)
	id, err := cl1.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	ch1, err := cl1.Subscribe(id, 0, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	d1 := dialIngest(t, svc1, 5)
	streamAll(t, d1, pkts[:cut])
	rowsA, lastA := collectRows(t, ch1, 1, len(wantFirst), 20*time.Second)
	requireIdentical(t, wantFirst, rowsA, "before restart")
	if err := svc1.Shutdown(); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	// Cold restart in the same directory: catalog, ring and engine state come
	// back from the checkpoint; the subscriber resumes at lastA+1 and sees
	// exactly the rows an uninterrupted run would have emitted next.
	svc2 := startService(t, dir, func(c *Config) { c.ResultLog = 1 << 14 })
	cl2 := dialControl(t, svc2)
	sp := fetchStats(t, cl2)
	if len(sp.Queries) != 1 || sp.Queries[0].ID != id || sp.Queries[0].End != lastA {
		t.Fatalf("restored catalog: %+v (want query %d at end %d)", sp.Queries, id, lastA)
	}
	ch2, err := cl2.Subscribe(id, lastA+1, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	d2 := dialIngest(t, svc2, 6)
	streamAll(t, d2, pkts[cut:])
	rest := wantAll[len(wantFirst):]
	rowsB, lastB := collectRows(t, ch2, lastA+1, len(rest), 20*time.Second)
	requireIdentical(t, rest, rowsB, "after restart")
	if lastB != uint64(len(wantAll)) {
		t.Fatalf("final cursor %d, want %d", lastB, len(wantAll))
	}

	// Shutdown is idempotent.
	if err := svc2.Shutdown(); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	if err := svc2.Shutdown(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
