package server

// Crash-recovery and degradation drills: kill the runtime mid-stream and
// prove subscriber resume is bit-identical to an uninterrupted oracle;
// stall subscribers and prove each policy sheds without touching the
// others; fail checkpoints until the breaker opens and prove degraded
// ingest plus heal; wedge the apply path and prove the watchdog recovers.

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
	"forwarddecay/internal/faultinject"
)

// TestKillResumeBitIdentical is the headline drill: the runtime is killed
// twice mid-stream (no checkpoint, no graceful anything), the dialer rides
// through the restarts, and a blocking subscriber sees exactly the rows an
// uninterrupted run would have produced — serial and sharded.
func TestKillResumeBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{
		{"serial", 0},
		{"sharded", 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pkts := genPackets(t, 8000, 50, 41)
			want := oracleRows(t, pkts) // serial oracle: parallel emission is bit-identical
			svc := startService(t, t.TempDir(), func(c *Config) {
				c.Shards = tc.shards
				c.CheckpointEvery = 600
				c.ResultLog = 1 << 15
			})
			cl := dialControl(t, svc)
			id, err := cl.Attach(testQuery)
			if err != nil {
				t.Fatal(err)
			}
			ch, err := cl.Subscribe(id, 0, PolicyBlock, 0)
			if err != nil {
				t.Fatal(err)
			}

			d := dialIngest(t, svc, 23)
			for i, p := range pkts {
				if i == len(pkts)/3 || i == 2*len(pkts)/3 {
					svc.Kill()
				}
				if err := d.Send(p); err != nil {
					t.Fatalf("send %d: %v", i, err)
				}
			}
			if err := d.Close(); err != nil {
				t.Fatalf("dialer close: %v", err)
			}

			rows, last := collectRows(t, ch, 1, len(want), 60*time.Second)
			requireIdentical(t, want, rows, "post-kill subscription")
			if last != uint64(len(want)) {
				t.Fatalf("last cursor %d, want %d", last, len(want))
			}
			if got := svc.Counters().Get("server_restarts"); got < 1 {
				t.Fatalf("server_restarts = %d, want >= 1", got)
			}
		})
	}
}

// rawConn is a hand-driven control connection for tests that must control
// exactly when (and whether) responses are read — e.g. a deliberately
// stalled subscriber.
type rawConn struct {
	t   *testing.T
	c   net.Conn
	r   *bufio.Reader
	req uint32
}

func dialRaw(t *testing.T, addr string) *rawConn {
	t.Helper()
	network, address := ingest.SplitAddr(addr)
	c, err := net.DialTimeout(network, address, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	rc := &rawConn{t: t, c: c, r: bufio.NewReader(c)}
	rc.roundTrip(&Msg{Type: CtHello, Text: testToken}, StOK)
	return rc
}

func (rc *rawConn) send(m *Msg) uint32 {
	rc.t.Helper()
	rc.req++
	m.Req = rc.req
	if _, err := rc.c.Write(AppendMsg(nil, m)); err != nil {
		rc.t.Fatalf("raw write: %v", err)
	}
	return m.Req
}

// roundTrip sends m and reads until its response arrives (skipping any
// subscription traffic), asserting the response type.
func (rc *rawConn) roundTrip(m *Msg, wantType uint8) *Msg {
	rc.t.Helper()
	req := rc.send(m)
	for {
		resp, err := readMsg(rc.r)
		if err != nil {
			rc.t.Fatalf("raw read: %v", err)
		}
		if resp.Type == StRow || resp.Type == StGap {
			continue
		}
		if resp.Req != req {
			continue
		}
		if resp.Type != wantType {
			rc.t.Fatalf("response type %d (code %d, %q), want %d", resp.Type, resp.Code, resp.Text, wantType)
		}
		return resp
	}
}

// TestSlowConsumerShedding runs one fast blocking subscriber beside two
// stalled ones (drop-oldest and disconnect-after-deadline) on a small ring.
// The fast subscriber must still see the full oracle bit-exactly; the
// stalled ones must shed / be disconnected, visible in /metrics. Unix
// sockets keep the kernel buffer small so the stall is deterministic.
func TestSlowConsumerShedding(t *testing.T) {
	saved := controlIOTimeout
	controlIOTimeout = time.Second
	t.Cleanup(func() { controlIOTimeout = saved })

	pkts := genPackets(t, 12000, 1, 51) // rate 1: ~10 rows per packet-decade
	want := oracleRows(t, pkts)
	if len(want) < 3000 {
		t.Fatalf("trace too thin to overflow kernel buffers: %d rows", len(want))
	}
	sock := filepath.Join(t.TempDir(), "ctl.sock")
	svc := startService(t, t.TempDir(), func(c *Config) {
		c.ControlAddr = "unix:" + sock
		c.HTTPAddr = "127.0.0.1:0"
		c.ResultLog = 64
	})
	cl := dialControl(t, svc)
	id, err := cl.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cl.Subscribe(id, 0, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	type drained struct {
		rows []gsql.Tuple
		err  error
	}
	fast := make(chan drained, 1)
	go func() {
		rows, _, err := drainRows(ch, 1, len(want), 60*time.Second)
		fast <- drained{rows, err}
	}()

	// Two stalled subscribers: after the subscribe handshake they never read
	// again, so their sockets fill and their writers jam.
	dropper := dialRaw(t, controlAddr(svc))
	dropper.roundTrip(&Msg{Type: CtSubscribe, Query: id, Policy: PolicyDropOldest}, StOK)
	killer := dialRaw(t, controlAddr(svc))
	killer.roundTrip(&Msg{Type: CtSubscribe, Query: id, Policy: PolicyDisconnect, Deadline: 100}, StOK)

	d := dialIngest(t, svc, 29)
	streamAll(t, d, pkts)

	got := <-fast
	if got.err != nil {
		t.Fatalf("fast subscriber: %v", got.err)
	}
	requireIdentical(t, want, got.rows, "fast subscriber beside stalled peers")

	waitFor(t, 10*time.Second, "shed and disconnect counters", func() bool {
		return svc.Counters().Get("server_rows_shed") > 0 &&
			svc.Counters().Get("server_slow_disconnects") >= 1
	})
	code, body := httpGet(t, "http://"+svc.HTTPAddr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, name := range []string{"server_rows_shed", "server_slow_disconnects"} {
		found := false
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, name+" ") && !strings.HasSuffix(line, " 0") {
				found = true
			}
		}
		if !found {
			t.Fatalf("metrics missing nonzero %s:\n%s", name, body)
		}
	}
}

// TestSlowConsumerWireError asserts the StErr(CodeSlowConsumer) a killed
// subscriber receives when its connection is still writable — forced
// deterministically by marking the ring subscriber removed, the same state
// the policy eviction produces.
func TestSlowConsumerWireError(t *testing.T) {
	pkts := genPackets(t, 1000, 50, 61)
	want := oracleRows(t, pkts)
	svc := startService(t, t.TempDir(), nil)
	cl := dialControl(t, svc)
	id, err := cl.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cl.Subscribe(id, 0, PolicyDisconnect, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	d := dialIngest(t, svc, 31)
	streamAll(t, d, pkts)
	collectRows(t, ch, 1, len(want), 20*time.Second)

	q, err := svc.lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	q.log.mu.Lock()
	for s := range q.log.subs {
		s.removed = true
	}
	q.log.broadcast()
	q.log.mu.Unlock()

	select {
	case ev, ok := <-ch:
		if !ok {
			t.Fatal("channel closed without a terminal event")
		}
		if ev.Err == nil || ev.Code != CodeSlowConsumer {
			t.Fatalf("terminal event: err=%v code=%d, want CodeSlowConsumer", ev.Err, ev.Code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no CodeSlowConsumer after forced removal")
	}
}

// TestBreakerDegradesAndHeals fails every durable sync so checkpoints keep
// failing, drives the supervisor through its restart budget into the open
// breaker, proves ingest still acks (WAL-only) and queries return typed
// Degraded, then lifts the fault and proves the service heals with the
// subscriber bit-exact.
func TestBreakerDegradesAndHeals(t *testing.T) {
	defer faultinject.Reset()
	pkts := genPackets(t, 6000, 50, 71)
	want := oracleRows(t, pkts)
	third := len(pkts) / 3

	svc := startService(t, t.TempDir(), func(c *Config) {
		c.HTTPAddr = "127.0.0.1:0"
		c.CheckpointEvery = 400
		c.BreakerThreshold = 2
		c.BreakerCooldown = 700 * time.Millisecond
		c.HealthyAfter = time.Hour // never auto-reset fails mid-drill
		c.ResultLog = 1 << 15
	})
	cl := dialControl(t, svc)
	id, err := cl.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cl.Subscribe(id, 0, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	type drained struct {
		rows []gsql.Tuple
		err  error
	}
	res := make(chan drained, 1)
	go func() {
		rows, _, err := drainRows(ch, 1, len(want), 90*time.Second)
		res <- drained{rows, err}
	}()

	d1 := dialIngest(t, svc, 81)
	streamAll(t, d1, pkts[:third])
	waitFor(t, 10*time.Second, "a baseline checkpoint", func() bool {
		return svc.Counters().Get("server_checkpoints") >= 1
	})

	// Every fsync now fails: the next checkpoint poisons the incarnation,
	// the supervisor burns through its failure budget, the breaker opens.
	faultinject.Set("durable.sync", faultinject.Fault{ErrEvery: 1, Err: fmt.Errorf("injected: disk says no")})
	d2 := dialIngest(t, svc, 82)
	streamAll(t, d2, pkts[third:2*third]) // acks ride through the restarts
	waitFor(t, 20*time.Second, "breaker open (degraded mode)", func() bool {
		return svc.Mode() == ModeDegraded
	})
	if got := svc.Counters().Get("server_degraded_entered"); got < 1 {
		t.Fatalf("server_degraded_entered = %d, want >= 1", got)
	}

	// Degraded semantics: query plane refuses with the typed code, health
	// endpoint says 503, but ingest still accepts and acks frames.
	if _, err := cl.Attach(testQuery); !IsDegraded(err) {
		t.Fatalf("attach while degraded: %v, want Degraded", err)
	}
	if code, _ := httpGet(t, "http://"+svc.HTTPAddr()+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while degraded: %d, want 503", code)
	}
	d3 := dialIngest(t, svc, 83)
	streamAll(t, d3, pkts[2*third:]) // must succeed: WAL-only ingest

	// Lift the fault: the next half-open probe rebuild replays the WAL tail
	// and sticks.
	faultinject.Reset()
	waitFor(t, 20*time.Second, "heal back to healthy", func() bool {
		return svc.Mode() == ModeHealthy
	})

	got := <-res
	if got.err != nil {
		t.Fatalf("subscriber across degrade/heal: %v", got.err)
	}
	requireIdentical(t, want, got.rows, "subscriber across degrade/heal")
	if code, _ := httpGet(t, "http://"+svc.HTTPAddr()+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after heal: %d, want 200", code)
	}
}

// TestWedgeWatchdogRecovers wedges the apply path (a blocking ring holder
// that never drains, on a tiny ring) until the watchdog declares the
// incarnation wedged and rebuilds. Releasing the holder lets the rebuild's
// replay finish; the stream then completes and a late subscriber reads the
// tail bit-exactly.
func TestWedgeWatchdogRecovers(t *testing.T) {
	pkts := genPackets(t, 3000, 50, 91)
	want := oracleRows(t, pkts)
	if len(want) < 30 {
		t.Fatalf("trace too thin: %d rows", len(want))
	}
	svc := startService(t, t.TempDir(), func(c *Config) {
		c.ResultLog = 8
		c.WedgeTimeout = 150 * time.Millisecond
		c.CheckpointEvery = 1 << 30 // keep the whole stream in one WAL epoch
	})
	cl := dialControl(t, svc)
	id, err := cl.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	q, err := svc.lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	// The villain: a direct ring subscriber that blocks and never drains.
	blocker := q.log.subscribe(0, PolicyBlock, 0)

	d := dialIngest(t, svc, 37)
	streamDone := make(chan error, 1)
	go func() {
		for _, p := range pkts {
			if err := d.Send(p); err != nil {
				streamDone <- err
				return
			}
		}
		streamDone <- d.Close()
	}()

	waitFor(t, 20*time.Second, "watchdog wedge detection", func() bool {
		return svc.Counters().Get("server_wedges") >= 1
	})
	// The rebuild is itself stalled in replay behind the same holder (replay
	// appends to the same ring). Ring operations need no service lock, so
	// releasing the holder un-wedges the rebuild.
	q.log.unsubscribe(blocker)

	waitFor(t, 20*time.Second, "rebuild to finish", func() bool {
		return svc.Mode() == ModeHealthy
	})
	if err := <-streamDone; err != nil {
		t.Fatalf("stream across wedge: %v", err)
	}
	waitFor(t, 20*time.Second, "emission to catch up", func() bool {
		base, rows := q.log.snapshot()
		return base+uint64(len(rows))-1 == uint64(len(want))
	})

	// A late subscriber reads the retained tail bit-exactly.
	tail := 5
	start := uint64(len(want) - tail + 1)
	ch, err := cl.Subscribe(id, start, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := collectRows(t, ch, start, tail, 10*time.Second)
	requireIdentical(t, want[len(want)-tail:], rows, "post-wedge tail")
}

// TestMidStreamClientDisconnect drops a subscriber's connection abruptly
// mid-stream; the service must shrug (no wedge, no restart) and a second
// subscriber replays everything bit-exactly.
func TestMidStreamClientDisconnect(t *testing.T) {
	pkts := genPackets(t, 4000, 50, 101)
	want := oracleRows(t, pkts)
	svc := startService(t, t.TempDir(), func(c *Config) { c.ResultLog = 1 << 14 })
	cl1 := dialControl(t, svc)
	id, err := cl1.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	ch1, err := cl1.Subscribe(id, 0, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}

	d := dialIngest(t, svc, 43)
	streamDone := make(chan error, 1)
	go func() {
		for _, p := range pkts {
			if err := d.Send(p); err != nil {
				streamDone <- err
				return
			}
		}
		streamDone <- d.Close()
	}()

	// Take a few rows, then vanish without a goodbye.
	if _, _, err := drainRows(ch1, 1, 5, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	cl1.Close()

	if err := <-streamDone; err != nil {
		t.Fatalf("stream across client disconnect: %v", err)
	}
	cl2 := dialControl(t, svc)
	ch2, err := cl2.Subscribe(id, 0, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := collectRows(t, ch2, 1, len(want), 30*time.Second)
	requireIdentical(t, want, rows, "second subscriber after abrupt disconnect")
	if got := svc.Counters().Get("server_restarts"); got != 0 {
		t.Fatalf("client disconnect caused %d restarts", got)
	}
	if got := svc.Counters().Get("server_subscribes"); got != 2 {
		t.Fatalf("server_subscribes = %d, want 2", got)
	}
}
