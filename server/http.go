package server

// Operational HTTP endpoints: /healthz answers 200 only while the runtime
// is healthy (503 with the mode name while restarting or degraded — a load
// balancer should stop routing queries, even though ingest may still be
// accepting frames into the WAL), and /metrics exposes the counter registry
// in a one-line-per-counter text format plus the JSON stats snapshot at
// /metrics?format=json.

import (
	"fmt"
	"net"
	"net/http"
)

func (s *Service) startHTTP(addr string) error {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: http listen: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		mode := s.Mode()
		if mode != ModeHealthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintf(w, "%s gen=%d fails=%d\n", mode, s.gen.Load(), s.fails.Load())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintln(w, s.statsJSON())
			return
		}
		s.refreshCatalogGauges()
		snap := s.counters.Snapshot()
		for _, name := range s.counters.Names() {
			fmt.Fprintf(w, "%s %d\n", name, snap[name])
		}
		gsnap := s.gauges.Snapshot()
		for _, name := range s.gauges.Names() {
			fmt.Fprintf(w, "%s %g\n", name, gsnap[name])
		}
		fmt.Fprintf(w, "server_mode %d\n", int32(s.mode.Load()))
		fmt.Fprintf(w, "server_generation %d\n", s.gen.Load())
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(nl)
	s.httpAddr = nl.Addr().String()
	s.httpClose = srv.Close
	return nil
}

// HTTPAddr returns the bound HTTP address ("" when HTTP is disabled).
func (s *Service) HTTPAddr() string { return s.httpAddr }
