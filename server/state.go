package server

// The checkpoint state file and the catalog journal.
//
// The state file is the service's restart anchor: for every attached query
// it holds the query text, the engine checkpoint (the paper's decayed
// partials, exact because forward-decay weights are fixed at arrival), and
// the result ring snapshot with its absolute cursors; plus the ingest
// session table and the WAL watermark (epoch, applied). Restart = load
// state + replay WAL past the watermark. The whole file is wrapped in a
// core.HashBytes trailer and written with durable.WriteFileAtomic.
//
// The catalog journal covers the gap BETWEEN checkpoints: attaching or
// detaching a query must survive a crash even if no checkpoint follows, so
// each attach/detach appends a sealed record here. An attach record carries
// the WAL position at which the query began receiving data; replay feeds it
// only records from that position on, which is what makes a mid-stream
// attach exact across a restart. The journal is reset at each checkpoint
// (its content is folded into the state file).

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
	"forwarddecay/internal/core"
	"forwarddecay/internal/durable"
)

// stateMagic's last byte is the format version. Version 2 added the
// per-query quarantine trailer (flag + reason); version-1 files are still
// accepted and decode with every query live.
var stateMagic = [8]byte{'F', 'D', 'S', 'T', 'A', 'T', 'E', 2}

const stateVersionV1 = 1

const (
	stateFile   = "server.state"
	journalFile = "catalog.journal"

	jAttach     = 1
	jDetach     = 2
	jQuarantine = 3
	jRevive     = 4
)

// queryState is one query's persisted slice of the state file.
type queryState struct {
	id      uint32
	text    string
	ckpt    []byte // engine checkpoint
	base    uint64 // result ring snapshot
	rows    []gsql.Tuple
	end     uint64 // highest assigned cursor at checkpoint time
	shards  uint32 // 0 = serial run
	startAt uint64 // replay start within the checkpoint's WAL epoch
	// Quarantine trailer (state v2): a fenced query is persisted dormant —
	// ckpt holds the partials retained at the moment it was fenced, and the
	// rebuilt catalog does not re-attach it until an operator revives it.
	quarantined bool
	qreason     string
}

// serverState is the full parsed state file.
type serverState struct {
	walEpoch    uint64
	walApplied  uint64
	nextQueryID uint32
	queries     []queryState
	sessions    map[uint64]uint64
}

// encodeState serializes the state with a checksum trailer.
func encodeState(st *serverState) []byte {
	b := append([]byte{}, stateMagic[:]...)
	b = binary.LittleEndian.AppendUint64(b, st.walEpoch)
	b = binary.LittleEndian.AppendUint64(b, st.walApplied)
	b = binary.LittleEndian.AppendUint32(b, st.nextQueryID)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.queries)))
	for i := range st.queries {
		q := &st.queries[i]
		b = binary.LittleEndian.AppendUint32(b, q.id)
		b = appendString(b, q.text)
		b = binary.LittleEndian.AppendUint32(b, q.shards)
		b = binary.LittleEndian.AppendUint64(b, q.startAt)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(q.ckpt)))
		b = append(b, q.ckpt...)
		b = binary.LittleEndian.AppendUint64(b, q.base)
		b = binary.LittleEndian.AppendUint64(b, q.end)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(q.rows)))
		for _, row := range q.rows {
			b = appendRow(b, row)
		}
		if q.quarantined {
			b = append(b, 1)
			b = appendString(b, q.qreason)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.sessions)))
	for id, applied := range st.sessions {
		b = binary.LittleEndian.AppendUint64(b, id)
		b = binary.LittleEndian.AppendUint64(b, applied)
	}
	return binary.LittleEndian.AppendUint64(b, core.HashBytes(b))
}

// decodeState parses and verifies a state file image.
func decodeState(b []byte) (*serverState, error) {
	if len(b) < len(stateMagic)+8 {
		return nil, errors.New("server: state file too short")
	}
	version := int(b[7])
	if [7]byte(b[:7]) != [7]byte(stateMagic[:7]) || (version != stateVersionV1 && version != int(stateMagic[7])) {
		return nil, errors.New("server: state file: bad magic")
	}
	payload, trailer := b[:len(b)-8], binary.LittleEndian.Uint64(b[len(b)-8:])
	if core.HashBytes(payload) != trailer {
		return nil, errors.New("server: state file: checksum mismatch")
	}
	d := decoder{b: payload, off: 8}
	st := &serverState{sessions: map[uint64]uint64{}}
	st.walEpoch = d.u64()
	st.walApplied = d.u64()
	st.nextQueryID = d.u32()
	nq := d.u32()
	if d.err == "" && int64(nq) > int64(len(payload)) {
		return nil, errors.New("server: state file: forged query count")
	}
	for i := uint32(0); i < nq && d.err == ""; i++ {
		var q queryState
		q.id = d.u32()
		q.text = d.str()
		q.shards = d.u32()
		q.startAt = d.u64()
		cl := d.u32()
		if d.err == "" {
			q.ckpt = append([]byte(nil), d.take(int(cl))...)
		}
		q.base = d.u64()
		q.end = d.u64()
		nr := d.u32()
		if d.err == "" && int64(nr) > int64(len(payload)) {
			return nil, errors.New("server: state file: forged row count")
		}
		for r := uint32(0); r < nr && d.err == ""; r++ {
			q.rows = append(q.rows, d.row())
		}
		if version >= 2 {
			if d.u8() != 0 {
				q.quarantined = true
				q.qreason = d.str()
			}
		}
		st.queries = append(st.queries, q)
	}
	ns := d.u32()
	for i := uint32(0); i < ns && d.err == ""; i++ {
		id := d.u64()
		st.sessions[id] = d.u64()
	}
	if d.err != "" {
		return nil, fmt.Errorf("server: state file: offset %d: %s", d.off, d.err)
	}
	if d.off != len(payload) {
		return nil, fmt.Errorf("server: state file: %d trailing bytes", len(payload)-d.off)
	}
	return st, nil
}

// writeState durably replaces the state file.
func writeState(dir string, st *serverState) error {
	return durable.WriteFileAtomic(filepath.Join(dir, stateFile), encodeState(st), 0o644)
}

// loadState reads the state file; a missing file returns (nil, nil) — a
// fresh directory, not an error.
func loadState(dir string) (*serverState, error) {
	b, err := os.ReadFile(filepath.Join(dir, stateFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: state: %w", err)
	}
	return decodeState(b)
}

// journalEntry is one catalog mutation since the last checkpoint.
type journalEntry struct {
	op     byte
	id     uint32
	text   string // attach
	shards uint32 // attach
	// epoch/at pin where in the WAL the attach (or revive) took effect:
	// replay feeds the query only records from this position on.
	epoch uint64
	at    uint64
	// Quarantine payload: why the query was fenced and the partials
	// retained at that instant (the revive seed). A fenced query sees
	// nothing until revived, so this checkpoint needs no WAL alignment.
	reason string // quarantine
	ckpt   []byte // quarantine
}

func encodeJournalEntry(e journalEntry) []byte {
	return ingest.AppendSealed(nil, encodeJournalBody(e))
}

func encodeJournalBody(e journalEntry) []byte {
	body := []byte{e.op}
	body = binary.LittleEndian.AppendUint32(body, e.id)
	body = binary.LittleEndian.AppendUint64(body, e.epoch)
	body = binary.LittleEndian.AppendUint64(body, e.at)
	switch e.op {
	case jAttach:
		body = binary.LittleEndian.AppendUint32(body, e.shards)
		body = appendString(body, e.text)
	case jQuarantine:
		body = appendString(body, e.reason)
		body = binary.LittleEndian.AppendUint32(body, uint32(len(e.ckpt)))
		body = append(body, e.ckpt...)
	}
	return body
}

func decodeJournalEntry(body []byte) (journalEntry, error) {
	d := decoder{b: body}
	var e journalEntry
	e.op = d.u8()
	e.id = d.u32()
	e.epoch = d.u64()
	e.at = d.u64()
	switch e.op {
	case jAttach:
		e.shards = d.u32()
		e.text = d.str()
	case jDetach, jRevive:
	case jQuarantine:
		e.reason = d.str()
		cl := d.u32()
		if d.err == "" {
			if int(cl) > len(body) {
				return e, errors.New("forged quarantine checkpoint length")
			}
			e.ckpt = append([]byte(nil), d.take(int(cl))...)
		}
	default:
		return e, fmt.Errorf("unknown journal op %d", e.op)
	}
	if d.err != "" {
		return e, errors.New(d.err)
	}
	if d.off != len(body) {
		return e, fmt.Errorf("%d trailing bytes", len(body)-d.off)
	}
	return e, nil
}

// appendJournal appends one sealed entry and syncs the file: an attach the
// client saw acknowledged must survive a crash.
func appendJournal(dir string, e journalEntry) error {
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("server: journal: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(encodeJournalEntry(e)); err != nil {
		return fmt.Errorf("server: journal: %w", err)
	}
	return durable.SyncFile(f)
}

// loadJournal reads every intact entry; a torn tail (crash mid-append) is
// tolerated and dropped — the client never got that attach acknowledged.
func loadJournal(dir string) ([]journalEntry, error) {
	b, err := os.ReadFile(filepath.Join(dir, journalFile))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: journal: %w", err)
	}
	var out []journalEntry
	off := 0
	for off < len(b) {
		body, n, derr := ingest.DecodeSealed(b[off:], MaxControlFrame)
		if errors.Is(derr, ingest.ErrIncomplete) {
			break
		}
		if derr != nil {
			return nil, fmt.Errorf("server: journal: offset %d: %w", off, derr)
		}
		e, jerr := decodeJournalEntry(body)
		if jerr != nil {
			return nil, fmt.Errorf("server: journal: offset %d: %w", off, jerr)
		}
		out = append(out, e)
		off += n
	}
	return out, nil
}

// resetJournal empties the journal after its entries were folded into a
// checkpoint.
func resetJournal(dir string) error {
	return durable.WriteFileAtomic(filepath.Join(dir, journalFile), nil, 0o644)
}
