// Package server turns the repository's query runtime into a supervised,
// degradation-aware long-lived service: clients connect over TCP or unix
// sockets with a framed, checksummed control protocol (the same sealed
// envelope the ingest wire uses), authenticate with a session token, submit
// GSQL against a named-stream catalog, and subscribe to window results
// through per-subscriber bounded output queues with explicit slow-consumer
// policies. A watchdog supervisor restarts a panicked or wedged runtime
// from the latest checkpoint with capped exponential backoff, and a circuit
// breaker degrades to ingest-only mode (the write-ahead log keeps accepting
// frames; queries return a typed Degraded status) when restarts do not
// stick. Reconnecting subscribers resume from their last-delivered result
// cursor bit-exactly. See DESIGN.md §12 for the architecture.
package server

import (
	"encoding/binary"
	"fmt"
	"math"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
)

// Control frame types. Client→server types are small, server→client types
// start at 64 — a decoder can tell at a glance which side of the protocol a
// captured frame belongs to.
const (
	// CtHello opens a control session: token + client-chosen session id.
	CtHello uint8 = 1
	// CtAttach submits a GSQL query for registration in the catalog.
	CtAttach uint8 = 2
	// CtDetach removes a query (and drops its subscribers).
	CtDetach uint8 = 3
	// CtSubscribe streams a query's result rows from a cursor.
	CtSubscribe uint8 = 4
	// CtUnsubscribe stops a subscription on this connection.
	CtUnsubscribe uint8 = 5
	// CtStats requests a JSON snapshot of service counters.
	CtStats uint8 = 6
	// CtBye closes the control session cleanly.
	CtBye uint8 = 7
	// CtRevive lifts a quarantined query back into the running catalog.
	CtRevive uint8 = 8

	// StOK acknowledges a request that carries no payload back.
	StOK uint8 = 64
	// StErr reports a typed failure for a request.
	StErr uint8 = 65
	// StAttached returns the catalog id assigned to an attached query.
	StAttached uint8 = 66
	// StRow delivers one result row on a subscription.
	StRow uint8 = 67
	// StGap tells a drop-oldest subscriber that rows were shed.
	StGap uint8 = 68
	// StStats returns the JSON stats snapshot.
	StStats uint8 = 69
	// StBye acknowledges CtBye; the server closes after sending it.
	StBye uint8 = 70
)

// Typed error codes carried by StErr.
const (
	// CodeAuth: bad or missing session token.
	CodeAuth uint16 = 1
	// CodeParse: the query text failed to prepare.
	CodeParse uint16 = 2
	// CodeUnknownQuery: no catalog entry with that id.
	CodeUnknownQuery uint16 = 3
	// CodeCursorGap: the requested cursor predates the retained result log.
	CodeCursorGap uint16 = 4
	// CodeDegraded: the runtime is in ingest-only degraded mode; the WAL is
	// still accepting frames but queries cannot be served.
	CodeDegraded uint16 = 5
	// CodeSlowConsumer: the subscription was terminated by its
	// slow-consumer policy.
	CodeSlowConsumer uint16 = 6
	// CodeBadRequest: a structurally valid frame with nonsensical contents
	// (unknown policy, empty query text, duplicate subscription).
	CodeBadRequest uint16 = 7
	// CodeShutdown: the service is draining; reconnect to the successor.
	CodeShutdown uint16 = 8
	// CodeAdmission: the query was rejected by admission control — its
	// estimated private per-tuple cost would push the catalog past its
	// configured budget. The running catalog is unperturbed.
	CodeAdmission uint16 = 9
)

// Policy selects what the server does with a subscriber that cannot keep up
// with the result stream.
type Policy uint8

const (
	// PolicyDropOldest sheds the oldest undelivered rows and tells the
	// subscriber about the gap (StGap). The emit path never blocks on this
	// subscriber. The default.
	PolicyDropOldest Policy = iota
	// PolicyBlock holds rows until the subscriber drains them, applying
	// backpressure to the emit path. Explicit opt-in: one PolicyBlock
	// dashboard can stall every query sharing the runtime.
	PolicyBlock
	// PolicyDisconnect holds rows like PolicyBlock but only up to the
	// subscription deadline; a subscriber that stays stalled past it is
	// disconnected (StErr CodeSlowConsumer) and the rows flow on.
	PolicyDisconnect
)

func (p Policy) valid() bool { return p <= PolicyDisconnect }

func (p Policy) String() string {
	switch p {
	case PolicyDropOldest:
		return "drop-oldest"
	case PolicyBlock:
		return "block"
	case PolicyDisconnect:
		return "disconnect"
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// Msg is one decoded control frame. Fields are a union over the frame
// types; Type selects which are meaningful.
type Msg struct {
	Type  uint8
	Req   uint32 // request id, echoed in the response (client→server types and responses)
	Code  uint16 // StErr
	Text  string // CtHello token, CtAttach query text, StErr message, StStats JSON
	Sess  uint64 // CtHello client session id
	Query uint32 // query id (CtDetach/CtSubscribe/CtUnsubscribe/CtRevive/StAttached/StRow/StGap)
	// Cursor is the 1-based absolute result cursor: the subscribe start
	// position, a row's position, or a gap's resume position.
	Cursor uint64
	// GapFrom is the first shed cursor of an StGap (the gap is
	// [GapFrom, Cursor)).
	GapFrom  uint64
	Policy   Policy // CtSubscribe
	Deadline uint32 // CtSubscribe: PolicyDisconnect stall budget, milliseconds
	Row      gsql.Tuple
}

// MaxControlFrame bounds control frame bodies; result rows are small, so
// this is generous.
const MaxControlFrame = 1 << 16

// MsgError reports a structurally invalid control frame body.
type MsgError struct {
	Type uint8 // frame type, when it could be read
	Off  int
	Why  string
}

func (e *MsgError) Error() string {
	return fmt.Sprintf("server: control frame type %d: offset %d: %s", e.Type, e.Off, e.Why)
}

// AppendMsg seals a control message onto dst using the ingest envelope
// (u32 length + u64 checksum), ready to write to a control connection.
func AppendMsg(dst []byte, m *Msg) []byte {
	body := appendMsgBody(make([]byte, 0, 64), m)
	return ingest.AppendSealed(dst, body)
}

func appendMsgBody(b []byte, m *Msg) []byte {
	b = append(b, m.Type)
	b = binary.LittleEndian.AppendUint32(b, m.Req)
	switch m.Type {
	case CtHello:
		b = binary.LittleEndian.AppendUint64(b, m.Sess)
		b = appendString(b, m.Text)
	case CtAttach:
		b = appendString(b, m.Text)
	case CtDetach, CtUnsubscribe, CtRevive:
		b = binary.LittleEndian.AppendUint32(b, m.Query)
	case CtSubscribe:
		b = binary.LittleEndian.AppendUint32(b, m.Query)
		b = binary.LittleEndian.AppendUint64(b, m.Cursor)
		b = append(b, uint8(m.Policy))
		b = binary.LittleEndian.AppendUint32(b, m.Deadline)
	case CtStats, CtBye, StOK, StBye:
		// header only
	case StErr:
		b = binary.LittleEndian.AppendUint16(b, m.Code)
		b = appendString(b, m.Text)
	case StAttached:
		b = binary.LittleEndian.AppendUint32(b, m.Query)
	case StRow:
		b = binary.LittleEndian.AppendUint32(b, m.Query)
		b = binary.LittleEndian.AppendUint64(b, m.Cursor)
		b = appendRow(b, m.Row)
	case StGap:
		b = binary.LittleEndian.AppendUint32(b, m.Query)
		b = binary.LittleEndian.AppendUint64(b, m.GapFrom)
		b = binary.LittleEndian.AppendUint64(b, m.Cursor)
	case StStats:
		b = appendString(b, m.Text)
	default:
		panic(fmt.Sprintf("server: encoding unknown control frame type %d", m.Type))
	}
	return b
}

// DecodeMsg decodes one checksum-verified control frame body (the bytes
// DecodeSealed returned). It never panics on hostile input; structural
// problems come back as *MsgError.
func DecodeMsg(body []byte) (*Msg, error) {
	d := decoder{b: body}
	m := &Msg{}
	m.Type = d.u8()
	m.Req = d.u32()
	switch m.Type {
	case CtHello:
		m.Sess = d.u64()
		m.Text = d.str()
	case CtAttach:
		m.Text = d.str()
	case CtDetach, CtUnsubscribe, CtRevive:
		m.Query = d.u32()
	case CtSubscribe:
		m.Query = d.u32()
		m.Cursor = d.u64()
		m.Policy = Policy(d.u8())
		m.Deadline = d.u32()
		if d.err == "" && !m.Policy.valid() {
			return nil, &MsgError{Type: m.Type, Off: d.off, Why: fmt.Sprintf("unknown policy %d", uint8(m.Policy))}
		}
	case CtStats, CtBye, StOK, StBye:
	case StErr:
		m.Code = d.u16()
		m.Text = d.str()
	case StAttached:
		m.Query = d.u32()
	case StRow:
		m.Query = d.u32()
		m.Cursor = d.u64()
		m.Row = d.row()
	case StGap:
		m.Query = d.u32()
		m.GapFrom = d.u64()
		m.Cursor = d.u64()
	case StStats:
		m.Text = d.str()
	default:
		return nil, &MsgError{Type: m.Type, Off: 0, Why: "unknown frame type"}
	}
	if d.err != "" {
		return nil, &MsgError{Type: m.Type, Off: d.off, Why: d.err}
	}
	if d.off != len(d.b) {
		return nil, &MsgError{Type: m.Type, Off: d.off, Why: fmt.Sprintf("%d trailing bytes", len(d.b)-d.off)}
	}
	return m, nil
}

// maxRowCols bounds decoded row width; no query in this engine produces
// anything near it, and it keeps a forged count from allocating wildly.
const maxRowCols = 1 << 10

// appendString writes a u32-length-prefixed string.
func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

// appendRow writes u16 column count then each value.
func appendRow(b []byte, row gsql.Tuple) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(row)))
	for _, v := range row {
		b = append(b, uint8(v.T))
		switch v.T {
		case gsql.TNull:
		case gsql.TInt, gsql.TBool:
			b = binary.LittleEndian.AppendUint64(b, uint64(v.I))
		case gsql.TFloat:
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.F))
		case gsql.TString:
			b = appendString(b, v.S)
		default:
			panic(fmt.Sprintf("server: encoding unknown value type %d", v.T))
		}
	}
	return b
}

// decoder is a bounds-checked little-endian reader; the first failure
// sticks and every later read returns zero.
type decoder struct {
	b   []byte
	off int
	err string
}

func (d *decoder) fail(why string) {
	if d.err == "" {
		d.err = why
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != "" {
		return nil
	}
	if len(d.b)-d.off < n {
		d.fail(fmt.Sprintf("truncated: need %d bytes, have %d", n, len(d.b)-d.off))
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *decoder) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *decoder) u16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (d *decoder) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *decoder) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != "" {
		return ""
	}
	if int64(n) > int64(len(d.b)-d.off) {
		d.fail(fmt.Sprintf("string length %d exceeds remaining %d bytes", n, len(d.b)-d.off))
		return ""
	}
	return string(d.take(int(n)))
}

func (d *decoder) row() gsql.Tuple {
	n := d.u16()
	if d.err != "" {
		return nil
	}
	if int(n) > maxRowCols {
		d.fail(fmt.Sprintf("row claims %d columns (max %d)", n, maxRowCols))
		return nil
	}
	row := make(gsql.Tuple, 0, n)
	for i := 0; i < int(n); i++ {
		t := gsql.Type(d.u8())
		var v gsql.Value
		switch t {
		case gsql.TNull:
		case gsql.TInt, gsql.TBool:
			v = gsql.Value{T: t, I: int64(d.u64())}
		case gsql.TFloat:
			f := math.Float64frombits(d.u64())
			v = gsql.Value{T: t, F: f}
		case gsql.TString:
			v = gsql.Value{T: t, S: d.str()}
		default:
			d.fail(fmt.Sprintf("unknown value type %d in column %d", uint8(t), i))
			return nil
		}
		if d.err != "" {
			return nil
		}
		row = append(row, v)
	}
	return row
}
