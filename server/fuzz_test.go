package server

// Fuzzing for the control-protocol codec and the server WAL record
// decoder: arbitrary bytes must never panic, and anything that decodes
// must re-encode canonically (round-trip stability is what the resume
// contract leans on).

import (
	"bytes"
	"testing"

	"forwarddecay/gsql"
)

func FuzzControlFrameDecode(f *testing.F) {
	row := gsql.Tuple{
		{T: gsql.TInt, I: -7},
		{T: gsql.TFloat, F: 0.25},
		{T: gsql.TBool, I: 0},
		{T: gsql.TString, S: "fuzz"},
		{T: gsql.TNull},
	}
	seeds := []*Msg{
		{Type: CtHello, Req: 1, Sess: 9, Text: "token"},
		{Type: CtAttach, Req: 2, Text: "select count(*) from TCP group by time as tb"},
		{Type: CtDetach, Req: 3, Query: 1},
		{Type: CtSubscribe, Req: 4, Query: 1, Cursor: 10, Policy: PolicyDisconnect, Deadline: 500},
		{Type: CtUnsubscribe, Req: 5, Query: 1},
		{Type: CtStats, Req: 6},
		{Type: CtBye, Req: 7},
		{Type: StOK, Req: 8},
		{Type: StErr, Req: 9, Code: CodeSlowConsumer, Text: "too slow"},
		{Type: StAttached, Req: 10, Query: 3},
		{Type: StRow, Query: 3, Cursor: 77, Row: row},
		{Type: StGap, Query: 3, GapFrom: 5, Cursor: 9},
		{Type: StStats, Req: 11, Text: "{}"},
		{Type: StBye, Req: 12},
	}
	for _, m := range seeds {
		f.Add(appendMsgBody(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{255, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMsg(data)
		if err != nil {
			return
		}
		// Whatever decodes must be canonical: re-encoding it yields the
		// exact input bytes.
		if out := appendMsgBody(nil, m); !bytes.Equal(out, data) {
			t.Fatalf("non-canonical frame: decode(%x) re-encodes to %x", data, out)
		}
	})
}

func FuzzWALRecordDecode(f *testing.F) {
	f.Add([]byte{recFrame, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{recHeartbeat, hbInt, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{recHeartbeat, hbFloat, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeWALRecord(data)
	})
}
