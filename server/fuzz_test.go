package server

// Fuzzing for the control-protocol codec and the server WAL record
// decoder: arbitrary bytes must never panic, and anything that decodes
// must re-encode canonically (round-trip stability is what the resume
// contract leans on).

import (
	"bytes"
	"testing"

	"forwarddecay/gsql"
)

func FuzzControlFrameDecode(f *testing.F) {
	row := gsql.Tuple{
		{T: gsql.TInt, I: -7},
		{T: gsql.TFloat, F: 0.25},
		{T: gsql.TBool, I: 0},
		{T: gsql.TString, S: "fuzz"},
		{T: gsql.TNull},
	}
	seeds := []*Msg{
		{Type: CtHello, Req: 1, Sess: 9, Text: "token"},
		{Type: CtAttach, Req: 2, Text: "select count(*) from TCP group by time as tb"},
		{Type: CtDetach, Req: 3, Query: 1},
		{Type: CtSubscribe, Req: 4, Query: 1, Cursor: 10, Policy: PolicyDisconnect, Deadline: 500},
		{Type: CtUnsubscribe, Req: 5, Query: 1},
		{Type: CtStats, Req: 6},
		{Type: CtBye, Req: 7},
		{Type: CtRevive, Req: 13, Query: 2},
		{Type: StOK, Req: 8},
		{Type: StErr, Req: 9, Code: CodeSlowConsumer, Text: "too slow"},
		{Type: StErr, Req: 14, Code: CodeAdmission, Text: "admission: estimated cost 48 exceeds budget"},
		{Type: StAttached, Req: 10, Query: 3},
		{Type: StRow, Query: 3, Cursor: 77, Row: row},
		{Type: StGap, Query: 3, GapFrom: 5, Cursor: 9},
		{Type: StStats, Req: 11, Text: "{}"},
		{Type: StBye, Req: 12},
	}
	for _, m := range seeds {
		f.Add(appendMsgBody(nil, m))
	}
	f.Add([]byte{})
	f.Add([]byte{255, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMsg(data)
		if err != nil {
			return
		}
		// Whatever decodes must be canonical: re-encoding it yields the
		// exact input bytes.
		if out := appendMsgBody(nil, m); !bytes.Equal(out, data) {
			t.Fatalf("non-canonical frame: decode(%x) re-encodes to %x", data, out)
		}
	})
}

// FuzzJournalEntryDecode covers the catalog-journal codec, including the
// quarantine/revive ops: arbitrary bytes never panic, and any entry that
// decodes re-encodes to the exact input (the rebuild path trusts that).
func FuzzJournalEntryDecode(f *testing.F) {
	seeds := []journalEntry{
		{op: jAttach, id: 1, text: "select count(*) from TCP group by time as tb", shards: 2, epoch: 3, at: 9},
		{op: jDetach, id: 1, epoch: 3, at: 12},
		{op: jQuarantine, id: 2, reason: "breaker", ckpt: []byte{1, 2, 3, 4}},
		{op: jQuarantine, id: 3, reason: "panic"},
		{op: jRevive, id: 2, epoch: 4, at: 11},
	}
	for _, e := range seeds {
		f.Add(encodeJournalBody(e))
	}
	f.Add([]byte{})
	f.Add([]byte{99, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decodeJournalEntry(data)
		if err != nil {
			return
		}
		if out := encodeJournalBody(e); !bytes.Equal(out, data) {
			t.Fatalf("non-canonical journal entry: decode(%x) re-encodes to %x", data, out)
		}
	})
}

func FuzzWALRecordDecode(f *testing.F) {
	f.Add([]byte{recFrame, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{recHeartbeat, hbInt, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{recHeartbeat, hbFloat, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeWALRecord(data)
	})
}
