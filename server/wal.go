package server

// The service's ingest write-ahead log: the listener logs every data frame
// and heartbeat here BEFORE applying it (ingest.Config.WAL), so the ingest
// ack — sent after apply — implies the data is recoverable. A supervised
// restart replays the records past the last checkpoint's watermark into the
// rebuilt runs, and — because forward decay fixes each arrival's weight at
// arrival time — reproduces the uninterrupted output bit-exactly.
//
// Frame records carry their session and sequence number, so recovery also
// rebuilds the duplicate-detection table: a frame that was logged but whose
// ack was lost to the crash will be resent by the client and recognized as
// a duplicate instead of double-counted. Heartbeat records preserve the
// gsql.Value *type* (Int and Float heartbeats take different temporal-
// bucket paths through the engine).
//
// Layout: one file per checkpoint epoch, `ingest-%08d.wal`:
//
//	header = 8-byte magic "FDSRV\x01\x00\x00" · u64 epoch
//	then sealed records (the ingest length+checksum envelope):
//	  u8 recFrame     · u64 session · u64 seq · u16 n · n×23-byte packets
//	  u8 recHeartbeat · u8 kind (0=int, 1=float) · f64/i64 payload
//
// Epoch discipline: a checkpoint snapshots the runtime with `applied`
// records of epoch E consumed, durably writes the state file carrying
// (E, applied), then starts epoch E+1 (create the new file, sync the
// directory, delete the old). Recovery compares the newest WAL's epoch W
// to the state file's E:
//
//	W == E   → replay records after `applied` (crash before rotation)
//	W  > E   → rotation happened after the state write: replay everything
//
// A torn final record (crash mid-append) is truncated away: its frame was
// never acked, so the client will resend it. Torn bytes anywhere else are
// corruption and refuse to load. Each record lands in the file (one write
// syscall) before the ack goes out — durable against a process kill; the
// power-cut story is the checkpoint's fsync-before-rename plus the epoch
// files' directory syncs, the same stance the distrib WAL takes.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
	"forwarddecay/internal/durable"
	"forwarddecay/netgen"
)

var walMagic = [8]byte{'F', 'D', 'S', 'R', 'V', 1, 0, 0}

const (
	recFrame     = 1
	recHeartbeat = 2

	hbInt   = 0
	hbFloat = 1

	// walMaxRecord bounds a sealed record body: the largest data frame the
	// ingest listener accepts, plus the record header.
	walMaxRecord = ingest.DefaultMaxFrame + 32
)

// walRecord is one replayable ingest event.
type walRecord struct {
	kind byte
	sess uint64          // recFrame
	seq  uint64          // recFrame
	pkts []netgen.Packet // recFrame
	hb   gsql.Value      // recHeartbeat (TInt or TFloat)
}

// walName formats the file name for an epoch.
func walName(dir string, epoch uint64) string {
	return filepath.Join(dir, fmt.Sprintf("ingest-%08d.wal", epoch))
}

// ingestWAL is the append side. Not self-locking: the ingest listener's
// single pump goroutine is the only appender (rotation happens inside the
// pump's checkpoint hook), with the runtime builder touching it only before
// the listener exists.
type ingestWAL struct {
	dir     string
	epoch   uint64
	f       *os.File
	applied uint64 // records appended in the current epoch
	buf     []byte // reused encode buffer
}

// LogFrame implements ingest.ApplyLog.
func (w *ingestWAL) LogFrame(session, seq uint64, pkts []netgen.Packet) error {
	body := make([]byte, 0, 32+len(pkts)*netgen.PacketRecordSize)
	body = append(body, recFrame)
	body = binary.LittleEndian.AppendUint64(body, session)
	body = binary.LittleEndian.AppendUint64(body, seq)
	body = binary.LittleEndian.AppendUint16(body, uint16(len(pkts)))
	for _, p := range pkts {
		body = netgen.AppendPacketRecord(body, p)
	}
	return w.appendBody(body)
}

// LogHeartbeat implements ingest.ApplyLog.
func (w *ingestWAL) LogHeartbeat(ts gsql.Value) error {
	body := make([]byte, 0, 10)
	body = append(body, recHeartbeat)
	switch ts.T {
	case gsql.TInt:
		body = append(body, hbInt)
		body = binary.LittleEndian.AppendUint64(body, uint64(ts.I))
	case gsql.TFloat:
		body = append(body, hbFloat)
		body = binary.LittleEndian.AppendUint64(body, math.Float64bits(ts.F))
	default:
		return fmt.Errorf("server: wal: heartbeat value type %v not persistable", ts.T)
	}
	return w.appendBody(body)
}

// appendBody seals and writes one record body. The write syscall lands the
// bytes in the file before the frame is acked, which is what makes an
// in-process kill recoverable.
func (w *ingestWAL) appendBody(body []byte) error {
	w.buf = ingest.AppendSealed(w.buf[:0], body)
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("server: wal append: %w", err)
	}
	w.applied++
	return nil
}

// rotate starts the next epoch: create its file, sync the directory, then
// delete the previous epoch's file (its records are covered by the state
// file the caller just wrote).
func (w *ingestWAL) rotate() error {
	old, oldEpoch := w.f, w.epoch
	f, err := createWAL(w.dir, w.epoch+1)
	if err != nil {
		return err
	}
	w.f, w.epoch, w.applied = f, w.epoch+1, 0
	if old != nil {
		old.Close()
		if err := os.Remove(walName(w.dir, oldEpoch)); err != nil {
			return fmt.Errorf("server: wal rotate: %w", err)
		}
		if err := durable.SyncDir(w.dir); err != nil {
			return err
		}
	}
	return nil
}

// sync fsyncs the active file — called when sealing a checkpoint so the
// watermark the state file claims is durable.
func (w *ingestWAL) sync() error {
	if w.f == nil {
		return nil
	}
	return durable.SyncFile(w.f)
}

// close closes the epoch file. w.f is deliberately left non-nil: the
// supervisor closes an abandoned incarnation's WAL to fence a wedged pump,
// which may concurrently attempt an append — File.Write and File.Close are
// synchronized by the runtime, but storing nil here would be a data race
// with that append's field read. A post-close append simply errors.
func (w *ingestWAL) close() error {
	if w.f == nil {
		return nil
	}
	return w.f.Close()
}

// createWAL creates (exclusively) and headers the file for an epoch, then
// syncs the directory so the name survives a power cut.
func createWAL(dir string, epoch uint64) (*os.File, error) {
	f, err := os.OpenFile(walName(dir, epoch), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: wal create: %w", err)
	}
	hdr := make([]byte, 16)
	copy(hdr, walMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], epoch)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, fmt.Errorf("server: wal create: %w", err)
	}
	if err := durable.SyncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// openWAL scans dir for the newest WAL epoch, repairs a torn tail, deletes
// superseded epochs, and returns the records of the surviving epoch plus an
// appender positioned at its end. A directory with no WAL starts epoch 1.
func openWAL(dir string) (w *ingestWAL, recs []walRecord, err error) {
	names, err := filepath.Glob(filepath.Join(dir, "ingest-*.wal"))
	if err != nil {
		return nil, nil, fmt.Errorf("server: wal open: %w", err)
	}
	sort.Strings(names)
	if len(names) == 0 {
		f, err := createWAL(dir, 1)
		if err != nil {
			return nil, nil, err
		}
		return &ingestWAL{dir: dir, epoch: 1, f: f}, nil, nil
	}
	// Only the newest epoch matters; older files are leftovers of a crash
	// mid-rotation, fully covered by the state file written before the
	// newer epoch was created.
	newest := names[len(names)-1]
	for _, n := range names[:len(names)-1] {
		if err := os.Remove(n); err != nil {
			return nil, nil, fmt.Errorf("server: wal open: removing superseded %s: %w", n, err)
		}
	}
	data, err := os.ReadFile(newest)
	if err != nil {
		return nil, nil, fmt.Errorf("server: wal open: %w", err)
	}
	if len(data) < 16 || [8]byte(data[:8]) != walMagic {
		return nil, nil, fmt.Errorf("server: wal open: %s: bad header", filepath.Base(newest))
	}
	epoch := binary.LittleEndian.Uint64(data[8:16])
	good := 16
	off := 16
	for off < len(data) {
		body, n, derr := ingest.DecodeSealed(data[off:], walMaxRecord)
		if errors.Is(derr, ingest.ErrIncomplete) {
			break // torn tail: crash mid-append; the frame was never acked
		}
		if derr != nil {
			return nil, nil, fmt.Errorf("server: wal open: %s: offset %d: %w", filepath.Base(newest), off, derr)
		}
		rec, rerr := decodeWALRecord(body)
		if rerr != nil {
			return nil, nil, fmt.Errorf("server: wal open: %s: offset %d: %w", filepath.Base(newest), off, rerr)
		}
		recs = append(recs, rec)
		off += n
		good = off
	}
	if good < len(data) {
		if err := os.Truncate(newest, int64(good)); err != nil {
			return nil, nil, fmt.Errorf("server: wal open: truncating torn tail: %w", err)
		}
	}
	f, err := os.OpenFile(newest, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("server: wal open: %w", err)
	}
	return &ingestWAL{dir: dir, epoch: epoch, f: f, applied: uint64(len(recs))}, recs, nil
}

func decodeWALRecord(body []byte) (walRecord, error) {
	if len(body) < 1 {
		return walRecord{}, errors.New("empty record body")
	}
	switch body[0] {
	case recFrame:
		if len(body) < 1+8+8+2 {
			return walRecord{}, fmt.Errorf("frame record header is %d bytes, want >= 19", len(body))
		}
		r := walRecord{
			kind: recFrame,
			sess: binary.LittleEndian.Uint64(body[1:]),
			seq:  binary.LittleEndian.Uint64(body[9:]),
		}
		n := int(binary.LittleEndian.Uint16(body[17:]))
		rest := body[19:]
		if len(rest) != n*netgen.PacketRecordSize {
			return walRecord{}, fmt.Errorf("frame record claims %d packets but carries %d bytes", n, len(rest))
		}
		r.pkts = make([]netgen.Packet, n)
		for i := 0; i < n; i++ {
			r.pkts[i] = netgen.DecodePacketRecord(rest[i*netgen.PacketRecordSize:])
		}
		return r, nil
	case recHeartbeat:
		if len(body) != 1+1+8 {
			return walRecord{}, fmt.Errorf("heartbeat record is %d bytes, want 10", len(body))
		}
		bits := binary.LittleEndian.Uint64(body[2:])
		switch body[1] {
		case hbInt:
			return walRecord{kind: recHeartbeat, hb: gsql.Int(int64(bits))}, nil
		case hbFloat:
			f := math.Float64frombits(bits)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return walRecord{}, fmt.Errorf("non-finite heartbeat %v", f)
			}
			return walRecord{kind: recHeartbeat, hb: gsql.Float(f)}, nil
		default:
			return walRecord{}, fmt.Errorf("unknown heartbeat kind %d", body[1])
		}
	default:
		return walRecord{}, fmt.Errorf("unknown record kind %d", body[0])
	}
}
