package server

// Client is the control-protocol client: a demuxing read loop routes
// request responses by request id and subscription traffic by query id.
// Subscription events surface on a buffered channel per query; the resume
// contract is that the caller remembers the last Cursor it processed and
// passes cursor+1 to Subscribe on a fresh client after any disconnect —
// the rows that follow are bit-identical to the ones an uninterrupted
// subscriber would have seen, whatever happened to the server in between.

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
)

// SubEvent is one subscription delivery.
type SubEvent struct {
	// Row and Cursor are set for a row delivery.
	Row    gsql.Tuple
	Cursor uint64
	// Gap reports shed rows [GapFrom, GapTo) before the next delivery.
	Gap            bool
	GapFrom, GapTo uint64
	// Err terminates the subscription (Code tells why: CodeSlowConsumer,
	// CodeShutdown, CodeUnknownQuery after a detach, ...).
	Err  error
	Code uint16
}

// ClientError is a typed server-side rejection.
type ClientError struct {
	Code uint16
	Msg  string
}

func (e *ClientError) Error() string {
	return fmt.Sprintf("server error %d: %s", e.Code, e.Msg)
}

// IsDegraded reports whether err is the typed Degraded rejection.
func IsDegraded(err error) bool {
	var ce *ClientError
	return errors.As(err, &ce) && ce.Code == CodeDegraded
}

// Client is one authenticated control connection.
type Client struct {
	c net.Conn

	wmu sync.Mutex // frame writes

	mu      sync.Mutex
	nextReq uint32
	pending map[uint32]chan *Msg
	subs    map[uint32]chan SubEvent // by query id
	reqOf   map[uint32]uint32        // subscribe request id → query id
	readErr error
	closed  bool
	dead    chan struct{}
}

// DialClient connects and authenticates a control session. addr accepts the
// same "host:port" / "unix:/path" forms the server listens on.
func DialClient(addr, token string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = controlIOTimeout
	}
	network, address := ingest.SplitAddr(addr)
	c, err := net.DialTimeout(network, address, timeout)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		c:       c,
		nextReq: 1,
		pending: map[uint32]chan *Msg{},
		subs:    map[uint32]chan SubEvent{},
		reqOf:   map[uint32]uint32{},
		dead:    make(chan struct{}),
	}
	go cl.readLoop()
	resp, err := cl.request(&Msg{Type: CtHello, Text: token, Sess: 1})
	if err != nil {
		cl.Close()
		return nil, err
	}
	if resp.Type != StOK {
		cl.Close()
		return nil, fmt.Errorf("server: unexpected hello response type %d", resp.Type)
	}
	return cl, nil
}

// Close tears the connection down; pending requests and subscriptions fail.
func (cl *Client) Close() error {
	cl.mu.Lock()
	cl.closed = true
	cl.mu.Unlock()
	return cl.c.Close()
}

// fail poisons the client and fans the error out to every waiter.
func (cl *Client) fail(err error) {
	cl.mu.Lock()
	if cl.readErr == nil {
		cl.readErr = err
		close(cl.dead)
	}
	pending, subs := cl.pending, cl.subs
	cl.pending, cl.subs = map[uint32]chan *Msg{}, map[uint32]chan SubEvent{}
	closed := cl.closed
	cl.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
	for _, ch := range subs {
		if !closed {
			select {
			case ch <- SubEvent{Err: err}:
			default:
			}
		}
		close(ch)
	}
}

// readLoop demuxes incoming frames: responses go to their request waiter,
// subscription traffic to its event channel.
func (cl *Client) readLoop() {
	r := bufio.NewReader(cl.c)
	for {
		m, err := readMsg(r)
		if err != nil {
			cl.fail(fmt.Errorf("server: connection lost: %w", err))
			return
		}
		switch m.Type {
		case StRow:
			cl.deliver(m.Query, SubEvent{Row: m.Row, Cursor: m.Cursor})
		case StGap:
			cl.deliver(m.Query, SubEvent{Gap: true, GapFrom: m.GapFrom, GapTo: m.Cursor})
		default:
			cl.mu.Lock()
			ch := cl.pending[m.Req]
			delete(cl.pending, m.Req)
			cl.mu.Unlock()
			if ch != nil {
				ch <- m
				continue
			}
			if m.Type == StErr {
				// Async termination of a subscription: the Req echoes the
				// original subscribe request; route by it.
				cl.terminateSubByReq(m)
			}
		}
	}
}

func (cl *Client) deliver(query uint32, ev SubEvent) {
	cl.mu.Lock()
	ch := cl.subs[query]
	cl.mu.Unlock()
	if ch != nil {
		ch <- ev
	}
}

// terminateSubByReq routes an async StErr — whose Req echoes the original
// subscribe request — to that subscription's event channel and closes it.
func (cl *Client) terminateSubByReq(m *Msg) {
	cl.mu.Lock()
	query, ok := cl.reqOf[m.Req]
	var ch chan SubEvent
	if ok {
		ch = cl.subs[query]
		delete(cl.subs, query)
		delete(cl.reqOf, m.Req)
	}
	cl.mu.Unlock()
	if ch != nil {
		ch <- SubEvent{Err: &ClientError{Code: m.Code, Msg: m.Text}, Code: m.Code}
		close(ch)
	}
}

// request sends one frame and waits for its response.
func (cl *Client) request(m *Msg) (*Msg, error) {
	cl.mu.Lock()
	if cl.readErr != nil {
		err := cl.readErr
		cl.mu.Unlock()
		return nil, err
	}
	m.Req = cl.nextReq
	cl.nextReq++
	ch := make(chan *Msg, 1)
	cl.pending[m.Req] = ch
	cl.mu.Unlock()

	buf := AppendMsg(nil, m)
	cl.wmu.Lock()
	cl.c.SetWriteDeadline(time.Now().Add(controlIOTimeout))
	_, err := cl.c.Write(buf)
	cl.c.SetWriteDeadline(time.Time{})
	cl.wmu.Unlock()
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		cl.mu.Lock()
		err := cl.readErr
		cl.mu.Unlock()
		return nil, err
	}
	if resp.Type == StErr {
		return nil, &ClientError{Code: resp.Code, Msg: resp.Text}
	}
	return resp, nil
}

// Attach submits a query; the returned id is the handle for Subscribe and
// Detach — stable across server restarts.
func (cl *Client) Attach(query string) (uint32, error) {
	resp, err := cl.request(&Msg{Type: CtAttach, Text: query})
	if err != nil {
		return 0, err
	}
	if resp.Type != StAttached {
		return 0, fmt.Errorf("server: unexpected attach response type %d", resp.Type)
	}
	return resp.Query, nil
}

// Detach removes a query from the catalog.
func (cl *Client) Detach(id uint32) error {
	_, err := cl.request(&Msg{Type: CtDetach, Query: id})
	return err
}

// Revive lifts a quarantined query back into the running catalog; it
// resumes from the partials retained when it was fenced.
func (cl *Client) Revive(id uint32) error {
	_, err := cl.request(&Msg{Type: CtRevive, Query: id})
	return err
}

// Subscribe streams a query's results from cursor (0 = oldest retained;
// lastSeen+1 to resume). The returned channel closes after a terminal
// event. deadline only matters for PolicyDisconnect.
func (cl *Client) Subscribe(id uint32, cursor uint64, policy Policy, deadline time.Duration) (<-chan SubEvent, error) {
	ch := make(chan SubEvent, 256)
	cl.mu.Lock()
	if _, dup := cl.subs[id]; dup {
		cl.mu.Unlock()
		return nil, fmt.Errorf("server: already subscribed to query %d", id)
	}
	cl.subs[id] = ch
	cl.mu.Unlock()
	m := &Msg{Type: CtSubscribe, Query: id, Cursor: cursor, Policy: policy, Deadline: uint32(deadline / time.Millisecond)}
	resp, err := cl.request(m)
	if err != nil {
		cl.mu.Lock()
		delete(cl.subs, id)
		cl.mu.Unlock()
		close(ch)
		return nil, err
	}
	if resp.Type != StOK {
		cl.mu.Lock()
		delete(cl.subs, id)
		cl.mu.Unlock()
		close(ch)
		return nil, fmt.Errorf("server: unexpected subscribe response type %d", resp.Type)
	}
	cl.mu.Lock()
	cl.reqOf[m.Req] = id
	cl.mu.Unlock()
	return ch, nil
}

// Unsubscribe stops a subscription; its event channel closes.
func (cl *Client) Unsubscribe(id uint32) error {
	_, err := cl.request(&Msg{Type: CtUnsubscribe, Query: id})
	cl.mu.Lock()
	ch := cl.subs[id]
	delete(cl.subs, id)
	for req, q := range cl.reqOf {
		if q == id {
			delete(cl.reqOf, req)
		}
	}
	cl.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	return err
}

// Stats fetches the service's JSON stats snapshot.
func (cl *Client) Stats() (string, error) {
	resp, err := cl.request(&Msg{Type: CtStats})
	if err != nil {
		return "", err
	}
	return resp.Text, nil
}

// Bye closes the session cleanly.
func (cl *Client) Bye() error {
	_, err := cl.request(&Msg{Type: CtBye})
	cl.Close()
	return err
}
