package server

// Result distribution: every attached query owns a resultLog — a bounded
// ring of emitted rows addressed by absolute 1-based cursors — and each
// subscription is a puller with its own cursor and slow-consumer policy.
//
// The cursor is the resume token: rows are emitted deterministically (the
// engine sorts each closing bucket), so row N of a restarted runtime is
// bit-identical to row N of one that never crashed. A subscriber that
// reconnects and asks for cursor N+1 therefore continues exactly where it
// left off, whatever happened to the server in between.
//
// Slow consumers: the emit (hot) path appends to the ring. When the ring is
// full, the oldest row is evicted — unless a PolicyBlock or
// PolicyDisconnect subscriber still needs it. PolicyBlock holds the emit
// path indefinitely (explicit opt-in backpressure); PolicyDisconnect holds
// it only for the subscription's stall budget and is then force-removed;
// PolicyDropOldest never holds anything and instead observes a cursor gap,
// reported to the client as an StGap frame. With only drop-oldest
// subscribers attached, an append never blocks — a stalled dashboard
// cannot touch ingest latency.
//
// The resultLog outlives runtime incarnations: on a supervised restart the
// ring is truncated to the last checkpoint's cursor and the WAL replay
// re-appends the identical rows, so attached subscribers keep their cursors
// and notice nothing but a pause.

import (
	"sync"
	"sync/atomic"
	"time"

	"forwarddecay/gsql"
)

// fetchStatus tells a subscription goroutine why fetch returned.
type fetchStatus uint8

const (
	fetchRows fetchStatus = iota // rows copied; deliver then advance
	fetchGap                     // rows were shed behind this subscriber
	fetchRemoved                 // force-removed by policy or detach
	fetchClosed                  // service shutting down
)

// subscriber is one subscription's cursor state, shared between its
// connection goroutine and the emit path (guarded by the resultLog mutex).
type subscriber struct {
	policy Policy
	// budget is the PolicyDisconnect stall allowance.
	budget time.Duration
	// cursor is the next cursor to deliver (1-based).
	cursor uint64
	// stalled, when nonzero, is when this subscriber first held up a full
	// ring; cleared when it advances.
	stalled time.Time
	// removed is set by the emit path (policy kill) or detach.
	removed bool
	// shedFrom..cursor-1 were dropped behind a PolicyDropOldest subscriber.
	shedFrom uint64
	shed     bool
}

// resultLog is the bounded result ring for one query.
type resultLog struct {
	mu   sync.Mutex
	wake chan struct{} // closed+replaced on every state change (broadcast)

	cap    int
	base   uint64 // cursor of rows[0]; next assigned cursor is base+len(rows)
	rows   []gsql.Tuple
	subs   map[*subscriber]struct{}
	closed bool // service shutdown: every waiter drains out

	// frozen drops appends silently: set while tearing an incarnation down
	// so run.Close()'s partial-bucket flush cannot pollute the cursor
	// sequence (those rows are re-derived by the successor's replay).
	frozen bool

	// onShed and onDisconnect count policy actions into service metrics.
	onShed       func(rows uint64)
	onDisconnect func()
}

func newResultLog(capacity int) *resultLog {
	if capacity <= 0 {
		capacity = 1024
	}
	return &resultLog{
		cap:  capacity,
		base: 1,
		subs: map[*subscriber]struct{}{},
		wake: make(chan struct{}),
	}
}

// broadcast wakes every waiter (emit path and subscribers).
func (rl *resultLog) broadcast() {
	close(rl.wake)
	rl.wake = make(chan struct{})
}

// end returns the highest assigned cursor (0 before the first row).
func (rl *resultLog) endLocked() uint64 { return rl.base + uint64(len(rl.rows)) - 1 }

// append adds one emitted row, enforcing slow-consumer policies when the
// ring is full.
func (rl *resultLog) append(row gsql.Tuple) { rl.appendFenced(row, nil) }

// appendFenced is append for the runtime's emit path (the listener pump):
// fence, when non-nil, is the owning incarnation's teardown fence. A writer
// parked here while its incarnation is torn down must drop the row when it
// wakes — even if a successor has already thawed the ring — because the
// successor's WAL replay re-derives that row itself.
func (rl *resultLog) appendFenced(row gsql.Tuple, fence *atomic.Bool) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if rl.frozen || rl.closed {
		return
	}
	for len(rl.rows) >= rl.cap {
		if rl.evictOneLocked() {
			continue
		}
		// A holder refused the eviction; wait for it to advance, be
		// removed, or run out of stall budget.
		wake := rl.wake
		wait := rl.minBudgetLocked()
		rl.mu.Unlock()
		if wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-wake:
			case <-t.C:
			}
			t.Stop()
		} else {
			<-wake
		}
		rl.mu.Lock()
		if rl.frozen || rl.closed || (fence != nil && fence.Load()) {
			return
		}
	}
	rl.rows = append(rl.rows, append(gsql.Tuple(nil), row...))
	rl.broadcast()
}

// evictOneLocked tries to drop rows[0]. It returns false when a
// PolicyBlock / PolicyDisconnect subscriber still needs that row and has
// stall budget left; expired PolicyDisconnect holders are force-removed.
func (rl *resultLog) evictOneLocked() bool {
	now := time.Now()
	blocked := false
	for s := range rl.subs {
		if s.removed || s.cursor > rl.base {
			continue
		}
		switch s.policy {
		case PolicyDropOldest:
			// Does not hold; it will observe the gap at its next fetch.
		case PolicyBlock:
			if s.stalled.IsZero() {
				s.stalled = now
			}
			blocked = true
		case PolicyDisconnect:
			if s.stalled.IsZero() {
				s.stalled = now
			}
			if now.Sub(s.stalled) >= s.budget {
				s.removed = true
				if rl.onDisconnect != nil {
					rl.onDisconnect()
				}
				continue
			}
			blocked = true
		}
	}
	if blocked {
		return false
	}
	// Evict: drop-oldest subscribers at or below base fall into a gap.
	for s := range rl.subs {
		if !s.removed && s.policy == PolicyDropOldest && s.cursor <= rl.base {
			if !s.shed {
				s.shed, s.shedFrom = true, s.cursor
			}
			if rl.onShed != nil {
				rl.onShed(1)
			}
		}
	}
	rl.rows = rl.rows[1:]
	rl.base++
	rl.broadcast()
	return true
}

// minBudgetLocked returns the shortest remaining stall budget among
// blocking PolicyDisconnect holders, or 0 when only PolicyBlock holders
// remain (wait without a deadline).
func (rl *resultLog) minBudgetLocked() time.Duration {
	now := time.Now()
	min := time.Duration(0)
	for s := range rl.subs {
		if s.removed || s.policy != PolicyDisconnect || s.cursor > rl.base {
			continue
		}
		rem := s.budget - now.Sub(s.stalled)
		if rem < time.Millisecond {
			rem = time.Millisecond
		}
		if min == 0 || rem < min {
			min = rem
		}
	}
	return min
}

// subscribe registers a puller starting at cursor (1-based; 0 means "from
// the oldest retained row"). Cursors in the future are allowed — the fetch
// waits until emission catches up, which is exactly what a resuming
// subscriber wants when it reconnects faster than the runtime rebuilds.
func (rl *resultLog) subscribe(cursor uint64, policy Policy, budget time.Duration) *subscriber {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if cursor == 0 {
		cursor = rl.base
	}
	s := &subscriber{policy: policy, budget: budget, cursor: cursor}
	rl.subs[s] = struct{}{}
	return s
}

// unsubscribe removes a puller and releases anything it was holding.
func (rl *resultLog) unsubscribe(s *subscriber) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if _, ok := rl.subs[s]; ok {
		delete(rl.subs, s)
		// The subscription's writer may be parked in fetch waiting for rows;
		// mark it removed so that fetch returns instead of waiting forever.
		s.removed = true
		rl.broadcast()
	}
}

// fetch blocks until rows are available at s.cursor (or the subscriber is
// removed / the log closes). It copies up to max rows WITHOUT advancing the
// cursor: the caller delivers them to the network first and then calls
// advance, so the un-advanced cursor is what holds rows for the blocking
// policies.
func (rl *resultLog) fetch(s *subscriber, max int) (rows []gsql.Tuple, start, gapFrom uint64, st fetchStatus) {
	rl.mu.Lock()
	for {
		switch {
		case s.removed:
			rl.mu.Unlock()
			return nil, 0, 0, fetchRemoved
		case rl.closed:
			rl.mu.Unlock()
			return nil, 0, 0, fetchClosed
		case s.shed:
			// Rows [shedFrom, base) were dropped behind this subscriber.
			gapFrom = s.shedFrom
			s.shed = false
			s.cursor = rl.base
			start = rl.base
			rl.mu.Unlock()
			return nil, start, gapFrom, fetchGap
		case s.cursor < rl.base:
			// Resuming below the retained window (e.g. reconnect after a
			// long absence): same shape as a shed gap.
			gapFrom = s.cursor
			s.cursor = rl.base
			rl.mu.Unlock()
			return nil, rl.base, gapFrom, fetchGap
		case s.cursor <= rl.endLocked():
			i := int(s.cursor - rl.base)
			n := len(rl.rows) - i
			if n > max {
				n = max
			}
			rows = make([]gsql.Tuple, n)
			copy(rows, rl.rows[i:i+n])
			start = s.cursor
			rl.mu.Unlock()
			return rows, start, 0, fetchRows
		}
		wake := rl.wake
		rl.mu.Unlock()
		<-wake
		rl.mu.Lock()
	}
}

// advance moves the cursor past delivered rows, releasing any hold.
func (rl *resultLog) advance(s *subscriber, n uint64) {
	rl.mu.Lock()
	s.cursor += n
	s.stalled = time.Time{}
	rl.broadcast()
	rl.mu.Unlock()
}

// freeze drops subsequent appends (incarnation teardown); thaw re-enables
// them (rebuild complete).
func (rl *resultLog) freeze() {
	rl.mu.Lock()
	rl.frozen = true
	rl.broadcast()
	rl.mu.Unlock()
}

func (rl *resultLog) thaw() {
	rl.mu.Lock()
	rl.frozen = false
	rl.mu.Unlock()
}

// truncateTo drops every row with cursor > k: those rows postdate the
// checkpoint being restored and will be re-emitted, bit-identically, by the
// WAL replay. Subscribers keep their cursors — one mid-stream at c > k
// simply waits for the replay to pass c again.
func (rl *resultLog) truncateTo(k uint64) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if k+1 < rl.base {
		// The ring evicted past the checkpoint: nothing retained survives,
		// and the next replayed row is cursor k+1.
		rl.base, rl.rows = k+1, nil
	} else if k < rl.endLocked() {
		rl.rows = rl.rows[:k-rl.base+1]
	}
	rl.broadcast()
}

// restore replaces the ring contents from a checkpoint snapshot (cold
// start).
func (rl *resultLog) restore(base uint64, rows []gsql.Tuple) {
	rl.mu.Lock()
	rl.base = base
	rl.rows = rows
	rl.broadcast()
	rl.mu.Unlock()
}

// snapshot returns the ring contents for checkpointing.
func (rl *resultLog) snapshot() (base uint64, rows []gsql.Tuple) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.base, append([]gsql.Tuple(nil), rl.rows...)
}

// close releases every waiter for service shutdown.
func (rl *resultLog) close() {
	rl.mu.Lock()
	rl.closed = true
	rl.broadcast()
	rl.mu.Unlock()
}
