package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/ingest"
	"forwarddecay/internal/core"
	"forwarddecay/metrics"
	"forwarddecay/netgen"
)

// Mode is the service's coarse health state, exposed on /healthz and
// consulted by the control plane.
type Mode int32

const (
	// ModeHealthy: a live runtime is serving queries and ingest.
	ModeHealthy Mode = iota
	// ModeRestarting: the supervisor is between incarnations (teardown,
	// backoff, rebuild). Control requests fail fast with CodeDegraded.
	ModeRestarting
	// ModeDegraded: the circuit breaker is open. Ingest frames are still
	// accepted and written to the WAL, but no runtime is applying them;
	// query operations return CodeDegraded until a probe rebuild sticks.
	ModeDegraded
)

func (m Mode) String() string {
	switch m {
	case ModeHealthy:
		return "healthy"
	case ModeRestarting:
		return "restarting"
	case ModeDegraded:
		return "degraded"
	}
	return fmt.Sprintf("mode(%d)", int32(m))
}

// Config parameterizes a Service. Zero values are usable defaults for
// everything except Dir, ControlAddr and IngestAddr.
type Config struct {
	// Dir is the state directory: checkpoint state file, ingest WAL and
	// catalog journal all live here. Required.
	Dir string
	// ControlAddr is the control-plane listen address ("host:port" or
	// "unix:/path"). Required.
	ControlAddr string
	// IngestAddr is the ingest wire-protocol listen address. Required.
	IngestAddr string
	// HTTPAddr, when set, serves /healthz and /metrics there.
	HTTPAddr string
	// Tokens are the accepted session tokens; empty means unauthenticated.
	Tokens []string
	// Shards > 0 runs every query on a sharded ParallelRun with that many
	// workers; 0 keeps runs serial.
	Shards int
	// ResultLog is the per-query result ring capacity (default 1024).
	ResultLog int
	// SubscriberBatch bounds rows fetched per subscriber write (default 64)
	// — the per-subscriber output queue depth.
	SubscriberBatch int
	// CheckpointEvery checkpoints after that many applied tuples
	// (default 8192).
	CheckpointEvery uint64
	// HeartbeatInterval synthesizes ingest heartbeats on idle (0 = off).
	HeartbeatInterval time.Duration
	// Backoff paces supervisor rebuild attempts; zero value = defaults.
	Backoff core.Backoff
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker into degraded mode (default 3).
	BreakerThreshold int
	// BreakerCooldown is the degraded dwell before a half-open probe
	// rebuild (default 2s).
	BreakerCooldown time.Duration
	// HealthyAfter is the healthy uptime that closes the breaker and
	// resets the failure count (default 3s).
	HealthyAfter time.Duration
	// WedgeTimeout declares the runtime wedged when a single apply has
	// been in flight this long (default 10s; the watchdog then tears the
	// incarnation down and rebuilds from the checkpoint).
	WedgeTimeout time.Duration
	// DrainTimeout bounds the graceful-shutdown drain (default 5s).
	DrainTimeout time.Duration
	// QueryBreakerErrors is the consecutive per-query evaluation-failure
	// count that quarantines a standing query (default 16). Negative
	// disables per-query fault isolation entirely; a member fault then
	// fails the whole incarnation as it did before isolation existed.
	QueryBreakerErrors int
	// QueryMaxGroups caps one query's live group cardinality; exceeding it
	// quarantines the query (0 = unlimited).
	QueryMaxGroups int
	// AdmitBudget caps the catalog's summed private per-tuple expression
	// cost (gsql cost units); an attach that would exceed it is rejected
	// with CodeAdmission and the running catalog is untouched (0 =
	// unlimited). Lowering it below the running catalog's usage across a
	// restart makes the rebuild fail — raise it back or detach first.
	AdmitBudget float64
	// Seed feeds the supervisor's jittered backoff.
	Seed uint64
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.ResultLog <= 0 {
		c.ResultLog = 1024
	}
	if c.SubscriberBatch <= 0 {
		c.SubscriberBatch = 64
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 8192
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 3 * time.Second
	}
	if c.WedgeTimeout <= 0 {
		c.WedgeTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	if c.QueryBreakerErrors == 0 {
		c.QueryBreakerErrors = 16
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Query is one catalog entry. It outlives runtime incarnations: the result
// ring (and with it every subscriber's cursor) survives a supervised
// restart; only the engine run inside the incarnation is rebuilt.
type Query struct {
	ID     uint32
	Text   string
	Shards uint32
	log    *resultLog
	// journaled marks a query not yet folded into a checkpoint; its attach
	// position lives in the catalog journal.
	journaled bool
	// attachEpoch/attachAt pin the WAL position of the attach (journaled
	// queries only).
	attachEpoch uint64
	attachAt    uint64
	// quar is non-nil while the query is quarantined: fenced out of the
	// shared pass, its last-good partials retained for an operator Revive.
	// Stored atomically because the quarantine callback fires on the ingest
	// pump under rt.mu, where s.mu must not be taken.
	quar atomic.Pointer[quarInfo]
}

// quarInfo is the quarantine record carried by a fenced query: why it was
// fenced and the engine partials retained at that instant (the revive seed).
type quarInfo struct {
	reason   string
	retained []byte
}

// Quarantined reports whether the query is fenced, and why.
func (q *Query) Quarantined() (bool, string) {
	if qi := q.quar.Load(); qi != nil {
		return true, qi.reason
	}
	return false, ""
}

// queryRun is the per-incarnation engine handle for one query.
type queryRun struct {
	q      *Query
	push   func(*gsql.Batch) (int, error)
	hb     func(gsql.Value) error
	ckpt   func() ([]byte, error)
	close  func() error
	quar   func() (bool, string)
	revive func() error
	stats  func() gsql.QueryStats
}

// runtime is one supervised incarnation: WAL appender, engine runs and the
// ingest listener, all rebuilt from disk on every (re)start — a supervised
// restart and a process restart walk the same code path.
type runtime struct {
	gen uint64
	// mu serializes the apply path (WAL append + fan-out) against catalog
	// mutation, so an attach observes a frame-aligned WAL position. It is
	// ACQUIRED in the ApplyLog hooks (LogFrame/LogHeartbeat) and RELEASED
	// at the end of the subsequent sink call — safe because the ingest
	// pump is the only goroutine driving either. Lock order: s.mu → rt.mu.
	mu   sync.Mutex
	wal  *ingestWAL
	runs map[uint32]*queryRun
	// multi is the incarnation's shared execution runtime: every attached
	// query is a member of this one MultiRun, so the apply path makes a
	// single pass over each frame no matter how many queries are live.
	// Nil on degraded (WAL-only) incarnations.
	multi    *gsql.MultiRun
	listener *ingest.Listener
	// inflight is the UnixNano start of the apply in progress (0 = idle);
	// the watchdog reads it to detect a wedged runtime.
	inflight atomic.Int64
	// killed is closed by Kill to simulate an abrupt process death.
	killed chan struct{}
	// replaying is true while buildRuntime replays the WAL tail: quarantines
	// that re-fire during replay are deterministic re-derivations of events
	// the journal already records (or will re-derive on every rebuild), so
	// the OnQuarantine hook skips the journal append. Written before the
	// listener starts; never raced.
	replaying bool
	// fenced is set at teardown. The emit sinks of this incarnation check it
	// and refuse to append once set: a wedged (zombie) pump that wakes up
	// after the successor has thawed the rings must not land stale rows in
	// them — the successor's WAL replay re-derives those rows itself.
	fenced atomic.Bool
	// degraded marks a WAL-only incarnation (breaker open).
	degraded bool
}

// Service is the long-lived query service. Create with New, stop with
// Shutdown.
type Service struct {
	cfg Config

	mu      sync.Mutex // catalog + checkpoint + lifecycle; outer to rt.mu
	queries map[uint32]*Query
	nextID  uint32

	rt   atomic.Pointer[runtime]
	gen  atomic.Uint64
	mode atomic.Int32
	// fails is the consecutive-failure counter feeding the breaker
	// (supervisor goroutine only).
	fails atomic.Int32

	// rings is a COW snapshot of every live result ring, readable without
	// any lock — the watchdog freezes them even while s.mu or rt.mu is
	// held by a wedged path.
	rings atomic.Pointer[[]*resultLog]

	counters *metrics.CounterSet
	gauges   *metrics.GaugeSet
	rng      *core.RNG

	ctl        net.Listener
	ingestAddr string // concrete ingest address, stable across incarnations
	httpClose  func() error
	httpAddr   string

	ctlMu     sync.Mutex
	ctlConns  map[*ctlConn]struct{}
	ctlClosed bool

	stop     chan struct{}
	done     chan struct{}
	conns    sync.WaitGroup
	shutOnce sync.Once
	shutErr  error
}

// New builds the service, binds its listeners, recovers state from
// cfg.Dir, and starts the supervisor. It returns once the first incarnation
// is serving (or with the service in degraded/restarting state if the first
// build failed — the supervisor keeps trying).
func New(cfg Config) (*Service, error) {
	cfg.fill()
	if cfg.Dir == "" || cfg.ControlAddr == "" || cfg.IngestAddr == "" {
		return nil, fmt.Errorf("server: Dir, ControlAddr and IngestAddr are required")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: state dir: %w", err)
	}
	s := &Service{
		cfg:      cfg,
		queries:  map[uint32]*Query{},
		nextID:   1,
		counters: metrics.NewCounterSet(),
		gauges:   metrics.NewGaugeSet(),
		rng:      core.NewRNG(cfg.Seed ^ 0x5eed),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		ctlConns: map[*ctlConn]struct{}{},
	}
	s.mode.Store(int32(ModeRestarting))
	s.rings.Store(new([]*resultLog))

	network, address := ingest.SplitAddr(cfg.ControlAddr)
	ctl, err := net.Listen(network, address)
	if err != nil {
		return nil, fmt.Errorf("server: control listen: %w", err)
	}
	s.ctl = ctl
	if cfg.HTTPAddr != "" {
		if err := s.startHTTP(cfg.HTTPAddr); err != nil {
			ctl.Close()
			return nil, err
		}
	}

	first := make(chan struct{})
	go s.supervise(first)
	go s.acceptControl()
	<-first
	return s, nil
}

// ControlAddr returns the concrete control-plane address.
func (s *Service) ControlAddr() net.Addr { return s.ctl.Addr() }

// IngestAddr returns the concrete ingest address ("" until the first
// incarnation has bound it).
func (s *Service) IngestAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingestAddr
}

// Mode returns the current health mode.
func (s *Service) Mode() Mode { return Mode(s.mode.Load()) }

// Counters exposes the service metric registry (for /metrics and tests).
func (s *Service) Counters() *metrics.CounterSet { return s.counters }

// supervise is the watchdog loop: build an incarnation from disk, watch it,
// tear it down on failure, back off, rebuild; open the breaker into
// WAL-only degraded mode after BreakerThreshold consecutive failures and
// probe again after the cooldown. first is closed once the initial build
// attempt (successful or not) completes.
func (s *Service) supervise(first chan struct{}) {
	defer close(s.done)
	firstDone := func() {
		if first != nil {
			close(first)
			first = nil
		}
	}
	for {
		select {
		case <-s.stop:
			firstDone()
			return
		default:
		}

		degraded := int(s.fails.Load()) >= s.cfg.BreakerThreshold
		rt, err := s.buildRuntime(degraded)
		if err != nil {
			s.cfg.Logf("server: build failed (fails=%d): %v", s.fails.Load(), err)
			s.counters.Add("server_build_failures", 1)
			s.fails.Add(1)
			firstDone()
			if !s.cfg.Backoff.Sleep(int(s.fails.Load()), s.rng, s.stop) {
				return
			}
			continue
		}

		if rt.degraded {
			s.mode.Store(int32(ModeDegraded))
			s.counters.Add("server_degraded_entered", 1)
			s.cfg.Logf("server: breaker open — degraded to WAL-only ingest (cooldown %v)", s.cfg.BreakerCooldown)
		} else {
			s.mode.Store(int32(ModeHealthy))
		}
		s.rt.Store(rt)
		firstDone()

		verdict := s.watch(rt)
		s.rt.Store(nil)
		if verdict == watchStop {
			return
		}
		s.mode.Store(int32(ModeRestarting))
		s.teardown(rt)
		switch verdict {
		case watchHealed:
			// A degraded incarnation served its cooldown; probe a full
			// rebuild with the slate half-clean: one more failure reopens
			// the breaker immediately, a healthy dwell closes it.
			s.fails.Store(int32(s.cfg.BreakerThreshold) - 1)
		case watchFailed:
			s.fails.Add(1)
			s.counters.Add("server_restarts", 1)
			if !s.cfg.Backoff.Sleep(int(s.fails.Load()), s.rng, s.stop) {
				return
			}
		}
	}
}

type watchVerdict int

const (
	watchFailed watchVerdict = iota // runtime died or wedged: restart
	watchHealed                     // degraded cooldown served: probe
	watchStop                       // service shutting down
)

// watch monitors one incarnation until it fails, heals, or the service
// stops.
func (s *Service) watch(rt *runtime) watchVerdict {
	tick := time.NewTicker(15 * time.Millisecond)
	defer tick.Stop()
	start := time.Now()
	var cooldown <-chan time.Time
	if rt.degraded {
		t := time.NewTimer(s.cfg.BreakerCooldown)
		defer t.Stop()
		cooldown = t.C
	}
	for {
		select {
		case <-s.stop:
			return watchStop
		case <-rt.killed:
			s.cfg.Logf("server: incarnation gen=%d killed", rt.gen)
			return watchFailed
		case <-cooldown:
			return watchHealed
		case <-tick.C:
			if err := rt.listener.Err(); err != nil {
				s.cfg.Logf("server: incarnation gen=%d failed: %v", rt.gen, err)
				return watchFailed
			}
			if t := rt.inflight.Load(); t != 0 && time.Since(time.Unix(0, t)) > s.cfg.WedgeTimeout {
				s.cfg.Logf("server: incarnation gen=%d wedged (apply in flight > %v)", rt.gen, s.cfg.WedgeTimeout)
				s.counters.Add("server_wedges", 1)
				return watchFailed
			}
			if !rt.degraded && s.fails.Load() > 0 && time.Since(start) >= s.cfg.HealthyAfter {
				s.fails.Store(0)
				s.counters.Add("server_healed", 1)
				s.cfg.Logf("server: incarnation gen=%d healthy for %v — breaker closed", rt.gen, s.cfg.HealthyAfter)
			}
		}
	}
}

// teardown abandons an incarnation WITHOUT checkpointing: freeze the rings
// (so run teardown cannot pollute cursors), drain the listener
// best-effort, close the WAL file. State recovery is disk's job.
func (s *Service) teardown(rt *runtime) {
	// Fence first: even if a wedged pump wakes after the successor thaws the
	// rings, its sink refuses to emit.
	rt.fenced.Store(true)
	for _, rl := range *s.rings.Load() {
		rl.freeze()
	}
	// Bounded drain: applied frames were WAL-logged first, so anything the
	// drain salvages is also recoverable; anything it cannot salvage is
	// unacked and will be resent. A wedged pump makes this time out —
	// that's fine, the incarnation is dead either way.
	if err := rt.listener.Shutdown(500 * time.Millisecond); err != nil {
		s.cfg.Logf("server: teardown drain: %v", err)
	}
	drained := rt.listener.Err() == nil && !rt.pumpWedged()
	// Close the WAL file WITHOUT rt.mu: a wedged pump may hold that lock
	// forever, and the close is exactly what fences such a zombie — once the
	// file is closed, any append it attempts fails instead of landing bytes
	// the successor (which scans the file next) would never account for.
	rt.wal.close()
	if drained {
		// The pump exited, so the runs are exclusively ours: Close them to
		// release shard goroutines. Their partial-bucket flush lands on
		// frozen rings and is discarded — the successor's replay re-derives
		// those rows. A wedged pump still owns its run; leak it instead of
		// violating the single-producer contract.
		for _, run := range rt.runs {
			run.close()
		}
	}
}

// pumpWedged reports whether an apply is still in flight (the pump never
// exited).
func (rt *runtime) pumpWedged() bool { return rt.inflight.Load() != 0 }

// Kill simulates an abrupt process death of the runtime (the drill's
// SIGKILL): no checkpoint, no graceful anything — the supervisor notices
// and rebuilds from the last durable state. Safe to call repeatedly.
func (s *Service) Kill() {
	rt := s.rt.Load()
	if rt == nil {
		return
	}
	select {
	case <-rt.killed:
	default:
		close(rt.killed)
	}
}

// Shutdown drains the service to a final checkpoint and stops everything.
func (s *Service) Shutdown() error {
	s.shutOnce.Do(func() {
		close(s.stop)
		<-s.done // supervisor exited; rt pointer is stable now
		rt := s.rt.Load()
		s.rt.Store(nil)
		if rt != nil {
			// Drain in-flight frames, then take the final checkpoint.
			if err := rt.listener.Shutdown(s.cfg.DrainTimeout); err != nil {
				s.shutErr = err
			}
			if !rt.degraded {
				if err := s.checkpoint(rt); err != nil && s.shutErr == nil {
					s.shutErr = err
				}
			}
			rt.wal.close()
			rt.fenced.Store(true) // fence any pump that failed to drain
		}
		for _, rl := range *s.rings.Load() {
			rl.close()
		}
		s.ctl.Close()
		s.closeControlConns()
		if s.httpClose != nil {
			s.httpClose()
		}
		s.conns.Wait()
	})
	return s.shutErr
}

// nextGen allocates an incarnation generation.
func (s *Service) nextGen() uint64 { return s.gen.Add(1) }

// buildRuntime constructs an incarnation from disk truth: state file +
// catalog journal + WAL replay. With degraded=true it builds a WAL-only
// incarnation instead: no engine runs, frames ack straight after logging.
func (s *Service) buildRuntime(degraded bool) (*runtime, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	st, err := loadState(s.cfg.Dir)
	if err != nil {
		return nil, err
	}
	journal, err := loadJournal(s.cfg.Dir)
	if err != nil {
		return nil, err
	}
	wal, recs, err := openWAL(s.cfg.Dir)
	if err != nil {
		return nil, err
	}
	built := false
	defer func() {
		if !built {
			wal.close()
		}
	}()

	rt := &runtime{
		gen:      s.nextGen(),
		wal:      wal,
		runs:     map[uint32]*queryRun{},
		killed:   make(chan struct{}),
		degraded: degraded,
	}

	// Sessions: checkpointed acks ∪ logged-frame watermarks from the
	// replayable tail, so a resent frame that was logged (but whose ack
	// died with the predecessor) is recognized as a duplicate.
	sessions := map[uint64]uint64{}
	var specs []buildSpec
	if st != nil {
		for id, applied := range st.sessions {
			sessions[id] = applied
		}
		if st.nextQueryID > s.nextID {
			s.nextID = st.nextQueryID
		}
		for i := range st.queries {
			q := &st.queries[i]
			replayFrom := uint64(0)
			if wal.epoch == st.walEpoch {
				replayFrom = st.walApplied
			}
			specs = append(specs, buildSpec{qs: *q, replayFrom: replayFrom, fromState: true})
		}
	}
	inState := map[uint32]bool{}
	for _, sp := range specs {
		inState[sp.qs.id] = true
	}
	for _, e := range journal {
		switch e.op {
		case jAttach:
			if inState[e.id] {
				continue // checkpoint already folded this attach
			}
			replayFrom := uint64(0)
			if wal.epoch == e.epoch {
				replayFrom = e.at
			}
			specs = append(specs, buildSpec{
				qs:         queryState{id: e.id, text: e.text, shards: e.shards},
				replayFrom: replayFrom,
				journaled:  true,
				epoch:      e.epoch,
				at:         e.at,
			})
			if e.id >= s.nextID {
				s.nextID = e.id + 1
			}
		case jDetach:
			for i := range specs {
				if specs[i].qs.id == e.id {
					specs = append(specs[:i], specs[i+1:]...)
					break
				}
			}
		case jQuarantine:
			// The query was fenced after the last checkpoint: park it
			// dormant, seeded with the partials retained at the fence.
			for i := range specs {
				if specs[i].qs.id == e.id {
					specs[i].qs.quarantined = true
					specs[i].qs.qreason = e.reason
					specs[i].qs.ckpt = e.ckpt
					break
				}
			}
		case jRevive:
			// The operator lifted the fence: the query rejoins from its
			// quarantine-retained partials at the revive WAL position.
			// Tuples between the fence and the revive are gone for this
			// query by design — a fenced query sees nothing.
			for i := range specs {
				if specs[i].qs.id == e.id {
					specs[i].qs.quarantined = false
					specs[i].qs.qreason = ""
					specs[i].replayFrom = 0
					if wal.epoch == e.epoch {
						specs[i].replayFrom = e.at
					}
					specs[i].journaled = true
					specs[i].epoch, specs[i].at = e.epoch, e.at
					break
				}
			}
		}
	}
	for _, rec := range recs {
		if rec.kind == recFrame && rec.seq > sessions[rec.sess] {
			sessions[rec.sess] = rec.seq
		}
	}

	if degraded {
		// WAL-only: no engine, no replay; the log alone absorbs the feed.
		out, err := s.finishBuild(rt, sessions)
		built = err == nil
		return out, err
	}

	// Build the shared runtime and reconcile the service catalog with disk.
	// One engine, one MultiRun: every query attaches to the same feed, and
	// the fan-out below becomes a single shared pass per frame.
	eng := gsql.NewEngine()
	if err := eng.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		return nil, err
	}
	multi, err := gsql.NewMultiRun(eng, "TCP", gsql.Options{Isolate: s.isolateConfig(rt)})
	if err != nil {
		return nil, err
	}
	rt.multi = multi

	live := map[uint32]bool{}
	for _, sp := range specs {
		live[sp.qs.id] = true
		q := s.queries[sp.qs.id]
		if q == nil {
			q = &Query{ID: sp.qs.id, Text: sp.qs.text, Shards: sp.qs.shards, log: s.newRing()}
			if sp.fromState {
				q.log.restore(sp.qs.base, sp.qs.rows)
			}
			s.queries[q.ID] = q
		} else {
			// Surviving ring: rewind to the checkpoint cursor; the replay
			// below re-emits everything after it bit-identically.
			q.log.truncateTo(sp.qs.end)
		}
		q.journaled = sp.journaled
		q.attachEpoch, q.attachAt = sp.epoch, sp.at
		if sp.qs.quarantined {
			// A fenced query rebuilds dormant: no run, no replay, its ring
			// and cursors intact, its retained partials parked on the Query
			// until an operator revives it.
			q.quar.Store(&quarInfo{reason: sp.qs.qreason, retained: sp.qs.ckpt})
			continue
		}
		q.quar.Store(nil)
		run, err := s.startRun(rt, q, sp.qs.ckpt)
		if err != nil {
			return nil, fmt.Errorf("server: rebuilding query %d: %w", q.ID, err)
		}
		rt.runs[q.ID] = run
	}
	// Drop catalog entries disk does not know (e.g. attach journal lost to
	// a deliberate state reset).
	for id, q := range s.queries {
		if !live[id] {
			q.log.close()
			delete(s.queries, id)
		}
	}
	s.publishRingsLocked()
	for _, rl := range *s.rings.Load() {
		rl.thaw()
	}

	// Replay the WAL tail into the rebuilt runs. Rows emitted here land in
	// the rings at exactly the cursors they held before the crash. A query
	// that was fenced after the tail began re-quarantines deterministically
	// mid-replay (same tuples, same breaker) without failing the build.
	rt.replaying = true
	err = s.replay(rt, specs, recs)
	rt.replaying = false
	if err != nil {
		return nil, err
	}
	out, err := s.finishBuild(rt, sessions)
	built = err == nil
	return out, err
}

// buildSpec pairs a persisted query with its replay start.
type buildSpec struct {
	qs         queryState
	replayFrom uint64
	fromState  bool
	journaled  bool
	epoch, at  uint64
}

func (s *Service) newRing() *resultLog {
	rl := newResultLog(s.cfg.ResultLog)
	rl.onShed = func(rows uint64) { s.counters.Add("server_rows_shed", rows) }
	rl.onDisconnect = func() { s.counters.Add("server_slow_disconnects", 1) }
	return rl
}

// startRun attaches (or restores) a query onto the incarnation's shared
// MultiRun, sinking rows into its result ring. The incarnation's teardown
// fence gates every emit: once it flips, the sink refuses to append (see
// runtime.fenced). Identical query texts share one compiled plan inside the
// MultiRun; each attach still owns its ring, cursor and checkpoints.
//
// Callers mutating a live incarnation must hold rt.mu — the attach touches
// the same shared-pass state the apply path walks.
func (s *Service) startRun(rt *runtime, q *Query, ckpt []byte) (*queryRun, error) {
	fence := &rt.fenced
	rl := q.log
	sink := func(row gsql.Tuple) error {
		if fence.Load() {
			return errFenced
		}
		rl.appendFenced(row, fence)
		s.counters.Add("server_rows_emitted", 1)
		return nil
	}
	var (
		h   *gsql.MultiHandle
		err error
	)
	if ckpt != nil {
		h, err = rt.multi.Restore(q.Text, int(q.Shards), ckpt, sink)
	} else {
		h, err = rt.multi.Attach(q.Text, int(q.Shards), sink)
	}
	if err != nil {
		return nil, err
	}
	h.SetTag(q)
	closer := func() error {
		err := h.Close()
		h.Detach()
		return err
	}
	return &queryRun{
		q: q, push: h.PushBatch, hb: h.Heartbeat, ckpt: h.Checkpoint, close: closer,
		quar: h.Quarantined, revive: h.Revive, stats: h.QueryStats,
	}, nil
}

// maxJournalCkpt bounds the retained checkpoint a quarantine journal entry
// may carry: the journal is framed at MaxControlFrame, and an oversized
// retained state is droppable (a post-crash revive then falls back to a
// fresh start; the next state-file checkpoint persists the full partials).
const maxJournalCkpt = MaxControlFrame - 256

// isolateConfig builds the per-query fault-isolation policy for one
// incarnation, or nil (fate-sharing, the pre-isolation behavior) when
// QueryBreakerErrors is negative.
//
// The OnQuarantine hook fires synchronously on whichever goroutine drove the
// faulting tuple — the ingest pump under rt.mu, or buildRuntime itself
// during WAL replay. It must therefore never take s.mu; everything it
// touches (the Query's atomic quarantine slot, counters, the journal file)
// is safe under rt.mu.
func (s *Service) isolateConfig(rt *runtime) *gsql.IsolateConfig {
	if s.cfg.QueryBreakerErrors < 0 {
		return nil
	}
	return &gsql.IsolateConfig{
		BreakerErrors: s.cfg.QueryBreakerErrors,
		MaxGroups:     s.cfg.QueryMaxGroups,
		AdmitBudget:   s.cfg.AdmitBudget,
		OnQuarantine: func(ev gsql.QuarantineEvent) {
			if rt.fenced.Load() {
				// A torn-down incarnation's zombie pump charging errFenced
				// emits is not a query fault: the successor rebuilds this
				// query live and re-derives everything from the WAL.
				return
			}
			q, _ := ev.Tag.(*Query)
			if q == nil {
				return
			}
			q.quar.Store(&quarInfo{reason: ev.Reason, retained: ev.Retained})
			s.counters.Add("server_quarantines", 1)
			s.cfg.Logf("server: query %d quarantined (%s): %v", q.ID, ev.Reason, ev.Err)
			if rt.replaying {
				// Replay re-derives quarantines deterministically from the
				// WAL tail; journaling them again would only duplicate
				// entries the next rebuild replays anyway.
				return
			}
			ckpt := ev.Retained
			if len(ckpt) > maxJournalCkpt {
				ckpt = nil
			}
			if err := appendJournal(s.cfg.Dir, journalEntry{
				op: jQuarantine, id: q.ID, reason: ev.Reason, ckpt: ckpt,
			}); err != nil {
				s.cfg.Logf("server: journaling quarantine of query %d: %v", q.ID, err)
			}
		},
	}
}

// replay feeds the WAL tail to each rebuilt run, honoring per-query replay
// positions. Batch-path application mirrors the live path bit-for-bit.
func (s *Service) replay(rt *runtime, specs []buildSpec, recs []walRecord) error {
	if len(recs) == 0 {
		return nil
	}
	batch, err := gsql.NewBatch(gsql.PacketSchema("TCP"))
	if err != nil {
		return err
	}
	starts := map[uint32]uint64{}
	for _, sp := range specs {
		starts[sp.qs.id] = sp.replayFrom
	}
	replayed := 0
	for i, rec := range recs {
		pos := uint64(i)
		switch rec.kind {
		case recFrame:
			netgen.FillBatch(batch, rec.pkts)
			for id, run := range rt.runs {
				if pos < starts[id] {
					continue
				}
				if fenced, _ := run.quar(); fenced {
					continue // re-quarantined mid-replay; sees nothing more
				}
				if _, err := run.push(batch); err != nil {
					return fmt.Errorf("server: replaying record %d into query %d: %w", i, id, err)
				}
				replayed++
			}
		case recHeartbeat:
			for id, run := range rt.runs {
				if pos < starts[id] {
					continue
				}
				if fenced, _ := run.quar(); fenced {
					continue
				}
				if err := run.hb(rec.hb); err != nil {
					return fmt.Errorf("server: replaying heartbeat %d into query %d: %w", i, id, err)
				}
			}
		}
	}
	if replayed > 0 {
		s.counters.Add("server_wal_replays", 1)
		s.cfg.Logf("server: replayed %d WAL records into %d queries", len(recs), len(rt.runs))
	}
	return nil
}

// finishBuild binds the ingest listener and publishes the incarnation.
// Callers hold s.mu.
func (s *Service) finishBuild(rt *runtime, sessions map[uint64]uint64) (*runtime, error) {
	addr := s.cfg.IngestAddr
	if s.ingestAddr != "" {
		// Keep the concrete port stable across incarnations so reconnecting
		// dialers find the successor.
		addr = s.ingestAddr
	}
	network, address := ingest.SplitAddr(addr)
	var sink ingest.Sink
	if rt.degraded {
		sink = walOnlySink{}
	} else {
		sink = &fanSink{rt: rt}
	}
	cfg := ingest.Config{
		Sink:              sink,
		WAL:               &rtLog{rt: rt},
		Sessions:          sessions,
		HeartbeatInterval: s.cfg.HeartbeatInterval,
		Logf:              s.cfg.Logf,
	}
	if !rt.degraded {
		cfg.CheckpointEvery = s.cfg.CheckpointEvery
		cfg.Checkpoint = func() error {
			s.counters.Add("server_checkpoints", 1)
			return s.checkpoint(rt)
		}
	}
	l, err := ingest.Listen(network, address, cfg)
	if err != nil {
		rt.wal.close()
		return nil, fmt.Errorf("server: ingest listen: %w", err)
	}
	rt.listener = l
	if s.ingestAddr == "" {
		s.ingestAddr = l.Addr().String()
	}
	s.cfg.Logf("server: incarnation gen=%d up (degraded=%v, ingest %s)", rt.gen, rt.degraded, s.ingestAddr)
	return rt, nil
}

// checkpoint drains nothing — it runs between frames on the pump goroutine
// (or at shutdown after the drain) and snapshots runs, rings, sessions and
// the WAL watermark into one durable state file, then starts a fresh WAL
// epoch and resets the catalog journal.
func (s *Service) checkpoint(rt *runtime) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.degraded {
		return fmt.Errorf("server: cannot checkpoint a degraded (WAL-only) incarnation")
	}
	if rt.fenced.Load() {
		// A fenced incarnation's engine may be past emissions its frozen
		// rings refused; persisting that state would orphan those rows.
		return fmt.Errorf("server: cannot checkpoint a fenced incarnation")
	}
	st := &serverState{
		walEpoch:    rt.wal.epoch,
		walApplied:  rt.wal.applied,
		nextQueryID: s.nextID,
		sessions:    rt.listener.Sessions(),
	}
	for id, q := range s.queries {
		if qi := q.quar.Load(); qi != nil {
			// Fenced (live-quarantined or rebuilt dormant): persist the
			// retained partials and the quarantine trailer so the next
			// incarnation parks it dormant too.
			base, rows := q.log.snapshot()
			st.queries = append(st.queries, queryState{
				id:          id,
				text:        q.Text,
				shards:      q.Shards,
				ckpt:        qi.retained,
				base:        base,
				rows:        rows,
				end:         base + uint64(len(rows)) - 1,
				quarantined: true,
				qreason:     qi.reason,
			})
			continue
		}
		run := rt.runs[id]
		if run == nil {
			return fmt.Errorf("server: checkpointing query %d: no live run", id)
		}
		b, err := run.ckpt()
		if err != nil {
			return fmt.Errorf("server: checkpointing query %d: %w", id, err)
		}
		base, rows := q.log.snapshot()
		st.queries = append(st.queries, queryState{
			id:     id,
			text:   q.Text,
			shards: q.Shards,
			ckpt:   b,
			base:   base,
			rows:   rows,
			end:    base + uint64(len(rows)) - 1,
		})
	}
	if err := rt.wal.sync(); err != nil {
		return err
	}
	if err := writeState(s.cfg.Dir, st); err != nil {
		return err
	}
	if err := rt.wal.rotate(); err != nil {
		return err
	}
	if err := resetJournal(s.cfg.Dir); err != nil {
		return err
	}
	for _, q := range s.queries {
		q.journaled = false
	}
	return nil
}

// refreshCatalogGauges snapshots the live incarnation's shared-runtime
// scoreboard into the gauge registry: attached-query count, how much
// plan-level sharing the analyzer found, and how well the per-tuple memo is
// paying off. Called at scrape time; a degraded or restarting incarnation
// leaves the gauges at their last published levels.
func (s *Service) refreshCatalogGauges() {
	rt := s.rt.Load()
	if rt == nil || rt.degraded || rt.multi == nil {
		return
	}
	rt.mu.Lock()
	st := rt.multi.MultiStats()
	perRun := make(map[uint32]gsql.QueryStats, len(rt.runs))
	for id, run := range rt.runs {
		perRun[id] = run.stats()
	}
	rt.mu.Unlock()
	s.gauges.Set("server_catalog_queries", float64(st.Queries))
	s.gauges.Set("server_catalog_distinct_texts", float64(st.DistinctTexts))
	s.gauges.Set("server_catalog_predicate_classes", float64(st.Classes))
	s.gauges.Set("server_catalog_shared_exprs", float64(st.DistinctExprs))
	s.gauges.Set("server_shared_hit_ratio", st.SharedHitRatio())
	s.gauges.Set("server_catalog_quarantined", float64(st.Quarantined))
	s.gauges.Set("server_catalog_admit_used", st.AdmitUsed)
	for id, qs := range perRun {
		s.setQueryGauges(id, qs.Tuples, qs.Errors, qs.NsPerTuple, qs.Quarantined)
	}
	// Dormant quarantined queries have no run; their attribution is frozen.
	s.mu.Lock()
	for id, q := range s.queries {
		if _, live := perRun[id]; live {
			continue
		}
		if fenced, _ := q.Quarantined(); fenced {
			s.gauges.Set(queryGaugeName(id, "quarantined"), 1)
		}
	}
	s.mu.Unlock()
}

// queryGaugeName renders one per-query attribution gauge name.
func queryGaugeName(id uint32, what string) string {
	return fmt.Sprintf("server_query_%d_%s", id, what)
}

func (s *Service) setQueryGauges(id uint32, tuples, errs uint64, nsPerTuple float64, quarantined bool) {
	s.gauges.Set(queryGaugeName(id, "tuples"), float64(tuples))
	s.gauges.Set(queryGaugeName(id, "errors"), float64(errs))
	s.gauges.Set(queryGaugeName(id, "ns_per_tuple"), nsPerTuple)
	var quar float64
	if quarantined {
		quar = 1
	}
	s.gauges.Set(queryGaugeName(id, "quarantined"), quar)
}

// dropQueryGauges removes a detached query's attribution gauges so the
// exposition does not accumulate dead series across catalog churn.
func (s *Service) dropQueryGauges(id uint32) {
	for _, what := range []string{"tuples", "errors", "ns_per_tuple", "quarantined"} {
		s.gauges.Delete(queryGaugeName(id, what))
	}
}

// publishRingsLocked refreshes the COW ring snapshot. Callers hold s.mu.
func (s *Service) publishRingsLocked() {
	rings := make([]*resultLog, 0, len(s.queries))
	for _, q := range s.queries {
		rings = append(rings, q.log)
	}
	s.rings.Store(&rings)
}

// Attach registers a query, journals the attach durably, and starts its
// run on the live incarnation. The returned id is the subscription handle.
func (s *Service) Attach(text string, shards uint32) (uint32, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rt := s.rt.Load()
	if rt == nil || rt.degraded {
		return 0, errDegraded
	}
	id := s.nextID
	q := &Query{ID: id, Text: text, Shards: shards, log: s.newRing(), journaled: true}
	// The WAL position must be frame-aligned, and the shared-runtime attach
	// must not race the shared pass: rt.mu excludes the apply path, so
	// wal.applied cannot move under us and the MultiRun is quiescent.
	rt.mu.Lock()
	defer rt.mu.Unlock()
	run, err := s.startRun(rt, q, nil)
	if err != nil {
		return 0, attachErr(err)
	}
	q.attachEpoch, q.attachAt = rt.wal.epoch, rt.wal.applied
	if err := appendJournal(s.cfg.Dir, journalEntry{
		op: jAttach, id: id, text: text, shards: shards,
		epoch: q.attachEpoch, at: q.attachAt,
	}); err != nil {
		run.close()
		return 0, err
	}
	s.nextID++
	s.queries[id] = q
	rt.runs[id] = run
	s.publishRingsLocked()
	s.counters.Add("server_attaches", 1)
	return id, nil
}

// attachErr types a failed attach/revive for the wire: admission-control
// rejections get their own code so clients can tell "over budget" from
// "won't parse".
func attachErr(err error) error {
	var adm *gsql.AdmissionError
	if errors.As(err, &adm) {
		return &serviceError{code: CodeAdmission, msg: err.Error()}
	}
	return &serviceError{code: CodeParse, msg: err.Error()}
}

// Revive lifts a quarantined query back into the running catalog: its
// retained partials rejoin the shared pass at the current WAL position and
// the revive is journaled durably. Tuples that flowed while the query was
// fenced are not backfilled — a fenced query sees nothing, by design.
func (s *Service) Revive(id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queries[id]
	if q == nil {
		return &serviceError{code: CodeUnknownQuery, msg: fmt.Sprintf("no query %d", id)}
	}
	qi := q.quar.Load()
	if qi == nil {
		return &serviceError{code: CodeBadRequest, msg: fmt.Sprintf("query %d is not quarantined", id)}
	}
	rt := s.rt.Load()
	if rt == nil || rt.degraded {
		return errDegraded
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if run := rt.runs[id]; run != nil {
		// Quarantined in this incarnation: the handle revives in place.
		if err := run.revive(); err != nil {
			return attachErr(err)
		}
	} else {
		// Rebuilt dormant: a fresh run seeded from the retained partials.
		run, err := s.startRun(rt, q, qi.retained)
		if err != nil {
			return attachErr(err)
		}
		rt.runs[id] = run
	}
	q.attachEpoch, q.attachAt = rt.wal.epoch, rt.wal.applied
	q.journaled = true
	q.quar.Store(nil)
	if err := appendJournal(s.cfg.Dir, journalEntry{
		op: jRevive, id: id, epoch: q.attachEpoch, at: q.attachAt,
	}); err != nil {
		// The revive is live but not durable; a crash before the next
		// checkpoint re-parks the query dormant. Surface the disk failure.
		return err
	}
	s.counters.Add("server_revives", 1)
	return nil
}

// Detach removes a query: journal the detach, drop its run and ring, and
// kick every subscriber.
func (s *Service) Detach(id uint32) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queries[id]
	if q == nil {
		return &serviceError{code: CodeUnknownQuery, msg: fmt.Sprintf("no query %d", id)}
	}
	rt := s.rt.Load()
	if rt == nil || rt.degraded {
		return errDegraded
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if err := appendJournal(s.cfg.Dir, journalEntry{op: jDetach, id: id}); err != nil {
		return err
	}
	delete(s.queries, id)
	if run := rt.runs[id]; run != nil {
		delete(rt.runs, id)
		q.log.freeze() // Close()'s partial-bucket flush must not leak rows
		run.close()
	}
	q.log.close() // wakes subscribers with fetchClosed→removed semantics
	s.publishRingsLocked()
	s.dropQueryGauges(id)
	s.counters.Add("server_detaches", 1)
	return nil
}

// lookup returns a live query.
func (s *Service) lookup(id uint32) (*Query, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queries[id]
	if q == nil {
		return nil, &serviceError{code: CodeUnknownQuery, msg: fmt.Sprintf("no query %d", id)}
	}
	return q, nil
}

// serviceError is a typed control-plane failure, mapped onto StErr.
type serviceError struct {
	code uint16
	msg  string
}

func (e *serviceError) Error() string { return e.msg }

var errDegraded = &serviceError{code: CodeDegraded, msg: "service degraded: ingest-only (WAL) mode; retry later"}

// errFenced aborts an emit from a torn-down incarnation's run (a zombie
// pump, or a teardown-path Close flush).
var errFenced = errors.New("server: incarnation fenced")

// fanSink feeds the ingest stream into the incarnation's shared MultiRun:
// one pass per frame regardless of the number of attached queries. The
// rt.mu acquired by the ApplyLog hook is released here, making {WAL append,
// shared pass} one atomic step with respect to Attach/Detach.
type fanSink struct {
	rt *runtime
}

// PushBatch applies one logged data frame through the shared pass.
func (f *fanSink) PushBatch(b *gsql.Batch) (rejected int, err error) {
	rt := f.rt
	defer rt.mu.Unlock() // acquired in rtLog.LogFrame
	rt.inflight.Store(time.Now().UnixNano())
	defer rt.inflight.Store(0)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: runtime panic: %v", r)
		}
	}()
	if rt.fenced.Load() {
		// The fence is an incarnation-level condition, not a per-query fault,
		// so it must abort the apply here at the pump boundary. Under
		// isolation a member's errFenced emit is charged to that query
		// instead of failing the shared pass — a torn-down incarnation's
		// pump would otherwise keep applying (and acking) frames whose
		// emissions the fence discards, and live long enough to checkpoint
		// that row-less state.
		return 0, errFenced
	}
	return rt.multi.PushBatch(b)
}

// Push exists to satisfy ingest.Sink; the listener always prefers the
// batch path (fanSink implements BatchSink) so this is never called.
func (f *fanSink) Push(gsql.Tuple) error {
	f.rt.mu.Unlock()
	return fmt.Errorf("server: scalar push path not supported")
}

// Heartbeat applies one logged heartbeat through the shared pass.
func (f *fanSink) Heartbeat(v gsql.Value) (err error) {
	rt := f.rt
	defer rt.mu.Unlock() // acquired in rtLog.LogHeartbeat
	rt.inflight.Store(time.Now().UnixNano())
	defer rt.inflight.Store(0)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("server: runtime panic: %v", r)
		}
	}()
	if rt.fenced.Load() {
		return errFenced // see PushBatch
	}
	return rt.multi.Heartbeat(v)
}

// rtLog adapts the incarnation WAL to ingest.ApplyLog, acquiring rt.mu so
// the log position and the fan-out set move together; the matching sink
// call releases it. The ingest pump is the only goroutine driving either,
// so the lock is always released before the next acquisition.
type rtLog struct {
	rt *runtime
}

func (r *rtLog) LogFrame(session, seq uint64, pkts []netgen.Packet) error {
	if r.rt.degraded {
		// No fan-out set to coordinate with (and the walOnlySink would
		// never release the lock): log without it.
		return r.rt.wal.LogFrame(session, seq, pkts)
	}
	r.rt.mu.Lock()
	if err := r.rt.wal.LogFrame(session, seq, pkts); err != nil {
		r.rt.mu.Unlock()
		return err
	}
	return nil
}

func (r *rtLog) LogHeartbeat(ts gsql.Value) error {
	if r.rt.degraded {
		return r.rt.wal.LogHeartbeat(ts)
	}
	r.rt.mu.Lock()
	if err := r.rt.wal.LogHeartbeat(ts); err != nil {
		r.rt.mu.Unlock()
		return err
	}
	return nil
}

// walOnlySink is the degraded-mode sink: frames were already logged by the
// ApplyLog hook; nothing else to do.
type walOnlySink struct{}

func (walOnlySink) Push(gsql.Tuple) error { return nil }

func (walOnlySink) Heartbeat(gsql.Value) error { return nil }

func (walOnlySink) PushBatch(*gsql.Batch) (int, error) { return 0, nil }
