package server

// Catalog-resilience suite: a poison query quarantines behind the breaker
// without perturbing healthy neighbors, survives a crash as a dormant
// catalog entry, and revives over the control protocol; admission-control
// rejections carry their own wire code; and a fenced incarnation can
// neither apply frames nor checkpoint (the invariant that keeps a zombie
// pump from persisting state whose emissions the fence discarded).

import (
	"errors"
	"strings"
	"testing"
	"time"

	"forwarddecay/gsql"
)

// serverPoisonQuery divides by zero on every folded tuple: each charge is a
// member fault, so the breaker fences it after Config.QueryBreakerErrors
// consecutive errors.
const serverPoisonQuery = `select tb, sum(len / (len - len)) from TCP group by time/60 as tb`

func TestServerQuarantineIsolatesPoisonQuery(t *testing.T) {
	pkts := genPackets(t, 4000, 50, 57)
	want := oracleRows(t, pkts)
	svc := startService(t, t.TempDir(), nil)
	cl := dialControl(t, svc)

	hid, err := cl.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := cl.Attach(serverPoisonQuery)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cl.Subscribe(hid, 0, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}

	d := dialIngest(t, svc, 31)
	for i, p := range pkts {
		if err := d.Send(p); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// The healthy neighbor is bit-identical to a catalog that never held
	// the poison query.
	got, _ := collectRows(t, ch, 0, len(want), 30*time.Second)
	requireIdentical(t, want, got, "healthy neighbor")

	waitFor(t, 10*time.Second, "poison query quarantined", func() bool {
		return svc.Counters().Get("server_quarantines") >= 1
	})
	q, err := svc.lookup(pid)
	if err != nil {
		t.Fatal(err)
	}
	fenced, why := q.Quarantined()
	if !fenced || why != gsql.QuarantineBreaker {
		t.Fatalf("poison query fenced=%v why=%q, want breaker quarantine", fenced, why)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(st, `"quarantined":true`) || !strings.Contains(st, `"quarantine_reason":"breaker"`) {
		t.Fatalf("stats do not surface the quarantine: %s", st)
	}

	// Revive lifts the fence (the stream is idle, so it stays lifted);
	// reviving a healthy query is a typed rejection.
	if err := cl.Revive(pid); err != nil {
		t.Fatalf("revive: %v", err)
	}
	if fenced, _ := q.Quarantined(); fenced {
		t.Fatal("query still fenced after revive")
	}
	var ce *ClientError
	if err := cl.Revive(hid); !errors.As(err, &ce) || ce.Code != CodeBadRequest {
		t.Fatalf("revive of a healthy query = %v, want CodeBadRequest", err)
	}
	// A revived query detaches like any other.
	if err := cl.Detach(pid); err != nil {
		t.Fatalf("detach revived query: %v", err)
	}
}

func TestServerQuarantineSurvivesRestartDormant(t *testing.T) {
	pkts := genPackets(t, 6000, 50, 58)
	want := oracleRows(t, pkts)
	svc := startService(t, t.TempDir(), func(c *Config) {
		c.CheckpointEvery = 500
	})
	cl := dialControl(t, svc)

	hid, err := cl.Attach(testQuery)
	if err != nil {
		t.Fatal(err)
	}
	pid, err := cl.Attach(serverPoisonQuery)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := cl.Subscribe(hid, 0, PolicyBlock, 0)
	if err != nil {
		t.Fatal(err)
	}

	d := dialIngest(t, svc, 32)
	for i, p := range pkts {
		if i == len(pkts)/2 {
			// By now the poison query is long fenced (breaker trips within
			// the first frame); the crash must rebuild it dormant from the
			// quarantine journal entry or the state file.
			svc.Kill()
		}
		if err := d.Send(p); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	got, _ := collectRows(t, ch, 0, len(want), 30*time.Second)
	requireIdentical(t, want, got, "healthy neighbor across crash")

	q, err := svc.lookup(pid)
	if err != nil {
		t.Fatal(err)
	}
	fenced, why := q.Quarantined()
	if !fenced || why != gsql.QuarantineBreaker {
		t.Fatalf("rebuilt poison query fenced=%v why=%q, want dormant breaker quarantine", fenced, why)
	}

	// Revive the dormant query (the stream is idle, so no re-trip), then
	// crash again: the journaled revive must rebuild it live.
	if err := cl.Revive(pid); err != nil {
		t.Fatalf("revive after restart: %v", err)
	}
	restarts := svc.Counters().Get("server_restarts")
	svc.Kill()
	waitFor(t, 10*time.Second, "rebuild after second kill", func() bool {
		return svc.Counters().Get("server_restarts") > restarts && svc.Mode() == ModeHealthy
	})
	q, err = svc.lookup(pid)
	if err != nil {
		t.Fatal(err)
	}
	if fenced, why := q.Quarantined(); fenced {
		t.Fatalf("revived query re-fenced (%q) after crash: the jRevive entry did not replay", why)
	}
}

func TestServerAdmissionRejectionCode(t *testing.T) {
	svc := startService(t, t.TempDir(), func(c *Config) {
		c.AdmitBudget = 1e-12 // below any query's estimated private cost
	})
	cl := dialControl(t, svc)

	_, err := cl.Attach(testQuery)
	var ce *ClientError
	if !errors.As(err, &ce) || ce.Code != CodeAdmission {
		t.Fatalf("attach under an exhausted budget = %v, want CodeAdmission", err)
	}
	if !strings.Contains(ce.Msg, "admission") {
		t.Fatalf("admission error message %q does not say why", ce.Msg)
	}
	// The rejection left no trace in the catalog.
	if n := svc.Counters().Get("server_attaches"); n != 0 {
		t.Fatalf("rejected attach counted as an attach (%d)", n)
	}
	if _, err := svc.lookup(1); err == nil {
		t.Fatal("rejected attach left a catalog entry")
	}
}

func TestFencedIncarnationRefusesApplyAndCheckpoint(t *testing.T) {
	svc := startService(t, t.TempDir(), nil)
	rt := svc.rt.Load()
	rt.fenced.Store(true)
	defer rt.fenced.Store(false) // Shutdown's final checkpoint needs the fence down

	// The pump boundary: a fenced incarnation aborts the apply (so the
	// frame stays unacked and is resent to the successor) instead of
	// letting isolation charge the fence to individual queries.
	fs := &fanSink{rt: rt}
	rt.mu.Lock() // PushBatch releases it, mirroring the ApplyLog hook
	if _, err := fs.PushBatch(nil); !errors.Is(err, errFenced) {
		t.Fatalf("fenced PushBatch = %v, want errFenced", err)
	}
	rt.mu.Lock()
	if err := fs.Heartbeat(gsql.Int(1)); !errors.Is(err, errFenced) {
		t.Fatalf("fenced Heartbeat = %v, want errFenced", err)
	}

	// And the state file: a fenced engine may be past emissions its frozen
	// rings refused; persisting that state would orphan those rows.
	if err := svc.checkpoint(rt); err == nil {
		t.Fatal("checkpoint of a fenced incarnation succeeded")
	}
}
