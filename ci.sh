#!/bin/sh
# CI check: build, vet, tests, the race detector over the concurrent code
# (the sharded gsql runtime, the agg shard wrappers, and the fault-injection
# suites), a short fuzz smoke over every decoder and the query parser, and a
# perf-regression gate over the hot-path micro-benchmarks.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...

# Epoch-rollover chaos soak, short mode: a simulated two-day stream with
# hourly landmark rolls plus injected crashes/corruptions must match the
# fault-free never-rolling oracle (the full 30-day tape runs without -short).
go test -run Soak -short -count=1 ./gsql/

# Site-churn chaos soak over the elastic distributed tier, short mode: a
# simulated two-day keyed stream with crashes, rejoins-from-log, joins,
# retirements and mid-handoff/mid-roll faults must stay bit-for-bit with a
# fault-free static-roster oracle (the four-day tape runs without -short).
# The churn and fault suites also get a dedicated -race pass because the
# handoff/roll protocols are where the locking is subtle.
go test -run Soak -short -count=1 ./distrib/
go test -race -run 'Churn|Crash|Handoff|Roll|Fault' -short -count=1 ./distrib/

# Supervised query service: the crash/resume, shedding, breaker and wedge
# drills get a dedicated -race pass — the supervisor's lock-passing pump
# protocol and the ring freeze/thaw/fence dance are where the server's
# locking is subtle. Quarantine/Admission/Fenced cover the catalog-resilience
# suite: poison-query fencing, dormant rebuild across crashes, admission
# rejections, and the fence-at-pump invariant.
go test -race -run 'Kill|Slow|Breaker|Wedge|Shutdown|Disconnect|Quarantine|Admission|Fenced' -count=1 ./server/

# Shared multi-query runtime: the differential suite (MultiRun vs N
# standalone runs, bit-for-bit, through checkpoints, epoch rolls, solo
# replay, poison-query quarantine and attach/detach churn) gets a dedicated
# -race pass — sharded members run the parallel runtime under the shared
# feed, and detach-under-load is where the catalog locking is subtle.
go test -race -run 'Multi|SoloReplay' -count=1 ./gsql/

# Fuzz smoke: 10s per target. -run='^$' skips the unit tests (already run
# above); -fuzzminimizetime caps the engine's per-input minimization, whose
# 60s default dwarfs the budget and reads as a hang.
go test -run='^$' -fuzz='^FuzzSketchDecode$' -fuzztime=10s -fuzzminimizetime=10x ./sketch/
go test -run='^$' -fuzz='^FuzzAggDecode$' -fuzztime=10s -fuzzminimizetime=10x ./agg/
go test -run='^$' -fuzz='^FuzzCheckpointDecode$' -fuzztime=10s -fuzzminimizetime=10x ./gsql/
go test -run='^$' -fuzz='^FuzzQuery$' -fuzztime=10s -fuzzminimizetime=10x ./gsql/
go test -run='^$' -fuzz='^FuzzCanonicalize$' -fuzztime=10s -fuzzminimizetime=10x ./gsql/
go test -run='^$' -fuzz='^FuzzFrameDecode$' -fuzztime=10s -fuzzminimizetime=10x ./ingest/
go test -run='^$' -fuzz='^FuzzDecayUnmarshal$' -fuzztime=10s -fuzzminimizetime=10x ./decay/
go test -run='^$' -fuzz='^FuzzLogSegmentDecode$' -fuzztime=10s -fuzzminimizetime=10x ./distrib/
go test -run='^$' -fuzz='^FuzzSliceDecode$' -fuzztime=10s -fuzzminimizetime=10x ./distrib/
go test -run='^$' -fuzz='^FuzzControlFrameDecode$' -fuzztime=10s -fuzzminimizetime=10x ./server/
go test -run='^$' -fuzz='^FuzzWALRecordDecode$' -fuzztime=10s -fuzzminimizetime=10x ./server/
go test -run='^$' -fuzz='^FuzzJournalEntryDecode$' -fuzztime=10s -fuzzminimizetime=10x ./server/

# Perf gate: re-measure the hot-path micro-benchmarks and fail if any shared
# benchmark runs >25% slower (ns/op) than the committed baseline. 300ms per
# benchmark keeps the smoke cheap; the committed BENCH_*.json snapshots are
# regenerated with the default -benchtime 1s. The JSON goes to stdout, so
# discard it here — the comparison table prints on stderr. BENCH_PR6.json
# extends the baseline set with the columnar batch kernels (ExecPushBatch,
# PredicateBatch, WeighBatch); benchmarks present on only one side are
# ignored, so the older snapshot keeps gating the scalar paths.
go run ./cmd/fdbench -bench-json -benchtime 300ms -baseline BENCH_BASELINE.json > /dev/null
go run ./cmd/fdbench -bench-json -benchtime 300ms -baseline BENCH_PR6.json > /dev/null

# Multi-query gates: BENCH_PR9.json extends the baseline set with the shared
# runtime's per-tuple benchmarks (MultiPushShared16, MultiPushBatchShared16),
# and the scaling sweep enforces the headline invariant directly — 1000
# standing queries must cost <2x the per-tuple cost of 10 on the
# shared-heavy workload (a runtime degraded to per-query fan-out costs
# ~100x, so the gate has wide margin on both sides).
go run ./cmd/fdbench -bench-json -benchtime 300ms -baseline BENCH_PR9.json > /dev/null
go run ./cmd/fdbench -queries 1,10,100,1000 -scale-tuples 100000 -max-ratio 2.0 > /dev/null

# Incremental-rebuild gate: attaching or detaching one query while 1000 are
# standing must cost a small constant multiple of the same mutation on a
# 10-query catalog — O(query), never O(catalog). A runtime that recompiled
# its predicate classes or re-interned the shared expression slots per
# mutation would cost ~100x at the 1000-query point (the committed
# BENCH_PR10.json sweep measured 0.8x). 3x absorbs map-occupancy noise on
# the single-core CI box while staying far below any recompile.
go run ./cmd/fdbench -churn 10,1000 -churn-pairs 200 -churn-max-ratio 3.0 > /dev/null
