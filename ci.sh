#!/bin/sh
# CI check: build, vet, tests, the race detector over the concurrent code
# (the sharded gsql runtime, the agg shard wrappers, and the fault-injection
# suites), and a short fuzz smoke over every decoder and the query parser.
set -eux

go build ./...
go vet ./...
go test ./...
go test -race ./...

# Fuzz smoke: 10s per target. -run='^$' skips the unit tests (already run
# above); -fuzzminimizetime caps the engine's per-input minimization, whose
# 60s default dwarfs the budget and reads as a hang.
go test -run='^$' -fuzz='^FuzzSketchDecode$' -fuzztime=10s -fuzzminimizetime=10x ./sketch/
go test -run='^$' -fuzz='^FuzzAggDecode$' -fuzztime=10s -fuzzminimizetime=10x ./agg/
go test -run='^$' -fuzz='^FuzzCheckpointDecode$' -fuzztime=10s -fuzzminimizetime=10x ./gsql/
go test -run='^$' -fuzz='^FuzzQuery$' -fuzztime=10s -fuzzminimizetime=10x ./gsql/
go test -run='^$' -fuzz='^FuzzFrameDecode$' -fuzztime=10s -fuzzminimizetime=10x ./ingest/
