package udaf

// Checkpoint support for the mergeable sketch UDAFs: gsql checkpoints a
// group's aggregate partials through encoding.BinaryMarshaler /
// BinaryUnmarshaler (gsql.CheckpointAggregator), and the sketches already
// define versioned encodings for the distributed merge path — the UDAFs
// just delegate to them. The sketch encodings embed the decay parameters,
// so a restored partial refuses to merge with state from a different
// model. Restored sketch state is bit-identical to the state that was
// saved; query answers therefore stay within the same error bounds an
// uninterrupted run would have.
//
// The sampler UDAFs (prisamp, wrsamp, ressamp, aggsamp) keep randomized
// heap state and are deliberately not checkpointable; a statement using
// them reports that through Statement.Checkpointable.

func (a *sshhAgg) MarshalBinary() ([]byte, error) { return a.s.MarshalBinary() }

func (a *sshhAgg) UnmarshalBinary(b []byte) error { return a.s.UnmarshalBinary(b) }

func (a *fddistinctAgg) MarshalBinary() ([]byte, error) { return a.s.MarshalBinary() }

func (a *fddistinctAgg) UnmarshalBinary(b []byte) error { return a.s.UnmarshalBinary(b) }
