package udaf

import (
	"encoding/binary"
	"fmt"
	"math"
	"strings"

	"forwarddecay/agg"
	"forwarddecay/gsql"
	"forwarddecay/sample"
)

// Epoch-aware UDAFs. The base UDAFs (sshh, prisamp, …) take caller-computed
// weights, so the runtime cannot rebase their state when the landmark moves —
// and under exponential decay their linear-domain weights overflow on
// week-long streams. The fd* family instead takes raw timestamps and wraps
// the agg/sample forward-decay aggregates, which carry their decay model
// internally: they implement gsql.LandmarkShifter (the epoch supervisor can
// roll them exactly) and gsql.LandmarkReporter (restore can cross-check their
// frame against a checkpoint's stamped landmark).
//
// Registered only when Config.Decay is set:
//
//	fdcount(ts)        decayed count
//	fdsum(ts, v)       decayed sum
//	fdavg(ts, v)       decayed average (time-independent ratio)
//	fdvar(ts, v)       decayed variance (time-independent ratio)
//	fdmin(ts, v)       decayed minimum
//	fdmax(ts, v)       decayed maximum
//	fdhh(key, ts)      decayed heavy hitters (SpaceSaving under the model)
//	fdpct(v, ts)       decayed quantile (q-digest under the model)
//	fdcard(key, ts)    decayed count-distinct (exact, per-key max weight)
//	fdprisamp(item, ts)  forward priority sample under the model
//	fdwrsamp(item, ts)   forward weighted reservoir under the model
//
// Time-dependent finals (count, sum, min, max, hh, card) are evaluated at the
// group's maximum observed timestamp, which merges and survives checkpoints
// alongside the aggregate state.

// epochSpecs builds the fd* aggregate specs for a resolved config.
func epochSpecs(cfg Config) []gsql.AggSpec {
	m := cfg.Decay
	return []gsql.AggSpec{
		{Name: "fdcount", MinArgs: 1, MaxArgs: 1, Mergeable: true,
			New: func() gsql.Aggregator { return &fdcountAgg{s: agg.NewCounter(m)} }},
		{Name: "fdsum", MinArgs: 2, MaxArgs: 2, Mergeable: true,
			New: func() gsql.Aggregator { return &fdsumAgg{s: agg.NewSum(m), kind: fdKindSum} }},
		{Name: "fdavg", MinArgs: 2, MaxArgs: 2, Mergeable: true,
			New: func() gsql.Aggregator { return &fdsumAgg{s: agg.NewSum(m), kind: fdKindAvg} }},
		{Name: "fdvar", MinArgs: 2, MaxArgs: 2, Mergeable: true,
			New: func() gsql.Aggregator { return &fdsumAgg{s: agg.NewSum(m), kind: fdKindVar} }},
		{Name: "fdmin", MinArgs: 2, MaxArgs: 2, Mergeable: true,
			New: func() gsql.Aggregator { return &fdminAgg{s: agg.NewMin(m)} }},
		{Name: "fdmax", MinArgs: 2, MaxArgs: 2, Mergeable: true,
			New: func() gsql.Aggregator { return &fdmaxAgg{s: agg.NewMax(m)} }},
		{Name: "fdhh", MinArgs: 2, MaxArgs: 2, Mergeable: true,
			New: func() gsql.Aggregator {
				return &fdhhAgg{s: agg.NewHeavyHitters(m, cfg.Epsilon), phi: cfg.Phi}
			}},
		{Name: "fdpct", MinArgs: 2, MaxArgs: 2, Mergeable: true,
			New: func() gsql.Aggregator {
				return &fdpctAgg{s: agg.NewQuantiles(m, cfg.QuantileU, cfg.Epsilon), phi: cfg.QuantilePhi}
			}},
		{Name: "fdcard", MinArgs: 2, MaxArgs: 2, Mergeable: true,
			New: func() gsql.Aggregator { return &fdcardAgg{s: agg.NewDistinctExact(m)} }},
		{Name: "fdprisamp", MinArgs: 2, MaxArgs: 2,
			New: func() gsql.Aggregator {
				return &fdprisampAgg{s: sample.NewForwardPriority[gsql.Value](m, cfg.SampleSize, cfg.Seed)}
			}},
		{Name: "fdwrsamp", MinArgs: 2, MaxArgs: 2,
			New: func() gsql.Aggregator {
				return &fdwrsampAgg{s: sample.NewForwardWRS[gsql.Value](m, cfg.SampleSize, cfg.Seed)}
			}},
	}
}

// lastTS tracks a group's maximum observed timestamp — the query time of
// time-dependent finals. It merges with other partials and rides checkpoint
// encodings as an 8-byte suffix after the wrapped aggregate's bytes.
type lastTS struct{ last float64 }

func (l *lastTS) see(ts float64) {
	if ts > l.last {
		l.last = ts
	}
}

func (l *lastTS) fold(o *lastTS) {
	if o.last > l.last {
		l.last = o.last
	}
}

// appendLast appends the wrapped aggregate's encoding plus the timestamp
// suffix.
func (l *lastTS) appendLast(b []byte, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(l.last)), nil
}

// splitLast strips and loads the timestamp suffix, returning the wrapped
// aggregate's bytes.
func (l *lastTS) splitLast(name string, b []byte) ([]byte, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("udaf: %s: truncated encoding", name)
	}
	last := math.Float64frombits(binary.LittleEndian.Uint64(b[len(b)-8:]))
	if math.IsNaN(last) || math.IsInf(last, 0) {
		return nil, fmt.Errorf("udaf: %s: non-finite timestamp in encoding", name)
	}
	l.last = last
	return b[:len(b)-8], nil
}

// mergeAs asserts a merge partner's type, with the uniform error message.
func mergeAs[T gsql.Aggregator](name string, o gsql.Aggregator) (T, error) {
	oa, ok := o.(T)
	if !ok {
		return oa, fmt.Errorf("udaf: %s: cannot merge %T", name, o)
	}
	return oa, nil
}

// --- fdcount ------------------------------------------------------------

type fdcountAgg struct {
	s *agg.Counter
	lastTS
}

func (a *fdcountAgg) Step(args []gsql.Value) error {
	ts := args[0].AsFloat()
	a.s.Observe(ts)
	a.see(ts)
	return nil
}

// StepBatch folds a run of tuples, compressing equal-timestamp stretches
// into Counter.ObserveRun so the decay weight and its exponential are
// computed once per distinct timestamp. Bit-for-bit identical to n
// sequential Steps: the accumulation inside ObserveRun stays sequential,
// and see() is monotone so per-run application matches per-row.
func (a *fdcountAgg) StepBatch(args []gsql.Value, n, stride int) error {
	for i := 0; i < n; {
		ts := args[i*stride].AsFloat()
		j := i + 1
		for j < n && args[j*stride].AsFloat() == ts {
			j++
		}
		a.s.ObserveRun(ts, j-i)
		a.see(ts)
		i = j
	}
	return nil
}

func (a *fdcountAgg) Final() gsql.Value { return gsql.Float(a.s.Value(a.last)) }

func (a *fdcountAgg) Merge(o gsql.Aggregator) error {
	oa, err := mergeAs[*fdcountAgg]("fdcount", o)
	if err != nil {
		return err
	}
	a.fold(&oa.lastTS)
	return a.s.Merge(oa.s)
}

func (a *fdcountAgg) ShiftLandmark(newL float64) error { return a.s.ShiftLandmark(newL) }
func (a *fdcountAgg) Landmark() float64                { return a.s.Model().Landmark }

func (a *fdcountAgg) MarshalBinary() ([]byte, error) { return a.appendLast(a.s.MarshalBinary()) }
func (a *fdcountAgg) UnmarshalBinary(b []byte) error {
	rest, err := a.splitLast("fdcount", b)
	if err != nil {
		return err
	}
	return a.s.UnmarshalBinary(rest)
}

// --- fdsum / fdavg / fdvar ----------------------------------------------

type fdKind uint8

const (
	fdKindSum fdKind = iota
	fdKindAvg
	fdKindVar
)

type fdsumAgg struct {
	s    *agg.Sum
	kind fdKind
	lastTS
}

func (a *fdsumAgg) Step(args []gsql.Value) error {
	ts := args[0].AsFloat()
	a.s.Observe(ts, args[1].AsFloat())
	a.see(ts)
	return nil
}

// StepBatch folds a run of (ts, v) pairs. The values differ row to row so
// nothing collapses, but ObserveMemo's one-slot weight memo makes the
// per-row LogStaticWeight lookup free across equal-timestamp stretches.
func (a *fdsumAgg) StepBatch(args []gsql.Value, n, stride int) error {
	for i := 0; i < n; i++ {
		ts := args[i*stride].AsFloat()
		a.s.ObserveMemo(ts, args[i*stride+1].AsFloat())
		a.see(ts)
	}
	return nil
}

func (a *fdsumAgg) Final() gsql.Value {
	switch a.kind {
	case fdKindAvg:
		return gsql.Float(a.s.Mean())
	case fdKindVar:
		return gsql.Float(a.s.Variance())
	default:
		return gsql.Float(a.s.Value(a.last))
	}
}

func (a *fdsumAgg) Merge(o gsql.Aggregator) error {
	oa, err := mergeAs[*fdsumAgg]("fdsum", o)
	if err != nil {
		return err
	}
	a.fold(&oa.lastTS)
	return a.s.Merge(oa.s)
}

func (a *fdsumAgg) ShiftLandmark(newL float64) error { return a.s.ShiftLandmark(newL) }
func (a *fdsumAgg) Landmark() float64                { return a.s.Model().Landmark }

func (a *fdsumAgg) MarshalBinary() ([]byte, error) { return a.appendLast(a.s.MarshalBinary()) }
func (a *fdsumAgg) UnmarshalBinary(b []byte) error {
	rest, err := a.splitLast("fdsum", b)
	if err != nil {
		return err
	}
	return a.s.UnmarshalBinary(rest)
}

// --- fdmin / fdmax ------------------------------------------------------

type fdminAgg struct {
	s *agg.Min
	lastTS
}

func (a *fdminAgg) Step(args []gsql.Value) error {
	ts := args[0].AsFloat()
	a.s.Observe(ts, args[1].AsFloat())
	a.see(ts)
	return nil
}

func (a *fdminAgg) Final() gsql.Value { return gsql.Float(a.s.Value(a.last)) }

func (a *fdminAgg) Merge(o gsql.Aggregator) error {
	oa, err := mergeAs[*fdminAgg]("fdmin", o)
	if err != nil {
		return err
	}
	a.fold(&oa.lastTS)
	return a.s.Merge(oa.s)
}

func (a *fdminAgg) ShiftLandmark(newL float64) error { return a.s.ShiftLandmark(newL) }
func (a *fdminAgg) Landmark() float64                { return a.s.Model().Landmark }

func (a *fdminAgg) MarshalBinary() ([]byte, error) { return a.appendLast(a.s.MarshalBinary()) }
func (a *fdminAgg) UnmarshalBinary(b []byte) error {
	rest, err := a.splitLast("fdmin", b)
	if err != nil {
		return err
	}
	return a.s.UnmarshalBinary(rest)
}

type fdmaxAgg struct {
	s *agg.Max
	lastTS
}

func (a *fdmaxAgg) Step(args []gsql.Value) error {
	ts := args[0].AsFloat()
	a.s.Observe(ts, args[1].AsFloat())
	a.see(ts)
	return nil
}

func (a *fdmaxAgg) Final() gsql.Value { return gsql.Float(a.s.Value(a.last)) }

func (a *fdmaxAgg) Merge(o gsql.Aggregator) error {
	oa, err := mergeAs[*fdmaxAgg]("fdmax", o)
	if err != nil {
		return err
	}
	a.fold(&oa.lastTS)
	return a.s.Merge(oa.s)
}

func (a *fdmaxAgg) ShiftLandmark(newL float64) error { return a.s.ShiftLandmark(newL) }
func (a *fdmaxAgg) Landmark() float64                { return a.s.Model().Landmark }

func (a *fdmaxAgg) MarshalBinary() ([]byte, error) { return a.appendLast(a.s.MarshalBinary()) }
func (a *fdmaxAgg) UnmarshalBinary(b []byte) error {
	rest, err := a.splitLast("fdmax", b)
	if err != nil {
		return err
	}
	return a.s.UnmarshalBinary(rest)
}

// --- fdhh ---------------------------------------------------------------

type fdhhAgg struct {
	s   *agg.HeavyHitters
	phi float64
	lastTS
}

func (a *fdhhAgg) Step(args []gsql.Value) error {
	ts := args[1].AsFloat()
	a.s.Observe(uint64(args[0].AsInt()), ts)
	a.see(ts)
	return nil
}

func (a *fdhhAgg) Final() gsql.Value { return renderAggHH(a.s.Query(a.last, a.phi)) }

func (a *fdhhAgg) Merge(o gsql.Aggregator) error {
	oa, err := mergeAs[*fdhhAgg]("fdhh", o)
	if err != nil {
		return err
	}
	a.fold(&oa.lastTS)
	return a.s.Merge(oa.s)
}

func (a *fdhhAgg) ShiftLandmark(newL float64) error { return a.s.ShiftLandmark(newL) }
func (a *fdhhAgg) Landmark() float64                { return a.s.Model().Landmark }

func (a *fdhhAgg) MarshalBinary() ([]byte, error) { return a.appendLast(a.s.MarshalBinary()) }
func (a *fdhhAgg) UnmarshalBinary(b []byte) error {
	rest, err := a.splitLast("fdhh", b)
	if err != nil {
		return err
	}
	return a.s.UnmarshalBinary(rest)
}

// renderAggHH renders decayed heavy hitters like renderHH does for the raw
// sketches: "key:count" in decreasing count order.
func renderAggHH(items []agg.Item) gsql.Value {
	parts := make([]string, len(items))
	for i, it := range items {
		parts[i] = fmt.Sprintf("%d:%.6g", it.Key, it.Count)
	}
	return gsql.Str(strings.Join(parts, ","))
}

// --- fdpct --------------------------------------------------------------

type fdpctAgg struct {
	s   *agg.Quantiles
	phi float64
}

func (a *fdpctAgg) Step(args []gsql.Value) error {
	a.s.Observe(uint64(args[0].AsInt()), args[1].AsFloat())
	return nil
}

func (a *fdpctAgg) Final() gsql.Value { return gsql.Int(int64(a.s.Quantile(a.phi))) }

func (a *fdpctAgg) Merge(o gsql.Aggregator) error {
	oa, err := mergeAs[*fdpctAgg]("fdpct", o)
	if err != nil {
		return err
	}
	return a.s.Merge(oa.s)
}

func (a *fdpctAgg) ShiftLandmark(newL float64) error { return a.s.ShiftLandmark(newL) }
func (a *fdpctAgg) Landmark() float64                { return a.s.Model().Landmark }

func (a *fdpctAgg) MarshalBinary() ([]byte, error) { return a.s.MarshalBinary() }
func (a *fdpctAgg) UnmarshalBinary(b []byte) error { return a.s.UnmarshalBinary(b) }

// --- fdcard -------------------------------------------------------------

type fdcardAgg struct {
	s *agg.DistinctExact
	lastTS
}

func (a *fdcardAgg) Step(args []gsql.Value) error {
	ts := args[1].AsFloat()
	a.s.Observe(uint64(args[0].AsInt()), ts)
	a.see(ts)
	return nil
}

func (a *fdcardAgg) Final() gsql.Value { return gsql.Float(a.s.Value(a.last)) }

func (a *fdcardAgg) Merge(o gsql.Aggregator) error {
	oa, err := mergeAs[*fdcardAgg]("fdcard", o)
	if err != nil {
		return err
	}
	a.fold(&oa.lastTS)
	return a.s.Merge(oa.s)
}

func (a *fdcardAgg) ShiftLandmark(newL float64) error { return a.s.ShiftLandmark(newL) }
func (a *fdcardAgg) Landmark() float64                { return a.s.Model().Landmark }

func (a *fdcardAgg) MarshalBinary() ([]byte, error) { return a.appendLast(a.s.MarshalBinary()) }
func (a *fdcardAgg) UnmarshalBinary(b []byte) error {
	rest, err := a.splitLast("fdcard", b)
	if err != nil {
		return err
	}
	return a.s.UnmarshalBinary(rest)
}

// --- samplers -----------------------------------------------------------

type fdprisampAgg struct {
	s *sample.ForwardPriority[gsql.Value]
	lastTS
}

func (a *fdprisampAgg) Step(args []gsql.Value) error {
	ts := args[1].AsFloat()
	a.s.Observe(args[0], ts)
	a.see(ts)
	return nil
}

func (a *fdprisampAgg) Final() gsql.Value {
	ws := a.s.Sample(a.last)
	items := make([]gsql.Value, len(ws))
	for i, w := range ws {
		items[i] = w.Item
	}
	return renderSample(items)
}

func (a *fdprisampAgg) ShiftLandmark(newL float64) error { return a.s.ShiftLandmark(newL) }
func (a *fdprisampAgg) Landmark() float64                { return a.s.Model().Landmark }

type fdwrsampAgg struct {
	s *sample.ForwardWRS[gsql.Value]
}

func (a *fdwrsampAgg) Step(args []gsql.Value) error {
	a.s.Observe(args[0], args[1].AsFloat())
	return nil
}

func (a *fdwrsampAgg) Final() gsql.Value { return renderSample(a.s.Sample()) }

func (a *fdwrsampAgg) ShiftLandmark(newL float64) error { return a.s.ShiftLandmark(newL) }
func (a *fdwrsampAgg) Landmark() float64                { return a.s.Model().Landmark }
