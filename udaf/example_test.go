package udaf_test

import (
	"fmt"

	"forwarddecay/gsql"
	"forwarddecay/udaf"
)

// Registering the UDAF suite lets queries call the paper's aggregates —
// here the weighted SpaceSaving heavy hitters under quadratic forward
// decay, on the Example 3 stream.
func ExampleRegisterAll() {
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		fmt.Println(err)
		return
	}
	if err := udaf.RegisterAll(e, udaf.Config{Epsilon: 0.1, Phi: 0.2}); err != nil {
		fmt.Println(err)
		return
	}
	// The weight (time%60)²/3600 is the §IV-A quadratic decay; the /3600
	// normalizer cancels in the heavy-hitter threshold, so the raw square
	// works as the UDAF weight.
	st, err := e.Prepare(`select tb, sshh(len, float((time % 60)*(time % 60)))
	                      from TCP group by time/60 as tb`)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Example 1/3 stream: "values" carried in the len column.
	pkt := func(sec, v int64) gsql.Tuple {
		return gsql.Tuple{gsql.Int(sec), gsql.Float(float64(sec)), gsql.Int(0),
			gsql.Int(1), gsql.Int(0), gsql.Int(80), gsql.Int(6), gsql.Int(v)}
	}
	tuples := []gsql.Tuple{
		pkt(605, 4), pkt(607, 8), pkt(603, 3), pkt(608, 6), pkt(604, 4),
	}
	rows, err := st.Execute(gsql.SliceSource(tuples), gsql.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(rows[0][1])
	// Output: 6:64,8:49,4:41
}
