package udaf

import (
	"strconv"
	"strings"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/netgen"
)

func newEngine(t *testing.T, cfg Config) *gsql.Engine {
	t.Helper()
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		t.Fatal(err)
	}
	if err := RegisterAll(e, cfg); err != nil {
		t.Fatal(err)
	}
	return e
}

// packetTuples generates n packet tuples.
func packetTuples(n int, rate float64, seed uint64) []gsql.Tuple {
	g := netgen.New(netgen.DefaultConfig(rate, seed))
	out := make([]gsql.Tuple, n)
	for i := range out {
		out[i] = netgen.Tuple(g.Next())
	}
	return out
}

func runQuery(t *testing.T, e *gsql.Engine, q string, tuples []gsql.Tuple) []gsql.Tuple {
	t.Helper()
	st, err := e.Prepare(q)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	rows, err := st.Execute(gsql.SliceSource(tuples), gsql.Options{})
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	return rows
}

// TestPaperSamplingQuery runs the paper's Figure 3 query shape:
// a per-minute priority sample under exponential forward decay, with the
// landmark at the start of each minute, expressed purely in GSQL.
func TestPaperSamplingQuery(t *testing.T) {
	e := newEngine(t, Config{SampleSize: 10})
	tuples := packetTuples(50000, 500, 1)
	rows := runQuery(t, e,
		`select tb, prisamp(srcIP, float(time % 60)) from TCP group by time/60 as tb`,
		tuples)
	if len(rows) < 1 {
		t.Fatal("no output rows")
	}
	// Each row's sample must contain SampleSize items (minutes have
	// thousands of packets).
	got := strings.Split(rows[0][1].S, ",")
	if len(got) != 10 {
		t.Errorf("sample size %d, want 10 (row %v)", len(got), rows[0])
	}
	for _, s := range got {
		if _, err := strconv.ParseInt(s, 10, 64); err != nil {
			t.Errorf("sample item %q is not an integer", s)
		}
	}
}

func TestSamplingUDAFVariants(t *testing.T) {
	e := newEngine(t, Config{SampleSize: 5})
	tuples := packetTuples(20000, 300, 2)
	for _, q := range []string{
		`select tb, wrsamp(srcIP, float(time % 60)) from TCP group by time/60 as tb`,
		`select tb, ressamp(srcIP) from TCP group by time/60 as tb`,
		`select tb, aggsamp(srcIP) from TCP group by time/60 as tb`,
	} {
		rows := runQuery(t, e, q, tuples)
		if len(rows) == 0 || rows[0][1].S == "" {
			t.Errorf("query %q produced no sample", q)
		}
	}
}

// TestHeavyHitterUDAFsAgree runs the forward (sshh with quadratic weights),
// unary and sliding-window HH UDAFs over the same stream and checks the
// top reported key matches across methods (the dominant destination is
// unambiguous under Zipf skew).
func TestHeavyHitterUDAFsAgree(t *testing.T) {
	e := newEngine(t, Config{Epsilon: 0.01, Phi: 0.05, Window: 60})
	tuples := packetTuples(60000, 1000, 3)
	// Use the first (complete) minute bucket: the final bucket may hold only
	// a moment of traffic, where quadratic forward weights are still ~0.
	topOf := func(q string) string {
		rows := runQuery(t, e, q, tuples)
		if len(rows) == 0 || rows[0][1].S == "" {
			t.Fatalf("query %q: no heavy hitters", q)
		}
		first := strings.SplitN(rows[0][1].S, ",", 2)[0]
		return strings.SplitN(first, ":", 2)[0]
	}
	fwd := topOf(`select tb, sshh(dstIP, float((time%60)*(time%60))) from TCP group by time/60 as tb`)
	una := topOf(`select tb, unaryhh(dstIP) from TCP group by time/60 as tb`)
	sw := topOf(`select tb, swhh(dstIP, ftime, float(1)) from TCP group by time/60 as tb`)
	if fwd != una || una != sw {
		t.Errorf("top heavy hitter disagrees: fwd=%s unary=%s sw=%s", fwd, una, sw)
	}
}

func TestEHSumUDAF(t *testing.T) {
	e := newEngine(t, Config{Epsilon: 0.05, Window: 60, EHDecay: decay.NewAgePoly(1)})
	tuples := packetTuples(30000, 500, 4)
	rows := runQuery(t, e, `select tb, ehsum(ftime, float(len)) from TCP group by time/60 as tb`, tuples)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		v := r[1].AsFloat()
		if v <= 0 {
			t.Errorf("ehsum row %v not positive", r)
		}
	}
}

func TestFDQuantUDAF(t *testing.T) {
	e := newEngine(t, Config{Epsilon: 0.02, QuantileU: 2048, QuantilePhi: 0.5})
	tuples := packetTuples(30000, 500, 5)
	rows := runQuery(t, e, `select tb, fdquant(len, 2*ln(time % 60 + 1)) from TCP group by time/60 as tb`, tuples)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	med := rows[0][1].AsInt()
	// Packet lengths are 40–1500; a median outside that is wrong.
	if med < 40 || med > 1500 {
		t.Errorf("median packet length %d outside [40,1500]", med)
	}
}

// TestSSHHMergeableTwoLevel verifies the weighted SpaceSaving UDAF supports
// the two-level split and produces equivalent heavy hitters either way.
func TestSSHHMergeableTwoLevel(t *testing.T) {
	tuples := packetTuples(40000, 800, 6)
	q := `select tb, sshh(dstIP, float(1)) from TCP group by time/60 as tb`

	topK := func(opts gsql.Options) string {
		e := newEngine(t, Config{Epsilon: 0.005, Phi: 0.05})
		st, err := e.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		if !st.Mergeable() {
			t.Fatal("sshh must be mergeable")
		}
		rows, err := st.Execute(gsql.SliceSource(tuples), opts)
		if err != nil {
			t.Fatal(err)
		}
		// Compare top-3 keys only: merge order may perturb deep ties.
		parts := strings.Split(rows[0][1].S, ",")
		if len(parts) > 3 {
			parts = parts[:3]
		}
		for i := range parts {
			parts[i] = strings.SplitN(parts[i], ":", 2)[0]
		}
		return strings.Join(parts, ",")
	}
	a := topK(gsql.Options{LowLevelSlots: 64})
	b := topK(gsql.Options{DisableTwoLevel: true})
	if a != b {
		t.Errorf("two-level top-3 %q != single-level %q", a, b)
	}
}

// TestFDDistinctUDAF checks the dominance-norm UDAF against the exact
// decayed distinct count on a per-minute query.
func TestFDDistinctUDAF(t *testing.T) {
	e := newEngine(t, Config{})
	tuples := packetTuples(40000, 800, 9)
	rows := runQuery(t, e,
		`select tb, fddistinct(dstIP, 2*ln(float(time % 60)+1)) from TCP group by time/60 as tb`,
		tuples)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Exact dominance norm for the first minute.
	maxW := map[int64]float64{}
	for _, tu := range tuples {
		if tu[0].AsInt()/60 != rows[0][0].AsInt() {
			continue
		}
		n := float64(tu[0].AsInt()%60) + 1
		w := n * n
		if w > maxW[tu[3].AsInt()] {
			maxW[tu[3].AsInt()] = w
		}
	}
	var want float64
	for _, w := range maxW {
		want += w
	}
	got := rows[0][1].AsFloat()
	if got < 0.7*want || got > 1.3*want {
		t.Errorf("fddistinct = %v, want %v ± 30%%", got, want)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.SampleSize != 100 || c.Epsilon != 0.01 || c.Window != 60 ||
		c.EHDecay == nil || c.Phi != 0.01 || c.Seed != 1 ||
		c.QuantileU != 65536 || c.QuantilePhi != 0.5 {
		t.Errorf("defaults wrong: %+v", c)
	}
}
