// Package udaf adapts the forward-decay algorithms and the backward-decay
// baselines to gsql user-defined aggregate functions, mirroring the way the
// paper's experiments install their C UDAFs into Gigascope: no query
// language extensions, just registered aggregates.
//
// The registered functions (all case-insensitive in queries):
//
//	prisamp(item, logw)   priority sampling with weight exp(logw) (§V-B);
//	                      pass the forward-decay static log-weight, e.g.
//	                      prisamp(srcIP, 2*ln(time % 60)) for g(n)=n²
//	wrsamp(item, logw)    weighted reservoir sampling (Efraimidis–Spirakis)
//	ressamp(item)         undecayed reservoir sampling (Vitter) — baseline
//	aggsamp(item)         Aggarwal biased reservoir — exponential-decay
//	                      baseline
//	sshh(key, w)          weighted SpaceSaving heavy hitters (Theorem 2);
//	                      w is the linear-domain weight (e.g. (time%60)*
//	                      (time%60) for quadratic forward decay)
//	unaryhh(key)          unary-optimised SpaceSaving — undecayed baseline
//	swhh(key, ts, w)      sliding-window heavy hitters — backward baseline
//	ehsum(ts, v)          backward-decayable sum over an Exponential
//	                      Histogram (Cohen–Strauss) — the Figure 2 baseline
//	fdquant(v, logw)      weighted q-digest quantiles (Theorem 3)
//	fddistinct(key, logw) decayed count-distinct via the dominance-norm
//	                      estimator (Theorem 4); returns the unnormalized
//	                      dominance norm Σ_v max exp(logw)
//
// Sampling and heavy-hitter UDAFs return a string rendering of their result
// (samples, or "key:count" pairs); ehsum returns the sliding-window sum and
// is decayed at query time through the Config's age function.
//
// Config fixes the parameters (sample sizes, ε, window, decay for ehsum)
// that GSQL's aggregate syntax does not carry per-call.
package udaf

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"forwarddecay/decay"
	"forwarddecay/gsql"
	"forwarddecay/sample"
	"forwarddecay/sketch"
	"forwarddecay/window"
)

// Config parameterizes the registered UDAFs.
type Config struct {
	// SampleSize is the k of the sampling UDAFs (default 100).
	SampleSize int
	// Epsilon is the accuracy of sshh, unaryhh, swhh and ehsum
	// (default 0.01).
	Epsilon float64
	// Window is the sliding-window length for swhh and the horizon for
	// ehsum, in timestamp units (default 60).
	Window float64
	// EHDecay is the backward decay applied by ehsum at bucket-close time
	// (default sliding window over Window).
	EHDecay decay.AgeFunc
	// Phi is the heavy-hitter threshold used when rendering HH results
	// (default 0.01).
	Phi float64
	// Seed seeds the randomized UDAFs.
	Seed uint64
	// QuantileU is the value domain of fdquant (default 65536); QuantilePhi
	// the reported quantile (default 0.5).
	QuantileU   uint64
	QuantilePhi float64
	// Decay, when its Func is set, additionally registers the epoch-aware
	// fd* aggregate family (fdcount, fdsum, fdavg, fdvar, fdmin, fdmax,
	// fdhh, fdpct, fdcard, fdprisamp, fdwrsamp — see epoch.go): these take
	// raw timestamps, carry the model internally, and support runtime-wide
	// landmark rollover via gsql's epoch supervisor. Leaving it unset keeps
	// the registration surface exactly as before.
	Decay decay.Forward
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.SampleSize == 0 {
		c.SampleSize = 100
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.01
	}
	if c.Window == 0 {
		c.Window = 60
	}
	if c.EHDecay == nil {
		c.EHDecay = decay.NewSlidingWindow(c.Window)
	}
	if c.Phi == 0 {
		c.Phi = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.QuantileU == 0 {
		c.QuantileU = 65536
	}
	if c.QuantilePhi == 0 {
		c.QuantilePhi = 0.5
	}
	return c
}

// RegisterAll installs every UDAF into the engine.
func RegisterAll(e *gsql.Engine, cfg Config) error {
	cfg = cfg.withDefaults()
	specs := []gsql.AggSpec{
		{Name: "prisamp", MinArgs: 2, MaxArgs: 2,
			New: func() gsql.Aggregator {
				return &prisampAgg{s: sample.NewPriority[gsql.Value](cfg.SampleSize, cfg.Seed)}
			}},
		{Name: "wrsamp", MinArgs: 2, MaxArgs: 2,
			New: func() gsql.Aggregator {
				return &wrsampAgg{s: sample.NewWRS[gsql.Value](cfg.SampleSize, cfg.Seed)}
			}},
		{Name: "ressamp", MinArgs: 1, MaxArgs: 1,
			New: func() gsql.Aggregator {
				return &ressampAgg{s: sample.NewReservoir[gsql.Value](cfg.SampleSize, cfg.Seed)}
			}},
		{Name: "aggsamp", MinArgs: 1, MaxArgs: 1,
			New: func() gsql.Aggregator {
				return &aggsampAgg{s: sample.NewAggarwal[gsql.Value](cfg.SampleSize, cfg.Seed)}
			}},
		{Name: "sshh", MinArgs: 2, MaxArgs: 2, Mergeable: true,
			New: func() gsql.Aggregator {
				return &sshhAgg{s: sketch.NewSpaceSaving(cfg.Epsilon), phi: cfg.Phi}
			}},
		{Name: "unaryhh", MinArgs: 1, MaxArgs: 1,
			New: func() gsql.Aggregator {
				return &unaryhhAgg{s: sketch.NewStreamSummary(int(1 / cfg.Epsilon)), phi: cfg.Phi}
			}},
		{Name: "swhh", MinArgs: 3, MaxArgs: 3,
			New: func() gsql.Aggregator {
				return &swhhAgg{s: window.NewHeavyHitters(cfg.Window, cfg.Epsilon), phi: cfg.Phi}
			}},
		{Name: "ehsum", MinArgs: 2, MaxArgs: 2,
			New: func() gsql.Aggregator {
				return &ehsumAgg{s: sketch.NewExpHistogram(cfg.Epsilon, cfg.Window), f: cfg.EHDecay}
			}},
		{Name: "fdquant", MinArgs: 2, MaxArgs: 2,
			New: func() gsql.Aggregator {
				return &fdquantAgg{s: sketch.NewQDigest(cfg.QuantileU, cfg.Epsilon), phi: cfg.QuantilePhi}
			}},
		{Name: "fddistinct", MinArgs: 2, MaxArgs: 2, Mergeable: true,
			New: func() gsql.Aggregator {
				return &fddistinctAgg{s: sketch.NewDominance(1024, 1.05, 1024)}
			}},
	}
	if cfg.Decay.Func != nil {
		specs = append(specs, epochSpecs(cfg)...)
	}
	for _, s := range specs {
		if err := e.RegisterUDAF(s); err != nil {
			return fmt.Errorf("udaf: registering %s: %w", s.Name, err)
		}
	}
	return nil
}

// renderSample joins sampled values compactly.
func renderSample(items []gsql.Value) gsql.Value {
	parts := make([]string, len(items))
	for i, v := range items {
		parts[i] = v.String()
	}
	sort.Strings(parts)
	return gsql.Str(strings.Join(parts, ","))
}

// renderHH renders heavy hitters as "key:count" pairs in decreasing count
// order.
func renderHH(items []sketch.ItemCount) gsql.Value {
	parts := make([]string, len(items))
	for i, ic := range items {
		parts[i] = fmt.Sprintf("%d:%.6g", ic.Key, ic.Count)
	}
	return gsql.Str(strings.Join(parts, ","))
}

type prisampAgg struct {
	s *sample.Priority[gsql.Value]
}

func (a *prisampAgg) Step(args []gsql.Value) error {
	a.s.Add(args[0], args[1].AsFloat())
	return nil
}

func (a *prisampAgg) Final() gsql.Value {
	ws := a.s.Sample(0)
	items := make([]gsql.Value, len(ws))
	for i, w := range ws {
		items[i] = w.Item
	}
	return renderSample(items)
}

type wrsampAgg struct {
	s *sample.WRS[gsql.Value]
}

func (a *wrsampAgg) Step(args []gsql.Value) error {
	a.s.Add(args[0], args[1].AsFloat())
	return nil
}

func (a *wrsampAgg) Final() gsql.Value { return renderSample(a.s.Sample()) }

type ressampAgg struct {
	s *sample.Reservoir[gsql.Value]
}

func (a *ressampAgg) Step(args []gsql.Value) error { a.s.Add(args[0]); return nil }
func (a *ressampAgg) Final() gsql.Value            { return renderSample(a.s.Sample()) }

type aggsampAgg struct {
	s *sample.Aggarwal[gsql.Value]
}

func (a *aggsampAgg) Step(args []gsql.Value) error { a.s.Add(args[0]); return nil }
func (a *aggsampAgg) Final() gsql.Value            { return renderSample(a.s.Sample()) }

type sshhAgg struct {
	s   *sketch.SpaceSaving
	phi float64
}

func (a *sshhAgg) Step(args []gsql.Value) error {
	a.s.Update(uint64(args[0].AsInt()), args[1].AsFloat())
	return nil
}

func (a *sshhAgg) Final() gsql.Value { return renderHH(a.s.HeavyHitters(a.phi)) }

func (a *sshhAgg) Merge(o gsql.Aggregator) error {
	oa, ok := o.(*sshhAgg)
	if !ok {
		return fmt.Errorf("udaf: sshh: cannot merge %T", o)
	}
	a.s.Merge(oa.s)
	return nil
}

type unaryhhAgg struct {
	s   *sketch.StreamSummary
	phi float64
}

func (a *unaryhhAgg) Step(args []gsql.Value) error {
	a.s.Update(uint64(args[0].AsInt()))
	return nil
}

func (a *unaryhhAgg) Final() gsql.Value { return renderHH(a.s.HeavyHitters(a.phi)) }

type swhhAgg struct {
	s    *window.HeavyHitters
	phi  float64
	last float64
}

func (a *swhhAgg) Step(args []gsql.Value) error {
	ts := args[1].AsFloat()
	a.s.Observe(uint64(args[0].AsInt()), ts, args[2].AsFloat())
	if ts > a.last {
		a.last = ts
	}
	return nil
}

func (a *swhhAgg) Final() gsql.Value { return renderHH(a.s.Query(a.last, a.phi)) }

type ehsumAgg struct {
	s    *sketch.ExpHistogram
	f    decay.AgeFunc
	last float64
}

func (a *ehsumAgg) Step(args []gsql.Value) error {
	ts := args[0].AsFloat()
	a.s.Insert(ts, args[1].AsFloat())
	if ts > a.last {
		a.last = ts
	}
	return nil
}

func (a *ehsumAgg) Final() gsql.Value { return gsql.Float(a.s.DecayedSum(a.f, a.last)) }

type fdquantAgg struct {
	s   *sketch.QDigest
	phi float64
}

func (a *fdquantAgg) Step(args []gsql.Value) error {
	lw := args[1].AsFloat()
	// Static weights arrive in the log domain for symmetry with the
	// samplers; small decayed queries stay in range, so exponentiate.
	w := 1.0
	if lw != 0 {
		w = expSafe(lw)
	}
	a.s.Update(uint64(args[0].AsInt()), w)
	return nil
}

func (a *fdquantAgg) Final() gsql.Value { return gsql.Int(int64(a.s.Quantile(a.phi))) }

type fddistinctAgg struct {
	s *sketch.Dominance
}

func (a *fddistinctAgg) Step(args []gsql.Value) error {
	a.s.Update(uint64(args[0].AsInt()), args[1].AsFloat())
	return nil
}

func (a *fddistinctAgg) Final() gsql.Value {
	return gsql.Float(math.Exp(a.s.LogEstimate()))
}

func (a *fddistinctAgg) Merge(o gsql.Aggregator) error {
	oa, ok := o.(*fddistinctAgg)
	if !ok {
		return fmt.Errorf("udaf: fddistinct: cannot merge %T", o)
	}
	a.s.Merge(oa.s)
	return nil
}

// expSafe is a clamped exponential for UDAF weights.
func expSafe(x float64) float64 {
	if x > 300 {
		x = 300
	}
	if x < -300 {
		return 0
	}
	return math.Exp(x)
}
