package durable

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"forwarddecay/internal/faultinject"
)

// TestWriteFileAtomicReplaces: the happy path replaces the target and leaves
// no temp file behind.
func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2-longer" {
		t.Fatalf("content = %q, want %q", got, "v2-longer")
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestWriteFileAtomicSyncFailure: a failed fsync (the power-cut drill's
// stand-in) must propagate AND leave the previous file contents untouched —
// the whole point of syncing before the rename.
func TestWriteFileAtomicSyncFailure(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	if err := WriteFileAtomic(path, []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}
	injected := errors.New("simulated device failure at fsync")
	faultinject.Set("durable.sync", faultinject.Fault{ErrEvery: 1, Err: injected})
	err := WriteFileAtomic(path, []byte("torn"), 0o644)
	if !errors.Is(err, injected) {
		t.Fatalf("err = %v, want wrapped %v", err, injected)
	}
	got, err2 := os.ReadFile(path)
	if err2 != nil {
		t.Fatal(err2)
	}
	if string(got) != "good" {
		t.Fatalf("target corrupted by failed write: %q", got)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind after failed sync: %v", err)
	}
}

// TestWriteFileAtomicDirSyncFailure: a failed directory sync surfaces too —
// the rename has happened (the new content is visible) but the caller must
// learn the name change may not be durable.
func TestWriteFileAtomicDirSyncFailure(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	path := filepath.Join(dir, "state.bin")
	injected := errors.New("simulated device failure at dir fsync")
	faultinject.Set("durable.dirsync", faultinject.Fault{ErrEvery: 1, Err: injected})
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); !errors.Is(err, injected) {
		t.Fatalf("err = %v, want wrapped %v", err, injected)
	}
}

// TestSyncDirMissing: syncing a nonexistent directory reports an error
// instead of silently succeeding.
func TestSyncDirMissing(t *testing.T) {
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing directory succeeded")
	}
}
