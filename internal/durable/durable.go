// Package durable centralizes the filesystem durability discipline for the
// repository's checkpoint, sidecar and write-ahead-log writers.
//
// The write-temp-then-rename idiom those writers all use protects against a
// crash mid-write corrupting the last good file — but rename alone only
// orders the *names*, not the *bytes*: after a power cut the filesystem may
// expose the new name over an unwritten (empty or partial) inode, eating the
// "atomic" write. The fix is the classic three-sync dance, kept in one place
// so every caller gets it right: fsync the temp file before rename (its
// bytes are durable before its name is), rename, then fsync the directory
// (the name change itself is durable). Process crashes never needed the
// syncs — the page cache survives them — but power loss and kernel panics
// do. Every sync routes through a faultinject point so the durability
// drills can prove the error paths leave the previous file intact.
package durable

import (
	"fmt"
	"os"
	"path/filepath"

	"forwarddecay/internal/faultinject"
)

// WriteFileAtomic durably replaces path with data: write to a temp file in
// the same directory, fsync it, rename over path, fsync the directory. On
// any error the target is untouched (the temp file is removed best-effort)
// and the previous contents remain readable.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := SyncFile(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: sync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("atomic write %s: %w", path, err)
	}
	return SyncDir(dir)
}

// SyncFile fsyncs an open file through the shared fault point, so WAL-style
// writers (which manage their own handles) share the drill coverage.
func SyncFile(f *os.File) error {
	if err := faultinject.Hit("durable.sync"); err != nil {
		return err
	}
	return f.Sync()
}

// SyncDir fsyncs a directory, making recent renames, creates and removes in
// it durable. Filesystems that refuse directory fsync (some network mounts)
// report an error; callers treat that as a real durability failure.
func SyncDir(dir string) error {
	if err := faultinject.Hit("durable.dirsync"); err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("sync dir %s: %w", dir, err)
	}
	return nil
}
