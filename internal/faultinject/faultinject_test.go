package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestDisarmedHitIsFree(t *testing.T) {
	Reset()
	for i := 0; i < 100; i++ {
		if err := Hit("nowhere"); err != nil {
			t.Fatalf("disarmed Hit returned %v", err)
		}
	}
}

func TestPanicAtNthHit(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("p", Fault{PanicAt: 3})
	for i := 1; i <= 2; i++ {
		if err := Hit("p"); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		r := recover()
		pe, ok := r.(PanicError)
		if !ok || pe.Point != "p" {
			t.Fatalf("recovered %v, want PanicError at p", r)
		}
		if got := Hits("p"); got != 3 {
			t.Fatalf("hits = %d, want 3", got)
		}
	}()
	Hit("p")
	t.Fatal("third hit did not panic")
}

func TestErrAtNthHit(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	sentinel := errors.New("boom")
	Set("e", Fault{ErrAt: 2, Err: sentinel})
	if err := Hit("e"); err != nil {
		t.Fatal(err)
	}
	if err := Hit("e"); !errors.Is(err, sentinel) {
		t.Fatalf("second hit: %v, want sentinel", err)
	}
	if err := Hit("e"); err != nil {
		t.Fatalf("third hit: %v, want nil", err)
	}
}

func TestDelayAt(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Set("d", Fault{DelayAt: 1, Delay: 30 * time.Millisecond})
	start := time.Now()
	Hit("d")
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("delayed hit took only %v", elapsed)
	}
	start = time.Now()
	Hit("d")
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Fatalf("undelayed hit took %v", elapsed)
	}
}

func TestPanicProbDeterministic(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	run := func() (panics int) {
		Set("pp", Fault{PanicProb: 0.3, Seed: 42})
		for i := 0; i < 200; i++ {
			func() {
				defer func() {
					if recover() != nil {
						panics++
					}
				}()
				Hit("pp")
			}()
		}
		return panics
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed produced %d then %d panics", a, b)
	}
	if a == 0 || a == 200 {
		t.Fatalf("prob 0.3 produced %d/200 panics", a)
	}
}

func TestCorruptByte(t *testing.T) {
	data := []byte("hello checkpoint bytes")
	for seed := uint64(0); seed < 64; seed++ {
		out := CorruptByte(data, seed)
		if len(out) != len(data) {
			t.Fatalf("seed %d: length changed", seed)
		}
		if bytes.Equal(out, data) {
			t.Fatalf("seed %d: corruption was a no-op", seed)
		}
		again := CorruptByte(data, seed)
		if !bytes.Equal(out, again) {
			t.Fatalf("seed %d: corruption not deterministic", seed)
		}
	}
	if got := CorruptByte(nil, 1); len(got) != 0 {
		t.Fatal("corrupting empty input grew it")
	}
}
