package faultinject

import "testing"

func TestSoakScheduleDeterministic(t *testing.T) {
	cfg := SoakConfig{
		Seed:            42,
		Start:           1000,
		Duration:        100000,
		MeanGap:         30,
		Keys:            8,
		HeartbeatEvery:  500,
		CheckpointEvery: 2000,
		CrashEvery:      10000,
		CorruptEvery:    7000,
	}
	a := SoakSchedule(cfg)
	b := SoakSchedule(cfg)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSoakScheduleOrderedAndTyped(t *testing.T) {
	cfg := SoakConfig{Seed: 7, Start: 0, Duration: 50000, MeanGap: 20,
		HeartbeatEvery: 300, CheckpointEvery: 1500, CrashEvery: 9000, CorruptEvery: 4000}
	ev := SoakSchedule(cfg)
	counts := map[SoakOp]int{}
	for i, e := range ev {
		if i > 0 && e.T < ev[i-1].T {
			t.Fatalf("event %d out of order: %g after %g", i, e.T, ev[i-1].T)
		}
		if e.T < cfg.Start || e.T >= cfg.Start+cfg.Duration {
			t.Fatalf("event %d time %g outside [%g, %g)", i, e.T, cfg.Start, cfg.Start+cfg.Duration)
		}
		if e.Op == SoakTuple && e.T != float64(int64(e.T)) {
			t.Fatalf("tuple %d has non-integer time %g", i, e.T)
		}
		counts[e.Op]++
	}
	for _, op := range []SoakOp{SoakTuple, SoakHeartbeat, SoakCheckpoint, SoakCrash, SoakCorrupt} {
		if counts[op] == 0 {
			t.Fatalf("no %v events scheduled", op)
		}
	}
	// Seeds must matter: a different seed yields a different tuple tape.
	cfg2 := cfg
	cfg2.Seed = 8
	ev2 := SoakSchedule(cfg2)
	same := len(ev) == len(ev2)
	if same {
		for i := range ev {
			if ev[i] != ev2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}
