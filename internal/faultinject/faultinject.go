// Package faultinject provides deterministic, seeded fault injection for
// the runtime's robustness tests: panic at the Nth hit of a named point,
// return an error at the Nth hit, delay a hit, or corrupt a checkpoint
// byte. The package is internal — only this repository's tests can arm it —
// and when nothing is armed every instrumentation point reduces to a single
// atomic load, so the production paths carry no measurable cost and no
// behavioral change.
//
// Instrumented code calls Hit(point) at a fault point; tests arm faults
// with Set and disarm them with Reset. All scheduling is by deterministic
// hit counts (and, for probabilistic faults, a seeded counter-based draw),
// never by wall-clock or global randomness, so every failure a test
// provokes is exactly reproducible.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"forwarddecay/internal/core"
)

// Fault describes what should happen at a named instrumentation point.
// Hit counts are 1-based; a zero field disables that behavior.
type Fault struct {
	// PanicAt panics on the Nth hit of the point.
	PanicAt uint64
	// ErrAt returns Err on the Nth hit of the point. ErrEvery returns Err
	// on every ErrEvery-th hit instead (1 = every hit, for persistent
	// failures).
	ErrAt    uint64
	ErrEvery uint64
	// Err is the error returned at ErrAt/ErrEvery (a generic error if nil).
	Err error
	// DelayAt sleeps Delay on the Nth hit. DelayEvery sleeps Delay on
	// every DelayEvery-th hit instead (for sustained slowness).
	DelayAt    uint64
	Delay      time.Duration
	DelayEvery uint64
	// PanicProb panics on each hit with this probability, drawn
	// deterministically from Seed and the hit count.
	PanicProb float64
	// Seed seeds the per-hit draw for PanicProb.
	Seed uint64
}

// armed holds a fault and its hit counter.
type armed struct {
	f    Fault
	hits atomic.Uint64
}

var (
	enabled atomic.Bool
	mu      sync.Mutex
	points  atomic.Value // map[string]*armed, replaced wholesale under mu
)

// Set arms (or replaces) the fault at a named point. The hit counter
// restarts from zero.
func Set(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	next := map[string]*armed{}
	if cur, _ := points.Load().(map[string]*armed); cur != nil {
		for k, v := range cur {
			next[k] = v
		}
	}
	next[point] = &armed{f: f}
	points.Store(next)
	enabled.Store(true)
}

// Reset disarms every fault point.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	enabled.Store(false)
	points.Store(map[string]*armed{})
}

// Hits reports how many times a point has been hit since it was armed.
func Hits(point string) uint64 {
	cur, _ := points.Load().(map[string]*armed)
	if a := cur[point]; a != nil {
		return a.hits.Load()
	}
	return 0
}

// PanicError is the value passed to panic by an injected panic, so
// recovery sites can recognize synthetic failures in tests.
type PanicError struct{ Point string }

func (e PanicError) Error() string { return "faultinject: injected panic at " + e.Point }

// Hit is called by instrumented production code at a named fault point. It
// returns nil (after a single atomic load) unless a test has armed a fault
// there, in which case it panics, sleeps, or returns the armed error
// according to the fault's schedule.
func Hit(point string) error {
	if !enabled.Load() {
		return nil
	}
	cur, _ := points.Load().(map[string]*armed)
	a := cur[point]
	if a == nil {
		return nil
	}
	n := a.hits.Add(1)
	f := &a.f
	if f.Delay > 0 {
		if n == f.DelayAt || (f.DelayEvery > 0 && n%f.DelayEvery == 0) {
			time.Sleep(f.Delay)
		}
	}
	if n == f.PanicAt {
		panic(PanicError{Point: point})
	}
	if f.PanicProb > 0 {
		// Counter-based deterministic draw: same seed, same hit, same fate.
		if core.U64ToUnit(core.Hash2(f.Seed, n)) < f.PanicProb {
			panic(PanicError{Point: point})
		}
	}
	if n == f.ErrAt || (f.ErrEvery > 0 && n%f.ErrEvery == 0) {
		if f.Err != nil {
			return f.Err
		}
		return fmt.Errorf("faultinject: injected error at %s (hit %d)", point, n)
	}
	return nil
}

// CorruptByte returns a copy of data with one byte deterministically
// flipped: the position and XOR mask both derive from seed, and the mask is
// never zero, so the copy always differs from the input. It is the tests'
// tool for exercising corrupt-checkpoint handling. Empty input is returned
// unchanged.
func CorruptByte(data []byte, seed uint64) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	h := core.Mix64(seed)
	pos := int(h % uint64(len(out)))
	mask := byte(h >> 32)
	if mask == 0 {
		mask = 0xa5
	}
	out[pos] ^= mask
	return out
}
