package faultinject_test

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"forwarddecay/ingest"
	"forwarddecay/internal/faultinject"
)

// captureServer accepts connections sequentially and records every byte
// received, per connection.
type captureServer struct {
	ln net.Listener
	mu sync.Mutex
	bb [][]byte
}

func newCaptureServer(t *testing.T) *captureServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &captureServer{ln: ln}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.bb = append(s.bb, nil)
			idx := len(s.bb) - 1
			s.mu.Unlock()
			buf := make([]byte, 4096)
			for {
				n, err := c.Read(buf)
				if n > 0 {
					s.mu.Lock()
					s.bb[idx] = append(s.bb[idx], buf[:n]...)
					s.mu.Unlock()
				}
				if err != nil {
					c.Close()
					break
				}
			}
		}
	}()
	return s
}

func (s *captureServer) conns() [][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]byte, len(s.bb))
	for i, b := range s.bb {
		out[i] = append([]byte(nil), b...)
	}
	return out
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProxyFaultDeterminism: frames pass through verbatim until the
// scheduled index; OpCorrupt flips exactly one body byte; OpCut severs the
// client at exactly the scheduled frame; frame counting continues across
// reconnections.
func TestProxyFaultDeterminism(t *testing.T) {
	upstream := newCaptureServer(t)
	proxy, err := faultinject.NewProxy(upstream.ln.Addr().String(), 7, []faultinject.Rule{
		{Frame: 2, Op: faultinject.OpCorrupt},
		{Frame: 3, Op: faultinject.OpDuplicate},
		{Frame: 4, Op: faultinject.OpCut},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	f1 := ingest.AppendHello(nil, 1)
	f2 := ingest.AppendAck(nil, 2) // stand-in frames; the proxy is payload-agnostic
	f3 := ingest.AppendAck(nil, 3)
	f4 := ingest.AppendAck(nil, 4)

	c, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range [][]byte{f1, f2, f3, f4} {
		if _, err := c.Write(f); err != nil {
			t.Fatalf("write through proxy: %v", err)
		}
	}
	// Frame 4 hits OpCut: the proxy severs us, visible as EOF/reset.
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil || err == io.EOF && false {
		t.Fatal("expected the proxy to sever the connection at frame 4")
	}
	c.Close()
	waitFor(t, func() bool { return proxy.Frames() >= 4 })

	want := len(f1) + len(f2) + 2*len(f3) // f4 dropped by the cut
	waitFor(t, func() bool {
		cc := upstream.conns()
		return len(cc) == 1 && len(cc[0]) == want
	})
	got := upstream.conns()[0]

	// f1 passed verbatim.
	if string(got[:len(f1)]) != string(f1) {
		t.Fatal("frame 1 was altered in transit")
	}
	// f2 arrived with its header intact and exactly one body byte flipped.
	g2 := got[len(f1) : len(f1)+len(f2)]
	if string(g2[:12]) != string(f2[:12]) {
		t.Fatal("OpCorrupt touched the frame header")
	}
	diff := 0
	for i := 12; i < len(f2); i++ {
		if g2[i] != f2[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("OpCorrupt flipped %d body bytes, want exactly 1", diff)
	}
	// f3 arrived twice, bit-identical.
	g3 := got[len(f1)+len(f2):]
	if string(g3[:len(f3)]) != string(f3) || string(g3[len(f3):]) != string(f3) {
		t.Fatal("OpDuplicate did not forward two identical copies")
	}

	// A reconnect gets a fresh upstream connection and the frame counter
	// keeps counting (frame 5 has no rule: verbatim).
	c2, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write(f1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		cc := upstream.conns()
		return len(cc) == 2 && len(cc[1]) == len(f1)
	})
	if proxy.Frames() != 5 {
		t.Fatalf("proxy counted %d frames, want 5 across both connections", proxy.Frames())
	}
}
