package faultinject

import (
	"encoding/binary"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"forwarddecay/internal/core"
)

// ProxyOp is one deterministic fault a Proxy applies to a client→server
// frame.
type ProxyOp uint8

const (
	// OpCut drops the frame and severs both connections — the client sees
	// a reset mid-stream and must reconnect and resend.
	OpCut ProxyOp = iota
	// OpCorrupt flips one body byte (seed-chosen) before forwarding, so the
	// server's checksum rejects the frame and quarantines it.
	OpCorrupt
	// OpDuplicate forwards the frame twice — the server's sequence dedup
	// must drop the second copy.
	OpDuplicate
	// OpDelay stalls the frame by Rule.Delay before forwarding.
	OpDelay
	// OpPartialCut writes half the frame, then severs both connections —
	// the server sees a truncated frame and quarantines it.
	OpPartialCut
)

// Rule schedules one fault at a cumulative client→server frame index
// (1-based, counted across all connections through the proxy, Hello frames
// included). Each rule fires at most once.
type Rule struct {
	// Frame is the 1-based cumulative frame index the rule fires on.
	Frame uint64
	// Op is the fault to apply.
	Op ProxyOp
	// Delay is the stall for OpDelay.
	Delay time.Duration
}

// Proxy is a deterministic fault-injecting TCP proxy for the ingest wire
// protocol. It is frame-aware on the client→server path: bytes are
// reassembled into whole frames (by length prefix — checksums are NOT
// verified, so corrupt frames pass through to the server under test) and
// counted, and scheduled Rules fire on exact frame indices. The
// server→client path is piped verbatim. Connections are served one at a
// time, matching the single-client ingest tests; each accepted client gets
// a fresh upstream connection.
type Proxy struct {
	ln       net.Listener
	upstream string
	rules    map[uint64]Rule
	seed     uint64

	frames atomic.Uint64 // cumulative client→server frames forwarded or faulted

	mu     sync.Mutex
	closed bool
	conns  []net.Conn
}

// NewProxy starts a proxy listening on a fresh localhost port, forwarding
// to upstream. The seed drives OpCorrupt's byte choice.
func NewProxy(upstream string, seed uint64, rules []Rule) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, upstream: upstream, rules: make(map[uint64]Rule, len(rules)), seed: seed}
	for _, r := range rules {
		p.rules[r.Frame] = r
	}
	go p.serve()
	return p, nil
}

// Addr returns the proxy's listen address — what the client should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Frames returns the cumulative number of client→server frames seen.
func (p *Proxy) Frames() uint64 { return p.frames.Load() }

// Close stops the proxy and severs every live connection.
func (p *Proxy) Close() {
	p.mu.Lock()
	p.closed = true
	conns := p.conns
	p.conns = nil
	p.mu.Unlock()
	p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
}

// track registers live connections for Close; returns false when closing.
func (p *Proxy) track(cs ...net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns = append(p.conns, cs...)
	return true
}

// serve accepts clients sequentially, bridging each to a fresh upstream.
func (p *Proxy) serve() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.DialTimeout("tcp", p.upstream, 2*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		if !p.track(client, server) {
			client.Close()
			server.Close()
			return
		}
		p.bridge(client, server)
	}
}

// bridge runs one client/upstream pair to completion: verbatim pipe
// downstream, frame-aware fault injection upstream.
func (p *Proxy) bridge(client, server net.Conn) {
	done := make(chan struct{})
	go func() {
		io.Copy(client, server) // server→client: verbatim
		client.Close()
		close(done)
	}()
	p.pumpFrames(client, server)
	client.Close()
	server.Close()
	<-done
}

// pumpFrames reassembles client→server frames and applies scheduled rules.
func (p *Proxy) pumpFrames(client, server net.Conn) {
	var hdr [12]byte
	for {
		if _, err := io.ReadFull(client, hdr[:]); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[:4])
		if n > 1<<24 {
			return // nonsense length; give up rather than allocate wildly
		}
		frame := make([]byte, 12+n)
		copy(frame, hdr[:])
		if _, err := io.ReadFull(client, frame[12:]); err != nil {
			return
		}
		idx := p.frames.Add(1)
		rule, ok := p.rules[idx]
		if !ok {
			if _, err := server.Write(frame); err != nil {
				return
			}
			continue
		}
		switch rule.Op {
		case OpCut:
			client.Close()
			server.Close()
			return
		case OpCorrupt:
			// Flip one body byte, header untouched: the checksum must fail.
			if n > 0 {
				off := 12 + int(core.Mix64(p.seed^idx)%uint64(n))
				frame[off] ^= 0xff
			}
			if _, err := server.Write(frame); err != nil {
				return
			}
		case OpDuplicate:
			if _, err := server.Write(frame); err != nil {
				return
			}
			if _, err := server.Write(frame); err != nil {
				return
			}
		case OpDelay:
			time.Sleep(rule.Delay)
			if _, err := server.Write(frame); err != nil {
				return
			}
		case OpPartialCut:
			server.Write(frame[:len(frame)/2])
			client.Close()
			server.Close()
			return
		}
	}
}
