package faultinject

// Deterministic chaos-soak schedules. A soak test replays a simulated
// multi-week stream against a runtime while interleaving faults — crashes,
// corrupt checkpoints, heartbeats, restores — and compares the result against
// a fault-free oracle fed the identical event sequence. Everything is a pure
// function of the seed, so a failing soak replays bit-for-bit.
//
// The scheduler lives here (and not in the runtime packages that consume it)
// so the same event tape can drive the serial gsql runtime, the sharded
// runtime, and the distributed coordinator without import cycles:
// faultinject imports nothing from this repository.

import "sort"

// SoakOp is the kind of one scheduled soak event.
type SoakOp uint8

const (
	// SoakTuple delivers one stream tuple (Key, Val at time T).
	SoakTuple SoakOp = iota
	// SoakHeartbeat advances stream time without data.
	SoakHeartbeat
	// SoakCheckpoint snapshots the subject runtime's state.
	SoakCheckpoint
	// SoakCrash kills the subject runtime; the harness restores it from the
	// latest checkpoint and replays the tuples delivered since.
	SoakCrash
	// SoakCorrupt hands the harness a corrupted copy of the latest
	// checkpoint, which a restore must refuse (the original stays good).
	SoakCorrupt

	// Site-churn events for elastic-cluster soaks. The events carry no site
	// id: the harness picks the victim deterministically from its own roster
	// state, so one tape drives clusters of any shape.

	// SoakRoll advances the subject's decay landmark (an epoch rollover).
	SoakRoll
	// SoakSiteAdd grows the cluster by one site (live shard handoff).
	SoakSiteAdd
	// SoakSiteRemove retires one site (live shard handoff to survivors).
	SoakSiteRemove
	// SoakSiteCrash kills one site's process, discarding its memory.
	SoakSiteCrash
	// SoakSiteRejoin recovers the oldest crashed site from checkpoint+log.
	SoakSiteRejoin
	// SoakHandoffCrash performs a membership change with the handoff fault
	// point armed, so the source site dies mid-transfer.
	SoakHandoffCrash
	// SoakRollCrash performs an epoch rollover with the prepare fault point
	// armed, so one site fails mid-roll and must be quarantined.
	SoakRollCrash

	// Catalog-churn events for standing-query soaks. As with site churn,
	// the events carry no query id: the harness picks attach texts and
	// detach/revive victims deterministically from its own catalog state.

	// SoakAttach attaches one standing query mid-stream.
	SoakAttach
	// SoakDetach detaches one attached query.
	SoakDetach
	// SoakPoison attaches a hostile query that faults on every tuple, so
	// the runtime's breaker must fence it without disturbing neighbors.
	SoakPoison
	// SoakRevive lifts the oldest quarantined query back into the catalog.
	SoakRevive
)

// String names the op for failure messages.
func (op SoakOp) String() string {
	switch op {
	case SoakTuple:
		return "tuple"
	case SoakHeartbeat:
		return "heartbeat"
	case SoakCheckpoint:
		return "checkpoint"
	case SoakCrash:
		return "crash"
	case SoakCorrupt:
		return "corrupt"
	case SoakRoll:
		return "roll"
	case SoakSiteAdd:
		return "site-add"
	case SoakSiteRemove:
		return "site-remove"
	case SoakSiteCrash:
		return "site-crash"
	case SoakSiteRejoin:
		return "site-rejoin"
	case SoakHandoffCrash:
		return "handoff-crash"
	case SoakRollCrash:
		return "roll-crash"
	case SoakAttach:
		return "attach"
	case SoakDetach:
		return "detach"
	case SoakPoison:
		return "poison"
	case SoakRevive:
		return "revive"
	default:
		return "unknown"
	}
}

// SoakEvent is one scheduled event of a soak run.
type SoakEvent struct {
	Op SoakOp
	// T is the event's stream time (meaningful for every op; fault ops fire
	// between the tuples around them).
	T float64
	// Key and Val carry the payload of SoakTuple events.
	Key uint64
	Val float64
}

// SoakConfig parameterizes a generated schedule. All periods are in stream
// time; zero disables the corresponding event kind (except MeanGap, which is
// required).
type SoakConfig struct {
	// Seed makes the schedule (gaps, keys, values) deterministic.
	Seed uint64
	// Start is the stream time of the first tuple.
	Start float64
	// Duration is the total simulated span; events stop at Start+Duration.
	Duration float64
	// MeanGap is the average spacing between tuples. Gaps are integers in
	// [1, 2·MeanGap) so timestamps stay exact in float64 — soak oracles can
	// then compare bit-for-bit.
	MeanGap float64
	// Keys is the number of distinct tuple keys (default 16).
	Keys int
	// HeartbeatEvery inserts a heartbeat at this period.
	HeartbeatEvery float64
	// CheckpointEvery inserts a checkpoint at this period.
	CheckpointEvery float64
	// CrashEvery inserts a crash/restore at this period (the harness decides
	// what a crash means for the runtime under test).
	CrashEvery float64
	// CorruptEvery inserts a corrupt-checkpoint probe at this period.
	CorruptEvery float64

	// RollEvery inserts an epoch rollover at this period.
	RollEvery float64
	// SiteAddEvery / SiteRemoveEvery / SiteCrashEvery insert the matching
	// site-churn event at their period.
	SiteAddEvery    float64
	SiteRemoveEvery float64
	SiteCrashEvery  float64
	// SiteRejoinAfter schedules a SoakSiteRejoin this long after each
	// SoakSiteCrash (crashed sites stay down forever when zero).
	SiteRejoinAfter float64
	// HandoffCrashEvery inserts a membership change whose handoff is made to
	// fail mid-transfer at this period.
	HandoffCrashEvery float64
	// RollCrashEvery inserts an epoch rollover with one site made to fail
	// its proposal at this period.
	RollCrashEvery float64

	// AttachEvery / DetachEvery insert catalog-churn events at their
	// period; PoisonEvery attaches a per-tuple-faulting query instead.
	AttachEvery float64
	DetachEvery float64
	PoisonEvery float64
	// ReviveAfter schedules a SoakRevive this long after each SoakPoison
	// (quarantined queries stay fenced forever when zero).
	ReviveAfter float64
}

// soakRNG is splitmix64 — the repository's standard deterministic generator.
type soakRNG uint64

func (r *soakRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SoakSchedule generates the full event tape for a configuration: tuples at
// pseudo-random integer gaps interleaved — in deterministic order — with the
// configured periodic fault events. Events are sorted by time; fault events
// scheduled at the same instant fire in a fixed order (heartbeat, checkpoint,
// corrupt, crash) before the next tuple.
func SoakSchedule(cfg SoakConfig) []SoakEvent {
	if cfg.Keys <= 0 {
		cfg.Keys = 16
	}
	if cfg.MeanGap < 1 {
		cfg.MeanGap = 1
	}
	rng := soakRNG(cfg.Seed)
	end := cfg.Start + cfg.Duration

	var events []SoakEvent
	// Periodic fault events first, one series per enabled kind. They are
	// generated in a fixed kind order so equal-time events tie-break
	// deterministically under the stable sort below.
	periodic := []struct {
		op    SoakOp
		every float64
	}{
		{SoakHeartbeat, cfg.HeartbeatEvery},
		{SoakCheckpoint, cfg.CheckpointEvery},
		{SoakCorrupt, cfg.CorruptEvery},
		{SoakCrash, cfg.CrashEvery},
		// Churn kinds come after the original four, so tapes generated by
		// older configurations are unchanged byte-for-byte.
		{SoakRoll, cfg.RollEvery},
		{SoakSiteAdd, cfg.SiteAddEvery},
		{SoakSiteRemove, cfg.SiteRemoveEvery},
		{SoakSiteCrash, cfg.SiteCrashEvery},
		{SoakHandoffCrash, cfg.HandoffCrashEvery},
		{SoakRollCrash, cfg.RollCrashEvery},
		// Catalog churn comes last of all, for the same reason.
		{SoakAttach, cfg.AttachEvery},
		{SoakDetach, cfg.DetachEvery},
		{SoakPoison, cfg.PoisonEvery},
	}
	for _, p := range periodic {
		if p.every <= 0 {
			continue
		}
		for t := cfg.Start + p.every; t < end; t += p.every {
			events = append(events, SoakEvent{Op: p.op, T: t})
		}
	}
	// Each crash earns a rejoin a fixed delay later (generated after the
	// crash series, so rejoins tie-break after every periodic kind).
	if cfg.SiteCrashEvery > 0 && cfg.SiteRejoinAfter > 0 {
		for t := cfg.Start + cfg.SiteCrashEvery; t < end; t += cfg.SiteCrashEvery {
			if rt := t + cfg.SiteRejoinAfter; rt < end {
				events = append(events, SoakEvent{Op: SoakSiteRejoin, T: rt})
			}
		}
	}
	// Each poison earns a revive a fixed delay later, mirroring the
	// crash/rejoin pairing above.
	if cfg.PoisonEvery > 0 && cfg.ReviveAfter > 0 {
		for t := cfg.Start + cfg.PoisonEvery; t < end; t += cfg.PoisonEvery {
			if rt := t + cfg.ReviveAfter; rt < end {
				events = append(events, SoakEvent{Op: SoakRevive, T: rt})
			}
		}
	}
	// Tuple tape: integer gaps in [1, 2·MeanGap), keys and values from the
	// same generator.
	span := uint64(2*cfg.MeanGap) - 1
	if span < 1 {
		span = 1
	}
	for t := cfg.Start; t < end; {
		key := rng.next() % uint64(cfg.Keys)
		val := float64(1 + rng.next()%1000)
		events = append(events, SoakEvent{Op: SoakTuple, T: t, Key: key, Val: val})
		t += float64(1 + rng.next()%span)
	}
	// A stable sort preserves generation order among equal-time events, so
	// fault kinds fire in the fixed order above before tuples at the same
	// instant.
	sort.SliceStable(events, func(i, j int) bool { return events[i].T < events[j].T })
	return events
}
