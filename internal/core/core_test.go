package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKahanSumExactOnHardCase(t *testing.T) {
	// 1 + 1e-16 added 1e6 times loses the small terms under naive summation;
	// Kahan keeps them.
	var k KahanSum
	k.Add(1)
	for i := 0; i < 1_000_000; i++ {
		k.Add(1e-16)
	}
	got := k.Value()
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-13 {
		t.Errorf("Kahan sum = %.17g, want %.17g", got, want)
	}
}

func TestKahanScaleAndMerge(t *testing.T) {
	var a, b KahanSum
	for i := 1; i <= 100; i++ {
		a.Add(float64(i))
		b.Add(float64(i) * 2)
	}
	a.Scale(2)
	if math.Abs(a.Value()-b.Value()) > 1e-9 {
		t.Errorf("scaled sum %v != direct sum %v", a.Value(), b.Value())
	}
	var m KahanSum
	m.Merge(&a)
	m.Merge(&b)
	if math.Abs(m.Value()-2*b.Value()) > 1e-9 {
		t.Errorf("merged sum %v, want %v", m.Value(), 2*b.Value())
	}
	a.Reset()
	if a.Value() != 0 {
		t.Errorf("Reset: value %v, want 0", a.Value())
	}
}

func TestLogSumExp(t *testing.T) {
	cases := []struct{ a, b float64 }{
		{0, 0}, {1, 2}, {-3, 5}, {700, 700}, {-700, -701}, {100, -100},
	}
	for _, c := range cases {
		got := LogSumExp(c.a, c.b)
		// Verify against direct computation where it does not overflow.
		if math.Abs(c.a) < 300 && math.Abs(c.b) < 300 {
			want := math.Log(math.Exp(c.a) + math.Exp(c.b))
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("LogSumExp(%v,%v) = %v, want %v", c.a, c.b, got, want)
			}
		}
		if got < math.Max(c.a, c.b) {
			t.Errorf("LogSumExp(%v,%v) = %v below max operand", c.a, c.b, got)
		}
	}
	ninf := math.Inf(-1)
	if got := LogSumExp(ninf, 3); got != 3 {
		t.Errorf("LogSumExp(-Inf,3) = %v, want 3", got)
	}
	if got := LogSumExp(2, ninf); got != 2 {
		t.Errorf("LogSumExp(2,-Inf) = %v, want 2", got)
	}
}

func TestExpClamped(t *testing.T) {
	if got := ExpClamped(-1000); got != 0 {
		t.Errorf("ExpClamped(-1000) = %v, want 0", got)
	}
	if got := ExpClamped(1000); got != math.MaxFloat64 {
		t.Errorf("ExpClamped(1000) = %v, want MaxFloat64", got)
	}
	if got, want := ExpClamped(2), math.Exp(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpClamped(2) = %v, want %v", got, want)
	}
}

func TestMix64Bijectivity(t *testing.T) {
	// SplitMix64's finalizer is a bijection; spot-check no collisions over a
	// modest sample and decent avalanche behaviour.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 100000; i++ {
		h := Mix64(i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestU64ToUnitRange(t *testing.T) {
	f := func(x uint64) bool {
		u := U64ToUnit(x)
		return u > 0 && u < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Error(err)
	}
}

func TestHashStringDistinct(t *testing.T) {
	if HashString("a") == HashString("b") {
		t.Error("trivial collision")
	}
	if HashString("") == HashString("a") {
		t.Error("empty vs non-empty collision")
	}
	if HashString("abc") != HashString("abc") {
		t.Error("hash not deterministic")
	}
}

func TestRNGDeterminismAndUniformity(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same sequence")
		}
	}
	c := NewRNG(43)
	if a.Uint64() == c.Uint64() && a.Uint64() == c.Uint64() {
		t.Error("different seeds gave identical draws")
	}

	// Mean of uniform draws should be close to 0.5.
	r := NewRNG(1)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		u := r.Float64()
		if u <= 0 || u >= 1 {
			t.Fatalf("Float64 out of (0,1): %v", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean %v too far from 0.5", mean)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %v too far from 1", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) must panic")
		}
	}()
	NewRNG(1).Intn(0)
}
