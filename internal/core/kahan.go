// Package core provides shared numeric kernels used across the forwarddecay
// packages: compensated summation, log-domain arithmetic helpers, 64-bit
// mixing hashes and a small deterministic RNG.
//
// Everything here is an implementation detail of the public packages; the
// API may change without notice.
package core

import "math"

// KahanSum accumulates float64 values with Kahan–Babuška (Neumaier)
// compensation, bounding the error of long streaming sums independently of
// their length. The zero value is an empty sum ready for use.
type KahanSum struct {
	sum float64
	c   float64 // running compensation
}

// Add accumulates v into the sum.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated sum.
func (k *KahanSum) Value() float64 { return k.sum + k.c }

// Scale multiplies the accumulated sum (and its compensation) by f.
// It is used when rebasing log-scaled accumulators onto a new landmark.
func (k *KahanSum) Scale(f float64) {
	k.sum *= f
	k.c *= f
}

// Reset clears the accumulator to the empty sum.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// State exposes the raw accumulator and compensation terms so codecs can
// round-trip a sum bit-for-bit; Value() alone loses the compensation.
func (k *KahanSum) State() (sum, comp float64) { return k.sum, k.c }

// SetState restores an accumulator captured with State.
func (k *KahanSum) SetState(sum, comp float64) { k.sum, k.c = sum, comp }

// Merge folds another compensated sum into this one.
func (k *KahanSum) Merge(o *KahanSum) {
	k.Add(o.sum)
	k.Add(o.c)
}
