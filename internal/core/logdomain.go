package core

import "math"

// MaxSafeExp is the largest magnitude of a log-domain offset that we allow
// before rebasing an accumulator onto a new scale. exp(±300) is comfortably
// inside float64 range (which overflows near exp(709.78)) while leaving
// headroom for sums of many rebased terms.
const MaxSafeExp = 300

// LogSumExp returns ln(exp(a) + exp(b)) computed stably.
// It tolerates -Inf operands (representing zero weight).
func LogSumExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// ExpClamped returns exp(x), flushing to 0 for very negative x and
// saturating at MaxFloat64 rather than +Inf for very positive x. Callers use
// it when a saturated value is semantically "too large to matter precisely"
// (for example, a candidate that will certainly win a max comparison).
func ExpClamped(x float64) float64 {
	if x <= -745 { // exp underflows to 0 below ~-745.1
		return 0
	}
	if x >= 709.7 {
		return math.MaxFloat64
	}
	return math.Exp(x)
}
