package core

// Mix64 is the SplitMix64 finalizer: a fast, high-quality 64-bit mixing
// function used to derive hash values and per-item pseudo-random draws from
// integer identities.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashString hashes a string to 64 bits using FNV-1a followed by a final
// mix, giving well-distributed values for use in sketches.
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Mix64(h)
}

// HashBytes hashes a byte slice to 64 bits using FNV-1a followed by a
// final mix; it matches HashString on equal contents.
func HashBytes(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return Mix64(h)
}

// Hash2 combines two 64-bit values into one well-mixed 64-bit hash.
func Hash2(a, b uint64) uint64 {
	return Mix64(a ^ Mix64(b+0x9e3779b97f4a7c15))
}

// U64ToUnit maps a 64-bit hash to the open unit interval (0, 1).
// The result is never exactly 0 or 1, so it is safe to take logarithms or
// reciprocals of it.
func U64ToUnit(x uint64) float64 {
	// Use the top 53 bits for a uniform dyadic rational in [0,1), then
	// shift half a ulp away from zero.
	return (float64(x>>11) + 0.5) / (1 << 53)
}
