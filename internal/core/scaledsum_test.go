package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScaledSumMatchesDirectSum(t *testing.T) {
	rng := NewRNG(1)
	var s ScaledSum
	var direct float64
	for i := 0; i < 10000; i++ {
		lw := 10 * rng.Float64() // weights within float range
		x := -2 + 4*rng.Float64()
		s.Add(lw, x)
		direct += math.Exp(lw) * x
	}
	got := s.Value(0)
	if math.Abs(got-direct) > 1e-9*math.Abs(direct) {
		t.Errorf("ScaledSum %v, direct %v", got, direct)
	}
}

func TestScaledSumRebasingExactness(t *testing.T) {
	// Accumulate with monotonically exploding log-weights; compare against
	// a reference computed relative to the final normalizer.
	var s ScaledSum
	const n = 5000
	var ref KahanSum
	logNorm := float64(n) // normalizer e^n
	for i := 1; i <= n; i++ {
		lw := float64(i)
		s.Add(lw, 2)
		ref.Add(2 * math.Exp(lw-logNorm))
	}
	got := s.Value(logNorm)
	want := ref.Value()
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("rebased sum %v, want %v", got, want)
	}
}

func TestScaledSumIgnoresDegenerate(t *testing.T) {
	var s ScaledSum
	s.Add(math.Inf(-1), 5) // zero weight
	s.Add(math.NaN(), 5)
	s.Add(3, 0) // zero value
	if !s.Empty() || s.Value(0) != 0 {
		t.Errorf("degenerate adds should leave the sum empty; got %v", s.Value(0))
	}
	if !math.IsInf(s.Log(), -1) {
		t.Errorf("empty Log = %v", s.Log())
	}
}

func TestScaledSumLog(t *testing.T) {
	var s ScaledSum
	s.Add(700, 2) // weight e^700 (beyond float64 on its own), value 2
	s.Add(700, 3)
	want := 700 + math.Log(5)
	if got := s.Log(); math.Abs(got-want) > 1e-9 {
		t.Errorf("Log = %v, want %v", got, want)
	}
}

func TestScaledSumMergeEqualsCombined(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		var a, b, whole ScaledSum
		for i := 0; i < 500; i++ {
			lw := 600 * rng.Float64() // spans rebasing territory
			x := rng.Float64()
			whole.Add(lw, x)
			if i%2 == 0 {
				a.Add(lw, x)
			} else {
				b.Add(lw, x)
			}
		}
		a.Merge(&b)
		norm := 600.0
		ga, gw := a.Value(norm), whole.Value(norm)
		return math.Abs(ga-gw) <= 1e-9*math.Abs(gw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Error(err)
	}
}

func TestScaledSumMergeEmptyCases(t *testing.T) {
	var a, b ScaledSum
	b.Add(1, 2)
	a.Merge(&b) // empty ← nonempty
	if math.Abs(a.Value(1)-2) > 1e-12 {
		t.Errorf("merge into empty: %v", a.Value(1))
	}
	var c ScaledSum
	a.Merge(&c) // nonempty ← empty: unchanged
	if math.Abs(a.Value(1)-2) > 1e-12 {
		t.Errorf("merge of empty changed value: %v", a.Value(1))
	}
}

func TestScaledSumShift(t *testing.T) {
	var s ScaledSum
	s.Add(10, 4)
	before := s.Value(12)
	s.Shift(-3)         // all log-weights conceptually move by −3…
	after := s.Value(9) // …and so does the normalizer: value unchanged
	if math.Abs(before-after) > 1e-12 {
		t.Errorf("shift broke invariance: %v vs %v", before, after)
	}
	var empty ScaledSum
	empty.Shift(5) // no-op on empty
	if !empty.Empty() {
		t.Error("shift made empty sum non-empty")
	}
}

func TestScaledSumTinyAfterEmpty(t *testing.T) {
	// A sum that cancels to zero must adopt the scale of the next item
	// rather than flushing it to zero.
	var s ScaledSum
	s.Add(0, 1)
	s.Add(0, -1) // cancels exactly
	s.Add(-400, 7)
	got := s.Value(-400)
	if math.Abs(got-7) > 1e-9 {
		t.Errorf("tiny item lost after cancellation: %v", got)
	}
}

func TestScaledSumRaw(t *testing.T) {
	var s ScaledSum
	s.Add(5, 3)
	sum, scale := s.Raw()
	if math.Abs(sum*math.Exp(scale)-3*math.Exp(5)) > 1e-6 {
		t.Errorf("Raw() inconsistent: %v × e^%v", sum, scale)
	}
}
