package core

import "math"

// ScaledSum accumulates Σᵢ wᵢ·xᵢ where each weight wᵢ = exp(lwᵢ) is given
// in the log domain. The sum is stored relative to a floating scale: the
// represented value is Sum·exp(LogScale). When a new term's log-weight
// exceeds the scale by more than MaxSafeExp the accumulator rebases,
// linearly rescaling the stored sum — the continuous form of the landmark
// rescaling of §VI-A of the forward-decay paper. Old mass that underflows
// during a rebase is negligible relative to the new scale by construction.
//
// The zero value is an empty sum ready for use.
type ScaledSum struct {
	sum      KahanSum
	logScale float64
	nonEmpty bool
}

// Add accumulates exp(lw)·x. Terms with x = 0 or zero weight (lw = −Inf)
// are ignored.
func (s *ScaledSum) Add(lw, x float64) {
	if x == 0 || math.IsInf(lw, -1) || math.IsNaN(lw) {
		return
	}
	if !s.nonEmpty {
		s.logScale = lw
		s.nonEmpty = true
		s.sum.Add(x)
		return
	}
	rel := lw - s.logScale
	if rel > MaxSafeExp {
		s.Rebase(lw)
		rel = 0
	} else if rel < -MaxSafeExp && s.sum.Value() == 0 {
		// Everything accumulated so far has cancelled or underflowed; adopt
		// the new item's scale so it is not lost too.
		s.logScale = lw
		rel = 0
	}
	s.sum.Add(ExpClamped(rel) * x)
}

// Rebase rescales the stored sum onto the given log scale.
func (s *ScaledSum) Rebase(newScale float64) {
	s.sum.Scale(ExpClamped(s.logScale - newScale))
	s.logScale = newScale
}

// Value returns (Σ wᵢxᵢ) / exp(logNorm).
func (s *ScaledSum) Value(logNorm float64) float64 {
	if !s.nonEmpty {
		return 0
	}
	return s.sum.Value() * ExpClamped(s.logScale-logNorm)
}

// Raw returns the stored sum and its log scale
// (Σ wᵢxᵢ = sum·exp(logScale)).
func (s *ScaledSum) Raw() (sum, logScale float64) { return s.sum.Value(), s.logScale }

// Log returns ln(Σ wᵢxᵢ) for a sum of positive terms, or −Inf when empty
// or zero.
func (s *ScaledSum) Log() float64 {
	v := s.sum.Value()
	if !s.nonEmpty || v <= 0 {
		return math.Inf(-1)
	}
	return math.Log(v) + s.logScale
}

// Merge folds another accumulator into this one.
func (s *ScaledSum) Merge(o *ScaledSum) {
	if !o.nonEmpty {
		return
	}
	if !s.nonEmpty {
		*s = *o
		return
	}
	if o.logScale > s.logScale {
		s.Rebase(o.logScale)
	}
	s.sum.Add(o.sum.Value() * ExpClamped(o.logScale-s.logScale))
}

// Shift adds a constant to the log scale, used when the landmark of an
// exponential-decay aggregate moves: every static weight changes by the
// same log-domain constant, so only the scale needs adjusting.
func (s *ScaledSum) Shift(delta float64) {
	if s.nonEmpty {
		s.logScale += delta
	}
}

// Empty reports whether nothing has been accumulated.
func (s *ScaledSum) Empty() bool { return !s.nonEmpty }

// State exposes the full representation — raw sum, Kahan compensation and
// log scale — so checkpoint codecs can round-trip the accumulator
// bit-for-bit. Reconstructing from Raw() alone drops the compensation and
// breaks exact crash-restore equivalence.
func (s *ScaledSum) State() (sum, comp, logScale float64, nonEmpty bool) {
	sum, comp = s.sum.State()
	return sum, comp, s.logScale, s.nonEmpty
}

// Restore reinstates an accumulator captured with State.
func (s *ScaledSum) Restore(sum, comp, logScale float64, nonEmpty bool) {
	s.sum.SetState(sum, comp)
	s.logScale = logScale
	s.nonEmpty = nonEmpty
}

// AddN accumulates exp(lw)·x, n times over, bit-for-bit equivalent to n
// successive Add(lw, x) calls. The Kahan accumulation stays sequential —
// collapsing the run into one Add(lw, n·x) would round differently — but the
// exponential is computed once per distinct relative scale instead of once
// per term, which is the entire per-update cost the forward-decay hot path
// pays. The rebase and scale-adoption branches are re-checked every
// iteration exactly as Add would, invalidating the cached term when either
// fires, so pathological cancellation mid-run still reproduces the scalar
// sequence.
func (s *ScaledSum) AddN(lw, x float64, n int) {
	if n <= 0 || x == 0 || math.IsInf(lw, -1) || math.IsNaN(lw) {
		return
	}
	var w float64
	haveW := false
	for ; n > 0; n-- {
		if !s.nonEmpty {
			s.logScale = lw
			s.nonEmpty = true
			s.sum.Add(x)
			continue
		}
		rel := lw - s.logScale
		if rel > MaxSafeExp {
			s.Rebase(lw)
			rel = 0
			haveW = false
		} else if rel < -MaxSafeExp && s.sum.Value() == 0 {
			s.logScale = lw
			rel = 0
			haveW = false
		}
		if !haveW {
			w, haveW = ExpClamped(rel)*x, true
		}
		s.sum.Add(w)
	}
}
