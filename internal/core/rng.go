package core

import "math"

// RNG is a small, fast, deterministic xoshiro256**-style generator used on
// hot paths where we want reproducibility without the locking or allocation
// of math/rand's default source. The zero value is not valid; use NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed via SplitMix64, as
// recommended by the xoshiro authors.
func NewRNG(seed uint64) *RNG {
	var r RNG
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		r.s[i] = Mix64(x)
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform draw from the open interval (0, 1).
func (r *RNG) Float64() float64 { return U64ToUnit(r.Uint64()) }

// ExpFloat64 returns an exponentially distributed draw with rate 1.
func (r *RNG) ExpFloat64() float64 { return -math.Log(r.Float64()) }

// Intn returns a uniform draw from [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("core: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // tiny modulo bias is fine for our uses
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
