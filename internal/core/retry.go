package core

import "time"

// Backoff is the repository's one retry-delay policy: capped exponential
// growth with seeded uniform jitter over the upper half of the delay. It
// was born in the ingest dialer's reconnect loop and is shared by every
// component that retries — the dialer and the server supervisor must not
// drift apart in how aggressively they hammer a struggling peer.
//
// The zero value is usable: Min and Max default to 50ms and 2s.
type Backoff struct {
	// Min is the delay before the second attempt (the first retry after one
	// failure). Defaults to 50ms.
	Min time.Duration
	// Max caps the exponential growth. Defaults to 2s.
	Max time.Duration
}

// DefaultBackoff matches the ingest dialer's historical constants.
var DefaultBackoff = Backoff{Min: 50 * time.Millisecond, Max: 2 * time.Second}

// base returns the un-jittered delay for a consecutive-failure count
// (fails >= 1): Min doubled per failure beyond the first, capped at Max.
func (b Backoff) base(fails int) time.Duration {
	min, max := b.Min, b.Max
	if min <= 0 {
		min = DefaultBackoff.Min
	}
	if max <= 0 {
		max = DefaultBackoff.Max
	}
	if fails < 1 {
		fails = 1
	}
	// A shift that overflows time.Duration flips negative; treat it as
	// "past the cap", exactly like a merely-large delay.
	delay := min << uint(fails-1)
	if delay <= 0 || delay > max {
		delay = max
	}
	return delay
}

// Delay returns the jittered delay for a consecutive-failure count, drawing
// from rng: uniform over [base/2, base), which decorrelates a thundering
// herd without ever collapsing the wait to zero. A nil rng returns the
// deterministic midpoint (3/4 of base) — callers that cannot thread an RNG
// still back off sanely.
func (b Backoff) Delay(fails int, rng *RNG) time.Duration {
	half := b.base(fails) / 2
	if rng == nil {
		return half + half/2
	}
	return half + time.Duration(rng.Float64()*float64(half))
}

// Sleep blocks for Delay(fails, rng), returning early (and reporting false)
// if cancel closes first. A nil cancel channel never cancels.
func (b Backoff) Sleep(fails int, rng *RNG, cancel <-chan struct{}) bool {
	t := time.NewTimer(b.Delay(fails, rng))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-cancel:
		return false
	}
}
