package core

import (
	"testing"
	"time"
)

// TestBackoffBase: exponential growth from Min, capped at Max, including the
// overflow-to-negative shift case.
func TestBackoffBase(t *testing.T) {
	b := Backoff{Min: 50 * time.Millisecond, Max: 2 * time.Second}
	cases := []struct {
		fails int
		want  time.Duration
	}{
		{0, 50 * time.Millisecond}, // clamped to 1
		{1, 50 * time.Millisecond},
		{2, 100 * time.Millisecond},
		{3, 200 * time.Millisecond},
		{6, 1600 * time.Millisecond},
		{7, 2 * time.Second}, // 3.2s capped
		{40, 2 * time.Second},
		{80, 2 * time.Second}, // shift overflows to <= 0 → cap
	}
	for _, c := range cases {
		if got := b.base(c.fails); got != c.want {
			t.Errorf("base(%d) = %v, want %v", c.fails, got, c.want)
		}
	}
}

// TestBackoffDefaults: the zero value behaves like DefaultBackoff.
func TestBackoffDefaults(t *testing.T) {
	var b Backoff
	if got := b.base(1); got != DefaultBackoff.Min {
		t.Errorf("zero-value base(1) = %v, want %v", got, DefaultBackoff.Min)
	}
	if got := b.base(100); got != DefaultBackoff.Max {
		t.Errorf("zero-value base(100) = %v, want %v", got, DefaultBackoff.Max)
	}
}

// TestBackoffDelayJitterRange: jittered delays land in [base/2, base) and a
// fixed seed reproduces the exact sequence — the property the deterministic
// fault drills rely on.
func TestBackoffDelayJitterRange(t *testing.T) {
	b := Backoff{Min: 80 * time.Millisecond, Max: time.Second}
	rng := NewRNG(7)
	for fails := 1; fails <= 6; fails++ {
		base := b.base(fails)
		for i := 0; i < 100; i++ {
			d := b.Delay(fails, rng)
			if d < base/2 || d >= base {
				t.Fatalf("Delay(%d) = %v outside [%v, %v)", fails, d, base/2, base)
			}
		}
	}
	a, bb := NewRNG(42), NewRNG(42)
	for i := 1; i < 20; i++ {
		if x, y := b.Delay(i, a), b.Delay(i, bb); x != y {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, x, y)
		}
	}
}

// TestBackoffDelayNilRNG: without an RNG the delay is the deterministic
// midpoint of the jitter range.
func TestBackoffDelayNilRNG(t *testing.T) {
	b := Backoff{Min: 100 * time.Millisecond, Max: time.Second}
	if got, want := b.Delay(1, nil), 75*time.Millisecond; got != want {
		t.Errorf("Delay(1, nil) = %v, want %v", got, want)
	}
}

// TestBackoffSleepCancel: a closed cancel channel returns promptly with
// false; a nil channel sleeps the full delay and reports true.
func TestBackoffSleepCancel(t *testing.T) {
	b := Backoff{Min: 10 * time.Second, Max: 20 * time.Second}
	cancel := make(chan struct{})
	close(cancel)
	start := time.Now()
	if b.Sleep(3, nil, cancel) {
		t.Fatal("Sleep reported completion despite cancel")
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled Sleep took too long")
	}
	quick := Backoff{Min: time.Millisecond, Max: 2 * time.Millisecond}
	if !quick.Sleep(1, nil, nil) {
		t.Fatal("uncancelled Sleep reported cancellation")
	}
}
