package sample_test

import (
	"fmt"
	"sort"

	"forwarddecay/decay"
	"forwarddecay/sample"
)

// Weighted reservoir sampling under exponential forward decay: the sample
// concentrates on recent items (Corollary 1 of the paper — this is also an
// exact backward-exponential-decay sample, in O(k) space).
func ExampleForwardWRS() {
	model := decay.NewForward(decay.NewExp(0.5), 0)
	s := sample.NewForwardWRS[int](model, 3, 7)
	for i := 0; i <= 100; i++ {
		s.Observe(i, float64(i))
	}
	got := s.Sample()
	sort.Ints(got)
	fmt.Println(got[0] > 80) // with α=0.5, old items are ~e^-10 unlikely
	// Output: true
}

// Priority sampling yields unbiased subset-sum estimates: Σ of the sampled
// weights estimates the total decayed count.
func ExampleForwardPriority() {
	model := decay.NewForward(decay.None{}, 0) // undecayed: weights all 1
	s := sample.NewForwardPriority[int](model, 64, 3)
	for i := 0; i < 1000; i++ {
		s.Observe(i, float64(i))
	}
	est := s.EstimateDecayedCount(1000)
	fmt.Println(est > 500 && est < 1500) // unbiased estimate of 1000
	// Output: true
}

// Vitter's reservoir draws a uniform sample of fixed size from a stream of
// unknown length.
func ExampleReservoir() {
	s := sample.NewReservoir[string](2, 1)
	for _, w := range []string{"a", "b", "c", "d", "e"} {
		s.Add(w)
	}
	fmt.Println(len(s.Sample()), s.N())
	// Output: 2 5
}
