package sample

import (
	"forwarddecay/internal/core"
)

// Reservoir is Vitter's Algorithm R: a uniform sample of k items from a
// stream of unknown length, O(k) space, O(1) time per item. It is the
// undecayed sampling baseline of Figure 3 of the paper.
//
// Reservoir is not safe for concurrent use.
type Reservoir[T any] struct {
	k     int
	rng   *core.RNG
	items []T
	n     uint64
}

// NewReservoir returns a uniform reservoir of size k. It panics if k < 1.
func NewReservoir[T any](k int, seed uint64) *Reservoir[T] {
	if k < 1 {
		panic("sample: Reservoir needs k >= 1")
	}
	return &Reservoir[T]{k: k, rng: core.NewRNG(seed), items: make([]T, 0, k)}
}

// Add offers one item.
func (s *Reservoir[T]) Add(item T) {
	s.n++
	if len(s.items) < s.k {
		s.items = append(s.items, item)
		return
	}
	if j := s.rng.Intn(int(s.n)); j < s.k {
		s.items[j] = item
	}
}

// Sample returns the current uniform sample (aliases internal state).
func (s *Reservoir[T]) Sample() []T { return s.items }

// N returns the number of items offered.
func (s *Reservoir[T]) N() uint64 { return s.n }

// Len returns the current sample size.
func (s *Reservoir[T]) Len() int { return len(s.items) }

// Merge folds another reservoir (same k) into this one, preserving
// uniformity over the union: each slot of the result comes from the other
// reservoir with probability n₂/(n₁+n₂). It panics if the sizes differ.
func (s *Reservoir[T]) Merge(o *Reservoir[T]) {
	if o.k != s.k {
		panic("sample: merging Reservoirs of different sizes")
	}
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		s.items = append(s.items[:0], o.items...)
		s.n = o.n
		return
	}
	if len(s.items) < s.k || len(o.items) < o.k {
		// One side has not filled: offer its items individually.
		for _, it := range o.items {
			s.Add(it)
		}
		s.n += o.n - uint64(len(o.items))
		return
	}
	pOther := float64(o.n) / float64(s.n+o.n)
	for j := range s.items {
		if s.rng.Float64() < pOther {
			s.items[j] = o.items[j]
		}
	}
	s.n += o.n
}

// SkipReservoir is reservoir sampling with Vitter's Algorithm X skip
// optimization: instead of a coin flip per item it draws, once per
// replacement, the number of subsequent items to skip, making the cost per
// *accepted* item O(1) and the amortized per-item cost o(1) for k ≪ n.
// Offers arrive through Offer, which reports whether the item was examined;
// callers that can cheaply skip items (e.g. readers) may use Skip() to know
// how many upcoming items are irrelevant.
//
// SkipReservoir is not safe for concurrent use.
type SkipReservoir[T any] struct {
	k     int
	rng   *core.RNG
	items []T
	n     uint64
	skip  uint64 // items still to skip before the next candidate
}

// NewSkipReservoir returns a skip-optimized uniform reservoir of size k.
// It panics if k < 1.
func NewSkipReservoir[T any](k int, seed uint64) *SkipReservoir[T] {
	if k < 1 {
		panic("sample: SkipReservoir needs k >= 1")
	}
	return &SkipReservoir[T]{k: k, rng: core.NewRNG(seed), items: make([]T, 0, k)}
}

// Add offers one item.
func (s *SkipReservoir[T]) Add(item T) {
	s.n++
	if len(s.items) < s.k {
		s.items = append(s.items, item)
		if len(s.items) == s.k {
			s.drawSkip()
		}
		return
	}
	if s.skip > 0 {
		s.skip--
		return
	}
	s.items[s.rng.Intn(s.k)] = item
	s.drawSkip()
}

// drawSkip draws the gap until the next accepted item using the exact
// Algorithm X distribution: P(skip ≥ s) = Π_{j=1..s} (n+j−k)/(n+j).
func (s *SkipReservoir[T]) drawSkip() {
	u := s.rng.Float64()
	// Sequential search: find the smallest sk with P(skip ≥ sk+1) < u.
	prod := 1.0
	sk := uint64(0)
	n := float64(s.n)
	for {
		prod *= (n + float64(sk) + 1 - float64(s.k)) / (n + float64(sk) + 1)
		if prod < u {
			break
		}
		sk++
		if sk > 1<<40 { // safety valve; astronomically unlikely
			break
		}
	}
	s.skip = sk
}

// Skip returns how many upcoming items would be ignored without inspection.
func (s *SkipReservoir[T]) Skip() uint64 { return s.skip }

// Sample returns the current uniform sample (aliases internal state).
func (s *SkipReservoir[T]) Sample() []T { return s.items }

// N returns the number of items offered.
func (s *SkipReservoir[T]) N() uint64 { return s.n }

// Aggarwal is the biased reservoir sampler of Aggarwal (VLDB 2006) for
// exponential decay, the prior-art baseline of Figure 3: with reservoir
// capacity c the sample approximates exponential bias with rate λ ≈ 1/c in
// *arrival index*. Each arriving item is inserted; with probability
// fill = len/c it replaces a random victim, otherwise the reservoir grows.
//
// Aggarwal is INDEX-biased, not time-biased: an item's survival
// probability depends only on how many items arrived after it, never on
// its timestamp. On an in-order stream the two coincide, but on any
// out-of-order stream they diverge — an old record delivered late is
// treated as the newest thing in the world, and a fresh record delivered
// early decays as if it were ancient. In the extreme, feeding a stream in
// reverse timestamp order makes the sample concentrate on the OLDEST
// timestamps. TestAggarwalIndexBiasUnderReordering pins this failure mode
// against ForwardWRS, which weighs each item by its own timestamp
// (§III: w(ti) is fixed at arrival) and is therefore arrival-order
// insensitive.
//
// These limitations motivate the forward-decay approach: the decay rate is
// tied to arrival counts rather than timestamps, only exponential decay is
// supported, and out-of-order arrivals are biased incorrectly.
type Aggarwal[T any] struct {
	c     int
	rng   *core.RNG
	items []T
	n     uint64
}

// NewAggarwal returns a biased reservoir with capacity c (bias rate ≈ 1/c
// per arrival). It panics if c < 1.
func NewAggarwal[T any](c int, seed uint64) *Aggarwal[T] {
	if c < 1 {
		panic("sample: Aggarwal needs capacity >= 1")
	}
	return &Aggarwal[T]{c: c, rng: core.NewRNG(seed), items: make([]T, 0, c)}
}

// Add offers one item (arrival order defines the bias).
func (s *Aggarwal[T]) Add(item T) {
	s.n++
	fill := float64(len(s.items)) / float64(s.c)
	if s.rng.Float64() < fill {
		s.items[s.rng.Intn(len(s.items))] = item
		return
	}
	s.items = append(s.items, item)
}

// Sample returns the current biased sample (aliases internal state).
func (s *Aggarwal[T]) Sample() []T { return s.items }

// N returns the number of items offered.
func (s *Aggarwal[T]) N() uint64 { return s.n }

// Len returns the current sample size.
func (s *Aggarwal[T]) Len() int { return len(s.items) }

// Chain is the chain-sampling algorithm of Babcock, Datar and Motwani for
// uniform sampling from a count-based sliding window of the last w items,
// in O(1) expected space per sample: when an item is chosen, a replacement
// index is pre-drawn from its successor window, building a chain that is
// followed when the sample expires. It is the sliding-window sampling
// baseline discussed in §VII of the paper.
//
// Chain maintains one sample; run k instances for a sample of size k.
// It is not safe for concurrent use.
type Chain[T any] struct {
	w   int
	rng *core.RNG
	n   uint64 // index of the last arrival (1-based)
	// chain[0] is the current sample; subsequent entries are pre-selected
	// successors at increasing indices.
	idx   []uint64
	items []T
	next  uint64 // index at which the head of the chain must be replaced
}

// NewChain returns a chain sampler over a window of the last w items.
// It panics if w < 1.
func NewChain[T any](w int, seed uint64) *Chain[T] {
	if w < 1 {
		panic("sample: Chain needs window >= 1")
	}
	return &Chain[T]{w: w, rng: core.NewRNG(seed)}
}

// Add offers one item.
func (s *Chain[T]) Add(item T) {
	s.n++
	// Every arrival first gets its chance to become the new sample with
	// probability 1/min(n, w), discarding any existing chain; only
	// otherwise is it considered as the pre-drawn successor of the tail.
	m := int(s.n)
	if m > s.w {
		m = s.w
	}
	switch {
	case s.rng.Intn(m) == 0:
		s.idx = append(s.idx[:0], s.n)
		s.items = append(s.items[:0], item)
		s.next = s.n + 1 + uint64(s.rng.Intn(s.w))
	case len(s.idx) > 0 && s.n == s.next:
		s.idx = append(s.idx, s.n)
		s.items = append(s.items, item)
		s.next = s.n + 1 + uint64(s.rng.Intn(s.w))
	}
	// Expire chain entries that have left the window of the last w items.
	for len(s.idx) > 0 && s.idx[0]+uint64(s.w) <= s.n {
		s.idx = s.idx[1:]
		s.items = s.items[1:]
	}
}

// Sample returns the current in-window sample and whether one exists.
func (s *Chain[T]) Sample() (T, bool) {
	if len(s.items) == 0 {
		var zero T
		return zero, false
	}
	return s.items[0], true
}

// ChainLen returns the length of the stored successor chain (diagnostics).
func (s *Chain[T]) ChainLen() int { return len(s.items) }

// N returns the number of items offered.
func (s *Chain[T]) N() uint64 { return s.n }
