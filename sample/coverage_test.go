package sample

import (
	"math"
	"testing"

	"forwarddecay/decay"
)

// TestAccessorsAcrossSamplers covers the small accessors.
func TestAccessorsAcrossSamplers(t *testing.T) {
	r := NewReservoir[int](3, 1)
	r.Add(1)
	if r.Len() != 1 || r.N() != 1 {
		t.Error("Reservoir accessors")
	}
	sk := NewSkipReservoir[int](3, 1)
	for i := 0; i < 10; i++ {
		sk.Add(i)
	}
	if sk.N() != 10 {
		t.Error("SkipReservoir N")
	}
	_ = sk.Skip() // exercised; value depends on random draws
	ag := NewAggarwal[int](3, 1)
	ag.Add(1)
	if ag.N() != 1 || ag.Len() != 1 {
		t.Error("Aggarwal accessors")
	}
	p := NewPriority[int](3, 1)
	p.Add(1, 0)
	if p.N() != 1 {
		t.Error("Priority N")
	}
	ch := NewChain[int](5, 1)
	ch.Add(1)
	if ch.N() != 1 {
		t.Error("Chain N")
	}
}

// TestForwardWrapperAccessorsAndMerge covers the forward-decay wrapper
// methods not exercised elsewhere.
func TestForwardWrapperAccessorsAndMerge(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.1), 0)
	wr := NewForwardWR[int](m, 4, 1)
	wr.Observe(1, 5)
	if wr.Model() != m {
		t.Error("ForwardWR Model")
	}
	wrs := NewForwardWRS[int](m, 4, 2)
	wrs2 := NewForwardWRS[int](m, 4, 3)
	wrs.Observe(1, 5)
	wrs2.Observe(2, 6)
	wrs.Merge(wrs2)
	if wrs.Model() != m || len(wrs.Sample()) != 2 {
		t.Errorf("ForwardWRS merge: %v", wrs.Sample())
	}
	pr := NewForwardPriority[int](m, 4, 4)
	pr2 := NewForwardPriority[int](m, 4, 5)
	pr.Observe(1, 5)
	pr2.Observe(2, 6)
	pr.Merge(pr2)
	if pr.Model() != m {
		t.Error("ForwardPriority Model")
	}
	s := pr.Sample(10)
	if len(s) != 2 {
		t.Errorf("ForwardPriority merged sample: %v", s)
	}
	for _, w := range s {
		if w.Weight <= 0 || math.IsInf(w.Weight, 0) {
			t.Errorf("bad weight %v", w.Weight)
		}
	}
}

// TestReservoirMergePartialFills covers merging when one side is unfilled.
func TestReservoirMergePartialFills(t *testing.T) {
	a := NewReservoir[int](5, 1)
	b := NewReservoir[int](5, 2)
	a.Add(1)
	a.Add(2)
	for i := 10; i < 13; i++ {
		b.Add(i)
	}
	a.Merge(b)
	if a.N() != 5 || a.Len() != 5 {
		t.Errorf("merged N=%d Len=%d", a.N(), a.Len())
	}
	// Merge into empty adopts the other side.
	c := NewReservoir[int](5, 3)
	c.Merge(a)
	if c.N() != 5 || c.Len() != 5 {
		t.Errorf("empty merge N=%d Len=%d", c.N(), c.Len())
	}
	// Merge of empty is a no-op.
	d := NewReservoir[int](5, 4)
	a.Merge(d)
	if a.N() != 5 {
		t.Error("empty other changed N")
	}
	// Size mismatch panics.
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size mismatch")
		}
	}()
	a.Merge(NewReservoir[int](4, 5))
}

// TestWRMergeEmptyBranches covers WR merge with empty sides and mismatch.
func TestWRMergeEmptyBranches(t *testing.T) {
	a := NewWR[int](3, 1)
	b := NewWR[int](3, 2)
	b.Add(7, 0)
	a.Merge(b) // empty ← nonempty: adopt
	for _, it := range a.Sample() {
		if it != 7 {
			t.Errorf("adopted sample = %v", a.Sample())
		}
	}
	c := NewWR[int](3, 3)
	a.Merge(c) // nonempty ← empty: no-op
	if a.N() != 1 {
		t.Errorf("N = %d", a.N())
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for size mismatch")
		}
	}()
	a.Merge(NewWR[int](2, 4))
}

// TestPriorityMergeSizeMismatchPanics completes merge error coverage.
func TestPriorityMergeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPriority[int](2, 1).Merge(NewPriority[int](3, 2))
}

// TestChainEmptySample covers the no-sample path.
func TestChainEmptySample(t *testing.T) {
	ch := NewChain[int](5, 1)
	if _, ok := ch.Sample(); ok {
		t.Error("empty chain claims a sample")
	}
}
