package sample

import (
	"errors"
	"testing"

	"forwarddecay/decay"
)

// Landmark-shift tests for the forward samplers: under exponential decay the
// rebase is a uniform translation of log keys, priorities and weights, so the
// retained sample — and every later sampling decision — is identical to a
// sampler that never shifted. The samplers are deterministic given a seed,
// which lets these tests demand exact sample equality.

func sampleShiftModel() decay.Forward {
	return decay.NewForward(decay.NewExp(0.02), 0)
}

func TestForwardWRSShiftPreservesSample(t *testing.T) {
	m := sampleShiftModel()
	s, ref := NewForwardWRS[int](m, 20, 7), NewForwardWRS[int](m, 20, 7)
	for i := 0; i < 2000; i++ {
		ts := float64(i) / 4
		s.Observe(i, ts)
		ref.Observe(i, ts)
		if i%300 == 299 {
			if err := s.ShiftLandmark(ts - 10); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, want := s.Sample(), ref.Sample()
	if len(got) != len(want) {
		t.Fatalf("shifted sampler retains %d items, unshifted %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("item %d: shifted %v, unshifted %v", i, got[i], want[i])
		}
	}
}

func TestForwardPriorityShiftPreservesSample(t *testing.T) {
	m := sampleShiftModel()
	s, ref := NewForwardPriority[int](m, 20, 11), NewForwardPriority[int](m, 20, 11)
	for i := 0; i < 2000; i++ {
		ts := float64(i) / 4
		s.Observe(i, ts)
		ref.Observe(i, ts)
		if i%450 == 449 {
			if err := s.ShiftLandmark(ts - 25); err != nil {
				t.Fatal(err)
			}
		}
	}
	now := 500.0
	got, want := s.Sample(now), ref.Sample(now)
	if len(got) != len(want) {
		t.Fatalf("shifted sampler retains %d items, unshifted %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Item != want[i].Item {
			t.Fatalf("item %d: shifted %v, unshifted %v", i, got[i].Item, want[i].Item)
		}
		// Weight estimates exponentiate translated log quantities, so they
		// agree to float rounding (the retained set itself is exact).
		if d := got[i].Weight - want[i].Weight; d > 1e-12*want[i].Weight || d < -1e-12*want[i].Weight {
			t.Fatalf("item %d weight: shifted %v, unshifted %v", i, got[i].Weight, want[i].Weight)
		}
	}
}

func TestForwardWRShiftPreservesSample(t *testing.T) {
	m := sampleShiftModel()
	s, ref := NewForwardWR[int](m, 15, 3), NewForwardWR[int](m, 15, 3)
	for i := 0; i < 1000; i++ {
		ts := float64(i) / 2
		s.Observe(i, ts)
		ref.Observe(i, ts)
		if i == 600 {
			if err := s.ShiftLandmark(250); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, want := s.Sample(), ref.Sample()
	if len(got) != len(want) {
		t.Fatalf("shifted sampler holds %d slots, unshifted %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("slot %d: shifted %v, unshifted %v", i, got[i], want[i])
		}
	}
}

// TestSamplerShiftRejectsNonShiftableTyped: the samplers refuse landmark
// shifts under polynomial decay with the matchable typed error, leaving the
// sampler untouched.
func TestSamplerShiftRejectsNonShiftableTyped(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), 0)
	shifters := map[string]interface{ ShiftLandmark(float64) error }{
		"ForwardWR":       NewForwardWR[int](m, 10, 1),
		"ForwardWRS":      NewForwardWRS[int](m, 10, 1),
		"ForwardPriority": NewForwardPriority[int](m, 10, 1),
	}
	for name, s := range shifters {
		err := s.ShiftLandmark(10)
		var nse *decay.NotShiftableError
		if !errors.As(err, &nse) {
			t.Errorf("%s.ShiftLandmark under poly decay returned %v, want *decay.NotShiftableError", name, err)
		}
	}
}
