// Package sample implements random sampling under forward decay (Section V
// of the forward-decay paper) together with the undecayed and
// backward-decay baselines used in its evaluation:
//
//   - WR: sampling with replacement under any forward decay function in
//     constant space and time per tuple (Theorem 5).
//   - WRS: weighted reservoir sampling without replacement, the algorithm
//     of Efraimidis and Spirakis (Theorem 6).
//   - Priority: priority sampling of Alon, Duffield, Lund and Thorup, with
//     the near-optimal unbiased subset-sum estimator (Theorem 6).
//   - Reservoir: classical unweighted reservoir sampling, Vitter's
//     Algorithm R, plus the skip-based Algorithm X variant — the undecayed
//     baseline of Figure 3.
//   - Aggarwal: biased reservoir sampling for exponential decay (Aggarwal,
//     VLDB 2006) — the prior-art baseline of Figure 3, which requires
//     sequential arrivals and supports only exponential decay.
//   - Chain: chain sampling from a count-based sliding window (Babcock,
//     Datar and Motwani), the sliding-window baseline of §VII.
//
// Weights are supplied in the log domain (ln g(tᵢ−L)): all selection logic
// depends only on ratios, so exponential decay over unbounded streams never
// overflows. Because forward and backward exponential decay coincide
// (§III-A), WRS and Priority with exponential log-weights solve the
// exponentially-decayed sampling problem in O(k) space (Corollary 1),
// strictly improving on Aggarwal's method, which is tied to arrival counts.
//
// The Forward* wrappers bind a sampler to a decay.Forward model so callers
// deal only in timestamps. Samplers are deterministic given their seed and
// are not safe for concurrent use.
package sample

import (
	"math"

	"forwarddecay/internal/core"
)

// logUniform returns ln u for u uniform in (0,1), i.e. a draw of −Exp(1).
func logUniform(rng *core.RNG) float64 { return math.Log(rng.Float64()) }
