package sample

import "forwarddecay/decay"

// Landmark shifting for the samplers (epoch rollover). Under exponential
// decay a landmark move changes every log static weight by the same additive
// constant delta, so each sampler rebases in place:
//
//   - WR keeps only the running total weight, whose log scale shifts;
//   - WRS keys are ln(−ln u) − ln w, so each key moves by −delta and each
//     stored weight by +delta — a uniform translation that preserves the
//     heap order, hence the retained sample, exactly;
//   - Priority priorities are ln w − ln u, so keys and weights both move by
//     +delta, again order-preserving.
//
// Repeated shifts therefore never change which items are sampled; only the
// stored log quantities are translated (each translation is one float add
// per entry, so round-off does not compound structurally).

// ShiftLog adds delta to the log weight of every accumulated item.
func (s *WR[T]) ShiftLog(delta float64) { s.w.Shift(delta) }

// ShiftLog adds delta to the log weight of every retained item, translating
// the selection keys accordingly. The retained sample is unchanged.
func (s *WRS[T]) ShiftLog(delta float64) {
	for i := range s.h {
		s.h[i].logW += delta
		s.h[i].logKey -= delta
	}
}

// ShiftLog adds delta to the log weight of every retained item, translating
// the priorities accordingly. The retained sample and threshold entry are
// unchanged.
func (s *Priority[T]) ShiftLog(delta float64) {
	for i := range s.h {
		s.h[i].logW += delta
		s.h[i].logQ += delta
	}
}

// shiftModel factors the common model handling of the Forward* samplers.
func shiftModel(m decay.Forward, newL float64) (decay.Forward, float64, error) {
	shifted, logShift, ok := m.Shifted(newL)
	if !ok {
		return m, 0, &decay.NotShiftableError{Func: m.Func.String()}
	}
	return shifted, logShift, nil
}

// ShiftLandmark rebases the sampler onto a new landmark (exponential decay
// only); the sampled distribution is unchanged.
func (f *ForwardWR[T]) ShiftLandmark(newL float64) error {
	m, d, err := shiftModel(f.model, newL)
	if err != nil {
		return err
	}
	f.model = m
	f.s.ShiftLog(d)
	return nil
}

// ShiftLandmark rebases the sampler onto a new landmark (exponential decay
// only); the retained sample is unchanged.
func (f *ForwardWRS[T]) ShiftLandmark(newL float64) error {
	m, d, err := shiftModel(f.model, newL)
	if err != nil {
		return err
	}
	f.model = m
	f.s.ShiftLog(d)
	return nil
}

// ShiftLandmark rebases the sampler onto a new landmark (exponential decay
// only); the retained sample and its weight estimates are unchanged.
func (f *ForwardPriority[T]) ShiftLandmark(newL float64) error {
	m, d, err := shiftModel(f.model, newL)
	if err != nil {
		return err
	}
	f.model = m
	f.s.ShiftLog(d)
	return nil
}
