package sample

import (
	"forwarddecay/internal/core"
)

// WR draws s independent samples with replacement, each distributed
// proportionally to the item weights (Theorem 5 of the paper): slot j holds
// item i with probability wᵢ/W. Each slot retains the arriving item with
// probability wᵢ/Wᵢ, where Wᵢ is the running total weight — the weighted
// generalization of the classical single-item reservoir. Space is O(s) and
// each arrival costs O(s) coin flips (constant per slot).
//
// WR is not safe for concurrent use.
type WR[T any] struct {
	rng   *core.RNG
	slots []T
	w     core.ScaledSum // running total weight W
	n     uint64
}

// NewWR returns a with-replacement sampler with s slots. It panics if
// s < 1.
func NewWR[T any](s int, seed uint64) *WR[T] {
	if s < 1 {
		panic("sample: WR needs at least one slot")
	}
	return &WR[T]{rng: core.NewRNG(seed), slots: make([]T, s)}
}

// Add offers an item with the given log-domain weight (ln w).
func (s *WR[T]) Add(item T, logW float64) {
	s.w.Add(logW, 1)
	s.n++
	// p = w / W computed through the scaled sum's representation.
	sum, logScale := s.w.Raw()
	p := core.ExpClamped(logW-logScale) / sum
	for j := range s.slots {
		if s.rng.Float64() < p {
			s.slots[j] = item
		}
	}
}

// Sample returns the current s samples (with replacement). The slice aliases
// internal state; callers must not modify it. It is only meaningful once at
// least one item has been added.
func (s *WR[T]) Sample() []T { return s.slots }

// N returns the number of items offered.
func (s *WR[T]) N() uint64 { return s.n }

// Merge folds another with-replacement sampler into this one: slot j of the
// result holds this sampler's item with probability W₁/(W₁+W₂), which
// preserves the with-replacement distribution over the union of the inputs
// (distributed sampling, §VI-B). Both samplers must have the same slot
// count; it panics otherwise.
func (s *WR[T]) Merge(o *WR[T]) {
	if len(o.slots) != len(s.slots) {
		panic("sample: merging WR samplers of different sizes")
	}
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		copy(s.slots, o.slots)
		s.w.Merge(&o.w)
		s.n = o.n
		return
	}
	s1, l1 := s.w.Raw()
	s2, l2 := o.w.Raw()
	// p(keep ours) = W₁/(W₁+W₂) with Wᵢ = sᵢ·e^lᵢ, computed stably.
	var pOurs float64
	if l1 >= l2 {
		r := s2 * core.ExpClamped(l2-l1)
		pOurs = s1 / (s1 + r)
	} else {
		r := s1 * core.ExpClamped(l1-l2)
		pOurs = r / (r + s2)
	}
	for j := range s.slots {
		if s.rng.Float64() >= pOurs {
			s.slots[j] = o.slots[j]
		}
	}
	s.w.Merge(&o.w)
	s.n += o.n
}
