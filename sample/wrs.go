package sample

import (
	"math"

	"forwarddecay/internal/core"
)

// WRS is the weighted reservoir sampler of Efraimidis and Spirakis: it
// maintains a sample of k items without replacement whose distribution
// matches drawing items one at a time with probability proportional to
// weight among the not-yet-selected. Each item receives the key
// u^(1/w) (u uniform); the sample is the k largest keys, kept in a
// min-heap: O(k) space and O(log k) time per item (Theorem 6 of the paper).
//
// Keys are handled as ln(−ln u) − ln w, whose *smallest* k values
// correspond to the largest u^(1/w), so exponential-decay weights never
// overflow. WRS is not safe for concurrent use.
type WRS[T any] struct {
	k   int
	rng *core.RNG
	// Max-heap on logKey: the root is the worst (largest logKey) retained
	// item, evicted first.
	h []wrsEntry[T]
	n uint64
}

type wrsEntry[T any] struct {
	logKey float64 // ln(−ln u) − ln w; smaller is better
	item   T
	logW   float64
}

// NewWRS returns a without-replacement weighted reservoir of size k.
// It panics if k < 1.
func NewWRS[T any](k int, seed uint64) *WRS[T] {
	if k < 1 {
		panic("sample: WRS needs k >= 1")
	}
	return &WRS[T]{k: k, rng: core.NewRNG(seed), h: make([]wrsEntry[T], 0, k)}
}

// Add offers an item with the given log-domain weight (ln w). Zero-weight
// items (logW = −Inf) are never selected.
func (s *WRS[T]) Add(item T, logW float64) {
	s.n++
	if math.IsInf(logW, -1) || math.IsNaN(logW) {
		return
	}
	// −ln u is Exp(1); its log is finite with probability 1.
	logKey := math.Log(-logUniform(s.rng)) - logW
	if len(s.h) < s.k {
		s.h = append(s.h, wrsEntry[T]{logKey, item, logW})
		s.up(len(s.h) - 1)
		return
	}
	if logKey >= s.h[0].logKey {
		return
	}
	s.h[0] = wrsEntry[T]{logKey, item, logW}
	s.down(0)
}

// Sample returns the current sample of up to k items (fewer if fewer items
// were offered). Order is unspecified.
func (s *WRS[T]) Sample() []T {
	out := make([]T, len(s.h))
	for i, e := range s.h {
		out[i] = e.item
	}
	return out
}

// Len returns the current sample size.
func (s *WRS[T]) Len() int { return len(s.h) }

// N returns the number of items offered.
func (s *WRS[T]) N() uint64 { return s.n }

// Merge folds another WRS (same k) into this one: because every item keeps
// an independent key, the union's k smallest keys are exactly the sample of
// the combined stream, so merging distributed samplers is exact (§VI-B).
// It panics if the sizes differ.
func (s *WRS[T]) Merge(o *WRS[T]) {
	if o.k != s.k {
		panic("sample: merging WRS samplers of different sizes")
	}
	for _, e := range o.h {
		if len(s.h) < s.k {
			s.h = append(s.h, e)
			s.up(len(s.h) - 1)
			continue
		}
		if e.logKey < s.h[0].logKey {
			s.h[0] = e
			s.down(0)
		}
	}
	s.n += o.n
}

func (s *WRS[T]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.h[p].logKey >= s.h[i].logKey {
			break
		}
		s.h[p], s.h[i] = s.h[i], s.h[p]
		i = p
	}
}

func (s *WRS[T]) down(i int) {
	n := len(s.h)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && s.h[l].logKey > s.h[m].logKey {
			m = l
		}
		if r < n && s.h[r].logKey > s.h[m].logKey {
			m = r
		}
		if m == i {
			return
		}
		s.h[i], s.h[m] = s.h[m], s.h[i]
		i = m
	}
}
