package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"forwarddecay/internal/core"
)

func qconf(seed int64, n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(seed))}
}

// TestQuickWRSSampleInvariants: sample size is min(k, #positive-weight
// items), no duplicates, and every sampled item was offered.
func TestQuickWRSSampleInvariants(t *testing.T) {
	f := func(seed uint64, kRaw, nRaw uint8) bool {
		k := 1 + int(kRaw)%20
		n := int(nRaw) % 60
		rng := core.NewRNG(seed)
		s := NewWRS[int](k, seed)
		for i := 0; i < n; i++ {
			s.Add(i, rng.Float64()*10-5)
		}
		sm := s.Sample()
		want := k
		if n < k {
			want = n
		}
		if len(sm) != want {
			return false
		}
		seen := map[int]bool{}
		for _, it := range sm {
			if it < 0 || it >= n || seen[it] {
				return false
			}
			seen[it] = true
		}
		return s.N() == uint64(n)
	}
	if err := quick.Check(f, qconf(31, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickPriorityThresholdBelowAll: τ never exceeds any retained
// priority, and the estimate is exact when k covers the stream.
func TestQuickPriorityThresholdBelowAll(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw)%40
		rng := core.NewRNG(seed)
		s := NewPriority[int](50, seed) // k > n: everything retained
		var total float64
		for i := 0; i < n; i++ {
			w := 0.5 + 4*rng.Float64()
			s.Add(i, math.Log(w))
			total += w
		}
		if !math.IsInf(s.LogThreshold(), -1) {
			return false
		}
		got := s.EstimateTotal(0)
		return math.Abs(got-total) <= 1e-9*total
	}
	if err := quick.Check(f, qconf(32, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickPrioritySampleWeightsAboveThreshold: every reported weight is at
// least τ (ŵ = max(w, τ)).
func TestQuickPrioritySampleWeights(t *testing.T) {
	f := func(seed uint64) bool {
		rng := core.NewRNG(seed)
		s := NewPriority[int](10, seed)
		for i := 0; i < 100; i++ {
			s.Add(i, rng.Float64()*6-3)
		}
		logTau := s.LogThreshold()
		tau := math.Exp(logTau)
		for _, it := range s.Sample(0) {
			if it.Weight < tau-1e-9 {
				return false
			}
		}
		return s.Len() == 10
	}
	if err := quick.Check(f, qconf(33, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickReservoirInvariants: sample is min(k, n) distinct offered items.
func TestQuickReservoirInvariants(t *testing.T) {
	f := func(seed uint64, kRaw, nRaw uint8) bool {
		k := 1 + int(kRaw)%15
		n := int(nRaw) % 80
		s := NewReservoir[int](k, seed)
		sk := NewSkipReservoir[int](k, seed+1)
		for i := 0; i < n; i++ {
			s.Add(i)
			sk.Add(i)
		}
		check := func(sm []int) bool {
			want := k
			if n < k {
				want = n
			}
			if len(sm) != want {
				return false
			}
			seen := map[int]bool{}
			for _, it := range sm {
				if it < 0 || it >= n || seen[it] {
					return false
				}
				seen[it] = true
			}
			return true
		}
		return check(s.Sample()) && check(sk.Sample())
	}
	if err := quick.Check(f, qconf(34, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickChainSampleInWindow: any reported sample lies inside the window
// of the last w items.
func TestQuickChainSampleInWindow(t *testing.T) {
	f := func(seed uint64, wRaw, nRaw uint8) bool {
		w := 1 + int(wRaw)%30
		n := 1 + int(nRaw)%200
		s := NewChain[int](w, seed)
		for i := 1; i <= n; i++ {
			s.Add(i)
		}
		it, ok := s.Sample()
		if !ok {
			// Permissible only transiently; with w ≥ 1 the most recent
			// item is always a candidate, but a chain reset that failed
			// the coin flip can leave a gap. Accept empty only when the
			// chain is empty too.
			return s.ChainLen() == 0
		}
		return it > n-w && it <= n
	}
	if err := quick.Check(f, qconf(35, 400)); err != nil {
		t.Error(err)
	}
}

// TestQuickWRTotalWeightTracksStream: the with-replacement sampler's slots
// are always filled with offered items once anything has been offered.
func TestQuickWRSlotsValid(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := 1 + int(nRaw)%50
		s := NewWR[int](7, seed)
		for i := 1; i <= n; i++ {
			s.Add(i, float64(i)*0.1)
		}
		for _, it := range s.Sample() {
			if it < 1 || it > n {
				return false
			}
		}
		return s.N() == uint64(n)
	}
	if err := quick.Check(f, qconf(36, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickWRSMergePreservesInvariants: merged samplers hold the k best
// keys of the union — in particular, merging must never shrink the sample
// below min(k, total items).
func TestQuickWRSMergeInvariants(t *testing.T) {
	f := func(seed uint64, naRaw, nbRaw uint8) bool {
		na, nb := int(naRaw)%30, int(nbRaw)%30
		const k = 8
		a := NewWRS[int](k, seed)
		b := NewWRS[int](k, seed+1)
		for i := 0; i < na; i++ {
			a.Add(i, 0.5)
		}
		for i := 100; i < 100+nb; i++ {
			b.Add(i, 0.5)
		}
		a.Merge(b)
		want := k
		if na+nb < k {
			want = na + nb
		}
		return a.Len() == want && a.N() == uint64(na+nb)
	}
	if err := quick.Check(f, qconf(37, 300)); err != nil {
		t.Error(err)
	}
}
