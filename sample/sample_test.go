package sample

import (
	"math"
	"testing"

	"forwarddecay/decay"
	"forwarddecay/internal/core"
)

// freqTolerance is the relative tolerance we allow between an empirical
// frequency and its expectation in the statistical tests below; trial
// counts are chosen so this corresponds to several standard deviations.
const freqTolerance = 0.08

// TestWRMatchesWeights draws many with-replacement slots over a small
// weighted stream and checks each item's selection frequency against
// w/W (Theorem 5).
func TestWRMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 10}
	var W float64
	for _, w := range weights {
		W += w
	}
	const slots = 60000
	s := NewWR[int](slots, 7)
	for i, w := range weights {
		s.Add(i, math.Log(w))
	}
	counts := make([]int, len(weights))
	for _, it := range s.Sample() {
		counts[it]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / slots
		want := w / W
		if math.Abs(got-want) > freqTolerance*want {
			t.Errorf("item %d: frequency %v, want %v", i, got, want)
		}
	}
}

// TestWROrderInsensitive adds items in two different orders and checks the
// selection frequencies agree (forward decay sampling must not depend on
// arrival order).
func TestWROrderInsensitive(t *testing.T) {
	weights := []float64{5, 1, 3}
	const slots = 40000
	count := func(order []int, seed uint64) []int {
		s := NewWR[int](slots, seed)
		for _, i := range order {
			s.Add(i, math.Log(weights[i]))
		}
		c := make([]int, len(weights))
		for _, it := range s.Sample() {
			c[it]++
		}
		return c
	}
	a := count([]int{0, 1, 2}, 1)
	b := count([]int{2, 0, 1}, 2)
	for i := range weights {
		fa, fb := float64(a[i])/slots, float64(b[i])/slots
		if math.Abs(fa-fb) > freqTolerance*math.Max(fa, fb) {
			t.Errorf("item %d: order A freq %v, order B freq %v", i, fa, fb)
		}
	}
}

func TestWRMergePreservesDistribution(t *testing.T) {
	// Merge two sites and compare frequencies against single-stream.
	const slots = 50000
	wA := []float64{1, 4}
	wB := []float64{2, 8}
	a := NewWR[int](slots, 3)
	b := NewWR[int](slots, 4)
	a.Add(0, math.Log(wA[0]))
	a.Add(1, math.Log(wA[1]))
	b.Add(2, math.Log(wB[0]))
	b.Add(3, math.Log(wB[1]))
	a.Merge(b)
	counts := make([]int, 4)
	for _, it := range a.Sample() {
		counts[it]++
	}
	W := 15.0
	for i, w := range []float64{1, 4, 2, 8} {
		got := float64(counts[i]) / slots
		want := w / W
		if math.Abs(got-want) > freqTolerance*want {
			t.Errorf("merged item %d: freq %v, want %v", i, got, want)
		}
	}
	if a.N() != 4 {
		t.Errorf("merged N = %d, want 4", a.N())
	}
}

// TestWRSSingleSlotInclusion checks the exact k=1 inclusion probability
// w/W of weighted reservoir sampling across many independent trials.
func TestWRSSingleSlotInclusion(t *testing.T) {
	weights := []float64{1, 2, 5}
	const trials = 40000
	counts := make([]int, len(weights))
	for tr := 0; tr < trials; tr++ {
		s := NewWRS[int](1, uint64(tr)+1)
		for i, w := range weights {
			s.Add(i, math.Log(w))
		}
		counts[s.Sample()[0]]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / trials
		want := w / 8
		if math.Abs(got-want) > freqTolerance*want {
			t.Errorf("item %d: inclusion %v, want %v", i, got, want)
		}
	}
}

// TestWRSSequentialDrawDistribution verifies the Efraimidis–Spirakis
// distribution for k=2 over 3 items against the exact sequential-draw
// probabilities.
func TestWRSSequentialDrawDistribution(t *testing.T) {
	w := []float64{1, 2, 3}
	W := 6.0
	// P(set {i,j}) = p(i first, j second) + p(j first, i second).
	pair := func(i, j int) float64 {
		return w[i]/W*(w[j]/(W-w[i])) + w[j]/W*(w[i]/(W-w[j]))
	}
	want := map[[2]int]float64{
		{0, 1}: pair(0, 1), {0, 2}: pair(0, 2), {1, 2}: pair(1, 2),
	}
	const trials = 60000
	got := map[[2]int]float64{}
	for tr := 0; tr < trials; tr++ {
		s := NewWRS[int](2, uint64(tr)+99)
		for i, wi := range w {
			s.Add(i, math.Log(wi))
		}
		sm := s.Sample()
		a, b := sm[0], sm[1]
		if a > b {
			a, b = b, a
		}
		got[[2]int{a, b}]++
	}
	for k, p := range want {
		g := got[k] / trials
		if math.Abs(g-p) > freqTolerance*p {
			t.Errorf("set %v: frequency %v, want %v", k, g, p)
		}
	}
}

func TestWRSSmallStreamTakesAll(t *testing.T) {
	s := NewWRS[int](10, 5)
	for i := 0; i < 4; i++ {
		s.Add(i, 0)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	seen := map[int]bool{}
	for _, it := range s.Sample() {
		seen[it] = true
	}
	if len(seen) != 4 {
		t.Errorf("sample %v should contain all 4 items", s.Sample())
	}
	// Zero-weight items are never selected.
	s2 := NewWRS[int](2, 6)
	s2.Add(1, math.Inf(-1))
	s2.Add(2, 0)
	if s2.Len() != 1 || s2.Sample()[0] != 2 {
		t.Errorf("zero-weight item selected: %v", s2.Sample())
	}
}

// TestWRSMergeEquivalentToSingleStream compares inclusion frequencies of
// merged distributed samplers with a single-stream sampler.
func TestWRSMergeEquivalentToSingleStream(t *testing.T) {
	weights := []float64{1, 3, 2, 6}
	const trials = 30000
	single := make([]int, 4)
	merged := make([]int, 4)
	for tr := 0; tr < trials; tr++ {
		s := NewWRS[int](2, uint64(tr)*2+1)
		for i, w := range weights {
			s.Add(i, math.Log(w))
		}
		for _, it := range s.Sample() {
			single[it]++
		}
		a := NewWRS[int](2, uint64(tr)*7+3)
		b := NewWRS[int](2, uint64(tr)*13+5)
		a.Add(0, math.Log(weights[0]))
		a.Add(1, math.Log(weights[1]))
		b.Add(2, math.Log(weights[2]))
		b.Add(3, math.Log(weights[3]))
		a.Merge(b)
		for _, it := range a.Sample() {
			merged[it]++
		}
	}
	for i := range weights {
		fs, fm := float64(single[i])/trials, float64(merged[i])/trials
		if math.Abs(fs-fm) > freqTolerance*math.Max(fs, fm) {
			t.Errorf("item %d: single %v vs merged %v", i, fs, fm)
		}
	}
}

// TestPriorityEstimatorUnbiased checks that the priority-sampling total
// estimate Σ max(w, τ) is unbiased over repeated runs.
func TestPriorityEstimatorUnbiased(t *testing.T) {
	rng := core.NewRNG(77)
	weights := make([]float64, 200)
	var total float64
	for i := range weights {
		weights[i] = math.Exp(3 * rng.Float64()) // skewed weights
		total += weights[i]
	}
	const trials = 3000
	var sum float64
	for tr := 0; tr < trials; tr++ {
		s := NewPriority[int](20, uint64(tr)+1)
		for i, w := range weights {
			s.Add(i, math.Log(w))
		}
		sum += s.EstimateTotal(0)
	}
	mean := sum / trials
	if math.Abs(mean-total) > 0.05*total {
		t.Errorf("mean estimate %v, want %v (bias %v%%)", mean, total, 100*(mean-total)/total)
	}
}

// TestPrioritySubsetSumUnbiased estimates the weight of an arbitrary subset
// (even-indexed items) from the sample.
func TestPrioritySubsetSumUnbiased(t *testing.T) {
	rng := core.NewRNG(78)
	weights := make([]float64, 100)
	var subset float64
	for i := range weights {
		weights[i] = 0.5 + 4*rng.Float64()
		if i%2 == 0 {
			subset += weights[i]
		}
	}
	const trials = 4000
	var sum float64
	for tr := 0; tr < trials; tr++ {
		s := NewPriority[int](15, uint64(tr)+11)
		for i, w := range weights {
			s.Add(i, math.Log(w))
		}
		for _, it := range s.Sample(0) {
			if it.Item%2 == 0 {
				sum += it.Weight
			}
		}
	}
	mean := sum / trials
	if math.Abs(mean-subset) > 0.06*subset {
		t.Errorf("mean subset estimate %v, want %v", mean, subset)
	}
}

func TestPriorityExactBelowK(t *testing.T) {
	s := NewPriority[int](10, 9)
	weights := []float64{2, 3, 4}
	for i, w := range weights {
		s.Add(i, math.Log(w))
	}
	if !math.IsInf(s.LogThreshold(), -1) {
		t.Errorf("threshold should be -Inf below k, got %v", s.LogThreshold())
	}
	if got := s.EstimateTotal(0); math.Abs(got-9) > 1e-9 {
		t.Errorf("below-k estimate = %v, want exact 9", got)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestPriorityMergeUnbiased(t *testing.T) {
	weights := []float64{1, 2, 3, 4, 5, 6}
	total := 21.0
	const trials = 5000
	var sum float64
	for tr := 0; tr < trials; tr++ {
		a := NewPriority[int](3, uint64(tr)*3+1)
		b := NewPriority[int](3, uint64(tr)*5+2)
		for i, w := range weights {
			if i < 3 {
				a.Add(i, math.Log(w))
			} else {
				b.Add(i, math.Log(w))
			}
		}
		a.Merge(b)
		sum += a.EstimateTotal(0)
	}
	mean := sum / trials
	if math.Abs(mean-total) > 0.05*total {
		t.Errorf("merged mean estimate %v, want %v", mean, total)
	}
}

func TestReservoirUniform(t *testing.T) {
	const n, k, trials = 50, 5, 20000
	counts := make([]int, n)
	for tr := 0; tr < trials; tr++ {
		s := NewReservoir[int](k, uint64(tr)+1)
		for i := 0; i < n; i++ {
			s.Add(i)
		}
		for _, it := range s.Sample() {
			counts[it]++
		}
	}
	want := float64(k) / n
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-want) > freqTolerance*want {
			t.Errorf("item %d: inclusion %v, want %v", i, got, want)
		}
	}
}

func TestSkipReservoirMatchesReservoirDistribution(t *testing.T) {
	const n, k, trials = 60, 6, 20000
	counts := make([]int, n)
	for tr := 0; tr < trials; tr++ {
		s := NewSkipReservoir[int](k, uint64(tr)+101)
		for i := 0; i < n; i++ {
			s.Add(i)
		}
		for _, it := range s.Sample() {
			counts[it]++
		}
	}
	want := float64(k) / n
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-want) > freqTolerance*want {
			t.Errorf("item %d: inclusion %v, want %v", i, got, want)
		}
	}
}

func TestReservoirMerge(t *testing.T) {
	const k, trials = 4, 20000
	counts := make([]int, 40)
	for tr := 0; tr < trials; tr++ {
		a := NewReservoir[int](k, uint64(tr)*3+1)
		b := NewReservoir[int](k, uint64(tr)*7+2)
		for i := 0; i < 20; i++ {
			a.Add(i)
		}
		for i := 20; i < 40; i++ {
			b.Add(i)
		}
		a.Merge(b)
		for _, it := range a.Sample() {
			counts[it]++
		}
	}
	want := float64(k) / 40
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-want) > freqTolerance*want {
			t.Errorf("item %d: inclusion %v, want %v", i, got, want)
		}
	}
}

// TestAggarwalExponentialBias checks that inclusion probability decreases
// with age and roughly follows exp(−age/c) for the biased reservoir.
func TestAggarwalExponentialBias(t *testing.T) {
	const n, c, trials = 2000, 100, 4000
	counts := make([]int, n)
	for tr := 0; tr < trials; tr++ {
		s := NewAggarwal[int](c, uint64(tr)+1)
		for i := 0; i < n; i++ {
			s.Add(i)
		}
		for _, it := range s.Sample() {
			counts[it]++
		}
	}
	// Bucket by age and verify monotone increase toward recent items and an
	// approximately exponential profile.
	inc := func(i int) float64 { return float64(counts[i]) / trials }
	recent := (inc(n-1) + inc(n-2) + inc(n-3)) / 3
	old := (inc(n-301) + inc(n-302) + inc(n-303)) / 3
	if recent <= old {
		t.Fatalf("recent inclusion %v not above old %v", recent, old)
	}
	ratio := old / recent
	wantRatio := math.Exp(-300.0 / c)
	if math.Abs(math.Log(ratio)-math.Log(wantRatio)) > 0.7 {
		t.Errorf("inclusion ratio at age 300: %v, want ≈ %v", ratio, wantRatio)
	}
}

// TestChainUniformOverWindow checks chain sampling returns each in-window
// item with probability 1/w and never returns expired items.
func TestChainUniformOverWindow(t *testing.T) {
	const n, w, trials = 300, 50, 40000
	counts := make([]int, n)
	var misses int
	for tr := 0; tr < trials; tr++ {
		s := NewChain[int](w, uint64(tr)*2654435761+1)
		for i := 0; i < n; i++ {
			s.Add(i)
		}
		it, ok := s.Sample()
		if !ok {
			misses++
			continue
		}
		if it < n-w {
			t.Fatalf("sampled expired item %d (window is [%d,%d))", it, n-w, n)
		}
		counts[it]++
	}
	if misses > 0 {
		t.Fatalf("%d trials had no sample", misses)
	}
	// Tolerance: 4.5 standard deviations of a binomial(trials, 1/w)
	// frequency; with 50 items tested, a correct sampler exceeds this with
	// probability well under 1e-3.
	want := 1.0 / w
	tol := 4.5 * math.Sqrt(want*(1-want)/trials)
	for i := n - w; i < n; i++ {
		got := float64(counts[i]) / trials
		if math.Abs(got-want) > tol {
			t.Errorf("item %d: inclusion %v, want %v ± %v", i, got, want, tol)
		}
	}
}

func TestChainMemoryModest(t *testing.T) {
	s := NewChain[int](1000, 5)
	for i := 0; i < 100000; i++ {
		s.Add(i)
	}
	// Expected chain length is O(1); assert a generous cap.
	if s.ChainLen() > 50 {
		t.Errorf("chain length %d unexpectedly large", s.ChainLen())
	}
}

func TestDeterminism(t *testing.T) {
	mk := func(seed uint64) []int {
		s := NewWRS[int](5, seed)
		for i := 0; i < 100; i++ {
			s.Add(i, float64(i)*0.01)
		}
		return s.Sample()
	}
	a, b := mk(42), mk(42)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	am := map[int]bool{}
	for _, x := range a {
		am[x] = true
	}
	for _, x := range b {
		if !am[x] {
			t.Fatalf("same seed produced different samples: %v vs %v", a, b)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"WR":            func() { NewWR[int](0, 1) },
		"WRS":           func() { NewWRS[int](0, 1) },
		"Priority":      func() { NewPriority[int](0, 1) },
		"Reservoir":     func() { NewReservoir[int](0, 1) },
		"SkipReservoir": func() { NewSkipReservoir[int](0, 1) },
		"Aggarwal":      func() { NewAggarwal[int](0, 1) },
		"Chain":         func() { NewChain[int](0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
	// Size-mismatch merges panic too.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("WRS size-mismatch merge: expected panic")
			}
		}()
		NewWRS[int](2, 1).Merge(NewWRS[int](3, 2))
	}()
}

// TestForwardWRSExponentialDecay verifies Corollary 1: under exponential
// forward decay the k=1 inclusion probability of an item is proportional to
// exp(−α(t−tᵢ)), for arbitrary (out-of-order) timestamps.
func TestForwardWRSExponentialDecay(t *testing.T) {
	m := decay.NewForward(decay.NewExp(0.1), 0)
	ts := []float64{30, 10, 20} // deliberately out of order
	var W float64
	for _, ti := range ts {
		W += math.Exp(0.1 * ti)
	}
	const trials = 40000
	counts := make([]int, len(ts))
	for tr := 0; tr < trials; tr++ {
		s := NewForwardWRS[int](m, 1, uint64(tr)+1)
		for i, ti := range ts {
			s.Observe(i, ti)
		}
		counts[s.Sample()[0]]++
	}
	for i, ti := range ts {
		got := float64(counts[i]) / trials
		want := math.Exp(0.1*ti) / W
		if math.Abs(got-want) > freqTolerance*want {
			t.Errorf("item %d (t=%v): inclusion %v, want %v", i, ti, got, want)
		}
	}
}

// TestForwardPriorityDecayedCount checks the PRISAMP-style decayed count
// estimator against the exact decayed count.
func TestForwardPriorityDecayedCount(t *testing.T) {
	m := decay.NewForward(decay.NewPoly(2), 0)
	rng := core.NewRNG(79)
	ts := make([]float64, 500)
	for i := range ts {
		ts[i] = 1 + 99*rng.Float64()
	}
	const tq = 100
	var C float64
	for _, ti := range ts {
		C += m.Weight(ti, tq)
	}
	const trials = 2000
	var sum float64
	for tr := 0; tr < trials; tr++ {
		s := NewForwardPriority[int](m, 30, uint64(tr)+1)
		for i, ti := range ts {
			s.Observe(i, ti)
		}
		sum += s.EstimateDecayedCount(tq)
	}
	mean := sum / trials
	if math.Abs(mean-C) > 0.05*C {
		t.Errorf("mean decayed-count estimate %v, want %v", mean, C)
	}
}

// TestForwardWRLongExpStream exercises the with-replacement sampler over an
// exponential stream long enough to require internal rebasing.
func TestForwardWRLongExpStream(t *testing.T) {
	m := decay.NewForward(decay.NewExp(1), 0)
	s := NewForwardWR[int](m, 100, 81)
	for i := 0; i < 5000; i++ {
		s.Observe(i, float64(i))
	}
	// Under α=1 per-second decay with unit spacing, almost all probability
	// mass is on the last few items.
	recent := 0
	for _, it := range s.Sample() {
		if it >= 4995 {
			recent++
		}
	}
	if recent < 95 {
		t.Errorf("only %d/100 slots hold recent items; exp weighting broken", recent)
	}
}
