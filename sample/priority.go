package sample

import (
	"math"

	"forwarddecay/internal/core"
)

// Weighted is a sampled item together with its priority-sampling weight
// estimate ŵ = max(w, τ) (scaled by the caller-supplied normalizer).
type Weighted[T any] struct {
	Item   T
	Weight float64
}

// Priority is the priority sampler of Alon, Duffield, Lund and Thorup:
// each item gets priority q = w/u (u uniform); the sampler retains the k+1
// highest priorities, the (k+1)-st being the threshold τ. The k retained
// items with weight estimates max(w, τ) give unbiased, near-optimal-
// variance estimates of arbitrary subset sums — which is why the paper uses
// it as the forward-decay sampling UDAF (PRISAMP) in Figure 3.
//
// Priorities and weights are kept in the log domain; exponential decay
// never overflows. Priority is not safe for concurrent use.
type Priority[T any] struct {
	k   int
	rng *core.RNG
	// Min-heap on logQ holding up to k+1 entries; the root is the
	// threshold entry.
	h []priEntry[T]
	n uint64
}

type priEntry[T any] struct {
	logQ float64 // ln w − ln u
	logW float64
	item T
}

// NewPriority returns a priority sampler of size k. It panics if k < 1.
func NewPriority[T any](k int, seed uint64) *Priority[T] {
	if k < 1 {
		panic("sample: Priority needs k >= 1")
	}
	return &Priority[T]{k: k, rng: core.NewRNG(seed), h: make([]priEntry[T], 0, k+1)}
}

// Add offers an item with the given log-domain weight (ln w).
func (s *Priority[T]) Add(item T, logW float64) {
	s.n++
	if math.IsInf(logW, -1) || math.IsNaN(logW) {
		return
	}
	logQ := logW - logUniform(s.rng) // ln u < 0, so logQ ≥ logW
	if len(s.h) < s.k+1 {
		s.h = append(s.h, priEntry[T]{logQ, logW, item})
		s.up(len(s.h) - 1)
		return
	}
	if logQ <= s.h[0].logQ {
		return
	}
	s.h[0] = priEntry[T]{logQ, logW, item}
	s.down(0)
}

// LogThreshold returns ln τ, the log-priority of the (k+1)-st entry, or
// −Inf while the sampler holds at most k items (every offered item is then
// in the sample and estimates are exact).
func (s *Priority[T]) LogThreshold() float64 {
	if len(s.h) <= s.k {
		return math.Inf(-1)
	}
	return s.h[0].logQ
}

// Sample returns the current sample: the up-to-k highest-priority items,
// each with the unbiased weight estimate ŵ = max(w, τ) scaled down by
// exp(logNorm). Pass the decay model's LogNormalizer(t) to obtain decayed
// weights; pass 0 for raw weights (which may overflow for exponential
// decay — prefer a normalizer).
func (s *Priority[T]) Sample(logNorm float64) []Weighted[T] {
	logTau := s.LogThreshold()
	out := make([]Weighted[T], 0, s.k)
	for i, e := range s.h {
		if len(s.h) == s.k+1 && i == 0 {
			continue // the threshold entry is not part of the sample
		}
		lw := e.logW
		if logTau > lw {
			lw = logTau
		}
		out = append(out, Weighted[T]{Item: e.item, Weight: core.ExpClamped(lw - logNorm)})
	}
	return out
}

// EstimateTotal returns the unbiased estimate of the total weight of all
// offered items, scaled down by exp(logNorm): Σ max(wᵢ, τ) over the sample.
func (s *Priority[T]) EstimateTotal(logNorm float64) float64 {
	var sum core.KahanSum
	for _, w := range s.Sample(logNorm) {
		sum.Add(w.Weight)
	}
	return sum.Value()
}

// Len returns the current sample size (excluding the threshold entry).
func (s *Priority[T]) Len() int {
	if len(s.h) > s.k {
		return s.k
	}
	return len(s.h)
}

// N returns the number of items offered.
func (s *Priority[T]) N() uint64 { return s.n }

// Merge folds another priority sampler (same k) into this one: priorities
// are independent uniforms, so the union's k+1 highest priorities are
// distributed exactly as a single-stream sampler's (§VI-B). It panics if
// the sizes differ.
func (s *Priority[T]) Merge(o *Priority[T]) {
	if o.k != s.k {
		panic("sample: merging Priority samplers of different sizes")
	}
	for _, e := range o.h {
		if len(s.h) < s.k+1 {
			s.h = append(s.h, e)
			s.up(len(s.h) - 1)
			continue
		}
		if e.logQ > s.h[0].logQ {
			s.h[0] = e
			s.down(0)
		}
	}
	s.n += o.n
}

func (s *Priority[T]) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.h[p].logQ <= s.h[i].logQ {
			break
		}
		s.h[p], s.h[i] = s.h[i], s.h[p]
		i = p
	}
}

func (s *Priority[T]) down(i int) {
	n := len(s.h)
	for {
		l, r, m := 2*i+1, 2*i+2, i
		if l < n && s.h[l].logQ < s.h[m].logQ {
			m = l
		}
		if r < n && s.h[r].logQ < s.h[m].logQ {
			m = r
		}
		if m == i {
			return
		}
		s.h[i], s.h[m] = s.h[m], s.h[i]
		i = m
	}
}
