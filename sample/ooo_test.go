package sample

import (
	"math"
	"testing"

	"forwarddecay/decay"
)

// meanTS returns the mean sampled timestamp.
func meanTS(sample []float64) float64 {
	var sum float64
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// TestAggarwalIndexBiasUnderReordering pins the documented failure mode of
// the Aggarwal baseline: because its bias is in arrival INDEX, not
// timestamp, reversing the delivery order of the very same records flips
// which end of the time axis the sample concentrates on. ForwardWRS over
// an exponential model weighs each record by its own timestamp, so its
// sample is statistically the same under any arrival order (Corollary 1).
// This is the Figure 3 contrast, made mechanical.
func TestAggarwalIndexBiasUnderReordering(t *testing.T) {
	const (
		n = 20000
		c = 1000 // Aggarwal capacity → index bias rate ≈ 1/c
	)
	// Records are their own timestamps: 0..n-1 stream seconds.
	inOrder := make([]float64, n)
	for i := range inOrder {
		inOrder[i] = float64(i)
	}
	reversed := make([]float64, n)
	for i := range reversed {
		reversed[i] = float64(n - 1 - i)
	}

	runAggarwal := func(stream []float64) float64 {
		s := NewAggarwal[float64](c, 42)
		for _, ts := range stream {
			s.Add(ts)
		}
		return meanTS(s.Sample())
	}
	// An exponential bias with rate 1/c over the last arrivals should
	// concentrate the sample near the END of the delivery order. In
	// timestamp terms that is correct for in-order delivery and exactly
	// wrong for reversed delivery.
	aggIn := runAggarwal(inOrder)
	aggRev := runAggarwal(reversed)
	if aggIn < 0.7*n {
		t.Fatalf("Aggarwal in-order mean timestamp = %.0f, want > %.0f (recent-biased)", aggIn, 0.7*n)
	}
	if aggRev > 0.3*n {
		t.Fatalf("Aggarwal reversed mean timestamp = %.0f, want < %.0f: the index bias should (wrongly) favor old timestamps delivered last", aggRev, 0.3*n)
	}

	// ForwardWRS with a comparable exponential decay (half-life n/20
	// stream seconds) biases by timestamp, so both orders agree.
	model := decay.NewForward(decay.Exp{Alpha: math.Ln2 / (n / 20.0)}, 0)
	runForward := func(stream []float64) float64 {
		f := NewForwardWRS[float64](model, c, 42)
		for _, ts := range stream {
			f.Observe(ts, ts)
		}
		return meanTS(f.Sample())
	}
	fwdIn := runForward(inOrder)
	fwdRev := runForward(reversed)
	if fwdIn < 0.6*n {
		t.Fatalf("ForwardWRS in-order mean timestamp = %.0f, want > %.0f (recent-biased)", fwdIn, 0.6*n)
	}
	if fwdRev < 0.6*n {
		t.Fatalf("ForwardWRS reversed mean timestamp = %.0f, want > %.0f: forward decay must bias by timestamp regardless of arrival order", fwdRev, 0.6*n)
	}
	if d := math.Abs(fwdIn - fwdRev); d > 0.1*n {
		t.Fatalf("ForwardWRS order sensitivity: in-order mean %.0f vs reversed mean %.0f differ by %.0f (> %.0f)", fwdIn, fwdRev, d, 0.1*n)
	}
}
