package sample

import "forwarddecay/decay"

// ForwardWR samples with replacement under a forward decay model: at query
// time t, slot j holds item i with probability
// g(tᵢ−L) / Σⱼ g(tⱼ−L) — exactly the decayed distribution of Theorem 5.
type ForwardWR[T any] struct {
	model decay.Forward
	s     *WR[T]
}

// NewForwardWR returns a with-replacement forward-decay sampler with s
// slots under the given model.
func NewForwardWR[T any](m decay.Forward, s int, seed uint64) *ForwardWR[T] {
	return &ForwardWR[T]{model: m, s: NewWR[T](s, seed)}
}

// Observe offers an item with timestamp ti.
func (f *ForwardWR[T]) Observe(item T, ti float64) {
	f.s.Add(item, f.model.LogStaticWeight(ti))
}

// Sample returns the current samples (with replacement).
func (f *ForwardWR[T]) Sample() []T { return f.s.Sample() }

// Model returns the decay model.
func (f *ForwardWR[T]) Model() decay.Forward { return f.model }

// ForwardWRS samples k items without replacement under a forward decay
// model using weighted reservoir sampling (Theorem 6). Because forward and
// backward exponential decay coincide, ForwardWRS with an exponential
// function solves exponentially-decayed sampling in O(k) space for
// arbitrary timestamps and arrival orders (Corollary 1).
type ForwardWRS[T any] struct {
	model decay.Forward
	s     *WRS[T]
}

// NewForwardWRS returns a without-replacement forward-decay sampler of size
// k under the given model.
func NewForwardWRS[T any](m decay.Forward, k int, seed uint64) *ForwardWRS[T] {
	return &ForwardWRS[T]{model: m, s: NewWRS[T](k, seed)}
}

// Observe offers an item with timestamp ti.
func (f *ForwardWRS[T]) Observe(item T, ti float64) {
	f.s.Add(item, f.model.LogStaticWeight(ti))
}

// Sample returns the current sample (at most k items, unspecified order).
func (f *ForwardWRS[T]) Sample() []T { return f.s.Sample() }

// Merge folds another sampler over the same model into this one (exact,
// §VI-B). It panics if the sizes differ.
func (f *ForwardWRS[T]) Merge(o *ForwardWRS[T]) { f.s.Merge(o.s) }

// Model returns the decay model.
func (f *ForwardWRS[T]) Model() decay.Forward { return f.model }

// ForwardPriority is priority sampling under a forward decay model: a
// size-k sample supporting unbiased decayed subset-sum estimation. This is
// the PRISAMP UDAF of the paper's Figure 3 experiments.
type ForwardPriority[T any] struct {
	model decay.Forward
	s     *Priority[T]
}

// NewForwardPriority returns a priority sampler of size k under the given
// model.
func NewForwardPriority[T any](m decay.Forward, k int, seed uint64) *ForwardPriority[T] {
	return &ForwardPriority[T]{model: m, s: NewPriority[T](k, seed)}
}

// Observe offers an item with timestamp ti.
func (f *ForwardPriority[T]) Observe(item T, ti float64) {
	f.s.Add(item, f.model.LogStaticWeight(ti))
}

// Sample returns the sampled items with their decayed weight estimates at
// query time t: Σ of the weights over any subset is an unbiased estimate of
// that subset's decayed count.
func (f *ForwardPriority[T]) Sample(t float64) []Weighted[T] {
	return f.s.Sample(f.model.LogNormalizer(t))
}

// EstimateDecayedCount returns the unbiased estimate of the total decayed
// count at query time t.
func (f *ForwardPriority[T]) EstimateDecayedCount(t float64) float64 {
	return f.s.EstimateTotal(f.model.LogNormalizer(t))
}

// Merge folds another sampler over the same model into this one (exact,
// §VI-B). It panics if the sizes differ.
func (f *ForwardPriority[T]) Merge(o *ForwardPriority[T]) { f.s.Merge(o.s) }

// Model returns the decay model.
func (f *ForwardPriority[T]) Model() decay.Forward { return f.model }
