package decay_test

import (
	"bytes"
	"testing"

	"forwarddecay/decay"
)

// FuzzDecayUnmarshal exercises the only codec in the repository without a
// fuzz target: the textual decay-function and Forward-model encodings that
// travel inside checkpoints and distributed summaries. The invariant is
// canonical-form stability: anything that decodes must re-encode to a form
// that decodes to the same canonical encoding (a fixpoint after one
// round-trip). Comparing encodings rather than models keeps NaN landmarks
// from tripping float equality.
func FuzzDecayUnmarshal(f *testing.F) {
	f.Add("none")
	f.Add("landmark")
	f.Add("poly(2)")
	f.Add("exp(0.05)")
	f.Add("polysum([1 0 2.5])")
	f.Add("exp(0.1)@100")
	f.Add("poly(1)@-3.5e2")
	f.Add("none@0")
	f.Add("polysum([0.5])@1e308")
	f.Add("exp(")
	f.Add("@@")
	f.Add("poly(-1)@0")
	f.Fuzz(func(t *testing.T, s string) {
		if g, err := decay.DecodeFunc(s); err == nil {
			canon := decay.EncodeFunc(g)
			g2, err2 := decay.DecodeFunc(canon)
			if err2 != nil {
				t.Fatalf("canonical form %q of %q does not decode: %v", canon, s, err2)
			}
			if got := decay.EncodeFunc(g2); got != canon {
				t.Fatalf("canonical form not a fixpoint: %q -> %q -> %q", s, canon, got)
			}
		}
		var m decay.Forward
		if err := m.UnmarshalText([]byte(s)); err == nil {
			b, err := m.MarshalText()
			if err != nil {
				t.Fatalf("decoded model from %q does not re-encode: %v", s, err)
			}
			var m2 decay.Forward
			if err := m2.UnmarshalText(b); err != nil {
				t.Fatalf("re-encoded form %q of %q does not decode: %v", b, s, err)
			}
			b2, err := m2.MarshalText()
			if err != nil {
				t.Fatalf("second encode of %q failed: %v", b, err)
			}
			if !bytes.Equal(b, b2) {
				t.Fatalf("encoding not a fixpoint: %q -> %q -> %q", s, b, b2)
			}
		}
	})
}
