package decay

import (
	"math"
	"testing"
)

// almostEq reports whether a and b agree to within tol (absolute for small
// magnitudes, relative for large).
func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// TestExample1Weights reproduces Example 1 of the paper: stream
// {(105,4),(107,8),(103,3),(108,6),(104,4)}, landmark L=100, g(n)=n²,
// evaluated at t=110 the weights are {0.25, 0.49, 0.09, 0.64, 0.16}.
func TestExample1Weights(t *testing.T) {
	fd := NewForward(NewPoly(2), 100)
	ts := []float64{105, 107, 103, 108, 104}
	want := []float64{0.25, 0.49, 0.09, 0.64, 0.16}
	for i, ti := range ts {
		got := fd.Weight(ti, 110)
		if !almostEq(got, want[i], 1e-12) {
			t.Errorf("Weight(%v, 110) = %v, want %v", ti, got, want[i])
		}
	}
}

func TestForwardWeightAtArrivalIsOne(t *testing.T) {
	funcs := []Func{None{}, NewPoly(0.5), NewPoly(1), NewPoly(2), NewExp(0.1), NewPolySum(1, 2, 3), LandmarkWindow{}}
	for _, g := range funcs {
		fd := NewForward(g, 50)
		for _, ti := range []float64{50.001, 51, 75, 1e6} {
			if w := fd.Weight(ti, ti); !almostEq(w, 1, 1e-12) {
				t.Errorf("%v: Weight(%v,%v) = %v, want 1", g, ti, ti, w)
			}
		}
	}
}

func TestForwardWeightMonotoneNonIncreasing(t *testing.T) {
	funcs := []Func{None{}, NewPoly(0.5), NewPoly(2), NewExp(0.05), NewPolySum(0, 1, 0.5), LandmarkWindow{}}
	for _, g := range funcs {
		fd := NewForward(g, 0)
		ti := 10.0
		prev := math.Inf(1)
		for _, tq := range []float64{10, 11, 20, 100, 1000, 10000} {
			w := fd.Weight(ti, tq)
			if w < 0 || w > 1 {
				t.Errorf("%v: Weight(%v,%v) = %v out of [0,1]", g, ti, tq, w)
			}
			if w > prev+1e-12 {
				t.Errorf("%v: weight increased from %v to %v at t=%v", g, prev, w, tq)
			}
			prev = w
		}
	}
}

// TestExpForwardEqualsBackward verifies the §III-A identity: forward
// exponential decay coincides exactly with backward exponential decay,
// regardless of the landmark.
func TestExpForwardEqualsBackward(t *testing.T) {
	for _, alpha := range []float64{0.01, 0.1, 1, 3} {
		for _, L := range []float64{-50, 0, 99.5} {
			fd := NewForward(NewExp(alpha), L)
			bd := NewBackward(NewAgeExp(alpha))
			for _, ti := range []float64{100, 123.25, 500} {
				for _, tq := range []float64{500, 501, 750, 1000} {
					fw, bw := fd.Weight(ti, tq), bd.Weight(ti, tq)
					if !almostEq(fw, bw, 1e-9) {
						t.Fatalf("alpha=%v L=%v ti=%v t=%v: forward %v != backward %v",
							alpha, L, ti, tq, fw, bw)
					}
				}
			}
		}
	}
}

// TestPolyForwardDiffersFromBackward checks the paper's remark that the
// exponential identity does NOT hold for polynomial decay.
func TestPolyForwardDiffersFromBackward(t *testing.T) {
	fd := NewForward(NewPoly(2), 0)
	bd := NewBackward(NewAgePoly(2))
	if fw, bw := fd.Weight(50, 100), bd.Weight(50, 100); almostEq(fw, bw, 1e-6) {
		t.Errorf("expected forward poly (%v) to differ from backward poly (%v)", fw, bw)
	}
}

func TestLogEvalConsistentWithEval(t *testing.T) {
	funcs := []Func{None{}, NewPoly(0.5), NewPoly(2), NewPoly(3.7), NewExp(0.1), NewPolySum(1, 0, 2), LandmarkWindow{}}
	for _, g := range funcs {
		for _, n := range []float64{-5, 0, 1e-9, 0.5, 1, 10, 123.456} {
			ev, lg := g.Eval(n), g.LogEval(n)
			if ev == 0 {
				if !math.IsInf(lg, -1) {
					t.Errorf("%v: Eval(%v)=0 but LogEval=%v", g, n, lg)
				}
				continue
			}
			if !almostEq(math.Log(ev), lg, 1e-9) {
				t.Errorf("%v: log(Eval(%v))=%v != LogEval=%v", g, n, math.Log(ev), lg)
			}
		}
	}
}

func TestExpLogShiftExact(t *testing.T) {
	e := NewExp(0.25)
	for _, delta := range []float64{-10, 0, 1, 100} {
		c, ok := e.LogShift(delta)
		if !ok {
			t.Fatal("Exp must support LogShift")
		}
		for _, n := range []float64{0, 5, 42} {
			want := e.LogEval(n - delta)
			got := e.LogEval(n) + c
			if !almostEq(got, want, 1e-9) {
				t.Errorf("delta=%v n=%v: shifted %v, want %v", delta, n, got, want)
			}
		}
	}
}

func TestShifted(t *testing.T) {
	fd := NewForward(NewExp(0.5), 100)
	shifted, logScale, ok := fd.Shifted(200)
	if !ok {
		t.Fatal("exp model must be shiftable")
	}
	if shifted.Landmark != 200 {
		t.Fatalf("landmark = %v, want 200", shifted.Landmark)
	}
	// ln g(ti − newL) must equal ln g(ti − L) + logScale.
	for _, ti := range []float64{250, 300} {
		want := shifted.LogStaticWeight(ti)
		got := fd.LogStaticWeight(ti) + logScale
		if !almostEq(got, want, 1e-9) {
			t.Errorf("ti=%v: %v, want %v", ti, got, want)
		}
	}

	// Non-shiftable functions report ok = false and leave the model alone.
	pd := NewForward(NewPoly(2), 100)
	same, ls, ok := pd.Shifted(200)
	if ok || ls != 0 || same.Landmark != 100 {
		t.Errorf("poly Shifted = (%+v, %v, %v), want unchanged/0/false", same, ls, ok)
	}
}

func TestLandmarkWindowSemantics(t *testing.T) {
	fd := NewForward(LandmarkWindow{}, 100)
	if w := fd.Weight(101, 500); w != 1 {
		t.Errorf("item after landmark: weight %v, want 1", w)
	}
	if w := fd.Weight(99, 500); w != 0 {
		t.Errorf("item before landmark: weight %v, want 0", w)
	}
	if w := fd.Weight(100, 500); w != 0 {
		t.Errorf("item at landmark: weight %v, want 0", w)
	}
}

func TestSlidingWindowSemantics(t *testing.T) {
	bd := NewBackward(NewSlidingWindow(60))
	if w := bd.Weight(100, 130); w != 1 {
		t.Errorf("in-window weight %v, want 1", w)
	}
	if w := bd.Weight(100, 160); w != 0 {
		t.Errorf("expired weight %v, want 0", w)
	}
	if w := bd.Weight(100, 159.999); w != 1 {
		t.Errorf("age just under W: weight %v, want 1", w)
	}
}

func TestBackwardAxioms(t *testing.T) {
	funcs := []AgeFunc{AgeNone{}, NewSlidingWindow(30), NewAgeExp(0.2), NewAgePoly(1.5), AgeSubPoly{}, NewAgeSuperExp(0.01)}
	for _, f := range funcs {
		bd := NewBackward(f)
		if w := bd.Weight(42, 42); !almostEq(w, 1, 1e-12) {
			t.Errorf("%v: Weight at age 0 = %v, want 1", f, w)
		}
		prev := math.Inf(1)
		for _, tq := range []float64{42, 43, 50, 100, 500} {
			w := bd.Weight(42, tq)
			if w < 0 || w > 1 {
				t.Errorf("%v: weight %v out of range at t=%v", f, w, tq)
			}
			if w > prev+1e-12 {
				t.Errorf("%v: weight increased to %v at t=%v", f, w, tq)
			}
			prev = w
		}
	}
}

func TestConstructorsPanicOnBadParameters(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Poly zero", func() { NewPoly(0) }},
		{"Poly negative", func() { NewPoly(-1) }},
		{"Exp zero", func() { NewExp(0) }},
		{"ExpHalfLife zero", func() { NewExpHalfLife(0) }},
		{"SlidingWindow zero", func() { NewSlidingWindow(0) }},
		{"AgeExp negative", func() { NewAgeExp(-0.5) }},
		{"AgePoly zero", func() { NewAgePoly(0) }},
		{"AgeSuperExp zero", func() { NewAgeSuperExp(0) }},
		{"PolySum negative coeff", func() { NewPolySum(1, -1) }},
		{"PolySum all zero", func() { NewPolySum(0, 0) }},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", c.name)
				}
			}()
			c.fn()
		}()
	}
}

func TestExpHalfLife(t *testing.T) {
	e := NewExpHalfLife(10)
	fd := NewForward(e, 0)
	if w := fd.Weight(100, 110); !almostEq(w, 0.5, 1e-12) {
		t.Errorf("weight after one half-life = %v, want 0.5", w)
	}
	if w := fd.Weight(100, 130); !almostEq(w, 0.125, 1e-12) {
		t.Errorf("weight after three half-lives = %v, want 0.125", w)
	}
}

func TestPolySumHorner(t *testing.T) {
	// g(n) = 1 + 2n + 3n².
	p := NewPolySum(1, 2, 3)
	if got, want := p.Eval(2), 1+4.0+12.0; !almostEq(got, want, 1e-12) {
		t.Errorf("Eval(2) = %v, want %v", got, want)
	}
	if got := p.Eval(-3); got != 1 {
		t.Errorf("Eval(-3) = %v, want g(0)=1", got)
	}
}

func TestStaticWeightAndNormalizer(t *testing.T) {
	fd := NewForward(NewPoly(2), 100)
	if got := fd.StaticWeight(105); !almostEq(got, 25, 1e-12) {
		t.Errorf("StaticWeight(105) = %v, want 25", got)
	}
	if got := fd.Normalizer(110); !almostEq(got, 100, 1e-12) {
		t.Errorf("Normalizer(110) = %v, want 100", got)
	}
	if got := fd.LogStaticWeight(105); !almostEq(got, math.Log(25), 1e-12) {
		t.Errorf("LogStaticWeight(105) = %v, want ln 25", got)
	}
	if got := fd.LogNormalizer(110); !almostEq(got, math.Log(100), 1e-12) {
		t.Errorf("LogNormalizer(110) = %v, want ln 100", got)
	}
}

// TestExpNoOverflowViaLogDomain checks that weights computed for very large
// time offsets stay finite and correct even though g itself overflows.
func TestExpNoOverflowViaLogDomain(t *testing.T) {
	fd := NewForward(NewExp(1), 0)
	// g(1e5) overflows float64, but the weight is exp(-10) regardless.
	w := fd.Weight(1e5-10, 1e5)
	if !almostEq(w, math.Exp(-10), 1e-9) {
		t.Errorf("weight = %v, want %v", w, math.Exp(-10))
	}
	if math.IsInf(fd.Normalizer(1e5), 1) == false {
		t.Errorf("sanity: expected the raw normalizer to overflow, got %v", fd.Normalizer(1e5))
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{None{}.String(), "none"},
		{NewPoly(2).String(), "poly(2)"},
		{NewExp(0.5).String(), "exp(0.5)"},
		{LandmarkWindow{}.String(), "landmark"},
		{AgeNone{}.String(), "none"},
		{NewSlidingWindow(60).String(), "window(60)"},
		{NewAgeExp(0.1).String(), "exp(0.1)"},
		{NewAgePoly(1).String(), "poly(1)"},
		{AgeSubPoly{}.String(), "subpoly"},
		{NewAgeSuperExp(2).String(), "superexp(2)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}
