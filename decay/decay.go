// Package decay implements the time-decay models of Cormode, Shkapenyuk,
// Srivastava and Xu, "Forward Decay: A Practical Time Decay Model for
// Streaming Systems" (ICDE 2009).
//
// A decay model assigns every stream item i (with timestamp tᵢ) a weight
// w(i, t) ∈ [0, 1] at query time t, with w(i, tᵢ) = 1 and w monotone
// non-increasing in t (Definition 1 of the paper).
//
// Two families are provided:
//
//   - Backward decay (Definition 2): w(i,t) = f(t−tᵢ)/f(0) for a positive
//     non-increasing age function f. This is the classical formulation
//     (sliding windows, backward exponential and polynomial decay).
//
//   - Forward decay (Definition 3): w(i,t) = g(tᵢ−L)/g(t−L) for a positive
//     non-decreasing function g and a fixed landmark time L earlier than all
//     item timestamps. The numerator g(tᵢ−L) — the static weight — is fixed
//     at arrival, which is what makes every aggregate in this repository
//     computable in the same resources as its undecayed counterpart.
//
// Exponential decay is identical in the two families (§III-A of the paper),
// and forward decay with a monomial g(n)=n^β satisfies the relative-decay
// property (Lemma 1): the weight of an item depends only on its age as a
// fraction of the interval [L, t].
//
// Timestamps and landmarks are float64s in arbitrary but consistent units
// (the rest of this repository uses seconds).
package decay

import (
	"fmt"
	"math"
)

// Model is the common interface of forward and backward decay: it reports
// the decayed weight of an item with timestamp ti at query time t.
//
// Implementations guarantee the decay-function axioms (Definition 1) for
// t ≥ ti ≥ (the model's landmark, if any): Weight(ti, ti) = 1, the result is
// in [0, 1], and it is non-increasing in t.
type Model interface {
	Weight(ti, t float64) float64
}

// Func is a forward-decay weight function g: a positive, monotone
// non-decreasing function of the elapsed time n ≥ 0 since the landmark.
// Implementations must return 0 (and LogEval −Inf) for n < 0 unless the
// function is naturally defined there (as exponential decay is).
type Func interface {
	// Eval returns g(n).
	Eval(n float64) float64
	// LogEval returns ln g(n), or math.Inf(-1) where g(n) = 0. Computing in
	// the log domain lets exponential decay run indefinitely without
	// overflowing float64 (§VI-A of the paper).
	LogEval(n float64) float64
	// String returns a short human-readable description, e.g. "poly(2)".
	String() string
}

// LandmarkShifter is implemented by forward-decay functions for which the
// landmark can be moved without revisiting items: there is a constant c
// (depending only on the shift δ) with ln g(n−δ) = ln g(n) + c for all n.
// Exponential decay has this property (c = −α·δ); monomials do not.
// Aggregates use it to rebase accumulated state onto a fresh landmark, the
// rescaling trick of §VI-A.
type LandmarkShifter interface {
	// LogShift returns the additive log-domain constant for shifting the
	// landmark forward by delta, and whether the function supports shifting.
	LogShift(delta float64) (logScale float64, ok bool)
}

// NotShiftableError reports an attempt to shift the landmark of a decay
// function that does not support it. Only exponential decay satisfies
// ln g(n−δ) = ln g(n) + c for a constant c; monomials (Lemma 1) and
// landmark windows do not, so epoch rollover must reject them with a typed,
// errors.As-matchable error rather than silently corrupting state.
type NotShiftableError struct {
	// Func describes the offending decay function (its String()).
	Func string
}

func (e *NotShiftableError) Error() string {
	return fmt.Sprintf("decay: function %s does not support landmark shifting", e.Func)
}

// Forward is a forward decay model: a weight function g together with a
// landmark time L. Items are expected to have timestamps ti > L; items at or
// before the landmark get weight zero under monomial decay and landmark
// windows (and are simply extrapolated under exponential decay).
//
// The zero value is not useful; populate both fields. Choosing the landmark:
// because of the relative-decay property it is natural to set L to (a lower
// bound on) the smallest timestamp in the query — e.g. the query start time
// (§III-B of the paper).
type Forward struct {
	// Func is the non-decreasing weight function g.
	Func Func
	// Landmark is the time L from which forward ages are measured.
	Landmark float64
}

// NewForward returns a forward decay model with the given function and
// landmark.
func NewForward(g Func, landmark float64) Forward {
	return Forward{Func: g, Landmark: landmark}
}

// StaticWeight returns g(ti − L): the unnormalized weight fixed at an item's
// arrival. All streaming state in this repository is maintained in terms of
// static weights; division by the normalizer happens only at query time.
func (f Forward) StaticWeight(ti float64) float64 {
	return f.Func.Eval(ti - f.Landmark)
}

// LogStaticWeight returns ln g(ti − L), or −Inf for zero weight.
func (f Forward) LogStaticWeight(ti float64) float64 {
	return f.Func.LogEval(ti - f.Landmark)
}

// Normalizer returns g(t − L), the query-time scaling denominator.
func (f Forward) Normalizer(t float64) float64 {
	return f.Func.Eval(t - f.Landmark)
}

// LogNormalizer returns ln g(t − L), or −Inf if the normalizer is zero.
func (f Forward) LogNormalizer(t float64) float64 {
	return f.Func.LogEval(t - f.Landmark)
}

// Weight returns the decayed weight g(ti−L)/g(t−L) of an item with
// timestamp ti evaluated at time t. For t ≥ ti > L the result is in [0, 1].
// Queries should use t at least as large as the biggest timestamp observed;
// with a larger ti the weight may exceed 1 (a "future" item relative to a
// historical query, §VI-B).
func (f Forward) Weight(ti, t float64) float64 {
	// Compute in the log domain so that exponential decay with large
	// arguments cannot overflow the intermediate values.
	lw := f.Func.LogEval(ti-f.Landmark) - f.Func.LogEval(t-f.Landmark)
	if math.IsNaN(lw) {
		// 0/0 (e.g. both before the landmark window opens): weight 0.
		return 0
	}
	return math.Exp(lw)
}

// Shifted returns a copy of the model rebased onto the landmark newL, along
// with the log-domain factor by which existing static weights must be scaled
// (ln g(ti−newL) = ln g(ti−L) + logScale). ok reports whether the model's
// function supports landmark shifting (see LandmarkShifter); when it does
// not, the original model is returned unchanged with logScale 0.
func (f Forward) Shifted(newL float64) (shifted Forward, logScale float64, ok bool) {
	s, sok := f.Func.(LandmarkShifter)
	if !sok {
		return f, 0, false
	}
	c, cok := s.LogShift(newL - f.Landmark)
	if !cok {
		return f, 0, false
	}
	return Forward{Func: f.Func, Landmark: newL}, c, true
}

// Backward is a backward decay model (Definition 2): the weight of an item
// of age a = t − ti is f(a)/f(0) for a positive non-increasing age function.
type Backward struct {
	// Func is the non-increasing age function f.
	Func AgeFunc
}

// NewBackward returns a backward decay model over the given age function.
func NewBackward(f AgeFunc) Backward { return Backward{Func: f} }

// Weight returns f(t−ti)/f(0). Ages below zero (items "from the future")
// are clamped to age 0, i.e. weight 1.
func (b Backward) Weight(ti, t float64) float64 {
	a := t - ti
	if a < 0 {
		a = 0
	}
	return b.Func.Eval(a) / b.Func.Eval(0)
}

// AgeFunc is a backward-decay age function f: positive at 0 and monotone
// non-increasing for ages a ≥ 0.
type AgeFunc interface {
	// Eval returns f(a) for age a ≥ 0.
	Eval(a float64) float64
	// String returns a short human-readable description, e.g. "window(60)".
	String() string
}
