package decay

import (
	"fmt"
	"math"
)

// None is the trivial forward-decay function g(n) = 1: every item keeps
// weight 1 forever, recovering undecayed aggregation.
type None struct{}

// Eval returns 1 for every n.
func (None) Eval(float64) float64 { return 1 }

// LogEval returns 0 for every n.
func (None) LogEval(float64) float64 { return 0 }

// LogShift reports that shifting the landmark never changes weights.
func (None) LogShift(float64) (float64, bool) { return 0, true }

func (None) String() string { return "none" }

// Poly is the monomial forward-decay function g(n) = n^β for β > 0
// (§III-B of the paper). It satisfies the relative-decay property (Lemma 1):
// at any query time t, the weight of an item at timestamp γ·t + (1−γ)·L is
// exactly γ^β. For n ≤ 0 (items at or before the landmark) the weight is 0.
type Poly struct {
	// Beta is the exponent β > 0. Beta = 2 gives the quadratic decay used in
	// the paper's examples and experiments.
	Beta float64
}

// NewPoly returns monomial decay with the given exponent. It panics if
// beta <= 0; use None for the undecayed case.
func NewPoly(beta float64) Poly {
	if beta <= 0 {
		panic("decay: Poly exponent must be positive")
	}
	return Poly{Beta: beta}
}

// Eval returns n^β, or 0 for n ≤ 0.
func (p Poly) Eval(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return math.Pow(n, p.Beta)
}

// LogEval returns β·ln n, or −Inf for n ≤ 0.
func (p Poly) LogEval(n float64) float64 {
	if n <= 0 {
		return math.Inf(-1)
	}
	return p.Beta * math.Log(n)
}

func (p Poly) String() string { return fmt.Sprintf("poly(%g)", p.Beta) }

// Exp is the exponential forward-decay function g(n) = exp(α·n) for α > 0.
// Forward exponential decay coincides exactly with backward exponential
// decay with rate α (§III-A of the paper): the landmark cancels out, so
// w(i,t) = exp(−α·(t−tᵢ)).
type Exp struct {
	// Alpha is the decay rate α > 0 (per unit time). The weight of an item
	// halves every ln(2)/α time units.
	Alpha float64
}

// NewExp returns exponential decay with the given rate. It panics if
// alpha <= 0; use None for the undecayed case.
func NewExp(alpha float64) Exp {
	if alpha <= 0 {
		panic("decay: Exp rate must be positive")
	}
	return Exp{Alpha: alpha}
}

// NewExpHalfLife returns exponential decay whose weights halve every
// halfLife time units. It panics if halfLife <= 0.
func NewExpHalfLife(halfLife float64) Exp {
	if halfLife <= 0 {
		panic("decay: half-life must be positive")
	}
	return Exp{Alpha: math.Ln2 / halfLife}
}

// Eval returns exp(α·n). For large n this overflows float64; streaming
// state should therefore be maintained via LogEval and rebased with
// LogShift, which the agg package does automatically.
func (e Exp) Eval(n float64) float64 { return math.Exp(e.Alpha * n) }

// LogEval returns α·n, which never overflows for realistic inputs.
func (e Exp) LogEval(n float64) float64 { return e.Alpha * n }

// LogShift implements LandmarkShifter: moving the landmark forward by delta
// multiplies every static weight by exp(−α·delta), i.e. adds −α·delta in
// the log domain. This is the rescaling trick of §VI-A.
func (e Exp) LogShift(delta float64) (float64, bool) { return -e.Alpha * delta, true }

func (e Exp) String() string { return fmt.Sprintf("exp(%g)", e.Alpha) }

// LandmarkWindow is the forward-decay function g(n) = 1 for n > 0 and 0
// otherwise (§III-C): every item after the landmark counts with full weight
// until the query ("window") closes. It generalizes the landmark-window
// semantics implicitly adopted by many streaming systems.
type LandmarkWindow struct{}

// Eval returns 1 for n > 0 and 0 otherwise.
func (LandmarkWindow) Eval(n float64) float64 {
	if n > 0 {
		return 1
	}
	return 0
}

// LogEval returns 0 for n > 0 and −Inf otherwise.
func (LandmarkWindow) LogEval(n float64) float64 {
	if n > 0 {
		return 0
	}
	return math.Inf(-1)
}

func (LandmarkWindow) String() string { return "landmark" }

// PolySum is a general polynomial forward-decay function
// g(n) = Σⱼ γⱼ·n^j with non-negative coefficients (§III-B mentions this
// family). Coeffs[j] is γⱼ; at least one coefficient must be positive for g
// to be a valid decay function.
type PolySum struct {
	// Coeffs holds γ₀, γ₁, …; all must be ≥ 0 so that g is non-decreasing.
	Coeffs []float64
}

// NewPolySum returns a polynomial decay function with the given
// coefficients. It panics if any coefficient is negative or if all are zero.
func NewPolySum(coeffs ...float64) PolySum {
	any := false
	for _, c := range coeffs {
		if c < 0 {
			panic("decay: PolySum coefficients must be non-negative")
		}
		if c > 0 {
			any = true
		}
	}
	if !any {
		panic("decay: PolySum needs at least one positive coefficient")
	}
	out := make([]float64, len(coeffs))
	copy(out, coeffs)
	return PolySum{Coeffs: out}
}

// Eval returns Σⱼ γⱼ·n^j by Horner's rule, treating n < 0 as 0.
func (p PolySum) Eval(n float64) float64 {
	if n < 0 {
		n = 0
	}
	v := 0.0
	for j := len(p.Coeffs) - 1; j >= 0; j-- {
		v = v*n + p.Coeffs[j]
	}
	return v
}

// LogEval returns ln g(n), or −Inf where g(n) = 0.
func (p PolySum) LogEval(n float64) float64 {
	v := p.Eval(n)
	if v == 0 {
		return math.Inf(-1)
	}
	return math.Log(v)
}

func (p PolySum) String() string { return fmt.Sprintf("polysum(%v)", p.Coeffs) }
