package decay

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// qcfg returns a quick.Config with a fixed seed so statistical tests are
// reproducible.
func qcfg(seed int64) *quick.Config {
	return &quick.Config{
		MaxCount: 2000,
		Rand:     rand.New(rand.NewSource(seed)),
	}
}

// clampUnit maps an arbitrary float64 into (0, 1].
func clampUnit(x float64) float64 {
	x = math.Abs(x)
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	x = math.Mod(x, 1)
	if x == 0 {
		return 1
	}
	return x
}

// TestQuickRelativeDecay property-tests Lemma 1: under g(n)=n^β the weight
// of the item at relative position γ in [L, t] is exactly γ^β, for every
// query time, landmark and exponent.
func TestQuickRelativeDecay(t *testing.T) {
	f := func(gammaRaw, betaRaw, lRaw, spanRaw float64) bool {
		gamma := clampUnit(gammaRaw)
		beta := 0.1 + 5*clampUnit(betaRaw)
		L := math.Mod(lRaw, 1e6)
		if math.IsNaN(L) || math.IsInf(L, 0) {
			L = 0
		}
		span := 1 + 1e4*clampUnit(spanRaw)
		tq := L + span
		ti := gamma*tq + (1-gamma)*L

		fd := NewForward(NewPoly(beta), L)
		got := fd.Weight(ti, tq)
		want := math.Pow(gamma, beta)
		return almostEq(got, want, 1e-6)
	}
	if err := quick.Check(f, qcfg(1)); err != nil {
		t.Error(err)
	}
}

// TestQuickDefinition1Forward property-tests the decay-function axioms for a
// selection of forward decay functions: weight 1 at arrival, range [0,1],
// monotone non-increasing in t.
func TestQuickDefinition1Forward(t *testing.T) {
	funcs := []Func{None{}, NewPoly(0.5), NewPoly(2), NewExp(0.01), NewPolySum(0, 1, 2), LandmarkWindow{}}
	f := func(which uint8, tiRaw, d1Raw, d2Raw float64) bool {
		g := funcs[int(which)%len(funcs)]
		fd := NewForward(g, 0)
		ti := 1e-6 + 1e5*clampUnit(tiRaw)
		d1 := 1e5 * clampUnit(d1Raw)
		d2 := 1e5 * clampUnit(d2Raw)
		t1 := ti + d1
		t2 := t1 + d2

		w0 := fd.Weight(ti, ti)
		w1 := fd.Weight(ti, t1)
		w2 := fd.Weight(ti, t2)
		if !almostEq(w0, 1, 1e-9) {
			return false
		}
		for _, w := range []float64{w1, w2} {
			if w < 0 || w > 1+1e-9 {
				return false
			}
		}
		return w2 <= w1+1e-9 && w1 <= w0+1e-9
	}
	if err := quick.Check(f, qcfg(2)); err != nil {
		t.Error(err)
	}
}

// TestQuickDefinition1Backward does the same for backward decay functions.
func TestQuickDefinition1Backward(t *testing.T) {
	funcs := []AgeFunc{AgeNone{}, NewSlidingWindow(100), NewAgeExp(0.05), NewAgePoly(2), AgeSubPoly{}, NewAgeSuperExp(1e-4)}
	f := func(which uint8, tiRaw, d1Raw, d2Raw float64) bool {
		fn := funcs[int(which)%len(funcs)]
		bd := NewBackward(fn)
		ti := 1e5 * clampUnit(tiRaw)
		t1 := ti + 1e4*clampUnit(d1Raw)
		t2 := t1 + 1e4*clampUnit(d2Raw)

		if w := bd.Weight(ti, ti); !almostEq(w, 1, 1e-9) {
			return false
		}
		w1, w2 := bd.Weight(ti, t1), bd.Weight(ti, t2)
		if w1 < 0 || w1 > 1+1e-9 || w2 < 0 || w2 > 1+1e-9 {
			return false
		}
		return w2 <= w1+1e-9
	}
	if err := quick.Check(f, qcfg(3)); err != nil {
		t.Error(err)
	}
}

// TestQuickExpIdentity property-tests the forward/backward coincidence for
// exponential decay over random rates, landmarks and times.
func TestQuickExpIdentity(t *testing.T) {
	f := func(alphaRaw, lRaw, tiRaw, dRaw float64) bool {
		alpha := 1e-3 + clampUnit(alphaRaw)
		L := 1e3 * (clampUnit(lRaw) - 0.5)
		ti := L + 1e3*clampUnit(tiRaw)
		tq := ti + 1e2*clampUnit(dRaw)
		fw := NewForward(NewExp(alpha), L).Weight(ti, tq)
		bw := NewBackward(NewAgeExp(alpha)).Weight(ti, tq)
		return almostEq(fw, bw, 1e-7)
	}
	if err := quick.Check(f, qcfg(4)); err != nil {
		t.Error(err)
	}
}

// TestQuickWeightScaleInvariance checks the §III observation that scaling g
// by a constant has no effect on decayed weights, using PolySum to represent
// the scaled function.
func TestQuickWeightScaleInvariance(t *testing.T) {
	f := func(cRaw, tiRaw, dRaw float64) bool {
		c := 0.5 + 10*clampUnit(cRaw)
		ti := 1 + 1e4*clampUnit(tiRaw)
		tq := ti + 1e4*clampUnit(dRaw)
		base := NewForward(NewPolySum(0, 1), 0)   // g(n) = n
		scaled := NewForward(NewPolySum(0, c), 0) // g(n) = c·n
		return almostEq(base.Weight(ti, tq), scaled.Weight(ti, tq), 1e-9)
	}
	if err := quick.Check(f, qcfg(5)); err != nil {
		t.Error(err)
	}
}

// TestQuickLogShiftConsistency checks that for any shiftable function,
// applying the LogShift constant reproduces LogEval at the shifted argument.
func TestQuickLogShiftConsistency(t *testing.T) {
	f := func(alphaRaw, deltaRaw, nRaw float64) bool {
		alpha := 1e-3 + 2*clampUnit(alphaRaw)
		delta := 1e3 * (clampUnit(deltaRaw) - 0.5)
		n := 1e3 * clampUnit(nRaw)
		e := NewExp(alpha)
		c, ok := e.LogShift(delta)
		if !ok {
			return false
		}
		return almostEq(e.LogEval(n)+c, e.LogEval(n-delta), 1e-7)
	}
	if err := quick.Check(f, qcfg(6)); err != nil {
		t.Error(err)
	}
}
