package decay

import (
	"fmt"
	"strconv"
	"strings"
)

// EncodeFunc renders a forward decay function in its canonical textual
// form (the same form String returns), suitable for storage or for
// shipping summaries between distributed sites.
func EncodeFunc(g Func) string { return g.String() }

// DecodeFunc parses the canonical textual form of the built-in forward
// decay functions: "none", "landmark", "poly(β)", "exp(α)" and
// "polysum([γ0 γ1 …])". Custom Func implementations are not decodable.
func DecodeFunc(s string) (Func, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "none":
		return None{}, nil
	case s == "landmark":
		return LandmarkWindow{}, nil
	case strings.HasPrefix(s, "poly(") && strings.HasSuffix(s, ")"):
		beta, err := strconv.ParseFloat(s[5:len(s)-1], 64)
		if err != nil || beta <= 0 {
			return nil, fmt.Errorf("decay: bad poly exponent in %q", s)
		}
		return Poly{Beta: beta}, nil
	case strings.HasPrefix(s, "exp(") && strings.HasSuffix(s, ")"):
		alpha, err := strconv.ParseFloat(s[4:len(s)-1], 64)
		if err != nil || alpha <= 0 {
			return nil, fmt.Errorf("decay: bad exp rate in %q", s)
		}
		return Exp{Alpha: alpha}, nil
	case strings.HasPrefix(s, "polysum([") && strings.HasSuffix(s, "])"):
		body := s[len("polysum([") : len(s)-2]
		var coeffs []float64
		if body != "" {
			for _, f := range strings.Fields(body) {
				c, err := strconv.ParseFloat(f, 64)
				if err != nil || c < 0 {
					return nil, fmt.Errorf("decay: bad polysum coefficient %q in %q", f, s)
				}
				coeffs = append(coeffs, c)
			}
		}
		any := false
		for _, c := range coeffs {
			if c > 0 {
				any = true
			}
		}
		if !any {
			return nil, fmt.Errorf("decay: polysum in %q has no positive coefficient", s)
		}
		return PolySum{Coeffs: coeffs}, nil
	default:
		return nil, fmt.Errorf("decay: unknown decay function %q", s)
	}
}

// MarshalText encodes the model as "<func>@<landmark>".
func (f Forward) MarshalText() ([]byte, error) {
	if f.Func == nil {
		return nil, fmt.Errorf("decay: cannot marshal a Forward with nil Func")
	}
	return []byte(fmt.Sprintf("%s@%g", EncodeFunc(f.Func), f.Landmark)), nil
}

// UnmarshalText decodes the "<func>@<landmark>" form produced by
// MarshalText.
func (f *Forward) UnmarshalText(b []byte) error {
	s := string(b)
	i := strings.LastIndexByte(s, '@')
	if i < 0 {
		return fmt.Errorf("decay: bad Forward encoding %q (missing '@')", s)
	}
	g, err := DecodeFunc(s[:i])
	if err != nil {
		return err
	}
	l, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil {
		return fmt.Errorf("decay: bad landmark in %q", s)
	}
	f.Func = g
	f.Landmark = l
	return nil
}
