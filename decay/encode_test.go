package decay

import "testing"

func TestEncodeDecodeFuncRoundTrip(t *testing.T) {
	funcs := []Func{
		None{},
		LandmarkWindow{},
		NewPoly(2),
		NewPoly(0.5),
		NewExp(0.125),
		NewPolySum(1, 0, 3.5),
	}
	for _, g := range funcs {
		enc := EncodeFunc(g)
		dec, err := DecodeFunc(enc)
		if err != nil {
			t.Fatalf("%q: %v", enc, err)
		}
		if dec.String() != g.String() {
			t.Errorf("round trip %q → %q", g.String(), dec.String())
		}
		// Behavioural equality at sample points.
		for _, n := range []float64{0, 0.5, 1, 10, 100} {
			if dec.Eval(n) != g.Eval(n) {
				t.Errorf("%q: Eval(%v) differs after decode", enc, n)
			}
		}
	}
}

func TestDecodeFuncErrors(t *testing.T) {
	for _, bad := range []string{
		"", "nonsense", "poly()", "poly(x)", "poly(-1)", "poly(0)",
		"exp()", "exp(0)", "exp(-2)", "polysum([])", "polysum([0 0])",
		"polysum([1 -2])", "poly(2", "window(60)",
	} {
		if _, err := DecodeFunc(bad); err == nil {
			t.Errorf("DecodeFunc(%q) should fail", bad)
		}
	}
}

func TestForwardTextRoundTrip(t *testing.T) {
	models := []Forward{
		NewForward(NewPoly(2), 100),
		NewForward(NewExp(0.25), -7.5),
		NewForward(None{}, 0),
		NewForward(LandmarkWindow{}, 1e9),
	}
	for _, m := range models {
		b, err := m.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var d Forward
		if err := d.UnmarshalText(b); err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if d.Landmark != m.Landmark || d.Func.String() != m.Func.String() {
			t.Errorf("round trip %q → %s@%g", b, d.Func, d.Landmark)
		}
		if d.Weight(m.Landmark+10, m.Landmark+20) != m.Weight(m.Landmark+10, m.Landmark+20) {
			t.Errorf("%s: behaviour differs after decode", b)
		}
	}
}

func TestForwardTextErrors(t *testing.T) {
	var f Forward
	for _, bad := range []string{"", "poly(2)", "poly(2)@", "poly(2)@x", "bogus@5"} {
		if err := f.UnmarshalText([]byte(bad)); err == nil {
			t.Errorf("UnmarshalText(%q) should fail", bad)
		}
	}
	bad := Forward{}
	if _, err := bad.MarshalText(); err == nil {
		t.Error("MarshalText with nil Func should fail")
	}
}
