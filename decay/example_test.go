package decay_test

import (
	"fmt"

	"forwarddecay/decay"
)

// The paper's Example 1: quadratic forward decay with landmark 100,
// evaluated at time 110.
func ExampleForward_Weight() {
	fd := decay.NewForward(decay.NewPoly(2), 100)
	for _, ti := range []float64{105, 107, 103, 108, 104} {
		fmt.Printf("%.2f ", fd.Weight(ti, 110))
	}
	fmt.Println()
	// Output: 0.25 0.49 0.09 0.64 0.16
}

// Forward and backward exponential decay coincide exactly (§III-A), for
// any landmark.
func ExampleExp() {
	fwd := decay.NewForward(decay.NewExp(0.1), 42) // arbitrary landmark
	bwd := decay.NewBackward(decay.NewAgeExp(0.1))
	fmt.Printf("forward:  %.6f\n", fwd.Weight(100, 130))
	fmt.Printf("backward: %.6f\n", bwd.Weight(100, 130))
	// Output:
	// forward:  0.049787
	// backward: 0.049787
}

// Monomial forward decay has the relative-decay property (Lemma 1): the
// item half-way between the landmark and the query time always weighs γ^β.
func ExamplePoly() {
	fd := decay.NewForward(decay.NewPoly(2), 0)
	for _, t := range []float64{100, 1000, 100000} {
		fmt.Printf("%.2f ", fd.Weight(t/2, t)) // item at relative age 0.5
	}
	fmt.Println()
	// Output: 0.25 0.25 0.25
}

// NewExpHalfLife expresses exponential decay by its half-life.
func ExampleNewExpHalfLife() {
	fd := decay.NewForward(decay.NewExpHalfLife(60), 0)
	fmt.Printf("%.3f %.3f %.3f\n", fd.Weight(300, 300), fd.Weight(240, 300), fd.Weight(180, 300))
	// Output: 1.000 0.500 0.250
}

// Landmark windows count everything after the landmark at full weight
// (§III-C).
func ExampleLandmarkWindow() {
	fd := decay.NewForward(decay.LandmarkWindow{}, 100)
	fmt.Printf("%.0f %.0f\n", fd.Weight(99, 200), fd.Weight(101, 200))
	// Output: 0 1
}
