package decay

import (
	"fmt"
	"math"
)

// AgeNone is the trivial age function f(a) = 1: no decay.
type AgeNone struct{}

// Eval returns 1 for every age.
func (AgeNone) Eval(float64) float64 { return 1 }

func (AgeNone) String() string { return "none" }

// SlidingWindow is the age function of sliding-window semantics: f(a) = 1
// for a < W and 0 for a ≥ W. Only items younger than the window size count.
type SlidingWindow struct {
	// W is the window size (same time units as the timestamps), W > 0.
	W float64
}

// NewSlidingWindow returns sliding-window decay with the given window size.
// It panics if w <= 0.
func NewSlidingWindow(w float64) SlidingWindow {
	if w <= 0 {
		panic("decay: sliding window size must be positive")
	}
	return SlidingWindow{W: w}
}

// Eval returns 1 if a < W and 0 otherwise.
func (s SlidingWindow) Eval(a float64) float64 {
	if a < s.W {
		return 1
	}
	return 0
}

func (s SlidingWindow) String() string { return fmt.Sprintf("window(%g)", s.W) }

// AgeExp is backward exponential decay f(a) = exp(−λ·a) for λ > 0. It is
// the unique decay family for which forward and backward decay coincide
// (§III-A of the paper): AgeExp{λ} assigns exactly the same weights as
// Forward{Func: Exp{λ}} for any landmark.
type AgeExp struct {
	// Lambda is the decay rate λ > 0.
	Lambda float64
}

// NewAgeExp returns backward exponential decay with the given rate.
// It panics if lambda <= 0.
func NewAgeExp(lambda float64) AgeExp {
	if lambda <= 0 {
		panic("decay: AgeExp rate must be positive")
	}
	return AgeExp{Lambda: lambda}
}

// Eval returns exp(−λ·a).
func (e AgeExp) Eval(a float64) float64 { return math.Exp(-e.Lambda * a) }

func (e AgeExp) String() string { return fmt.Sprintf("exp(%g)", e.Lambda) }

// AgePoly is backward polynomial decay f(a) = (a+1)^(−α) for α > 0
// (the +1 normalizes f(0) = 1). Unlike its forward counterpart, computing
// aggregates exactly under this function requires revisiting items, which is
// precisely the scalability problem forward decay removes.
type AgePoly struct {
	// Alpha is the exponent α > 0.
	Alpha float64
}

// NewAgePoly returns backward polynomial decay with the given exponent.
// It panics if alpha <= 0.
func NewAgePoly(alpha float64) AgePoly {
	if alpha <= 0 {
		panic("decay: AgePoly exponent must be positive")
	}
	return AgePoly{Alpha: alpha}
}

// Eval returns (a+1)^(−α).
func (p AgePoly) Eval(a float64) float64 { return math.Pow(a+1, -p.Alpha) }

func (p AgePoly) String() string { return fmt.Sprintf("poly(%g)", p.Alpha) }

// AgeSubPoly is the sub-polynomial decay f(a) = (1 + ln(1+a))^(−1) mentioned
// in §II, decaying more slowly than any polynomial.
type AgeSubPoly struct{}

// Eval returns 1/(1 + ln(1+a)).
func (AgeSubPoly) Eval(a float64) float64 { return 1 / (1 + math.Log1p(a)) }

func (AgeSubPoly) String() string { return "subpoly" }

// AgeSuperExp is the super-exponential decay f(a) = exp(−λ·a²) mentioned in
// §II, decaying faster than any exponential.
type AgeSuperExp struct {
	// Lambda is the rate λ > 0.
	Lambda float64
}

// NewAgeSuperExp returns super-exponential decay with the given rate.
// It panics if lambda <= 0.
func NewAgeSuperExp(lambda float64) AgeSuperExp {
	if lambda <= 0 {
		panic("decay: AgeSuperExp rate must be positive")
	}
	return AgeSuperExp{Lambda: lambda}
}

// Eval returns exp(−λ·a²).
func (s AgeSuperExp) Eval(a float64) float64 { return math.Exp(-s.Lambda * a * a) }

func (s AgeSuperExp) String() string { return fmt.Sprintf("superexp(%g)", s.Lambda) }
