// Top-level benchmarks: one testing.B benchmark per table/figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`), plus ablation
// benchmarks for the design choices called out in DESIGN.md. The bench
// package's fdbench command renders the same experiments as paper-style
// tables; these benchmarks expose the raw per-operation costs to standard
// Go tooling.
package forwarddecay_test

import (
	"fmt"
	"testing"
	"time"

	"forwarddecay/agg"
	"forwarddecay/decay"
	"forwarddecay/distrib"
	"forwarddecay/gsql"
	"forwarddecay/metrics"
	"forwarddecay/netgen"
	"forwarddecay/sample"
	"forwarddecay/sketch"
	"forwarddecay/udaf"
	"forwarddecay/window"
)

// benchPackets materializes a packet stream for benchmarks.
func benchPackets(rate float64, n int) []netgen.Packet {
	g := netgen.New(netgen.DefaultConfig(rate, 42))
	return g.Take(make([]netgen.Packet, 0, n), n)
}

func benchTuples(rate float64, n int) []gsql.Tuple {
	g := netgen.New(netgen.DefaultConfig(rate, 42))
	out := make([]gsql.Tuple, n)
	for i := range out {
		out[i] = netgen.Tuple(g.Next())
	}
	return out
}

// benchEngine builds an engine with all UDAFs registered.
func benchEngine(b *testing.B, eps float64) *gsql.Engine {
	b.Helper()
	e := gsql.NewEngine()
	if err := e.RegisterStream(gsql.PacketSchema("TCP")); err != nil {
		b.Fatal(err)
	}
	if err := udaf.RegisterAll(e, udaf.Config{Epsilon: eps, Window: 60}); err != nil {
		b.Fatal(err)
	}
	return e
}

// runQueryBench pushes b.N tuples through a prepared statement.
func runQueryBench(b *testing.B, eps float64, query string, tuples []gsql.Tuple, opts gsql.Options) {
	b.Helper()
	e := benchEngine(b, eps)
	st, err := e.Prepare(query)
	if err != nil {
		b.Fatal(err)
	}
	run := st.Start(func(gsql.Tuple) error { return nil }, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run.Push(tuples[i%len(tuples)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := run.Close(); err != nil {
		b.Fatal(err)
	}
}

// Figure 2(a): per-minute per-destination count+sum under each method with
// the two-level split on.
func BenchmarkFig2aCountSum(b *testing.B) {
	tuples := benchTuples(200_000, 200_000)
	for _, m := range []struct{ name, q string }{
		{"NoDecay", `select tb, dstIP, destPort, count(*), sum(len) from TCP group by time/60 as tb, dstIP, destPort`},
		{"FwdPoly", `select tb, dstIP, destPort, sum(float(len)*(time % 60)*(time % 60))/3600 from TCP group by time/60 as tb, dstIP, destPort`},
		{"FwdExp", `select tb, dstIP, destPort, sum(float(len)*exp(float(time % 60)/10)) from TCP group by time/60 as tb, dstIP, destPort`},
		{"BwdEH", `select tb, dstIP, destPort, ehsum(ftime, float(len)) from TCP group by time/60 as tb, dstIP, destPort`},
	} {
		b.Run(m.name, func(b *testing.B) {
			runQueryBench(b, 0.1, m.q, tuples, gsql.Options{})
		})
	}
}

// Figure 2(b): the same queries with aggregate splitting disabled.
func BenchmarkFig2bNoSplit(b *testing.B) {
	tuples := benchTuples(200_000, 200_000)
	for _, m := range []struct{ name, q string }{
		{"NoDecay", `select tb, dstIP, destPort, count(*), sum(len) from TCP group by time/60 as tb, dstIP, destPort`},
		{"FwdPoly", `select tb, dstIP, destPort, sum(float(len)*(time % 60)*(time % 60))/3600 from TCP group by time/60 as tb, dstIP, destPort`},
	} {
		b.Run(m.name, func(b *testing.B) {
			runQueryBench(b, 0.1, m.q, tuples, gsql.Options{DisableTwoLevel: true})
		})
	}
}

// Figure 2(c): the EH baseline's cost as ε shrinks (forward methods are
// ε-independent; see BenchmarkFig2aCountSum).
func BenchmarkFig2cEHEpsilon(b *testing.B) {
	tuples := benchTuples(100_000, 150_000)
	const q = `select tb, dstIP, destPort, ehsum(ftime, float(len)) from TCP group by time/60 as tb, dstIP, destPort`
	for _, eps := range []float64{0.01, 0.02, 0.05, 0.1} {
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			runQueryBench(b, eps, q, tuples, gsql.Options{})
		})
	}
}

// Figure 2(d): per-group space. The benchmark inserts a hot group's minute
// of traffic into an EH and reports bytes/group (forward decay needs 8).
func BenchmarkFig2dSpacePerGroup(b *testing.B) {
	pkts := benchPackets(100, 6000) // one destination's packets over ~60 s
	for _, eps := range []float64{0.01, 0.1} {
		b.Run(fmt.Sprintf("EH/eps=%g", eps), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				eh := sketch.NewExpHistogram(eps, 60)
				for _, p := range pkts {
					eh.Insert(p.Time, float64(p.Len))
				}
				size = eh.SizeBytes()
			}
			b.ReportMetric(float64(size), "bytes/group")
		})
	}
	b.Run("FwdDecay", func(b *testing.B) {
		m := decay.NewForward(decay.NewPoly(2), 0)
		s := agg.NewSum(m)
		for i := 0; i < b.N; i++ {
			s.Observe(pkts[i%len(pkts)].Time, float64(pkts[i%len(pkts)].Len))
		}
		b.ReportMetric(8, "bytes/group")
	})
}

// Figure 3(a)/(b): sampling maintenance cost per packet; sub-benchmarks
// cover the three methods and the sample-size sweep.
func BenchmarkFig3Sampling(b *testing.B) {
	pkts := benchPackets(200_000, 200_000)
	for _, k := range []int{100, 1000, 10_000} {
		b.Run(fmt.Sprintf("Reservoir/k=%d", k), func(b *testing.B) {
			s := sample.NewReservoir[uint32](k, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(pkts[i%len(pkts)].SrcIP)
			}
		})
		b.Run(fmt.Sprintf("PriorityFwdExp/k=%d", k), func(b *testing.B) {
			s := sample.NewPriority[uint32](k, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pkts[i%len(pkts)]
				s.Add(p.SrcIP, 0.1*float64(int64(p.Time)%60))
			}
		})
		b.Run(fmt.Sprintf("Aggarwal/k=%d", k), func(b *testing.B) {
			s := sample.NewAggarwal[uint32](k, 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(pkts[i%len(pkts)].SrcIP)
			}
		})
	}
	b.Run("WRSFwdExp/k=1000", func(b *testing.B) {
		s := sample.NewWRS[uint32](1000, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pkts[i%len(pkts)]
			s.Add(p.SrcIP, 0.1*float64(int64(p.Time)%60))
		}
	})
}

// Figures 4(a)/4(b) and 5: heavy-hitter maintenance cost per packet for the
// four methods, across ε.
func BenchmarkFig45HeavyHitters(b *testing.B) {
	pkts := benchPackets(200_000, 200_000)
	for _, eps := range []float64{0.01, 0.1} {
		k := int(1 / eps)
		b.Run(fmt.Sprintf("UnaryHH/eps=%g", eps), func(b *testing.B) {
			s := sketch.NewStreamSummary(k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(pkts[i%len(pkts)].DestKey())
			}
		})
		b.Run(fmt.Sprintf("FwdExpSS/eps=%g", eps), func(b *testing.B) {
			h := agg.NewHeavyHittersK(decay.NewForward(decay.NewExp(0.1), 0), k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pkts[i%len(pkts)]
				h.Observe(p.DestKey(), p.Time)
			}
		})
		b.Run(fmt.Sprintf("FwdPolySS/eps=%g", eps), func(b *testing.B) {
			h := agg.NewHeavyHittersK(decay.NewForward(decay.NewPoly(2), -1), k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pkts[i%len(pkts)]
				h.Observe(p.DestKey(), p.Time)
			}
		})
		b.Run(fmt.Sprintf("SlidingWindow/eps=%g", eps), func(b *testing.B) {
			h := window.NewHeavyHitters(60, eps)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := pkts[i%len(pkts)]
				h.Observe(p.DestKey(), p.Time, 1)
			}
			b.StopTimer()
			b.ReportMetric(float64(h.SizeBytes()), "bytes")
		})
	}
}

// Figure 4(c)/(d): heavy-hitter space. Reported as bytes metrics after a
// full simulated window of traffic.
func BenchmarkFig4cdSpace(b *testing.B) {
	pkts := benchPackets(5000, 450_000) // ~90 s of traffic
	for _, eps := range []float64{0.01, 0.1} {
		k := int(1 / eps)
		b.Run(fmt.Sprintf("FwdSS/eps=%g", eps), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				h := agg.NewHeavyHittersK(decay.NewForward(decay.NewExp(0.1), 0), k)
				for _, p := range pkts {
					h.Observe(p.DestKey(), p.Time)
				}
				size = h.SizeBytes()
			}
			b.ReportMetric(float64(size), "bytes")
		})
		b.Run(fmt.Sprintf("SlidingWindow/eps=%g", eps), func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				h := window.NewHeavyHitters(60, eps)
				for _, p := range pkts {
					h.Observe(p.DestKey(), p.Time, 1)
				}
				size = h.SizeBytes()
			}
			b.ReportMetric(float64(size), "bytes")
		})
	}
}

// Figure 1 / core model: the cost of a single weight evaluation and of a
// forward-decayed counter update (the 8-byte state of Figure 2(d)).
func BenchmarkFig1WeightEvaluation(b *testing.B) {
	models := []struct {
		name string
		m    decay.Forward
	}{
		{"Poly2", decay.NewForward(decay.NewPoly(2), 0)},
		{"Exp", decay.NewForward(decay.NewExp(0.1), 0)},
	}
	for _, mm := range models {
		b.Run(mm.name+"/Weight", func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				acc += mm.m.Weight(float64(i%1000), 1000)
			}
			_ = acc
		})
		b.Run(mm.name+"/CounterObserve", func(b *testing.B) {
			c := agg.NewCounter(mm.m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Observe(float64(i % 100000))
			}
		})
	}
}

// Ablation: heap-based weighted SpaceSaving vs the unary-optimised
// stream-summary structure, on the same unary stream (the Figure 5 gap).
func BenchmarkAblationSpaceSaving(b *testing.B) {
	pkts := benchPackets(200_000, 200_000)
	b.Run("WeightedHeap", func(b *testing.B) {
		s := sketch.NewSpaceSavingK(100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Update(pkts[i%len(pkts)].DestKey(), 1)
		}
	})
	b.Run("UnaryBuckets", func(b *testing.B) {
		s := sketch.NewStreamSummary(100)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Update(pkts[i%len(pkts)].DestKey())
		}
	})
}

// Ablation: Exponential Histogram vs Deterministic Wave for window counts.
func BenchmarkAblationWindowCount(b *testing.B) {
	pkts := benchPackets(100_000, 200_000)
	b.Run("ExpHistogram", func(b *testing.B) {
		h := sketch.NewExpHistogram(0.05, 60)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			h.Insert(pkts[i%len(pkts)].Time, 1)
		}
	})
	b.Run("Wave", func(b *testing.B) {
		w := sketch.NewWave(20, 60)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.Insert(pkts[i%len(pkts)].Time)
		}
	})
}

// Ablation: the log-domain rebasing path (exponential decay, rebases
// regularly) vs the plain path (polynomial decay, never rebases) vs no
// decay, isolating the §VI-A machinery's cost.
func BenchmarkAblationRescale(b *testing.B) {
	for _, mm := range []struct {
		name string
		m    decay.Forward
	}{
		{"None", decay.NewForward(decay.None{}, 0)},
		{"Poly2", decay.NewForward(decay.NewPoly(2), 0)},
		{"ExpFastRebase", decay.NewForward(decay.NewExp(10), 0)}, // rebases every ~30 time units
	} {
		b.Run(mm.name, func(b *testing.B) {
			s := agg.NewSum(mm.m)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Observe(float64(i)*0.001, 1.5)
			}
		})
	}
}

// Ablation: two-level split on vs off for the same query (Figure 2(a) vs
// 2(b) in microbenchmark form).
func BenchmarkAblationTwoLevel(b *testing.B) {
	tuples := benchTuples(200_000, 200_000)
	const q = `select tb, dstIP, destPort, count(*), sum(len) from TCP group by time/60 as tb, dstIP, destPort`
	for _, slots := range []int{4096, 65536, 262144} {
		b.Run(fmt.Sprintf("Split/slots=%d", slots), func(b *testing.B) {
			runQueryBench(b, 0.1, q, tuples, gsql.Options{LowLevelSlots: slots})
		})
	}
	b.Run("NoSplit", func(b *testing.B) {
		runQueryBench(b, 0.1, q, tuples, gsql.Options{DisableTwoLevel: true})
	})
}

// Ablation: forward-decay quantiles (one weighted q-digest) vs the
// windowed block hierarchy — the quantile analogue of the Figure 4/5 gap.
func BenchmarkAblationQuantiles(b *testing.B) {
	pkts := benchPackets(100_000, 200_000)
	b.Run("ForwardDigest", func(b *testing.B) {
		m := decay.NewForward(decay.NewPoly(2), -1)
		q := agg.NewQuantiles(m, 2048, 0.05)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pkts[i%len(pkts)]
			q.Observe(uint64(p.Len), p.Time)
		}
	})
	b.Run("WindowBlocks", func(b *testing.B) {
		q := window.NewQuantiles(60, 2048, 0.05)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pkts[i%len(pkts)]
			q.Observe(uint64(p.Len), p.Time, 1)
		}
	})
}

// Distributed ingestion: per-observation cost through a site channel
// (includes the channel hop, the §VI-B deployment's "network").
func BenchmarkDistribIngest(b *testing.B) {
	model := decay.NewForward(decay.NewExp(0.01), 0)
	cl, err := distrib.New(distrib.Config{Sites: 4, Model: model, HHK: 100, Buffer: 8192})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	pkts := benchPackets(100_000, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		cl.Observe(i, distrib.Observation{Key: p.DestKey(), Value: float64(p.Len), Time: p.Time})
	}
}

// Metrics reservoir: the production-facing decaying-percentiles path.
func BenchmarkMetricsReservoirUpdate(b *testing.B) {
	clock := time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)
	r := metrics.NewReservoir(1024, 30*time.Second,
		metrics.WithClock(func() time.Time { return clock }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%1000 == 0 {
			clock = clock.Add(time.Second)
		}
		r.Update(float64(i % 500))
	}
}

// Holistic aggregates under forward decay: quantile and distinct-count
// maintenance cost (Theorems 3 and 4).
func BenchmarkHolisticForwardDecay(b *testing.B) {
	pkts := benchPackets(100_000, 200_000)
	m := decay.NewForward(decay.NewPoly(2), -1)
	b.Run("QuantilesObserve", func(b *testing.B) {
		q := agg.NewQuantiles(m, 2048, 0.05)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pkts[i%len(pkts)]
			q.Observe(uint64(p.Len), p.Time)
		}
	})
	b.Run("DistinctObserve", func(b *testing.B) {
		d := agg.NewDistinct(m, 256, 1.2, 128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pkts[i%len(pkts)]
			d.Observe(p.DestKey(), p.Time)
		}
	})
	b.Run("DistinctExactObserve", func(b *testing.B) {
		d := agg.NewDistinctExact(m)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pkts[i%len(pkts)]
			d.Observe(p.DestKey(), p.Time)
		}
	})
}

// Sharded LFTA/HFTA runtime: end-to-end ingest throughput of
// Statement.StartParallel vs the serial executor on a multi-group
// forward-decay query. Speedup over serial requires GOMAXPROCS > 1; at
// GOMAXPROCS=1 the shard variants expose routing + channel overhead.
func BenchmarkParallelIngest(b *testing.B) {
	tuples := benchTuples(200_000, 200_000)
	const q = `select tb, dstIP, destPort, count(*), sum(len),
	             sum(float(len)*(time % 60)*(time % 60))/3600
	           from TCP group by time/60 as tb, dstIP, destPort`
	b.Run("Serial", func(b *testing.B) {
		runQueryBench(b, 0.1, q, tuples, gsql.Options{})
	})
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("Shards=%d", shards), func(b *testing.B) {
			e := benchEngine(b, 0.1)
			st, err := e.Prepare(q)
			if err != nil {
				b.Fatal(err)
			}
			pr, err := st.StartParallel(func(gsql.Tuple) error { return nil },
				gsql.ParallelOptions{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pr.Push(tuples[i%len(tuples)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if err := pr.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}
