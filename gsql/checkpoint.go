package gsql

import (
	"bytes"
	"encoding"
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"forwarddecay/internal/core"
)

// Checkpoint/restore for query state. Forward decay makes this cheap: every
// aggregate's state is expressed in static weights fixed at arrival
// (§III of the paper), so a partial state serialized at any moment can be
// restored later — or on another machine — and resumed without replaying
// the stream, exactly the property the distributed deployment of §VI-B
// relies on. A checkpoint captures the open window bucket and every group's
// aggregate partials; the group aggregates themselves embed their decay
// model and landmark through the agg/sketch encodings.
//
// The format is versioned and length-prefixed, and the decoder hard-errors
// on corrupt input: wrong magic, wrong statement fingerprint, truncation,
// implausible counts, or trailing bytes all fail restore — a corrupt
// checkpoint must never panic or silently restore half a state.
//
// Layout (little-endian):
//
//	magic "FDC" + version (1 byte)
//	u64 statement fingerprint (query text + schema name)
//	u64 group-expression count, u64 aggregate-slot count
//	u8 bucketSet, value bucket (present iff bucketSet)
//	u64 tuples pushed
//	u8 epochSet, u64 epoch + f64 landmark (present iff epochSet; version 2)
//	u64 entry count, then per entry:
//	    group values (one encoded Value per group expression)
//	    per aggregate slot: u64 length + aggregator MarshalBinary bytes
//	u64 integrity hash of everything above
//
// Entries are partial states, not final groups: the same group key may
// appear in several entries (serial low/high tables, or one per shard) and
// restore folds duplicates together with Aggregator.Merge.
//
// Version 2 stamps the epoch supervisor's state — rollover count and
// current landmark — after the tuple count. On restore the stamp both
// reinstates the supervisor and cross-checks the entries: every restored
// aggregate that reports its landmark must agree with the header, so a
// checkpoint whose header and aggregate frames diverge (hand-edited, or
// spliced across epochs) is refused rather than merged across landmarks.
//
// The trailing integrity hash makes corruption detection total: length
// prefixes and tags catch structural damage, but a flipped byte inside a
// float payload would otherwise decode into silently wrong state. Restore
// verifies the hash before looking at anything else.

// ckptMagic prefixes every checkpoint; the fourth byte is the version.
var ckptMagic = [4]byte{'F', 'D', 'C', 2}

// Tags for the builtin aggregator encodings.
const (
	tagCkptCount  byte = 0xB1
	tagCkptSum    byte = 0xB2
	tagCkptAvg    byte = 0xB3
	tagCkptMinMax byte = 0xB4
)

// CheckpointAggregator is the interface an aggregator must satisfy to
// participate in checkpoint/restore: the standard binary marshaling pair.
// All builtin aggregates implement it; UDAFs that wrap the agg/sketch
// summaries can delegate to those types' encodings.
type CheckpointAggregator interface {
	Aggregator
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// Checkpointable reports whether every aggregate of the statement supports
// checkpointing, returning an error naming the first that does not.
func (s *Statement) Checkpointable() error { return checkpointable(s.p) }

func checkpointable(p *plan) error {
	for _, spec := range p.aggSpecs {
		if _, ok := spec.New().(CheckpointAggregator); !ok {
			return fmt.Errorf("gsql: aggregate %s does not support checkpointing (missing MarshalBinary/UnmarshalBinary)", spec.Name)
		}
	}
	return nil
}

// fingerprint identifies the (statement, schema) pair a checkpoint belongs
// to, so a checkpoint cannot be restored into a different query.
func fingerprint(text, schemaName string) uint64 {
	return core.Hash2(core.HashString(text), core.HashString(schemaName))
}

// --- primitive encoding helpers ---------------------------------------

func ckU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// sealCkpt appends the integrity hash over the assembled checkpoint body.
func sealCkpt(b []byte) []byte { return ckU64(b, core.HashBytes(b)) }

// unsealCkpt verifies and strips the integrity hash. Any corruption —
// a flipped byte anywhere in the body or the hash itself, or a truncated
// file — fails here, before any field is interpreted.
func unsealCkpt(b []byte) ([]byte, error) {
	if len(b) < 8 {
		return nil, fmt.Errorf("gsql: not a checkpoint (too short)")
	}
	body := b[:len(b)-8]
	if core.HashBytes(body) != binary.LittleEndian.Uint64(b[len(b)-8:]) {
		return nil, fmt.Errorf("gsql: checkpoint failed integrity check (corrupt or truncated)")
	}
	return body, nil
}

func appendCkptValue(b []byte, v Value) []byte {
	b = append(b, byte(v.T))
	switch v.T {
	case TInt, TBool:
		b = ckU64(b, uint64(v.I))
	case TFloat:
		b = ckU64(b, math.Float64bits(v.F))
	case TString:
		b = ckU64(b, uint64(len(v.S)))
		b = append(b, v.S...)
	}
	return b
}

// ckptDec is a consuming reader over checkpoint bytes; every read method
// hard-errors on truncation.
type ckptDec struct{ b []byte }

var errCkptTruncated = fmt.Errorf("gsql: truncated checkpoint")

func (d *ckptDec) u8() (byte, error) {
	if len(d.b) < 1 {
		return 0, errCkptTruncated
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *ckptDec) u64() (uint64, error) {
	if len(d.b) < 8 {
		return 0, errCkptTruncated
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v, nil
}

// bytesField consumes a u64 length prefix and that many bytes, bounding
// the length by the remaining input so corrupt prefixes cannot trigger
// over-allocation.
func (d *ckptDec) bytesField() ([]byte, error) {
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.b)) {
		return nil, fmt.Errorf("gsql: checkpoint field claims %d bytes but only %d remain", n, len(d.b))
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out, nil
}

func (d *ckptDec) value() (Value, error) {
	tag, err := d.u8()
	if err != nil {
		return Null, err
	}
	switch Type(tag) {
	case TNull:
		return Null, nil
	case TInt, TBool:
		u, err := d.u64()
		if err != nil {
			return Null, err
		}
		return Value{T: Type(tag), I: int64(u)}, nil
	case TFloat:
		u, err := d.u64()
		if err != nil {
			return Null, err
		}
		return Float(math.Float64frombits(u)), nil
	case TString:
		sb, err := d.bytesField()
		if err != nil {
			return Null, err
		}
		return Str(string(sb)), nil
	default:
		return Null, fmt.Errorf("gsql: checkpoint has unknown value tag 0x%02x", tag)
	}
}

// --- group entries -----------------------------------------------------

// appendGroupEntry serializes one partial group (its group values and each
// aggregate slot's partial state).
func appendGroupEntry(b []byte, p *plan, g *group) ([]byte, error) {
	for _, v := range g.gv {
		b = appendCkptValue(b, v)
	}
	for i, a := range g.aggs {
		m, ok := a.(encoding.BinaryMarshaler)
		if !ok {
			return nil, fmt.Errorf("gsql: aggregate %s does not support checkpointing", p.aggSpecs[i].Name)
		}
		ab, err := m.MarshalBinary()
		if err != nil {
			return nil, err
		}
		b = ckU64(b, uint64(len(ab)))
		b = append(b, ab...)
	}
	return b, nil
}

// readGroupEntry decodes one partial group, instantiating fresh
// aggregators from the plan and loading their serialized partials.
func readGroupEntry(d *ckptDec, p *plan) (*group, error) {
	gv := make(Tuple, len(p.groupFns))
	for i := range gv {
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		gv[i] = v
	}
	aggs := newAggs(p)
	for i, a := range aggs {
		ab, err := d.bytesField()
		if err != nil {
			return nil, err
		}
		u, ok := a.(encoding.BinaryUnmarshaler)
		if !ok {
			return nil, fmt.Errorf("gsql: aggregate %s does not support checkpointing", p.aggSpecs[i].Name)
		}
		if err := u.UnmarshalBinary(ab); err != nil {
			return nil, fmt.Errorf("gsql: checkpoint aggregate %s: %w", p.aggSpecs[i].Name, err)
		}
	}
	return &group{gv: gv, aggs: aggs}, nil
}

// --- header ------------------------------------------------------------

// ckptHeader is the decoded checkpoint preamble.
type ckptHeader struct {
	bucketSet bool
	bucket    Value
	tuples    uint64
	epochSet  bool
	epoch     uint64
	landmark  float64
}

// appendCkptHeader writes the checkpoint preamble shared by the serial and
// sharded paths; ep (nil when the run has no epoch supervisor) stamps the
// rollover count and current landmark.
func appendCkptHeader(b []byte, p *plan, bucketSet bool, bucket Value, tuples uint64, ep *epochState) []byte {
	b = append(b, ckptMagic[:]...)
	b = ckU64(b, p.fp)
	b = ckU64(b, uint64(len(p.groupFns)))
	b = ckU64(b, uint64(len(p.aggSpecs)))
	if bucketSet {
		b = append(b, 1)
		b = appendCkptValue(b, bucket)
	} else {
		b = append(b, 0)
	}
	b = ckU64(b, tuples)
	if ep != nil {
		b = append(b, 1)
		b = ckU64(b, ep.epoch)
		return ckU64(b, math.Float64bits(ep.model.Landmark))
	}
	return append(b, 0)
}

// readCkptHeader validates the preamble against the restoring plan.
func readCkptHeader(d *ckptDec, p *plan) (h ckptHeader, err error) {
	if len(d.b) < 4 || d.b[0] != ckptMagic[0] || d.b[1] != ckptMagic[1] || d.b[2] != ckptMagic[2] {
		return h, fmt.Errorf("gsql: not a checkpoint (bad magic)")
	}
	if d.b[3] != ckptMagic[3] {
		return h, fmt.Errorf("gsql: unsupported checkpoint version %d", d.b[3])
	}
	d.b = d.b[4:]
	fp, err := d.u64()
	if err != nil {
		return h, err
	}
	if fp != p.fp {
		return h, fmt.Errorf("gsql: checkpoint was taken by a different statement or schema")
	}
	ng, err := d.u64()
	if err != nil {
		return h, err
	}
	na, err := d.u64()
	if err != nil {
		return h, err
	}
	if ng != uint64(len(p.groupFns)) || na != uint64(len(p.aggSpecs)) {
		return h, fmt.Errorf("gsql: checkpoint shape (%d groups, %d aggregates) does not match plan (%d, %d)",
			ng, na, len(p.groupFns), len(p.aggSpecs))
	}
	bs, err := d.u8()
	if err != nil {
		return h, err
	}
	if bs > 1 {
		return h, fmt.Errorf("gsql: corrupt checkpoint bucket flag 0x%02x", bs)
	}
	if bs == 1 {
		if h.bucket, err = d.value(); err != nil {
			return h, err
		}
		h.bucketSet = true
	}
	if h.tuples, err = d.u64(); err != nil {
		return h, err
	}
	es, err := d.u8()
	if err != nil {
		return h, err
	}
	if es > 1 {
		return h, fmt.Errorf("gsql: corrupt checkpoint epoch flag 0x%02x", es)
	}
	if es == 1 {
		if h.epoch, err = d.u64(); err != nil {
			return h, err
		}
		lm, err := d.u64()
		if err != nil {
			return h, err
		}
		h.landmark = math.Float64frombits(lm)
		if math.IsNaN(h.landmark) || math.IsInf(h.landmark, 0) {
			return h, fmt.Errorf("gsql: checkpoint stamps non-finite landmark %v", h.landmark)
		}
		h.epochSet = true
	}
	return h, nil
}

// --- serial Run --------------------------------------------------------

// Checkpoint serializes the run's full state — open window bucket and
// every partial group in the two-level tables — without disturbing the
// run; pushing may continue afterwards. It fails if any aggregate does not
// support checkpointing (Statement.Checkpointable).
//
// Group entries are written in canonical (key-sorted) order, so two runs
// holding identical state produce identical checkpoint bytes regardless of
// where their groups live (high map vs low slots, insertion history). The
// multi-query differential suite relies on that to compare a shared-runtime
// member against its standalone twin bit-for-bit.
func (r *Run) Checkpoint() ([]byte, error) {
	if err := checkpointable(r.p); err != nil {
		return nil, err
	}
	b := appendCkptHeader(nil, r.p, r.bucketSet, r.bucket, r.tuples, r.ep)
	entries := make([][]byte, 0, len(r.high))
	var err error
	appendOne := func(g *group) error {
		var eb []byte
		if eb, err = appendGroupEntry(nil, r.p, g); err != nil {
			return err
		}
		entries = append(entries, eb)
		return nil
	}
	for _, g := range r.high {
		if err := appendOne(g); err != nil {
			return nil, err
		}
	}
	for i := range r.low {
		if s := &r.low[i]; s.used {
			if err := appendOne(&group{gv: s.gv, aggs: s.aggs}); err != nil {
				return nil, err
			}
		}
	}
	// Sorting the serialized entries (group values encode first, so this is
	// key order with the aggregate payload as tie-break) makes the order
	// independent of map iteration and of which table a partial lives in —
	// equal state, equal bytes, even when an evicted partial and a reborn
	// low slot share a group key.
	sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i], entries[j]) < 0 })
	b = ckU64(b, uint64(len(entries)))
	for _, eb := range entries {
		b = append(b, eb...)
	}
	r.checkpoints++
	return sealCkpt(b), nil
}

// Restore resumes a run from a checkpoint taken by Run.Checkpoint or
// ParallelRun.Checkpoint on the same statement: the open window bucket and
// all partial groups are reinstated, and pushing the remainder of the
// stream yields the same results as an uninterrupted run (exact for the
// builtin aggregates; within documented error bounds for sketch UDAFs,
// whose merges are approximate). Corrupt input returns an error and never
// a partial run.
func (s *Statement) Restore(ckpt []byte, sink func(Tuple) error, opts Options) (*Run, error) {
	body, err := unsealCkpt(ckpt)
	if err != nil {
		return nil, err
	}
	r := newRun(s.p, sink, opts)
	if r.epErr != nil {
		return nil, r.epErr
	}
	d := &ckptDec{b: body}
	h, err := readCkptHeader(d, s.p)
	if err != nil {
		return nil, err
	}
	n, err := d.u64()
	if err != nil {
		return nil, err
	}
	// Each entry carries at least one length prefix per aggregate slot and
	// one tag byte per group value; bound the claimed count by that.
	if min := uint64(len(s.p.groupFns) + 8*len(s.p.aggSpecs)); min > 0 && n > uint64(len(d.b))/min {
		return nil, fmt.Errorf("gsql: checkpoint claims %d groups but only %d bytes remain", n, len(d.b))
	}
	var keyBuf []byte
	for i := uint64(0); i < n; i++ {
		g, err := readGroupEntry(d, s.p)
		if err != nil {
			return nil, err
		}
		if err := verifyLandmark(g.aggs, h.epochSet, h.landmark); err != nil {
			return nil, err
		}
		keyBuf = keyBuf[:0]
		for _, v := range g.gv {
			keyBuf = v.appendKey(keyBuf)
		}
		if dst := r.high[string(keyBuf)]; dst == nil {
			r.high[string(keyBuf)] = g
		} else if err := mergeAggs(dst.aggs, g.aggs); err != nil {
			return nil, err
		}
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("gsql: %d trailing bytes in checkpoint", len(d.b))
	}
	r.bucketSet, r.bucket, r.tuples = h.bucketSet, h.bucket, h.tuples
	if h.epochSet {
		// Groups born after the restore must join the stamped frame, not the
		// factories' baseline landmark.
		r.curL, r.landmarkSet = h.landmark, true
		if r.ep != nil {
			r.ep.restoreFrom(h.epoch, h.landmark)
		}
	}
	r.restores++
	return r, nil
}

// RestoreStatement is a package-level convenience equivalent to
// s.Restore(ckpt, sink, opts).
func RestoreStatement(s *Statement, ckpt []byte, sink func(Tuple) error, opts Options) (*Run, error) {
	return s.Restore(ckpt, sink, opts)
}

// --- builtin aggregator encodings --------------------------------------

func (c *countAgg) MarshalBinary() ([]byte, error) {
	return ckU64([]byte{tagCkptCount}, uint64(c.n)), nil
}

func (c *countAgg) UnmarshalBinary(b []byte) error {
	if len(b) != 9 || b[0] != tagCkptCount {
		return fmt.Errorf("gsql: malformed count encoding")
	}
	c.n = int64(binary.LittleEndian.Uint64(b[1:]))
	return nil
}

func (s *sumAgg) MarshalBinary() ([]byte, error) {
	var flags byte
	if s.isFloat {
		flags |= 1
	}
	if s.seen {
		flags |= 2
	}
	b := []byte{tagCkptSum, flags}
	b = ckU64(b, uint64(s.i))
	return ckU64(b, math.Float64bits(s.f)), nil
}

func (s *sumAgg) UnmarshalBinary(b []byte) error {
	if len(b) != 18 || b[0] != tagCkptSum || b[1] > 3 {
		return fmt.Errorf("gsql: malformed sum encoding")
	}
	s.isFloat = b[1]&1 != 0
	s.seen = b[1]&2 != 0
	s.i = int64(binary.LittleEndian.Uint64(b[2:]))
	s.f = math.Float64frombits(binary.LittleEndian.Uint64(b[10:]))
	return nil
}

func (a *avgAgg) MarshalBinary() ([]byte, error) {
	b := ckU64([]byte{tagCkptAvg}, math.Float64bits(a.sum))
	return ckU64(b, uint64(a.n)), nil
}

func (a *avgAgg) UnmarshalBinary(b []byte) error {
	if len(b) != 17 || b[0] != tagCkptAvg {
		return fmt.Errorf("gsql: malformed avg encoding")
	}
	a.sum = math.Float64frombits(binary.LittleEndian.Uint64(b[1:]))
	a.n = int64(binary.LittleEndian.Uint64(b[9:]))
	return nil
}

func (m *minmaxAgg) MarshalBinary() ([]byte, error) {
	var flags byte
	if m.min {
		flags |= 1
	}
	if m.seen {
		flags |= 2
	}
	return appendCkptValue([]byte{tagCkptMinMax, flags}, m.best), nil
}

func (m *minmaxAgg) UnmarshalBinary(b []byte) error {
	if len(b) < 2 || b[0] != tagCkptMinMax || b[1] > 3 {
		return fmt.Errorf("gsql: malformed min/max encoding")
	}
	d := &ckptDec{b: b[2:]}
	best, err := d.value()
	if err != nil {
		return err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("gsql: malformed min/max encoding")
	}
	m.min = b[1]&1 != 0
	m.seen = b[1]&2 != 0
	m.best = best
	return nil
}
