package gsql

import (
	"fmt"
	"strings"
)

// Column describes one stream attribute.
type Column struct {
	// Name is the attribute name (matched case-insensitively in queries).
	Name string
	// Type is the attribute's value type.
	Type Type
	// Monotone marks attributes that never decrease across the stream
	// (timestamps). Group-by expressions derived from a monotone column by
	// order-preserving arithmetic define the query's tumbling time buckets.
	Monotone bool
}

// Schema describes a stream's tuples.
type Schema struct {
	// Name is the stream name used in FROM clauses.
	Name string
	// Cols are the attributes, in tuple order.
	Cols []Column
}

// NewSchema builds a schema, validating that column names are unique.
func NewSchema(name string, cols ...Column) (*Schema, error) {
	if name == "" {
		return nil, fmt.Errorf("gsql: schema needs a name")
	}
	seen := map[string]bool{}
	for _, c := range cols {
		k := strings.ToLower(c.Name)
		if k == "" {
			return nil, fmt.Errorf("gsql: schema %s: empty column name", name)
		}
		if seen[k] {
			return nil, fmt.Errorf("gsql: schema %s: duplicate column %s", name, c.Name)
		}
		seen[k] = true
	}
	return &Schema{Name: name, Cols: cols}, nil
}

// MustSchema is NewSchema that panics on error, for static schemas.
func MustSchema(name string, cols ...Column) *Schema {
	s, err := NewSchema(name, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the index of the named column (case-insensitive), or
// -1 if absent.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Cols {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Tuple is one stream record, positionally matching its schema's columns.
type Tuple []Value

// PacketSchema is the schema of the synthesized network streams used
// throughout the repository's experiments, mirroring the paper's TCP/UDP
// streams: time (integer seconds, monotone), ftime (fractional seconds),
// srcIP, dstIP, srcPort, destPort, proto, len.
func PacketSchema(name string) *Schema {
	return MustSchema(name,
		Column{Name: "time", Type: TInt, Monotone: true},
		Column{Name: "ftime", Type: TFloat, Monotone: true},
		Column{Name: "srcIP", Type: TInt},
		Column{Name: "dstIP", Type: TInt},
		Column{Name: "srcPort", Type: TInt},
		Column{Name: "destPort", Type: TInt},
		Column{Name: "proto", Type: TInt},
		Column{Name: "len", Type: TInt},
	)
}
