package gsql

import (
	"fmt"
	"sort"
)

// Options configure query execution.
type Options struct {
	// DisableTwoLevel forces all aggregation to the high level, as the
	// paper does for Figure 2(b). The default (false) splits mergeable
	// queries across a fixed-size low-level table and a high-level merger.
	DisableTwoLevel bool
	// LowLevelSlots caps the low-level hash table (power of two; default
	// 4096). The table starts small and doubles deterministically with the
	// live-group count, so runs with few groups — the common shape in the
	// shared multi-query runtime — stay cache-resident instead of zeroing
	// and GC-scanning thousands of empty slots.
	LowLevelSlots int
	// Epoch enables the epoch-rollover supervisor: periodic and
	// overflow-triggered landmark advancement across every live aggregate.
	// Nil leaves the landmark fixed for the run's lifetime.
	Epoch *EpochConfig
	// Isolate enables per-query fault isolation in the multi-query runtime
	// (see MultiRun): breaker/cardinality quarantine and attach-time
	// admission control. Nil keeps the legacy fate-sharing behavior where
	// the first member error aborts the tuple for the whole runtime.
	// Standalone runs ignore it.
	Isolate *IsolateConfig
}

// Run executes one prepared statement over a stream: Push tuples, then
// Close. Rows are delivered to the sink as time buckets close (and finally
// at Close), each bucket's groups in deterministic (key-sorted) order.
//
// A Run is single-use and not safe for concurrent use.
type Run struct {
	p    *plan
	sink func(Tuple) error

	twoLevel bool
	low      []lowSlot
	lowMask  uint64
	// lowMax is the table's size cap; the table doubles toward it as live
	// groups approach 3/4 load. Growth depends only on this run's own fold
	// sequence, so two runs fed the same tuples stay bit-identical.
	lowMax int
	// lowUsed indexes the low-table slots occupied since the last flush, so
	// bucket flushes and landmark shifts walk only live groups instead of
	// the whole table — with many mostly-empty runs (the multi-query
	// runtime) a full-table scan per flush dominates the per-tuple cost.
	lowUsed []uint32
	high    map[string]*group

	bucketSet bool
	bucket    Value

	ep    *epochState
	epErr error
	// curL is the landmark groups must be born onto once a rollover (or an
	// epoch-stamped restore) has moved the run off the aggregate factories'
	// baseline; landmarkSet gates it so unrolled runs pay nothing.
	curL        float64
	landmarkSet bool

	keyBuf []byte
	args   []Value
	gv     Tuple // scratch group values, reused across Push calls
	rec    Tuple // scratch combined record

	// bx is the batch executor's scratch state, allocated on first PushBatch;
	// scalar-only runs never pay for it.
	bx *batchExec

	// stats
	evictions   uint64
	tuples      uint64
	windows     uint64
	checkpoints uint64
	restores    uint64
}

type lowSlot struct {
	used bool
	// listed marks the slot as present in the run's lowUsed index (set on
	// first occupancy since the last flush; duplicates must not accumulate
	// across evict/reuse cycles within one bucket).
	listed bool
	hash   uint64
	key    []byte
	gv     Tuple
	aggs   []Aggregator
}

type group struct {
	gv   Tuple
	aggs []Aggregator
}

// newRun wires a plan to a sink under the given options.
func newRun(p *plan, sink func(Tuple) error, opts Options) *Run {
	r := &Run{
		p:    p,
		sink: sink,
		high: make(map[string]*group, 256),
		args: make([]Value, 0, 4),
		gv:   make(Tuple, len(p.groupFns)),
		rec:  make(Tuple, len(p.groupFns)+len(p.aggSpecs)),
	}
	r.ep, r.epErr = newEpochState(opts.Epoch)
	r.twoLevel = p.mergeable && !opts.DisableTwoLevel && len(p.groupFns) > 0
	if r.twoLevel {
		n := opts.LowLevelSlots
		if n <= 0 {
			n = 4096
		}
		// Round the cap up to a power of two for mask indexing.
		max := 1
		for max < n {
			max <<= 1
		}
		r.lowMax = max
		sz := 64
		if sz > max {
			sz = max
		}
		r.low = make([]lowSlot, sz)
		r.lowMask = uint64(sz - 1)
	}
	return r
}

// growLow doubles the low-level table and rehashes its live slots. Doubling
// never introduces a collision (two occupied slots differ in the old index
// bits), so no evictions happen here.
func (r *Run) growLow() {
	old := r.low
	r.low = make([]lowSlot, len(old)*2)
	r.lowMask = uint64(len(r.low) - 1)
	used := r.lowUsed[:0]
	for _, i := range r.lowUsed {
		s := &old[i]
		if !s.used {
			continue // stale index from an aborted insert
		}
		j := s.hash & r.lowMask
		r.low[j] = *s
		used = append(used, uint32(j))
	}
	r.lowUsed = used
}

// Push processes one input tuple. Tuples carrying NaN or ±Inf floats are
// rejected with a *NonFiniteValueError before touching any group state.
func (r *Run) Push(t Tuple) error {
	r.tuples++
	if err := checkTupleFinite(r.p.schema, t); err != nil {
		return err
	}
	// The epoch check runs before the tuple is folded in, so the tuple that
	// crosses a period boundary is already aggregated in the new frame.
	if r.ep != nil {
		if err := r.maybeRoll(t); err != nil {
			return err
		}
	} else if r.epErr != nil {
		return r.epErr
	}
	return r.foldTuple(t)
}

// foldTuple is the post-epoch body of Push: WHERE, group evaluation, bucket
// advancement, table probe, and aggregate stepping. The batch executor's
// scalar replay path calls it directly (counting and epoch handling differ
// there), so it must stay exactly Push minus those preambles.
func (r *Run) foldTuple(t Tuple) error {
	if r.p.where != nil {
		ok, err := r.p.where(t)
		if err != nil {
			return err
		}
		if !ok.Truthy() {
			return nil
		}
	}

	// Evaluate group-by expressions (into the reused scratch slice — the
	// steady-state Push path performs no allocation) and detect bucket
	// advancement.
	gv := r.gv
	for i, fn := range r.p.groupFns {
		v, err := fn(t)
		if err != nil {
			return err
		}
		gv[i] = v
	}
	r.keyBuf = r.p.keyAppend(r.keyBuf[:0], gv)
	if ti := r.p.temporalIdx; ti >= 0 {
		b := gv[ti]
		if !r.bucketSet {
			r.bucket, r.bucketSet = b, true
		} else if r.p.bucketAfter(b, r.bucket) {
			if err := r.flush(); err != nil {
				return err
			}
			r.bucket = b
		}
	}

	// Probe the group table (two-level or high-only; the fast path — a
	// repeated group key hitting its slot — performs no allocation at all)
	// and fold the tuple in.
	aggs, err := r.probeGroup(r.keyBuf, gv)
	if err != nil {
		return err
	}
	r.args, err = stepAggs(r.p, aggs, t, r.args)
	return err
}

// newAggs instantiates one aggregator per slot of the plan.
func newAggs(p *plan) []Aggregator {
	aggs := make([]Aggregator, len(p.aggSpecs))
	for i, spec := range p.aggSpecs {
		aggs[i] = spec.New()
	}
	return aggs
}

// stepAggs folds tuple t into each aggregator, reusing args as the argument
// scratch buffer; the (possibly grown) buffer is returned for the caller to
// keep. The common arities (count(*) with none, sum/avg/udaf with one) skip
// the general argument loop.
func stepAggs(p *plan, aggs []Aggregator, t Tuple, args []Value) ([]Value, error) {
	for i, a := range aggs {
		fns := p.aggArgFns[i]
		var err error
		switch len(fns) {
		case 0:
			err = a.Step(nil)
		case 1:
			v, e := fns[0](t)
			if e != nil {
				return args, e
			}
			args = append(args[:0], v)
			err = a.Step(args)
		default:
			args = args[:0]
			for _, fn := range fns {
				v, e := fn(t)
				if e != nil {
					return args, e
				}
				args = append(args, v)
			}
			err = a.Step(args)
		}
		if err != nil {
			return args, err
		}
	}
	return args, nil
}

// evict merges a low-level partial into the high level. The slot's group
// values and aggregators are handed off, never aliased, so the slot can be
// refilled immediately.
func (r *Run) evict(s *lowSlot) error {
	r.evictions++
	g := r.high[string(s.key)]
	if g == nil {
		r.high[string(s.key)] = &group{gv: s.gv, aggs: s.aggs}
		s.gv, s.aggs = nil, nil
		return nil
	}
	err := mergeAggs(g.aggs, s.aggs)
	s.gv, s.aggs = nil, nil
	return err
}

// emitGroups emits every group of high in deterministic (key-sorted) order
// through sink, applying HAVING and the output projection. rec is the
// caller's scratch combined record (groupVals ++ aggFinals).
func emitGroups(p *plan, high map[string]*group, rec Tuple, sink func(Tuple) error) error {
	keys := make([]string, 0, len(high))
	for k := range high {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := high[k]
		copy(rec, g.gv)
		for i, a := range g.aggs {
			rec[len(g.gv)+i] = a.Final()
		}
		if p.having != nil {
			ok, err := p.having(rec)
			if err != nil {
				return err
			}
			if !ok.Truthy() {
				continue
			}
		}
		out := make(Tuple, len(p.outFns))
		for i, fn := range p.outFns {
			v, err := fn(rec)
			if err != nil {
				return err
			}
			out[i] = v
		}
		if err := sink(out); err != nil {
			return err
		}
	}
	return nil
}

// flush drains the low table into the high level, emits every group of the
// closed bucket in key order, and resets for the next bucket.
func (r *Run) flush() error {
	if r.twoLevel {
		for _, i := range r.lowUsed {
			s := &r.low[i]
			if s.used {
				if err := r.evict(s); err != nil {
					return err
				}
				s.used = false
			}
			s.listed = false
		}
		r.lowUsed = r.lowUsed[:0]
	}
	if err := emitGroups(r.p, r.high, r.rec, r.sink); err != nil {
		return err
	}
	clear(r.high)
	r.windows++
	return nil
}

// Heartbeat advances the temporal bucket without carrying data, closing
// (and emitting) any buckets older than the one containing ts. It mirrors
// GS's heartbeat/punctuation mechanism: a lull in traffic must not leave
// the previous time bucket's results unreported. ts is a value in the same
// units as the temporal group-by expression's source column (e.g. seconds
// for `group by time/60`); it is ignored for non-temporal queries.
func (r *Run) Heartbeat(ts Value) error {
	if r.ep != nil {
		if err := r.epochHeartbeat(ts); err != nil {
			return err
		}
	} else if r.epErr != nil {
		return r.epErr
	}
	return r.heartbeatBucket(ts)
}

// heartbeatBucket is the bucket-advance body of Heartbeat, after the epoch
// hook. The multi-query runtime calls it directly: its shared supervisor has
// already observed the heartbeat once for every attached query.
func (r *Run) heartbeatBucket(ts Value) error {
	ti := r.p.temporalIdx
	if ti < 0 {
		return nil
	}
	b, err := r.p.temporalOf(ts)
	if err != nil {
		return err
	}
	if !r.bucketSet {
		r.bucket, r.bucketSet = b, true
		return nil
	}
	if r.p.bucketAfter(b, r.bucket) {
		if err := r.flush(); err != nil {
			return err
		}
		r.bucket = b
	}
	return nil
}

// liveGroups approximates the live group population of the open bucket: the
// high-level table plus the low-level slots occupied since the last flush.
// lowUsed may briefly hold stale indexes from aborted inserts, so this is an
// upper bound — which is the right direction for a cardinality cap.
func (r *Run) liveGroups() int { return len(r.high) + len(r.lowUsed) }

// Close flushes the final (still open) bucket.
func (r *Run) Close() error { return r.flush() }

// Stats reports tuples processed and low-level evictions (diagnostics for
// the two-level experiments).
func (r *Run) Stats() (tuples, evictions uint64) { return r.tuples, r.evictions }

// errSinkStop can be returned by sinks to abort execution early.
var errSinkStop = fmt.Errorf("gsql: sink requested stop")

// SinkStop returns the sentinel error a sink may return to stop execution;
// Push and Close propagate it unchanged.
func SinkStop() error { return errSinkStop }
