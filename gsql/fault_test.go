package gsql_test

import (
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"forwarddecay/gsql"
	"forwarddecay/internal/faultinject"
)

const faultQuery = `select tb, dstIP, count(*), sum(len), min(len), max(len)
  from TCP group by time/60 as tb, dstIP`

// window1Tuples builds n tuples that all land in time bucket 1
// (time in [60,120)) across a handful of groups.
func window1Tuples(n int) []gsql.Tuple {
	out := make([]gsql.Tuple, n)
	for i := range out {
		out[i] = pkt2(int64(60+i%60), int64(i%5), 80, int64(100+i%37))
	}
	return out
}

// requireNoGoroutineLeak polls until the goroutine count returns to its
// pre-test baseline (with slack for runtime background goroutines).
func requireNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// drainErrors collects everything currently sitting on the errors channel.
func drainErrors(pr *gsql.ParallelRun) []error {
	var out []error
	for {
		select {
		case err := <-pr.Errors():
			out = append(out, err)
		default:
			return out
		}
	}
}

// TestShardPanicFail: a panic inside a shard worker must not deadlock the
// drain barrier. Under the default PanicFail policy the recovered panic
// surfaces as a typed *ShardPanicError from the window flush, appears on
// the Errors channel, is counted, and every worker goroutine still exits.
func TestShardPanicFail(t *testing.T) {
	defer faultinject.Reset()
	e := parallelEngine(t)
	st, err := e.Prepare(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	var rows []gsql.Tuple
	pr, err := st.StartParallel(func(row gsql.Tuple) error { rows = append(rows, row); return nil },
		gsql.ParallelOptions{Shards: 2, BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set("gsql.shard.step", faultinject.Fault{PanicAt: 5})
	var pushErr error
	for _, tp := range window1Tuples(50) {
		if pushErr = pr.Push(tp); pushErr != nil {
			break
		}
	}
	closeErr := pr.Close()
	err = pushErr
	if err == nil {
		err = closeErr
	}
	var pe *gsql.ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panic did not surface as ShardPanicError: push=%v close=%v", pushErr, closeErr)
	}
	if pe.Shard < 0 || pe.Shard > 1 {
		t.Fatalf("bad shard index in error: %d", pe.Shard)
	}
	found := false
	for _, e := range drainErrors(pr) {
		if errors.As(e, &pe) {
			found = true
		}
	}
	if !found {
		t.Fatal("ShardPanicError never appeared on the Errors channel")
	}
	if s := pr.RuntimeStats(); s.ShardPanics == 0 {
		t.Fatalf("ShardPanics not counted: %+v", s)
	}
	requireNoGoroutineLeak(t, before)
}

// TestShardPanicRestartExactness: under PanicRestart a panicking shard is
// restarted from the last checkpoint of the current window. With the
// panic injected on the first tuple after the checkpoint, the closed
// window's output must be exactly the serial output over the
// pre-checkpoint tuples — only post-checkpoint data on the failed shard is
// lost — and the run keeps accepting tuples afterwards.
func TestShardPanicRestartExactness(t *testing.T) {
	defer faultinject.Reset()
	e := parallelEngine(t)
	st, err := e.Prepare(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	tuples := window1Tuples(40)
	want := serialRows(t, st, tuples, gsql.Options{})
	if len(want) == 0 {
		t.Fatal("workload produced no rows")
	}

	var rows []gsql.Tuple
	pr, err := st.StartParallel(func(row gsql.Tuple) error { rows = append(rows, row); return nil },
		gsql.ParallelOptions{Shards: 2, BatchSize: 4, OnPanic: gsql.PanicRestart})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if err := pr.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// The very next stepped tuple panics its shard mid-window.
	faultinject.Set("gsql.shard.step", faultinject.Fault{PanicAt: 1})
	if err := pr.Push(pkt2(119, 1, 80, 9_999)); err != nil {
		t.Fatal(err)
	}
	if err := pr.Heartbeat(gsql.Int(200)); err != nil {
		t.Fatalf("window close after restart returned error: %v", err)
	}
	requireIdentical(t, want, rows, "restart window")

	s := pr.RuntimeStats()
	if s.ShardPanics != 1 || s.ShardRestarts != 1 {
		t.Fatalf("panic/restart counters: %+v", s)
	}
	var pe *gsql.ShardPanicError
	found := false
	for _, e := range drainErrors(pr) {
		if errors.As(e, &pe) {
			found = true
		}
	}
	if !found {
		t.Fatal("restart did not report the panic on the Errors channel")
	}

	// The run survives: the restarted shard accepts the next window.
	faultinject.Reset()
	mark := len(rows)
	for i := 0; i < 20; i++ {
		if err := pr.Push(pkt2(int64(240+i%30), int64(i%3), 80, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	if len(rows) == mark {
		t.Fatal("no rows emitted after shard restart")
	}
}

// TestLoadSheddingDropNewest: with slow shards and OverloadDropNewest the
// producer never blocks on a full shard queue — full batches are shed and
// counted, and the run still completes cleanly.
func TestLoadSheddingDropNewest(t *testing.T) {
	defer faultinject.Reset()
	e := parallelEngine(t)
	st, err := e.Prepare(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Set("gsql.shard.step", faultinject.Fault{DelayEvery: 1, Delay: 2 * time.Millisecond})
	var rows []gsql.Tuple
	pr, err := st.StartParallel(func(row gsql.Tuple) error { rows = append(rows, row); return nil },
		gsql.ParallelOptions{Shards: 1, BatchSize: 1, BufferedBatches: 1, Overload: gsql.OverloadDropNewest})
	if err != nil {
		t.Fatal(err)
	}
	tuples := window1Tuples(300)
	for _, tp := range tuples {
		if err := pr.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	faultinject.Reset() // let the drain run at full speed
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	s := pr.RuntimeStats()
	if s.TuplesShed == 0 || s.BatchesShed == 0 {
		t.Fatalf("overloaded run shed nothing: %+v", s)
	}
	if s.TuplesIn != uint64(len(tuples)) {
		t.Fatalf("TuplesIn = %d, want %d", s.TuplesIn, len(tuples))
	}
	if s.TuplesShed >= uint64(len(tuples)) {
		t.Fatalf("everything was shed: %+v", s)
	}
	if len(rows) == 0 {
		t.Fatal("shedding run emitted no rows at all")
	}
}

// TestLoadSheddingBlock: the default OverloadBlock policy sheds nothing —
// backpressure stalls the producer instead — so results are exactly the
// serial results even with slow shards.
func TestLoadSheddingBlock(t *testing.T) {
	defer faultinject.Reset()
	e := parallelEngine(t)
	st, err := e.Prepare(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	tuples := window1Tuples(120)
	want := serialRows(t, st, tuples, gsql.Options{})
	faultinject.Set("gsql.shard.step", faultinject.Fault{DelayEvery: 4, Delay: time.Millisecond})
	var rows []gsql.Tuple
	pr, err := st.StartParallel(func(row gsql.Tuple) error { rows = append(rows, row); return nil },
		gsql.ParallelOptions{Shards: 2, BatchSize: 1, BufferedBatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if err := pr.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	s := pr.RuntimeStats()
	if s.TuplesShed != 0 || s.BatchesShed != 0 {
		t.Fatalf("blocking policy shed data: %+v", s)
	}
	requireIdentical(t, want, rows, "blocked backpressure")
}

// TestPushRejectsNonFinite: NaN and ±Inf floats are rejected at the ingest
// boundary of both runtimes with a typed error naming the column, and the
// poisoned tuple contributes nothing.
func TestPushRejectsNonFinite(t *testing.T) {
	e := parallelEngine(t)
	st, err := e.Prepare(faultQuery)
	if err != nil {
		t.Fatal(err)
	}
	bad := pkt2(70, 1, 80, 100)
	bad[1] = gsql.Float(math.NaN()) // ftime column

	run := st.Start(func(gsql.Tuple) error { return nil }, gsql.Options{})
	err = run.Push(bad)
	var nfe *gsql.NonFiniteValueError
	if !errors.As(err, &nfe) {
		t.Fatalf("serial Push accepted NaN: %v", err)
	}
	if nfe.Column != "ftime" {
		t.Fatalf("error names column %q, want ftime", nfe.Column)
	}

	pr, err := st.StartParallel(func(gsql.Tuple) error { return nil }, gsql.ParallelOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		b := pkt2(70, 1, 80, 100)
		b[1] = gsql.Float(x)
		if err := pr.Push(b); !errors.As(err, &nfe) {
			t.Fatalf("parallel Push accepted %v: %v", x, err)
		}
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	if s := pr.RuntimeStats(); s.TuplesIn != 3 {
		t.Fatalf("rejected tuples were counted oddly: %+v", s)
	}
}
