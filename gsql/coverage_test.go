package gsql

import (
	"math"
	"testing"
)

// TestComparisonOperatorsEndToEnd exercises every comparison and logical
// operator through compiled WHERE clauses.
func TestComparisonOperatorsEndToEnd(t *testing.T) {
	e := mkEngine(t)
	tuples := []Tuple{
		pkt(1, 1, 80, 10), pkt(2, 2, 443, 20), pkt(3, 3, 80, 30),
	}
	cases := []struct {
		where string
		want  int64
	}{
		{"len = 20", 1},
		{"len != 20", 2},
		{"len < 20", 1},
		{"len <= 20", 2},
		{"len > 20", 1},
		{"len >= 20", 2},
		{"len <> 20", 2},
		{"len > 10 and destPort = 80", 1},
		{"len = 10 or len = 30", 2},
		{"not len = 10", 2},
		{"not (len = 10 or len = 30)", 1},
		{"true", 3},
		{"false", 0},
		{"-len < -15", 2},
		{"len % 20 = 10", 2},
		{"'a' = 'a'", 3},
		{"'a' != 'b'", 3},
		{"'a' < 'b'", 3},
	}
	for _, c := range cases {
		rows := execAll(t, e, "select count(*) from TCP where "+c.where, tuples, Options{})
		// A predicate rejecting every tuple creates no group at all.
		var got int64
		if len(rows) > 0 {
			got = rows[0][0].AsInt()
		}
		if got != c.want {
			t.Errorf("where %q: count %d, want %d", c.where, got, c.want)
		}
	}
}

// TestUnaryMinusAndLiterals covers unary negation over floats and nested
// unaries.
func TestUnaryMinusAndLiterals(t *testing.T) {
	e := mkEngine(t)
	tuples := []Tuple{pkt(1, 1, 80, 10)}
	rows := execAll(t, e, "select max(-len), max(- -len), max(-1.5 * float(len)) from TCP", tuples, Options{})
	if rows[0][0].AsInt() != -10 || rows[0][1].AsInt() != 10 {
		t.Errorf("unary minus: %v", rows[0])
	}
	if math.Abs(rows[0][2].AsFloat()+15) > 1e-12 {
		t.Errorf("float unary: %v", rows[0][2])
	}
}

// TestSelectLiteralAndFunctionOfGroups covers select items built from
// literals and scalar functions of group expressions.
func TestSelectLiteralAndFunctionOfGroups(t *testing.T) {
	e := mkEngine(t)
	tuples := []Tuple{pkt(65, 1, 80, 10), pkt(70, 1, 80, 20)}
	rows := execAll(t, e,
		`select 42, tb, abs(tb - 3), float(tb)/2, 'label', count(*) from TCP group by time/60 as tb`,
		tuples, Options{})
	r := rows[0]
	if r[0].AsInt() != 42 || r[1].AsInt() != 1 || r[2].AsInt() != 2 {
		t.Errorf("row = %v", r)
	}
	if math.Abs(r[3].AsFloat()-0.5) > 1e-12 || r[4].S != "label" || r[5].AsInt() != 2 {
		t.Errorf("row = %v", r)
	}
}

// TestSumMergeTypePromotion exercises the int→float promotion inside the
// two-level merge path.
func TestSumMergeTypePromotion(t *testing.T) {
	e := mkEngine(t)
	// Mixed int and float sum contributions across many groups with a tiny
	// low-level table forces merges of partials in both orders.
	var tuples []Tuple
	for i := int64(0); i < 2000; i++ {
		tuples = append(tuples, pkt(i/50, i%7, 80, 40+i%100))
	}
	q := `select tb, dstIP, sum(len), sum(float(len)/2), min(len), max(len), avg(len), count(len) from TCP group by time/5 as tb, dstIP`
	split := execAll(t, e, q, tuples, Options{LowLevelSlots: 4})
	single := execAll(t, e, q, tuples, Options{DisableTwoLevel: true})
	if len(split) != len(single) {
		t.Fatalf("row counts differ")
	}
	for i := range split {
		for j := range split[i] {
			a, b := split[i][j], single[i][j]
			if a.T == TFloat {
				if math.Abs(a.F-b.F) > 1e-9 {
					t.Fatalf("row %d col %d: %v vs %v", i, j, a, b)
				}
			} else if a != b {
				t.Fatalf("row %d col %d: %v vs %v", i, j, a, b)
			}
		}
	}
}

// TestSinkStopPropagates covers the early-termination sentinel.
func TestSinkStopPropagates(t *testing.T) {
	st, err := mkEngine(t).Prepare(`select tb, count(*) from TCP group by time/10 as tb`)
	if err != nil {
		t.Fatal(err)
	}
	emitted := 0
	run := st.Start(func(Tuple) error {
		emitted++
		return SinkStop()
	}, Options{})
	var pushErr error
	for i := int64(0); i < 100 && pushErr == nil; i++ {
		pushErr = run.Push(pkt(i, 1, 80, 1))
	}
	if pushErr == nil || pushErr.Error() != SinkStop().Error() {
		t.Fatalf("push error = %v, want sink-stop", pushErr)
	}
	if emitted != 1 {
		t.Fatalf("emitted %d rows after stop", emitted)
	}
}

// TestQueryASTStringWithAllClauses covers the canonical rendering of a
// query with where/group/having and aliases.
func TestQueryASTStringWithAllClauses(t *testing.T) {
	isAgg := func(n string) bool { return n == "count" || n == "sum" }
	src := `select tb as bucket, count(*) from TCP where proto = 6 and len > 0 group by time/60 as tb having count(*) > 1`
	q, err := parseQuery(src, isAgg)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, frag := range []string{"select", "as bucket", "from TCP", "where", "group by", "as tb", "having"} {
		if !containsFold(s, frag) {
			t.Errorf("canonical form %q missing %q", s, frag)
		}
	}
	// String and boolean literal rendering.
	q2, err := parseQuery(`select count(*) from s where name = 'x' or flag = true`, isAgg)
	if err != nil {
		t.Fatal(err)
	}
	if !containsFold(q2.String(), "'x'") || !containsFold(q2.String(), "true") {
		t.Errorf("literal rendering: %q", q2.String())
	}
}

func containsFold(s, sub string) bool {
	S, Sub := []byte(s), []byte(sub)
	for i := range S {
		if 'A' <= S[i] && S[i] <= 'Z' {
			S[i] += 'a' - 'A'
		}
	}
	for i := range Sub {
		if 'A' <= Sub[i] && Sub[i] <= 'Z' {
			Sub[i] += 'a' - 'A'
		}
	}
	return string(S) != "" && string(Sub) != "" && indexBytes(S, Sub) >= 0
}

func indexBytes(s, sub []byte) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		ok := true
		for j := range sub {
			if s[i+j] != sub[j] {
				ok = false
				break
			}
		}
		if ok {
			return i
		}
	}
	return -1
}

// TestScalarFunctionErrors covers the error paths of ln/sqrt and bad
// arity.
func TestScalarFunctionErrors(t *testing.T) {
	e := mkEngine(t)
	st, err := e.Prepare(`select dstIP, max(ln(len - 100)) from TCP group by dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Execute(SliceSource([]Tuple{pkt(1, 1, 80, 50)}), Options{}); err == nil {
		t.Error("ln of negative must error at runtime")
	}
	st, err = e.Prepare(`select dstIP, max(sqrt(len - 100)) from TCP group by dstIP`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Execute(SliceSource([]Tuple{pkt(1, 1, 80, 50)}), Options{}); err == nil {
		t.Error("sqrt of negative must error at runtime")
	}
	if _, err := e.Prepare(`select max(pow(len)) from TCP`); err == nil {
		t.Error("pow arity must be checked at prepare time")
	}
}

// TestHavingRuntimeErrorPropagates covers error propagation from HAVING.
func TestHavingRuntimeErrorPropagates(t *testing.T) {
	e := mkEngine(t)
	st, err := e.Prepare(`select dstIP, count(*) from TCP group by dstIP having count(*) / (count(*) - 1) > 0`)
	if err != nil {
		t.Fatal(err)
	}
	// One tuple per group → count=1 → division by zero in HAVING.
	if _, err := st.Execute(SliceSource([]Tuple{pkt(1, 1, 80, 1)}), Options{}); err == nil {
		t.Error("expected runtime error from HAVING")
	}
}
