package gsql

import (
	"bytes"
	"fmt"
	"math/bits"

	"forwarddecay/internal/core"
)

// Batch execution: Run.PushBatch folds a whole columnar Batch with the
// vectorized plan. The pipeline per batch:
//
//  1. scanFinite builds the validity bitmap (the batched form of
//     checkTupleFinite); non-finite rows are counted as rejected and
//     skipped, the policy every scalar caller implements by hand.
//  2. The epoch scan walks the timestamp column observing stream time
//     exactly as the scalar per-tuple hook would, and cuts the batch into
//     segments at landmark rolls: within a segment the landmark is fixed,
//     so the whole segment can be vectorized; the roll applies between
//     segments, with the rolling row folded into the new frame — the same
//     order as scalar Push. Runs of equal timestamps observe once
//     (observe is idempotent for equal stream times), which on sorted
//     batches collapses the scan to one call per distinct timestamp.
//  3. Per segment, the WHERE kernel narrows the selection bitmap, then the
//     group and aggregate-argument kernels fill their column slots.
//  4. The fold walks selected rows detecting runs of equal group keys: one
//     key probe and one StepBatch per run instead of one of each per row.
//
// Exactness: any kernel error aborts step 3 before run state is touched and
// the segment is replayed row-by-row through the scalar fold path, which
// reproduces the scalar error at the exact row with the exact counters. The
// vectorized path is only ever taken end-to-end on segments that would not
// have errored, where it is bit-for-bit identical to N scalar Pushes.
type batchExec struct {
	ctx      vctx
	valid    []uint64
	rows     []int32 // row indices of the pending equal-key run
	flatArgs []Value
	curKey   []byte
	prevKey  []byte
	row      Tuple // scratch for row materialization (epoch closure, replay)

	// tsCol is the resolved EpochConfig.TimeColumn index (reading straight
	// from the column vector); tsColOK gates it, tsIsInt picks the vector.
	tsCol   int
	tsColOK bool
	tsIsInt bool
}

// newBatchExec resolves the batch executor's per-run state (shared by the
// serial Run and the ParallelRun coordinator).
func newBatchExec(p *plan, ep *epochState) *batchExec {
	bx := &batchExec{row: make(Tuple, len(p.schema.Cols))}
	if ep != nil {
		bx.resolveTimeColumn(ep.cfg.TimeColumn, p.schema)
	}
	return bx
}

func (bx *batchExec) resolveTimeColumn(name string, s *Schema) {
	if name == "" {
		return
	}
	idx := s.ColumnIndex(name)
	if idx < 0 {
		return
	}
	switch s.Cols[idx].Type {
	case TFloat:
		bx.tsCol, bx.tsColOK, bx.tsIsInt = idx, true, false
	case TInt:
		bx.tsCol, bx.tsColOK, bx.tsIsInt = idx, true, true
	}
}

// bitGet reads bit i.
func bitGet(bm []uint64, i int) bool { return bm[i>>6]&(1<<uint(i&63)) != 0 }

// PushBatch folds every row of b into the run, equivalently to Pushing the
// batch's rows one by one under the standard caller policy: rows rejected by
// the finite check are counted (the rejected return) and skipped, any other
// error stops processing at the exact row the scalar path would have stopped.
// The batch's selection bitmap is consumed as working state.
//
// On an aggregate step error the poisoned run's RuntimeStats tuple count may
// sit at the end of the failing key run rather than the failing row (the
// deferred StepBatch cannot name the row); every other error path counts
// exactly as scalar Push does.
func (r *Run) PushBatch(b *Batch) (rejected int, err error) {
	if b == nil || b.Len() == 0 {
		return 0, nil
	}
	if !b.compatibleWith(r.p.schema) {
		return 0, fmt.Errorf("gsql: batch schema %s is incompatible with stream %s",
			b.schema.Name, r.p.schema.Name)
	}
	if r.bx == nil {
		r.bx = newBatchExec(r.p, r.ep)
	}
	bx := r.bx
	tuples0 := r.tuples

	bx.valid = growBits(bx.valid, b.n)
	b.scanFinite(bx.valid)

	if r.ep == nil && r.epErr != nil {
		// Scalar Push rejects a non-finite tuple before reporting the epoch
		// config error, so invalid rows still count as rejected here.
		for i := 0; i < b.n; i++ {
			r.tuples++
			if !bitGet(bx.valid, i) {
				rejected++
				continue
			}
			return rejected, r.epErr
		}
		return rejected, nil
	}

	lo, skipObserve := 0, false
	for lo < b.n {
		hi, newL, roll := b.n, 0.0, false
		if r.ep != nil {
			hi, newL, roll = bx.scanEpoch(r.ep, b, lo, skipObserve)
		}
		if err := r.processSegment(b, lo, hi); err != nil {
			return countRejected(bx.valid, tuples0, r.tuples), err
		}
		if roll {
			if err := r.ShiftLandmark(newL); err != nil {
				// Scalar Push counts the rolling tuple before maybeRoll fails.
				r.tuples++
				return countRejected(bx.valid, tuples0, r.tuples), err
			}
		}
		lo, skipObserve = hi, roll
	}
	return countRejected(bx.valid, tuples0, r.tuples), nil
}

// countRejected derives the rejected-row count from how many rows were
// counted: every counted row that is not valid was skipped as rejected.
func countRejected(valid []uint64, tuples0, tuples uint64) int {
	counted := int(tuples - tuples0)
	return counted - popRange(valid, counted)
}

// tsOf extracts the epoch stream time of row i: straight off the resolved
// timestamp column, or through the Time closure on a materialized row.
func (bx *batchExec) tsOf(ep *epochState, b *Batch, i int) (float64, bool) {
	if bx.tsColOK {
		if bx.tsIsInt {
			return float64(b.cols[bx.tsCol].ints[i]), true
		}
		return b.cols[bx.tsCol].fls[i], true
	}
	b.row(i, bx.row)
	return ep.time(bx.row)
}

// scanEpoch advances the epoch supervisor over valid rows from lo until a
// roll fires, returning the rolling row as the segment end. skipFirst skips
// the first valid row's observation — it is the row whose observation just
// triggered the previous roll, and scalar Push does not re-observe it.
// Consecutive equal timestamps observe once: observe is idempotent for an
// unchanged stream time, so the skip is exact on any input and collapses to
// one observation per distinct timestamp on sorted batches.
func (bx *batchExec) scanEpoch(ep *epochState, b *Batch, lo int, skipFirst bool) (hi int, newL float64, roll bool) {
	if ep.cfg.Time == nil && !bx.tsColOK {
		return b.n, 0, false // supervisor advances only on heartbeats
	}
	var prevTs float64
	have := false
	for i := lo; i < b.n; i++ {
		if !bitGet(bx.valid, i) {
			continue
		}
		ts, ok := bx.tsOf(ep, b, i)
		if !ok {
			continue
		}
		if skipFirst {
			skipFirst = false
			prevTs, have = ts, true
			continue
		}
		if have && ts == prevTs {
			continue
		}
		prevTs, have = ts, true
		if newL, roll = ep.observe(ts); roll {
			return i, newL, true
		}
	}
	return b.n, 0, false
}

// processSegment folds rows [lo,hi) under a fixed landmark: vectorized when
// the plan compiled and the kernels run clean, otherwise replayed through
// the scalar fold path row by row.
func (r *Run) processSegment(b *Batch, lo, hi int) error {
	return r.processSegmentBase(b, lo, hi, r.bx.valid)
}

// processSegmentBase is processSegment over an explicit base bitmap: rows
// outside base are counted but not folded. Standalone runs pass the finite
// bitmap; the multi-query runtime passes finite ∧ class-WHERE, with the
// plan's own WHERE stripped — the pre-applied filter must therefore reach
// the scalar replay path too, which is why base threads all the way down.
func (r *Run) processSegmentBase(b *Batch, lo, hi int, base []uint64) error {
	if lo >= hi {
		return nil
	}
	bx := r.bx
	vp := r.p.vec
	if vp == nil {
		return r.replaySegmentBase(b, lo, hi, base)
	}

	ctx := &bx.ctx
	ctx.reset(b, vp)
	b.sel = growBits(b.sel, b.n)
	sel := b.sel
	maskRange(sel, base, lo, hi)

	if vp.where != nil {
		vp.where.run(ctx, sel)
		if ctx.err == nil {
			wb := ctx.bits(vp.where)
			for w := range sel {
				sel[w] &= wb[w]
			}
		}
	}
	if ctx.err == nil {
		for _, g := range vp.groups {
			g.run(ctx, sel)
		}
	}
	if ctx.err == nil {
		for _, slotNodes := range vp.args {
			for _, a := range slotNodes {
				a.run(ctx, sel)
			}
		}
	}
	if ctx.err != nil {
		// A kernel failed somewhere in the segment; no run state has been
		// touched, so the scalar replay reproduces the exact scalar outcome.
		return r.replaySegmentBase(b, lo, hi, base)
	}

	// Kernels clean: every row of the segment is now accounted for (invalid
	// rows included — scalar Push counts a tuple before rejecting it). The
	// fold walks the bitmap inline (not through forSel) so its mutable run
	// state stays on the stack: the steady-state batch cycle allocates
	// nothing, and TestPushBatchSteadyStateAllocs holds it there.
	segBase := r.tuples
	r.tuples += uint64(hi - lo)

	var curAggs []Aggregator
	runLen := 0
	gv := r.gv
	for w, m := range sel {
		if m == 0 {
			continue
		}
		base := w << 6
		for ; m != 0; m &= m - 1 {
			i := base + bits.TrailingZeros64(m)
			for gi, gn := range vp.groups {
				gv[gi] = ctx.valueAt(gn, i)
			}
			bx.curKey = r.p.keyAppend(bx.curKey[:0], gv)
			if runLen > 0 && bytes.Equal(bx.curKey, bx.prevKey) {
				// Same group as the previous row: same group values, same
				// temporal bucket — extend the run, nothing else to check.
				bx.rows = append(bx.rows, int32(i))
				runLen++
				continue
			}
			if runLen > 0 {
				if err := r.stepRun(curAggs); err != nil {
					r.tuples = segBase + uint64(int(bx.rows[runLen-1])-lo+1)
					return err
				}
			}
			runLen = 0
			if ti := r.p.temporalIdx; ti >= 0 {
				bv := gv[ti]
				if !r.bucketSet {
					r.bucket, r.bucketSet = bv, true
				} else if r.p.bucketAfter(bv, r.bucket) {
					if err := r.flush(); err != nil {
						r.tuples = segBase + uint64(i-lo+1)
						return err
					}
					r.bucket = bv
				}
			}
			aggs, err := r.probeGroup(bx.curKey, gv)
			if err != nil {
				r.tuples = segBase + uint64(i-lo+1)
				return err
			}
			curAggs = aggs
			bx.rows = append(bx.rows[:0], int32(i))
			runLen = 1
			bx.curKey, bx.prevKey = bx.prevKey, bx.curKey
		}
	}
	if runLen > 0 {
		if err := r.stepRun(curAggs); err != nil {
			r.tuples = segBase + uint64(int(bx.rows[runLen-1])-lo+1)
			return err
		}
	}
	return nil
}

// stepRun feeds the pending run (rows in bx.rows) to each aggregate slot:
// the argument kernels' outputs are gathered into a stride-k flat buffer and
// handed to StepBatch (or a scalar Step loop), one call per slot per run.
func (r *Run) stepRun(aggs []Aggregator) error {
	bx := r.bx
	vp := r.p.vec
	ctx := &bx.ctx
	n := len(bx.rows)
	for si, a := range aggs {
		nodes := vp.args[si]
		k := len(nodes)
		if k == 0 {
			if err := stepBatch(a, nil, n, 0); err != nil {
				return err
			}
			continue
		}
		if cap(bx.flatArgs) < n*k {
			bx.flatArgs = make([]Value, n*k)
		}
		flat := bx.flatArgs[:n*k]
		for ri, row := range bx.rows {
			for ai, an := range nodes {
				flat[ri*k+ai] = ctx.valueAt(an, int(row))
			}
		}
		if err := stepBatch(a, flat, n, k); err != nil {
			return err
		}
	}
	return nil
}

// probeGroup locates (or creates) the group for key, returning its
// aggregators. It is the probe section of the scalar fold, shared verbatim
// by both paths.
func (r *Run) probeGroup(key []byte, gv Tuple) ([]Aggregator, error) {
	if !r.twoLevel {
		g := r.high[string(key)]
		if g == nil {
			aggs, err := r.newGroupAggs()
			if err != nil {
				return nil, err
			}
			g = &group{gv: append(Tuple(nil), gv...), aggs: aggs}
			r.high[string(key)] = g
		}
		return g.aggs, nil
	}
	h := core.HashBytes(key)
	i := h & r.lowMask
	s := &r.low[i]
	// A colliding insert grows the table (doubling separates the keys'
	// hashes with high probability) until the cap; only at the cap does the
	// paper's evict-to-high policy kick in. Hot keys that would otherwise
	// thrash one slot get separated instead of re-allocating aggregators
	// every tuple.
	for s.used && !(s.hash == h && bytes.Equal(s.key, key)) && len(r.low) < r.lowMax {
		r.growLow()
		i = h & r.lowMask
		s = &r.low[i]
	}
	if s.used && !(s.hash == h && bytes.Equal(s.key, key)) {
		if err := r.evict(s); err != nil {
			return nil, err
		}
		s.used = false
	}
	if !s.used {
		aggs, err := r.newGroupAggs()
		if err != nil {
			return nil, err
		}
		s.used = true
		if !s.listed {
			s.listed = true
			r.lowUsed = append(r.lowUsed, uint32(i))
		}
		s.hash = h
		s.key = append(s.key[:0], key...)
		s.gv = append(s.gv[:0], gv...)
		s.aggs = aggs
	}
	return s.aggs, nil
}

// replaySegment is the scalar fallback: each row of the segment materializes
// and folds through the exact per-tuple path (epoch observation has already
// run for the segment). Invalid rows count and skip, as every scalar caller
// does on a NonFiniteValueError.
func (r *Run) replaySegment(b *Batch, lo, hi int) error {
	return r.replaySegmentBase(b, lo, hi, r.bx.valid)
}

// replaySegmentBase replays against an explicit base bitmap. Rows outside
// base still count (a standalone run counts WHERE-rejected rows too) but do
// not fold, so a pre-applied class filter survives the scalar fallback.
func (r *Run) replaySegmentBase(b *Batch, lo, hi int, base []uint64) error {
	bx := r.bx
	for i := lo; i < hi; i++ {
		r.tuples++
		if !bitGet(base, i) {
			continue
		}
		b.row(i, bx.row)
		if err := r.foldTuple(bx.row); err != nil {
			return err
		}
	}
	return nil
}
