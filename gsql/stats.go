package gsql

import (
	"fmt"
	"math"
	"sync/atomic"
)

// RuntimeStats is a point-in-time snapshot of a run's fault-tolerance and
// throughput counters — the observability surface for load shedding, panic
// isolation and checkpointing. Serial runs populate the ingest and
// checkpoint fields; the shard fields are only meaningful for ParallelRun.
type RuntimeStats struct {
	// TuplesIn counts tuples offered to Push (before WHERE filtering).
	TuplesIn uint64
	// TuplesShed and BatchesShed count data dropped by the overload
	// policy (OverloadDropNewest) instead of blocking the producer.
	TuplesShed  uint64
	BatchesShed uint64
	// Checkpoints and Restores count successful Checkpoint calls and
	// restored runs.
	Checkpoints uint64
	Restores    uint64
	// ShardPanics counts panics recovered inside shard workers;
	// ShardRestarts counts shards whose window state was reset (and, when
	// a current-window checkpoint existed, refilled from it).
	ShardPanics   uint64
	ShardRestarts uint64
	// WindowsClosed counts emitted time buckets.
	WindowsClosed uint64
	// Evictions counts low-level table evictions (serial two-level path).
	Evictions uint64
	// EpochRollovers counts landmark rollovers applied by this run (epoch
	// supervisor and direct ShiftLandmark calls); SentinelTrips counts
	// overflow-sentinel threshold crossings (each crossing counted once, even
	// in monitor-only mode where no roll follows).
	EpochRollovers uint64
	SentinelTrips  uint64

	// Ingest counters, populated by a network ingest front-end (the ingest
	// package's Listener merges them into the run's snapshot); always zero
	// for runs fed in-process.

	// FramesAccepted counts wire frames decoded, deduplicated and applied.
	FramesAccepted uint64
	// FramesQuarantined counts malformed frames diverted to the dead-letter
	// ring instead of being applied (or crashing the server).
	FramesQuarantined uint64
	// DuplicatesDropped counts frames discarded because their sequence
	// number was already applied (reconnect replays, duplicated deliveries).
	DuplicatesDropped uint64
	// Reconnects counts sessions re-attached by a returning client.
	Reconnects uint64
	// HeartbeatsSynthesized counts wall-clock heartbeats the ingest server
	// generated on idle connections to keep time buckets closing.
	HeartbeatsSynthesized uint64
	// TuplesRejected counts tuples inside accepted frames that the run
	// refused (e.g. non-finite values); the rest of the frame still applies.
	TuplesRejected uint64
}

// runtimeCounters is the mutable, concurrency-safe backing store for
// RuntimeStats. Producer-side counters could be plain fields, but shard
// workers bump ShardPanics from their own goroutines, so everything is
// atomic for uniformity (these are all off the per-tuple hot path).
type runtimeCounters struct {
	tuplesIn      atomic.Uint64
	tuplesShed    atomic.Uint64
	batchesShed   atomic.Uint64
	checkpoints   atomic.Uint64
	restores      atomic.Uint64
	shardPanics   atomic.Uint64
	shardRestarts atomic.Uint64
	windowsClosed atomic.Uint64
}

// snapshot materializes the counters.
func (c *runtimeCounters) snapshot() RuntimeStats {
	return RuntimeStats{
		TuplesIn:      c.tuplesIn.Load(),
		TuplesShed:    c.tuplesShed.Load(),
		BatchesShed:   c.batchesShed.Load(),
		Checkpoints:   c.checkpoints.Load(),
		Restores:      c.restores.Load(),
		ShardPanics:   c.shardPanics.Load(),
		ShardRestarts: c.shardRestarts.Load(),
		WindowsClosed: c.windowsClosed.Load(),
	}
}

// RuntimeStats snapshots the serial run's counters.
func (r *Run) RuntimeStats() RuntimeStats {
	st := RuntimeStats{
		TuplesIn:      r.tuples,
		Checkpoints:   r.checkpoints,
		Restores:      r.restores,
		WindowsClosed: r.windows,
		Evictions:     r.evictions,
	}
	if r.ep != nil {
		st.EpochRollovers = r.ep.rolls
		st.SentinelTrips = r.ep.trips
	}
	return st
}

// NonFiniteValueError reports a NaN or ±Inf float in a posted tuple. Such
// values are rejected at the ingest boundary: once folded into decayed
// state or a group key they poison every later result of the window.
type NonFiniteValueError struct {
	// Column is the schema column holding the bad value (empty if the
	// tuple is wider than the schema).
	Column string
	// X is the offending value.
	X float64
}

func (e *NonFiniteValueError) Error() string {
	return fmt.Sprintf("gsql: non-finite value %v in column %q rejected", e.X, e.Column)
}

// checkTupleFinite validates every float in a posted tuple, returning a
// typed error for the first NaN/±Inf.
func checkTupleFinite(s *Schema, t Tuple) error {
	for i, v := range t {
		if v.T == TFloat && (math.IsNaN(v.F) || math.IsInf(v.F, 0)) {
			name := ""
			if i < len(s.Cols) {
				name = s.Cols[i].Name
			}
			return &NonFiniteValueError{Column: name, X: v.F}
		}
	}
	return nil
}

// ShardPanicError reports a panic recovered inside a shard worker (or a
// UDAF merge/final on the coordinator). The drain barrier still completes
// when a shard panics; the error surfaces through ParallelRun.Errors and —
// under PanicFail — from the window flush.
type ShardPanicError struct {
	// Shard is the worker index, or -1 for a coordinator-side panic.
	Shard int
	// Value is the recovered panic value.
	Value any
	// Stack is the worker stack at recovery time.
	Stack []byte
}

func (e *ShardPanicError) Error() string {
	where := fmt.Sprintf("shard %d", e.Shard)
	if e.Shard < 0 {
		where = "coordinator"
	}
	return fmt.Sprintf("gsql: panic in %s: %v", where, e.Value)
}
