package gsql_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"forwarddecay/gsql"
)

// Isolation suite: a MultiRun under Options.Isolate must fence hostile
// queries (erroring, panicking, cardinality-bombing) into quarantine while
// every other query's output stays bit-for-bit identical to an oracle
// catalog that never contained the offender — the blast radius of a bad
// query is that query.

// isoOpts returns Options with the given isolation config.
func isoOpts(cfg gsql.IsolateConfig) gsql.Options {
	return gsql.Options{Isolate: &cfg}
}

// Poison fixtures. The erroring query divides by zero on every tuple; the
// cardinality bomb groups by raw len (hundreds of live groups per bucket);
// the panicking query steps a UDAF that panics.
const (
	poisonErrQuery  = `select tb, sum(len / (len - len)) from TCP group by time/60 as tb`
	poisonCardQuery = `select tb, len, count(*) from TCP group by time/60 as tb, len`
	poisonBoomQuery = `select tb, boom(len) from TCP group by time/60 as tb`
)

type boomAgg struct{}

func (boomAgg) Step(args []gsql.Value) error { panic("boom: hostile aggregate") }
func (boomAgg) Final() gsql.Value            { return gsql.Int(0) }

func registerBoom(t *testing.T, e *gsql.Engine) {
	t.Helper()
	err := e.RegisterUDAF(gsql.AggSpec{
		Name: "boom", MinArgs: 1, MaxArgs: 1,
		New: func() gsql.Aggregator { return boomAgg{} },
	})
	if err != nil {
		t.Fatal(err)
	}
}

// runIsoDifferential attaches the survivor fixtures plus one poison query,
// feeds the trace (scalar or batch), asserts the poison lands in quarantine
// with the expected reason, and requires every survivor bit-for-bit
// identical (rows and checkpoint) to a standalone run that never saw the
// poison.
func runIsoDifferential(t *testing.T, e *gsql.Engine, cfg gsql.IsolateConfig, poison, wantReason string, batch bool) {
	t.Helper()
	tuples := trace(12_000, 0, 71)

	var events []gsql.QuarantineEvent
	cfg.OnQuarantine = func(ev gsql.QuarantineEvent) { events = append(events, ev) }
	m, handles, rows := multiAttach(t, e, isoOpts(cfg), multiQueries)
	ph, err := m.Attach(poison, 0, func(gsql.Tuple) error { return nil })
	if err != nil {
		t.Fatalf("attach poison: %v", err)
	}
	ph.SetTag("poison")

	if batch {
		for _, b := range toBatches(t, tuples, 256) {
			if _, err := m.PushBatch(b); err != nil {
				t.Fatalf("multi pushbatch: %v", err)
			}
		}
	} else {
		for _, tp := range tuples {
			if err := m.Push(tp); err != nil {
				t.Fatalf("multi push: %v", err)
			}
		}
	}

	if q, reason := ph.Quarantined(); !q || reason != wantReason {
		t.Fatalf("poison quarantined=%v reason=%q, want true/%q", q, reason, wantReason)
	}
	if len(events) != 1 || events[0].Reason != wantReason || events[0].Tag != "poison" {
		t.Fatalf("quarantine events = %+v, want one %q event tagged poison", events, wantReason)
	}
	if err := ph.Push(pkt2(9000, 1, 80, 100)); err == nil {
		t.Error("push into a quarantined query succeeded")
	}
	if s := m.MultiStats(); s.Quarantined != 1 || s.Queries != len(multiQueries)+1 {
		t.Errorf("stats after quarantine: %+v", s)
	}
	qs := ph.QueryStats()
	if !qs.Quarantined || qs.Reason != wantReason {
		t.Errorf("poison QueryStats = %+v", qs)
	}

	ckpts := make([][]byte, len(handles))
	for i, h := range handles {
		if ckpts[i], err = h.Checkpoint(); err != nil {
			t.Fatalf("survivor checkpoint %d: %v", i, err)
		}
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}

	for i, q := range multiQueries {
		var wantRows []gsql.Tuple
		var wantCkpt []byte
		if batch {
			st, err := e.Prepare(q)
			if err != nil {
				t.Fatal(err)
			}
			run := st.Start(func(r gsql.Tuple) error { wantRows = append(wantRows, r); return nil }, gsql.Options{})
			for _, b := range toBatches(t, tuples, 256) {
				if _, err := run.PushBatch(b); err != nil {
					t.Fatal(err)
				}
			}
			if wantCkpt, err = run.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := run.Close(); err != nil {
				t.Fatal(err)
			}
		} else {
			wantRows, wantCkpt = standaloneRun(t, e, q, tuples, gsql.Options{})
		}
		requireIdentical(t, wantRows, *rows[i], fmt.Sprintf("survivor %d", i))
		if !bytes.Equal(wantCkpt, ckpts[i]) {
			t.Errorf("survivor %d: checkpoint differs from the poison-free oracle", i)
		}
	}
}

func TestMultiQuarantineBreaker(t *testing.T) {
	for _, batch := range []bool{false, true} {
		name := "scalar"
		if batch {
			name = "batch"
		}
		t.Run(name, func(t *testing.T) {
			e := parallelEngine(t)
			runIsoDifferential(t, e, gsql.IsolateConfig{BreakerErrors: 5},
				poisonErrQuery, gsql.QuarantineBreaker, batch)
		})
	}
}

func TestMultiQuarantineCardinality(t *testing.T) {
	for _, batch := range []bool{false, true} {
		name := "scalar"
		if batch {
			name = "batch"
		}
		t.Run(name, func(t *testing.T) {
			e := parallelEngine(t)
			runIsoDifferential(t, e, gsql.IsolateConfig{MaxGroups: 64},
				poisonCardQuery, gsql.QuarantineCardinality, batch)
		})
	}
}

func TestMultiQuarantinePanic(t *testing.T) {
	for _, batch := range []bool{false, true} {
		name := "scalar"
		if batch {
			name = "batch"
		}
		t.Run(name, func(t *testing.T) {
			e := parallelEngine(t)
			registerBoom(t, e)
			runIsoDifferential(t, e, gsql.IsolateConfig{},
				poisonBoomQuery, gsql.QuarantinePanic, batch)
		})
	}
}

// TestMultiQuarantineSharded: a sharded poison member is fenced too — its
// worker goroutines are torn down without emitting — while serial and
// sharded survivors on the same feed stay bit-for-bit with the oracle.
func TestMultiQuarantineSharded(t *testing.T) {
	e := parallelEngine(t)
	tuples := trace(10_000, 0, 73)
	survivorQ := multiQueries[0]
	shardedQ := `select tb, dstIP, count(*), sum(len), avg(float(len)) from TCP where len > 200 group by time/60 as tb, dstIP`
	// The coordinator-side WHERE divides by zero on every tuple; the
	// sticky run error then trips the breaker.
	poisonQ := `select tb, sum(len) from TCP where len / (len - len) > 0 group by time/60 as tb`

	m, err := gsql.NewMultiRun(e, "TCP", isoOpts(gsql.IsolateConfig{BreakerErrors: 3}))
	if err != nil {
		t.Fatal(err)
	}
	var serialGot, shardGot []gsql.Tuple
	if _, err := m.Attach(survivorQ, 0, func(r gsql.Tuple) error { serialGot = append(serialGot, r); return nil }); err != nil {
		t.Fatal(err)
	}
	hs, err := m.Attach(shardedQ, 3, func(r gsql.Tuple) error { shardGot = append(shardGot, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	var poisonRows int
	hp, err := m.Attach(poisonQ, 2, func(gsql.Tuple) error { poisonRows++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range tuples {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if q, _ := hp.Quarantined(); !q {
		t.Fatal("sharded poison was not quarantined")
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}
	if poisonRows != 0 {
		t.Errorf("quarantined sharded query emitted %d rows, want 0", poisonRows)
	}
	_ = hs

	wantSerial, _ := standaloneRun(t, e, survivorQ, tuples, gsql.Options{})
	requireIdentical(t, wantSerial, serialGot, "serial survivor")
	st, err := e.Prepare(shardedQ)
	if err != nil {
		t.Fatal(err)
	}
	want := parallelRows(t, st, tuples, gsql.ParallelOptions{Shards: 3})
	requireIdentical(t, want, shardGot, "sharded survivor")
}

// TestMultiAdmissionControl: an attach whose private-cost estimate blows
// the catalog budget fails with *AdmissionError and perturbs nothing;
// detaching frees its budget back.
func TestMultiAdmissionControl(t *testing.T) {
	e := parallelEngine(t)
	cheapQ := multiQueries[0]
	richQ := multiQueries[3]

	// Probe the cost model on an unbudgeted runtime to pick a budget
	// between "cheapQ alone" and "cheapQ plus richQ".
	probe, err := gsql.NewMultiRun(e, "TCP", isoOpts(gsql.IsolateConfig{}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.Attach(cheapQ, 0, func(gsql.Tuple) error { return nil }); err != nil {
		t.Fatal(err)
	}
	usedA := probe.AdmitUsed()
	if usedA <= 0 {
		t.Fatalf("AdmitUsed = %v after one attach, want > 0", usedA)
	}
	if _, err := probe.Attach(richQ, 0, func(gsql.Tuple) error { return nil }); err != nil {
		t.Fatal(err)
	}
	usedAB := probe.AdmitUsed()
	if usedAB <= usedA {
		t.Fatalf("AdmitUsed did not grow: %v -> %v", usedA, usedAB)
	}
	budget := (usedA + usedAB) / 2

	m, err := gsql.NewMultiRun(e, "TCP", isoOpts(gsql.IsolateConfig{AdmitBudget: budget}))
	if err != nil {
		t.Fatal(err)
	}
	var rows []gsql.Tuple
	ha, err := m.Attach(cheapQ, 0, func(r gsql.Tuple) error { rows = append(rows, r); return nil })
	if err != nil {
		t.Fatalf("attach under budget: %v", err)
	}
	tuples := trace(3_000, 0, 79)
	for _, tp := range tuples[:1500] {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	before := m.MultiStats()

	_, err = m.Attach(richQ, 0, func(gsql.Tuple) error { return nil })
	var adm *gsql.AdmissionError
	if !errors.As(err, &adm) {
		t.Fatalf("over-budget attach error = %v, want *AdmissionError", err)
	}
	if adm.Budget != budget || adm.Used != before.AdmitUsed || adm.EstCost <= 0 {
		t.Errorf("admission error fields = %+v", adm)
	}
	after := m.MultiStats()
	if after.Queries != before.Queries || after.DistinctTexts != before.DistinctTexts ||
		after.Classes != before.Classes || after.DistinctExprs != before.DistinctExprs ||
		after.AdmitUsed != before.AdmitUsed {
		t.Errorf("rejected attach perturbed the catalog: %+v -> %+v", before, after)
	}

	// The running member is unaffected by the rejection.
	for _, tp := range tuples[1500:] {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}
	want, _ := standaloneRun(t, e, cheapQ, tuples, gsql.Options{})
	requireIdentical(t, want, rows, "member across a rejected attach")

	// Detach releases the budget; the previously rejected query now fits.
	ha.Detach()
	if u := m.AdmitUsed(); u != 0 {
		t.Fatalf("AdmitUsed = %v after detach, want 0", u)
	}
	if _, err := m.Attach(richQ, 0, func(gsql.Tuple) error { return nil }); err != nil {
		t.Fatalf("attach after budget freed: %v", err)
	}
}

// TestMultiReviveAfterQuarantine: an operator revive re-links a fenced
// query from its retained checkpoint — class membership, shared slots and
// admission budget come back, the breaker resets, and folding resumes.
func TestMultiReviveAfterQuarantine(t *testing.T) {
	e := parallelEngine(t)
	q := `select tb, sum(len / (len - 100)) from TCP group by time/60 as tb`
	var events []gsql.QuarantineEvent
	m, err := gsql.NewMultiRun(e, "TCP", isoOpts(gsql.IsolateConfig{
		BreakerErrors: 3,
		OnQuarantine:  func(ev gsql.QuarantineEvent) { events = append(events, ev) },
	}))
	if err != nil {
		t.Fatal(err)
	}
	var rows []gsql.Tuple
	h, err := m.Attach(q, 0, func(r gsql.Tuple) error { rows = append(rows, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Revive(); err == nil {
		t.Error("revive of a healthy query succeeded")
	}

	clean := func(sec int64, n int) []gsql.Tuple {
		out := make([]gsql.Tuple, n)
		for i := range out {
			out[i] = pkt2(sec, int64(i%4), 80, 200+int64(i%7))
		}
		return out
	}
	phase1 := clean(10, 50)
	for _, tp := range phase1 {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	// A burst of len=100 tuples divides by zero and trips the breaker.
	for i := 0; i < 3; i++ {
		if err := m.Push(pkt2(20, 1, 80, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if q, reason := h.Quarantined(); !q || reason != gsql.QuarantineBreaker {
		t.Fatalf("quarantined=%v reason=%q", q, reason)
	}
	if len(events) != 1 || events[0].Retained == nil {
		t.Fatalf("expected one quarantine event with a retained checkpoint, got %+v", events)
	}
	baseUsed := m.AdmitUsed()
	if baseUsed != 0 {
		t.Fatalf("AdmitUsed = %v while the only query is quarantined, want 0", baseUsed)
	}

	if err := h.Revive(); err != nil {
		t.Fatalf("revive: %v", err)
	}
	if q, _ := h.Quarantined(); q {
		t.Fatal("still quarantined after revive")
	}
	if m.AdmitUsed() <= 0 {
		t.Error("revive did not restore the admission budget charge")
	}
	phase2 := clean(70, 50) // next bucket: flushes the retained phase-1 state
	for _, tp := range phase2 {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}

	// Oracle: a standalone run that saw only the clean tuples. The retained
	// checkpoint preserved phase-1 aggregation, so the revived query's rows
	// must match.
	want, _ := standaloneRun(t, e, q, append(append([]gsql.Tuple{}, phase1...), phase2...), gsql.Options{})
	requireIdentical(t, want, rows, "revived query rows")

	// Double-revive is rejected; detach of a revived query is clean.
	if err := h.Revive(); err == nil {
		t.Error("revive of a non-quarantined query succeeded")
	}
}

// TestMultiQuarantineDetach: detaching a fenced query forgets it without
// touching the catalog twice (the quarantine already released everything).
func TestMultiQuarantineDetach(t *testing.T) {
	e := parallelEngine(t)
	m, handles, _ := multiAttach(t, e, isoOpts(gsql.IsolateConfig{BreakerErrors: 2}), multiQueries)
	ph, err := m.Attach(poisonErrQuery, 0, func(gsql.Tuple) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range trace(100, 0, 83) {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if q, _ := ph.Quarantined(); !q {
		t.Fatal("poison not quarantined")
	}
	used := m.AdmitUsed()
	ph.Detach()
	if s := m.MultiStats(); s.Queries != len(multiQueries) || s.Quarantined != 0 {
		t.Errorf("stats after detaching quarantined query: %+v", s)
	}
	if m.AdmitUsed() != used {
		t.Error("detach of a quarantined query double-released its budget")
	}
	if err := ph.Revive(); err == nil {
		t.Error("revive of a detached query succeeded")
	}
	// Catalog still healthy.
	if err := m.Push(pkt2(9999, 1, 80, 300)); err != nil {
		t.Fatal(err)
	}
	_ = handles
}

// TestMultiInternerChurnRuntime: 10k attach/detach of distinct queries must
// return the runtime's interner, statement catalogs and predicate classes
// to their pre-churn size — the leak regression at the MultiRun level.
func TestMultiInternerChurnRuntime(t *testing.T) {
	n := 10_000
	if testing.Short() {
		n = 1_000
	}
	e := parallelEngine(t)
	m, _, rows := multiAttach(t, e, gsql.Options{}, multiQueries)
	base := m.MultiStats()

	for i := 0; i < n; i++ {
		q := fmt.Sprintf(
			`select tb, count(*), sum(len + %d) from TCP where len > %d group by time/60 as tb`, i, i%1400)
		h, err := m.Attach(q, 0, func(gsql.Tuple) error { return nil })
		if err != nil {
			t.Fatalf("churn attach %d: %v", i, err)
		}
		h.Detach()
	}

	s := m.MultiStats()
	if s.DistinctExprs != base.DistinctExprs {
		t.Errorf("DistinctExprs = %d after churn, want baseline %d (interner leak)",
			s.DistinctExprs, base.DistinctExprs)
	}
	if s.DistinctTexts != base.DistinctTexts || s.Classes != base.Classes || s.Queries != base.Queries {
		t.Errorf("catalog after churn: %+v, want baseline %+v", s, base)
	}

	// The resident queries still run correctly after the churn.
	tuples := trace(5_000, 0, 89)
	for _, tp := range tuples {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}
	want, _ := standaloneRun(t, e, multiQueries[0], tuples, gsql.Options{})
	requireIdentical(t, want, *rows[0], "resident query after churn")
}

// TestMultiDetachUnderLoad: the race/lifecycle suite. PushBatch interleaves
// with attach/detach churn, sharded member teardown and mid-stream
// quarantines; survivors must stay bit-for-bit with an oracle that never
// saw the churned queries. Run under -race this exercises the coordinator/
// worker shutdown of abortParallel and ParallelRun teardown.
func TestMultiDetachUnderLoad(t *testing.T) {
	e := parallelEngine(t)
	registerBoom(t, e)
	tuples := trace(12_000, 0, 97)
	batches := toBatches(t, tuples, 250)
	shardedQ := `select tb, dstIP, count(*), sum(len), avg(float(len)) from TCP where len > 200 group by time/60 as tb, dstIP`

	m, handles, rows := multiAttach(t, e, isoOpts(gsql.IsolateConfig{BreakerErrors: 4}), multiQueries)
	var shardGot []gsql.Tuple
	if _, err := m.Attach(shardedQ, 3, func(r gsql.Tuple) error { shardGot = append(shardGot, r); return nil }); err != nil {
		t.Fatal(err)
	}

	var churn *gsql.MultiHandle
	var churnSharded *gsql.MultiHandle
	for bi, b := range batches {
		switch bi % 8 {
		case 1: // serial churn: attach a distinct throwaway query
			q := fmt.Sprintf(`select tb, count(*), sum(len * %d) from TCP where len > %d group by time/60 as tb`, bi, bi%900)
			h, err := m.Attach(q, 0, func(gsql.Tuple) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			churn = h
		case 3: // ...and detach it two batches later
			if churn != nil {
				churn.Detach()
				churn = nil
			}
		case 4: // sharded churn: spin up and tear down worker goroutines
			h, err := m.Attach(fmt.Sprintf(`select tb, dstIP, sum(len + %d) from TCP where len > 300 group by time/60 as tb, dstIP`, bi), 2,
				func(gsql.Tuple) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			churnSharded = h
		case 6:
			if churnSharded != nil {
				if err := churnSharded.Close(); err != nil {
					t.Fatal(err)
				}
				churnSharded.Detach()
				churnSharded = nil
			}
		case 7: // poison churn: a panicking query quarantines mid-stream
			h, err := m.Attach(poisonBoomQuery, 0, func(gsql.Tuple) error { return nil })
			if err != nil {
				t.Fatal(err)
			}
			h.SetTag(bi)
			defer func(h *gsql.MultiHandle) {
				if q, _ := h.Quarantined(); !q {
					t.Error("poison churn query was not quarantined")
				}
				h.Detach()
			}(h)
		}
		if _, err := m.PushBatch(b); err != nil {
			t.Fatalf("pushbatch %d: %v", bi, err)
		}
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}

	for i, q := range multiQueries {
		st, err := e.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		var want []gsql.Tuple
		run := st.Start(func(r gsql.Tuple) error { want = append(want, r); return nil }, gsql.Options{})
		for _, b := range toBatches(t, tuples, 250) {
			if _, err := run.PushBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		if err := run.Close(); err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, want, *rows[i], fmt.Sprintf("survivor %d under churn", i))
	}
	st, err := e.Prepare(shardedQ)
	if err != nil {
		t.Fatal(err)
	}
	want := parallelRows(t, st, tuples, gsql.ParallelOptions{Shards: 3})
	requireIdentical(t, want, shardGot, "sharded survivor under churn")
	_ = handles
}

// TestMultiQueryStatsAttribution: per-query counters — tuples, errors,
// quarantine state, the cost estimate and its measured EWMA — and the
// top-N ordering.
func TestMultiQueryStatsAttribution(t *testing.T) {
	e := parallelEngine(t)
	m, handles, _ := multiAttach(t, e, isoOpts(gsql.IsolateConfig{SampleEvery: 2}), multiQueries[:3])
	tuples := trace(2_000, 0, 101)
	for _, tp := range tuples {
		if err := m.Push(tp); err != nil {
			t.Fatal(err)
		}
	}
	all := m.QueryStatsAll()
	if len(all) != 3 {
		t.Fatalf("QueryStatsAll returned %d entries, want 3", len(all))
	}
	for i, qs := range all {
		if qs.ID != uint64(i) {
			t.Errorf("stats not ordered by id: %+v", qs)
		}
		if qs.Tuples != uint64(len(tuples)) {
			t.Errorf("query %d Tuples = %d, want %d", i, qs.Tuples, len(tuples))
		}
		if qs.EstCostNs <= 0 {
			t.Errorf("query %d EstCostNs = %v, want > 0", i, qs.EstCostNs)
		}
		if qs.NsPerTuple <= 0 {
			t.Errorf("query %d NsPerTuple = %v, want > 0 after sampling", i, qs.NsPerTuple)
		}
		if qs.Errors != 0 || qs.Quarantined {
			t.Errorf("healthy query %d reports faults: %+v", i, qs)
		}
		if qs.Mode != "serial" {
			t.Errorf("query %d mode = %q", i, qs.Mode)
		}
	}
	// The unfiltered query folds every tuple; it must report live groups.
	if all[2].Groups == 0 {
		t.Error("unfiltered query reports no live groups")
	}
	if hs := handles[0].QueryStats(); hs.ID != 0 || hs.Text != multiQueries[0] {
		t.Errorf("handle stats = %+v", hs)
	}

	top := gsql.TopExpensive(all, 2)
	if len(top) != 2 {
		t.Fatalf("TopExpensive returned %d, want 2", len(top))
	}
	if top[0].NsPerTuple < top[1].NsPerTuple {
		t.Error("TopExpensive not sorted descending")
	}
	if err := m.CloseAll(); err != nil {
		t.Fatal(err)
	}
}

// Mirrors the server rebuild flow: shared feed → checkpoint at a frame
// boundary → fresh runtime → solo replay of the tail via the handle →
// shared feed onward. Iso vs legacy must be bit-identical.
func TestSoloReplayTransitionDifferential(t *testing.T) {
	tuples := trace(4000, 0, 77)
	batches := toBatches(t, tuples, 50)
	q := multiQueries[0]

	run := func(opts gsql.Options, ckptAt, replayTo int) ([]gsql.Tuple, []byte) {
		e := parallelEngine(t)
		m1, err := gsql.NewMultiRun(e, "TCP", opts)
		if err != nil {
			t.Fatal(err)
		}
		var rows []gsql.Tuple
		sink := func(r gsql.Tuple) error { rows = append(rows, r); return nil }
		h, err := m1.Attach(q, 0, sink)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[:ckptAt] {
			if _, err := m1.PushBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		ck, err := h.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		// Feed continues past the checkpoint before the "kill": those rows
		// are discarded (frozen ring) and re-derived by replay.
		for _, b := range batches[ckptAt:replayTo] {
			if _, err := m1.PushBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		// The dead incarnation's post-checkpoint rows are discarded with it;
		_ = rows // the successor re-derives them below, collected fresh
		e2 := parallelEngine(t)
		m2, err := gsql.NewMultiRun(e2, "TCP", opts)
		if err != nil {
			t.Fatal(err)
		}
		var rows2 []gsql.Tuple
		h2, err := m2.Restore(q, 0, ck, func(r gsql.Tuple) error { rows2 = append(rows2, r); return nil })
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range batches[ckptAt:replayTo] {
			if _, err := h2.PushBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		for _, b := range batches[replayTo:] {
			if _, err := m2.PushBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		fin, err := h2.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		return rows2, fin
	}

	iso := gsql.IsolateConfig{BreakerErrors: 16}
	for _, cut := range [][2]int{{10, 20}, {24, 36}, {7, 53}, {40, 41}, {12, 80}} {
		legacyRows, legacyCk := run(gsql.Options{}, cut[0], cut[1])
		isoRows, isoCk := run(isoOpts(iso), cut[0], cut[1])
		requireIdentical(t, legacyRows, isoRows, fmt.Sprintf("cut %v rows", cut))
		if !bytes.Equal(legacyCk, isoCk) {
			t.Errorf("cut %v: final checkpoint differs", cut)
		}
	}
}
